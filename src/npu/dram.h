/**
 * @file
 * LPDDR DRAM stream model: a single serialized bandwidth resource with
 * fixed per-request latency. In Cambricon-LLM the DRAM holds only the
 * KV cache, so its traffic is the attention read/append stream.
 */

#ifndef CAMLLM_NPU_DRAM_H
#define CAMLLM_NPU_DRAM_H

#include <cstdint>
#include <deque>
#include <functional>

#include "common/stats.h"
#include "common/units.h"
#include "npu/params.h"
#include "sim/event_queue.h"

namespace camllm::npu {

/** Bandwidth-serialized DRAM channel. */
class DramModel
{
  public:
    DramModel(EventQueue &eq, const NpuParams &params)
        : eq_(eq), params_(params)
    {
    }

    /** Queue a transfer of @p bytes; @p done fires at completion. */
    void request(std::uint64_t bytes, std::function<void()> done);

    std::uint64_t bytesMoved() const { return bytes_moved_; }
    const BusyTracker &busy() const { return busy_; }

    /** Pure service time for @p bytes (latency + transfer). */
    Tick
    serviceTime(std::uint64_t bytes) const
    {
        return params_.dram_latency +
               transferTime(bytes, params_.dram_gbps);
    }

  private:
    struct Txn
    {
        std::uint64_t bytes;
        std::function<void()> done;
    };

    void tryStart();

    EventQueue &eq_;
    NpuParams params_;
    std::deque<Txn> queue_;
    bool busy_now_ = false;
    BusyTracker busy_;
    std::uint64_t bytes_moved_ = 0;
};

} // namespace camllm::npu

#endif // CAMLLM_NPU_DRAM_H
