/**
 * @file
 * NPU-side configuration: systolic array throughput, special function
 * unit rate, LPDDR bandwidth, and the weight staging buffer.
 *
 * Defaults follow Section VII-A of the paper: a 16x16 systolic array
 * delivering 2 TOPS at 1 GHz, LPDDR5X at ~40 GB/s holding only the
 * KV cache.
 */

#ifndef CAMLLM_NPU_PARAMS_H
#define CAMLLM_NPU_PARAMS_H

#include <cstdint>

#include "common/units.h"

namespace camllm::npu {

/** Static NPU configuration. */
struct NpuParams
{
    /** Peak INT8 throughput of the systolic array, in TOPS. */
    double tops = 2.0;

    /** Special-function-unit throughput in elements per nanosecond
     *  (softmax / layernorm / activation element rate). */
    double sfu_elems_per_ns = 2.0;

    /** LPDDR bandwidth in GB/s (KV cache traffic). */
    double dram_gbps = 40.0;

    /** Fixed per-request DRAM latency. */
    Tick dram_latency = 100 * kNs;

    /**
     * On-NPU staging buffer for weights streamed from flash. Bounds
     * how far the read stream may prefetch ahead of the op being
     * computed.
     */
    std::uint64_t weight_buffer_bytes = 8ull * 1024 * 1024;

    /** Time for @p flops operations on the systolic array. */
    Tick
    computeTime(double flops) const
    {
        // 1 TOPS == 1000 ops/ns.
        double ns = flops / (tops * 1000.0);
        return Tick(ns + 0.5);
    }

    /** Time for an SFU pass over @p elems elements. */
    Tick
    sfuTime(double elems) const
    {
        double ns = elems / sfu_elems_per_ns;
        return Tick(ns + 0.5);
    }

    bool
    valid() const
    {
        return tops > 0.0 && sfu_elems_per_ns > 0.0 && dram_gbps > 0.0;
    }
};

} // namespace camllm::npu

#endif // CAMLLM_NPU_PARAMS_H
