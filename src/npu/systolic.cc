#include "systolic.h"

#include <algorithm>

#include "common/logging.h"

namespace camllm::npu {

SystolicEstimate
estimateGemm(const SystolicParams &p, std::uint64_t m, std::uint64_t k,
             std::uint64_t batch)
{
    CAMLLM_ASSERT(m > 0 && k > 0 && batch > 0);
    const std::uint64_t pes = std::uint64_t(p.rows) * p.cols;
    const std::uint64_t lanes = pes * p.macs_per_pe;
    const std::uint64_t fill = p.rows + p.cols;

    // Weight-stationary: each (rows x cols) weight tile is loaded once
    // (paying the pipeline fill) and then streams the whole batch.
    const std::uint64_t tiles =
        ((m + p.rows - 1) / p.rows) * ((k + p.cols - 1) / p.cols);
    const std::uint64_t ws_cycles =
        tiles * (fill + (batch + p.macs_per_pe - 1) / p.macs_per_pe);

    // Output-stationary / weight-streaming: weights pour through the
    // array at full lane width; ideal for GeMV, but each batch element
    // re-streams the weights.
    const std::uint64_t os_cycles =
        batch * ((m * k + lanes - 1) / lanes) + fill;

    SystolicEstimate e;
    e.cycles = std::min(ws_cycles, os_cycles);
    const double useful = double(m) * double(k) * double(batch);
    e.utilization = useful / (double(e.cycles) * double(lanes));
    e.time = Tick(double(e.cycles) / p.freq_ghz + 0.5);
    e.effective_tops = e.time > 0
                           ? 2.0 * useful / double(e.time) / 1000.0
                           : 0.0;
    return e;
}

Tick
UnitOccupancy::reserve(Tick now, Tick busy)
{
    const Tick start = free_at_ > now ? free_at_ : now;
    free_at_ = start + busy;
    busy_ticks_ += busy;
    return free_at_;
}

} // namespace camllm::npu
