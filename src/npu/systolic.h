/**
 * @file
 * Cycle-level utilization model of the NPU's 16x16 weight-stationary
 * systolic array (Section VII-A).
 *
 * The end-to-end engine uses a rate model (2 TOPS) because decode is
 * bandwidth bound; this model answers the validation question behind
 * that shortcut — for which GeMV/GeMM shapes does the array actually
 * approach its peak, and is it ever the bottleneck against the flash
 * stream?
 */

#ifndef CAMLLM_NPU_SYSTOLIC_H
#define CAMLLM_NPU_SYSTOLIC_H

#include <cstdint>

#include "common/units.h"

namespace camllm::npu {

/** Physical configuration of the systolic array. */
struct SystolicParams
{
    std::uint32_t rows = 16; ///< PE rows (output-channel dimension)
    std::uint32_t cols = 16; ///< PE columns (input-channel dimension)
    double freq_ghz = 1.0;

    /**
     * MAC issues per PE per cycle. Four INT8 MACs per PE reconcile a
     * 16x16 array at 1 GHz with the paper's 2 TOPS figure
     * (16*16*4 MACs * 2 ops * 1 GHz = 2.048 TOPS).
     */
    std::uint32_t macs_per_pe = 4;

    double
    peakTops() const
    {
        return double(rows) * cols * macs_per_pe * 2.0 * freq_ghz /
               1000.0;
    }
};

/** Result of mapping one GeMM onto the array. */
struct SystolicEstimate
{
    std::uint64_t cycles = 0;
    double utilization = 0.0; ///< useful MACs / issued MAC slots
    Tick time = 0;
    double effective_tops = 0.0;
};

/**
 * Estimate cycles for an (m x k) weight matrix times k-vector(s) with
 * @p batch right-hand sides (batch = 1 is decode GeMV; batch = prompt
 * length is prefill GeMM). Weight-stationary mapping: each (rows x
 * cols) weight tile is loaded once and streams `batch` operands
 * through, paying a pipeline fill of rows + cols cycles per tile.
 */
SystolicEstimate estimateGemm(const SystolicParams &params,
                              std::uint64_t m, std::uint64_t k,
                              std::uint64_t batch);

/**
 * FIFO single-server occupancy of one NPU execution unit (the
 * systolic array, or the SFU). The end-to-end engine historically let
 * concurrent streams overlap their NPU time for free; reserving
 * through this tracker instead serializes grants in arrival order, so
 * a shared array is busy for the sum of its clients' compute — the
 * contention model behind core::NpuArbiter.
 */
class UnitOccupancy
{
  public:
    /**
     * Reserve @p busy ticks of unit time requested at @p now. The
     * grant starts at max(now, end of the previously granted work)
     * and the returned tick is when it completes.
     */
    Tick reserve(Tick now, Tick busy);

    /** Tick at which all granted work drains. */
    Tick freeAt() const { return free_at_; }

    /** Total granted busy ticks. */
    std::uint64_t busyTicks() const { return busy_ticks_; }

    /** Fraction of [0, elapsed) the unit was reserved. */
    double
    utilization(Tick elapsed) const
    {
        return elapsed == 0 ? 0.0
                            : double(busy_ticks_) / double(elapsed);
    }

  private:
    Tick free_at_ = 0;
    std::uint64_t busy_ticks_ = 0;
};

} // namespace camllm::npu

#endif // CAMLLM_NPU_SYSTOLIC_H
