/**
 * @file
 * Cycle-level utilization model of the NPU's 16x16 weight-stationary
 * systolic array (Section VII-A).
 *
 * The end-to-end engine uses a rate model (2 TOPS) because decode is
 * bandwidth bound; this model answers the validation question behind
 * that shortcut — for which GeMV/GeMM shapes does the array actually
 * approach its peak, and is it ever the bottleneck against the flash
 * stream?
 */

#ifndef CAMLLM_NPU_SYSTOLIC_H
#define CAMLLM_NPU_SYSTOLIC_H

#include <cstdint>

#include "common/units.h"

namespace camllm::npu {

/** Physical configuration of the systolic array. */
struct SystolicParams
{
    std::uint32_t rows = 16; ///< PE rows (output-channel dimension)
    std::uint32_t cols = 16; ///< PE columns (input-channel dimension)
    double freq_ghz = 1.0;

    /**
     * MAC issues per PE per cycle. Four INT8 MACs per PE reconcile a
     * 16x16 array at 1 GHz with the paper's 2 TOPS figure
     * (16*16*4 MACs * 2 ops * 1 GHz = 2.048 TOPS).
     */
    std::uint32_t macs_per_pe = 4;

    double
    peakTops() const
    {
        return double(rows) * cols * macs_per_pe * 2.0 * freq_ghz /
               1000.0;
    }
};

/** Result of mapping one GeMM onto the array. */
struct SystolicEstimate
{
    std::uint64_t cycles = 0;
    double utilization = 0.0; ///< useful MACs / issued MAC slots
    Tick time = 0;
    double effective_tops = 0.0;
};

/**
 * Estimate cycles for an (m x k) weight matrix times k-vector(s) with
 * @p batch right-hand sides (batch = 1 is decode GeMV; batch = prompt
 * length is prefill GeMM). Weight-stationary mapping: each (rows x
 * cols) weight tile is loaded once and streams `batch` operands
 * through, paying a pipeline fill of rows + cols cycles per tile.
 */
SystolicEstimate estimateGemm(const SystolicParams &params,
                              std::uint64_t m, std::uint64_t k,
                              std::uint64_t batch);

} // namespace camllm::npu

#endif // CAMLLM_NPU_SYSTOLIC_H
