#include "dram.h"

#include <utility>

#include "common/logging.h"

namespace camllm::npu {

void
DramModel::request(std::uint64_t bytes, std::function<void()> done)
{
    CAMLLM_ASSERT(bytes > 0, "zero-byte DRAM transfer");
    queue_.push_back(Txn{bytes, std::move(done)});
    tryStart();
}

void
DramModel::tryStart()
{
    if (busy_now_ || queue_.empty())
        return;
    Txn txn = std::move(queue_.front());
    queue_.pop_front();
    busy_now_ = true;
    Tick start = eq_.now();
    Tick end = start + serviceTime(txn.bytes);
    busy_.addBusy(start, end);
    bytes_moved_ += txn.bytes;
    eq_.schedule(end, [this, done = std::move(txn.done)]() mutable {
        busy_now_ = false;
        done();
        tryStart();
    });
}

} // namespace camllm::npu
