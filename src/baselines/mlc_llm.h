/**
 * @file
 * MLC-LLM mobile baseline (Table III): all weights resident in the
 * phone's LPDDR, 4-bit round-to-nearest quantization, decode bound by
 * effective DRAM bandwidth. Models that do not fit the usable DRAM
 * budget fail with OOM, which is exactly what the paper reports for
 * Llama2-13B and 70B on the Snapdragon 8 Gen 2.
 */

#ifndef CAMLLM_BASELINES_MLC_LLM_H
#define CAMLLM_BASELINES_MLC_LLM_H

#include <cstdint>
#include <optional>

#include "llm/model_config.h"
#include "llm/quant.h"

namespace camllm::baselines {

/** Snapdragon 8 Gen 2 phone configuration. */
struct MlcLlmConfig
{
    /** Effective (not peak) LPDDR5X bandwidth for GeMV streaming. */
    double dram_effective_gbps = 26.5;

    /** Usable DRAM for weights + KV after OS/app overheads (bytes). */
    std::uint64_t usable_dram_bytes = 6ull * 1000 * 1000 * 1000;

    /** MLC-LLM ships 4-bit RTN weights with fp16 activations. */
    std::uint32_t weight_bits = 4;
    std::uint32_t act_bits = 16;

    std::uint32_t seq_len = 512;
};

/** Decode-speed result; empty tokens_per_s means OOM. */
struct MlcLlmResult
{
    bool oom = false;
    double tokens_per_s = 0.0;
    std::uint64_t resident_bytes = 0;
};

/** Evaluate MLC-LLM's decode speed (or OOM) for @p model. */
MlcLlmResult mlcLlmDecode(const llm::ModelConfig &model,
                          const MlcLlmConfig &config = {});

} // namespace camllm::baselines

#endif // CAMLLM_BASELINES_MLC_LLM_H
