#include "roofline.h"

#include "common/logging.h"

namespace camllm::baselines {

double
llmDecodeAi(const llm::ModelConfig &model, const llm::QuantSpec &quant,
            std::uint32_t seq)
{
    // Per token: 2 ops per weight element, weights read once; the KV
    // cache is read once and contributes 2 ops per element too.
    const double wparams = double(model.decodeWeightParams());
    const double kv_elems =
        double(model.kvCacheBytes(seq, 1)); // elements, width-free
    const double ops = 2.0 * (wparams + kv_elems);
    const double bytes = double(quant.weightBytes(
                             model.decodeWeightParams())) +
                         double(model.kvCacheBytes(seq,
                                                   quant.act_bits / 8));
    return ops / bytes;
}

double
llmPrefillAi(const llm::ModelConfig &model, const llm::QuantSpec &quant,
             std::uint32_t prompt_len)
{
    // Weights are reused across all prompt positions.
    const double wparams = double(model.decodeWeightParams());
    const double ops = 2.0 * wparams * double(prompt_len);
    const double bytes =
        double(quant.weightBytes(model.decodeWeightParams())) +
        double(prompt_len) * model.d_model * (quant.act_bits / 8.0) * 2.0;
    return ops / bytes;
}

namespace {

/** One convolution layer's ops and bytes at INT8. */
struct ConvCost
{
    double ops = 0.0;
    double bytes = 0.0;
};

ConvCost
conv(std::uint32_t batch, std::uint32_t hw, std::uint32_t cin,
     std::uint32_t cout, std::uint32_t k = 3)
{
    ConvCost c;
    const double out_elems = double(batch) * hw * hw * cout;
    c.ops = 2.0 * out_elems * k * k * cin;
    const double weights = double(k) * k * cin * cout;
    const double activations =
        double(batch) * hw * hw * (cin + cout);
    c.bytes = weights + activations;
    return c;
}

} // namespace

double
vgg16Ai(std::uint32_t batch)
{
    CAMLLM_ASSERT(batch > 0);
    // The 13 conv layers of VGG-16 (feature extractor at 224x224).
    struct L { std::uint32_t hw, cin, cout; };
    static const L layers[] = {
        {224, 3, 64},   {224, 64, 64},  {112, 64, 128},
        {112, 128, 128},{56, 128, 256}, {56, 256, 256},
        {56, 256, 256}, {28, 256, 512}, {28, 512, 512},
        {28, 512, 512}, {14, 512, 512}, {14, 512, 512},
        {14, 512, 512},
    };
    double ops = 0.0, bytes = 0.0;
    for (const auto &l : layers) {
        ConvCost c = conv(batch, l.hw, l.cin, l.cout);
        ops += c.ops;
        bytes += c.bytes;
    }
    // Fully connected tail: 25088->4096->4096->1000.
    const double fc_params =
        25088.0 * 4096 + 4096.0 * 4096 + 4096.0 * 1000;
    ops += 2.0 * fc_params * batch;
    bytes += fc_params + batch * (25088.0 + 4096 + 4096 + 1000);
    return ops / bytes;
}

double
bertBaseAi(std::uint32_t batch, std::uint32_t seq)
{
    CAMLLM_ASSERT(batch > 0 && seq > 0);
    // BERT-base: 12 layers, d=768, ffn=3072; weights reused across
    // batch * seq token positions.
    const double d = 768.0, f = 3072.0, layers = 12.0;
    const double params = layers * (4.0 * d * d + 2.0 * d * f);
    const double tokens = double(batch) * seq;
    double ops = 2.0 * params * tokens;
    // Attention matmuls: QK^T and SV per layer per head.
    ops += layers * batch * 2.0 * 2.0 * double(seq) * seq * d;
    const double act_bytes = tokens * d * 2.0 * layers;
    const double bytes = params + act_bytes;
    return ops / bytes;
}

double
dlrmAi(std::uint32_t batch)
{
    CAMLLM_ASSERT(batch > 0);
    // DLRM inference: bottom MLP 13-512-256-64, top MLP 512-256-1,
    // 26 embedding gathers of 64 B each; MLP weights reused across
    // the batch, embeddings are not.
    const double mlp_params = 13.0 * 512 + 512.0 * 256 + 256.0 * 64 +
                              512.0 * 256 + 256.0 * 1;
    const double emb_bytes_per_sample = 26.0 * 64.0;
    const double ops = 2.0 * mlp_params * batch +
                       2.0 * emb_bytes_per_sample * batch;
    const double bytes = mlp_params + batch * emb_bytes_per_sample +
                         batch * (13 + 64 + 512 + 1);
    return ops / bytes;
}

std::vector<Device>
referenceDevices()
{
    return {
        {"Apple A16 (ANE)", 17.0, 51.2},
        {"NVIDIA A100", 624.0, 2039.0},
        {"Jetson Orin", 275.0, 204.8},
        {"Smartphone NPU", 2.0, 40.0},
    };
}

Device
cambriconDevice(double flash_agg_gbps, double npu_tops)
{
    return {"Cambricon-LLM", npu_tops, flash_agg_gbps};
}

std::vector<ReductionPoint>
reductionRatios(std::uint32_t llm_dim)
{
    return {
        {"LLM GeMV (this work)", double(llm_dim),
         "4096x4096 weights -> 4096 outputs"},
        {"OptimStore (DNN training)", 3.0,
         "params+grads+moments in, params out"},
        {"BeaconGNN (GNN aggregate)", 16.0,
         "mean neighbor degree worth of features in, one node out"},
        {"RecSSD (recsys embedding)", 8.0,
         "multi-hot embedding gather-reduce"},
        {"GenStore (genome filter)", 32.0,
         "read filtering discards most candidates"},
        {"Smart-SSD query (scan)", 64.0,
         "selective scan returns ~1/64 of pages"},
    };
}

} // namespace camllm::baselines
