#include "mlc_llm.h"

#include "common/logging.h"

namespace camllm::baselines {

MlcLlmResult
mlcLlmDecode(const llm::ModelConfig &model, const MlcLlmConfig &config)
{
    CAMLLM_ASSERT(model.valid());
    llm::QuantSpec quant{config.weight_bits, config.act_bits};

    const std::uint64_t weight_bytes =
        quant.weightBytes(model.totalParams());
    const std::uint64_t kv_bytes =
        model.kvCacheBytes(config.seq_len, config.act_bits / 8);

    MlcLlmResult r;
    r.resident_bytes = weight_bytes + kv_bytes;
    if (r.resident_bytes > config.usable_dram_bytes) {
        r.oom = true;
        return r;
    }

    // Every decode step streams the touched weights plus the KV cache
    // through the DRAM interface once.
    const std::uint64_t touched =
        quant.weightBytes(model.decodeWeightParams()) + kv_bytes;
    const double seconds =
        double(touched) / (config.dram_effective_gbps * 1e9);
    r.tokens_per_s = 1.0 / seconds;
    return r;
}

} // namespace camllm::baselines
