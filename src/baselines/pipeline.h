/**
 * @file
 * Chunked multi-stage transfer pipeline.
 *
 * Models offloading frameworks (FlexGen-style) that stream weights
 * through a chain of bandwidth-limited stages (SSD -> host DRAM ->
 * PCIe -> HBM -> compute) with double buffering: chunk i may occupy
 * stage s only after chunk i-1 released it, and after chunk i itself
 * finished stage s-1. Throughput converges to the slowest stage; the
 * fill latency is the sum over stages for the first chunk.
 */

#ifndef CAMLLM_BASELINES_PIPELINE_H
#define CAMLLM_BASELINES_PIPELINE_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"

namespace camllm::baselines {

/** One pipeline stage with a fixed bandwidth and per-chunk latency. */
struct Stage
{
    std::string name;
    double gbps = 1.0;
    Tick latency = 0; ///< fixed per-chunk overhead
};

/** Result of pushing a workload through the pipeline. */
struct PipelineResult
{
    Tick total_time = 0;
    Tick fill_time = 0;        ///< completion of the first chunk
    double bottleneck_gbps = 0.0;
    std::size_t bottleneck_stage = 0;
};

/**
 * Time for @p total_bytes to traverse @p stages in chunks of
 * @p chunk_bytes with double buffering (classic pipeline recurrence).
 */
PipelineResult runPipeline(const std::vector<Stage> &stages,
                           std::uint64_t total_bytes,
                           std::uint64_t chunk_bytes);

} // namespace camllm::baselines

#endif // CAMLLM_BASELINES_PIPELINE_H
