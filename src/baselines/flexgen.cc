#include "flexgen.h"

#include "common/logging.h"

namespace camllm::baselines {

FlexGenResult
flexgenDecode(const llm::ModelConfig &model, const llm::QuantSpec &quant,
              const FlexGenConfig &config,
              const FlexGenEnergyParams &energy)
{
    CAMLLM_ASSERT(model.valid());
    const std::uint64_t layer_params =
        model.attnParamsPerLayer() + model.ffnParamsPerLayer();
    const std::uint64_t weight_bytes =
        quant.weightBytes(model.decodeWeightParams());
    const std::uint64_t chunk_bytes =
        quant.weightBytes(layer_params) * config.chunk_layers;

    // Compute expressed as an equivalent bandwidth so it can take its
    // place in the pipeline (it never binds in single-batch decode).
    const double flops_per_byte = 2.0 / (quant.weight_bits / 8.0);
    const double compute_gbps =
        config.gpu_tops * 1000.0 / flops_per_byte;

    std::vector<Stage> stages;
    if (config.placement == FlexGenPlacement::Ssd)
        stages.push_back({"ssd", config.ssd_gbps, 20 * kUs});
    stages.push_back({"pcie", config.pcie_gbps, 10 * kUs});
    stages.push_back({"hbm", config.hbm_gbps, 2 * kUs});
    stages.push_back({"compute", compute_gbps, 5 * kUs});

    PipelineResult pr = runPipeline(stages, weight_bytes, chunk_bytes);

    // Attention over the KV cache runs on-GPU from HBM; it is small
    // but serialized with the weight stream's tail.
    const std::uint64_t kv_bytes =
        model.kvCacheBytes(config.seq_len, quant.act_bits / 8);
    const Tick kv_time = transferTime(kv_bytes, config.hbm_gbps);

    FlexGenResult r;
    r.token_time = pr.total_time + kv_time;
    r.tokens_per_s = double(kSec) / double(r.token_time);

    // Fig 16a accounting: every staging hop counts, which is the 3x
    // amplification the paper attributes to conventional offloading.
    const bool from_ssd = config.placement == FlexGenPlacement::Ssd;
    const std::uint64_t hops = from_ssd ? 3 : 2;
    r.transfer_bytes = hops * weight_bytes + kv_bytes;

    const double flops = 2.0 * double(model.decodeWeightParams());
    double pj = 0.0;
    if (from_ssd) {
        pj += double(weight_bytes) * energy.pj_per_byte_nand;
        pj += double(weight_bytes) * energy.pj_per_byte_pcie; // ssd->dram
        pj += 2.0 * double(weight_bytes) * energy.pj_per_byte_dram;
    } else {
        pj += double(weight_bytes) * energy.pj_per_byte_dram; // read
    }
    pj += double(weight_bytes) * energy.pj_per_byte_pcie; // dram->hbm
    pj += 2.0 * double(weight_bytes + kv_bytes) * energy.pj_per_byte_hbm;
    pj += flops * energy.pj_per_flop_gpu;
    r.energy_j = pj * 1e-12;
    return r;
}

} // namespace camllm::baselines
