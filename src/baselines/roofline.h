/**
 * @file
 * Arithmetic-intensity / roofline analytics (Fig 1 and Fig 3a) and the
 * reduction-ratio comparison against prior in-storage-computing
 * workloads (Fig 1b).
 */

#ifndef CAMLLM_BASELINES_ROOFLINE_H
#define CAMLLM_BASELINES_ROOFLINE_H

#include <cstdint>
#include <string>
#include <vector>

#include "llm/model_config.h"
#include "llm/quant.h"

namespace camllm::baselines {

/** A named workload point on the AI axis. */
struct AiPoint
{
    std::string name;
    double ops_per_byte = 0.0;
};

/** A hardware platform for roofline ceilings. */
struct Device
{
    std::string name;
    double tops = 0.0;     ///< peak INT8 throughput
    double mem_gbps = 0.0; ///< memory bandwidth

    /** AI at which the device turns compute bound. */
    double ridge() const { return tops * 1000.0 / mem_gbps; }

    /** Attainable GOPS at arithmetic intensity @p ai. */
    double
    attainableGops(double ai) const
    {
        double mem_bound = ai * mem_gbps;
        double peak = tops * 1000.0;
        return mem_bound < peak ? mem_bound : peak;
    }
};

/** AI of single-batch LLM decode: ~2 ops per weight byte at INT8. */
double llmDecodeAi(const llm::ModelConfig &model,
                   const llm::QuantSpec &quant, std::uint32_t seq);

/** AI of the prefill phase over @p prompt_len tokens. */
double llmPrefillAi(const llm::ModelConfig &model,
                    const llm::QuantSpec &quant,
                    std::uint32_t prompt_len);

/** AI of VGG-16 inference at INT8 (computed layer by layer). */
double vgg16Ai(std::uint32_t batch);

/** AI of BERT-base encoding a @p seq-token batch at INT8. */
double bertBaseAi(std::uint32_t batch, std::uint32_t seq);

/** AI of a DLRM-style MLP + embedding inference at INT8. */
double dlrmAi(std::uint32_t batch);

/** Fig 1a device set: Apple A16, NVIDIA A100, Jetson Orin. */
std::vector<Device> referenceDevices();

/** The Cambricon-LLM point: NPU fed by flash channels + on-die PEs. */
Device cambriconDevice(double flash_agg_gbps, double npu_tops);

/** Fig 1b: reduction ratios of ISC workloads vs LLM GeMV. */
struct ReductionPoint
{
    std::string workload;
    double reduction_ratio;
    std::string basis; ///< how the number arises
};
std::vector<ReductionPoint> reductionRatios(std::uint32_t llm_dim);

} // namespace camllm::baselines

#endif // CAMLLM_BASELINES_ROOFLINE_H
