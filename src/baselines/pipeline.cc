#include "pipeline.h"

#include <algorithm>

#include "common/logging.h"

namespace camllm::baselines {

PipelineResult
runPipeline(const std::vector<Stage> &stages, std::uint64_t total_bytes,
            std::uint64_t chunk_bytes)
{
    CAMLLM_ASSERT(!stages.empty());
    CAMLLM_ASSERT(total_bytes > 0 && chunk_bytes > 0);

    const std::size_t n_chunks =
        (total_bytes + chunk_bytes - 1) / chunk_bytes;
    const std::size_t n_stages = stages.size();

    // finish[s]: when stage s finished its latest chunk.
    std::vector<Tick> finish(n_stages, 0);
    Tick first_chunk_done = 0;

    std::uint64_t remaining = total_bytes;
    for (std::size_t c = 0; c < n_chunks; ++c) {
        const std::uint64_t bytes =
            std::min<std::uint64_t>(chunk_bytes, remaining);
        remaining -= bytes;
        Tick prev_stage_done = 0;
        for (std::size_t s = 0; s < n_stages; ++s) {
            const Tick start = std::max(prev_stage_done, finish[s]);
            const Tick dur =
                stages[s].latency + transferTime(bytes, stages[s].gbps);
            finish[s] = start + dur;
            prev_stage_done = finish[s];
        }
        if (c == 0)
            first_chunk_done = finish[n_stages - 1];
    }

    PipelineResult r;
    r.total_time = finish[n_stages - 1];
    r.fill_time = first_chunk_done;
    r.bottleneck_gbps = stages[0].gbps;
    r.bottleneck_stage = 0;
    for (std::size_t s = 1; s < n_stages; ++s) {
        if (stages[s].gbps < r.bottleneck_gbps) {
            r.bottleneck_gbps = stages[s].gbps;
            r.bottleneck_stage = s;
        }
    }
    return r;
}

} // namespace camllm::baselines
