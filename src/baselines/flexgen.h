/**
 * @file
 * FlexGen-style offloading baseline (Table III).
 *
 * Weights live on an NVMe SSD (FlexGen-SSD) or in host DRAM
 * (FlexGen-DRAM) and stream layer-by-layer through PCIe into the
 * GPU's HBM for every generated token. Decode is transfer-bound, so
 * the decisive quantities are the SSD read rate, the PCIe rate, and
 * the 3x data amplification of the staging path that the paper calls
 * out (SSD -> DRAM, DRAM -> HBM, HBM -> compute).
 */

#ifndef CAMLLM_BASELINES_FLEXGEN_H
#define CAMLLM_BASELINES_FLEXGEN_H

#include <cstdint>

#include "baselines/pipeline.h"
#include "llm/model_config.h"
#include "llm/quant.h"

namespace camllm::baselines {

/** Where FlexGen keeps the weights. */
enum class FlexGenPlacement
{
    Ssd,
    Dram
};

/** Server configuration (Table III hardware). */
struct FlexGenConfig
{
    FlexGenPlacement placement = FlexGenPlacement::Ssd;

    /** Effective NVMe sequential read rate (GB/s). */
    double ssd_gbps = 5.5;

    /** Effective PCIe 4.0 x16 host->device rate (GB/s). */
    double pcie_gbps = 25.0;

    /** A100 HBM2e bandwidth (GB/s); write + read of staged weights. */
    double hbm_gbps = 1935.0;

    /** GPU INT8 throughput (TOPS), far from binding in decode. */
    double gpu_tops = 624.0;

    /** Per-layer transfer granularity (double buffering unit). */
    std::uint32_t chunk_layers = 1;

    std::uint32_t seq_len = 512;
};

/** Per-token results of the FlexGen model. */
struct FlexGenResult
{
    double tokens_per_s = 0.0;
    Tick token_time = 0;

    /** Total bytes moved per token across all staging hops
     *  (Fig 16a accounting). */
    std::uint64_t transfer_bytes = 0;

    /** Energy per token (Fig 16b). */
    double energy_j = 0.0;
};

/** Per-hop energy constants for the server path (pJ/byte). */
struct FlexGenEnergyParams
{
    double pj_per_byte_nand = 120.0; ///< SSD NAND array read
    double pj_per_byte_pcie = 30.0;  ///< each PCIe traversal
    double pj_per_byte_dram = 15.0;  ///< server DDR4, per access
    double pj_per_byte_hbm = 8.0;    ///< HBM2e, per access
    double pj_per_flop_gpu = 1.0;
};

/** Evaluate FlexGen's decode speed for @p model. */
FlexGenResult flexgenDecode(const llm::ModelConfig &model,
                            const llm::QuantSpec &quant,
                            const FlexGenConfig &config,
                            const FlexGenEnergyParams &energy = {});

} // namespace camllm::baselines

#endif // CAMLLM_BASELINES_FLEXGEN_H
