#include "tiny_transformer.h"

#include <cmath>
#include <cstring>

#include "common/logging.h"
#include "common/rng.h"
#include "llm/kernels.h"

namespace camllm::llm {

namespace {

/** Bulk sigma of the INT8 weight distribution. */
constexpr double kBulkSigma = 14.0;

/** Fill @p t with Gaussian-bulk + planted-outlier INT8 weights. */
void
initWeights(QTensor &t, const TinyConfig &cfg, Rng &rng)
{
    for (auto &w : t.data) {
        double v = rng.normal() * kBulkSigma;
        if (rng.chance(cfg.outlier_frac))
            v *= cfg.outlier_mag;
        v = std::max(-127.0, std::min(127.0, std::round(v)));
        w = std::int8_t(v);
    }
    // Keep activations O(1): float weight stddev ~= 1/sqrt(fan_in).
    t.scale = float(1.0 / (kBulkSigma * std::sqrt(double(t.cols))));
}

} // namespace

TinyTransformer::TinyTransformer(const TinyConfig &cfg, std::uint64_t seed)
    : cfg_(cfg)
{
    CAMLLM_ASSERT(cfg.d_model % cfg.n_heads == 0);
    Rng rng(seed);
    embed_ = QTensor(cfg.vocab, cfg.d_model, 1.0f);
    initWeights(embed_, cfg_, rng);
    embed_.scale = float(1.0 / kBulkSigma); // unit-variance embeddings

    layers_.resize(cfg.n_layers);
    for (auto &l : layers_) {
        l.wq = QTensor(cfg.d_model, cfg.d_model, 1.0f);
        l.wk = QTensor(cfg.d_model, cfg.d_model, 1.0f);
        l.wv = QTensor(cfg.d_model, cfg.d_model, 1.0f);
        l.wo = QTensor(cfg.d_model, cfg.d_model, 1.0f);
        l.fc1 = QTensor(cfg.d_ffn, cfg.d_model, 1.0f);
        l.fc2 = QTensor(cfg.d_model, cfg.d_ffn, 1.0f);
        for (QTensor *t : {&l.wq, &l.wk, &l.wv, &l.wo, &l.fc1, &l.fc2})
            initWeights(*t, cfg_, rng);
    }
    lm_head_ = QTensor(cfg.vocab, cfg.d_model, 1.0f);
    initWeights(lm_head_, cfg_, rng);
}

std::vector<QTensor *>
TinyTransformer::mutableTensors()
{
    std::vector<QTensor *> out;
    out.push_back(&embed_);
    for (auto &l : layers_)
        for (QTensor *t : {&l.wq, &l.wk, &l.wv, &l.wo, &l.fc1, &l.fc2})
            out.push_back(t);
    out.push_back(&lm_head_);
    return out;
}

std::vector<const QTensor *>
TinyTransformer::tensors() const
{
    auto mut = const_cast<TinyTransformer *>(this)->mutableTensors();
    return {mut.begin(), mut.end()};
}

std::size_t
TinyTransformer::weightBytes() const
{
    std::size_t n = 0;
    for (const QTensor *t : tensors())
        n += t->elems();
    return n;
}

std::vector<std::int8_t>
TinyTransformer::packWeights() const
{
    std::vector<std::int8_t> blob;
    blob.reserve(weightBytes());
    for (const QTensor *t : tensors())
        blob.insert(blob.end(), t->data.begin(), t->data.end());
    return blob;
}

void
TinyTransformer::unpackWeights(std::span<const std::int8_t> blob)
{
    CAMLLM_ASSERT(blob.size() == weightBytes(),
                  "blob is %zu bytes, expected %zu", blob.size(),
                  weightBytes());
    std::size_t off = 0;
    for (QTensor *t : mutableTensors()) {
        std::memcpy(t->data.data(), blob.data() + off, t->elems());
        off += t->elems();
    }
}

std::vector<float>
TinyTransformer::forward(std::span<const std::uint16_t> tokens) const
{
    const std::uint32_t d = cfg_.d_model;
    const std::uint32_t hd = cfg_.headDim();
    const std::size_t n = tokens.size();
    CAMLLM_ASSERT(n > 0);

    // Token embeddings plus a fixed sinusoidal position signal.
    std::vector<std::vector<float>> x(n, std::vector<float>(d));
    for (std::size_t i = 0; i < n; ++i) {
        CAMLLM_ASSERT(tokens[i] < cfg_.vocab);
        auto row = embed_.row(tokens[i]);
        for (std::uint32_t c = 0; c < d; ++c) {
            double pos = (c % 2 == 0)
                             ? std::sin(double(i) / std::pow(100.0,
                                        double(c) / d))
                             : std::cos(double(i) / std::pow(100.0,
                                        double(c - 1) / d));
            x[i][c] = float(row[c]) * embed_.scale + 0.1f * float(pos);
        }
    }

    std::vector<float> q(d), k(d), v(d), attn_out(d), buf(d);
    std::vector<std::vector<float>> ks(n, std::vector<float>(d));
    std::vector<std::vector<float>> vs(n, std::vector<float>(d));
    std::vector<float> scores(n);   // per-position slice reused below
    std::vector<float> hbuf(cfg_.d_ffn);

    for (const Layer &layer : layers_) {
        // Pre-compute K/V for every position (weights are shared).
        for (std::size_t i = 0; i < n; ++i) {
            buf = x[i];
            layerNorm(buf);
            gemv(layer.wk, buf, ks[i]);
            gemv(layer.wv, buf, vs[i]);
        }
        for (std::size_t i = 0; i < n; ++i) {
            buf = x[i];
            layerNorm(buf);
            gemv(layer.wq, buf, q);

            // Causal multi-head attention, one head at a time.
            std::fill(attn_out.begin(), attn_out.end(), 0.0f);
            for (std::uint32_t h = 0; h < cfg_.n_heads; ++h) {
                const std::size_t o = std::size_t(h) * hd;
                for (std::size_t j = 0; j <= i; ++j) {
                    scores[j] = dot({q.data() + o, hd},
                                    {ks[j].data() + o, hd}) /
                                std::sqrt(float(hd));
                }
                softmaxInPlace({scores.data(), i + 1});
                for (std::size_t j = 0; j <= i; ++j)
                    for (std::uint32_t c = 0; c < hd; ++c)
                        attn_out[o + c] += scores[j] * vs[j][o + c];
            }
            gemv(layer.wo, attn_out, buf);
            for (std::uint32_t c = 0; c < d; ++c)
                x[i][c] += buf[c];

            // FFN with pre-norm and residual.
            buf = x[i];
            layerNorm(buf);
            gemv(layer.fc1, buf, hbuf);
            geluInPlace(hbuf);
            gemv(layer.fc2, hbuf, buf);
            for (std::uint32_t c = 0; c < d; ++c)
                x[i][c] += buf[c];
        }
    }

    std::vector<float> last = x[n - 1];
    layerNorm(last);
    std::vector<float> logits(cfg_.vocab);
    gemv(lm_head_, last, logits);
    return logits;
}

} // namespace camllm::llm
