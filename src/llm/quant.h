/**
 * @file
 * Quantization modes evaluated in the paper: W8A8 (default) and W4A16
 * (Fig 11). Weight width drives flash traffic and pages-per-matrix;
 * activation width drives vector traffic and KV-cache size.
 */

#ifndef CAMLLM_LLM_QUANT_H
#define CAMLLM_LLM_QUANT_H

#include <cstdint>

#include "common/logging.h"

namespace camllm::llm {

/** Supported weight/activation quantization schemes. W2A16 is the
 *  "more aggressive" point the paper projects future benefit from. */
enum class QuantMode
{
    W8A8,
    W4A16,
    W2A16
};

/** Bit widths and byte-count helpers for a quantization mode. */
struct QuantSpec
{
    std::uint32_t weight_bits = 8;
    std::uint32_t act_bits = 8;

    static QuantSpec
    of(QuantMode m)
    {
        switch (m) {
          case QuantMode::W8A8:
            return QuantSpec{8, 8};
          case QuantMode::W4A16:
            return QuantSpec{4, 16};
          case QuantMode::W2A16:
            return QuantSpec{2, 16};
        }
        panic("unknown quant mode");
    }

    /** Storage bytes for @p elems weights (rounded up). */
    std::uint64_t
    weightBytes(std::uint64_t elems) const
    {
        return (elems * weight_bits + 7) / 8;
    }

    /** Storage bytes for @p elems activations. */
    std::uint64_t
    actBytes(std::uint64_t elems) const
    {
        return (elems * act_bits + 7) / 8;
    }

    /** Weight elements held by one @p page_bytes flash page. */
    std::uint32_t
    elemsPerPage(std::uint32_t page_bytes) const
    {
        return std::uint32_t(std::uint64_t(page_bytes) * 8 / weight_bits);
    }

    const char *
    label() const
    {
        switch (weight_bits) {
          case 2:
            return "W2A16";
          case 4:
            return "W4A16";
          default:
            return "W8A8";
        }
    }
};

} // namespace camllm::llm

#endif // CAMLLM_LLM_QUANT_H
