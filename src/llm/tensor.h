/**
 * @file
 * Minimal tensor types for the functional INT8 inference path used by
 * the error-correction experiments (Fig 3b / Fig 10).
 */

#ifndef CAMLLM_LLM_TENSOR_H
#define CAMLLM_LLM_TENSOR_H

#include <cstdint>
#include <span>
#include <vector>

#include "common/logging.h"

namespace camllm::llm {

/** Row-major INT8 weight matrix with a per-tensor dequant scale. */
struct QTensor
{
    std::uint32_t rows = 0;
    std::uint32_t cols = 0;
    float scale = 1.0f;
    std::vector<std::int8_t> data;

    QTensor() = default;

    QTensor(std::uint32_t r, std::uint32_t c, float s)
        : rows(r), cols(c), scale(s), data(std::size_t(r) * c, 0)
    {
    }

    std::size_t elems() const { return data.size(); }

    std::span<const std::int8_t>
    row(std::uint32_t r) const
    {
        CAMLLM_ASSERT(r < rows);
        return {data.data() + std::size_t(r) * cols, cols};
    }

    std::int8_t
    at(std::uint32_t r, std::uint32_t c) const
    {
        CAMLLM_ASSERT(r < rows && c < cols);
        return data[std::size_t(r) * cols + c];
    }
};

} // namespace camllm::llm

#endif // CAMLLM_LLM_TENSOR_H
