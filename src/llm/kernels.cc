#include "kernels.h"

#include <cmath>

namespace camllm::llm {

void
gemv(const QTensor &w, std::span<const float> x, std::span<float> y)
{
    CAMLLM_ASSERT(x.size() == w.cols, "gemv: x has %zu elems, W has %u cols",
                  x.size(), w.cols);
    CAMLLM_ASSERT(y.size() == w.rows);
    const float s = w.scale;
    for (std::uint32_t r = 0; r < w.rows; ++r) {
        const std::int8_t *row = w.data.data() + std::size_t(r) * w.cols;
        float acc = 0.0f;
        for (std::uint32_t c = 0; c < w.cols; ++c)
            acc += float(row[c]) * x[c];
        y[r] = acc * s;
    }
}

void
layerNorm(std::span<float> x, float eps)
{
    if (x.empty())
        return;
    float mean = 0.0f;
    for (float v : x)
        mean += v;
    mean /= float(x.size());
    float var = 0.0f;
    for (float v : x)
        var += (v - mean) * (v - mean);
    var /= float(x.size());
    float inv = 1.0f / std::sqrt(var + eps);
    for (float &v : x)
        v = (v - mean) * inv;
}

void
softmaxInPlace(std::span<float> x)
{
    if (x.empty())
        return;
    float mx = x[0];
    for (float v : x)
        mx = std::max(mx, v);
    float sum = 0.0f;
    for (float &v : x) {
        v = std::exp(v - mx);
        sum += v;
    }
    for (float &v : x)
        v /= sum;
}

void
geluInPlace(std::span<float> x)
{
    constexpr float k = 0.7978845608028654f; // sqrt(2/pi)
    for (float &v : x) {
        float inner = k * (v + 0.044715f * v * v * v);
        v = 0.5f * v * (1.0f + std::tanh(inner));
    }
}

void
siluInPlace(std::span<float> x)
{
    for (float &v : x)
        v = v / (1.0f + std::exp(-v));
}

std::size_t
argmax(std::span<const float> x)
{
    CAMLLM_ASSERT(!x.empty());
    std::size_t best = 0;
    for (std::size_t i = 1; i < x.size(); ++i)
        if (x[i] > x[best])
            best = i;
    return best;
}

float
dot(std::span<const float> a, std::span<const float> b)
{
    CAMLLM_ASSERT(a.size() == b.size());
    float acc = 0.0f;
    for (std::size_t i = 0; i < a.size(); ++i)
        acc += a[i] * b[i];
    return acc;
}

} // namespace camllm::llm
