#include "kernels.h"

#include <cmath>
#include <cstdlib>

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define CAMLLM_AVX2_TARGET 1
#include <immintrin.h>
#endif

namespace camllm::llm {

void
gemvScalar(const QTensor &w, std::span<const float> x, std::span<float> y)
{
    CAMLLM_ASSERT(x.size() == w.cols, "gemv: x has %zu elems, W has %u cols",
                  x.size(), w.cols);
    CAMLLM_ASSERT(y.size() == w.rows);
    const float s = w.scale;
    for (std::uint32_t r = 0; r < w.rows; ++r) {
        const std::int8_t *row = w.data.data() + std::size_t(r) * w.cols;
        float acc = 0.0f;
        for (std::uint32_t c = 0; c < w.cols; ++c)
            acc += float(row[c]) * x[c];
        y[r] = acc * s;
    }
}

void
gemv(const QTensor &w, std::span<const float> x, std::span<float> y)
{
    CAMLLM_ASSERT(x.size() == w.cols, "gemv: x has %zu elems, W has %u cols",
                  x.size(), w.cols);
    CAMLLM_ASSERT(y.size() == w.rows);
    const float s = w.scale;
    const std::uint32_t cols = w.cols;
    const std::size_t stride = cols;
    const float *xv = x.data();

    // Register-blocked 8-row kernel: x is loaded once per column for
    // all eight rows, and each row keeps a single scalar accumulator
    // updated in strict column order, so every y[r] sums in exactly
    // the same float order as the scalar loop (bit-exact). Eight
    // independent add chains hide the FP-add latency the one-row loop
    // serializes on; the dequant scale is fused once per row block.
    std::uint32_t r = 0;
    for (; r + 8 <= w.rows; r += 8) {
        const std::int8_t *r0 = w.data.data() + std::size_t(r) * stride;
        const std::int8_t *r1 = r0 + stride;
        const std::int8_t *r2 = r1 + stride;
        const std::int8_t *r3 = r2 + stride;
        const std::int8_t *r4 = r3 + stride;
        const std::int8_t *r5 = r4 + stride;
        const std::int8_t *r6 = r5 + stride;
        const std::int8_t *r7 = r6 + stride;
        float a0 = 0.0f, a1 = 0.0f, a2 = 0.0f, a3 = 0.0f;
        float a4 = 0.0f, a5 = 0.0f, a6 = 0.0f, a7 = 0.0f;
        std::uint32_t c = 0;
        for (; c + 2 <= cols; c += 2) {
            const float x0 = xv[c], x1 = xv[c + 1];
            a0 += float(r0[c]) * x0;
            a1 += float(r1[c]) * x0;
            a2 += float(r2[c]) * x0;
            a3 += float(r3[c]) * x0;
            a4 += float(r4[c]) * x0;
            a5 += float(r5[c]) * x0;
            a6 += float(r6[c]) * x0;
            a7 += float(r7[c]) * x0;
            a0 += float(r0[c + 1]) * x1;
            a1 += float(r1[c + 1]) * x1;
            a2 += float(r2[c + 1]) * x1;
            a3 += float(r3[c + 1]) * x1;
            a4 += float(r4[c + 1]) * x1;
            a5 += float(r5[c + 1]) * x1;
            a6 += float(r6[c + 1]) * x1;
            a7 += float(r7[c + 1]) * x1;
        }
        for (; c < cols; ++c) {
            const float xc = xv[c];
            a0 += float(r0[c]) * xc;
            a1 += float(r1[c]) * xc;
            a2 += float(r2[c]) * xc;
            a3 += float(r3[c]) * xc;
            a4 += float(r4[c]) * xc;
            a5 += float(r5[c]) * xc;
            a6 += float(r6[c]) * xc;
            a7 += float(r7[c]) * xc;
        }
        y[r] = a0 * s;
        y[r + 1] = a1 * s;
        y[r + 2] = a2 * s;
        y[r + 3] = a3 * s;
        y[r + 4] = a4 * s;
        y[r + 5] = a5 * s;
        y[r + 6] = a6 * s;
        y[r + 7] = a7 * s;
    }
    for (; r < w.rows; ++r) {
        const std::int8_t *row = w.data.data() + std::size_t(r) * stride;
        float acc = 0.0f;
        for (std::uint32_t c = 0; c < cols; ++c)
            acc += float(row[c]) * xv[c];
        y[r] = acc * s;
    }
}

#ifdef CAMLLM_AVX2_TARGET

namespace {

/** Widen 8 int8 weights to 8 float lanes. */
__attribute__((target("avx2"))) inline __m256
loadW8(const std::int8_t *p)
{
    const __m128i b =
        _mm_loadl_epi64(reinterpret_cast<const __m128i *>(p));
    return _mm256_cvtepi32_ps(_mm256_cvtepi8_epi32(b));
}

__attribute__((target("avx"))) inline float
hsum256(__m256 v)
{
    __m128 lo = _mm256_castps256_ps128(v);
    __m128 hi = _mm256_extractf128_ps(v, 1);
    lo = _mm_add_ps(lo, hi);
    lo = _mm_hadd_ps(lo, lo);
    lo = _mm_hadd_ps(lo, lo);
    return _mm_cvtss_f32(lo);
}

/**
 * AVX2 int8 GeMV: 4 rows per block, 16 columns per step. Each step
 * widens 8 int8 weights to float (cvtepi8_epi32 + cvtepi32_ps) and
 * FMAs them against the shared activation vector; two accumulators
 * per row hide the FMA latency. Row sums reduce lane-wise at the end,
 * so the float addition order differs from gemvScalar (tolerance, not
 * bit-exactness, is the contract — see gemvFast).
 */
__attribute__((target("avx2,fma"))) void
gemvAvx2(const QTensor &w, const float *xv, float *y)
{
    const float s = w.scale;
    const std::uint32_t cols = w.cols;
    const std::size_t stride = cols;

    std::uint32_t r = 0;
    for (; r + 4 <= w.rows; r += 4) {
        const std::int8_t *r0 = w.data.data() + std::size_t(r) * stride;
        const std::int8_t *r1 = r0 + stride;
        const std::int8_t *r2 = r1 + stride;
        const std::int8_t *r3 = r2 + stride;
        __m256 a0 = _mm256_setzero_ps(), b0 = _mm256_setzero_ps();
        __m256 a1 = _mm256_setzero_ps(), b1 = _mm256_setzero_ps();
        __m256 a2 = _mm256_setzero_ps(), b2 = _mm256_setzero_ps();
        __m256 a3 = _mm256_setzero_ps(), b3 = _mm256_setzero_ps();
        std::uint32_t c = 0;
        for (; c + 16 <= cols; c += 16) {
            const __m256 x0 = _mm256_loadu_ps(xv + c);
            const __m256 x1 = _mm256_loadu_ps(xv + c + 8);
            a0 = _mm256_fmadd_ps(loadW8(r0 + c), x0, a0);
            b0 = _mm256_fmadd_ps(loadW8(r0 + c + 8), x1, b0);
            a1 = _mm256_fmadd_ps(loadW8(r1 + c), x0, a1);
            b1 = _mm256_fmadd_ps(loadW8(r1 + c + 8), x1, b1);
            a2 = _mm256_fmadd_ps(loadW8(r2 + c), x0, a2);
            b2 = _mm256_fmadd_ps(loadW8(r2 + c + 8), x1, b2);
            a3 = _mm256_fmadd_ps(loadW8(r3 + c), x0, a3);
            b3 = _mm256_fmadd_ps(loadW8(r3 + c + 8), x1, b3);
        }
        for (; c + 8 <= cols; c += 8) {
            const __m256 x0 = _mm256_loadu_ps(xv + c);
            a0 = _mm256_fmadd_ps(loadW8(r0 + c), x0, a0);
            a1 = _mm256_fmadd_ps(loadW8(r1 + c), x0, a1);
            a2 = _mm256_fmadd_ps(loadW8(r2 + c), x0, a2);
            a3 = _mm256_fmadd_ps(loadW8(r3 + c), x0, a3);
        }
        float t0 = hsum256(_mm256_add_ps(a0, b0));
        float t1 = hsum256(_mm256_add_ps(a1, b1));
        float t2 = hsum256(_mm256_add_ps(a2, b2));
        float t3 = hsum256(_mm256_add_ps(a3, b3));
        for (; c < cols; ++c) {
            const float xc = xv[c];
            t0 += float(r0[c]) * xc;
            t1 += float(r1[c]) * xc;
            t2 += float(r2[c]) * xc;
            t3 += float(r3[c]) * xc;
        }
        y[r] = t0 * s;
        y[r + 1] = t1 * s;
        y[r + 2] = t2 * s;
        y[r + 3] = t3 * s;
    }
    for (; r < w.rows; ++r) {
        const std::int8_t *row = w.data.data() + std::size_t(r) * stride;
        __m256 acc = _mm256_setzero_ps();
        std::uint32_t c = 0;
        for (; c + 8 <= cols; c += 8)
            acc = _mm256_fmadd_ps(loadW8(row + c),
                                  _mm256_loadu_ps(xv + c), acc);
        float t = hsum256(acc);
        for (; c < cols; ++c)
            t += float(row[c]) * xv[c];
        y[r] = t * s;
    }
}

} // namespace

#endif // CAMLLM_AVX2_TARGET

bool
simdDisabledByEnv()
{
    // Read per call (not cached) so tests and operators can toggle the
    // escape hatch at runtime; the getenv cost is noise next to a GeMV.
    const char *v = std::getenv("CAMLLM_NO_SIMD");
    return v != nullptr && v[0] != '\0' && v[0] != '0';
}

bool
gemvFastUsesAvx2()
{
#ifdef CAMLLM_AVX2_TARGET
    static const bool ok = __builtin_cpu_supports("avx2") &&
                           __builtin_cpu_supports("fma");
    return ok && !simdDisabledByEnv();
#else
    return false;
#endif
}

void
gemvFast(const QTensor &w, std::span<const float> x, std::span<float> y)
{
    CAMLLM_ASSERT(x.size() == w.cols, "gemv: x has %zu elems, W has %u cols",
                  x.size(), w.cols);
    CAMLLM_ASSERT(y.size() == w.rows);
#ifdef CAMLLM_AVX2_TARGET
    if (gemvFastUsesAvx2()) {
        gemvAvx2(w, x.data(), y.data());
        return;
    }
#endif
    // Non-AVX2 builds (and CAMLLM_NO_SIMD=1) take the scalar reference
    // path: bit-exact with gemvScalar by definition, so the fallback
    // is also the ground truth the tolerance tests compare against.
    gemvScalar(w, x, y);
}

void
layerNorm(std::span<float> x, float eps)
{
    if (x.empty())
        return;
    float mean = 0.0f;
    for (float v : x)
        mean += v;
    mean /= float(x.size());
    float var = 0.0f;
    for (float v : x)
        var += (v - mean) * (v - mean);
    var /= float(x.size());
    float inv = 1.0f / std::sqrt(var + eps);
    for (float &v : x)
        v = (v - mean) * inv;
}

void
softmaxInPlace(std::span<float> x)
{
    if (x.empty())
        return;
    float mx = x[0];
    for (float v : x)
        mx = std::max(mx, v);
    float sum = 0.0f;
    for (float &v : x) {
        v = std::exp(v - mx);
        sum += v;
    }
    for (float &v : x)
        v /= sum;
}

void
geluInPlace(std::span<float> x)
{
    constexpr float k = 0.7978845608028654f; // sqrt(2/pi)
    for (float &v : x) {
        float inner = k * (v + 0.044715f * v * v * v);
        v = 0.5f * v * (1.0f + std::tanh(inner));
    }
}

void
siluInPlace(std::span<float> x)
{
    for (float &v : x)
        v = v / (1.0f + std::exp(-v));
}

std::size_t
argmax(std::span<const float> x)
{
    CAMLLM_ASSERT(!x.empty());
    std::size_t best = 0;
    for (std::size_t i = 1; i < x.size(); ++i)
        if (x[i] > x[best])
            best = i;
    return best;
}

float
dot(std::span<const float> a, std::span<const float> b)
{
    CAMLLM_ASSERT(a.size() == b.size());
    float acc = 0.0f;
    for (std::size_t i = 0; i < a.size(); ++i)
        acc += a[i] * b[i];
    return acc;
}

} // namespace camllm::llm
