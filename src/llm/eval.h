/**
 * @file
 * Synthetic multiple-choice evaluation harness.
 *
 * Stands in for HellaSwag / ARC / WinoGrande in the error-correction
 * experiments: items are scored by comparing choice-token logits, and
 * the label distribution is constructed so the *clean* model scores
 * the dataset's published baseline accuracy. Weight corruption then
 * degrades accuracy toward chance exactly as in the paper's figures.
 */

#ifndef CAMLLM_LLM_EVAL_H
#define CAMLLM_LLM_EVAL_H

#include <cstdint>
#include <string>
#include <vector>

#include "llm/tiny_transformer.h"

namespace camllm::llm {

/** One multiple-choice item. */
struct EvalItem
{
    std::vector<std::uint16_t> prompt;
    std::vector<std::uint16_t> choices; ///< candidate next tokens
    std::uint32_t label = 0;            ///< index into choices
};

/** A named synthetic benchmark. */
struct EvalDataset
{
    std::string name;
    std::uint32_t n_choices = 4;
    std::vector<EvalItem> items;

    double chanceAccuracy() const { return 1.0 / double(n_choices); }
};

/**
 * Build a dataset whose labels agree with @p clean_model's argmax
 * choice with probability @p clean_accuracy (so the clean model's
 * measured accuracy matches the paper's baseline for that dataset).
 */
EvalDataset makeDataset(const TinyTransformer &clean_model,
                        const std::string &name, std::uint32_t n_items,
                        std::uint32_t n_choices, std::uint32_t prompt_len,
                        double clean_accuracy, std::uint64_t seed);

/** Accuracy of @p model on @p ds (fraction of argmax == label). */
double evaluate(const TinyTransformer &model, const EvalDataset &ds);

} // namespace camllm::llm

#endif // CAMLLM_LLM_EVAL_H
