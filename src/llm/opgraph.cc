#include "opgraph.h"

#include <algorithm>

#include "common/logging.h"

namespace camllm::llm {

std::uint64_t
DecodeGraph::totalWeightElems() const
{
    std::uint64_t n = 0;
    for (const auto &op : ops)
        if (op.kind == OpKind::GemvWeight)
            n += op.weightElems();
    return n;
}

std::uint64_t
DecodeGraph::totalKvLoadBytes() const
{
    std::uint64_t n = 0;
    for (const auto &op : ops)
        if (op.kind == OpKind::KvLoadCompute)
            n += op.kv_bytes;
    return n;
}

double
DecodeGraph::totalFlops() const
{
    double n = 0.0;
    for (const auto &op : ops) {
        if (op.kind == OpKind::GemvWeight)
            n += 2.0 * double(op.weightElems());
        else
            n += op.flops;
    }
    return n;
}

namespace {

/** Incremental graph builder with named-op dependency helpers. */
class Builder
{
  public:
    /**
     * @p seq is the context length in decode mode and the chunk length
     * in prefill mode; @p kv_base is the KV entries already written by
     * earlier prefill chunks (0 for decode and whole-prompt prefill).
     */
    Builder(const ModelConfig &m, std::uint32_t seq, const QuantSpec &q,
            bool prefill = false, std::uint32_t kv_base = 0)
        : m_(m), seq_(seq), kv_base_(kv_base), q_(q), prefill_(prefill)
    {
    }

    std::uint32_t
    add(Op op)
    {
        g_.ops.push_back(std::move(op));
        return std::uint32_t(g_.ops.size() - 1);
    }

    std::uint32_t
    sfu(std::string name, std::uint32_t layer, double elems,
        std::vector<std::uint32_t> deps)
    {
        Op op;
        op.kind = OpKind::Sfu;
        op.name = std::move(name);
        op.layer = layer;
        op.sfu_elems = elems;
        op.flops = elems; // one special op per element, roughly
        op.deps = std::move(deps);
        return add(std::move(op));
    }

    std::uint32_t
    gemv(std::string name, std::uint32_t layer, std::uint64_t rows,
         std::uint64_t cols, std::vector<std::uint32_t> deps)
    {
        Op op;
        op.kind = OpKind::GemvWeight;
        op.name = std::move(name);
        op.layer = layer;
        op.rows = rows;
        op.cols = cols;
        op.npu_compute_scale = prefill_ ? double(seq_) : 1.0;
        op.deps = std::move(deps);
        return add(std::move(op));
    }

    /** One transformer layer; returns its output op index. */
    std::uint32_t
    layer(std::uint32_t l, std::uint32_t input)
    {
        const std::uint64_t d = m_.d_model;
        const std::uint64_t kvp = m_.kvProjDim();
        const std::uint32_t act_b = q_.act_bits / 8;

        // In prefill the same weights multiply every position of the
        // chunk; in decode there is exactly one position. Attention
        // always spans the whole accumulated context.
        const double pos = prefill_ ? double(seq_) : 1.0;
        const std::uint64_t ctx = std::uint64_t(kv_base_) + seq_;

        auto ln1 = sfu("ln1", l, pos * double(d), {input});
        auto q = gemv("wq", l, d, d, {ln1});
        auto k = gemv("wk", l, kvp, d, {ln1});
        auto v = gemv("wv", l, kvp, d, {ln1});

        Op append;
        append.kind = OpKind::KvAppend;
        append.name = "kv_append";
        append.layer = l;
        append.kv_bytes = std::uint64_t(pos) * 2ull * kvp * act_b;
        append.deps = {k, v};
        auto ap = add(std::move(append));

        // Attention scores: q . K^T. In decode the K stream comes from
        // DRAM; in prefill position j of the chunk attends causally to
        // kv_base + j + 1 keys, so the chunk's score MACs sum to
        // pos * (2*kv_base + pos + 1) / 2 per attention dimension (2
        // flops per MAC) while K makes one DRAM round trip per chunk
        // (FlashAttention-style tiling keeps the working set on chip).
        // The causal sum telescopes across chunks — splitting a prompt
        // changes only the re-streamed KV bytes and per-chunk drains,
        // never the attention compute charged — and a mid-prompt chunk
        // re-streams the kv_base entries earlier chunks wrote, so its
        // KV load covers ctx, not just the chunk.
        Op score;
        score.kind = OpKind::KvLoadCompute;
        score.name = "attn_score";
        score.layer = l;
        score.kv_bytes = ctx * kvp * act_b;
        score.flops =
            prefill_ ? pos * (2.0 * kv_base_ + pos + 1.0) * double(d)
                     : 2.0 * double(ctx) * double(d);
        score.deps = {q, ap};
        auto sc = add(std::move(score));

        auto sm = sfu("softmax", l,
                      prefill_ ? double(m_.n_heads) * pos *
                                     (2.0 * kv_base_ + pos + 1.0) / 2.0
                               : double(m_.n_heads) * double(ctx),
                      {sc});

        Op attn_ctx;
        attn_ctx.kind = OpKind::KvLoadCompute;
        attn_ctx.name = "attn_context";
        attn_ctx.layer = l;
        attn_ctx.kv_bytes = ctx * kvp * act_b;
        attn_ctx.flops = score.flops;
        attn_ctx.deps = {sm};
        auto cx = add(std::move(attn_ctx));

        auto o = gemv("wo", l, d, d, {cx});
        auto ln2 = sfu("ln2", l, pos * double(d), {o});

        std::uint32_t ffn_out;
        if (m_.ffn_style == FfnStyle::Gated) {
            auto gate = gemv("w_gate", l, m_.d_ffn, d, {ln2});
            auto up = gemv("w_up", l, m_.d_ffn, d, {ln2});
            auto act = sfu("silu", l, pos * double(m_.d_ffn),
                           {gate, up});
            ffn_out = gemv("w_down", l, d, m_.d_ffn, {act});
        } else {
            auto fc1 = gemv("fc1", l, m_.d_ffn, d, {ln2});
            auto act = sfu("gelu", l, pos * double(m_.d_ffn), {fc1});
            ffn_out = gemv("fc2", l, d, m_.d_ffn, {act});
        }
        return ffn_out;
    }

    DecodeGraph
    build(std::uint32_t layers_to_build, bool with_head = true)
    {
        // The token embedding lookup is a single page read; it is
        // negligible next to billions of weight reads and is folded
        // into the first norm.
        const double pos = prefill_ ? double(seq_) : 1.0;
        auto cur = sfu("embed", 0, pos * double(m_.d_model), {});
        for (std::uint32_t l = 0; l < layers_to_build; ++l)
            cur = layer(l, cur);
        // Mid-prompt prefill chunks emit no token: they only deposit
        // KV, so they skip the final norm and the head projection.
        if (with_head) {
            auto fin = sfu("final_norm", layers_to_build - 1,
                           double(m_.d_model), {cur});
            // The lm_head projects only the final position, even in
            // prefill, so its compute scale stays 1.
            auto head = gemv("lm_head", ~std::uint32_t(0), m_.vocab,
                             m_.d_model, {fin});
            g_.ops[head].npu_compute_scale = 1.0;
        }
        g_.n_layers = layers_to_build;
        return std::move(g_);
    }

  private:
    const ModelConfig &m_;
    std::uint32_t seq_;
    std::uint32_t kv_base_;
    QuantSpec q_;
    bool prefill_;
    DecodeGraph g_;
};

} // namespace

DecodeGraph
buildDecodeGraph(const ModelConfig &model, std::uint32_t seq,
                 const QuantSpec &quant, std::uint32_t layers_to_build)
{
    CAMLLM_ASSERT(model.valid(), "invalid model %s", model.name.c_str());
    CAMLLM_ASSERT(layers_to_build > 0 &&
                  layers_to_build <= model.n_layers);
    CAMLLM_ASSERT(seq > 0);
    Builder b(model, seq, quant);
    return b.build(layers_to_build);
}

void
rebindDecodeGraphSeq(DecodeGraph &g, const ModelConfig &model,
                     const QuantSpec &quant, std::uint32_t seq)
{
    CAMLLM_ASSERT(seq > 0);
    const std::uint64_t d = model.d_model;
    const std::uint64_t kvp = model.kvProjDim();
    const std::uint32_t act_b = quant.act_bits / 8;
    // Matches Builder::layer with pos == 1 (decode): score and
    // context each load the K (or V) stream and cost 2*seq*d flops.
    const std::uint64_t kv_bytes = std::uint64_t(seq) * kvp * act_b;
    const double kv_flops = 2.0 * double(seq) * double(d);
    for (Op &op : g.ops) {
        if (op.kind == OpKind::KvLoadCompute) {
            op.kv_bytes = kv_bytes;
            op.flops = kv_flops;
        } else if (op.kind == OpKind::Sfu && op.name == "softmax") {
            op.sfu_elems = double(model.n_heads) * seq;
            op.flops = op.sfu_elems;
        }
    }
}

void
kvSegmentBytes(const KvView &view, std::uint64_t bytes,
               std::uint32_t start_tok, std::uint32_t count,
               std::vector<std::uint64_t> &out)
{
    CAMLLM_ASSERT(count > 0 && bytes > 0);
    const std::uint32_t bt = view.block_tokens;
    if (!view.paged() ||
        start_tok / bt == (start_tok + count - 1) / bt) {
        out.push_back(bytes); // contiguous, or inside one block
        return;
    }
    const std::uint64_t per_tok = bytes / count;
    CAMLLM_ASSERT(per_tok > 0, "KV transfer smaller than its tokens");
    std::uint32_t tok = start_tok;
    std::uint64_t left = bytes;
    while (tok < start_tok + count) {
        const std::uint32_t block_end = (tok / bt + 1) * bt;
        const std::uint32_t n =
            std::min(block_end, start_tok + count) - tok;
        // The final segment absorbs the per-token rounding remainder.
        const std::uint64_t seg = (tok + n == start_tok + count)
                                      ? left
                                      : per_tok * n;
        out.push_back(seg);
        left -= seg;
        tok += n;
    }
}

DecodeGraph
buildPrefillGraph(const ModelConfig &model, std::uint32_t prompt_len,
                  const QuantSpec &quant, std::uint32_t layers_to_build)
{
    return buildPrefillChunkGraph(model, prompt_len, /*kv_base=*/0,
                                  quant, layers_to_build,
                                  /*last_chunk=*/true);
}

DecodeGraph
buildPrefillChunkGraph(const ModelConfig &model, std::uint32_t chunk_len,
                       std::uint32_t kv_base, const QuantSpec &quant,
                       std::uint32_t layers_to_build, bool last_chunk)
{
    CAMLLM_ASSERT(model.valid(), "invalid model %s", model.name.c_str());
    CAMLLM_ASSERT(layers_to_build > 0 &&
                  layers_to_build <= model.n_layers);
    CAMLLM_ASSERT(chunk_len > 0);
    Builder b(model, chunk_len, quant, /*prefill=*/true, kv_base);
    return b.build(layers_to_build, /*with_head=*/last_chunk);
}

} // namespace camllm::llm
