/**
 * @file
 * Decode-phase operation graph for one token.
 *
 * Mirrors Figure 5 of the paper: GeMV operations that read model
 * weights are co-computed by NPU + flash; attention operations over
 * the KV cache run on the NPU against DRAM; softmax / norms /
 * activations run on the NPU's special function unit.
 */

#ifndef CAMLLM_LLM_OPGRAPH_H
#define CAMLLM_LLM_OPGRAPH_H

#include <cstdint>
#include <string>
#include <vector>

#include "llm/model_config.h"
#include "llm/quant.h"

namespace camllm::llm {

/** Hardware class an operation maps to (paper Fig 5 boxes). */
enum class OpKind
{
    GemvWeight,    ///< weight GeMV: NPU + flash co-computation
    KvLoadCompute, ///< attention score/context: NPU + DRAM
    KvAppend,      ///< write the new K/V entries to DRAM
    Sfu            ///< softmax / norm / activation on the SFU
};

/** One node of the decode graph. */
struct Op
{
    OpKind kind = OpKind::Sfu;
    std::string name;
    std::uint32_t layer = 0; ///< owning layer, or UINT32_MAX for head

    // GemvWeight: weight matrix is rows x cols (output x input).
    std::uint64_t rows = 0;
    std::uint64_t cols = 0;

    // KvLoadCompute / KvAppend.
    std::uint64_t kv_bytes = 0;
    double flops = 0.0;

    // Sfu.
    double sfu_elems = 0.0;

    /**
     * NPU-compute multiplier for GemvWeight ops: 1 in decode, the
     * prompt length in prefill (weights stream once but multiply
     * against every prompt position).
     */
    double npu_compute_scale = 1.0;

    std::vector<std::uint32_t> deps; ///< indices of producer ops

    std::uint64_t weightElems() const { return rows * cols; }
};

/** Whole-token decode graph plus summary accessors. */
struct DecodeGraph
{
    std::vector<Op> ops;
    std::uint32_t n_layers = 0; ///< layers materialized in the graph

    /** Sum of weight elements over all GemvWeight ops. */
    std::uint64_t totalWeightElems() const;

    /** Total KV bytes loaded from DRAM. */
    std::uint64_t totalKvLoadBytes() const;

    /** Total floating ops across all op kinds (2 ops per MAC). */
    double totalFlops() const;

    /** Index of the last op (the lm_head projection). */
    std::uint32_t lastOp() const
    {
        return std::uint32_t(ops.size() - 1);
    }
};

/**
 * Build the decode graph for @p layers_to_build layers of @p model at
 * context length @p seq, ending with the lm_head projection.
 * @p layers_to_build lets the engine simulate a sample of identical
 * layers and extrapolate; pass model.n_layers for the full graph.
 */
DecodeGraph buildDecodeGraph(const ModelConfig &model, std::uint32_t seq,
                             const QuantSpec &quant,
                             std::uint32_t layers_to_build);

/**
 * Build the prefill graph over a @p prompt_len-token prompt: the same
 * weight GeMVs (weights stream through the device once, multiplied
 * against every position — npu_compute_scale = prompt_len), causal
 * attention of O(prompt^2) flops, and SFU work scaled by the prompt.
 * Equivalent to buildPrefillChunkGraph(model, prompt_len, 0, ...,
 * last_chunk = true) — the whole prompt as one chunk.
 */
DecodeGraph buildPrefillGraph(const ModelConfig &model,
                              std::uint32_t prompt_len,
                              const QuantSpec &quant,
                              std::uint32_t layers_to_build);

/**
 * Build one chunk of a chunked prefill: @p chunk_len prompt positions
 * processed on top of @p kv_base tokens whose K/V entries earlier
 * chunks already wrote. Weights stream once per chunk
 * (npu_compute_scale = chunk_len), the chunk appends its own KV
 * entries, and attention spans the full kv_base + chunk_len context.
 * Only the last chunk (@p last_chunk) carries the final norm and the
 * lm_head projection — that completion emits the request's first
 * token. With kv_base == 0 and last_chunk the graph is identical to
 * buildPrefillGraph(model, chunk_len, ...): one-chunk prefill
 * reproduces the whole-prompt prefill bit-exactly.
 */
DecodeGraph buildPrefillChunkGraph(const ModelConfig &model,
                                   std::uint32_t chunk_len,
                                   std::uint32_t kv_base,
                                   const QuantSpec &quant,
                                   std::uint32_t layers_to_build,
                                   bool last_chunk = true);

/**
 * Rebind a decode graph built by buildDecodeGraph to context length
 * @p seq in place. The decode graph's structure (ops, deps, weight
 * shapes) is seq-independent; only the KV-load magnitudes and the
 * softmax width scale with context, so a multi-token request can
 * reinstance its graph per step without rebuilding it. Produces a
 * graph identical to buildDecodeGraph(model, seq, quant, g.n_layers).
 */
void rebindDecodeGraphSeq(DecodeGraph &g, const ModelConfig &model,
                          const QuantSpec &quant, std::uint32_t seq);

/**
 * Block-table view of one request's KV stream. With block_tokens == 0
 * the stream is contiguous (one giant block): every KV transfer is a
 * single DRAM burst, the historical addressing. With block_tokens > 0
 * the logical token axis is paged: a transfer covering tokens
 * [start, start + count) is split at block boundaries into one DRAM
 * request per touched block, so scattered pages pay per-request DRAM
 * latency instead of streaming as one burst. A block large enough to
 * hold the whole stream degenerates to the contiguous case exactly.
 */
struct KvView
{
    std::uint32_t block_tokens = 0; ///< 0 = contiguous stream

    bool paged() const { return block_tokens != 0; }
};

/**
 * Partition a KV transfer of @p bytes covering logical tokens
 * [@p start_tok, @p start_tok + @p count) into per-block DRAM segment
 * sizes under @p view, appended to @p out. Bytes are apportioned
 * per token (bytes / count each, remainder on the last segment), so
 * the segment sum is always exactly @p bytes. A contiguous view (or a
 * range inside one block) yields a single segment — the decode graph
 * and the prefill-chunk graph rebind their KV traffic through this
 * one helper, which is what keeps the one-giant-block path
 * bit-identical to contiguous KV.
 */
void kvSegmentBytes(const KvView &view, std::uint64_t bytes,
                    std::uint32_t start_tok, std::uint32_t count,
                    std::vector<std::uint64_t> &out);

} // namespace camllm::llm

#endif // CAMLLM_LLM_OPGRAPH_H
