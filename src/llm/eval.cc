#include "eval.h"

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"
#include "llm/kernels.h"

namespace camllm::llm {

namespace {

/** Predicted choice index: argmax of the choice-token logits. */
std::uint32_t
predict(const TinyTransformer &model, const EvalItem &item)
{
    std::vector<float> logits = model.forward(item.prompt);
    std::uint32_t best = 0;
    float best_v = logits[item.choices[0]];
    for (std::uint32_t c = 1; c < item.choices.size(); ++c) {
        float v = logits[item.choices[c]];
        if (v > best_v) {
            best_v = v;
            best = c;
        }
    }
    return best;
}

} // namespace

EvalDataset
makeDataset(const TinyTransformer &clean_model, const std::string &name,
            std::uint32_t n_items, std::uint32_t n_choices,
            std::uint32_t prompt_len, double clean_accuracy,
            std::uint64_t seed)
{
    const auto &cfg = clean_model.config();
    CAMLLM_ASSERT(n_choices >= 2 && n_choices < cfg.vocab);
    CAMLLM_ASSERT(clean_accuracy > 0.0 && clean_accuracy <= 1.0);

    Rng rng(seed);
    EvalDataset ds;
    ds.name = name;
    ds.n_choices = n_choices;
    ds.items.reserve(n_items);

    for (std::uint32_t i = 0; i < n_items; ++i) {
        EvalItem item;
        item.prompt.resize(prompt_len);
        for (auto &t : item.prompt)
            t = std::uint16_t(rng.below(cfg.vocab));

        // Distinct candidate tokens.
        item.choices.clear();
        while (item.choices.size() < n_choices) {
            auto cand = std::uint16_t(rng.below(cfg.vocab));
            if (std::find(item.choices.begin(), item.choices.end(),
                          cand) == item.choices.end())
                item.choices.push_back(cand);
        }

        std::uint32_t clean_pred = predict(clean_model, item);
        if (rng.chance(clean_accuracy)) {
            item.label = clean_pred;
        } else {
            // A wrong label, uniformly over the other choices.
            std::uint32_t off =
                1 + std::uint32_t(rng.below(n_choices - 1));
            item.label = (clean_pred + off) % n_choices;
        }
        ds.items.push_back(std::move(item));
    }
    return ds;
}

double
evaluate(const TinyTransformer &model, const EvalDataset &ds)
{
    CAMLLM_ASSERT(!ds.items.empty());
    std::uint64_t correct = 0;
    for (const auto &item : ds.items)
        if (predict(model, item) == item.label)
            ++correct;
    return double(correct) / double(ds.items.size());
}

} // namespace camllm::llm
