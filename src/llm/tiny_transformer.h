/**
 * @file
 * A small, fully functional INT8 decoder-only transformer.
 *
 * Stands in for the paper's OPT-6.7B in the error-correction
 * experiments (Fig 3b / Fig 10): its weights follow published LLM
 * statistics (Gaussian bulk plus a sub-percent population of
 * large-magnitude outliers, cf.\ LLM.int8()), live in bit-exact flash
 * pages, and its forward pass turns weight bit flips into task
 * accuracy loss exactly like the real model would.
 */

#ifndef CAMLLM_LLM_TINY_TRANSFORMER_H
#define CAMLLM_LLM_TINY_TRANSFORMER_H

#include <cstdint>
#include <span>
#include <vector>

#include "llm/tensor.h"

namespace camllm::llm {

/** Architecture of the synthetic model. */
struct TinyConfig
{
    std::uint32_t d_model = 128;
    std::uint32_t n_layers = 2;
    std::uint32_t n_heads = 4;
    std::uint32_t d_ffn = 384;
    std::uint32_t vocab = 512;

    /** Fraction of weights planted as outliers. */
    double outlier_frac = 0.005;

    /** Outlier magnitude multiplier over the bulk sigma. */
    double outlier_mag = 6.0;

    std::uint32_t headDim() const { return d_model / n_heads; }
};

/** Seeded synthetic INT8 transformer with a real forward pass. */
class TinyTransformer
{
  public:
    TinyTransformer(const TinyConfig &cfg, std::uint64_t seed);

    const TinyConfig &config() const { return cfg_; }

    /** Total INT8 weight bytes (pack/unpack blob size). */
    std::size_t weightBytes() const;

    /** Serialize all weight matrices into one flat blob. */
    std::vector<std::int8_t> packWeights() const;

    /** Replace all weights from @p blob (layout of packWeights()). */
    void unpackWeights(std::span<const std::int8_t> blob);

    /**
     * Run the model over @p tokens (causal attention) and return the
     * vocab logits at the final position.
     */
    std::vector<float> forward(std::span<const std::uint16_t> tokens) const;

    /** Access for tests: every weight tensor in pack order. */
    std::vector<const QTensor *> tensors() const;

  private:
    struct Layer
    {
        QTensor wq, wk, wv, wo, fc1, fc2;
    };

    std::vector<QTensor *> mutableTensors();

    TinyConfig cfg_;
    QTensor embed_;
    std::vector<Layer> layers_;
    QTensor lm_head_;
};

} // namespace camllm::llm

#endif // CAMLLM_LLM_TINY_TRANSFORMER_H
