#include "model_config.h"

#include "common/hash.h"

namespace camllm::llm {

bool
ModelConfig::valid() const
{
    return n_layers > 0 && d_model > 0 && n_heads > 0 && n_kv_heads > 0 &&
           d_ffn > 0 && vocab > 0 && d_model % n_heads == 0 &&
           n_heads % n_kv_heads == 0;
}

std::uint64_t
ModelConfig::attnParamsPerLayer() const
{
    const std::uint64_t d = d_model;
    const std::uint64_t kv = kvProjDim();
    // Q and O projections are d x d; K and V are d x kvProjDim.
    return 2 * d * d + 2 * d * kv;
}

std::uint64_t
ModelConfig::ffnParamsPerLayer() const
{
    const std::uint64_t d = d_model;
    const std::uint64_t f = d_ffn;
    const std::uint64_t mats = (ffn_style == FfnStyle::Gated) ? 3 : 2;
    return mats * d * f;
}

std::uint64_t
ModelConfig::decodeWeightParams() const
{
    // Per decode step every layer weight is touched once, plus the
    // lm_head projection (vocab x d) regardless of embedding tying:
    // tying shares storage, not read traffic.
    return std::uint64_t(n_layers) *
               (attnParamsPerLayer() + ffnParamsPerLayer()) +
           std::uint64_t(vocab) * d_model;
}

std::uint64_t
ModelConfig::totalParams() const
{
    std::uint64_t embed = std::uint64_t(vocab) * d_model;
    if (!tied_embeddings)
        embed *= 2;
    // Norm gains/biases are negligible but counted for completeness:
    // two norms per layer plus the final norm.
    std::uint64_t norms = (2ull * n_layers + 1) * d_model;
    return std::uint64_t(n_layers) *
               (attnParamsPerLayer() + ffnParamsPerLayer()) +
           embed + norms;
}

ModelConfig
opt6_7b()
{
    ModelConfig m;
    m.name = "OPT-6.7B";
    m.n_layers = 32;
    m.d_model = 4096;
    m.n_heads = 32;
    m.n_kv_heads = 32;
    m.d_ffn = 16384;
    m.vocab = 50272;
    m.ffn_style = FfnStyle::Standard;
    m.tied_embeddings = true;
    return m;
}

ModelConfig
opt13b()
{
    ModelConfig m = opt6_7b();
    m.name = "OPT-13B";
    m.n_layers = 40;
    m.d_model = 5120;
    m.n_heads = 40;
    m.n_kv_heads = 40;
    m.d_ffn = 20480;
    return m;
}

ModelConfig
opt30b()
{
    ModelConfig m = opt6_7b();
    m.name = "OPT-30B";
    m.n_layers = 48;
    m.d_model = 7168;
    m.n_heads = 56;
    m.n_kv_heads = 56;
    m.d_ffn = 28672;
    return m;
}

ModelConfig
opt66b()
{
    ModelConfig m = opt6_7b();
    m.name = "OPT-66B";
    m.n_layers = 64;
    m.d_model = 9216;
    m.n_heads = 72;
    m.n_kv_heads = 72;
    m.d_ffn = 36864;
    return m;
}

ModelConfig
llama2_7b()
{
    ModelConfig m;
    m.name = "Llama2-7B";
    m.n_layers = 32;
    m.d_model = 4096;
    m.n_heads = 32;
    m.n_kv_heads = 32;
    m.d_ffn = 11008;
    m.vocab = 32000;
    m.ffn_style = FfnStyle::Gated;
    m.tied_embeddings = false;
    return m;
}

ModelConfig
llama2_13b()
{
    ModelConfig m = llama2_7b();
    m.name = "Llama2-13B";
    m.n_layers = 40;
    m.d_model = 5120;
    m.n_heads = 40;
    m.n_kv_heads = 40;
    m.d_ffn = 13824;
    return m;
}

ModelConfig
llama2_70b()
{
    ModelConfig m = llama2_7b();
    m.name = "Llama2-70B";
    m.n_layers = 80;
    m.d_model = 8192;
    m.n_heads = 64;
    m.n_kv_heads = 8; // grouped-query attention
    m.d_ffn = 28672;
    return m;
}

std::vector<ModelConfig>
optFamily()
{
    return {opt6_7b(), opt13b(), opt30b(), opt66b()};
}

std::vector<ModelConfig>
llamaFamily()
{
    return {llama2_7b(), llama2_13b(), llama2_70b()};
}

std::uint64_t
modelHash(const ModelConfig &m)
{
    Fnv1a h;
    h.add(m.n_layers).add(m.d_model).add(m.n_heads).add(m.n_kv_heads);
    h.add(m.d_ffn).add(m.vocab);
    h.add(static_cast<std::uint32_t>(m.ffn_style));
    h.add(m.tied_embeddings);
    return h.value();
}

} // namespace camllm::llm
