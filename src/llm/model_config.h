/**
 * @file
 * LLM architecture descriptions for the models evaluated in the paper
 * (OPT 6.7B/13B/30B/66B and Llama2 7B/13B/70B) plus parameter-count
 * and weight-size helpers.
 */

#ifndef CAMLLM_LLM_MODEL_CONFIG_H
#define CAMLLM_LLM_MODEL_CONFIG_H

#include <cstdint>
#include <string>
#include <vector>

namespace camllm::llm {

/** Feed-forward block style. */
enum class FfnStyle
{
    Standard, ///< two matrices (OPT): up then down
    Gated     ///< three matrices (Llama): gate, up, down
};

/** Decoder-only transformer architecture description. */
struct ModelConfig
{
    std::string name;
    std::uint32_t n_layers = 0;
    std::uint32_t d_model = 0;
    std::uint32_t n_heads = 0;
    std::uint32_t n_kv_heads = 0; ///< < n_heads implies GQA
    std::uint32_t d_ffn = 0;
    std::uint32_t vocab = 0;
    FfnStyle ffn_style = FfnStyle::Standard;
    bool tied_embeddings = true; ///< lm_head shares the embedding

    std::uint32_t headDim() const { return d_model / n_heads; }

    /** Output width of one K (or V) projection. */
    std::uint32_t kvProjDim() const { return n_kv_heads * headDim(); }

    /** Total K+V width per token (bytes follow activation width). */
    std::uint32_t kvDim() const { return kvProjDim() * 2; }

    /** Weight-element count of the attention block of one layer. */
    std::uint64_t attnParamsPerLayer() const;

    /** Weight-element count of the FFN block of one layer. */
    std::uint64_t ffnParamsPerLayer() const;

    /** Weight elements read per decode step (layers + lm_head). */
    std::uint64_t decodeWeightParams() const;

    /** Total parameters including embeddings. */
    std::uint64_t totalParams() const;

    /** KV-cache bytes at context length @p seq with @p act_bytes-wide
     *  cache entries. */
    std::uint64_t
    kvCacheBytes(std::uint32_t seq, std::uint32_t act_bytes) const
    {
        return std::uint64_t(n_layers) * seq * kvDim() * act_bytes;
    }

    bool valid() const;
};

// --- model zoo -----------------------------------------------------------
ModelConfig opt6_7b();
ModelConfig opt13b();
ModelConfig opt30b();
ModelConfig opt66b();
ModelConfig llama2_7b();
ModelConfig llama2_13b();
ModelConfig llama2_70b();

/** All OPT models in Fig 9(a) order. */
std::vector<ModelConfig> optFamily();

/** All Llama2 models in Fig 9(b) order. */
std::vector<ModelConfig> llamaFamily();

/** Structural hash of an architecture (name excluded). */
std::uint64_t modelHash(const ModelConfig &m);

} // namespace camllm::llm

#endif // CAMLLM_LLM_MODEL_CONFIG_H
