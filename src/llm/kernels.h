/**
 * @file
 * Functional kernels for the INT8 inference path: GeMV with float
 * accumulation, layer norm, softmax, GELU/SiLU and small helpers.
 * These compute real numbers (unlike the timing models) so flash bit
 * errors propagate to task accuracy exactly as in the paper's
 * PyTorch-injection methodology.
 */

#ifndef CAMLLM_LLM_KERNELS_H
#define CAMLLM_LLM_KERNELS_H

#include <cstddef>
#include <span>
#include <vector>

#include "llm/tensor.h"

namespace camllm::llm {

/**
 * y = W x with INT8 weights, float activations. y.size() == W.rows.
 * Register-blocked (8 rows x 2 unrolled columns); bit-exact with
 * gemvScalar because each row accumulates in strict column order.
 */
void gemv(const QTensor &w, std::span<const float> x, std::span<float> y);

/** Scalar reference implementation of gemv (tests and benches). */
void gemvScalar(const QTensor &w, std::span<const float> x,
                std::span<float> y);

/**
 * Fast GeMV: an AVX2+FMA int8 dot-product kernel when the CPU
 * supports it (runtime dispatch; compile-time gated to x86-64 GCC /
 * Clang), otherwise the scalar reference kernel. The vector path
 * accumulates eight float lanes per row, which reorders the
 * reduction, so results are close to — but not bit-equal with —
 * gemvScalar; call gemv() or gemvScalar() where bit-exactness
 * matters (the ECC accuracy path). Setting CAMLLM_NO_SIMD=1 forces
 * the scalar fallback at runtime (checked per call), e.g.\ to rule
 * the vector path out when chasing a numeric difference.
 */
void gemvFast(const QTensor &w, std::span<const float> x,
              std::span<float> y);

/** True when gemvFast dispatches to the AVX2 path on this machine
 *  (false on non-x86 builds and under CAMLLM_NO_SIMD=1). */
bool gemvFastUsesAvx2();

/** True when CAMLLM_NO_SIMD is set non-empty and non-"0". */
bool simdDisabledByEnv();

/** In-place layer normalization (unit gain, zero bias). */
void layerNorm(std::span<float> x, float eps = 1e-5f);

/** In-place numerically-stable softmax. */
void softmaxInPlace(std::span<float> x);

/** In-place tanh-approximation GELU. */
void geluInPlace(std::span<float> x);

/** In-place SiLU (x * sigmoid(x)). */
void siluInPlace(std::span<float> x);

/** Index of the maximum element (first on ties). */
std::size_t argmax(std::span<const float> x);

/** Dot product of two equal-length float vectors. */
float dot(std::span<const float> a, std::span<const float> b);

} // namespace camllm::llm

#endif // CAMLLM_LLM_KERNELS_H
