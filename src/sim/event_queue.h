/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single-threaded event queue with deterministic ordering: events
 * scheduled for the same tick execute in insertion order. All device
 * models (flash channels, dies, the NPU, DRAM) are driven from one
 * queue so cross-device interleavings are exact and reproducible.
 *
 * The kernel is allocation-free on the hot path: event records are
 * fixed-size nodes with inline callback storage (no std::function, no
 * per-event heap traffic) recycled through a free list, and a bucketed
 * near-future calendar absorbs the same-tick bursts the channel
 * engines issue, falling back to a binary heap only for far-future
 * events (die timings tens of microseconds out).
 */

#ifndef CAMLLM_SIM_EVENT_QUEUE_H
#define CAMLLM_SIM_EVENT_QUEUE_H

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/units.h"

namespace camllm {

/**
 * Min-ordered event queue keyed by (tick, insertion sequence).
 *
 * Invariants:
 *  - every pending event with `when < cal_base_ + kBuckets` lives in
 *    its calendar bucket (`when % kBuckets`, one tick per bucket
 *    inside the window), appended in sequence order;
 *  - every other pending event lives in the far-future heap;
 *  - `cal_base_` only advances, and only while the calendar is empty,
 *    migrating newly in-window heap events in (tick, seq) order.
 * Together these make the earliest pending event always the head of
 * the first non-empty bucket, with same-tick FIFO order preserved.
 */
class EventQueue
{
  public:
    /** Inline capacity of an event record's callback storage. */
    static constexpr std::size_t kInlineBytes = 48;

    /**
     * @param window_ticks calendar width in ticks; rounded up to a
     * power of two and clamped to [kMinWindow, kMaxWindow]. 0 selects
     * the CAMLLM_EQ_WINDOW environment variable when set, else
     * kDefaultWindow. Workloads whose inter-event gaps straddle the
     * window pay heap traffic; a wider window trades memory for it.
     */
    explicit EventQueue(std::size_t window_ticks = 0);
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Total number of events executed so far. */
    std::uint64_t executed() const { return executed_; }

    /** Number of events still pending. */
    std::size_t pending() const { return cal_count_ + heap_.size(); }

    bool empty() const { return pending() == 0; }

    /**
     * Schedule callable @p fn at absolute time @p when.
     * @pre when >= now(); scheduling in the past is a simulator bug
     * and panics with the offending (when, now, seq).
     */
    template <typename F>
    void
    schedule(Tick when, F &&fn)
    {
        // Construct the callback before linking the event in, so a
        // throwing callable constructor leaves no half-initialized
        // node in the calendar (the unlinked node merely leaks back
        // to the pool on queue destruction).
        Event *ev = acquire(when);
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= kInlineBytes &&
                      alignof(Fn) <= alignof(std::max_align_t)) {
            ::new (static_cast<void *>(ev->storage))
                Fn(std::forward<F>(fn));
            ev->invoke = [](void *p) { (*static_cast<Fn *>(p))(); };
            if constexpr (std::is_trivially_destructible_v<Fn>)
                ev->destroy = nullptr;
            else
                ev->destroy = [](void *p) {
                    static_cast<Fn *>(p)->~Fn();
                };
        } else {
            // Oversized callable: one heap hop, still pooled node.
            Fn *boxed = new Fn(std::forward<F>(fn));
            std::memcpy(ev->storage, &boxed, sizeof boxed);
            ev->invoke = [](void *p) {
                Fn *f;
                std::memcpy(&f, p, sizeof f);
                (*f)();
            };
            ev->destroy = [](void *p) {
                Fn *f;
                std::memcpy(&f, p, sizeof f);
                delete f;
            };
        }
        enqueue(ev);
    }

    /** Schedule @p fn @p delay ticks from now. */
    template <typename F>
    void
    scheduleIn(Tick delay, F &&fn)
    {
        schedule(now_ + delay, std::forward<F>(fn));
    }

    /**
     * Pre-size the far-future heap and the event pool for @p events
     * pending events, avoiding regrowth mid-simulation.
     */
    void reserve(std::size_t events);

    /** Execute the single earliest event. @return false if none left. */
    bool step();

    /** Run until the queue drains. */
    void run();

    /**
     * Run every event with timestamp <= @p limit, then advance the
     * clock to @p limit (even if idle). @return the new current time.
     */
    Tick runUntil(Tick limit);

    /** Drop all pending events and rewind the clock to zero. */
    void reset();

    /**
     * Event records ever carved from the pool (recycled nodes are not
     * re-counted); exposed so tests can verify free-list reuse.
     */
    std::size_t poolAllocated() const { return pool_allocated_; }

    /** Realized calendar width in ticks (power of two). */
    std::size_t windowTicks() const { return buckets_.size(); }

    static constexpr std::size_t kDefaultWindow = 1024;
    static constexpr std::size_t kMinWindow = 16;
    static constexpr std::size_t kMaxWindow = std::size_t(1) << 20;

    /** Window a default-constructed queue uses: CAMLLM_EQ_WINDOW when
     *  set to a valid count, otherwise kDefaultWindow. */
    static std::size_t defaultWindow();

  private:
    /** Event records per pool chunk. */
    static constexpr std::size_t kChunk = 512;

    struct Event
    {
        Tick when = 0;
        std::uint64_t seq = 0;
        Event *next = nullptr; ///< bucket FIFO / free-list link
        void (*invoke)(void *) = nullptr;
        void (*destroy)(void *) = nullptr;
        alignas(std::max_align_t) unsigned char storage[kInlineBytes];
    };

    struct Bucket
    {
        Event *head = nullptr;
        Event *tail = nullptr;
    };

    /** Far-future reference; heap-ordered by (when, seq). */
    struct FarEvent
    {
        Tick when;
        std::uint64_t seq;
        Event *ev;
    };

    /** Heap ordering predicate: a executes after b. */
    static bool farLater(const FarEvent &a, const FarEvent &b);

    /** Pop a pooled record and stamp (when, seq); not yet linked in. */
    Event *acquire(Tick when);
    /** Destroy the callback (if any) and return the node to the pool. */
    void release(Event *ev);
    Event *allocate();
    void addChunk();
    /** Link a fully-constructed event into its bucket or the heap. */
    void enqueue(Event *ev);
    static void appendToBucket(Bucket &b, Event *ev);
    /** Move the window to @p new_base, migrating in-window heap events. */
    void advanceWindow(Tick new_base);
    /**
     * Tick of the earliest pending event (advancing the bucket scan
     * cursor as a side effect); pending() must be nonzero.
     */
    Tick peekEarliestTick();
    /** Unlink and return the first pending event. */
    Event *popEarliest();

    std::vector<Bucket> buckets_;
    Tick bucket_mask_ = 0; ///< buckets_.size() - 1 (power of two)
    std::size_t cal_count_ = 0;
    Tick cal_base_ = 0; ///< window start: [cal_base_, cal_base_+kBuckets)
    Tick cal_scan_ = 0; ///< resume point for the earliest-bucket scan

    std::vector<FarEvent> heap_;

    std::vector<std::unique_ptr<Event[]>> chunks_;
    Event *free_ = nullptr;
    std::size_t free_count_ = 0;
    std::size_t chunk_used_ = kChunk; ///< cursor into chunks_.back()
    std::size_t pool_allocated_ = 0;

    Tick now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace camllm

#endif // CAMLLM_SIM_EVENT_QUEUE_H
