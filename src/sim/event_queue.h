/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single-threaded event queue with deterministic ordering: events
 * scheduled for the same tick execute in insertion order. All device
 * models (flash channels, dies, the NPU, DRAM) are driven from one
 * queue so cross-device interleavings are exact and reproducible.
 */

#ifndef CAMLLM_SIM_EVENT_QUEUE_H
#define CAMLLM_SIM_EVENT_QUEUE_H

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "common/units.h"

namespace camllm {

/** Min-heap event queue ordered by (tick, insertion sequence). */
class EventQueue
{
  public:
    using Callback = std::function<void()>;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Total number of events executed so far. */
    std::uint64_t executed() const { return executed_; }

    /** Number of events still pending. */
    std::size_t pending() const { return heap_.size(); }

    bool empty() const { return heap_.empty(); }

    /**
     * Schedule @p cb at absolute time @p when.
     * @pre when >= now(); scheduling in the past is a simulator bug.
     */
    void schedule(Tick when, Callback cb);

    /** Schedule @p cb @p delay ticks from now. */
    void scheduleIn(Tick delay, Callback cb)
    {
        schedule(now_ + delay, std::move(cb));
    }

    /** Execute the single earliest event. @return false if none left. */
    bool step();

    /** Run until the queue drains. */
    void run();

    /**
     * Run every event with timestamp <= @p limit, then advance the
     * clock to @p limit (even if idle). @return the new current time.
     */
    Tick runUntil(Tick limit);

    /** Drop all pending events and rewind the clock to zero. */
    void reset();

  private:
    struct Event
    {
        Tick when;
        std::uint64_t seq;
        Callback cb;
    };

    struct Later
    {
        bool
        operator()(const Event &a, const Event &b) const
        {
            if (a.when != b.when)
                return a.when > b.when;
            return a.seq > b.seq;
        }
    };

    std::priority_queue<Event, std::vector<Event>, Later> heap_;
    Tick now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace camllm

#endif // CAMLLM_SIM_EVENT_QUEUE_H
