/**
 * @file
 * Discrete-event simulation kernel.
 *
 * A single-threaded event queue with deterministic ordering: events
 * scheduled for the same tick execute in insertion order. All device
 * models (flash channels, dies, the NPU, DRAM) are driven from one
 * queue so cross-device interleavings are exact and reproducible.
 *
 * The kernel is allocation-free on the hot path: event records are
 * fixed-size nodes with inline callback storage (no std::function, no
 * per-event heap traffic) recycled through a free list. Pending events
 * live in a hierarchical timing-wheel calendar — a one-tick-resolution
 * near-future window scanned through an occupancy bitmap, backed by
 * geometrically coarser wheels whose slots cascade lazily into the
 * level below as the clock reaches them — so schedule/pop stay O(1)
 * amortized whether events are nanoseconds or whole simulated seconds
 * apart. Only events beyond the combined wheel span (window x 1024^4
 * ticks, ~2 weeks at the default window) fall back to a binary heap.
 */

#ifndef CAMLLM_SIM_EVENT_QUEUE_H
#define CAMLLM_SIM_EVENT_QUEUE_H

#include <array>
#include <cstddef>
#include <cstdint>
#include <cstring>
#include <memory>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/units.h"

namespace camllm {

/**
 * Min-ordered event queue keyed by (tick, insertion sequence).
 *
 * Invariants (W = windowTicks(), a power of two; the level-0 window
 * [cal_base_, cal_base_ + W) is always W-aligned):
 *  - an event's level is decided by the highest base-kUpperSlots
 *    "digit" of its tick (counting from the W-aligned low bits) that
 *    differs from cal_base_'s: no digit differs -> level-0 bucket
 *    `when & (W - 1)`; digit k differs (k = 1..kUpperLevels) ->
 *    wheel k, slot index = that digit; beyond the top wheel's block
 *    -> the far-future heap;
 *  - cal_base_ moves within a wheel's block only by cascading that
 *    wheel's earliest occupied slot into the levels below it, and
 *    jumps across the top block only when everything else is empty
 *    (re-pulling now-in-block heap events in (when, seq) order) — so
 *    a pending event's level only ever decreases, each drain re-adds
 *    events in their original insertion order, and a newer event can
 *    never land in a lower level than an older same-tick one. That
 *    keeps same-tick FIFO order exact end to end;
 *  - levels are disjoint in time: every level-k event precedes every
 *    level-(k+1) event (they differ from cal_base_ at a higher
 *    digit), so the earliest pending event is always in the lowest
 *    non-empty level, found by an occupancy-bitmap scan.
 */
class EventQueue
{
  public:
    /** Inline capacity of an event record's callback storage. */
    static constexpr std::size_t kInlineBytes = 48;

    /**
     * @param window_ticks level-0 calendar width in ticks; rounded up
     * to a power of two and clamped to [kMinWindow, kMaxWindow]. 0
     * selects the CAMLLM_EQ_WINDOW environment variable when set, else
     * kDefaultWindow. The upper wheels scale with the window (slot
     * width of wheel k is window x 1024^(k-1) ticks), so a wider
     * window also widens the span the heap never sees.
     */
    explicit EventQueue(std::size_t window_ticks = 0);
    ~EventQueue();

    EventQueue(const EventQueue &) = delete;
    EventQueue &operator=(const EventQueue &) = delete;

    /** Current simulated time. */
    Tick now() const { return now_; }

    /** Total number of events executed so far. */
    std::uint64_t executed() const { return executed_; }

    /** Number of events still pending. */
    std::size_t
    pending() const
    {
        return cal_count_ + wheel_count_ + heap_.size();
    }

    bool empty() const { return pending() == 0; }

    /**
     * Schedule callable @p fn at absolute time @p when.
     * @pre when >= now(); scheduling in the past is a simulator bug
     * and panics with the offending (when, now, seq).
     */
    template <typename F>
    void
    schedule(Tick when, F &&fn)
    {
        // Construct the callback before linking the event in, so a
        // throwing callable constructor leaves no half-initialized
        // node in the calendar (the unlinked node merely leaks back
        // to the pool on queue destruction).
        Event *ev = acquire(when);
        using Fn = std::decay_t<F>;
        if constexpr (sizeof(Fn) <= kInlineBytes &&
                      alignof(Fn) <= alignof(std::max_align_t)) {
            ::new (static_cast<void *>(ev->storage))
                Fn(std::forward<F>(fn));
            ev->invoke = [](void *p) { (*static_cast<Fn *>(p))(); };
            if constexpr (std::is_trivially_destructible_v<Fn>)
                ev->destroy = nullptr;
            else
                ev->destroy = [](void *p) {
                    static_cast<Fn *>(p)->~Fn();
                };
        } else {
            // Oversized callable: one heap hop, still pooled node.
            Fn *boxed = new Fn(std::forward<F>(fn));
            std::memcpy(ev->storage, &boxed, sizeof boxed);
            ev->invoke = [](void *p) {
                Fn *f;
                std::memcpy(&f, p, sizeof f);
                (*f)();
            };
            ev->destroy = [](void *p) {
                Fn *f;
                std::memcpy(&f, p, sizeof f);
                delete f;
            };
        }
        enqueue(ev);
    }

    /** Schedule @p fn @p delay ticks from now. */
    template <typename F>
    void
    scheduleIn(Tick delay, F &&fn)
    {
        schedule(now_ + delay, std::forward<F>(fn));
    }

    /**
     * Pre-size the far-future heap and the event pool for @p events
     * pending events, avoiding regrowth mid-simulation.
     */
    void reserve(std::size_t events);

    /** Execute the single earliest event. @return false if none left. */
    bool step();

    /** Run until the queue drains. */
    void run();

    /**
     * Run every event with timestamp <= @p limit, then advance the
     * clock to @p limit (even if idle). @return the new current time.
     */
    Tick runUntil(Tick limit);

    /** Drop all pending events and rewind the clock to zero. */
    void reset();

    /**
     * Event records ever carved from the pool (recycled nodes are not
     * re-counted); exposed so tests can verify free-list reuse.
     */
    std::size_t poolAllocated() const { return pool_allocated_; }

    /** Realized level-0 calendar width in ticks (power of two). */
    std::size_t windowTicks() const { return buckets_.size(); }

    /** Events currently parked in the far-future heap (beyond the
     *  combined wheel span); exposed so tests can pin when the heap
     *  fallback engages. */
    std::size_t heapPending() const { return heap_.size(); }

    static constexpr std::size_t kDefaultWindow = 1024;
    static constexpr std::size_t kMinWindow = 16;
    static constexpr std::size_t kMaxWindow = std::size_t(1) << 20;

    /** Slots per upper wheel; slot width of wheel k (1-based) is
     *  windowTicks() * kUpperSlots^(k-1). */
    static constexpr std::size_t kUpperSlots = 1024;

    /** Upper wheels above the level-0 window. */
    static constexpr unsigned kUpperLevels = 4;

    /** Window a default-constructed queue uses: CAMLLM_EQ_WINDOW when
     *  set to a valid count, otherwise kDefaultWindow. The variable
     *  must be a plain base-10 tick count >= 1; anything else (trailing
     *  garbage, "1e6", empty, out of range) warns and is ignored. */
    static std::size_t defaultWindow();

  private:
    /** Event records per pool chunk. */
    static constexpr std::size_t kChunk = 512;

    struct Event
    {
        Tick when = 0;
        std::uint64_t seq = 0;
        Event *next = nullptr; ///< bucket FIFO / free-list link
        void (*invoke)(void *) = nullptr;
        void (*destroy)(void *) = nullptr;
        alignas(std::max_align_t) unsigned char storage[kInlineBytes];
    };

    struct Bucket
    {
        Event *head = nullptr;
        Event *tail = nullptr;
    };

    /**
     * One upper wheel: kUpperSlots buckets of 2^shift ticks each,
     * indexed by the tick's level digit `(when >> shift) % kUpperSlots`.
     * It holds exactly the events inside cal_base_'s 2^(shift+10)-tick
     * block whose digit differs from cal_base_'s; a slot keeps its
     * events in insertion order, and cascading drains the earliest
     * occupied slot at/after cal_base_'s digit into the levels below
     * (the slot span is exactly the next level's whole block).
     */
    struct Wheel
    {
        std::array<Bucket, kUpperSlots> slots;
        std::array<std::uint64_t, kUpperSlots / 64> occ{};
        std::size_t count = 0;
        unsigned shift = 0; ///< log2 slot width in ticks
    };

    /** Far-future reference; heap-ordered by (when, seq). */
    struct FarEvent
    {
        Tick when;
        std::uint64_t seq;
        Event *ev;
    };

    /** Heap ordering predicate: a executes after b. */
    static bool farLater(const FarEvent &a, const FarEvent &b);

    /** Pop a pooled record and stamp (when, seq); not yet linked in. */
    Event *acquire(Tick when);
    /** Destroy the callback (if any) and return the node to the pool. */
    void release(Event *ev);
    Event *allocate();
    void addChunk();
    /** Link a fully-constructed event into its level or the heap. */
    void enqueue(Event *ev);
    static void appendToBucket(Bucket &b, Event *ev);
    /**
     * Jump cal_base_ to the heap's earliest tick (W-aligned) and pull
     * every heap event inside the new top-wheel block into the
     * wheels/calendar; requires the calendar and all wheels empty.
     */
    void migrateFromHeap();
    /**
     * Tick of the earliest pending event, lazily cascading upper
     * wheels and migrating the heap as needed; pending() must be
     * nonzero. Re-anchors (cal_base_ advances) commit only while the
     * new anchor is <= @p commit_limit; past that the return value is
     * merely a lower bound > commit_limit (the anchor is untouched,
     * so a caller that stops at commit_limit never leaves cal_base_
     * ahead of the clock — which is what keeps later schedules at
     * ticks below the anchor impossible).
     */
    Tick peekEarliestTick(Tick commit_limit);
    /** Unlink and return the first pending event. */
    Event *popEarliest();

    std::vector<Bucket> buckets_; ///< level 0: one tick per bucket
    std::vector<std::uint64_t> occ0_; ///< level-0 occupancy bitmap
    Tick bucket_mask_ = 0; ///< buckets_.size() - 1 (power of two)
    std::size_t cal_count_ = 0;
    Tick cal_base_ = 0; ///< W-aligned window start (the level anchor)
    Tick cal_scan_ = 0; ///< resume point for the earliest-bucket scan

    std::array<Wheel, kUpperLevels> wheels_;
    std::size_t wheel_count_ = 0; ///< events across all upper wheels

    std::vector<FarEvent> heap_;

    std::vector<std::unique_ptr<Event[]>> chunks_;
    Event *free_ = nullptr;
    std::size_t free_count_ = 0;
    std::size_t chunk_used_ = kChunk; ///< cursor into chunks_.back()
    std::size_t pool_allocated_ = 0;

    Tick now_ = 0;
    std::uint64_t next_seq_ = 0;
    std::uint64_t executed_ = 0;
};

} // namespace camllm

#endif // CAMLLM_SIM_EVENT_QUEUE_H
