#include "event_queue.h"

#include <algorithm>
#include <cstdlib>

#include "common/logging.h"

namespace camllm {

bool
EventQueue::farLater(const FarEvent &a, const FarEvent &b)
{
    if (a.when != b.when)
        return a.when > b.when;
    return a.seq > b.seq;
}

namespace {

/** Smallest power of two >= @p n within [lo, hi]. */
std::size_t
roundUpPow2Clamped(std::size_t n, std::size_t lo, std::size_t hi)
{
    n = std::max(n, lo);
    n = std::min(n, hi);
    std::size_t p = lo;
    while (p < n)
        p <<= 1;
    return p;
}

} // namespace

std::size_t
EventQueue::defaultWindow()
{
    if (const char *env = std::getenv("CAMLLM_EQ_WINDOW")) {
        const long n = std::strtol(env, nullptr, 10);
        if (n >= 1)
            return std::size_t(n);
        warn("ignoring CAMLLM_EQ_WINDOW='%s' (want ticks >= 1)", env);
    }
    return kDefaultWindow;
}

EventQueue::EventQueue(std::size_t window_ticks)
    : buckets_(roundUpPow2Clamped(window_ticks == 0 ? defaultWindow()
                                                    : window_ticks,
                                  kMinWindow, kMaxWindow))
{
    bucket_mask_ = Tick(buckets_.size() - 1);
    heap_.reserve(buckets_.size());
    addChunk();
}

EventQueue::~EventQueue()
{
    // Destroy any still-pending callbacks so captured state is freed.
    for (Bucket &b : buckets_)
        for (Event *ev = b.head; ev != nullptr; ev = ev->next)
            if (ev->destroy)
                ev->destroy(ev->storage);
    for (FarEvent &fe : heap_)
        if (fe.ev->destroy)
            fe.ev->destroy(fe.ev->storage);
}

void
EventQueue::addChunk()
{
    chunks_.push_back(std::make_unique<Event[]>(kChunk));
    chunk_used_ = 0;
}

EventQueue::Event *
EventQueue::allocate()
{
    if (free_ != nullptr) {
        Event *ev = free_;
        free_ = ev->next;
        --free_count_;
        return ev;
    }
    if (chunk_used_ == kChunk)
        addChunk();
    ++pool_allocated_;
    return &chunks_.back()[chunk_used_++];
}

EventQueue::Event *
EventQueue::acquire(Tick when)
{
    CAMLLM_ASSERT(when >= now_,
                  "event scheduled in the past "
                  "(when=%llu now=%llu seq=%llu)",
                  (unsigned long long)when, (unsigned long long)now_,
                  (unsigned long long)next_seq_);
    Event *ev = allocate();
    ev->when = when;
    ev->seq = next_seq_++;
    ev->next = nullptr;
    return ev;
}

void
EventQueue::appendToBucket(Bucket &b, Event *ev)
{
    ev->next = nullptr;
    if (b.tail == nullptr)
        b.head = ev;
    else
        b.tail->next = ev;
    b.tail = ev;
}

void
EventQueue::enqueue(Event *ev)
{
    if (ev->when < cal_base_ + buckets_.size()) {
        appendToBucket(buckets_[ev->when & bucket_mask_], ev);
        ++cal_count_;
        if (ev->when < cal_scan_)
            cal_scan_ = ev->when;
    } else {
        heap_.push_back(FarEvent{ev->when, ev->seq, ev});
        std::push_heap(heap_.begin(), heap_.end(), farLater);
    }
}

void
EventQueue::release(Event *ev)
{
    if (ev->destroy)
        ev->destroy(ev->storage);
    ev->next = free_;
    free_ = ev;
    ++free_count_;
}

void
EventQueue::advanceWindow(Tick new_base)
{
    CAMLLM_ASSERT(cal_count_ == 0 && new_base >= cal_base_);
    cal_base_ = new_base;
    cal_scan_ = new_base;
    // Heap pops arrive in (when, seq) order, so FIFO appends keep the
    // same-tick sequence ordering intact.
    while (!heap_.empty() &&
           heap_.front().when < cal_base_ + buckets_.size()) {
        std::pop_heap(heap_.begin(), heap_.end(), farLater);
        Event *ev = heap_.back().ev;
        heap_.pop_back();
        appendToBucket(buckets_[ev->when & bucket_mask_], ev);
        ++cal_count_;
    }
}

Tick
EventQueue::peekEarliestTick()
{
    if (cal_count_ == 0) {
        CAMLLM_ASSERT(!heap_.empty());
        return heap_.front().when;
    }
    Tick t = std::max(cal_scan_, now_);
    while (buckets_[t & bucket_mask_].head == nullptr)
        ++t;
    cal_scan_ = t;
    return t;
}

EventQueue::Event *
EventQueue::popEarliest()
{
    if (cal_count_ == 0)
        advanceWindow(peekEarliestTick());
    const Tick t = peekEarliestTick();
    Bucket &b = buckets_[t & bucket_mask_];
    Event *ev = b.head;
    b.head = ev->next;
    if (b.head == nullptr)
        b.tail = nullptr;
    --cal_count_;
    return ev;
}

void
EventQueue::reserve(std::size_t events)
{
    if (heap_.capacity() < events)
        heap_.reserve(events);
    if (free_count_ + (kChunk - chunk_used_) >= events)
        return;
    // Pre-carve records onto the free list until @p events can be
    // handed out without growing the pool — first the live chunk's
    // unused tail (so it is not orphaned when a new chunk replaces
    // it as the carve target), then whole fresh chunks.
    const auto carve = [this](Event *ev) {
        ev->destroy = nullptr;
        ev->next = free_;
        free_ = ev;
        ++pool_allocated_;
        ++free_count_;
    };
    while (chunk_used_ < kChunk)
        carve(&chunks_.back()[chunk_used_++]);
    while (free_count_ < events) {
        addChunk();
        for (std::size_t i = 0; i < kChunk; ++i)
            carve(&chunks_.back()[i]);
        chunk_used_ = kChunk;
    }
}

bool
EventQueue::step()
{
    if (empty())
        return false;
    Event *ev = popEarliest();
    now_ = ev->when;
    ++executed_;
    ev->invoke(ev->storage);
    release(ev);
    return true;
}

void
EventQueue::run()
{
    while (step()) {
    }
}

Tick
EventQueue::runUntil(Tick limit)
{
    while (!empty()) {
        if (peekEarliestTick() > limit)
            break;
        step();
    }
    if (now_ < limit)
        now_ = limit;
    return now_;
}

void
EventQueue::reset()
{
    for (Bucket &b : buckets_) {
        for (Event *ev = b.head; ev != nullptr;) {
            Event *next = ev->next;
            release(ev);
            ev = next;
        }
        b.head = b.tail = nullptr;
    }
    cal_count_ = 0;
    for (FarEvent &fe : heap_)
        release(fe.ev);
    heap_.clear();
    cal_base_ = 0;
    cal_scan_ = 0;
    now_ = 0;
    next_seq_ = 0;
    executed_ = 0;
}

} // namespace camllm
