#include "event_queue.h"

#include <algorithm>
#include <bit>
#include <cerrno>
#include <cstdlib>

#include "common/logging.h"

namespace camllm {

bool
EventQueue::farLater(const FarEvent &a, const FarEvent &b)
{
    if (a.when != b.when)
        return a.when > b.when;
    return a.seq > b.seq;
}

namespace {

/** Smallest power of two >= @p n within [lo, hi]. */
std::size_t
roundUpPow2Clamped(std::size_t n, std::size_t lo, std::size_t hi)
{
    n = std::max(n, lo);
    n = std::min(n, hi);
    std::size_t p = lo;
    while (p < n)
        p <<= 1;
    return p;
}

/**
 * Ring-scan an occupancy bitmap: visit @p count slots of the
 * @p size-slot ring (size a power of two) starting at @p start and
 * return the offset of the first occupied one, or @p count if none.
 */
std::size_t
scanOccupied(const std::uint64_t *occ, std::size_t size,
             std::size_t start, std::size_t count)
{
    std::size_t off = 0;
    while (off < count) {
        const std::size_t idx = (start + off) & (size - 1);
        const unsigned bit = idx & 63;
        // Stop each stride at the word edge and at the ring edge so
        // shifted-out low bits and wrapped slots are never misread.
        const std::size_t stride = std::min(
            count - off, std::min<std::size_t>(64 - bit, size - idx));
        const std::uint64_t word = occ[idx >> 6] >> bit;
        if (word != 0) {
            const std::size_t tz = std::size_t(std::countr_zero(word));
            if (tz < stride)
                return off + tz;
        }
        off += stride;
    }
    return count;
}

} // namespace

std::size_t
EventQueue::defaultWindow()
{
    if (const char *env = std::getenv("CAMLLM_EQ_WINDOW")) {
        char *end = nullptr;
        errno = 0;
        const long n = std::strtol(env, &end, 10);
        // Insist on a fully-consumed plain decimal count: "1024abc"
        // and "1e6" are configuration mistakes, not window widths.
        if (end != env && *end == '\0' && errno != ERANGE && n >= 1)
            return std::size_t(n);
        warn("ignoring CAMLLM_EQ_WINDOW='%s' (want a plain base-10 "
             "tick count >= 1)",
             env);
    }
    return kDefaultWindow;
}

EventQueue::EventQueue(std::size_t window_ticks)
    : buckets_(roundUpPow2Clamped(window_ticks == 0 ? defaultWindow()
                                                    : window_ticks,
                                  kMinWindow, kMaxWindow))
{
    bucket_mask_ = Tick(buckets_.size() - 1);
    occ0_.assign((buckets_.size() + 63) / 64, 0);
    const unsigned window_log2 =
        unsigned(std::countr_zero(buckets_.size()));
    for (unsigned k = 0; k < kUpperLevels; ++k)
        wheels_[k].shift = window_log2 + 10 * k; // kUpperSlots == 2^10
    heap_.reserve(buckets_.size());
    addChunk();
}

EventQueue::~EventQueue()
{
    // Destroy any still-pending callbacks so captured state is freed.
    for (Bucket &b : buckets_)
        for (Event *ev = b.head; ev != nullptr; ev = ev->next)
            if (ev->destroy)
                ev->destroy(ev->storage);
    for (Wheel &w : wheels_)
        for (Bucket &b : w.slots)
            for (Event *ev = b.head; ev != nullptr; ev = ev->next)
                if (ev->destroy)
                    ev->destroy(ev->storage);
    for (FarEvent &fe : heap_)
        if (fe.ev->destroy)
            fe.ev->destroy(fe.ev->storage);
}

void
EventQueue::addChunk()
{
    chunks_.push_back(std::make_unique<Event[]>(kChunk));
    chunk_used_ = 0;
}

EventQueue::Event *
EventQueue::allocate()
{
    if (free_ != nullptr) {
        Event *ev = free_;
        free_ = ev->next;
        --free_count_;
        return ev;
    }
    if (chunk_used_ == kChunk)
        addChunk();
    ++pool_allocated_;
    return &chunks_.back()[chunk_used_++];
}

EventQueue::Event *
EventQueue::acquire(Tick when)
{
    CAMLLM_ASSERT(when >= now_,
                  "event scheduled in the past "
                  "(when=%llu now=%llu seq=%llu)",
                  (unsigned long long)when, (unsigned long long)now_,
                  (unsigned long long)next_seq_);
    Event *ev = allocate();
    ev->when = when;
    ev->seq = next_seq_++;
    ev->next = nullptr;
    return ev;
}

void
EventQueue::appendToBucket(Bucket &b, Event *ev)
{
    ev->next = nullptr;
    if (b.tail == nullptr)
        b.head = ev;
    else
        b.tail->next = ev;
    b.tail = ev;
}

void
EventQueue::enqueue(Event *ev)
{
    const Tick when = ev->when;
    // Level = highest digit differing from the anchor (see header).
    // The anchor never crosses a block boundary without draining the
    // covering slot first, so for a fixed tick this level is monotone
    // non-increasing over time — a newer event can never land below
    // an older same-tick one, which keeps same-tick FIFO order exact.
    if ((when >> wheels_[0].shift) == (cal_base_ >> wheels_[0].shift)) {
        const std::size_t idx = std::size_t(when & bucket_mask_);
        appendToBucket(buckets_[idx], ev);
        occ0_[idx >> 6] |= std::uint64_t(1) << (idx & 63);
        ++cal_count_;
        if (when < cal_scan_)
            cal_scan_ = when;
        return;
    }
    for (Wheel &w : wheels_) {
        if ((when >> (w.shift + 10)) == (cal_base_ >> (w.shift + 10))) {
            const std::size_t idx =
                std::size_t(when >> w.shift) & (kUpperSlots - 1);
            appendToBucket(w.slots[idx], ev);
            w.occ[idx >> 6] |= std::uint64_t(1) << (idx & 63);
            ++w.count;
            ++wheel_count_;
            return;
        }
    }
    heap_.push_back(FarEvent{when, ev->seq, ev});
    std::push_heap(heap_.begin(), heap_.end(), farLater);
}

void
EventQueue::release(Event *ev)
{
    if (ev->destroy)
        ev->destroy(ev->storage);
    ev->next = free_;
    free_ = ev;
    ++free_count_;
}

void
EventQueue::migrateFromHeap()
{
    CAMLLM_ASSERT(cal_count_ == 0 && wheel_count_ == 0 &&
                  !heap_.empty());
    const Tick top = heap_.front().when;
    CAMLLM_ASSERT(top >= now_);
    cal_base_ = top & ~bucket_mask_;
    cal_scan_ = top;
    // Heap pops arrive in (when, seq) order, so FIFO appends keep the
    // same-tick sequence ordering intact. Everything inside the new
    // top-wheel block moves now, so the heap afterwards holds only
    // events in later blocks — which keeps wheels-before-heap a
    // total order in time.
    const unsigned top_shift = wheels_[kUpperLevels - 1].shift + 10;
    while (!heap_.empty() && (heap_.front().when >> top_shift) ==
                                 (cal_base_ >> top_shift)) {
        std::pop_heap(heap_.begin(), heap_.end(), farLater);
        Event *ev = heap_.back().ev;
        heap_.pop_back();
        enqueue(ev);
    }
}

Tick
EventQueue::peekEarliestTick(Tick commit_limit)
{
    for (;;) {
        if (cal_count_ > 0) {
            const Tick from = std::max(cal_scan_, now_);
            const Tick end = cal_base_ + buckets_.size();
            CAMLLM_ASSERT(from < end);
            const std::size_t off =
                scanOccupied(occ0_.data(), buckets_.size(),
                             std::size_t(from & bucket_mask_),
                             std::size_t(end - from));
            CAMLLM_ASSERT(off < std::size_t(end - from),
                          "non-empty calendar scanned empty");
            cal_scan_ = from + Tick(off);
            return cal_scan_;
        }
        if (wheel_count_ > 0) {
            // The lowest non-empty wheel holds the globally earliest
            // event: higher levels differ from the anchor at a higher
            // digit, i.e. lie in strictly later blocks.
            unsigned k = 0;
            while (wheels_[k].count == 0)
                ++k;
            Wheel &w = wheels_[k];
            // Only slots at/after the anchor's digit can be occupied
            // (an earlier digit would mean a tick below the anchor),
            // so the scan never crosses the block edge into stale
            // slot indices.
            const std::size_t digit =
                std::size_t(cal_base_ >> w.shift) & (kUpperSlots - 1);
            const std::size_t off =
                scanOccupied(w.occ.data(), kUpperSlots, digit,
                             kUpperSlots - digit);
            CAMLLM_ASSERT(off < kUpperSlots - digit,
                          "non-empty wheel scanned empty in-block");
            const std::size_t idx = digit + off;
            const Tick start =
                ((cal_base_ >> (w.shift + 10)) << (w.shift + 10)) |
                (Tick(idx) << w.shift);
            if (start > commit_limit)
                return start; // lower bound; anchor stays put
            // Cascade: drain the slot in stored (insertion) order
            // into the levels below. Its span is exactly the next
            // level's whole block, so every event lands at least one
            // level down; only anchor digits below level k change,
            // so no other event's level shifts.
            cal_base_ = start;
            cal_scan_ = start;
            Bucket &b = w.slots[idx];
            Event *ev = b.head;
            b.head = b.tail = nullptr;
            w.occ[idx >> 6] &= ~(std::uint64_t(1) << (idx & 63));
            while (ev != nullptr) {
                Event *next = ev->next;
                --w.count;
                --wheel_count_;
                enqueue(ev);
                ev = next;
            }
            continue;
        }
        CAMLLM_ASSERT(!heap_.empty());
        const Tick top = heap_.front().when;
        if (top > commit_limit)
            return top;
        migrateFromHeap();
    }
}

EventQueue::Event *
EventQueue::popEarliest()
{
    const Tick t = peekEarliestTick(kTickMax);
    const std::size_t idx = std::size_t(t & bucket_mask_);
    Bucket &b = buckets_[idx];
    Event *ev = b.head;
    b.head = ev->next;
    if (b.head == nullptr) {
        b.tail = nullptr;
        occ0_[idx >> 6] &= ~(std::uint64_t(1) << (idx & 63));
    }
    --cal_count_;
    return ev;
}

void
EventQueue::reserve(std::size_t events)
{
    if (heap_.capacity() < events)
        heap_.reserve(events);
    if (free_count_ + (kChunk - chunk_used_) >= events)
        return;
    // Pre-carve records onto the free list until @p events can be
    // handed out without growing the pool — first the live chunk's
    // unused tail (so it is not orphaned when a new chunk replaces
    // it as the carve target), then whole fresh chunks.
    const auto carve = [this](Event *ev) {
        ev->destroy = nullptr;
        ev->next = free_;
        free_ = ev;
        ++pool_allocated_;
        ++free_count_;
    };
    while (chunk_used_ < kChunk)
        carve(&chunks_.back()[chunk_used_++]);
    while (free_count_ < events) {
        addChunk();
        for (std::size_t i = 0; i < kChunk; ++i)
            carve(&chunks_.back()[i]);
        chunk_used_ = kChunk;
    }
}

bool
EventQueue::step()
{
    if (empty())
        return false;
    Event *ev = popEarliest();
    now_ = ev->when;
    ++executed_;
    ev->invoke(ev->storage);
    release(ev);
    return true;
}

void
EventQueue::run()
{
    while (step()) {
    }
}

Tick
EventQueue::runUntil(Tick limit)
{
    // The bounded peek never commits an anchor advance past @p limit,
    // so when the loop breaks the clock lands at limit >= cal_base_
    // and later schedules can never target a tick below the anchor.
    while (!empty()) {
        if (peekEarliestTick(limit) > limit)
            break;
        step();
    }
    if (now_ < limit)
        now_ = limit;
    return now_;
}

void
EventQueue::reset()
{
    for (Bucket &b : buckets_) {
        for (Event *ev = b.head; ev != nullptr;) {
            Event *next = ev->next;
            release(ev);
            ev = next;
        }
        b.head = b.tail = nullptr;
    }
    std::fill(occ0_.begin(), occ0_.end(), 0);
    cal_count_ = 0;
    for (Wheel &w : wheels_) {
        for (Bucket &b : w.slots) {
            for (Event *ev = b.head; ev != nullptr;) {
                Event *next = ev->next;
                release(ev);
                ev = next;
            }
            b.head = b.tail = nullptr;
        }
        w.occ.fill(0);
        w.count = 0;
    }
    wheel_count_ = 0;
    for (FarEvent &fe : heap_)
        release(fe.ev);
    heap_.clear();
    cal_base_ = 0;
    cal_scan_ = 0;
    now_ = 0;
    next_seq_ = 0;
    executed_ = 0;
}

} // namespace camllm
