#include "event_queue.h"

#include <utility>

#include "common/logging.h"

namespace camllm {

void
EventQueue::schedule(Tick when, Callback cb)
{
    CAMLLM_ASSERT(when >= now_,
                  "event scheduled in the past (when=%llu now=%llu)",
                  (unsigned long long)when, (unsigned long long)now_);
    heap_.push(Event{when, next_seq_++, std::move(cb)});
}

bool
EventQueue::step()
{
    if (heap_.empty())
        return false;
    // std::priority_queue::top() is const; move out via const_cast is
    // UB-free here because we pop immediately and Callback move leaves
    // the source valid.
    Event ev = std::move(const_cast<Event &>(heap_.top()));
    heap_.pop();
    now_ = ev.when;
    ++executed_;
    ev.cb();
    return true;
}

void
EventQueue::run()
{
    while (step()) {
    }
}

Tick
EventQueue::runUntil(Tick limit)
{
    while (!heap_.empty() && heap_.top().when <= limit)
        step();
    if (now_ < limit)
        now_ = limit;
    return now_;
}

void
EventQueue::reset()
{
    heap_ = decltype(heap_)();
    now_ = 0;
    next_seq_ = 0;
    executed_ = 0;
}

} // namespace camllm
