#include "core/fleet.h"

#include "common/stats.h"

namespace camllm::core {

FleetStats
FleetSweep::merge(std::vector<ServeStats> replica_stats)
{
    FleetStats out;
    out.replicas = replica_stats.size();

    // Merge TTFT as one pooled sample set across the fleet: averaging
    // per-replica percentiles would understate the tail, and pooled
    // nearest-rank percentiles stay bit-identical for any thread
    // count because the samples are visited in (replica, request)
    // index order.
    SampleSet ttft_ms;
    for (const ServeStats &s : replica_stats) {
        out.requests += s.requests.size();
        out.admitted += s.admitted;
        out.completed += s.completed;
        out.total_tokens += s.total_tokens;
        out.sim_events += s.sim_events;
        out.sim_makespan_max = std::max(out.sim_makespan_max,
                                        s.sim_makespan);
        out.goodput_tokens_per_s += s.goodput_tokens_per_s;
        out.finite_run_tokens_per_s += s.finite_run_tokens_per_s;
        for (const ServeRequestStats &r : s.requests)
            if (r.tokens_emitted > 0)
                ttft_ms.add(r.ttft_ms);
    }
    out.ttft.n = ttft_ms.count();
    out.ttft.p50_ms = ttft_ms.percentile(50.0);
    out.ttft.p95_ms = ttft_ms.percentile(95.0);
    out.ttft.p99_ms = ttft_ms.percentile(99.0);
    out.ttft.mean_ms = ttft_ms.mean();
    out.ttft.max_ms = ttft_ms.max();

    out.replica_stats = std::move(replica_stats);
    return out;
}

} // namespace camllm::core
