#include "batch_engine.h"

#include <algorithm>
#include <functional>

#include "common/logging.h"
#include "core/decode_stream.h"
#include "flash/flash_system.h"
#include "npu/dram.h"
#include "sim/event_queue.h"

namespace camllm::core {

BatchEngine::BatchEngine(const CamConfig &config,
                         const llm::ModelConfig &model)
    : config_(config), model_(model)
{
    if (!config_.flash.valid() || !config_.npu.valid())
        fatal("invalid Cambricon-LLM configuration '%s'",
              config_.name.c_str());
    if (!model_.valid())
        fatal("invalid model configuration '%s'", model_.name.c_str());
    plan_cache_ = std::make_unique<PlanCache>(
        config_.flash, llm::QuantSpec::of(config_.quant),
        config_.tilingOptions());
}

BatchStats
BatchEngine::run(const std::vector<RequestSpec> &requests,
                 std::uint32_t max_batch, Tick admission_stagger) const
{
    CAMLLM_ASSERT(!requests.empty());
    CAMLLM_ASSERT(max_batch >= 1);
    for (const RequestSpec &r : requests)
        CAMLLM_ASSERT(r.context >= 1 && r.decode_tokens >= 1);

    // Shared device, same construction order as the single-request
    // engine so a batch of one replays its exact event sequence.
    EventQueue eq;
    npu::DramModel dram(eq, config_.npu);
    flash::FlashSystem fs(eq, config_.flash, config_.tile_window,
                          config_.slicing);

    struct ReqRun
    {
        RequestSpec spec;
        CamConfig cfg;               ///< seq_len rebound per token
        std::unique_ptr<DecodeStream> stream;
        RequestStats stats;
        std::uint32_t tokens_done = 0;
        Tick token_start = 0;
        Tick sim_token_sum = 0; ///< simulated (un-extrapolated) time
        bool finished = false;
    };

    std::vector<ReqRun> runs(requests.size());
    std::size_t next_admit = 0;
    std::uint32_t active = 0;
    std::uint64_t finished = 0;

    DecodeStream::Env base;
    base.model = &model_;
    base.plans = plan_cache_.get();
    base.eq = &eq;
    base.dram = &dram;
    base.fs = &fs;

    // The NPU weight-staging buffer is one physical resource; divide
    // the prefetch window across however many streams are active.
    const auto rebudget = [&] {
        const std::uint64_t budget =
            config_.npu.weight_buffer_bytes /
            std::max<std::uint32_t>(1, active);
        for (ReqRun &r : runs)
            if (r.stream && !r.finished)
                r.stream->setReadBudget(budget);
    };

    std::function<void(std::size_t)> startNext;
    std::function<void()> admit;

    const auto onTokenDone = [&](std::size_t i, const TokenStats &s) {
        ReqRun &r = runs[i];
        r.sim_token_sum += eq.now() - r.token_start;
        r.stats.total_token_time += s.token_time;
        if (r.tokens_done == 0)
            r.stats.first_token = s;
        ++r.tokens_done;
        if (r.tokens_done < r.spec.decode_tokens) {
            startNext(i); // continuous: no batch barrier
            return;
        }
        r.finished = true;
        r.stats.finish_tick = eq.now();
        ++finished;
        CAMLLM_ASSERT(active > 0);
        --active;
        admit(); // refill the slot at the same tick
        rebudget();
    };

    startNext = [&](std::size_t i) {
        ReqRun &r = runs[i];
        // The request's KV stream grows with every decoded token.
        const std::uint32_t seq = r.spec.context + r.tokens_done;
        r.cfg.seq_len = seq;
        r.token_start = eq.now();
        r.stream->startToken(seq, 0, [&, i](const TokenStats &s) {
            onTokenDone(i, s);
        });
    };

    bool initial_wave = true;
    admit = [&] {
        std::vector<std::size_t> started;
        while (active < max_batch && next_admit < runs.size()) {
            const std::size_t i = next_admit++;
            ReqRun &r = runs[i];
            r.spec = requests[i];
            r.cfg = config_;
            r.stats.id = std::uint32_t(i);
            r.stats.context = r.spec.context;
            r.stats.decode_tokens = r.spec.decode_tokens;
            DecodeStream::Env env = base;
            env.cfg = &r.cfg;
            r.stream = std::make_unique<DecodeStream>(env);
            ++active;
            started.push_back(i);
        }
        if (started.empty())
            return;
        // Budget every stream for the new concurrency BEFORE any new
        // stream issues work, so no first token prefetches with more
        // than its share of the staging buffer.
        rebudget();
        for (std::size_t i : started) {
            ReqRun &r = runs[i];
            // Stagger only the initial wave (i * stagger ticks); the
            // slot is held from admission, the stream just waits for
            // its start slot. Refills inherit the wave's phase offset
            // naturally. A delay of zero starts synchronously, which
            // keeps the batch-of-one event sequence identical to the
            // single-stream engine's.
            const Tick start =
                initial_wave ? Tick(i) * admission_stagger : eq.now();
            r.stats.admit_tick = start;
            if (start == eq.now())
                startNext(i);
            else
                eq.schedule(start, [&, i] { startNext(i); });
        }
    };

    admit();
    initial_wave = false;
    eq.run();
    CAMLLM_ASSERT(finished == runs.size(),
                  "only %llu of %zu requests completed",
                  (unsigned long long)finished, runs.size());

    BatchStats out;
    out.max_batch = max_batch;
    out.sim_makespan = eq.now();
    out.requests.reserve(runs.size());

    Tick sim_sum = 0, ext_sum = 0;
    double rate_sum = 0.0, rate_sq_sum = 0.0;
    for (ReqRun &r : runs) {
        RequestStats &st = r.stats;
        st.mean_token_time = st.total_token_time / st.decode_tokens;
        st.tokens_per_s =
            st.total_token_time > 0
                ? double(st.decode_tokens) * double(kSec) /
                      double(st.total_token_time)
                : 0.0;
        out.total_tokens += st.decode_tokens;
        sim_sum += r.sim_token_sum;
        ext_sum += st.total_token_time;
        rate_sum += st.tokens_per_s;
        rate_sq_sum += st.tokens_per_s * st.tokens_per_s;
        out.requests.push_back(std::move(st));
    }

    out.extrapolation_factor =
        sim_sum > 0 ? double(ext_sum) / double(sim_sum) : 1.0;
    const double real_makespan =
        double(out.sim_makespan) * out.extrapolation_factor;
    out.finite_run_tokens_per_s =
        real_makespan > 0.0
            ? double(out.total_tokens) * double(kSec) / real_makespan
            : 0.0;
    const double concurrency =
        double(std::min<std::size_t>(max_batch, out.requests.size()));
    out.aggregate_tokens_per_s =
        concurrency * rate_sum / double(out.requests.size());
    out.avg_channel_util = fs.avgChannelUtilization(out.sim_makespan);
    const std::size_t n = out.requests.size();
    out.fairness_jain =
        rate_sq_sum > 0.0
            ? (rate_sum * rate_sum) / (double(n) * rate_sq_sum)
            : 1.0;
    return out;
}

} // namespace camllm::core
