#include "batch_engine.h"

#include "common/logging.h"
#include "core/scheduler.h"

namespace camllm::core {

BatchEngine::BatchEngine(const CamConfig &config,
                         const llm::ModelConfig &model)
    : config_(config), model_(model),
      scheduler_(std::make_unique<Scheduler>(config, model))
{
}

BatchEngine::~BatchEngine() = default;

BatchStats
BatchEngine::run(const std::vector<RequestSpec> &requests,
                 std::uint32_t max_batch, Tick admission_stagger) const
{
    CAMLLM_ASSERT(!requests.empty());
    CAMLLM_ASSERT(max_batch >= 1);
    for (const RequestSpec &r : requests)
        CAMLLM_ASSERT(r.context >= 1 && r.decode_tokens >= 1);

    // Decode-only FCFS with free NPU arbitration is exactly the
    // scheduler's compatibility mode: it replays the PR 2 BatchEngine
    // event sequence bit-identically (enforced by tests against
    // recorded golden stats).
    std::vector<ServeRequest> sreqs;
    sreqs.reserve(requests.size());
    for (const RequestSpec &r : requests) {
        ServeRequest s;
        s.prompt = 0;
        s.context = r.context;
        s.decode_tokens = r.decode_tokens;
        s.arrival = 0;
        sreqs.push_back(s);
    }
    SchedOptions opt;
    opt.max_batch = max_batch;
    opt.policy = SchedPolicy::DecodeFirstFcfs;
    opt.npu_contention = false;
    opt.admission_stagger = admission_stagger;

    const ServeStats s = scheduler_->serve(sreqs, opt);

    BatchStats out;
    out.max_batch = s.max_batch;
    out.total_tokens = s.total_tokens;
    out.sim_makespan = s.sim_makespan;
    out.extrapolation_factor = s.extrapolation_factor;
    out.aggregate_tokens_per_s = s.aggregate_tokens_per_s;
    out.finite_run_tokens_per_s = s.finite_run_tokens_per_s;
    out.avg_channel_util = s.avg_channel_util;
    out.fairness_jain = s.fairness_jain;
    out.requests.reserve(s.requests.size());
    for (const ServeRequestStats &r : s.requests) {
        RequestStats st;
        st.id = r.id;
        st.context = r.context;
        st.decode_tokens = r.decode_tokens;
        st.admit_tick = r.admit_tick;
        st.finish_tick = r.finish_tick;
        st.first_token = r.first_token;
        st.total_token_time = r.total_token_time;
        st.mean_token_time = r.mean_token_time;
        st.tokens_per_s = r.tokens_per_s;
        out.requests.push_back(std::move(st));
    }
    return out;
}

} // namespace camllm::core
