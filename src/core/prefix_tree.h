/**
 * @file
 * Radix tree over prompt prefixes mapping shared KV blocks into
 * request block tables.
 *
 * Thousands of requests carrying the same system prompt write the
 * same leading KV positions; the tree caches those blocks once and
 * maps them into every later table through KvPool::retain — the first
 * real user of the pool's refcount path. Each cached prefix is a path
 * of full blocks: block k of prefix p covers prompt tokens
 * [k*B, (k+1)*B) and is only cached once the whole block has been
 * prefilled. Today the tree branches at the root (one path per
 * prefix id — request traces tag which canned prompt they lead with);
 * mid-path branching for nested prefixes is the natural extension and
 * changes none of this interface.
 *
 * The tree holds one pool reference per cached block, so a cached
 * block survives the eviction or retirement of every table it was
 * mapped into. Under pool pressure the scheduler asks the tree to
 * drop cold cache-only blocks (refcount 1 — no live table maps them)
 * before it preempts anyone; at drain it releases everything so the
 * pool's leak audits stay exact. All traversal orders are
 * deterministic (std::map, last-touch tie-break on lower id).
 */

#ifndef CAMLLM_CORE_PREFIX_TREE_H
#define CAMLLM_CORE_PREFIX_TREE_H

#include <cstdint>
#include <map>
#include <vector>

#include "core/kv_pool.h"

namespace camllm::core {

/** Block-granular prefix cache over a KvPool. */
class PrefixTree
{
  public:
    explicit PrefixTree(KvPool &pool) : pool_(pool) {}

    /**
     * Map the longest cached chain of prefix @p prefix_id — at most
     * @p max_blocks blocks — into @p table: each matched block is
     * retained and appended. @p table must be empty of prompt blocks
     * (matching only ever lands at position 0). Returns the matched
     * block count and refreshes the chain's last-touch stamp.
     */
    std::size_t match(std::uint64_t prefix_id, std::size_t max_blocks,
                      std::vector<std::uint32_t> &table);

    /**
     * Cache @p block as block @p index of prefix @p prefix_id. A
     * chain grows strictly in order, so only index == chain length
     * inserts (anything below is already cached, anything above waits
     * for its predecessor); the tree retains the block. Returns true
     * when newly cached.
     */
    bool insert(std::uint64_t prefix_id, std::size_t index,
                std::uint32_t block);

    /**
     * Drop up to @p want cache-only blocks (pool refcount 1),
     * coldest chain first, each chain from its tail so every chain
     * stays a contiguous prefix. Returns how many blocks were
     * actually freed back to the pool. The scheduler calls this when
     * the pool runs dry, before resorting to preemption.
     */
    std::uint64_t dropCold(std::uint64_t want);

    /** Release every cached reference (drain teardown). */
    void releaseAll();

    std::uint64_t cachedBlocks() const { return cached_; }
    std::uint64_t hitBlocks() const { return hit_blocks_; }
    std::uint64_t insertedBlocks() const { return inserted_; }
    std::uint64_t droppedBlocks() const { return dropped_; }

  private:
    struct Chain
    {
        std::vector<std::uint32_t> blocks;
        std::uint64_t last_touch = 0;
    };

    KvPool &pool_;
    std::map<std::uint64_t, Chain> chains_;
    std::uint64_t touch_seq_ = 0;
    std::uint64_t cached_ = 0;
    std::uint64_t hit_blocks_ = 0;
    std::uint64_t inserted_ = 0;
    std::uint64_t dropped_ = 0;
};

} // namespace camllm::core

#endif // CAMLLM_CORE_PREFIX_TREE_H
