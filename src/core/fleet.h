/**
 * @file
 * Deterministic cross-replica fleet simulation.
 *
 * Scale-out studies (WaferLLM/Sangam-class deployments) model a fleet
 * of independent devices, each running its own serving simulation.
 * Replicas share nothing — every one builds its own engine and event
 * queue — so they are embarrassingly parallel, and FleetSweep runs
 * them on the ParallelSweep worker pool with two guarantees that keep
 * fleet results bit-reproducible:
 *
 *  - seeding: each replica derives its RNG seed from (base seed,
 *    replica index) via replicaSeed(), so replica i's workload is a
 *    pure function of i no matter which worker thread runs it or how
 *    many threads exist;
 *  - merging: per-replica ServeStats are collected index-ordered and
 *    reduced in index order, so every merged number (sums, maxima,
 *    merged latency percentiles) is identical across thread counts.
 *
 * The only intentionally non-deterministic outputs are the host
 * wall-clock fields (wall_s, events_per_s) used for events/sec
 * reporting at fleet scale.
 */

#ifndef CAMLLM_CORE_FLEET_H
#define CAMLLM_CORE_FLEET_H

#include <chrono>
#include <cstddef>
#include <cstdint>
#include <utility>
#include <vector>

#include "common/hash.h"
#include "core/scheduler.h"
#include "core/sweep.h"

namespace camllm::core {

/** Merged results of one fleet run (N independent replicas). */
struct FleetStats
{
    std::size_t replicas = 0;

    /** Per-replica results, index == replica id. */
    std::vector<ServeStats> replica_stats;

    // --- deterministic reductions over the replicas --------------------
    std::size_t requests = 0;       ///< submitted across the fleet
    std::uint64_t admitted = 0;
    std::uint64_t completed = 0;
    std::uint64_t total_tokens = 0;
    std::uint64_t sim_events = 0;   ///< kernel events across the fleet

    /** Longest replica makespan — fleet wall time in sim ticks when
     *  all replicas start together. */
    Tick sim_makespan_max = 0;

    /** Fleet-aggregate throughput: per-replica rates summed (replicas
     *  are independent devices running concurrently). */
    double goodput_tokens_per_s = 0.0;
    double finite_run_tokens_per_s = 0.0;

    /** TTFT distribution over every first-token-emitting request in
     *  the fleet (merged samples, not averaged percentiles). */
    LatencySummary ttft;

    // --- host-side measurement (not deterministic) ---------------------
    double wall_s = 0.0;       ///< host seconds for the whole fleet run
    double events_per_s = 0.0; ///< sim_events / wall_s
};

/** Deterministic fleet runner over the ParallelSweep worker pool. */
class FleetSweep
{
  public:
    /** @param threads worker count; 0 selects
     *  ParallelSweep::hardwareThreads() (CAMLLM_SWEEP_THREADS). */
    explicit FleetSweep(unsigned threads = 0) : sweep_(threads) {}

    unsigned threads() const { return sweep_.threads(); }

    /**
     * RNG seed of replica @p replica under @p base_seed. A pure
     * function of its inputs — the contract that makes fleet results
     * independent of worker scheduling — with distinct, well-mixed
     * values per replica so per-replica workloads are uncorrelated.
     */
    static std::uint64_t
    replicaSeed(std::uint64_t base_seed, std::size_t replica)
    {
        return hashCombine(base_seed, std::uint64_t(replica));
    }

    /**
     * Run fn(replica, seed) for every replica in [0, n) across the
     * worker pool and merge the results. @p fn must be thread-safe
     * and must derive all randomness from @p seed (it receives
     * replicaSeed(base_seed, replica)).
     */
    template <typename Fn>
    FleetStats
    run(std::size_t n, std::uint64_t base_seed, Fn &&fn) const
    {
        const auto t0 = std::chrono::steady_clock::now();
        std::vector<ServeStats> reps =
            sweep_.map<ServeStats>(n, [&](std::size_t i) {
                return fn(i, replicaSeed(base_seed, i));
            });
        FleetStats out = merge(std::move(reps));
        out.wall_s =
            std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                          t0)
                .count();
        out.events_per_s =
            out.wall_s > 0.0 ? double(out.sim_events) / out.wall_s : 0.0;
        return out;
    }

    /**
     * Index-ordered reduction of per-replica results (exposed for
     * merge-math tests). Leaves wall_s / events_per_s zero.
     */
    static FleetStats merge(std::vector<ServeStats> replica_stats);

  private:
    ParallelSweep sweep_;
};

} // namespace camllm::core

#endif // CAMLLM_CORE_FLEET_H
