#include "presets.h"

#include "common/hash.h"

namespace camllm::core {

std::uint64_t
configHash(const CamConfig &cfg)
{
    Fnv1a h;
    // The name is presentation only and deliberately excluded: two
    // identically-parameterized configs must hit the same cache line.
    const auto &g = cfg.flash.geometry;
    h.add(g.channels).add(g.chips_per_channel).add(g.dies_per_chip);
    h.add(g.planes_per_die).add(g.compute_cores_per_die);
    h.add(g.blocks_per_plane).add(g.pages_per_block);
    h.add(g.page_bytes).add(g.spare_bytes);
    const auto &t = cfg.flash.timing;
    h.add(t.t_read).add(t.bus_mts).add(t.bus_bits);
    h.add(t.grant_overhead).add(t.t_reg_move);
    h.add(t.core_gops).add(t.slice_bytes);
    const auto &n = cfg.npu;
    h.add(n.tops).add(n.sfu_elems_per_ns).add(n.dram_gbps);
    h.add(n.dram_latency).add(n.weight_buffer_bytes);
    h.add(static_cast<std::uint32_t>(cfg.quant));
    h.add(cfg.seq_len);
    h.add(cfg.slicing).add(cfg.hybrid_tiling).add(cfg.prefetch);
    h.add(cfg.forced_tile.has_value());
    if (cfg.forced_tile) {
        h.add(cfg.forced_tile->h);
        h.add(cfg.forced_tile->w);
    }
    h.add(cfg.out_elem_bytes).add(cfg.tile_window);
    h.add(cfg.sample_layers);
    return h.value();
}

CamConfig
presetCustom(std::uint32_t channels, std::uint32_t chips)
{
    CamConfig c;
    c.name = "Cambricon-LLM-custom";
    c.flash.geometry.channels = channels;
    c.flash.geometry.chips_per_channel = chips;
    // Table II common parameters: 2 dies/chip, 2 planes + 1 compute
    // core per die, 16 KB pages, 1000 MT/s x 8 bit, tR = 30 us.
    c.flash.geometry.dies_per_chip = 2;
    c.flash.geometry.planes_per_die = 2;
    c.flash.geometry.compute_cores_per_die = 1;
    c.flash.geometry.page_bytes = 16 * 1024;
    c.flash.timing.t_read = 30 * kUs;
    c.flash.timing.bus_mts = 1000;
    c.flash.timing.bus_bits = 8;
    return c;
}

CamConfig
presetS()
{
    CamConfig c = presetCustom(8, 2);
    c.name = "Cam-LLM-S";
    return c;
}

CamConfig
presetM()
{
    CamConfig c = presetCustom(16, 4);
    c.name = "Cam-LLM-M";
    return c;
}

CamConfig
presetL()
{
    CamConfig c = presetCustom(32, 8);
    c.name = "Cam-LLM-L";
    return c;
}

} // namespace camllm::core
