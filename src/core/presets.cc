#include "presets.h"

namespace camllm::core {

CamConfig
presetCustom(std::uint32_t channels, std::uint32_t chips)
{
    CamConfig c;
    c.name = "Cambricon-LLM-custom";
    c.flash.geometry.channels = channels;
    c.flash.geometry.chips_per_channel = chips;
    // Table II common parameters: 2 dies/chip, 2 planes + 1 compute
    // core per die, 16 KB pages, 1000 MT/s x 8 bit, tR = 30 us.
    c.flash.geometry.dies_per_chip = 2;
    c.flash.geometry.planes_per_die = 2;
    c.flash.geometry.compute_cores_per_die = 1;
    c.flash.geometry.page_bytes = 16 * 1024;
    c.flash.timing.t_read = 30 * kUs;
    c.flash.timing.bus_mts = 1000;
    c.flash.timing.bus_bits = 8;
    return c;
}

CamConfig
presetS()
{
    CamConfig c = presetCustom(8, 2);
    c.name = "Cam-LLM-S";
    return c;
}

CamConfig
presetM()
{
    CamConfig c = presetCustom(16, 4);
    c.name = "Cam-LLM-M";
    return c;
}

CamConfig
presetL()
{
    CamConfig c = presetCustom(32, 8);
    c.name = "Cam-LLM-L";
    return c;
}

} // namespace camllm::core
