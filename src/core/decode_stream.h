/**
 * @file
 * One request's decode (or prefill) driver over shared simulation
 * resources.
 *
 * The stream owns the op-graph scheduling state for a single request:
 * it builds the token's graph, issues read-compute tiles and page
 * reads tagged with its flash ClientId, reacts to tagged completions,
 * and extrapolates the sampled layers to the model's full depth. The
 * event queue, DRAM model, flash system and plan cache are shared —
 * one stream per request is exactly how `core::BatchEngine` batches,
 * and a single stream over private resources is the classic
 * single-request engine.
 */

#ifndef CAMLLM_CORE_DECODE_STREAM_H
#define CAMLLM_CORE_DECODE_STREAM_H

#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "core/engine.h"
#include "core/presets.h"
#include "core/tiling.h"
#include "flash/flash_system.h"
#include "llm/opgraph.h"
#include "npu/dram.h"
#include "sim/event_queue.h"

namespace camllm::core {

class NpuArbiter;

/** Snapshot of every additive counter (for layer extrapolation). */
struct StreamCounters
{
    Tick t = 0;
    double busy_sum = 0.0; ///< sum of channel busy ticks
    std::uint64_t ch_high = 0;
    std::uint64_t ch_low = 0;
    std::uint64_t dram_bytes = 0;
    std::uint64_t array_reads = 0;
    std::uint64_t pages_computed = 0;
    std::uint64_t pages_read = 0;
    double npu_flops = 0.0;
    double flash_flops = 0.0;
    std::uint64_t wb_flash = 0;
    std::uint64_t wb_npu = 0;

    StreamCounters operator-(const StreamCounters &o) const;
    void addScaled(const StreamCounters &d, std::uint64_t k);
};

/** Per-request decode driver over shared co-simulation resources. */
class DecodeStream
{
  public:
    /** Shared simulation environment; everything must outlive the
     *  stream. In batch mode several streams share one Env set. */
    struct Env
    {
        const CamConfig *cfg = nullptr;
        const llm::ModelConfig *model = nullptr;
        const PlanCache *plans = nullptr;
        EventQueue *eq = nullptr;
        npu::DramModel *dram = nullptr;
        flash::FlashSystem *fs = nullptr;

        /**
         * Shared-NPU occupancy arbiter; optional. When present and
         * contended, the stream reserves systolic-array and SFU time
         * through it instead of overlapping with its neighbors for
         * free. Null (or a free arbiter) reproduces the historical
         * infinitely-parallel NPU bit-exactly.
         */
        NpuArbiter *npu = nullptr;
    };

    /** Fires when a token completes, with its (extrapolated) stats.
     *  In batch mode the byte/utilization counters cover the whole
     *  device over the token's span, not only this stream's share. */
    using TokenDone = std::function<void(const TokenStats &)>;

    /** Connects a completion port on env.fs. */
    explicit DecodeStream(const Env &env);

    DecodeStream(const DecodeStream &) = delete;
    DecodeStream &operator=(const DecodeStream &) = delete;

    /**
     * Begin one token at the current tick. @p seq is the request's
     * context length; nonzero @p prefill_tokens simulates the prefill
     * phase over that many prompt tokens instead of a decode step.
     * @p done fires from inside the simulation when the token's last
     * op completes. One token may be in flight per stream.
     */
    void startToken(std::uint32_t seq, std::uint32_t prefill_tokens,
                    TokenDone done);

    /**
     * Begin one chunk of a chunked prefill at the current tick:
     * @p chunk_len prompt positions on top of @p kv_base KV entries
     * earlier chunks wrote. The chunk appends its own K/V to DRAM as
     * it goes; only the last chunk (@p last_chunk) runs the head
     * projection and emits the request's first token. A single chunk
     * covering the whole prompt with kv_base == 0 is bit-identical to
     * startToken(prompt, prompt, done) — the classic one-shot
     * prefill.
     */
    void startPrefillChunk(std::uint32_t chunk_len,
                           std::uint32_t kv_base, bool last_chunk,
                           TokenDone done);

    /** True between startToken() and its done callback. */
    bool busy() const { return !done_ops_all_; }

    /**
     * Abandon the stream mid-unit (request cancelled or timed out).
     * The completion port is torn down — records already queued in
     * the CompletionRouter and everything the device still produces
     * for this client are dropped, never delivered — and every
     * deferred callback (DRAM joins, NPU grants, drain tails) becomes
     * a no-op, since the EventQueue cannot cancel events. The done
     * callback is released without firing. The stream must not be
     * started again; device work already submitted keeps draining and
     * charging the shared resources it occupies, like a real
     * cancelled request's in-flight I/O.
     */
    void abortUnit();

    bool aborted() const { return aborted_; }

    /**
     * Cap on this stream's in-flight NPU read bytes (the prefetch
     * window). Defaults to the full NPU weight buffer; BatchEngine
     * divides the buffer across active streams.
     */
    void setReadBudget(std::uint64_t bytes) { read_budget_ = bytes; }

    /**
     * KV addressing mode for this request's stream. The default
     * contiguous view issues each attention/append transfer as one
     * DRAM burst (the historical behavior, bit-exact). A paged view
     * splits every KV transfer at block boundaries into one DRAM
     * request per touched block — the block-table indirection of a
     * paged KV cache, which pays per-block DRAM latency and
     * interleaves with neighbors at block granularity. A block that
     * covers the whole stream reproduces the contiguous sequence
     * bit-identically. Takes effect from the next unit.
     */
    void setKvView(llm::KvView view) { kv_view_ = view; }

    /**
     * Override the WorkClass tag on submitted flash work (set by the
     * scheduler while KV-recompute prefill chunks run, so re-streamed
     * weight traffic is accounted apart from first-pass prefill).
     * std::nullopt restores phase-derived tagging.
     */
    void setWorkClass(std::optional<flash::WorkClass> cls)
    {
        class_override_ = cls;
    }

    flash::ClientId clientId() const { return client_; }

  private:
    /** Per-op scheduling state. */
    struct OpState
    {
        std::uint32_t remaining_deps = 0;
        std::uint64_t rc_remaining = 0;
        std::uint64_t read_remaining = 0;
        std::uint64_t read_total = 0;
        Tick ready_tick = 0; ///< when dependencies were satisfied
        std::uint8_t join_remaining = 0; ///< contended DRAM+array join
        std::uint32_t dram_remaining = 0; ///< paged-KV segment joins
        bool ready = false;
        bool rc_issued = false;
        bool reads_issued = false;
        bool completed = false;
    };

    bool prefillMode() const { return prefill_tokens_ > 0; }
    bool contendedNpu() const;
    flash::WorkClass workClass() const
    {
        if (class_override_)
            return *class_override_;
        return prefillMode() ? flash::WorkClass::Prefill
                             : flash::WorkClass::Decode;
    }
    /** Fills and returns kv_segs_ (per-stream scratch: the KV DRAM
     *  paths stay allocation-free after warmup, per the PR 1 hot-path
     *  contract). Valid until the next call on this stream. */
    const std::vector<std::uint64_t> &kvSegmentsFor(const llm::Op &op);
    void issueKvDram(std::uint32_t id,
                     const std::vector<std::uint64_t> &segs,
                     std::function<void()> done);
    void beginUnit(TokenDone done);
    const TilePlan &planFor(std::uint64_t rows, std::uint64_t cols) const
    {
        return env_.plans->planFor(rows, cols);
    }
    std::uint32_t elemsPerPage() const
    {
        return env_.plans->elemsPerPage();
    }
    std::uint64_t npuRows(const TilePlan &plan) const;

    void onCompletion(const flash::Completion &c);
    void opReady(std::uint32_t id);
    void issueGemv(std::uint32_t id);
    void issueReads(std::uint32_t id, const TilePlan &plan);
    void maybeCompleteGemv(std::uint32_t id);
    void complete(std::uint32_t id);
    void tryPrefetch();
    void finishToken();
    StreamCounters capture() const;

    Env env_;
    llm::QuantSpec quant_;
    flash::ClientId client_ = 0;
    llm::KvView kv_view_; ///< contiguous unless the scheduler pages
    std::optional<flash::WorkClass> class_override_;
    std::vector<std::uint64_t> kv_segs_; ///< kvSegmentsFor scratch

    std::uint32_t seq_ = 0;
    std::uint32_t prefill_tokens_ = 0;
    std::uint32_t kv_base_ = 0;  ///< KV written by earlier chunks
    bool last_chunk_ = true;     ///< head projection present
    TokenDone done_;
    bool done_ops_all_ = true;
    bool aborted_ = false;

    llm::DecodeGraph graph_;
    bool graph_is_decode_ = false; ///< decode graph cached for rebind
    std::vector<OpState> st_;
    std::vector<std::vector<std::uint32_t>> dependents_;
    std::vector<std::int64_t> layer_last_;
    std::vector<StreamCounters> layer_snaps_;

    std::vector<std::uint32_t> gemv_order_;
    std::size_t prefetch_next_ = 0;
    std::uint64_t outstanding_read_bytes_ = 0;
    std::uint64_t read_budget_ = 0;

    std::uint32_t rr_read_channel_ = 0;
    std::uint32_t ops_done_ = 0;
    Tick token_start_ = 0;
    Tick end_tick_ = 0;
    StreamCounters start_;

    double npu_flops_ = 0.0;
    double flash_flops_ = 0.0;
    std::uint64_t wb_flash_ = 0;
    std::uint64_t wb_npu_ = 0;
};

} // namespace camllm::core

#endif // CAMLLM_CORE_DECODE_STREAM_H
