/**
 * @file
 * Paged KV-cache block allocator over a bounded DRAM budget.
 *
 * Real devices bound serving batch size by the DRAM left over for KV
 * after weights and activations; the pool models that wall. KV
 * capacity is divided into fixed-size blocks of `block_tokens` tokens
 * (each block holds the K and V entries of those tokens across every
 * model layer), and each request owns a block table — the ordered
 * list of blocks its logical KV stream maps onto. The scheduler grows
 * a table as prefill chunks and decode steps append KV, releases it
 * when the request retires, and evicts it whole when the request is
 * preempted under memory pressure.
 *
 * Blocks are refcounted so a future prefix-sharing scheduler can map
 * one block into several tables; today every table holds its blocks
 * at refcount 1. Double-free and leak bugs are loud: over-release
 * panics, and audit() reports the blocks still held.
 *
 * An unbounded pool (budget_bytes == 0) never refuses an allocation
 * and exists so bounded-path plumbing can run with capacity effects
 * disabled — every event sequence must then replay the pre-paging
 * scheduler bit-identically (enforced by tests).
 */

#ifndef CAMLLM_CORE_KV_POOL_H
#define CAMLLM_CORE_KV_POOL_H

#include <cstdint>
#include <vector>

namespace camllm::core {

/** One request's ordered block list; block i holds logical tokens
 *  [i * block_tokens, (i+1) * block_tokens). Coverage is derived
 *  from blocks.size() — there is no second copy to drift. */
struct KvBlockTable
{
    std::vector<std::uint32_t> blocks;

    bool empty() const { return blocks.empty(); }
};

/** Fixed-block KV-cache allocator with refcounts and usage stats. */
class KvPool
{
  public:
    /**
     * @p budget_bytes caps the pool (0 = unbounded); @p block_tokens
     * is the block granularity in tokens and @p block_bytes the DRAM
     * footprint of one block (tokens x KV-dim x act bytes x layers).
     * A bounded pool requires block_tokens >= 1 and holds
     * budget_bytes / block_bytes whole blocks.
     */
    KvPool(std::uint64_t budget_bytes, std::uint32_t block_tokens,
           std::uint64_t block_bytes);

    bool bounded() const { return total_blocks_ != kUnbounded; }
    std::uint32_t blockTokens() const { return block_tokens_; }
    std::uint64_t blockBytes() const { return block_bytes_; }

    /** Whole blocks the budget holds (kUnbounded when unbounded). */
    std::uint64_t totalBlocks() const { return total_blocks_; }

    /** Blocks needed to cover @p tokens of KV. */
    std::uint64_t blocksForTokens(std::uint64_t tokens) const;

    /** True when a table covering @p tokens could be grown/allocated
     *  from the free blocks right now. */
    bool canGrow(const KvBlockTable &t, std::uint64_t tokens) const;

    /**
     * Grow @p t to cover @p tokens, allocating the missing blocks.
     * Returns false (and changes nothing) when the pool is dry. A
     * request whose table already covers @p tokens always succeeds.
     */
    bool tryGrow(KvBlockTable &t, std::uint64_t tokens);

    /** Drop one reference on every block of @p t and clear it (the
     *  retire / eviction path). */
    void release(KvBlockTable &t);

    /** Add a reference to @p block (prefix sharing between tables). */
    void retain(std::uint32_t block);

    /** Drop a reference on @p block; frees it at refcount 0. */
    void releaseBlock(std::uint32_t block);

    /** Current reference count of @p block (0 = free). */
    std::uint32_t refCount(std::uint32_t block) const
    {
        return block < refcount_.size() ? refcount_[block] : 0;
    }

    // --- usage statistics ----------------------------------------------
    std::uint64_t blocksInUse() const { return in_use_; }
    std::uint64_t freeBlocks() const;
    std::uint64_t highWaterBlocks() const { return high_water_; }
    std::uint64_t allocCount() const { return allocs_; }
    std::uint64_t freeCount() const { return frees_; }

    /** Blocks still referenced — 0 after every table was released.
     *  The scheduler audits this at drain; tests assert it. NOTE:
     *  this is a *block* count — a block shared at refcount N leaks
     *  N-1 references invisibly here, so the drain audit must check
     *  leakedRefs() too (it once did not, and a shared block released
     *  only once passed the audit). */
    std::uint64_t leakedBlocks() const { return in_use_; }

    /** References still outstanding across every block — every
     *  alloc/retain adds one, every releaseBlock removes one. 0 after
     *  drain even when sharing held blocks at refcount > 1. */
    std::uint64_t leakedRefs() const { return refs_outstanding_; }

    static constexpr std::uint64_t kUnbounded = ~std::uint64_t(0);

  private:
    std::uint32_t allocBlock();

    std::uint32_t block_tokens_ = 0;
    std::uint64_t block_bytes_ = 0;
    std::uint64_t total_blocks_ = kUnbounded;

    std::vector<std::uint32_t> free_list_; ///< LIFO, deterministic
    std::vector<std::uint32_t> refcount_;  ///< per allocated block id
    std::uint64_t in_use_ = 0;
    std::uint64_t refs_outstanding_ = 0;
    std::uint64_t high_water_ = 0;
    std::uint64_t allocs_ = 0;
    std::uint64_t frees_ = 0;
};

} // namespace camllm::core

#endif // CAMLLM_CORE_KV_POOL_H
