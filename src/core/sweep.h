/**
 * @file
 * Parallel sweep runner for design-space and figure reproductions.
 *
 * Every headline figure sweeps the co-simulation over many
 * independent (config, model, knob) points; each point builds its own
 * engine and event queue, so points are embarrassingly parallel. The
 * runner fans jobs out over a std::thread pool with an atomic work
 * counter and writes results into an index-addressed vector, so the
 * output order (and therefore every printed table) is identical to
 * the sequential run no matter how the OS schedules workers.
 */

#ifndef CAMLLM_CORE_SWEEP_H
#define CAMLLM_CORE_SWEEP_H

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <thread>
#include <type_traits>
#include <vector>

namespace camllm::core {

/** Deterministically-ordered parallel map over [0, n). */
class ParallelSweep
{
  public:
    /** @param threads worker count; 0 selects hardwareThreads(). */
    explicit ParallelSweep(unsigned threads = 0);

    unsigned threads() const { return threads_; }

    /**
     * Evaluate fn(i) for every i in [0, n) and return the results in
     * index order. @p fn must be safe to call from multiple threads
     * (each sweep point should build its own engine).
     */
    template <typename R, typename Fn>
    std::vector<R>
    map(std::size_t n, Fn &&fn) const
    {
        static_assert(std::is_default_constructible_v<R>,
                      "sweep results are index-assigned");
        std::vector<R> results(n);
        const unsigned workers =
            unsigned(std::min<std::size_t>(threads_, n));
        if (workers <= 1) {
            for (std::size_t i = 0; i < n; ++i)
                results[i] = fn(i);
            return results;
        }
        std::atomic<std::size_t> next{0};
        auto worker = [&] {
            for (;;) {
                const std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= n)
                    return;
                results[i] = fn(i);
            }
        };
        std::vector<std::thread> pool;
        pool.reserve(workers - 1);
        for (unsigned t = 0; t + 1 < workers; ++t)
            pool.emplace_back(worker);
        worker();
        for (auto &th : pool)
            th.join();
        return results;
    }

    /**
     * Worker count a default-constructed sweep uses: the
     * CAMLLM_SWEEP_THREADS environment variable when set, otherwise
     * std::thread::hardware_concurrency() (minimum 1).
     */
    static unsigned hardwareThreads();

  private:
    unsigned threads_;
};

} // namespace camllm::core

#endif // CAMLLM_CORE_SWEEP_H
