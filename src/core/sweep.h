/**
 * @file
 * Parallel sweep runner for design-space and figure reproductions.
 *
 * Every headline figure sweeps the co-simulation over many
 * independent (config, model, knob) points; each point builds its own
 * engine and event queue, so points are embarrassingly parallel. The
 * runner fans jobs out over a std::thread pool with an atomic work
 * counter and writes results into an index-addressed vector, so the
 * output order (and therefore every printed table) is identical to
 * the sequential run no matter how the OS schedules workers.
 *
 * Sweeps can opt into memoization through a SweepCache: each point is
 * keyed by (config hash, model hash, knob) and already-simulated
 * points return their cached TokenStats without re-running the
 * co-simulation, which makes iterative design-space exploration
 * incremental — including across processes when the cache is
 * persisted via CAMLLM_SWEEP_CACHE.
 */

#ifndef CAMLLM_CORE_SWEEP_H
#define CAMLLM_CORE_SWEEP_H

#include <algorithm>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <mutex>
#include <string>
#include <thread>
#include <type_traits>
#include <unordered_map>
#include <vector>

#include "common/hash.h"
#include "core/engine.h"
#include "core/presets.h"
#include "llm/model_config.h"

namespace camllm::core {

/**
 * Thread-safe (config-hash, model-hash, knob) -> TokenStats memo.
 * Keys are produced with sweepKey(); lookups and stores may race from
 * sweep workers. Optionally persists to a flat text file so re-run
 * sweeps skip every already-simulated point.
 */
class SweepCache
{
  public:
    SweepCache() = default;

    /** @return true and fill @p out when @p key is cached. */
    bool lookup(std::uint64_t key, TokenStats &out) const;

    void store(std::uint64_t key, const TokenStats &stats);

    std::uint64_t hits() const { return hits_.load(); }
    std::uint64_t misses() const { return misses_.load(); }
    std::size_t size() const;

    /** Merge entries from @p path; false when unreadable. */
    bool load(const std::string &path);

    /** Write every entry to @p path; false on I/O failure. */
    bool save(const std::string &path) const;

    /**
     * Process-wide cache. On first use it loads the file named by the
     * CAMLLM_SWEEP_CACHE environment variable (when set); call
     * saveGlobal() after a sweep to persist new points back.
     */
    static SweepCache &global();

    /** Persist global() to CAMLLM_SWEEP_CACHE when set. */
    static void saveGlobal();

  private:
    mutable std::mutex mu_;
    std::unordered_map<std::uint64_t, TokenStats> map_;
    mutable std::atomic<std::uint64_t> hits_{0};
    mutable std::atomic<std::uint64_t> misses_{0};
};

/**
 * Bump whenever simulator timing semantics change: it salts every
 * sweep key, so a persisted cache written by an older simulator
 * misses instead of replaying stale results.
 */
inline constexpr std::uint64_t kSweepCacheVersion = 4;

/** Memo key of one sweep point. @p knob distinguishes points whose
 *  variation lives outside the config struct (prompt length, forced
 *  batch size, ...); pass 0 when the config and model say it all. */
inline std::uint64_t
sweepKey(const CamConfig &cfg, const llm::ModelConfig &model,
         std::uint64_t knob = 0)
{
    return hashCombine(
        kSweepCacheVersion,
        hashCombine(hashCombine(configHash(cfg), llm::modelHash(model)),
                    knob));
}

/** Deterministically-ordered parallel map over [0, n). */
class ParallelSweep
{
  public:
    /** @param threads worker count; 0 selects hardwareThreads(). */
    explicit ParallelSweep(unsigned threads = 0);

    unsigned threads() const { return threads_; }

    /**
     * Evaluate fn(i) for every i in [0, n) and return the results in
     * index order. @p fn must be safe to call from multiple threads
     * (each sweep point should build its own engine).
     */
    template <typename R, typename Fn>
    std::vector<R>
    map(std::size_t n, Fn &&fn) const
    {
        static_assert(std::is_default_constructible_v<R>,
                      "sweep results are index-assigned");
        static_assert(!std::is_same_v<R, bool>,
                      "vector<bool> packs bits: concurrent "
                      "results[i] writes would race");
        std::vector<R> results(n);
        const unsigned workers =
            unsigned(std::min<std::size_t>(threads_, n));
        if (workers <= 1) {
            for (std::size_t i = 0; i < n; ++i)
                results[i] = fn(i);
            return results;
        }
        std::atomic<std::size_t> next{0};
        auto worker = [&] {
            for (;;) {
                const std::size_t i =
                    next.fetch_add(1, std::memory_order_relaxed);
                if (i >= n)
                    return;
                results[i] = fn(i);
            }
        };
        std::vector<std::thread> pool;
        pool.reserve(workers - 1);
        for (unsigned t = 0; t + 1 < workers; ++t)
            pool.emplace_back(worker);
        worker();
        for (auto &th : pool)
            th.join();
        return results;
    }

    /**
     * map() with sweep-level memoization: point @p i is keyed by
     * key(i); cached points skip fn(i) entirely. Results are
     * deterministic and index-ordered either way (a cached point
     * returns exactly the TokenStats its first simulation produced).
     */
    template <typename KeyFn, typename Fn>
    std::vector<TokenStats>
    mapMemo(SweepCache &cache, std::size_t n, KeyFn &&key, Fn &&fn) const
    {
        return map<TokenStats>(n, [&](std::size_t i) {
            const std::uint64_t k = key(i);
            TokenStats s;
            if (cache.lookup(k, s))
                return s;
            s = fn(i);
            cache.store(k, s);
            return s;
        });
    }

    /**
     * Worker count a default-constructed sweep uses: the
     * CAMLLM_SWEEP_THREADS environment variable when set, otherwise
     * std::thread::hardware_concurrency() (minimum 1).
     */
    static unsigned hardwareThreads();

  private:
    unsigned threads_;
};

} // namespace camllm::core

#endif // CAMLLM_CORE_SWEEP_H
