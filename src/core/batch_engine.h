/**
 * @file
 * Continuous-batching decode engine.
 *
 * Serves N concurrent decode requests from one simulated device: all
 * streams share the flash channels (tile windows and bus arbitration
 * interleave their work), the DRAM KV bandwidth and the NPU, while
 * each request keeps its own op graph, KV stream sized by its own
 * context, and flash completion port. Scheduling is continuous: a
 * request that finishes a token immediately starts its next one (its
 * context grown by one), and a retired request's slot is refilled
 * from the admission queue at the same tick — there is no batch-wide
 * synchronization barrier.
 *
 * Like the single-request engine, each token simulates a sample of
 * identical layers and extrapolates to full depth. Back-to-back
 * sampled tokens keep every stream continuously contending for the
 * channels, so the measured interference matches the full-depth
 * steady state; reported throughput is scaled by the measured
 * extrapolation factor.
 */

#ifndef CAMLLM_CORE_BATCH_ENGINE_H
#define CAMLLM_CORE_BATCH_ENGINE_H

#include <cstdint>
#include <memory>
#include <vector>

#include "core/engine.h"
#include "core/presets.h"
#include "core/tiling.h"
#include "llm/model_config.h"

namespace camllm::core {

/** One serving request: decode @p decode_tokens tokens on top of a
 *  @p context-token KV cache (prefill assumed done upstream). */
struct RequestSpec
{
    std::uint32_t context = 512;
    std::uint32_t decode_tokens = 1;
};

/** Measured results of one request. */
struct RequestStats
{
    std::uint32_t id = 0;
    std::uint32_t context = 0;
    std::uint32_t decode_tokens = 0;

    Tick admit_tick = 0;  ///< sampled-layer simulation clock
    Tick finish_tick = 0; ///< sampled-layer simulation clock

    /**
     * Full stats of the request's first decode step. With batch > 1
     * the device-wide fields (channel/DRAM bytes, utilization) cover
     * all streams over the token's span; the weight-byte and flops
     * fields are this request's own.
     */
    TokenStats first_token;

    Tick total_token_time = 0; ///< sum of extrapolated token times
    Tick mean_token_time = 0;  ///< total_token_time / decode_tokens
    double tokens_per_s = 0.0; ///< sequential decode rate under load
};

/** Aggregate results of one batched run. */
struct BatchStats
{
    std::vector<RequestStats> requests;
    std::uint32_t max_batch = 0;
    std::uint64_t total_tokens = 0;

    /** End of the sampled-layer simulation (max finish_tick). */
    Tick sim_makespan = 0;

    /** Mean extrapolated/simulated token-time ratio (~depth/sample). */
    double extrapolation_factor = 1.0;

    /**
     * Steady-state serving throughput: effective concurrency
     * (min(max_batch, requests)) times the mean per-request decode
     * rate, each rate measured under full contention and extrapolated
     * to model depth. This is the number a serving system quotes for
     * "tokens/sec at batch N".
     */
    double aggregate_tokens_per_s = 0.0;

    /** Whole-finite-run alternative: total_tokens over the
     *  depth-extrapolated makespan (includes ramp-up/drain tails). */
    double finite_run_tokens_per_s = 0.0;

    /** Mean flash-channel utilization over the whole run. */
    double avg_channel_util = 0.0;

    /** Jain's fairness index over per-request tokens_per_s. */
    double fairness_jain = 1.0;
};

class Scheduler;

/**
 * Multi-request continuous-batching co-simulation.
 *
 * Since the serving-scheduler refactor this is a compatibility facade
 * over core::Scheduler: run() is decode-only FCFS scheduling with
 * free NPU arbitration and an unbounded contiguous KV pool, which
 * reproduces the original BatchEngine event sequence bit-identically.
 * New code that wants prefill admission, arrival traces, NPU
 * contention, SLO percentiles or a bounded paged KV cache
 * (kv_budget_bytes / kv_block_tokens, with eviction-driven
 * preemption) should use core::Scheduler directly.
 */
class BatchEngine
{
  public:
    BatchEngine(const CamConfig &config, const llm::ModelConfig &model);
    ~BatchEngine();

    /**
     * Serve @p requests with at most @p max_batch concurrently active
     * streams. Requests are admitted in order; each retirement refills
     * the slot at the same tick. @p admission_stagger offsets the i-th
     * slot of the initial wave by i * stagger ticks, decorrelating the
     * streams' layer phases (simultaneous admission makes identical
     * requests resonate on the DRAM in a way arrival jitter never
     * would in production). Deterministic: same inputs give
     * bit-identical stats. With max_batch == 1 and a single
     * one-token request at context == config.seq_len, the first
     * token's stats are bit-identical to
     * CambriconEngine::decodeToken().
     */
    BatchStats run(const std::vector<RequestSpec> &requests,
                   std::uint32_t max_batch,
                   Tick admission_stagger = 0) const;

    const CamConfig &config() const { return config_; }
    const llm::ModelConfig &model() const { return model_; }

  private:
    CamConfig config_;
    llm::ModelConfig model_;
    std::unique_ptr<Scheduler> scheduler_;
};

} // namespace camllm::core

#endif // CAMLLM_CORE_BATCH_ENGINE_H
