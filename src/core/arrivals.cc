#include "arrivals.h"

#include <cmath>
#include <fstream>
#include <sstream>

#include "common/logging.h"
#include "common/rng.h"

namespace camllm::core {

ArrivalTrace
ArrivalTrace::poisson(double rate_per_s, std::size_t n_requests,
                      std::uint64_t seed,
                      const std::vector<RequestShape> &shapes)
{
    CAMLLM_ASSERT(rate_per_s > 0.0);
    CAMLLM_ASSERT(n_requests > 0);
    CAMLLM_ASSERT(!shapes.empty());
    for (const RequestShape &s : shapes)
        CAMLLM_ASSERT(s.first > 0 && s.second >= 1,
                      "poisson shapes need prompt >= 1, decode >= 1");

    Rng rng(seed);
    ArrivalTrace t;
    t.reqs_.reserve(n_requests);
    double now_s = 0.0;
    for (std::size_t i = 0; i < n_requests; ++i) {
        // Exponential inter-arrival via inverse transform; uniform()
        // is in [0, 1), so 1 - u is in (0, 1] and the log is finite.
        const double u = rng.uniform();
        now_s += -std::log(1.0 - u) / rate_per_s;
        const RequestShape &shape = shapes[rng.below(shapes.size())];
        ServeRequest r;
        r.prompt = shape.first;
        r.decode_tokens = shape.second;
        r.arrival = secondsToTicks(now_s);
        t.reqs_.push_back(r);
    }
    return t;
}

ArrivalTrace
ArrivalTrace::fromFile(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        fatal("cannot open arrival trace '%s'", path.c_str());

    ArrivalTrace t;
    std::string line;
    Tick prev = 0;
    std::size_t lineno = 0;
    while (std::getline(in, line)) {
        ++lineno;
        const auto first = line.find_first_not_of(" \t\r");
        if (first == std::string::npos || line[first] == '#')
            continue;
        std::istringstream ls(line);
        double arrival_us = 0.0;
        ServeRequest r;
        if (!(ls >> arrival_us >> r.prompt >> r.decode_tokens))
            fatal("%s:%zu: expected 'arrival_us prompt decode "
                  "[context]'",
                  path.c_str(), lineno);
        ls >> r.context; // optional; stays 0 when absent
        CAMLLM_ASSERT(arrival_us >= 0.0 && r.decode_tokens >= 1 &&
                          r.prompt + r.context >= 1,
                      "%s:%zu: invalid request", path.c_str(), lineno);
        r.arrival = Tick(arrival_us * double(kUs) + 0.5);
        CAMLLM_ASSERT(r.arrival >= prev,
                      "%s:%zu: arrivals must be non-decreasing",
                      path.c_str(), lineno);
        prev = r.arrival;
        t.reqs_.push_back(r);
    }
    CAMLLM_ASSERT(!t.reqs_.empty(), "trace '%s' has no requests",
                  path.c_str());
    return t;
}

ArrivalTrace
ArrivalTrace::withSharedPrefix(std::uint64_t prefix_id,
                               std::uint32_t prefix_tokens) const
{
    CAMLLM_ASSERT(prefix_id != 0 && prefix_tokens >= 1);
    ArrivalTrace t = *this;
    for (ServeRequest &r : t.reqs_) {
        r.prefix_id = prefix_id;
        r.prefix_tokens = std::min(r.prompt, prefix_tokens);
    }
    return t;
}

ArrivalTrace
ArrivalTrace::burst(std::vector<ServeRequest> requests)
{
    ArrivalTrace t;
    t.reqs_ = std::move(requests);
    for (ServeRequest &r : t.reqs_)
        r.arrival = 0;
    return t;
}

} // namespace camllm::core
