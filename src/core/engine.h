/**
 * @file
 * The Cambricon-LLM end-to-end engine: drives one decode step of an
 * LLM through the flash + NPU co-simulation.
 *
 * Weight GeMVs are split by the tiling planner: the flash share is
 * issued as read-compute tiles (input broadcast, on-die multiply,
 * result return), the NPU share as sliced page reads that fill the
 * channel bubbles. Attention ops stream the KV cache from DRAM; SFU
 * ops run on the NPU. Because every decode layer is identical, the
 * engine simulates a sample of layers and extrapolates the measured
 * steady state to the full depth.
 */

#ifndef CAMLLM_CORE_ENGINE_H
#define CAMLLM_CORE_ENGINE_H

#include <cstdint>
#include <memory>

#include "common/units.h"
#include "core/presets.h"
#include "core/tiling.h"
#include "llm/model_config.h"

namespace camllm::core {

/** Measured (and possibly extrapolated) results of one decode step. */
struct TokenStats
{
    Tick token_time = 0;
    double tokens_per_s = 0.0;

    /** Mean flash-channel bus utilization over the token. */
    double avg_channel_util = 0.0;

    std::uint64_t channel_bytes_high = 0; ///< rc inputs + results
    std::uint64_t channel_bytes_low = 0;  ///< read-page data
    std::uint64_t dram_bytes = 0;         ///< KV cache traffic
    std::uint64_t array_read_bytes = 0;   ///< NAND array reads

    std::uint64_t pages_computed = 0;
    std::uint64_t pages_read = 0;

    double npu_flops = 0.0;
    double flash_flops = 0.0;

    std::uint64_t weight_bytes_flash = 0;
    std::uint64_t weight_bytes_npu = 0;

    bool extrapolated = false;
    std::uint32_t simulated_layers = 0;

    /** Bytes that crossed the D2D link or the DRAM bus (Fig 16a). */
    std::uint64_t
    transferBytes() const
    {
        return channel_bytes_high + channel_bytes_low + dram_bytes;
    }

    /** Realized fraction of weights computed in flash. */
    double
    alphaEffective() const
    {
        const double tot =
            double(weight_bytes_flash) + double(weight_bytes_npu);
        return tot > 0.0 ? double(weight_bytes_flash) / tot : 0.0;
    }
};

/** Aggregate results of a full prompt + reply exchange. */
struct GenerateStats
{
    TokenStats prefill;      ///< prompt ingestion (one pass)
    TokenStats first_decode; ///< decode step right after the prompt
    TokenStats last_decode;  ///< decode step at the final context
    Tick total_time = 0;     ///< prefill + all decode steps
    double decode_tokens_per_s = 0.0;

    double totalSeconds() const { return ticksToSeconds(total_time); }
};

/** One-token decode co-simulation for a (config, model) pair. */
class CambriconEngine
{
  public:
    CambriconEngine(const CamConfig &config, const llm::ModelConfig &model);

    /** Simulate one decode step and return its statistics. */
    TokenStats decodeToken() const;

    /**
     * Simulate the prefill phase over a @p prompt_len-token prompt:
     * weights stream through the device once (no in-flash computing —
     * the batched GeMM runs on the NPU, which is what makes prefill
     * compute-friendly), attention costs O(prompt^2).
     */
    TokenStats prefill(std::uint32_t prompt_len) const;

    /**
     * Simulate a whole exchange: prefill of @p prompt_len tokens then
     * @p reply_len decode steps with the KV cache growing. Decode cost
     * is affine in context length, so the reply time integrates two
     * endpoint simulations (trapezoid rule).
     */
    GenerateStats generate(std::uint32_t prompt_len,
                           std::uint32_t reply_len) const;

    /** The tile plan the engine will use for a rows x cols GeMV. */
    TilePlan planFor(std::uint64_t rows, std::uint64_t cols) const;

    const CamConfig &config() const { return config_; }
    const llm::ModelConfig &model() const { return model_; }

    /** Total weight bytes touched per decode step. */
    std::uint64_t decodeWeightBytes() const { return decode_weight_bytes_; }

    /** Memoized tile plans shared by every Run this engine spawns. */
    const PlanCache &planCache() const { return *plan_cache_; }

  private:
    CamConfig config_;
    llm::ModelConfig model_;
    // Pointer, not member: built in the ctor body only after the
    // config/model validity checks have run (fatal(), not panic()).
    std::unique_ptr<PlanCache> plan_cache_;
    std::uint64_t decode_weight_bytes_ = 0;
};

} // namespace camllm::core

#endif // CAMLLM_CORE_ENGINE_H
