#include "cost_model.h"

#include <algorithm>

namespace camllm::core {

Bom
camllmBom(double weight_gb, double kv_gb, const CostParams &params)
{
    Bom b;
    b.name = "Cambricon-LLM";
    b.dram_gb = kv_gb;
    b.flash_gb = weight_gb;
    b.dram_usd = b.dram_gb * params.dram_usd_per_gb;
    b.flash_usd = b.flash_gb * params.flash_usd_per_gb;
    return b;
}

Bom
traditionalBom(double weight_gb, double kv_gb, const CostParams &params)
{
    Bom b;
    b.name = "Traditional Architecture";
    b.dram_gb = weight_gb + kv_gb;
    b.flash_gb = 0.0;
    b.dram_usd = b.dram_gb * params.dram_usd_per_gb;
    b.flash_usd = 0.0;
    return b;
}

double
chipletAdderUsd(double raw_chip_usd, const CostParams &params)
{
    return std::min(raw_chip_usd * params.chiplet_fraction,
                    params.chiplet_cap_usd);
}

std::vector<DensityEntry>
storageDensityTable()
{
    // Table I of the paper (densities in Gb/mm^2).
    return {
        {"SK hynix", "Flash", "300+", 20.00},
        {"Samsung", "Flash", "280", 28.50},
        {"SK hynix", "DDR", "1", 0.30},
        {"SK hynix", "LPDDR", "1", 0.31},
    };
}

} // namespace camllm::core
