#include "energy.h"

namespace camllm::core {

EnergyBreakdown
computeEnergy(const TokenStats &stats, const EnergyParams &params)
{
    constexpr double kPjToJ = 1e-12;
    EnergyBreakdown e;
    e.array_j = double(stats.array_read_bytes) *
                params.pj_per_byte_array * kPjToJ;
    e.channel_j = double(stats.channel_bytes_high +
                         stats.channel_bytes_low) *
                  params.pj_per_byte_channel * kPjToJ;
    e.dram_j = double(stats.dram_bytes) * params.pj_per_byte_dram *
               kPjToJ;
    e.npu_j = stats.npu_flops * params.pj_per_flop_npu * kPjToJ;
    e.flash_core_j =
        stats.flash_flops * params.pj_per_flop_flash * kPjToJ;
    return e;
}

} // namespace camllm::core
