#include "decode_stream.h"

#include <algorithm>

#include "common/logging.h"
#include "core/npu_arbiter.h"

namespace camllm::core {

StreamCounters
StreamCounters::operator-(const StreamCounters &o) const
{
    StreamCounters d;
    d.t = t - o.t;
    d.busy_sum = busy_sum - o.busy_sum;
    d.ch_high = ch_high - o.ch_high;
    d.ch_low = ch_low - o.ch_low;
    d.dram_bytes = dram_bytes - o.dram_bytes;
    d.array_reads = array_reads - o.array_reads;
    d.pages_computed = pages_computed - o.pages_computed;
    d.pages_read = pages_read - o.pages_read;
    d.npu_flops = npu_flops - o.npu_flops;
    d.flash_flops = flash_flops - o.flash_flops;
    d.wb_flash = wb_flash - o.wb_flash;
    d.wb_npu = wb_npu - o.wb_npu;
    return d;
}

void
StreamCounters::addScaled(const StreamCounters &d, std::uint64_t k)
{
    t += d.t * k;
    busy_sum += d.busy_sum * double(k);
    ch_high += d.ch_high * k;
    ch_low += d.ch_low * k;
    dram_bytes += d.dram_bytes * k;
    array_reads += d.array_reads * k;
    pages_computed += d.pages_computed * k;
    pages_read += d.pages_read * k;
    npu_flops += d.npu_flops * double(k);
    flash_flops += d.flash_flops * double(k);
    wb_flash += d.wb_flash * k;
    wb_npu += d.wb_npu * k;
}

DecodeStream::DecodeStream(const Env &env)
    : env_(env), quant_(llm::QuantSpec::of(env.cfg->quant)),
      read_budget_(env.cfg->npu.weight_buffer_bytes)
{
    client_ = env_.fs->connect(
        [this](const flash::Completion &c) { onCompletion(c); });
}

StreamCounters
DecodeStream::capture() const
{
    StreamCounters c;
    c.t = env_.eq->now();
    c.busy_sum = env_.fs->busBusySum();
    c.ch_high = env_.fs->channelBytesHigh();
    c.ch_low = env_.fs->channelBytesLow();
    c.dram_bytes = env_.dram->bytesMoved();
    c.array_reads = env_.fs->arrayReads();
    c.pages_computed = env_.fs->pagesComputed();
    c.pages_read = env_.fs->pagesRead();
    c.npu_flops = npu_flops_;
    c.flash_flops = flash_flops_;
    c.wb_flash = wb_flash_;
    c.wb_npu = wb_npu_;
    return c;
}

std::uint64_t
DecodeStream::npuRows(const TilePlan &plan) const
{
    if (prefillMode())
        return plan.rows; // batched GeMM runs on the NPU
    return env_.cfg->hybrid_tiling ? plan.npu_rows : 0;
}

void
DecodeStream::abortUnit()
{
    CAMLLM_ASSERT(!aborted_, "stream aborted twice");
    aborted_ = true;
    env_.fs->disconnect(client_);
    done_ = nullptr;
    done_ops_all_ = true;
}

void
DecodeStream::onCompletion(const flash::Completion &c)
{
    if (aborted_)
        return;
    auto &s = st_[c.op_id];
    switch (c.kind) {
      case flash::Completion::Kind::RcResult:
        CAMLLM_ASSERT(s.rc_remaining > 0);
        --s.rc_remaining;
        break;
      case flash::Completion::Kind::ReadData:
        CAMLLM_ASSERT(s.read_remaining >= c.bytes);
        s.read_remaining -= c.bytes;
        break;
    }
    maybeCompleteGemv(std::uint32_t(c.op_id));
}

bool
DecodeStream::contendedNpu() const
{
    return env_.npu && env_.npu->contended();
}

const std::vector<std::uint64_t> &
DecodeStream::kvSegmentsFor(const llm::Op &op)
{
    // Map the op onto its logical token range: attention streams the
    // whole accumulated context from token 0; an append writes the
    // positions this unit produced (the chunk in prefill, the one new
    // token in decode).
    std::uint32_t start = 0, count = 0;
    if (op.kind == llm::OpKind::KvAppend) {
        start = prefillMode() ? kv_base_ : seq_;
        count = prefillMode() ? prefill_tokens_ : 1;
    } else {
        start = 0;
        count = prefillMode() ? kv_base_ + prefill_tokens_ : seq_;
    }
    kv_segs_.clear();
    llm::kvSegmentBytes(kv_view_, op.kv_bytes, start, count,
                        kv_segs_);
    return kv_segs_;
}

void
DecodeStream::issueKvDram(std::uint32_t id,
                          const std::vector<std::uint64_t> &segs,
                          std::function<void()> done)
{
    if (segs.size() == 1) {
        // Contiguous stream (or a range inside one block): the
        // historical single DRAM burst, event-for-event.
        env_.dram->request(segs[0], std::move(done));
        return;
    }
    auto &s = st_[id];
    CAMLLM_ASSERT(s.dram_remaining == 0);
    s.dram_remaining = std::uint32_t(segs.size());
    for (std::uint64_t seg : segs)
        env_.dram->request(seg, [this, id, done] {
            CAMLLM_ASSERT(st_[id].dram_remaining > 0);
            if (--st_[id].dram_remaining == 0)
                done();
        });
}

void
DecodeStream::startToken(std::uint32_t seq, std::uint32_t prefill_tokens,
                         TokenDone done)
{
    seq_ = seq;
    prefill_tokens_ = prefill_tokens;
    kv_base_ = 0;
    last_chunk_ = true;
    beginUnit(std::move(done));
}

void
DecodeStream::startPrefillChunk(std::uint32_t chunk_len,
                                std::uint32_t kv_base, bool last_chunk,
                                TokenDone done)
{
    CAMLLM_ASSERT(chunk_len > 0);
    seq_ = kv_base + chunk_len; // context the chunk's attention spans
    prefill_tokens_ = chunk_len;
    kv_base_ = kv_base;
    last_chunk_ = last_chunk;
    beginUnit(std::move(done));
}

void
DecodeStream::beginUnit(TokenDone done)
{
    CAMLLM_ASSERT(done_ops_all_, "token already in flight");
    CAMLLM_ASSERT(!aborted_, "unit started on an aborted stream");
    const CamConfig &cfg = *env_.cfg;
    const llm::ModelConfig &model = *env_.model;

    done_ = std::move(done);
    done_ops_all_ = false;
    token_start_ = env_.eq->now();
    start_ = capture();

    const std::uint32_t layers =
        std::min(model.n_layers, cfg.sample_layers);
    if (model.n_layers > layers)
        CAMLLM_ASSERT(layers >= 3,
                      "need >= 3 sampled layers to extrapolate");
    if (prefillMode()) {
        graph_ = llm::buildPrefillChunkGraph(model, prefill_tokens_,
                                             kv_base_, quant_, layers,
                                             last_chunk_);
        graph_is_decode_ = false;
    } else if (graph_is_decode_ && graph_.n_layers == layers) {
        // Per-request graph instancing: the decode graph's structure
        // is seq-independent, so only rebind the seq-driven KV/SFU
        // magnitudes instead of rebuilding every op.
        llm::rebindDecodeGraphSeq(graph_, model, quant_, seq_);
    } else {
        graph_ = llm::buildDecodeGraph(model, seq_, quant_, layers);
        graph_is_decode_ = true;
    }

    const std::size_t n = graph_.ops.size();
    st_.assign(n, OpState{});
    dependents_.assign(n, {});
    layer_last_.assign(layers, -1);
    layer_snaps_.assign(layers, StreamCounters{});
    gemv_order_.clear();
    prefetch_next_ = 0;
    outstanding_read_bytes_ = 0;
    rr_read_channel_ = 0;
    ops_done_ = 0;
    end_tick_ = 0;

    for (std::uint32_t i = 0; i < n; ++i) {
        const llm::Op &op = graph_.ops[i];
        st_[i].remaining_deps = std::uint32_t(op.deps.size());
        for (std::uint32_t d : op.deps)
            dependents_[d].push_back(i);
        if (op.kind == llm::OpKind::GemvWeight)
            gemv_order_.push_back(i);
        if (op.layer != ~std::uint32_t(0))
            layer_last_[op.layer] =
                std::max(layer_last_[op.layer], std::int64_t(i));
    }

    for (std::uint32_t i = 0; i < n; ++i)
        if (st_[i].remaining_deps == 0)
            opReady(i);
}

void
DecodeStream::opReady(std::uint32_t id)
{
    auto &s = st_[id];
    CAMLLM_ASSERT(!s.ready);
    s.ready = true;
    s.ready_tick = env_.eq->now();
    const llm::Op &op = graph_.ops[id];
    const CamConfig &cfg = *env_.cfg;

    switch (op.kind) {
      case llm::OpKind::Sfu:
        npu_flops_ += op.flops;
        if (contendedNpu()) {
            env_.npu->acquireSfu(cfg.npu.sfuTime(op.sfu_elems),
                                 [this, id] { complete(id); });
            break;
        }
        env_.eq->scheduleIn(cfg.npu.sfuTime(op.sfu_elems),
                            [this, id] { complete(id); });
        break;
      case llm::OpKind::KvAppend:
        issueKvDram(id, kvSegmentsFor(op),
                    [this, id] { complete(id); });
        break;
      case llm::OpKind::KvLoadCompute: {
        npu_flops_ += op.flops;
        const Tick comp = cfg.npu.computeTime(op.flops);
        const std::vector<std::uint64_t> &segs = kvSegmentsFor(op);
        if (contendedNpu()) {
            // The attention compute occupies the shared array for its
            // full duration; the op finishes when both the KV stream
            // and the array grant have drained.
            s.join_remaining = 2;
            const auto part = [this, id] {
                CAMLLM_ASSERT(st_[id].join_remaining > 0);
                if (--st_[id].join_remaining == 0)
                    complete(id);
            };
            issueKvDram(id, segs, part);
            env_.npu->acquireArray(comp, part);
            break;
        }
        // Compute overlaps the KV stream; the tail past the stream's
        // pure service time (per-block latency included when paged)
        // extends the op.
        Tick serv = 0;
        for (std::uint64_t seg : segs)
            serv += env_.dram->serviceTime(seg);
        const Tick extra = comp > serv ? comp - serv : 0;
        issueKvDram(id, segs, [this, id, extra] {
            if (extra > 0)
                env_.eq->scheduleIn(extra, [this, id] { complete(id); });
            else
                complete(id);
        });
        break;
      }
      case llm::OpKind::GemvWeight:
        issueGemv(id);
        break;
    }
    tryPrefetch();
}

void
DecodeStream::issueGemv(std::uint32_t id)
{
    const llm::Op &op = graph_.ops[id];
    const TilePlan &plan = planFor(op.rows, op.cols);
    auto &s = st_[id];
    const CamConfig &cfg = *env_.cfg;

    const std::uint32_t ch = cfg.flash.geometry.channels;
    const std::uint32_t cc = cfg.flash.geometry.coresPerChannel();
    const std::uint32_t E = elemsPerPage();
    const double act_bytes = quant_.act_bits / 8.0;

    // In no-tiling mode the ragged final unit still goes to flash;
    // in prefill nothing does (cores cannot batch positions).
    std::uint64_t units = plan.flash_core_rows;
    if (!cfg.hybrid_tiling)
        units = (op.rows + plan.hpc - 1) / plan.hpc;
    if (prefillMode())
        units = 0;

    std::uint64_t rc_expected = 0;
    if (units > 0) {
        const std::uint64_t n_full_tiles = units / cc;
        const std::uint32_t rem_cores = std::uint32_t(units % cc);

        for (std::uint32_t ct = 0; ct < plan.n_col_tiles; ++ct) {
            const std::uint64_t w_off = std::uint64_t(ct) * plan.tile.w;
            const std::uint64_t w_t =
                std::min<std::uint64_t>(plan.tile.w, op.cols - w_off);
            const auto wc_t = std::uint32_t((w_t + ch - 1) / ch);
            const auto in_bytes = std::uint32_t(
                std::max(1.0, wc_t * act_bytes + 0.5));
            const auto out_b = std::uint32_t(
                std::max<std::uint32_t>(1, plan.hpc *
                                               cfg.out_elem_bytes));
            const Tick comp = cfg.flash.timing.computeTime(
                std::uint64_t(plan.hpc) * wc_t, E);

            auto submit = [&](std::uint32_t cores) {
                flash::RcTileWork tile;
                tile.client = client_;
                tile.cls = workClass();
                tile.op_id = id;
                tile.cores_used = cores;
                tile.input_bytes = in_bytes;
                tile.out_bytes_per_core = out_b;
                tile.compute_time = comp;
                for (std::uint32_t c = 0; c < ch; ++c)
                    env_.fs->submitTile(c, tile);
                rc_expected += std::uint64_t(cores) * ch;
            };
            for (std::uint64_t ft = 0; ft < n_full_tiles; ++ft)
                submit(cc);
            if (rem_cores > 0)
                submit(rem_cores);
        }
    }
    s.rc_remaining = rc_expected;
    s.rc_issued = true;

    const std::uint64_t flash_rows = op.rows - npuRows(plan);
    flash_flops_ += 2.0 * double(flash_rows) * double(op.cols);
    wb_flash_ += quant_.weightBytes(flash_rows * op.cols);

    if (!s.reads_issued)
        issueReads(id, plan);
    maybeCompleteGemv(id);
}

void
DecodeStream::issueReads(std::uint32_t id, const TilePlan &plan)
{
    auto &s = st_[id];
    CAMLLM_ASSERT(!s.reads_issued);
    s.reads_issued = true;

    const std::uint64_t npu_rows = npuRows(plan);
    const std::uint64_t bytes = quant_.weightBytes(npu_rows * plan.cols);
    s.read_total = bytes;
    s.read_remaining = bytes;
    if (bytes == 0)
        return;

    npu_flops_ += 2.0 * double(npu_rows) * double(plan.cols) *
                  graph_.ops[id].npu_compute_scale;
    wb_npu_ += bytes;
    outstanding_read_bytes_ += bytes;

    const CamConfig &cfg = *env_.cfg;
    const std::uint32_t page = cfg.flash.geometry.page_bytes;
    std::uint64_t left = bytes;
    while (left > 0) {
        const auto chunk = std::uint32_t(
            std::min<std::uint64_t>(page, left));
        left -= chunk;
        flash::ReadPageJob job;
        job.client = client_;
        job.cls = workClass();
        job.op_id = id;
        job.bytes = chunk;
        job.sliced = cfg.slicing;
        env_.fs->submitRead(rr_read_channel_, job);
        rr_read_channel_ =
            (rr_read_channel_ + 1) % cfg.flash.geometry.channels;
    }
}

void
DecodeStream::maybeCompleteGemv(std::uint32_t id)
{
    if (aborted_)
        return;
    auto &s = st_[id];
    if (s.completed || !s.ready || !s.rc_issued)
        return;
    if (s.rc_remaining != 0 || s.read_remaining != 0)
        return;
    s.completed = true;

    // Pipeline drain: the NPU multiplies the final streamed page and
    // reduces the per-channel partial sums of the flash share. When
    // the op's compute is scaled (prefill GeMM), completion further
    // waits until the streaming-overlapped compute finishes:
    // max(stream done, ready + total NPU compute).
    const llm::Op &op = graph_.ops[id];
    const TilePlan &plan = planFor(op.rows, op.cols);
    const CamConfig &cfg = *env_.cfg;
    const std::uint64_t flash_rows = op.rows - npuRows(plan);
    const double drain_flops =
        2.0 * double(elemsPerPage()) +
        double(cfg.flash.geometry.channels) * double(flash_rows);
    Tick done = env_.eq->now() + cfg.npu.computeTime(drain_flops);

    const double npu_flops = 2.0 * double(npuRows(plan)) *
                             double(op.cols) * op.npu_compute_scale;
    done = std::max(done,
                    s.ready_tick + cfg.npu.computeTime(npu_flops));
    if (contendedNpu()) {
        // The compute tail that outlives the weight stream is array
        // time this stream must reserve; the streaming-overlapped
        // portion is already charged to the op's span. Under
        // contention the tail queues behind neighbors' grants.
        env_.npu->acquireArray(done - env_.eq->now(),
                               [this, id] { complete(id); });
        return;
    }
    env_.eq->schedule(done, [this, id] { complete(id); });
}

void
DecodeStream::complete(std::uint32_t id)
{
    if (aborted_)
        return;
    auto &s = st_[id];
    const llm::Op &op = graph_.ops[id];
    if (op.kind != llm::OpKind::GemvWeight) {
        CAMLLM_ASSERT(!s.completed);
        s.completed = true;
    } else {
        outstanding_read_bytes_ -= s.read_total;
    }

    ++ops_done_;
    const bool last = ops_done_ == graph_.ops.size();
    if (last)
        end_tick_ = env_.eq->now();

    // Layer-boundary snapshot for steady-state extrapolation.
    if (op.layer != ~std::uint32_t(0) &&
        layer_last_[op.layer] == std::int64_t(id))
        layer_snaps_[op.layer] = capture();

    for (std::uint32_t dep : dependents_[id]) {
        CAMLLM_ASSERT(st_[dep].remaining_deps > 0);
        if (--st_[dep].remaining_deps == 0)
            opReady(dep);
    }
    tryPrefetch();
    if (last)
        finishToken();
}

void
DecodeStream::tryPrefetch()
{
    if (!env_.cfg->prefetch)
        return;
    while (prefetch_next_ < gemv_order_.size()) {
        const std::uint32_t id = gemv_order_[prefetch_next_];
        if (st_[id].reads_issued) {
            ++prefetch_next_;
            continue;
        }
        const llm::Op &op = graph_.ops[id];
        const TilePlan &plan = planFor(op.rows, op.cols);
        const std::uint64_t bytes =
            quant_.weightBytes(npuRows(plan) * plan.cols);
        if (bytes > 0 &&
            outstanding_read_bytes_ + bytes > read_budget_)
            break;
        issueReads(id, plan);
        ++prefetch_next_;
    }
}

void
DecodeStream::finishToken()
{
    const llm::ModelConfig &model = *env_.model;
    const std::uint32_t layers = graph_.n_layers;

    StreamCounters total = capture() - start_;
    total.t = end_tick_ - token_start_;

    TokenStats out;
    out.simulated_layers = layers;
    if (layers < model.n_layers) {
        // Steady-state delta between two interior layers (the last
        // sampled layer also contains the final norm, so use k-3/k-2).
        const StreamCounters delta =
            layer_snaps_[layers - 2] - layer_snaps_[layers - 3];
        total.addScaled(delta, model.n_layers - layers);
        out.extrapolated = true;
    }

    out.token_time = total.t;
    const double tokens = prefillMode() ? double(prefill_tokens_) : 1.0;
    out.tokens_per_s =
        total.t > 0 ? tokens * double(kSec) / double(total.t) : 0.0;
    out.avg_channel_util =
        total.t > 0
            ? total.busy_sum /
                  (double(total.t) *
                   double(env_.cfg->flash.geometry.channels))
            : 0.0;
    out.channel_bytes_high = total.ch_high;
    out.channel_bytes_low = total.ch_low;
    out.dram_bytes = total.dram_bytes;
    out.array_read_bytes =
        total.array_reads *
        std::uint64_t(env_.cfg->flash.geometry.page_bytes);
    out.pages_computed = total.pages_computed;
    out.pages_read = total.pages_read;
    out.npu_flops = total.npu_flops;
    out.flash_flops = total.flash_flops;
    out.weight_bytes_flash = total.wb_flash;
    out.weight_bytes_npu = total.wb_npu;

    done_ops_all_ = true;
    // The callback may immediately start the next token (continuous
    // batching), so hand control over only after our state is settled.
    TokenDone done = std::move(done_);
    done_ = nullptr;
    done(out);
}

} // namespace camllm::core
