#include "engine.h"

#include "common/logging.h"
#include "core/decode_stream.h"
#include "flash/flash_system.h"
#include "npu/dram.h"
#include "sim/event_queue.h"

namespace camllm::core {

namespace {

/**
 * One single-request co-simulation: private event queue, DRAM and
 * flash device, one DecodeStream driving one token (or one prefill
 * pass). The multi-request path lives in core::BatchEngine and shares
 * these resources across streams instead.
 */
TokenStats
simulateOne(const CamConfig &cfg, const llm::ModelConfig &model,
            const PlanCache &plans, std::uint32_t prefill_tokens)
{
    EventQueue eq;
    npu::DramModel dram(eq, cfg.npu);
    flash::FlashSystem fs(eq, cfg.flash, cfg.tile_window, cfg.slicing);

    DecodeStream::Env env;
    env.cfg = &cfg;
    env.model = &model;
    env.plans = &plans;
    env.eq = &eq;
    env.dram = &dram;
    env.fs = &fs;

    DecodeStream stream(env);
    TokenStats out;
    bool finished = false;
    stream.startToken(cfg.seq_len, prefill_tokens,
                      [&](const TokenStats &s) {
                          out = s;
                          finished = true;
                      });
    eq.run();
    CAMLLM_ASSERT(finished, "token did not complete");
    return out;
}

} // namespace

CambriconEngine::CambriconEngine(const CamConfig &config,
                                 const llm::ModelConfig &model)
    : config_(config), model_(model)
{
    if (!config_.flash.valid() || !config_.npu.valid())
        fatal("invalid Cambricon-LLM configuration '%s'",
              config_.name.c_str());
    if (!model_.valid())
        fatal("invalid model configuration '%s'", model_.name.c_str());

    // Capacity check: all weights (plus per-page spare) must place in
    // the flash device. The KV cache lives in DRAM, not here.
    const auto quant = llm::QuantSpec::of(config_.quant);
    const std::uint64_t weight_bytes =
        quant.weightBytes(model_.totalParams());
    const std::uint64_t pages_needed =
        (weight_bytes + config_.flash.geometry.page_bytes - 1) /
        config_.flash.geometry.page_bytes;
    if (pages_needed > config_.flash.geometry.totalPages()) {
        fatal("%s (%llu pages of weights) does not fit the flash "
              "device (%llu pages); add chips or channels",
              model_.name.c_str(), (unsigned long long)pages_needed,
              (unsigned long long)config_.flash.geometry.totalPages());
    }

    plan_cache_ = std::make_unique<PlanCache>(config_.flash, quant,
                                              config_.tilingOptions());
    decode_weight_bytes_ = quant.weightBytes(model_.decodeWeightParams());
}

TokenStats
CambriconEngine::decodeToken() const
{
    return simulateOne(config_, model_, *plan_cache_, 0);
}

TokenStats
CambriconEngine::prefill(std::uint32_t prompt_len) const
{
    CAMLLM_ASSERT(prompt_len > 0);
    return simulateOne(config_, model_, *plan_cache_, prompt_len);
}

GenerateStats
CambriconEngine::generate(std::uint32_t prompt_len,
                          std::uint32_t reply_len) const
{
    CAMLLM_ASSERT(reply_len > 0);
    GenerateStats g;
    g.prefill = prefill(prompt_len);

    // Decode cost is affine in the context length (the DRAM KV term),
    // so two endpoint simulations integrate the whole reply.
    // Only seq_len differs, so the engine's memoized plans still apply.
    CamConfig first = config_;
    first.seq_len = prompt_len + 1;
    CamConfig last = config_;
    last.seq_len = prompt_len + reply_len;
    g.first_decode = simulateOne(first, model_, *plan_cache_, 0);
    g.last_decode = simulateOne(last, model_, *plan_cache_, 0);

    const Tick avg =
        (g.first_decode.token_time + g.last_decode.token_time) / 2;
    g.total_time = g.prefill.token_time + avg * reply_len;
    g.decode_tokens_per_s = double(kSec) / double(avg);
    return g;
}

TilePlan
CambriconEngine::planFor(std::uint64_t rows, std::uint64_t cols) const
{
    return plan_cache_->planFor(rows, cols);
}

} // namespace camllm::core
