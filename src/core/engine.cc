#include "engine.h"

#include <algorithm>
#include <map>
#include <vector>

#include "common/logging.h"
#include "flash/flash_system.h"
#include "llm/opgraph.h"
#include "npu/dram.h"
#include "sim/event_queue.h"

namespace camllm::core {

namespace {

/** Snapshot of every additive counter (for layer extrapolation). */
struct Counters
{
    Tick t = 0;
    double busy_sum = 0.0; ///< sum of channel busy ticks
    std::uint64_t ch_high = 0;
    std::uint64_t ch_low = 0;
    std::uint64_t dram_bytes = 0;
    std::uint64_t array_reads = 0;
    std::uint64_t pages_computed = 0;
    std::uint64_t pages_read = 0;
    double npu_flops = 0.0;
    double flash_flops = 0.0;
    std::uint64_t wb_flash = 0;
    std::uint64_t wb_npu = 0;

    Counters
    operator-(const Counters &o) const
    {
        Counters d;
        d.t = t - o.t;
        d.busy_sum = busy_sum - o.busy_sum;
        d.ch_high = ch_high - o.ch_high;
        d.ch_low = ch_low - o.ch_low;
        d.dram_bytes = dram_bytes - o.dram_bytes;
        d.array_reads = array_reads - o.array_reads;
        d.pages_computed = pages_computed - o.pages_computed;
        d.pages_read = pages_read - o.pages_read;
        d.npu_flops = npu_flops - o.npu_flops;
        d.flash_flops = flash_flops - o.flash_flops;
        d.wb_flash = wb_flash - o.wb_flash;
        d.wb_npu = wb_npu - o.wb_npu;
        return d;
    }

    void
    addScaled(const Counters &d, std::uint64_t k)
    {
        t += d.t * k;
        busy_sum += d.busy_sum * double(k);
        ch_high += d.ch_high * k;
        ch_low += d.ch_low * k;
        dram_bytes += d.dram_bytes * k;
        array_reads += d.array_reads * k;
        pages_computed += d.pages_computed * k;
        pages_read += d.pages_read * k;
        npu_flops += d.npu_flops * double(k);
        flash_flops += d.flash_flops * double(k);
        wb_flash += d.wb_flash * k;
        wb_npu += d.wb_npu * k;
    }
};

/** Per-op scheduling state. */
struct OpState
{
    std::uint32_t remaining_deps = 0;
    std::uint64_t rc_remaining = 0;
    std::uint64_t read_remaining = 0;
    std::uint64_t read_total = 0;
    Tick ready_tick = 0; ///< when dependencies were satisfied
    bool ready = false;
    bool rc_issued = false;
    bool reads_issued = false;
    bool completed = false;
};

/** One decode-token co-simulation. */
class Run : public flash::ChannelEngine::Listener
{
  public:
    /**
     * @param plans memoized tile plans; must outlive the run and match
     * cfg's flash geometry, quantization and tiling options.
     * @param prefill_tokens zero simulates one decode step; nonzero
     * simulates the prefill phase over that many prompt tokens.
     */
    Run(const CamConfig &cfg, const llm::ModelConfig &model,
        const PlanCache &plans, std::uint32_t prefill_tokens = 0)
        : cfg_(cfg), model_(model), prefill_tokens_(prefill_tokens),
          quant_(llm::QuantSpec::of(cfg.quant)), plans_(plans),
          dram_(eq_, cfg.npu),
          fs_(eq_, cfg.flash, *this, cfg.tile_window, cfg.slicing)
    {
    }

    bool prefillMode() const { return prefill_tokens_ > 0; }

    TokenStats execute();

    // flash listener -----------------------------------------------------
    void
    onRcResult(std::uint64_t op_id) override
    {
        auto &s = st_[op_id];
        CAMLLM_ASSERT(s.rc_remaining > 0);
        --s.rc_remaining;
        maybeCompleteGemv(std::uint32_t(op_id));
    }

    void
    onReadDelivered(std::uint64_t op_id, std::uint32_t bytes) override
    {
        auto &s = st_[op_id];
        CAMLLM_ASSERT(s.read_remaining >= bytes);
        s.read_remaining -= bytes;
        maybeCompleteGemv(std::uint32_t(op_id));
    }

  private:
    const TilePlan &
    planFor(std::uint64_t rows, std::uint64_t cols) const
    {
        return plans_.planFor(rows, cols);
    }

    std::uint32_t elemsPerPage() const { return plans_.elemsPerPage(); }

    /** Rows of a GeMV the NPU read stream covers in this phase. */
    std::uint64_t
    npuRows(const TilePlan &plan) const
    {
        if (prefillMode())
            return plan.rows; // batched GeMM runs on the NPU
        return cfg_.hybrid_tiling ? plan.npu_rows : 0;
    }

    void opReady(std::uint32_t id);
    void issueGemv(std::uint32_t id);
    void issueReads(std::uint32_t id, const TilePlan &plan);
    void maybeCompleteGemv(std::uint32_t id);
    void complete(std::uint32_t id);
    void tryPrefetch();
    Counters capture() const;

    const CamConfig &cfg_;
    const llm::ModelConfig &model_;
    std::uint32_t prefill_tokens_;
    llm::QuantSpec quant_;
    const PlanCache &plans_;

    EventQueue eq_;
    npu::DramModel dram_;
    flash::FlashSystem fs_;

    llm::DecodeGraph graph_;
    std::vector<OpState> st_;
    std::vector<std::vector<std::uint32_t>> dependents_;
    std::vector<std::int64_t> layer_last_;
    std::vector<Counters> layer_snaps_;

    std::vector<std::uint32_t> gemv_order_;
    std::size_t prefetch_next_ = 0;
    std::uint64_t outstanding_read_bytes_ = 0;

    std::uint32_t rr_read_channel_ = 0;
    std::uint32_t ops_done_ = 0;
    Tick end_tick_ = 0;

    double npu_flops_ = 0.0;
    double flash_flops_ = 0.0;
    std::uint64_t wb_flash_ = 0;
    std::uint64_t wb_npu_ = 0;
};

Counters
Run::capture() const
{
    Counters c;
    c.t = eq_.now();
    for (std::uint32_t i = 0; i < fs_.channelCount(); ++i)
        c.busy_sum += double(fs_.channel(i).bus().busy().busyTicks());
    c.ch_high = fs_.channelBytesHigh();
    c.ch_low = fs_.channelBytesLow();
    c.dram_bytes = dram_.bytesMoved();
    c.array_reads = fs_.arrayReads();
    c.pages_computed = fs_.pagesComputed();
    c.pages_read = fs_.pagesRead();
    c.npu_flops = npu_flops_;
    c.flash_flops = flash_flops_;
    c.wb_flash = wb_flash_;
    c.wb_npu = wb_npu_;
    return c;
}

void
Run::opReady(std::uint32_t id)
{
    auto &s = st_[id];
    CAMLLM_ASSERT(!s.ready);
    s.ready = true;
    s.ready_tick = eq_.now();
    const llm::Op &op = graph_.ops[id];

    switch (op.kind) {
      case llm::OpKind::Sfu:
        npu_flops_ += op.flops;
        eq_.scheduleIn(cfg_.npu.sfuTime(op.sfu_elems),
                       [this, id] { complete(id); });
        break;
      case llm::OpKind::KvAppend:
        dram_.request(op.kv_bytes, [this, id] { complete(id); });
        break;
      case llm::OpKind::KvLoadCompute: {
        npu_flops_ += op.flops;
        const Tick comp = cfg_.npu.computeTime(op.flops);
        const Tick serv = dram_.serviceTime(op.kv_bytes);
        const Tick extra = comp > serv ? comp - serv : 0;
        dram_.request(op.kv_bytes, [this, id, extra] {
            if (extra > 0)
                eq_.scheduleIn(extra, [this, id] { complete(id); });
            else
                complete(id);
        });
        break;
      }
      case llm::OpKind::GemvWeight:
        issueGemv(id);
        break;
    }
    tryPrefetch();
}

void
Run::issueGemv(std::uint32_t id)
{
    const llm::Op &op = graph_.ops[id];
    const TilePlan &plan = planFor(op.rows, op.cols);
    auto &s = st_[id];

    const std::uint32_t ch = cfg_.flash.geometry.channels;
    const std::uint32_t cc = cfg_.flash.geometry.coresPerChannel();
    const std::uint32_t E = elemsPerPage();
    const double act_bytes = quant_.act_bits / 8.0;

    // In no-tiling mode the ragged final unit still goes to flash;
    // in prefill nothing does (cores cannot batch positions).
    std::uint64_t units = plan.flash_core_rows;
    if (!cfg_.hybrid_tiling)
        units = (op.rows + plan.hpc - 1) / plan.hpc;
    if (prefillMode())
        units = 0;

    std::uint64_t rc_expected = 0;
    if (units > 0) {
        const std::uint64_t n_full_tiles = units / cc;
        const std::uint32_t rem_cores = std::uint32_t(units % cc);

        for (std::uint32_t ct = 0; ct < plan.n_col_tiles; ++ct) {
            const std::uint64_t w_off = std::uint64_t(ct) * plan.tile.w;
            const std::uint64_t w_t =
                std::min<std::uint64_t>(plan.tile.w, op.cols - w_off);
            const auto wc_t = std::uint32_t((w_t + ch - 1) / ch);
            const auto in_bytes = std::uint32_t(
                std::max(1.0, wc_t * act_bytes + 0.5));
            const auto out_b = std::uint32_t(
                std::max<std::uint32_t>(1, plan.hpc *
                                               cfg_.out_elem_bytes));
            const Tick comp = cfg_.flash.timing.computeTime(
                std::uint64_t(plan.hpc) * wc_t, E);

            auto submit = [&](std::uint32_t cores) {
                flash::RcTileWork tile;
                tile.op_id = id;
                tile.cores_used = cores;
                tile.input_bytes = in_bytes;
                tile.out_bytes_per_core = out_b;
                tile.compute_time = comp;
                for (std::uint32_t c = 0; c < ch; ++c)
                    fs_.submitTile(c, tile);
                rc_expected += std::uint64_t(cores) * ch;
            };
            for (std::uint64_t ft = 0; ft < n_full_tiles; ++ft)
                submit(cc);
            if (rem_cores > 0)
                submit(rem_cores);
        }
    }
    s.rc_remaining = rc_expected;
    s.rc_issued = true;

    const std::uint64_t flash_rows = op.rows - npuRows(plan);
    flash_flops_ += 2.0 * double(flash_rows) * double(op.cols);
    wb_flash_ += quant_.weightBytes(flash_rows * op.cols);

    if (!s.reads_issued)
        issueReads(id, plan);
    maybeCompleteGemv(id);
}

void
Run::issueReads(std::uint32_t id, const TilePlan &plan)
{
    auto &s = st_[id];
    CAMLLM_ASSERT(!s.reads_issued);
    s.reads_issued = true;

    const std::uint64_t npu_rows = npuRows(plan);
    const std::uint64_t bytes = quant_.weightBytes(npu_rows * plan.cols);
    s.read_total = bytes;
    s.read_remaining = bytes;
    if (bytes == 0)
        return;

    npu_flops_ += 2.0 * double(npu_rows) * double(plan.cols) *
                  graph_.ops[id].npu_compute_scale;
    wb_npu_ += bytes;
    outstanding_read_bytes_ += bytes;

    const std::uint32_t page = cfg_.flash.geometry.page_bytes;
    std::uint64_t left = bytes;
    while (left > 0) {
        const auto chunk = std::uint32_t(
            std::min<std::uint64_t>(page, left));
        left -= chunk;
        flash::ReadPageJob job;
        job.op_id = id;
        job.bytes = chunk;
        job.sliced = cfg_.slicing;
        fs_.submitRead(rr_read_channel_, job);
        rr_read_channel_ =
            (rr_read_channel_ + 1) % cfg_.flash.geometry.channels;
    }
}

void
Run::maybeCompleteGemv(std::uint32_t id)
{
    auto &s = st_[id];
    if (s.completed || !s.ready || !s.rc_issued)
        return;
    if (s.rc_remaining != 0 || s.read_remaining != 0)
        return;
    s.completed = true;

    // Pipeline drain: the NPU multiplies the final streamed page and
    // reduces the per-channel partial sums of the flash share. When
    // the op's compute is scaled (prefill GeMM), completion further
    // waits until the streaming-overlapped compute finishes:
    // max(stream done, ready + total NPU compute).
    const llm::Op &op = graph_.ops[id];
    const TilePlan &plan = planFor(op.rows, op.cols);
    const std::uint64_t flash_rows = op.rows - npuRows(plan);
    const double drain_flops =
        2.0 * double(elemsPerPage()) +
        double(cfg_.flash.geometry.channels) * double(flash_rows);
    Tick done = eq_.now() + cfg_.npu.computeTime(drain_flops);

    const double npu_flops = 2.0 * double(npuRows(plan)) *
                             double(op.cols) * op.npu_compute_scale;
    done = std::max(done, s.ready_tick + cfg_.npu.computeTime(npu_flops));
    eq_.schedule(done, [this, id] { complete(id); });
}

void
Run::complete(std::uint32_t id)
{
    auto &s = st_[id];
    const llm::Op &op = graph_.ops[id];
    if (op.kind != llm::OpKind::GemvWeight) {
        CAMLLM_ASSERT(!s.completed);
        s.completed = true;
    } else {
        outstanding_read_bytes_ -= s.read_total;
    }

    ++ops_done_;
    if (ops_done_ == graph_.ops.size())
        end_tick_ = eq_.now();

    // Layer-boundary snapshot for steady-state extrapolation.
    if (op.layer != ~std::uint32_t(0) &&
        layer_last_[op.layer] == std::int64_t(id))
        layer_snaps_[op.layer] = capture();

    for (std::uint32_t dep : dependents_[id]) {
        CAMLLM_ASSERT(st_[dep].remaining_deps > 0);
        if (--st_[dep].remaining_deps == 0)
            opReady(dep);
    }
    tryPrefetch();
}

void
Run::tryPrefetch()
{
    if (!cfg_.prefetch)
        return;
    while (prefetch_next_ < gemv_order_.size()) {
        const std::uint32_t id = gemv_order_[prefetch_next_];
        if (st_[id].reads_issued) {
            ++prefetch_next_;
            continue;
        }
        const llm::Op &op = graph_.ops[id];
        const TilePlan &plan = planFor(op.rows, op.cols);
        const std::uint64_t bytes =
            quant_.weightBytes(npuRows(plan) * plan.cols);
        if (bytes > 0 && outstanding_read_bytes_ + bytes >
                             cfg_.npu.weight_buffer_bytes)
            break;
        issueReads(id, plan);
        ++prefetch_next_;
    }
}

TokenStats
Run::execute()
{
    const std::uint32_t layers =
        std::min(model_.n_layers, cfg_.sample_layers);
    if (model_.n_layers > layers)
        CAMLLM_ASSERT(layers >= 3,
                      "need >= 3 sampled layers to extrapolate");
    graph_ = prefillMode()
                 ? llm::buildPrefillGraph(model_, prefill_tokens_,
                                          quant_, layers)
                 : llm::buildDecodeGraph(model_, cfg_.seq_len, quant_,
                                         layers);

    const std::size_t n = graph_.ops.size();
    st_.assign(n, OpState{});
    dependents_.assign(n, {});
    layer_last_.assign(layers, -1);
    layer_snaps_.assign(layers, Counters{});

    for (std::uint32_t i = 0; i < n; ++i) {
        const llm::Op &op = graph_.ops[i];
        st_[i].remaining_deps = std::uint32_t(op.deps.size());
        for (std::uint32_t d : op.deps)
            dependents_[d].push_back(i);
        if (op.kind == llm::OpKind::GemvWeight)
            gemv_order_.push_back(i);
        if (op.layer != ~std::uint32_t(0))
            layer_last_[op.layer] =
                std::max(layer_last_[op.layer], std::int64_t(i));
    }

    for (std::uint32_t i = 0; i < n; ++i)
        if (st_[i].remaining_deps == 0)
            opReady(i);

    eq_.run();
    CAMLLM_ASSERT(ops_done_ == n, "only %u of %zu ops completed",
                  ops_done_, n);

    Counters total = capture();
    total.t = end_tick_;

    TokenStats out;
    out.simulated_layers = layers;
    if (layers < model_.n_layers) {
        // Steady-state delta between two interior layers (the last
        // sampled layer also contains the final norm, so use k-3/k-2).
        const Counters delta =
            layer_snaps_[layers - 2] - layer_snaps_[layers - 3];
        total.addScaled(delta, model_.n_layers - layers);
        out.extrapolated = true;
    }

    out.token_time = total.t;
    const double tokens = prefillMode() ? double(prefill_tokens_) : 1.0;
    out.tokens_per_s =
        total.t > 0 ? tokens * double(kSec) / double(total.t) : 0.0;
    out.avg_channel_util =
        total.t > 0 ? total.busy_sum /
                          (double(total.t) *
                           double(cfg_.flash.geometry.channels))
                    : 0.0;
    out.channel_bytes_high = total.ch_high;
    out.channel_bytes_low = total.ch_low;
    out.dram_bytes = total.dram_bytes;
    out.array_read_bytes =
        total.array_reads *
        std::uint64_t(cfg_.flash.geometry.page_bytes);
    out.pages_computed = total.pages_computed;
    out.pages_read = total.pages_read;
    out.npu_flops = total.npu_flops;
    out.flash_flops = total.flash_flops;
    out.weight_bytes_flash = total.wb_flash;
    out.weight_bytes_npu = total.wb_npu;
    return out;
}

} // namespace

CambriconEngine::CambriconEngine(const CamConfig &config,
                                 const llm::ModelConfig &model)
    : config_(config), model_(model)
{
    if (!config_.flash.valid() || !config_.npu.valid())
        fatal("invalid Cambricon-LLM configuration '%s'",
              config_.name.c_str());
    if (!model_.valid())
        fatal("invalid model configuration '%s'", model_.name.c_str());

    // Capacity check: all weights (plus per-page spare) must place in
    // the flash device. The KV cache lives in DRAM, not here.
    const auto quant = llm::QuantSpec::of(config_.quant);
    const std::uint64_t weight_bytes =
        quant.weightBytes(model_.totalParams());
    const std::uint64_t pages_needed =
        (weight_bytes + config_.flash.geometry.page_bytes - 1) /
        config_.flash.geometry.page_bytes;
    if (pages_needed > config_.flash.geometry.totalPages()) {
        fatal("%s (%llu pages of weights) does not fit the flash "
              "device (%llu pages); add chips or channels",
              model_.name.c_str(), (unsigned long long)pages_needed,
              (unsigned long long)config_.flash.geometry.totalPages());
    }

    plan_cache_ = std::make_unique<PlanCache>(config_.flash, quant,
                                              config_.tilingOptions());
    decode_weight_bytes_ = quant.weightBytes(model_.decodeWeightParams());
}

TokenStats
CambriconEngine::decodeToken() const
{
    Run run(config_, model_, *plan_cache_);
    return run.execute();
}

TokenStats
CambriconEngine::prefill(std::uint32_t prompt_len) const
{
    CAMLLM_ASSERT(prompt_len > 0);
    Run run(config_, model_, *plan_cache_, prompt_len);
    return run.execute();
}

GenerateStats
CambriconEngine::generate(std::uint32_t prompt_len,
                          std::uint32_t reply_len) const
{
    CAMLLM_ASSERT(reply_len > 0);
    GenerateStats g;
    g.prefill = prefill(prompt_len);

    // Decode cost is affine in the context length (the DRAM KV term),
    // so two endpoint simulations integrate the whole reply.
    // Only seq_len differs, so the engine's memoized plans still apply.
    CamConfig first = config_;
    first.seq_len = prompt_len + 1;
    CamConfig last = config_;
    last.seq_len = prompt_len + reply_len;
    g.first_decode = Run(first, model_, *plan_cache_).execute();
    g.last_decode = Run(last, model_, *plan_cache_).execute();

    const Tick avg =
        (g.first_decode.token_time + g.last_decode.token_time) / 2;
    g.total_time = g.prefill.token_time + avg * reply_len;
    g.decode_tokens_per_s = double(kSec) / double(avg);
    return g;
}

TilePlan
CambriconEngine::planFor(std::uint64_t rows, std::uint64_t cols) const
{
    return plan_cache_->planFor(rows, cols);
}

} // namespace camllm::core
