/**
 * @file
 * Request arrival processes feeding the serving scheduler.
 *
 * A trace is an arrival-time-ordered list of ServeRequests. Traces
 * come from three places: a Poisson process (seeded, bit-reproducible
 * via common/rng.h), a replay file, or an explicit burst at t = 0.
 * Arrival ticks are on the simulation clock (sampled-layer time), so
 * a Poisson rate is "requests per simulated second of sampled-layer
 * service" — the knob that moves a scenario between underload and
 * saturation for SLO capacity planning.
 */

#ifndef CAMLLM_CORE_ARRIVALS_H
#define CAMLLM_CORE_ARRIVALS_H

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "common/units.h"

namespace camllm::core {

/** One request as the serving scheduler sees it. */
struct ServeRequest
{
    /** Prompt tokens to prefill; 0 means the KV cache is already warm
     *  (the PR 2 decode-only request shape). */
    std::uint32_t prompt = 0;

    /** KV entries cached before this request's prompt (decode-only
     *  requests put their whole context here). */
    std::uint32_t context = 0;

    /** Decode steps after the first emitted token. */
    std::uint32_t decode_tokens = 1;

    /** Sim-clock arrival tick. */
    Tick arrival = 0;

    /** User cancellation tick (0 = never): at this sim time the
     *  client gives up and the scheduler tears the request down,
     *  wherever it is — queued, prefilling or decoding. */
    Tick cancel_at = 0;

    /** Shared-prompt tag (0 = none): requests with the same nonzero
     *  id lead with the same @ref prefix_tokens prompt tokens, so a
     *  prefix-sharing scheduler can map the cached KV blocks of that
     *  prefix into this request's table instead of prefilling them
     *  again. Inert unless SchedOptions::kv_prefix_sharing is on. */
    std::uint64_t prefix_id = 0;

    /** Leading prompt tokens covered by @ref prefix_id. Sharing works
     *  at block granularity on context-free prompts: only whole KV
     *  blocks inside this span (and strictly inside the prompt, so
     *  the last chunk still emits the first token) are shared. */
    std::uint32_t prefix_tokens = 0;
};

/** A (prompt, decode_tokens) request shape for synthetic traces. */
using RequestShape = std::pair<std::uint32_t, std::uint32_t>;

/** Arrival-ordered request trace. */
class ArrivalTrace
{
  public:
    ArrivalTrace() = default;

    /**
     * Seeded Poisson process: exponential inter-arrival times at
     * @p rate_per_s requests per simulated second, each request's
     * shape drawn uniformly from @p shapes. Identical seeds replay
     * bit-identical traces on every platform (xoshiro256**, portable
     * distributions).
     */
    static ArrivalTrace poisson(double rate_per_s,
                                std::size_t n_requests,
                                std::uint64_t seed,
                                const std::vector<RequestShape> &shapes);

    /**
     * Replay a trace file: one request per non-comment line,
     * whitespace-separated `arrival_us prompt decode_tokens
     * [context]`. Lines starting with '#' are skipped. Arrivals must
     * be non-decreasing.
     */
    static ArrivalTrace fromFile(const std::string &path);

    /** Every request landing at t = 0 (a burst / fixed queue). */
    static ArrivalTrace burst(std::vector<ServeRequest> requests);

    /** Copy of this trace with every request tagged as leading with
     *  the same @p prefix_tokens-token shared prompt @p prefix_id —
     *  the "thousands of users share a system prompt" workload. */
    ArrivalTrace withSharedPrefix(std::uint64_t prefix_id,
                                  std::uint32_t prefix_tokens) const;

    const std::vector<ServeRequest> &requests() const { return reqs_; }
    std::size_t size() const { return reqs_.size(); }
    bool empty() const { return reqs_.empty(); }

  private:
    std::vector<ServeRequest> reqs_;
};

} // namespace camllm::core

#endif // CAMLLM_CORE_ARRIVALS_H
