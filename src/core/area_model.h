/**
 * @file
 * Compute-core area/power component model (Table IV).
 *
 * A parameterized component model at the TSMC 65 nm node, calibrated
 * against the paper's Design Compiler synthesis: SRAM buffers dominate
 * area, the PEs dominate dynamic power, and the error correction unit
 * is nearly free. Note the paper's printed total (39813.5 um^2) is
 * smaller than its own buffer line item (58755.1 um^2); the component
 * sum says the total should read 59813.5 um^2, and we report both.
 */

#ifndef CAMLLM_CORE_AREA_MODEL_H
#define CAMLLM_CORE_AREA_MODEL_H

#include <cstdint>

namespace camllm::core {

/** Per-component unit costs at 65 nm. */
struct AreaModelParams
{
    // Calibrated unit constants.
    double um2_per_mac = 281.0;        ///< INT8 MAC + pipeline regs
    double uw_per_mac = 171.8;         ///< dynamic power per MAC
    double um2_per_sram_byte = 28.69;  ///< single-port SRAM macro
    double uw_per_sram_byte = 0.777;
    double ecu_um2 = 496.4;            ///< comparators + vote logic
    double ecu_uw = 0.4;

    /** Correction strength (bits per codeword) the calibrated ecu
     *  constants correspond to; eccDecoderAreaUm2 scales from here. */
    std::uint32_t ecu_baseline_bits = 8;

    // Compute-core composition (paper design point).
    std::uint32_t n_macs = 2;
    std::uint32_t buffer_bytes = 2048; ///< input + output buffers

    // Baselines for overhead percentages (per-die share implied by
    // the paper's 1.2% area / 4.5% power overheads).
    double die_baseline_um2 = 4.98e6;
    double die_baseline_uw = 43000.0;
};

/** Synthesized-area summary for one compute core. */
struct AreaReport
{
    double ecu_um2 = 0.0, ecu_uw = 0.0;
    double pes_um2 = 0.0, pes_uw = 0.0;
    double buffers_um2 = 0.0, buffers_uw = 0.0;

    double totalUm2() const { return ecu_um2 + pes_um2 + buffers_um2; }
    double totalUw() const { return ecu_uw + pes_uw + buffers_uw; }

    double area_overhead = 0.0;  ///< vs. die baseline
    double power_overhead = 0.0;
};

/** Evaluate the component model. */
AreaReport computeCoreArea(const AreaModelParams &params = {});

/**
 * On-die ECC decoder area for a correction strength of
 * @p correctable_bits per codeword: linear BCH-style scaling of the
 * calibrated error-correction-unit constant from its baseline
 * strength. This is the area side of the ECC-strength co-design —
 * computeCoreArea() itself is untouched, so the Table IV numbers
 * stay at the paper's design point.
 */
double eccDecoderAreaUm2(std::uint32_t correctable_bits,
                         const AreaModelParams &params = {});

/** Matching decoder power scaling. */
double eccDecoderPowerUw(std::uint32_t correctable_bits,
                         const AreaModelParams &params = {});

} // namespace camllm::core

#endif // CAMLLM_CORE_AREA_MODEL_H
