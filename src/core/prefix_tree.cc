#include "prefix_tree.h"

#include "common/logging.h"

namespace camllm::core {

std::size_t
PrefixTree::match(std::uint64_t prefix_id, std::size_t max_blocks,
                  std::vector<std::uint32_t> &table)
{
    auto it = chains_.find(prefix_id);
    if (it == chains_.end() || max_blocks == 0)
        return 0;
    Chain &c = it->second;
    const std::size_t n = std::min(max_blocks, c.blocks.size());
    for (std::size_t k = 0; k < n; ++k) {
        pool_.retain(c.blocks[k]);
        table.push_back(c.blocks[k]);
    }
    if (n > 0) {
        c.last_touch = ++touch_seq_;
        hit_blocks_ += n;
    }
    return n;
}

bool
PrefixTree::insert(std::uint64_t prefix_id, std::size_t index,
                   std::uint32_t block)
{
    Chain &c = chains_[prefix_id];
    if (index != c.blocks.size())
        return false; // cached already, or a predecessor is missing
    pool_.retain(block);
    c.blocks.push_back(block);
    c.last_touch = ++touch_seq_;
    ++cached_;
    ++inserted_;
    return true;
}

std::uint64_t
PrefixTree::dropCold(std::uint64_t want)
{
    std::uint64_t freed = 0;
    while (freed < want) {
        // Coldest chain whose tail block no live table maps; ties on
        // the lower prefix id (map order), so the sweep is
        // deterministic.
        auto victim = chains_.end();
        for (auto it = chains_.begin(); it != chains_.end(); ++it) {
            Chain &c = it->second;
            if (c.blocks.empty() ||
                pool_.refCount(c.blocks.back()) != 1)
                continue;
            if (victim == chains_.end() ||
                c.last_touch < victim->second.last_touch)
                victim = it;
        }
        if (victim == chains_.end())
            break; // everything left is pinned by a live table
        Chain &c = victim->second;
        // Shed the chain's cold tail as far as it stays cache-only.
        while (freed < want && !c.blocks.empty() &&
               pool_.refCount(c.blocks.back()) == 1) {
            pool_.releaseBlock(c.blocks.back());
            c.blocks.pop_back();
            CAMLLM_ASSERT(cached_ > 0);
            --cached_;
            ++dropped_;
            ++freed;
        }
        if (c.blocks.empty())
            chains_.erase(victim);
    }
    return freed;
}

void
PrefixTree::releaseAll()
{
    for (auto &[id, c] : chains_) {
        (void)id;
        for (std::uint32_t b : c.blocks) {
            pool_.releaseBlock(b);
            CAMLLM_ASSERT(cached_ > 0);
            --cached_;
        }
        c.blocks.clear();
    }
    chains_.clear();
}

} // namespace camllm::core
