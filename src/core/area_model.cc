#include "area_model.h"

namespace camllm::core {

AreaReport
computeCoreArea(const AreaModelParams &p)
{
    AreaReport r;
    r.ecu_um2 = p.ecu_um2;
    r.ecu_uw = p.ecu_uw;
    r.pes_um2 = p.um2_per_mac * p.n_macs;
    r.pes_uw = p.uw_per_mac * p.n_macs;
    r.buffers_um2 = p.um2_per_sram_byte * p.buffer_bytes;
    r.buffers_uw = p.uw_per_sram_byte * p.buffer_bytes;
    r.area_overhead = r.totalUm2() / p.die_baseline_um2;
    r.power_overhead = r.totalUw() / p.die_baseline_uw;
    return r;
}

} // namespace camllm::core
