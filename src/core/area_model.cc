#include "area_model.h"

namespace camllm::core {

AreaReport
computeCoreArea(const AreaModelParams &p)
{
    AreaReport r;
    r.ecu_um2 = p.ecu_um2;
    r.ecu_uw = p.ecu_uw;
    r.pes_um2 = p.um2_per_mac * p.n_macs;
    r.pes_uw = p.uw_per_mac * p.n_macs;
    r.buffers_um2 = p.um2_per_sram_byte * p.buffer_bytes;
    r.buffers_uw = p.uw_per_sram_byte * p.buffer_bytes;
    r.area_overhead = r.totalUm2() / p.die_baseline_um2;
    r.power_overhead = r.totalUw() / p.die_baseline_uw;
    return r;
}

double
eccDecoderAreaUm2(std::uint32_t correctable_bits,
                  const AreaModelParams &p)
{
    return p.ecu_um2 * double(correctable_bits) /
           double(p.ecu_baseline_bits);
}

double
eccDecoderPowerUw(std::uint32_t correctable_bits,
                  const AreaModelParams &p)
{
    return p.ecu_uw * double(correctable_bits) /
           double(p.ecu_baseline_bits);
}

} // namespace camllm::core
