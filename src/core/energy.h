/**
 * @file
 * Data-movement energy model (Fig 16b).
 *
 * Per-hop energy constants in pJ/byte, chosen from published ranges
 * and calibrated so the absolute J/token of Table II's Cam-LLM-S lands
 * near the paper's Fig 16b values:
 *  - NAND array sensing + on-chip transport is the dominant term for
 *    any flash-resident model (~100-150 pJ/B for 3D TLC reads);
 *  - the chiplet D2D channel is cheap (~tens of pJ/B), which is the
 *    architectural point of avoiding UFS/PCIe hops;
 *  - LPDDR access costs ~100-200 pJ/B including the PHY.
 */

#ifndef CAMLLM_CORE_ENERGY_H
#define CAMLLM_CORE_ENERGY_H

#include "core/engine.h"

namespace camllm::core {

/** Per-hop energy constants (pJ per byte / per op). */
struct EnergyParams
{
    double pj_per_byte_array = 120.0;   ///< NAND array read
    double pj_per_byte_channel = 30.0;  ///< D2D chiplet channel
    double pj_per_byte_dram = 150.0;    ///< LPDDR access
    double pj_per_flop_npu = 0.4;       ///< systolic array INT8 op
    double pj_per_flop_flash = 0.15;    ///< on-die compute core op
};

/** Energy per decode step, by component. */
struct EnergyBreakdown
{
    double array_j = 0.0;
    double channel_j = 0.0;
    double dram_j = 0.0;
    double npu_j = 0.0;
    double flash_core_j = 0.0;

    double
    totalJ() const
    {
        return array_j + channel_j + dram_j + npu_j + flash_core_j;
    }
};

/** Fold a token's movement counters into joules. */
EnergyBreakdown computeEnergy(const TokenStats &stats,
                              const EnergyParams &params = {});

} // namespace camllm::core

#endif // CAMLLM_CORE_ENERGY_H
