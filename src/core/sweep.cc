#include "sweep.h"

#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "common/logging.h"

namespace camllm::core {

ParallelSweep::ParallelSweep(unsigned threads) : threads_(threads)
{
    if (threads_ == 0)
        threads_ = hardwareThreads();
}

unsigned
ParallelSweep::hardwareThreads()
{
    if (const char *env = std::getenv("CAMLLM_SWEEP_THREADS")) {
        const long n = std::strtol(env, nullptr, 10);
        if (n >= 1)
            return unsigned(n);
        warn("ignoring CAMLLM_SWEEP_THREADS='%s' (want a count >= 1)",
             env);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

bool
SweepCache::lookup(std::uint64_t key, TokenStats &out) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = map_.find(key);
    if (it == map_.end()) {
        misses_.fetch_add(1, std::memory_order_relaxed);
        return false;
    }
    hits_.fetch_add(1, std::memory_order_relaxed);
    out = it->second;
    return true;
}

void
SweepCache::store(std::uint64_t key, const TokenStats &stats)
{
    std::lock_guard<std::mutex> lock(mu_);
    map_.emplace(key, stats);
}

std::size_t
SweepCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return map_.size();
}

namespace {

/** Cache-file schema header; versioned so an older file is rejected
 *  (its keys are also version-salted, belt and braces). */
constexpr char kCacheHeader[] = "camllm-sweep-cache v2";

} // namespace

bool
SweepCache::load(const std::string &path)
{
    std::FILE *f = std::fopen(path.c_str(), "r");
    if (!f)
        return false;
    char header[64] = {};
    if (!std::fgets(header, sizeof header, f) ||
        std::strncmp(header, kCacheHeader, sizeof kCacheHeader - 1) !=
            0) {
        warn("ignoring sweep cache '%s': wrong or missing header",
             path.c_str());
        std::fclose(f);
        return false;
    }
    std::lock_guard<std::mutex> lock(mu_);
    std::uint64_t key;
    TokenStats s;
    unsigned extrapolated;
    while (std::fscanf(
               f,
               "%" SCNx64 " %" SCNu64 " %lg %lg %" SCNu64 " %" SCNu64
               " %" SCNu64 " %" SCNu64 " %" SCNu64 " %" SCNu64
               " %lg %lg %" SCNu64 " %" SCNu64 " %u %" SCNu32 "\n",
               &key, &s.token_time, &s.tokens_per_s,
               &s.avg_channel_util, &s.channel_bytes_high,
               &s.channel_bytes_low, &s.dram_bytes, &s.array_read_bytes,
               &s.pages_computed, &s.pages_read, &s.npu_flops,
               &s.flash_flops, &s.weight_bytes_flash,
               &s.weight_bytes_npu, &extrapolated,
               &s.simulated_layers) == 16) {
        s.extrapolated = extrapolated != 0;
        map_.emplace(key, s);
    }
    std::fclose(f);
    return true;
}

bool
SweepCache::save(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    std::fprintf(f, "%s\n", kCacheHeader);
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto &[key, s] : map_) {
        std::fprintf(
            f,
            "%" PRIx64 " %" PRIu64 " %.17g %.17g %" PRIu64 " %" PRIu64
            " %" PRIu64 " %" PRIu64 " %" PRIu64 " %" PRIu64
            " %.17g %.17g %" PRIu64 " %" PRIu64 " %u %" PRIu32 "\n",
            key, s.token_time, s.tokens_per_s, s.avg_channel_util,
            s.channel_bytes_high, s.channel_bytes_low, s.dram_bytes,
            s.array_read_bytes, s.pages_computed, s.pages_read,
            s.npu_flops, s.flash_flops, s.weight_bytes_flash,
            s.weight_bytes_npu, unsigned(s.extrapolated),
            s.simulated_layers);
    }
    const bool ok = std::fflush(f) == 0 && std::ferror(f) == 0;
    std::fclose(f);
    return ok;
}

SweepCache &
SweepCache::global()
{
    static SweepCache *cache = [] {
        auto *c = new SweepCache;
        if (const char *env = std::getenv("CAMLLM_SWEEP_CACHE"))
            c->load(env); // absent file: cold start, saved later
        return c;
    }();
    return *cache;
}

void
SweepCache::saveGlobal()
{
    if (const char *env = std::getenv("CAMLLM_SWEEP_CACHE"))
        if (!global().save(env))
            warn("failed to persist sweep cache to '%s'", env);
}

} // namespace camllm::core
