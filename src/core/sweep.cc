#include "sweep.h"

#include <cstdlib>

#include "common/logging.h"

namespace camllm::core {

ParallelSweep::ParallelSweep(unsigned threads) : threads_(threads)
{
    if (threads_ == 0)
        threads_ = hardwareThreads();
}

unsigned
ParallelSweep::hardwareThreads()
{
    if (const char *env = std::getenv("CAMLLM_SWEEP_THREADS")) {
        const long n = std::strtol(env, nullptr, 10);
        if (n >= 1)
            return unsigned(n);
        warn("ignoring CAMLLM_SWEEP_THREADS='%s' (want a count >= 1)",
             env);
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw > 0 ? hw : 1;
}

} // namespace camllm::core
