/**
 * @file
 * Bill-of-materials cost model (Table V) and storage-density data
 * (Table I).
 */

#ifndef CAMLLM_CORE_COST_MODEL_H
#define CAMLLM_CORE_COST_MODEL_H

#include <cstdint>
#include <string>
#include <vector>

namespace camllm::core {

/** Market prices implied by the paper's Table V. */
struct CostParams
{
    double dram_usd_per_gb = 194.68 / 80.0; ///< $2.4335 / GB
    double flash_usd_per_gb = 38.80 / 80.0; ///< $0.485 / GB

    /** Chiplet D2D + packaging adder as a fraction of raw chip cost
     *  (paper cites < 15%, bounded by $100). */
    double chiplet_fraction = 0.15;
    double chiplet_cap_usd = 100.0;
};

/** A memory bill of materials. */
struct Bom
{
    std::string name;
    double dram_gb = 0.0;
    double flash_gb = 0.0;
    double dram_usd = 0.0;
    double flash_usd = 0.0;
    double totalUsd() const { return dram_usd + flash_usd; }
};

/**
 * Table V: Cambricon-LLM stores @p weight_gb of weights in flash and
 * only the KV cache in DRAM; the traditional design holds everything
 * in DRAM.
 */
Bom camllmBom(double weight_gb, double kv_gb,
              const CostParams &params = {});
Bom traditionalBom(double weight_gb, double kv_gb,
                   const CostParams &params = {});

/** Chiplet packaging adder for a raw chip cost. */
double chipletAdderUsd(double raw_chip_usd, const CostParams &params = {});

/** One Table I row: published storage densities. */
struct DensityEntry
{
    std::string manufacturer;
    std::string type;
    std::string layers;
    double gb_per_mm2;
};

/** Table I data (ISSCC'23/'24 devices cited by the paper). */
std::vector<DensityEntry> storageDensityTable();

} // namespace camllm::core

#endif // CAMLLM_CORE_COST_MODEL_H
