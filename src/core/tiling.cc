#include "tiling.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace camllm::core {

double
TilePlan::transBytesPerTile(std::uint32_t channels) const
{
    // Input slice per channel plus one partial-result vector per
    // channel (Hreq elements each), in elements == bytes under INT8.
    return double(wc) * channels + double(channels) * tile.h;
}

TilingPlanner::TilingPlanner(const flash::FlashParams &flash,
                             const llm::QuantSpec &quant,
                             const TilingOptions &options)
    : flash_(flash), quant_(quant), options_(options)
{
    CAMLLM_ASSERT(flash_.valid());
    elems_per_page_ = quant_.elemsPerPage(flash_.geometry.page_bytes);
    CAMLLM_ASSERT(elems_per_page_ > 0);
}

TilePlan
TilingPlanner::plan(std::uint64_t rows, std::uint64_t cols) const
{
    CAMLLM_ASSERT(rows > 0 && cols > 0);
    const std::uint32_t ch = flash_.geometry.channels;
    const std::uint32_t cc = flash_.geometry.coresPerChannel();
    const std::uint64_t E = elems_per_page_;

    TilePlan p;
    p.rows = rows;
    p.cols = cols;

    if (options_.forced_tile) {
        const TileShape t = *options_.forced_tile;
        CAMLLM_ASSERT(t.h > 0 && t.w > 0);
        p.wc = std::max<std::uint32_t>(1, (t.w + ch - 1) / ch);
        p.hpc = std::max<std::uint32_t>(1, (t.h + cc - 1) / cc);
        CAMLLM_ASSERT(std::uint64_t(p.wc) * p.hpc <= E,
                      "forced tile %ux%u exceeds page capacity", t.h,
                      t.w);
    } else {
        // AM-GM optimum, then snapped so the column tiles split the
        // matrix evenly: a ragged final tile wastes array reads (its
        // atomic pages are partially filled yet still cost tR), which
        // hurts far more than the few extra vector bytes of a
        // slightly-narrower tile.
        auto wc_ideal = std::uint32_t(std::sqrt(double(cc) * double(E)));
        wc_ideal = std::max<std::uint32_t>(1, wc_ideal);
        const std::uint64_t ideal_tile_w = std::uint64_t(wc_ideal) * ch;
        const std::uint64_t n_col =
            std::max<std::uint64_t>(1,
                                    (cols + ideal_tile_w - 1) /
                                        ideal_tile_w);
        p.wc = std::uint32_t(
            std::max<std::uint64_t>(1, (cols + ch * n_col - 1) /
                                           (ch * n_col)));
        p.hpc = std::max<std::uint32_t>(1, std::uint32_t(E / p.wc));
    }
    p.tile.h = p.hpc * cc;
    p.tile.w = p.wc * ch;
    p.page_utilization = double(p.wc) * p.hpc / double(E);

    // --- steady-state rates -------------------------------------------
    const auto &t = flash_.timing;
    const double act_bytes = quant_.act_bits / 8.0;
    const double wbytes = quant_.weight_bits / 8.0;
    const double bus = t.busBytesPerNs();

    const auto in_bytes = std::uint64_t(std::ceil(p.wc * act_bytes));
    const std::uint64_t out_bytes =
        std::uint64_t(p.hpc) * options_.out_elem_bytes;

    // Per-die page cadence: register move + max(array read, compute).
    const Tick compute =
        t.computeTime(std::uint64_t(p.wc) * p.hpc,
                      std::uint32_t(E));
    const Tick cadence = t.t_reg_move + std::max(t.t_read, compute);

    // High-priority bus time consumed per tile on one channel: one
    // input broadcast + one result grant per core.
    Tick high_bus = Tick(t.grant_overhead + in_bytes / bus) +
                    cc * Tick(t.grant_overhead + out_bytes / bus);

    p.t_tile = std::max(cadence, high_bus);
    p.rate_rc = std::min(1.0, double(high_bus) / double(p.t_tile));

    const double page_weight_bytes = double(p.wc) * p.hpc * wbytes;
    p.r_rc_gbps = double(cc) * page_weight_bytes / double(p.t_tile);
    p.r_rd_gbps = options_.hybrid ? (1.0 - p.rate_rc) * bus : 0.0;
    p.tr = (p.r_rd_gbps > 0.0)
               ? Tick(double(flash_.geometry.page_bytes) / p.r_rd_gbps)
               : kTickMax;
    p.alpha = options_.hybrid
                  ? p.r_rc_gbps / (p.r_rc_gbps + p.r_rd_gbps)
                  : 1.0;

    // --- row split -----------------------------------------------------
    // Flash takes whole hpc-row units so every atomic tile is a full
    // page; the NPU takes the remainder (including the ragged edge).
    const std::uint64_t total_units = rows / p.hpc; // full units only
    std::uint64_t flash_units;
    if (!options_.hybrid) {
        flash_units = (rows + p.hpc - 1) / p.hpc; // everything, ragged too
    } else {
        flash_units = std::uint64_t(
            std::llround(p.alpha * double(rows) / double(p.hpc)));
        flash_units = std::min(flash_units, total_units);
    }
    p.flash_core_rows = std::uint32_t(flash_units);
    p.flash_rows = options_.hybrid
                       ? flash_units * p.hpc
                       : rows; // no-tiling mode: flash covers all rows
    p.npu_rows = rows - p.flash_rows;
    p.n_col_tiles =
        std::uint32_t((cols + std::uint64_t(p.tile.w) - 1) / p.tile.w);
    return p;
}

const TilePlan &
PlanCache::planFor(std::uint64_t rows, std::uint64_t cols) const
{
    CAMLLM_ASSERT(rows < (std::uint64_t(1) << 32) &&
                  cols < (std::uint64_t(1) << 32));
    const std::uint64_t key = (rows << 32) | cols;
    std::lock_guard<std::mutex> lock(mu_);
    auto it = plans_.find(key);
    if (it == plans_.end())
        it = plans_.emplace(key, planner_.plan(rows, cols)).first;
    return it->second;
}

std::size_t
PlanCache::size() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return plans_.size();
}

} // namespace camllm::core
