/**
 * @file
 * Unified serving scheduler: chunked prefill / decode co-scheduling
 * over one simulated device, with trace-driven arrivals and SLO
 * percentile reporting.
 *
 * Each admitted request is a state machine PREFILL(chunked) → DECODE
 * → DONE driven over a core::DecodeStream: prefill runs as one or
 * more chunks that write KV as they go (the last chunk's head
 * projection emits the request's first token), then every decode step
 * grows the request's KV stream by one. All active streams share the
 * flash channels, the DRAM KV bandwidth, the NPU weight-staging
 * buffer and — when contention is enabled — systolic-array and SFU
 * time through a core::NpuArbiter.
 *
 * Policies:
 *  - DecodeFirstFcfs: FCFS admission; an admitted prompt prefills in
 *    a single whole-prompt chunk. With free NPU arbitration and
 *    decode-only requests this reproduces the PR 2 BatchEngine event
 *    sequence bit-identically (enforced by tests).
 *  - ChunkedInterleave: Sarathi-style token budget; prompts prefill
 *    in chunks of at most `prefill_chunk` tokens, so in-flight decode
 *    tokens interleave with prefill on the shared device instead of
 *    stalling behind a monolithic prompt pass.
 *
 * Requests arrive on the sim clock (core::ArrivalTrace); the
 * scheduler admits FCFS into `max_batch` slots as arrivals land and
 * slots retire. Per-request TTFT and per-token TBT are reported in
 * depth-extrapolated milliseconds with p50/p95/p99 summaries.
 *
 * KV memory is bounded the way a real device bounds it: a
 * core::KvPool divides a configurable DRAM budget into fixed
 * token-blocks, each request maps its KV stream onto a block table
 * (llm::KvView — paged DRAM addressing at block granularity), and
 * admission/steps allocate blocks as KV grows. When the pool is dry a
 * request stalls and the scheduler preempts the lowest-priority
 * (latest-arrived) running request — older requests are deep in
 * decode, so eviction lands on young prefills first, the
 * decode-priority policy. An evicted request loses all its blocks
 * and re-enters PREFILL to recompute them (weights re-stream, tagged
 * flash::WorkClass::Recompute); it resumes only when its full final
 * KV demand fits, which guarantees it never stalls again and the
 * schedule stays livelock-free. With an unbounded budget every
 * capacity effect is off and the event sequence replays the
 * pre-paging scheduler bit-identically.
 *
 * Evicted KV is reusable, not disposable (all off by default):
 *  - kv_swap streams evicted blocks out to a reserved flash KV region
 *    (WorkClass::KvSwap, wear-counted programs) and back on resume,
 *    chosen per block by a recompute-vs-swap cost model — eviction
 *    and resume are block-granular, so one table can mix swapped-in
 *    and recomputed ranges.
 *  - kv_partial_evict sheds only the victim's coldest tail blocks,
 *    shrinking the rebuild bill relative to whole-table eviction.
 *  - kv_prefix_sharing maps a shared system prompt's cached KV blocks
 *    into new tables through a radix tree over KvPool refcounts, so
 *    concurrent users per GB rises with prompt overlap.
 */

#ifndef CAMLLM_CORE_SCHEDULER_H
#define CAMLLM_CORE_SCHEDULER_H

#include <cstdint>
#include <memory>
#include <vector>

#include "core/arrivals.h"
#include "core/engine.h"
#include "core/presets.h"
#include "core/tiling.h"
#include "flash/fault.h"
#include "llm/model_config.h"

namespace camllm::core {

/** Prefill/decode co-scheduling policy. */
enum class SchedPolicy
{
    DecodeFirstFcfs,  ///< whole-prompt prefill, FCFS slots (PR 2-like)
    ChunkedInterleave ///< chunked prefill under a token budget
};

/** What to do when the projected TTFT blows the SLO target. */
enum class DegradePolicy
{
    /** Reject the arriving request outright (it is the newest work in
     *  the system); everyone already admitted keeps full service. */
    ShedNewest,

    /** Admit everyone but shrink the effective prefill chunk in
     *  proportion to the overload, trading everyone's TTFT a little
     *  instead of rejecting anyone (ChunkedInterleave only). */
    ProportionalSlowdown
};

/** How one request left the system. */
enum class RequestOutcome : std::uint8_t
{
    Completed = 0,
    TimedOut,           ///< blew its deadline (queued or running)
    Cancelled,          ///< client gave up (ServeRequest::cancel_at)
    ShedSlo,            ///< rejected at admission by the SLO guard
    RejectedInfeasible  ///< KV demand exceeds the whole pool
};

/** One serve() run's knobs. */
struct SchedOptions
{
    std::uint32_t max_batch = 8;
    SchedPolicy policy = SchedPolicy::DecodeFirstFcfs;

    /** Prefill token budget per chunk (ChunkedInterleave only). */
    std::uint32_t prefill_chunk = 512;

    /** Serialize systolic-array/SFU time across streams instead of
     *  overlapping it for free (core::NpuArbiter). */
    bool npu_contention = false;

    /** Initial-wave stagger: slot i of the first admission wave
     *  starts i * stagger ticks in (PR 2 BatchEngine semantics). */
    Tick admission_stagger = 0;

    /**
     * DRAM bytes reserved for the KV cache (full model depth); 0 =
     * unbounded. An unbounded pool disables every capacity effect —
     * admission, preemption and eviction never trigger, and the event
     * sequence replays the pre-paging scheduler bit-identically
     * (enforced by tests). A bounded budget requires
     * kv_block_tokens >= 1 and must fit every request's final KV
     * demand on its own (fatal otherwise); under pressure the
     * scheduler queues admissions and preempts (see serve()).
     */
    std::uint64_t kv_budget_bytes = 0;

    /**
     * Paged-KV block granularity in tokens; 0 keeps contiguous
     * per-request KV streams. When paged, every KV transfer splits at
     * block boundaries into per-block DRAM requests (a block covering
     * the whole stream is bit-identical to contiguous), and KV
     * capacity is allocated block-wise from the pool.
     */
    std::uint32_t kv_block_tokens = 0;

    // --- KV reuse (all off by default: with the three knobs off every
    //     event sequence replays the evict-and-recompute scheduler
    //     bit-identically; enforced by tests and the CI byte diffs) ----
    /**
     * Swap evicted KV blocks out over the flash channels instead of
     * recomputing them, when the per-block cost model favors it:
     * recompute costs the block's tokens at the measured prefill rate
     * (NPU MACs + contention, via the admission EMA; an NPU-bound
     * MAC estimate before the first sample), swap costs the block's
     * full-depth bytes twice (out now, back on resume) across the
     * alive channel buses at their current occupancy. Swapped blocks
     * program a reserved flash KV region (wear-counted) and stream
     * back under WorkClass::KvSwap on resume; a full region falls
     * back to recompute. Requires a bounded pool.
     */
    bool kv_swap = false;

    /** Flash bytes reserved for swapped KV (kv_swap only; 0 = all
     *  the free flash left after the resident weights). */
    std::uint64_t kv_swap_flash_bytes = 0;

    /**
     * Partial (vLLM-style) eviction: release only the victim's
     * coldest tail blocks — last-touch position order, which for an
     * autoregressive KV stream is the tail — until the stalled
     * requester's shortfall is covered, instead of dropping the whole
     * table. The kept head blocks never rebuild; only the shed range
     * recomputes (or swaps back) on resume.
     */
    bool kv_partial_evict = false;

    /**
     * Prefix sharing: a radix tree over prompt prefixes maps the
     * cached KV blocks of a shared leading prompt
     * (ServeRequest::prefix_id/prefix_tokens) into new tables via
     * KvPool::retain, so requests sharing a system prompt skip
     * re-prefilling it. Whole blocks strictly inside the prompt
     * share; eviction respects refcounts (a shared block survives
     * until every table and the cache release it). Requires
     * kv_block_tokens >= 1.
     */
    bool kv_prefix_sharing = false;

    // --- resilience ----------------------------------------------------
    /**
     * Per-request completion deadline measured from arrival, in sim
     * ticks (0 = none). A request that has not finished by
     * arrival + deadline is torn down wherever it is: a queued
     * request times out without ever running; a running one aborts
     * its in-flight unit (completions drain through the router and
     * are dropped), releases its KV blocks and frees its slot. Either
     * way it lands in ServeStats::timeouts.
     */
    Tick request_deadline = 0;

    /**
     * Target p95 TTFT for SLO-aware admission, in extrapolated
     * milliseconds (0 = off). At each admission the scheduler
     * projects the arrival's TTFT from the measured per-token prefill
     * service rate (an EMA that inflates under retry/degradation
     * load) and the prefill backlog ahead of it; a projection past
     * the target triggers the degrade policy below.
     */
    double slo_ttft_ms = 0.0;

    /** Reaction to a projected SLO violation. */
    DegradePolicy degrade = DegradePolicy::ShedNewest;

    /**
     * Fault-injection spec forwarded to the flash device: seeded soft
     * read failures, the channel slowdown/offline schedule, and the
     * reliability co-design knobs (per-plane wear tracking +
     * leveling policy, ECC correction strength, retention-refresh
     * rate). The default spec injects nothing and leaves the event
     * sequence byte-identical to a fault-free run; model_weight_bytes
     * is filled from the model config if left 0.
     */
    flash::FaultSpec faults;
};

/** Measured results of one served request. */
struct ServeRequestStats
{
    std::uint32_t id = 0;
    std::uint32_t prompt = 0;
    std::uint32_t context = 0;
    std::uint32_t decode_tokens = 0;

    Tick arrival = 0;          ///< sim clock
    Tick admit_tick = 0;       ///< slot start (stagger included)
    Tick first_token_tick = 0; ///< first token emitted (sim clock)
    Tick finish_tick = 0;      ///< last decode step done (sim clock)

    /**
     * Stats of the step that emitted the first token: the last
     * prefill chunk when prompt > 0, else the first decode step
     * (bit-compatible with RequestStats::first_token for decode-only
     * requests).
     */
    TokenStats first_token;

    Tick prefill_time = 0;           ///< sum of extrapolated chunk times
    std::uint32_t prefill_chunks = 0;

    Tick total_token_time = 0; ///< sum of extrapolated decode times
    Tick mean_token_time = 0;  ///< total_token_time / decode_tokens
    double tokens_per_s = 0.0; ///< sequential decode rate under load

    double ttft_ms = 0.0;     ///< queue wait + service to first token
    double mean_tbt_ms = 0.0; ///< mean time between subsequent tokens

    /** How the request left the system. Non-Completed requests keep
     *  whatever partial measurements they accumulated. */
    RequestOutcome outcome = RequestOutcome::Completed;

    /** Tokens actually emitted (first token + decode steps); equals
     *  decode_tokens (+1 when prompt > 0) for completed requests. */
    std::uint32_t tokens_emitted = 0;

    /** Times this request was evicted under KV pressure. */
    std::uint32_t preemptions = 0;

    /** Extrapolated time spent rebuilding evicted KV (prefill
     *  re-runs that emit no tokens). */
    Tick recompute_time = 0;
    std::uint32_t recompute_chunks = 0;

    /** Sim ticks spent stalled or evicted waiting for KV blocks
     *  (swap-in streaming counts here — it is KV-restore wait). */
    Tick kv_blocked_time = 0;

    /** KV blocks streamed back from flash instead of recomputed. */
    std::uint32_t swapped_in_blocks = 0;

    /** Prompt tokens skipped at admission because the prefix tree
     *  mapped their cached KV blocks into this request's table. */
    std::uint32_t prefix_reused_tokens = 0;
};

/** Distribution summary of a latency metric (milliseconds). */
struct LatencySummary
{
    std::uint64_t n = 0;
    double p50_ms = 0.0;
    double p95_ms = 0.0;
    double p99_ms = 0.0;
    double mean_ms = 0.0;
    double max_ms = 0.0;
};

/** Aggregate results of one serve() run. */
struct ServeStats
{
    std::vector<ServeRequestStats> requests;
    std::uint32_t max_batch = 0;

    /** Emitted tokens: decode steps plus one first token per
     *  prefilled prompt. */
    std::uint64_t total_tokens = 0;

    Tick sim_makespan = 0;
    double extrapolation_factor = 1.0;

    /** Kernel events executed by the run's event queue — the
     *  denominator for events/sec reporting at fleet scale. */
    std::uint64_t sim_events = 0;

    /** Same definitions as BatchStats (PR 2): steady-state and
     *  whole-finite-run decode throughput. */
    double aggregate_tokens_per_s = 0.0;
    double finite_run_tokens_per_s = 0.0;

    double avg_channel_util = 0.0;
    double fairness_jain = 1.0;

    LatencySummary ttft; ///< over requests
    LatencySummary tbt;  ///< over all subsequent-token gaps

    /** Systolic-array occupancy (contended runs; 0 otherwise). */
    double npu_array_util = 0.0;

    /** Channel payload delivered per serving phase. */
    std::uint64_t prefill_channel_bytes = 0;
    std::uint64_t decode_channel_bytes = 0;

    /** Channel payload re-streamed to rebuild evicted KV. */
    std::uint64_t recompute_channel_bytes = 0;

    // --- KV pool (kv_budget_bytes / kv_block_tokens) -------------------
    std::uint32_t preemptions = 0;       ///< evictions across requests
    std::uint64_t recompute_tokens = 0;  ///< KV positions rebuilt

    std::uint64_t kv_blocks_total = 0;   ///< pool capacity (0 = unbounded)
    std::uint64_t kv_blocks_high_water = 0;
    std::uint64_t kv_block_allocs = 0;
    std::uint64_t kv_block_frees = 0;    ///< == allocs after drain audit

    // --- KV reuse (zero unless kv_swap / kv_partial_evict /
    //     kv_prefix_sharing are on) -------------------------------------
    std::uint32_t partial_evictions = 0; ///< evictions that kept head blocks
    std::uint64_t swap_out_blocks = 0;   ///< evicted blocks written to flash
    std::uint64_t swap_in_blocks = 0;    ///< blocks streamed back on resume
    std::uint64_t swap_refused_blocks = 0; ///< region full → recompute
    std::uint64_t kv_swap_channel_bytes = 0; ///< swap in+out bus traffic

    std::uint64_t prefix_hit_blocks = 0;     ///< blocks mapped from the tree
    std::uint64_t prefix_hit_tokens = 0;     ///< prompt tokens never prefilled
    std::uint64_t prefix_inserted_blocks = 0;///< blocks published to the tree
    std::uint64_t prefix_dropped_blocks = 0; ///< cold cache blocks shed

    // --- resilience (all zero on a fault-free, deadline-free run) ------
    /** Requests that entered a serving slot. */
    std::uint32_t admitted = 0;

    /** Requests that ran to completion. completed + shed_slo +
     *  timeouts + cancelled + rejected_infeasible == requests.size()
     *  (asserted after the drain audit). */
    std::uint32_t completed = 0;
    std::uint32_t shed_slo = 0;
    std::uint32_t timeouts = 0;
    std::uint32_t cancelled = 0;
    std::uint32_t rejected_infeasible = 0;

    /** Tokens emitted by *completed* requests per extrapolated
     *  second — throughput that honored the contract, the metric
     *  faults degrade. */
    double goodput_tokens_per_s = 0.0;

    // --- flash fault layer ---------------------------------------------
    std::uint64_t read_retries = 0;      ///< escalated re-senses
    std::uint64_t retry_channel_bytes = 0; ///< failed-page bus traffic
    std::uint64_t remap_bytes = 0;       ///< dead-channel rebuild I/O
    std::uint32_t channels_lost = 0;
    std::uint64_t reissued_jobs = 0;     ///< stranded jobs re-run

    // --- reliability co-design (zero unless the spec arms it) ----------
    std::uint64_t refresh_pages = 0;         ///< pages scrubbed
    std::uint64_t refresh_channel_bytes = 0; ///< scrub read+write I/O
    /** Scrub beats the closed-loop scrubber deferred because the
     *  previous op was still in flight (rate above capacity). */
    std::uint64_t refresh_deferred_beats = 0;
    double wear_spread_pe = 0.0; ///< max-min per-plane effective P/E
    double wear_mean_pe = 0.0;
    double wear_max_pe = 0.0;
};

/** Multi-request prefill + decode co-scheduling simulation. */
class Scheduler
{
  public:
    Scheduler(const CamConfig &config, const llm::ModelConfig &model);

    /**
     * Serve @p requests (arrival-ordered) under @p opt. Deterministic:
     * same inputs give bit-identical stats on any host/thread count.
     */
    ServeStats serve(const std::vector<ServeRequest> &requests,
                     const SchedOptions &opt) const;

    /** serve() over a trace's requests. */
    ServeStats
    serve(const ArrivalTrace &trace, const SchedOptions &opt) const
    {
        return serve(trace.requests(), opt);
    }

    const CamConfig &config() const { return config_; }
    const llm::ModelConfig &model() const { return model_; }

  private:
    CamConfig config_;
    llm::ModelConfig model_;
    std::unique_ptr<PlanCache> plan_cache_;
};

} // namespace camllm::core

#endif // CAMLLM_CORE_SCHEDULER_H
