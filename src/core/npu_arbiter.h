/**
 * @file
 * Shared-NPU occupancy arbiter for multi-stream serving.
 *
 * One NPU serves every active stream of a device: decode GeMV tails,
 * prefill GeMM chunks, KV attention compute and SFU passes all want
 * the same silicon. Historically the co-simulation let concurrent
 * streams overlap their NPU time for free (an infinitely parallel
 * array), which flatters high-batch and prefill-heavy numbers. The
 * arbiter closes that gap: in contended mode every acquire serializes
 * on a FIFO npu::UnitOccupancy (one server for the systolic array,
 * one for the SFU), so a stream queues behind whatever array time its
 * neighbors already reserved.
 *
 * In free mode (`contended == false`) streams bypass the arbiter
 * entirely and schedule exactly as before — acquire() refuses to run
 * at all — which is what keeps the decode-only FCFS scheduler
 * bit-identical to the PR 2 BatchEngine.
 */

#ifndef CAMLLM_CORE_NPU_ARBITER_H
#define CAMLLM_CORE_NPU_ARBITER_H

#include <functional>

#include "common/logging.h"
#include "common/units.h"
#include "npu/systolic.h"
#include "sim/event_queue.h"

namespace camllm::core {

/** FIFO arbiter over the NPU's systolic array and SFU. */
class NpuArbiter
{
  public:
    NpuArbiter(EventQueue &eq, bool contended)
        : eq_(eq), contended_(contended)
    {
    }

    NpuArbiter(const NpuArbiter &) = delete;
    NpuArbiter &operator=(const NpuArbiter &) = delete;

    /** True when streams must reserve unit time instead of
     *  overlapping for free. */
    bool contended() const { return contended_; }

    /**
     * Reserve @p busy ticks of systolic-array time; @p done fires
     * when the granted slot completes. Contended mode only: free-mode
     * streams must keep their historical direct scheduling (the
     * bit-exactness contract), so calling this without contention is
     * a bug, not a fallback.
     */
    void
    acquireArray(Tick busy, std::function<void()> done)
    {
        acquire(array_, busy, std::move(done));
    }

    /** Reserve @p busy ticks of SFU time. */
    void
    acquireSfu(Tick busy, std::function<void()> done)
    {
        acquire(sfu_, busy, std::move(done));
    }

    double
    arrayUtilization(Tick elapsed) const
    {
        return array_.utilization(elapsed);
    }

    double
    sfuUtilization(Tick elapsed) const
    {
        return sfu_.utilization(elapsed);
    }

    std::uint64_t arrayBusyTicks() const { return array_.busyTicks(); }

  private:
    void
    acquire(npu::UnitOccupancy &unit, Tick busy,
            std::function<void()> done)
    {
        CAMLLM_ASSERT(contended_,
                      "NpuArbiter::acquire on a free arbiter");
        eq_.schedule(unit.reserve(eq_.now(), busy), std::move(done));
    }

    EventQueue &eq_;
    bool contended_;
    npu::UnitOccupancy array_;
    npu::UnitOccupancy sfu_;
};

} // namespace camllm::core

#endif // CAMLLM_CORE_NPU_ARBITER_H
