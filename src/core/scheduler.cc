#include "scheduler.h"

#include <algorithm>
#include <functional>

#include "common/logging.h"
#include "common/stats.h"
#include "core/decode_stream.h"
#include "core/npu_arbiter.h"
#include "flash/flash_system.h"
#include "npu/dram.h"
#include "sim/event_queue.h"

namespace camllm::core {

namespace {

LatencySummary
summarize(const SampleSet &s)
{
    LatencySummary out;
    out.n = s.count();
    out.p50_ms = s.percentile(50.0);
    out.p95_ms = s.percentile(95.0);
    out.p99_ms = s.percentile(99.0);
    out.mean_ms = s.mean();
    out.max_ms = s.max();
    return out;
}

} // namespace

Scheduler::Scheduler(const CamConfig &config,
                     const llm::ModelConfig &model)
    : config_(config), model_(model)
{
    if (!config_.flash.valid() || !config_.npu.valid())
        fatal("invalid Cambricon-LLM configuration '%s'",
              config_.name.c_str());
    if (!model_.valid())
        fatal("invalid model configuration '%s'", model_.name.c_str());
    plan_cache_ = std::make_unique<PlanCache>(
        config_.flash, llm::QuantSpec::of(config_.quant),
        config_.tilingOptions());
}

ServeStats
Scheduler::serve(const std::vector<ServeRequest> &requests,
                 const SchedOptions &opt) const
{
    CAMLLM_ASSERT(!requests.empty());
    CAMLLM_ASSERT(opt.max_batch >= 1);
    if (opt.policy == SchedPolicy::ChunkedInterleave)
        CAMLLM_ASSERT(opt.prefill_chunk >= 1);
    for (std::size_t i = 0; i < requests.size(); ++i) {
        const ServeRequest &r = requests[i];
        CAMLLM_ASSERT(r.prompt + r.context >= 1 &&
                      r.decode_tokens >= 1);
        CAMLLM_ASSERT(i == 0 ||
                          r.arrival >= requests[i - 1].arrival,
                      "arrival trace must be time-ordered");
    }

    // Shared device, same construction order as the single-request
    // engine (and PR 2's BatchEngine) so a decode-only FCFS run
    // replays its exact event sequence.
    EventQueue eq;
    npu::DramModel dram(eq, config_.npu);
    flash::FlashSystem fs(eq, config_.flash, config_.tile_window,
                          config_.slicing);
    NpuArbiter npu(eq, opt.npu_contention);

    struct ReqRun
    {
        ServeRequest spec;
        CamConfig cfg; ///< seq_len rebound per token
        std::unique_ptr<DecodeStream> stream;
        ServeRequestStats stats;
        std::uint32_t prefill_done = 0; ///< prompt tokens prefilled
        std::uint32_t cur_chunk = 0;    ///< in-flight chunk length
        std::uint32_t tokens_done = 0;  ///< decode steps completed
        Tick token_start = 0;
        Tick sim_token_sum = 0; ///< simulated (un-extrapolated) time
        bool finished = false;
    };

    std::vector<ReqRun> runs(requests.size());
    std::size_t next_admit = 0;
    std::uint32_t active = 0;
    std::uint64_t finished = 0;
    bool wake_pending = false;
    SampleSet tbt_ms;

    DecodeStream::Env base;
    base.model = &model_;
    base.plans = plan_cache_.get();
    base.eq = &eq;
    base.dram = &dram;
    base.fs = &fs;
    base.npu = &npu;

    // The NPU weight-staging buffer is one physical resource; divide
    // the prefetch window across however many streams are active.
    const auto rebudget = [&] {
        const std::uint64_t budget =
            config_.npu.weight_buffer_bytes /
            std::max<std::uint32_t>(1, active);
        for (ReqRun &r : runs)
            if (r.stream && !r.finished)
                r.stream->setReadBudget(budget);
    };

    std::function<void(std::size_t)> startNext;
    std::function<void()> admit;

    const auto onChunkDone = [&](std::size_t i, const TokenStats &s) {
        ReqRun &r = runs[i];
        r.sim_token_sum += eq.now() - r.token_start;
        r.stats.prefill_time += s.token_time;
        ++r.stats.prefill_chunks;
        r.prefill_done += r.cur_chunk;
        r.cur_chunk = 0;
        if (r.prefill_done >= r.spec.prompt) {
            // The last chunk's head projection emitted the request's
            // first token.
            r.stats.first_token = s;
            r.stats.first_token_tick = eq.now();
        }
        startNext(i); // next chunk, or the first decode step
    };

    const auto onTokenDone = [&](std::size_t i, const TokenStats &s) {
        ReqRun &r = runs[i];
        r.sim_token_sum += eq.now() - r.token_start;
        r.stats.total_token_time += s.token_time;
        if (r.tokens_done == 0 && r.spec.prompt == 0) {
            // Decode-only request: its first decode step emits the
            // first token (BatchEngine-compatible first_token).
            r.stats.first_token = s;
            r.stats.first_token_tick = eq.now();
        } else {
            tbt_ms.add(double(s.token_time) / double(kMs));
        }
        ++r.tokens_done;
        if (r.tokens_done < r.spec.decode_tokens) {
            startNext(i); // continuous: no batch barrier
            return;
        }
        r.finished = true;
        r.stats.finish_tick = eq.now();
        ++finished;
        CAMLLM_ASSERT(active > 0);
        --active;
        admit(); // refill the slot at the same tick
        rebudget();
    };

    startNext = [&](std::size_t i) {
        ReqRun &r = runs[i];
        r.token_start = eq.now();
        if (r.prefill_done < r.spec.prompt) {
            // PREFILL: the next chunk under the policy's token
            // budget; FCFS takes the whole remaining prompt at once.
            const std::uint32_t remaining =
                r.spec.prompt - r.prefill_done;
            const std::uint32_t chunk =
                opt.policy == SchedPolicy::ChunkedInterleave
                    ? std::min(opt.prefill_chunk, remaining)
                    : remaining;
            const bool last = chunk == remaining;
            r.cur_chunk = chunk;
            const std::uint32_t kv_base =
                r.spec.context + r.prefill_done;
            r.cfg.seq_len = kv_base + chunk;
            r.stream->startPrefillChunk(
                chunk, kv_base, last,
                [&, i](const TokenStats &s) { onChunkDone(i, s); });
            return;
        }
        // DECODE: the request's KV stream grows with every token.
        const std::uint32_t seq =
            r.spec.context + r.spec.prompt + r.tokens_done;
        r.cfg.seq_len = seq;
        r.stream->startToken(seq, 0, [&, i](const TokenStats &s) {
            onTokenDone(i, s);
        });
    };

    bool initial_wave = true;
    admit = [&] {
        std::vector<std::size_t> started;
        while (active < opt.max_batch && next_admit < runs.size()) {
            const ServeRequest &spec = requests[next_admit];
            if (spec.arrival > eq.now()) {
                // Head of the queue is in the future: wake when it
                // lands (arrivals are sorted, one wake suffices).
                if (!wake_pending) {
                    wake_pending = true;
                    eq.schedule(spec.arrival, [&] {
                        wake_pending = false;
                        admit();
                    });
                }
                break;
            }
            const std::size_t i = next_admit++;
            ReqRun &r = runs[i];
            r.spec = spec;
            r.cfg = config_;
            r.stats.id = std::uint32_t(i);
            r.stats.prompt = r.spec.prompt;
            r.stats.context = r.spec.context;
            r.stats.decode_tokens = r.spec.decode_tokens;
            r.stats.arrival = r.spec.arrival;
            DecodeStream::Env env = base;
            env.cfg = &r.cfg;
            r.stream = std::make_unique<DecodeStream>(env);
            ++active;
            started.push_back(i);
        }
        if (started.empty())
            return;
        // Budget every stream for the new concurrency BEFORE any new
        // stream issues work, so no first token prefetches with more
        // than its share of the staging buffer.
        rebudget();
        for (std::size_t i : started) {
            ReqRun &r = runs[i];
            // Stagger only the initial wave (i * stagger ticks); the
            // slot is held from admission, the stream just waits for
            // its start slot. A delay of zero starts synchronously,
            // which keeps the decode-only event sequence identical to
            // PR 2's BatchEngine.
            Tick start = initial_wave ? Tick(i) * opt.admission_stagger
                                      : eq.now();
            if (start < r.spec.arrival)
                start = r.spec.arrival;
            r.stats.admit_tick = start;
            if (start == eq.now())
                startNext(i);
            else
                eq.schedule(start, [&, i] { startNext(i); });
        }
    };

    admit();
    initial_wave = false;
    eq.run();
    CAMLLM_ASSERT(finished == runs.size(),
                  "only %llu of %zu requests completed",
                  (unsigned long long)finished, runs.size());

    ServeStats out;
    out.max_batch = opt.max_batch;
    out.sim_makespan = eq.now();
    out.requests.reserve(runs.size());

    Tick sim_sum = 0, ext_sum = 0;
    double rate_sum = 0.0, rate_sq_sum = 0.0;
    for (ReqRun &r : runs) {
        ServeRequestStats &st = r.stats;
        st.mean_token_time = st.total_token_time / st.decode_tokens;
        st.tokens_per_s =
            st.total_token_time > 0
                ? double(st.decode_tokens) * double(kSec) /
                      double(st.total_token_time)
                : 0.0;
        out.total_tokens += st.decode_tokens;
        if (st.prompt > 0)
            ++out.total_tokens; // the prefill-emitted first token
        sim_sum += r.sim_token_sum;
        ext_sum += st.total_token_time + st.prefill_time;
        rate_sum += st.tokens_per_s;
        rate_sq_sum += st.tokens_per_s * st.tokens_per_s;
        out.requests.push_back(std::move(st));
    }

    out.extrapolation_factor =
        sim_sum > 0 ? double(ext_sum) / double(sim_sum) : 1.0;
    const double real_makespan =
        double(out.sim_makespan) * out.extrapolation_factor;
    out.finite_run_tokens_per_s =
        real_makespan > 0.0
            ? double(out.total_tokens) * double(kSec) / real_makespan
            : 0.0;
    const double concurrency = double(
        std::min<std::size_t>(opt.max_batch, out.requests.size()));
    out.aggregate_tokens_per_s =
        concurrency * rate_sum / double(out.requests.size());
    out.avg_channel_util = fs.avgChannelUtilization(out.sim_makespan);
    const std::size_t n = out.requests.size();
    out.fairness_jain =
        rate_sq_sum > 0.0
            ? (rate_sum * rate_sum) / (double(n) * rate_sq_sum)
            : 1.0;

    // Latency SLOs in depth-extrapolated milliseconds. Service spans
    // are the sum of per-step extrapolated times (contention stalls
    // included in each step's span); the queue-wait term is sim time
    // scaled by the run's measured extrapolation factor.
    SampleSet ttft_ms;
    for (ServeRequestStats &st : out.requests) {
        const double wait =
            double(st.admit_tick - st.arrival) *
            out.extrapolation_factor;
        double ttft = wait + double(st.prefill_time);
        if (st.prompt == 0)
            ttft += double(st.first_token.token_time);
        st.ttft_ms = ttft / double(kMs);
        ttft_ms.add(st.ttft_ms);

        Tick tbt_total = st.total_token_time;
        std::uint32_t tbt_n = st.decode_tokens;
        if (st.prompt == 0) {
            tbt_total -= st.first_token.token_time;
            tbt_n -= 1;
        }
        st.mean_tbt_ms =
            tbt_n > 0
                ? double(tbt_total) / double(tbt_n) / double(kMs)
                : 0.0;
    }
    out.ttft = summarize(ttft_ms);
    out.tbt = summarize(tbt_ms);

    out.npu_array_util =
        opt.npu_contention ? npu.arrayUtilization(out.sim_makespan)
                           : 0.0;
    out.prefill_channel_bytes =
        fs.deliveredBytes(flash::WorkClass::Prefill);
    out.decode_channel_bytes =
        fs.deliveredBytes(flash::WorkClass::Decode);
    return out;
}

} // namespace camllm::core
