#include "scheduler.h"

#include <algorithm>
#include <functional>
#include <optional>

#include <unordered_map>

#include "common/logging.h"
#include "common/stats.h"
#include "core/decode_stream.h"
#include "core/kv_pool.h"
#include "core/npu_arbiter.h"
#include "core/prefix_tree.h"
#include "flash/flash_system.h"
#include "npu/dram.h"
#include "sim/event_queue.h"

namespace camllm::core {

namespace {

LatencySummary
summarize(const SampleSet &s)
{
    LatencySummary out;
    out.n = s.count();
    out.p50_ms = s.percentile(50.0);
    out.p95_ms = s.percentile(95.0);
    out.p99_ms = s.percentile(99.0);
    out.mean_ms = s.mean();
    out.max_ms = s.max();
    return out;
}

} // namespace

Scheduler::Scheduler(const CamConfig &config,
                     const llm::ModelConfig &model)
    : config_(config), model_(model)
{
    if (!config_.flash.valid() || !config_.npu.valid())
        fatal("invalid Cambricon-LLM configuration '%s'",
              config_.name.c_str());
    if (!model_.valid())
        fatal("invalid model configuration '%s'", model_.name.c_str());
    plan_cache_ = std::make_unique<PlanCache>(
        config_.flash, llm::QuantSpec::of(config_.quant),
        config_.tilingOptions());
}

ServeStats
Scheduler::serve(const std::vector<ServeRequest> &requests,
                 const SchedOptions &opt) const
{
    CAMLLM_ASSERT(!requests.empty());
    CAMLLM_ASSERT(opt.max_batch >= 1);
    if (opt.policy == SchedPolicy::ChunkedInterleave)
        CAMLLM_ASSERT(opt.prefill_chunk >= 1);
    for (std::size_t i = 0; i < requests.size(); ++i) {
        const ServeRequest &r = requests[i];
        CAMLLM_ASSERT(r.prompt + r.context >= 1 &&
                      r.decode_tokens >= 1);
        CAMLLM_ASSERT(i == 0 ||
                          r.arrival >= requests[i - 1].arrival,
                      "arrival trace must be time-ordered");
    }

    // The KV pool bounds DRAM KV capacity at full model depth: one
    // block holds block_tokens positions of K+V across every layer.
    const llm::QuantSpec quant = llm::QuantSpec::of(config_.quant);
    const std::uint64_t token_kv_bytes =
        std::uint64_t(model_.kvDim()) * (quant.act_bits / 8) *
        model_.n_layers;
    // The sampled-layer share of a token's KV — what one swap
    // transfer actually moves on the sim clock, matching the depth
    // convention of every other transfer in the run.
    const std::uint64_t token_kv_sim_bytes =
        std::uint64_t(model_.kvDim()) * (quant.act_bits / 8) *
        std::min(model_.n_layers, config_.sample_layers);
    KvPool pool(opt.kv_budget_bytes, opt.kv_block_tokens,
                std::uint64_t(opt.kv_block_tokens) * token_kv_bytes);
    if (opt.kv_swap)
        CAMLLM_ASSERT(pool.bounded(),
                      "kv_swap without a bounded KV pool has nothing "
                      "to swap");
    if (opt.kv_prefix_sharing)
        CAMLLM_ASSERT(opt.kv_block_tokens >= 1,
                      "kv_prefix_sharing shares whole KV blocks and "
                      "needs kv_block_tokens >= 1");
    PrefixTree tree(pool);

    const auto finalKvTokens = [](const ServeRequest &s) {
        return std::uint64_t(s.context) + s.prompt + s.decode_tokens;
    };
    // A request whose final KV demand exceeds the whole pool can
    // never run; it is rejected gracefully at its admission point
    // (ServeStats::rejected_infeasible) instead of killing the serve.
    std::vector<char> infeasible(requests.size(), 0);
    if (pool.bounded())
        for (std::size_t i = 0; i < requests.size(); ++i)
            if (pool.blocksForTokens(finalKvTokens(requests[i])) >
                pool.totalBlocks())
                infeasible[i] = 1;

    // Shared device, same construction order as the single-request
    // engine (and PR 2's BatchEngine) so a decode-only FCFS run
    // replays its exact event sequence.
    EventQueue eq;
    npu::DramModel dram(eq, config_.npu);
    flash::FlashSystem fs(eq, config_.flash, config_.tile_window,
                          config_.slicing);
    NpuArbiter npu(eq, opt.npu_contention);

    // Fault injection: arm the spec on the device before anything
    // runs. An inactive spec arms nothing, so the fault-free event
    // sequence is byte-identical to a run without this block.
    flash::FaultSpec faults = opt.faults;
    if (faults.any()) {
        if (faults.model_weight_bytes == 0)
            faults.model_weight_bytes =
                quant.weightBytes(model_.totalParams());
        fs.armFaults(faults);
    }

    // KV swap-to-flash: reserve the flash KV region (reusing the
    // fault layer's placement map when one exists) and connect the
    // scheduler's own completion port for swap-in reads. Nothing here
    // runs when the knob is off, so the no-swap event sequence is
    // untouched.
    flash::ClientId swap_client = 0;
    std::function<void(const flash::Completion &)> onSwapCompletion;
    if (opt.kv_swap) {
        fs.enableKvSwap(quant.weightBytes(model_.totalParams()),
                        opt.kv_swap_flash_bytes);
        swap_client =
            fs.connect([&](const flash::Completion &c) {
                onSwapCompletion(c);
            });
    }

    struct ReqRun
    {
        ServeRequest spec;
        CamConfig cfg; ///< seq_len rebound per token
        std::unique_ptr<DecodeStream> stream;
        ServeRequestStats stats;
        std::uint32_t prefill_done = 0; ///< prompt tokens prefilled
        std::uint32_t cur_chunk = 0;    ///< in-flight chunk length
        std::uint32_t tokens_done = 0;  ///< decode steps completed
        Tick token_start = 0;
        Tick sim_token_sum = 0; ///< simulated (un-extrapolated) time
        bool finished = false;

        // --- KV pool state ---------------------------------------------
        KvBlockTable kv;
        bool admitted = false;
        bool stalled = false;   ///< at a boundary, pool dry
        bool preempted = false; ///< evicted, waiting to resume
        bool preempt_pending = false; ///< evict at next step end
        bool resumed = false;   ///< holds a full reservation
        bool first_emitted = false;

        // Block-granular rebuild state after an eviction. Coverage
        // [0, rebuild_from) is resident (kept by partial eviction or
        // already restored); [rebuild_from, rebuild_target) rebuilds
        // left to right — swap-mask blocks stream back from flash,
        // the rest recompute as Recompute-tagged prefill chunks. With
        // every KV-reuse knob off this degenerates to the legacy
        // whole-table recompute (from 0, nothing masked).
        std::uint32_t rebuild_from = 0;   ///< tokens restored so far
        std::uint32_t rebuild_target = 0; ///< coverage to restore
        std::uint32_t recompute_pending = 0; ///< unswapped rebuild tokens
        std::uint32_t want_tokens = 0; ///< coverage asked while stalled
        std::uint32_t swapped_out_tokens = 0; ///< flash copies not yet back
        std::vector<std::uint8_t> swap_mask; ///< block idx → copy in flash
        Tick blocked_since = 0;
        Tick blocked_pre_ft = 0;    ///< KV-blocked sim before 1st token
        Tick recompute_pre_ft = 0;  ///< recompute service before it
    };

    std::vector<ReqRun> runs(requests.size());
    // Identity fields are filled for every request up front — a
    // request that is rejected, shed or cancelled before admission
    // still lands in ServeStats with valid shape fields.
    for (std::size_t i = 0; i < runs.size(); ++i) {
        ReqRun &r = runs[i];
        r.spec = requests[i];
        r.cfg = config_;
        r.stats.id = std::uint32_t(i);
        r.stats.prompt = r.spec.prompt;
        r.stats.context = r.spec.context;
        r.stats.decode_tokens = r.spec.decode_tokens;
        r.stats.arrival = r.spec.arrival;
    }
    std::size_t next_admit = 0;
    std::uint32_t active = 0;
    std::uint64_t completed = 0;
    std::uint32_t n_admitted = 0;
    std::uint32_t n_shed = 0;
    std::uint32_t n_timeouts = 0;
    std::uint32_t n_cancelled = 0;
    std::uint32_t n_rejected = 0;
    Tick horizon = 0; ///< last request-exit tick (see sim_makespan)
    bool wake_pending = false;
    SampleSet tbt_ms;
    std::uint32_t total_preemptions = 0;
    std::uint64_t total_recompute_tokens = 0;
    std::uint32_t total_partial_evictions = 0;
    std::uint64_t total_swap_out_blocks = 0;
    std::uint64_t total_swap_in_blocks = 0;
    std::uint64_t total_swap_refused_blocks = 0;

    // In-flight swap-in ops on the scheduler's flash client: op id →
    // the owning run and the payload still to land.
    struct SwapIn
    {
        std::size_t run = 0;
        std::uint64_t remaining = 0;
        std::uint32_t blocks = 0;
        std::uint32_t tokens = 0;
        Tick start = 0;
    };
    std::unordered_map<std::uint64_t, SwapIn> swap_inflight;
    std::uint64_t swap_seq = 0;
    std::uint32_t swap_rr_ch = 0;

    // SLO admission control state: an EMA of depth-extrapolated
    // milliseconds per prefill token, sampled from every finished
    // prefill/recompute chunk. Zero until the first chunk lands, so
    // the first admissions are never shed blind.
    double prefill_ms_per_tok = 0.0;
    double degrade_scale = 1.0; ///< ProportionalSlowdown chunk scale

    DecodeStream::Env base;
    base.model = &model_;
    base.plans = plan_cache_.get();
    base.eq = &eq;
    base.dram = &dram;
    base.fs = &fs;
    base.npu = &npu;

    // The NPU weight-staging buffer is one physical resource; divide
    // the prefetch window across however many streams are active.
    const auto rebudget = [&] {
        const std::uint64_t budget =
            config_.npu.weight_buffer_bytes /
            std::max<std::uint32_t>(1, active);
        for (ReqRun &r : runs)
            if (r.stream && !r.finished)
                r.stream->setReadBudget(budget);
    };

    std::function<void(std::size_t)> startNext;
    std::function<void()> admit;
    std::function<void()> onFree;
    std::function<void(std::size_t)> evictRun;
    std::function<void(std::size_t, RequestOutcome)> killRun;

    const auto accountUnblock = [&](ReqRun &r) {
        const Tick span = eq.now() - r.blocked_since;
        r.stats.kv_blocked_time += span;
        if (!r.first_emitted)
            r.blocked_pre_ft += span;
    };

    const auto countOutcome = [&](RequestOutcome why) {
        switch (why) {
        case RequestOutcome::TimedOut: ++n_timeouts; break;
        case RequestOutcome::Cancelled: ++n_cancelled; break;
        case RequestOutcome::ShedSlo: ++n_shed; break;
        case RequestOutcome::RejectedInfeasible: ++n_rejected; break;
        case RequestOutcome::Completed: break;
        }
    };

    // The retention scrubber self-reschedules forever; once the last
    // request has left the system (by any outcome) it must stop so
    // the event queue can drain. Call after every exit accounting.
    const auto noteRequestExit = [&] {
        if (completed + n_shed + n_timeouts + n_cancelled + n_rejected ==
            runs.size())
            fs.stopRefresh();
    };

    // Projected TTFT for an arriving request: every admitted run's
    // outstanding prefill + recompute tokens are ahead of the new
    // request's own prompt on the shared device. Swapped-out rebuild
    // ranges stream over the channels, not the NPU, so only the
    // recompute share counts as prefill backlog.
    const auto projectedTtftMs = [&](const ServeRequest &spec) {
        // Cold start: no prefill chunk has finished, so there is no
        // measured rate to project from. Admit — the guard must never
        // shed on an empty EMA (a burst at t = 0 would otherwise be
        // rejected blind; pinned by the SLO cold-start test).
        if (prefill_ms_per_tok <= 0.0)
            return 0.0;
        std::uint64_t backlog = 0;
        for (const ReqRun &q : runs)
            if (q.admitted && !q.finished)
                backlog += (q.spec.prompt - q.prefill_done) +
                           q.recompute_pending;
        const std::uint64_t own =
            std::max<std::uint32_t>(1, spec.prompt);
        return double(backlog + own) * prefill_ms_per_tok;
    };

    const auto noteChunkRate = [&](const TokenStats &s,
                                   std::uint32_t chunk) {
        if (chunk == 0)
            return;
        const double ms =
            double(s.token_time) / double(kMs) / double(chunk);
        prefill_ms_per_tok = prefill_ms_per_tok == 0.0
                                 ? ms
                                 : 0.7 * prefill_ms_per_tok + 0.3 * ms;
    };

    // Recompute-vs-swap cost model, decided per evicted block.
    // Recompute re-runs the block's tokens as a prefill chunk: cost =
    // tokens x the measured extrapolated ms/token (the admission EMA,
    // which already bakes in NPU contention, retries and degradation;
    // before the first sample, an NPU-bound MAC-time floor from the
    // model's parameter count). Swap moves the block's full-depth
    // bytes over the channel buses twice — out now, back on resume —
    // at the bandwidth the alive channels have left at their current
    // occupancy. Deterministic: every input is sim state.
    const auto swapBeatsRecompute = [&](std::uint32_t tokens) {
        double recompute_ms;
        if (prefill_ms_per_tok > 0.0) {
            recompute_ms = double(tokens) * prefill_ms_per_tok;
        } else {
            const double flops =
                2.0 * double(model_.totalParams()) * double(tokens);
            recompute_ms =
                double(config_.npu.computeTime(flops)) / double(kMs);
        }
        const double bus_bytes_per_ns =
            double(fs.aliveChannels()) *
            config_.flash.timing.busBytesPerNs();
        const double headroom = std::max(
            0.05, 1.0 - fs.avgChannelUtilization(eq.now()));
        const double swap_ms =
            2.0 * double(std::uint64_t(tokens) * token_kv_bytes) /
            (bus_bytes_per_ns * headroom) / double(kMs);
        return swap_ms < recompute_ms;
    };

    // Victim policy: the lowest-priority (latest-arrived) running
    // request that does not hold a full reservation. Older requests
    // are deep in decode while the newest is typically still
    // prefilling, so eviction lands on young prefills first — the
    // ROADMAP's decode-priority preemption. One eviction is in flight
    // at a time; a mid-step victim is evicted at its next unit
    // boundary, a stalled one (including the requester itself)
    // immediately. When every active run is resumed there is no
    // victim: the requester waits for a retirement, which resumed
    // runs — they can never stall — are guaranteed to reach.
    const auto maybePreempt = [&] {
        for (const ReqRun &r : runs)
            if (r.preempt_pending)
                return;
        std::size_t victim = runs.size();
        for (std::size_t j = 0; j < runs.size(); ++j) {
            const ReqRun &r = runs[j];
            if (r.admitted && !r.finished && !r.preempted &&
                !r.resumed)
                victim = j;
        }
        if (victim == runs.size())
            return;
        if (runs[victim].stalled)
            evictRun(victim);
        else
            runs[victim].preempt_pending = true;
    };

    // Grow @p i's block table to cover @p tokens, or stall the
    // request and go looking for a victim. A dry pool first sheds
    // cold cache-only prefix blocks (nobody's table maps them) —
    // cache capacity yields before anyone is preempted.
    const auto ensureKv = [&](std::size_t i, std::uint64_t tokens) {
        ReqRun &r = runs[i];
        bool ok = pool.tryGrow(r.kv, tokens);
        if (!ok && opt.kv_prefix_sharing) {
            const std::uint64_t shortfall =
                pool.blocksForTokens(tokens) - r.kv.blocks.size() -
                pool.freeBlocks();
            if (tree.dropCold(shortfall) > 0)
                ok = pool.tryGrow(r.kv, tokens);
        }
        if (ok) {
            if (r.stalled) {
                r.stalled = false;
                accountUnblock(r);
            }
            return true;
        }
        r.want_tokens = std::uint32_t(tokens);
        if (!r.stalled) {
            r.stalled = true;
            r.blocked_since = eq.now();
        }
        maybePreempt();
        return false;
    };

    evictRun = [&](std::size_t j) {
        ReqRun &r = runs[j];
        CAMLLM_ASSERT(r.admitted && !r.finished && !r.preempted);
        if (!r.stalled)
            r.blocked_since = eq.now();
        r.stalled = false;
        r.preempt_pending = false;
        r.preempted = true;
        // Everything the victim sheds must be restored before it can
        // continue: warm context, prefilled prompt positions and the
        // KV of every decoded token. Eviction is block-granular —
        // each shed block either swaps out to flash (cost model and
        // region quota permitting) or is marked for recompute.
        const auto coverage = std::uint32_t(
            r.spec.context + r.prefill_done + r.tokens_done);
        const std::size_t n_blocks = r.kv.blocks.size();
        CAMLLM_ASSERT(n_blocks == pool.blocksForTokens(coverage),
                      "victim table covers %zu blocks, coverage %u "
                      "tokens needs %llu",
                      n_blocks, coverage,
                      (unsigned long long)pool.blocksForTokens(
                          coverage));
        const std::uint32_t B = pool.blockTokens();

        // Partial eviction: keep the head and shed only the coldest
        // tail — enough blocks that actually free capacity (shared
        // blocks held elsewhere free nothing) to cover the worst
        // stalled run's *final* demand, not just the boundary it
        // tripped on. Sizing for the final demand costs a few more
        // tail blocks now but keeps the requester from stalling again
        // a few tokens later and triggering an eviction cascade that
        // would erase the partial keep's savings. When even the whole
        // table cannot cover it, fall back to full eviction (the
        // legacy policy, and the only choice with the knob off).
        std::size_t keep = 0;
        if (opt.kv_partial_evict && n_blocks > 0) {
            std::uint64_t need = 1;
            for (const ReqRun &q : runs)
                if (q.stalled) {
                    const std::uint64_t q_need = pool.blocksForTokens(
                        finalKvTokens(q.spec));
                    if (q_need > q.kv.blocks.size())
                        need = std::max(need, q_need -
                                                  q.kv.blocks.size());
                }
            const std::uint64_t free_now = pool.freeBlocks();
            need = need > free_now ? need - free_now : 1;
            std::uint64_t freeable = 0;
            std::size_t k = n_blocks;
            while (k > 0 && freeable < need) {
                --k;
                if (pool.refCount(r.kv.blocks[k]) == 1)
                    ++freeable;
            }
            if (freeable >= need && k > 0) {
                keep = k;
                ++total_partial_evictions;
            }
        }

        r.rebuild_from =
            std::min(std::uint32_t(keep) * B, coverage);
        r.rebuild_target = coverage;
        r.recompute_pending = 0;
        r.swap_mask.assign(n_blocks, 0);
        for (std::size_t k = keep; k < n_blocks; ++k) {
            const std::uint32_t lo = std::uint32_t(k) * B;
            const std::uint32_t tok =
                std::min<std::uint32_t>(B, coverage - lo);
            bool swapped = false;
            // Shared blocks stay resident for their other holders —
            // swapping a copy out would duplicate live DRAM data, so
            // they always rebuild by recompute here.
            if (opt.kv_swap && tok > 0 &&
                pool.refCount(r.kv.blocks[k]) == 1 &&
                swapBeatsRecompute(tok)) {
                const std::uint64_t full =
                    std::uint64_t(tok) * token_kv_bytes;
                const std::uint64_t sim =
                    std::uint64_t(tok) * token_kv_sim_bytes;
                if (fs.kvSwapOut(full, sim)) {
                    swapped = true;
                    r.swapped_out_tokens += tok;
                    ++total_swap_out_blocks;
                } else {
                    ++total_swap_refused_blocks;
                }
            }
            r.swap_mask[k] = swapped ? 1 : 0;
            if (!swapped)
                r.recompute_pending += tok;
            pool.releaseBlock(r.kv.blocks[k]);
        }
        r.kv.blocks.resize(keep);
        ++r.stats.preemptions;
        ++total_preemptions;
        CAMLLM_ASSERT(active > 0);
        --active;
        // Budget the survivors for the new concurrency BEFORE any
        // woken waiter issues work (admit()/resume rebudget again if
        // they change the count).
        rebudget();
        onFree();
    };

    // Tear a request down wherever it stands — queued, prefilling,
    // decoding, stalled or evicted. An in-flight unit is abandoned
    // through DecodeStream::abortUnit(): its completion port drops
    // queued and future records, and the device work it already
    // submitted keeps draining (and charging the channels) like a
    // real cancelled request's in-flight I/O. KV blocks are released
    // immediately and the freed capacity wakes waiters on this tick.
    killRun = [&](std::size_t i, RequestOutcome why) {
        ReqRun &r = runs[i];
        if (r.finished)
            return; // completed (or already torn down) first
        r.finished = true;
        r.stats.outcome = why;
        r.stats.finish_tick = eq.now();
        horizon = std::max(horizon, eq.now());
        countOutcome(why);
        noteRequestExit();
        if (!r.admitted) {
            // Still queued: holds no blocks and no stream. It may be
            // the head of the admission queue — re-run admission so
            // the queue can advance past it.
            admit();
            return;
        }
        const bool was_active = !r.preempted;
        if (r.stalled) {
            r.stalled = false;
            accountUnblock(r);
        }
        r.preempted = false;
        r.preempt_pending = false;
        if (r.stream)
            r.stream->abortUnit();
        // Swapped-out copies die with their owner; a swap-in run
        // still in flight already returned its quota when it was
        // issued, and its completion is dropped on the finished run.
        if (r.swapped_out_tokens > 0) {
            fs.kvSwapFree(std::uint64_t(r.swapped_out_tokens) *
                          token_kv_bytes);
            r.swapped_out_tokens = 0;
        }
        pool.release(r.kv);
        if (was_active) {
            CAMLLM_ASSERT(active > 0);
            --active;
            rebudget();
        }
        onFree();
    };

    const auto onChunkDone = [&](std::size_t i, const TokenStats &s) {
        ReqRun &r = runs[i];
        r.sim_token_sum += eq.now() - r.token_start;
        r.stats.prefill_time += s.token_time;
        ++r.stats.prefill_chunks;
        noteChunkRate(s, r.cur_chunk);
        r.prefill_done += r.cur_chunk;
        r.cur_chunk = 0;
        if (r.prefill_done >= r.spec.prompt) {
            // The last chunk's head projection emitted the request's
            // first token.
            r.stats.first_token = s;
            r.stats.first_token_tick = eq.now();
            r.first_emitted = true;
        }
        // Publish newly completed whole blocks of the shared prefix
        // to the tree (cache ref on top of the table's — the block
        // now survives this request's eviction or retirement).
        // Blocks the tree already has insert as no-ops.
        if (opt.kv_prefix_sharing && r.spec.prefix_id != 0 &&
            r.spec.context == 0 && r.spec.prompt >= 2) {
            const std::uint32_t B = pool.blockTokens();
            const std::uint32_t shareable =
                std::min(r.spec.prefix_tokens, r.spec.prompt - 1);
            const std::size_t done_blocks = std::min<std::size_t>(
                r.prefill_done / B, shareable / B);
            for (std::size_t k = 0; k < done_blocks; ++k)
                tree.insert(r.spec.prefix_id, k, r.kv.blocks[k]);
        }
        if (r.preempt_pending) {
            evictRun(i);
            return;
        }
        startNext(i); // next chunk, or the first decode step
    };

    const auto onRecomputeDone = [&](std::size_t i,
                                     const TokenStats &s) {
        ReqRun &r = runs[i];
        r.sim_token_sum += eq.now() - r.token_start;
        r.stats.recompute_time += s.token_time;
        ++r.stats.recompute_chunks;
        noteChunkRate(s, r.cur_chunk);
        if (!r.first_emitted)
            r.recompute_pre_ft += s.token_time;
        r.rebuild_from += r.cur_chunk;
        CAMLLM_ASSERT(r.recompute_pending >= r.cur_chunk);
        r.recompute_pending -= r.cur_chunk;
        total_recompute_tokens += r.cur_chunk;
        r.cur_chunk = 0;
        startNext(i); // next rebuild range, or where it left off
    };

    const auto onTokenDone = [&](std::size_t i, const TokenStats &s) {
        ReqRun &r = runs[i];
        r.sim_token_sum += eq.now() - r.token_start;
        r.stats.total_token_time += s.token_time;
        if (r.tokens_done == 0 && r.spec.prompt == 0) {
            // Decode-only request: its first decode step emits the
            // first token (BatchEngine-compatible first_token).
            r.stats.first_token = s;
            r.stats.first_token_tick = eq.now();
            r.first_emitted = true;
        } else {
            tbt_ms.add(double(s.token_time) / double(kMs));
        }
        ++r.tokens_done;
        if (r.tokens_done < r.spec.decode_tokens) {
            if (r.preempt_pending) {
                evictRun(i);
                return;
            }
            startNext(i); // continuous: no batch barrier
            return;
        }
        r.finished = true;
        r.preempt_pending = false; // retiring beats a pending evict
        r.stats.outcome = RequestOutcome::Completed;
        r.stats.finish_tick = eq.now();
        horizon = std::max(horizon, eq.now());
        ++completed;
        noteRequestExit();
        CAMLLM_ASSERT(active > 0);
        --active;
        pool.release(r.kv);
        rebudget(); // survivors' share first, as in evictRun
        onFree();   // refill the slot / wake KV waiters, same tick
    };

    // The chunked policies' prefill token budget; under
    // ProportionalSlowdown degradation an overloaded system shrinks
    // everyone's chunks (floor 16) instead of shedding arrivals.
    const auto chunkBudget = [&] {
        std::uint32_t budget = opt.prefill_chunk;
        if (degrade_scale < 1.0)
            budget = std::max<std::uint32_t>(
                16, std::uint32_t(double(budget) * degrade_scale));
        return budget;
    };

    // Stream a run of swapped-out blocks back from flash: page reads
    // tagged WorkClass::KvSwap, round-robin over the channels, on the
    // scheduler's own flash client. The owner waits for the whole run
    // to land (onSwapCompletion) before continuing its rebuild; the
    // flash copies' quota returns here, at issue.
    const auto issueSwapIn = [&](std::size_t i, std::uint32_t blocks,
                                 std::uint32_t tokens) {
        ReqRun &r = runs[i];
        CAMLLM_ASSERT(r.swapped_out_tokens >= tokens);
        r.swapped_out_tokens -= tokens;
        fs.kvSwapFree(std::uint64_t(tokens) * token_kv_bytes);
        const std::uint64_t op = ++swap_seq;
        const std::uint64_t sim =
            std::uint64_t(tokens) * token_kv_sim_bytes;
        swap_inflight.emplace(
            op, SwapIn{i, sim, blocks, tokens, eq.now()});
        const std::uint32_t page =
            config_.flash.geometry.page_bytes;
        std::uint64_t left = sim;
        while (left > 0) {
            flash::ReadPageJob job;
            job.client = swap_client;
            job.cls = flash::WorkClass::KvSwap;
            job.op_id = op;
            job.bytes = std::uint32_t(
                std::min<std::uint64_t>(page, left));
            left -= job.bytes;
            fs.submitRead(swap_rr_ch, job);
            swap_rr_ch = (swap_rr_ch + 1) % fs.channelCount();
        }
    };

    startNext = [&](std::size_t i) {
        ReqRun &r = runs[i];
        // A killed run's deferred start event (stagger/arrival) still
        // fires — the EventQueue cannot cancel — and must be a no-op.
        if (r.finished)
            return;
        // A pending eviction lands at the next unit boundary — which
        // for a victim that never issued its first unit (deferred
        // start via stagger or arrival) is right here.
        if (r.preempt_pending) {
            evictRun(i);
            return;
        }
        // KV REBUILD: restore evicted coverage left to right. A range
        // of swapped blocks streams back over the channels
        // (WorkClass::KvSwap); everything else recomputes as prefill
        // chunks under the policy's budget — no token is emitted
        // (last_chunk = false) and the re-streamed weight traffic is
        // tagged WorkClass::Recompute. Earlier positions are always
        // resident before later ones rebuild, so attention inputs
        // stay valid mid-rebuild. A resumed run holds a full
        // reservation, so its ensureKv can never stall.
        if (r.rebuild_from < r.rebuild_target) {
            const std::uint32_t B = pool.blockTokens();
            const std::size_t blk = B > 0 ? r.rebuild_from / B : 0;
            if (blk < r.swap_mask.size() && r.swap_mask[blk]) {
                // Maximal contiguous run of swapped blocks.
                std::uint32_t blocks = 0, tokens = 0;
                for (std::size_t k = blk;
                     k < r.swap_mask.size() && r.swap_mask[k] &&
                     std::uint32_t(k) * B < r.rebuild_target;
                     ++k) {
                    tokens += std::min<std::uint32_t>(
                        B, r.rebuild_target - std::uint32_t(k) * B);
                    ++blocks;
                }
                issueSwapIn(i, blocks, tokens);
                return;
            }
            // Recompute up to the next swapped block (if any).
            std::uint32_t limit = r.rebuild_target - r.rebuild_from;
            for (std::size_t k = blk; k < r.swap_mask.size(); ++k)
                if (r.swap_mask[k] &&
                    std::uint32_t(k) * B > r.rebuild_from) {
                    limit = std::uint32_t(k) * B - r.rebuild_from;
                    break;
                }
            const std::uint32_t chunk =
                opt.policy == SchedPolicy::ChunkedInterleave
                    ? std::min(chunkBudget(), limit)
                    : limit;
            if (!ensureKv(i, std::uint64_t(r.rebuild_from) + chunk))
                return;
            r.cur_chunk = chunk;
            r.cfg.seq_len = r.rebuild_from + chunk;
            r.token_start = eq.now();
            r.stream->setWorkClass(flash::WorkClass::Recompute);
            r.stream->startPrefillChunk(
                chunk, r.rebuild_from, /*last_chunk=*/false,
                [&, i](const TokenStats &s) { onRecomputeDone(i, s); });
            return;
        }
        if (r.prefill_done < r.spec.prompt) {
            // PREFILL: the next chunk under the policy's token
            // budget; FCFS takes the whole remaining prompt at once.
            const std::uint32_t remaining =
                r.spec.prompt - r.prefill_done;
            const std::uint32_t chunk =
                opt.policy == SchedPolicy::ChunkedInterleave
                    ? std::min(chunkBudget(), remaining)
                    : remaining;
            const std::uint32_t kv_base =
                r.spec.context + r.prefill_done;
            if (!ensureKv(i, std::uint64_t(kv_base) + chunk))
                return;
            const bool last = chunk == remaining;
            r.cur_chunk = chunk;
            r.cfg.seq_len = kv_base + chunk;
            r.token_start = eq.now();
            r.stream->setWorkClass(std::nullopt);
            r.stream->startPrefillChunk(
                chunk, kv_base, last,
                [&, i](const TokenStats &s) { onChunkDone(i, s); });
            return;
        }
        // DECODE: the request's KV stream grows with every token.
        const std::uint32_t seq =
            r.spec.context + r.spec.prompt + r.tokens_done;
        if (!ensureKv(i, std::uint64_t(seq) + 1)) // appends one token
            return;
        r.cfg.seq_len = seq;
        r.token_start = eq.now();
        r.stream->setWorkClass(std::nullopt);
        r.stream->startToken(seq, 0, [&, i](const TokenStats &s) {
            onTokenDone(i, s);
        });
    };

    bool initial_wave = true;
    admit = [&] {
        std::vector<std::size_t> started;
        while (active < opt.max_batch && next_admit < runs.size()) {
            // Skip over queued requests already torn down (cancelled
            // or timed out before they ever got a slot).
            if (runs[next_admit].finished) {
                ++next_admit;
                continue;
            }
            const ServeRequest &spec = requests[next_admit];
            if (spec.arrival > eq.now()) {
                // Head of the queue is in the future: wake when it
                // lands (arrivals are sorted, one wake suffices).
                if (!wake_pending) {
                    wake_pending = true;
                    eq.schedule(spec.arrival, [&] {
                        wake_pending = false;
                        admit();
                    });
                }
                break;
            }
            // Infeasible request: reject loudly at its admission
            // point and keep serving everyone else.
            if (infeasible[next_admit]) {
                ReqRun &head = runs[next_admit];
                warn("rejecting request %zu: KV demand (%llu tokens "
                     "= %llu blocks of %u) exceeds the whole KV "
                     "budget (%llu blocks)",
                     next_admit,
                     (unsigned long long)finalKvTokens(spec),
                     (unsigned long long)pool.blocksForTokens(
                         finalKvTokens(spec)),
                     opt.kv_block_tokens,
                     (unsigned long long)pool.totalBlocks());
                head.finished = true;
                head.stats.outcome =
                    RequestOutcome::RejectedInfeasible;
                head.stats.finish_tick = eq.now();
                horizon = std::max(horizon, eq.now());
                ++n_rejected;
                noteRequestExit();
                ++next_admit;
                continue;
            }
            // SLO-aware degradation at the admission point. Under
            // ShedNewest an arrival whose projected TTFT (queue of
            // admitted prefill work ahead of it, at the measured
            // per-token rate) already busts the target is turned
            // away; under ProportionalSlowdown everyone is admitted
            // but the prefill chunk budget shrinks with the overload.
            if (opt.slo_ttft_ms > 0.0) {
                const double projected = projectedTtftMs(spec);
                if (opt.degrade == DegradePolicy::ShedNewest) {
                    if (projected > opt.slo_ttft_ms) {
                        ReqRun &head = runs[next_admit];
                        warn("shedding request %zu: projected TTFT "
                             "%.0f ms exceeds SLO %.0f ms",
                             next_admit, projected, opt.slo_ttft_ms);
                        head.finished = true;
                        head.stats.outcome = RequestOutcome::ShedSlo;
                        head.stats.finish_tick = eq.now();
                        horizon = std::max(horizon, eq.now());
                        ++n_shed;
                        noteRequestExit();
                        ++next_admit;
                        continue;
                    }
                } else {
                    degrade_scale =
                        projected > opt.slo_ttft_ms
                            ? std::max(0.25,
                                       opt.slo_ttft_ms / projected)
                            : 1.0;
                }
            }
            // Admission requires the request's warm context KV to be
            // resident; a dry pool queues the head FCFS (admission
            // never preempts — only running requests' growth does)
            // and retries on the next block free.
            if (spec.context > 0 &&
                !pool.tryGrow(runs[next_admit].kv, spec.context))
                break;
            const std::size_t i = next_admit++;
            ReqRun &r = runs[i];
            ++n_admitted;
            DecodeStream::Env env = base;
            env.cfg = &r.cfg;
            r.stream = std::make_unique<DecodeStream>(env);
            r.stream->setKvView(llm::KvView{opt.kv_block_tokens});
            // Prefix sharing: map the tree's cached leading blocks
            // into this request's table (refcounted — the tree keeps
            // its own ref) and skip their prefill. Only whole blocks
            // strictly inside the prompt qualify, so the last chunk
            // still runs and emits the first token.
            if (opt.kv_prefix_sharing && spec.prefix_id != 0 &&
                spec.context == 0 && spec.prompt >= 2) {
                const std::uint32_t B = pool.blockTokens();
                const std::uint32_t shareable =
                    std::min(spec.prefix_tokens, spec.prompt - 1);
                const std::size_t hit = tree.match(
                    spec.prefix_id, shareable / B, r.kv.blocks);
                if (hit > 0) {
                    r.prefill_done = std::uint32_t(hit) * B;
                    r.stats.prefix_reused_tokens = r.prefill_done;
                }
            }
            r.admitted = true;
            ++active;
            started.push_back(i);
        }
        if (started.empty())
            return;
        // Budget every stream for the new concurrency BEFORE any new
        // stream issues work, so no first token prefetches with more
        // than its share of the staging buffer.
        rebudget();
        for (std::size_t i : started) {
            ReqRun &r = runs[i];
            // Stagger only the initial wave (i * stagger ticks); the
            // slot is held from admission, the stream just waits for
            // its start slot. A delay of zero starts synchronously,
            // which keeps the decode-only event sequence identical to
            // PR 2's BatchEngine.
            Tick start = initial_wave ? Tick(i) * opt.admission_stagger
                                      : eq.now();
            if (start < r.spec.arrival)
                start = r.spec.arrival;
            r.stats.admit_tick = start;
            if (start == eq.now())
                startNext(i);
            else
                eq.schedule(start, [&, i] { startNext(i); });
        }
    };

    // Grow the FCFS resume-queue head to its full final reservation.
    // With the KV-reuse knobs on, the head can be blocked by capacity
    // that is only conditionally useful: cold prefix-cache blocks
    // nobody maps, and head blocks that *younger* preempted victims
    // kept through partial eviction. The head is older and resumes
    // first, so when nothing active remains to free blocks, those
    // keeps are worthless — reclaim them (the younger victims fall
    // back to a full rebuild by recompute) rather than deadlock. With
    // every knob off this is exactly the legacy tryGrow.
    const auto growForResume = [&](std::size_t i) {
        ReqRun &r = runs[i];
        const std::uint64_t tokens = finalKvTokens(r.spec);
        if (pool.tryGrow(r.kv, tokens))
            return true;
        if (opt.kv_prefix_sharing) {
            const std::uint64_t shortfall =
                pool.blocksForTokens(tokens) - r.kv.blocks.size() -
                pool.freeBlocks();
            if (tree.dropCold(shortfall) > 0 &&
                pool.tryGrow(r.kv, tokens))
                return true;
        }
        if (opt.kv_partial_evict && active == 0) {
            for (std::size_t j = runs.size(); j-- > i + 1;) {
                ReqRun &q = runs[j];
                if (!q.preempted || q.kv.blocks.empty())
                    continue;
                for (std::uint32_t b : q.kv.blocks)
                    pool.releaseBlock(b);
                q.kv.blocks.clear();
                // The kept head tokens now rebuild like everything
                // else; they were never swapped, so they recompute.
                q.recompute_pending += q.rebuild_from;
                q.rebuild_from = 0;
                if (pool.tryGrow(r.kv, tokens))
                    return true;
            }
        }
        return false;
    };

    onFree = [&] {
        // 1. Stalled running requests retry first (they hold blocks
        //    and are mid-request — decode priority), arrival order.
        //    startNext re-derives the pending unit and either issues
        //    it or re-stalls.
        for (std::size_t i = 0; i < runs.size(); ++i)
            if (runs[i].stalled)
                startNext(i);
        // 2. Evicted requests resume strictly FCFS, each only with a
        //    reservation for its full final KV demand — a resumed run
        //    can never stall again, which keeps the schedule
        //    livelock-free (and means a request is evicted at most
        //    once).
        std::vector<std::size_t> resumed_now;
        for (std::size_t i = 0; i < runs.size(); ++i) {
            ReqRun &r = runs[i];
            if (!r.preempted)
                continue;
            if (!growForResume(i))
                break;
            r.preempted = false;
            r.resumed = true;
            accountUnblock(r);
            ++active;
            resumed_now.push_back(i);
        }
        if (!resumed_now.empty()) {
            rebudget();
            for (std::size_t i : resumed_now)
                startNext(i);
        }
        // 3. New admissions last.
        admit();
    };

    // Swap-in completions: count a whole block run restored only when
    // its last page lands, bill the span as KV-blocked time (it is
    // pool-management wait, not NPU service — so TTFT/TBT see it at
    // the run's extrapolation factor, like any other KV stall), and
    // let the owner continue its rebuild.
    onSwapCompletion = [&](const flash::Completion &c) {
        if (c.kind != flash::Completion::Kind::ReadData)
            return;
        auto it = swap_inflight.find(c.op_id);
        CAMLLM_ASSERT(it != swap_inflight.end(),
                      "swap completion for unknown op %llu",
                      (unsigned long long)c.op_id);
        SwapIn &sw = it->second;
        CAMLLM_ASSERT(sw.remaining >= c.bytes);
        sw.remaining -= c.bytes;
        if (sw.remaining > 0)
            return;
        const SwapIn done = sw;
        swap_inflight.erase(it);
        ReqRun &r = runs[done.run];
        // A run killed mid-swap-in already freed its quota at issue;
        // the late data is simply dropped.
        if (r.finished)
            return;
        r.rebuild_from += done.tokens;
        CAMLLM_ASSERT(r.rebuild_from <= r.rebuild_target);
        r.stats.swapped_in_blocks += done.blocks;
        total_swap_in_blocks += done.blocks;
        const Tick span = eq.now() - done.start;
        r.stats.kv_blocked_time += span;
        if (!r.first_emitted)
            r.blocked_pre_ft += span;
        startNext(done.run);
    };

    // Deadlines and user cancellations are pre-scheduled (the trace
    // is known): a fired event on a finished run is a no-op. With
    // neither armed and no faults, nothing extra enters the queue and
    // the event sequence is bit-identical to the pre-resilience
    // scheduler; when extras ARE armed, trailing no-op events would
    // inflate eq.now(), so the makespan falls back to the tracked
    // last-request-exit horizon.
    // kv_swap also dirties the timeline: fire-and-forget swap-out
    // write grants drain at Low priority after the last request exit
    // and would inflate eq.now().
    bool timeline_clean = !faults.any() &&
                          opt.request_deadline == 0 && !opt.kv_swap;
    for (std::size_t i = 0; i < requests.size(); ++i) {
        if (opt.request_deadline > 0)
            eq.schedule(requests[i].arrival + opt.request_deadline,
                        [&, i] {
                            killRun(i, RequestOutcome::TimedOut);
                        });
        if (requests[i].cancel_at > 0) {
            timeline_clean = false;
            eq.schedule(requests[i].cancel_at, [&, i] {
                killRun(i, RequestOutcome::Cancelled);
            });
        }
    }

    admit();
    initial_wave = false;
    eq.run();
    CAMLLM_ASSERT(completed + n_shed + n_timeouts + n_cancelled +
                          n_rejected ==
                      runs.size(),
                  "request accounting out of balance: %llu completed "
                  "+ %u shed + %u timed out + %u cancelled + %u "
                  "rejected != %zu requests",
                  (unsigned long long)completed, n_shed, n_timeouts,
                  n_cancelled, n_rejected, runs.size());
    // Drain audit: every retire released its whole block table, the
    // prefix cache returns its refs, every outstanding ref is gone
    // (leakedBlocks alone would miss a leaked extra ref on a shared
    // block), every swap-in landed and the flash KV region is empty.
    tree.releaseAll();
    CAMLLM_ASSERT(pool.leakedBlocks() == 0,
                  "%llu KV blocks leaked at drain",
                  (unsigned long long)pool.leakedBlocks());
    CAMLLM_ASSERT(pool.leakedRefs() == 0,
                  "%llu KV block refs leaked at drain",
                  (unsigned long long)pool.leakedRefs());
    CAMLLM_ASSERT(pool.allocCount() == pool.freeCount());
    CAMLLM_ASSERT(swap_inflight.empty(),
                  "%zu swap-in ops never completed",
                  swap_inflight.size());
    if (opt.kv_swap)
        CAMLLM_ASSERT(fs.kvSwapLivePages() == 0,
                      "%llu flash KV pages still live at drain",
                      (unsigned long long)fs.kvSwapLivePages());

    ServeStats out;
    out.max_batch = opt.max_batch;
    out.sim_makespan = timeline_clean ? eq.now() : horizon;
    out.sim_events = eq.executed();
    out.requests.reserve(runs.size());

    Tick sim_sum = 0, ext_sum = 0;
    double rate_sum = 0.0, rate_sq_sum = 0.0;
    std::uint64_t goodput_tokens = 0;
    for (ReqRun &r : runs) {
        ServeRequestStats &st = r.stats;
        // A killed run completed only tokens_done of its decode
        // budget (a completed run's tokens_done equals decode_tokens,
        // so these expressions reduce to the historical ones).
        const std::uint32_t steps = r.tokens_done;
        st.tokens_emitted =
            steps + ((st.prompt > 0 && r.first_emitted) ? 1u : 0u);
        st.mean_token_time =
            steps > 0 ? st.total_token_time / steps : 0;
        st.tokens_per_s =
            st.total_token_time > 0
                ? double(steps) * double(kSec) /
                      double(st.total_token_time)
                : 0.0;
        out.total_tokens += st.tokens_emitted;
        if (st.outcome == RequestOutcome::Completed)
            goodput_tokens += st.tokens_emitted;
        sim_sum += r.sim_token_sum;
        ext_sum += st.total_token_time + st.prefill_time +
                   st.recompute_time;
        rate_sum += st.tokens_per_s;
        rate_sq_sum += st.tokens_per_s * st.tokens_per_s;
        out.requests.push_back(std::move(st));
    }

    out.extrapolation_factor =
        sim_sum > 0 ? double(ext_sum) / double(sim_sum) : 1.0;
    const double real_makespan =
        double(out.sim_makespan) * out.extrapolation_factor;
    out.finite_run_tokens_per_s =
        real_makespan > 0.0
            ? double(out.total_tokens) * double(kSec) / real_makespan
            : 0.0;
    const double concurrency = double(
        std::min<std::size_t>(opt.max_batch, out.requests.size()));
    out.aggregate_tokens_per_s =
        concurrency * rate_sum / double(out.requests.size());
    out.avg_channel_util = fs.avgChannelUtilization(out.sim_makespan);
    const std::size_t n = out.requests.size();
    out.fairness_jain =
        rate_sq_sum > 0.0
            ? (rate_sum * rate_sum) / (double(n) * rate_sq_sum)
            : 1.0;

    // Latency SLOs in depth-extrapolated milliseconds. Service spans
    // are the sum of per-step extrapolated times (contention stalls
    // included in each step's span); queue-wait, KV-stall and
    // eviction waits are sim time scaled by the run's measured
    // extrapolation factor, and pre-first-token recompute is service
    // time. With an unbounded pool the KV terms are all zero and the
    // formula reduces to the pre-paging one exactly.
    SampleSet ttft_ms;
    for (std::size_t i = 0; i < out.requests.size(); ++i) {
        ServeRequestStats &st = out.requests[i];
        // A request torn down before its first token has no TTFT
        // sample (and admit_tick may never have been set).
        if (!runs[i].first_emitted) {
            st.ttft_ms = 0.0;
            st.mean_tbt_ms = 0.0;
            continue;
        }
        const double wait =
            (double(st.admit_tick - st.arrival) +
             double(runs[i].blocked_pre_ft)) *
            out.extrapolation_factor;
        double ttft = wait + double(st.prefill_time) +
                      double(runs[i].recompute_pre_ft);
        if (st.prompt == 0)
            ttft += double(st.first_token.token_time);
        st.ttft_ms = ttft / double(kMs);
        ttft_ms.add(st.ttft_ms);

        Tick tbt_total = st.total_token_time;
        std::uint32_t tbt_n = runs[i].tokens_done;
        if (st.prompt == 0) {
            tbt_total -= st.first_token.token_time;
            tbt_n -= 1;
        }
        st.mean_tbt_ms =
            tbt_n > 0
                ? double(tbt_total) / double(tbt_n) / double(kMs)
                : 0.0;
    }
    out.ttft = summarize(ttft_ms);
    out.tbt = summarize(tbt_ms);

    out.npu_array_util =
        opt.npu_contention ? npu.arrayUtilization(out.sim_makespan)
                           : 0.0;
    out.prefill_channel_bytes =
        fs.deliveredBytes(flash::WorkClass::Prefill);
    out.decode_channel_bytes =
        fs.deliveredBytes(flash::WorkClass::Decode);
    out.recompute_channel_bytes =
        fs.deliveredBytes(flash::WorkClass::Recompute);

    out.preemptions = total_preemptions;
    out.recompute_tokens = total_recompute_tokens;
    out.partial_evictions = total_partial_evictions;
    out.swap_out_blocks = total_swap_out_blocks;
    out.swap_in_blocks = total_swap_in_blocks;
    out.swap_refused_blocks = total_swap_refused_blocks;
    out.kv_swap_channel_bytes =
        opt.kv_swap ? fs.kvSwapChannelBytes() : 0;
    out.prefix_hit_blocks = tree.hitBlocks();
    out.prefix_hit_tokens =
        tree.hitBlocks() * std::uint64_t(pool.blockTokens());
    out.prefix_inserted_blocks = tree.insertedBlocks();
    out.prefix_dropped_blocks = tree.droppedBlocks();
    out.kv_blocks_total = pool.bounded() ? pool.totalBlocks() : 0;
    out.kv_blocks_high_water = pool.highWaterBlocks();
    out.kv_block_allocs = pool.allocCount();
    out.kv_block_frees = pool.freeCount();

    out.admitted = n_admitted;
    out.completed = std::uint32_t(completed);
    out.shed_slo = n_shed;
    out.timeouts = n_timeouts;
    out.cancelled = n_cancelled;
    out.rejected_infeasible = n_rejected;
    out.goodput_tokens_per_s =
        real_makespan > 0.0
            ? double(goodput_tokens) * double(kSec) / real_makespan
            : 0.0;
    out.read_retries = fs.retryReads();
    out.retry_channel_bytes = fs.retryBytes();
    out.remap_bytes = fs.remapBytes();
    out.channels_lost = fs.channelsLost();
    out.reissued_jobs = fs.reissuedJobs();
    out.refresh_pages = fs.refreshPages();
    out.refresh_channel_bytes = fs.refreshChannelBytes();
    out.refresh_deferred_beats = fs.refreshDeferredBeats();
    out.wear_spread_pe = fs.wearSpreadPe();
    out.wear_mean_pe = fs.wearMeanPe();
    out.wear_max_pe = fs.wearMaxPe();
    return out;
}

} // namespace camllm::core
