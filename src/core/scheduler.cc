#include "scheduler.h"

#include <algorithm>
#include <functional>
#include <optional>

#include "common/logging.h"
#include "common/stats.h"
#include "core/decode_stream.h"
#include "core/kv_pool.h"
#include "core/npu_arbiter.h"
#include "flash/flash_system.h"
#include "npu/dram.h"
#include "sim/event_queue.h"

namespace camllm::core {

namespace {

LatencySummary
summarize(const SampleSet &s)
{
    LatencySummary out;
    out.n = s.count();
    out.p50_ms = s.percentile(50.0);
    out.p95_ms = s.percentile(95.0);
    out.p99_ms = s.percentile(99.0);
    out.mean_ms = s.mean();
    out.max_ms = s.max();
    return out;
}

} // namespace

Scheduler::Scheduler(const CamConfig &config,
                     const llm::ModelConfig &model)
    : config_(config), model_(model)
{
    if (!config_.flash.valid() || !config_.npu.valid())
        fatal("invalid Cambricon-LLM configuration '%s'",
              config_.name.c_str());
    if (!model_.valid())
        fatal("invalid model configuration '%s'", model_.name.c_str());
    plan_cache_ = std::make_unique<PlanCache>(
        config_.flash, llm::QuantSpec::of(config_.quant),
        config_.tilingOptions());
}

ServeStats
Scheduler::serve(const std::vector<ServeRequest> &requests,
                 const SchedOptions &opt) const
{
    CAMLLM_ASSERT(!requests.empty());
    CAMLLM_ASSERT(opt.max_batch >= 1);
    if (opt.policy == SchedPolicy::ChunkedInterleave)
        CAMLLM_ASSERT(opt.prefill_chunk >= 1);
    for (std::size_t i = 0; i < requests.size(); ++i) {
        const ServeRequest &r = requests[i];
        CAMLLM_ASSERT(r.prompt + r.context >= 1 &&
                      r.decode_tokens >= 1);
        CAMLLM_ASSERT(i == 0 ||
                          r.arrival >= requests[i - 1].arrival,
                      "arrival trace must be time-ordered");
    }

    // The KV pool bounds DRAM KV capacity at full model depth: one
    // block holds block_tokens positions of K+V across every layer.
    const llm::QuantSpec quant = llm::QuantSpec::of(config_.quant);
    const std::uint64_t token_kv_bytes =
        std::uint64_t(model_.kvDim()) * (quant.act_bits / 8) *
        model_.n_layers;
    KvPool pool(opt.kv_budget_bytes, opt.kv_block_tokens,
                std::uint64_t(opt.kv_block_tokens) * token_kv_bytes);

    const auto finalKvTokens = [](const ServeRequest &s) {
        return std::uint64_t(s.context) + s.prompt + s.decode_tokens;
    };
    if (pool.bounded())
        for (const ServeRequest &r : requests)
            if (pool.blocksForTokens(finalKvTokens(r)) >
                pool.totalBlocks())
                fatal("request KV demand (%llu tokens = %llu blocks "
                      "of %u) exceeds the whole KV budget (%llu "
                      "blocks); it could never be served",
                      (unsigned long long)finalKvTokens(r),
                      (unsigned long long)pool.blocksForTokens(
                          finalKvTokens(r)),
                      opt.kv_block_tokens,
                      (unsigned long long)pool.totalBlocks());

    // Shared device, same construction order as the single-request
    // engine (and PR 2's BatchEngine) so a decode-only FCFS run
    // replays its exact event sequence.
    EventQueue eq;
    npu::DramModel dram(eq, config_.npu);
    flash::FlashSystem fs(eq, config_.flash, config_.tile_window,
                          config_.slicing);
    NpuArbiter npu(eq, opt.npu_contention);

    struct ReqRun
    {
        ServeRequest spec;
        CamConfig cfg; ///< seq_len rebound per token
        std::unique_ptr<DecodeStream> stream;
        ServeRequestStats stats;
        std::uint32_t prefill_done = 0; ///< prompt tokens prefilled
        std::uint32_t cur_chunk = 0;    ///< in-flight chunk length
        std::uint32_t tokens_done = 0;  ///< decode steps completed
        Tick token_start = 0;
        Tick sim_token_sum = 0; ///< simulated (un-extrapolated) time
        bool finished = false;

        // --- KV pool state ---------------------------------------------
        KvBlockTable kv;
        bool admitted = false;
        bool stalled = false;   ///< at a boundary, pool dry
        bool preempted = false; ///< evicted, waiting to resume
        bool preempt_pending = false; ///< evict at next step end
        bool resumed = false;   ///< holds a full reservation
        bool first_emitted = false;
        std::uint32_t recompute_left = 0; ///< KV positions to rebuild
        std::uint32_t recompute_base = 0; ///< rebuilt so far
        Tick blocked_since = 0;
        Tick blocked_pre_ft = 0;    ///< KV-blocked sim before 1st token
        Tick recompute_pre_ft = 0;  ///< recompute service before it
    };

    std::vector<ReqRun> runs(requests.size());
    std::size_t next_admit = 0;
    std::uint32_t active = 0;
    std::uint64_t finished = 0;
    bool wake_pending = false;
    SampleSet tbt_ms;
    std::uint32_t total_preemptions = 0;
    std::uint64_t total_recompute_tokens = 0;

    DecodeStream::Env base;
    base.model = &model_;
    base.plans = plan_cache_.get();
    base.eq = &eq;
    base.dram = &dram;
    base.fs = &fs;
    base.npu = &npu;

    // The NPU weight-staging buffer is one physical resource; divide
    // the prefetch window across however many streams are active.
    const auto rebudget = [&] {
        const std::uint64_t budget =
            config_.npu.weight_buffer_bytes /
            std::max<std::uint32_t>(1, active);
        for (ReqRun &r : runs)
            if (r.stream && !r.finished)
                r.stream->setReadBudget(budget);
    };

    std::function<void(std::size_t)> startNext;
    std::function<void()> admit;
    std::function<void()> onFree;
    std::function<void(std::size_t)> evictRun;

    const auto accountUnblock = [&](ReqRun &r) {
        const Tick span = eq.now() - r.blocked_since;
        r.stats.kv_blocked_time += span;
        if (!r.first_emitted)
            r.blocked_pre_ft += span;
    };

    // Victim policy: the lowest-priority (latest-arrived) running
    // request that does not hold a full reservation. Older requests
    // are deep in decode while the newest is typically still
    // prefilling, so eviction lands on young prefills first — the
    // ROADMAP's decode-priority preemption. One eviction is in flight
    // at a time; a mid-step victim is evicted at its next unit
    // boundary, a stalled one (including the requester itself)
    // immediately. When every active run is resumed there is no
    // victim: the requester waits for a retirement, which resumed
    // runs — they can never stall — are guaranteed to reach.
    const auto maybePreempt = [&] {
        for (const ReqRun &r : runs)
            if (r.preempt_pending)
                return;
        std::size_t victim = runs.size();
        for (std::size_t j = 0; j < runs.size(); ++j) {
            const ReqRun &r = runs[j];
            if (r.admitted && !r.finished && !r.preempted &&
                !r.resumed)
                victim = j;
        }
        if (victim == runs.size())
            return;
        if (runs[victim].stalled)
            evictRun(victim);
        else
            runs[victim].preempt_pending = true;
    };

    // Grow @p i's block table to cover @p tokens, or stall the
    // request and go looking for a victim.
    const auto ensureKv = [&](std::size_t i, std::uint64_t tokens) {
        ReqRun &r = runs[i];
        if (pool.tryGrow(r.kv, tokens)) {
            if (r.stalled) {
                r.stalled = false;
                accountUnblock(r);
            }
            return true;
        }
        if (!r.stalled) {
            r.stalled = true;
            r.blocked_since = eq.now();
        }
        maybePreempt();
        return false;
    };

    evictRun = [&](std::size_t j) {
        ReqRun &r = runs[j];
        CAMLLM_ASSERT(r.admitted && !r.finished && !r.preempted);
        if (!r.stalled)
            r.blocked_since = eq.now();
        r.stalled = false;
        r.preempt_pending = false;
        r.preempted = true;
        // Everything the request has written must be rebuilt before
        // it can continue: warm context, prefilled prompt positions
        // and the KV of every decoded token.
        r.recompute_left = std::uint32_t(
            r.spec.context + r.prefill_done + r.tokens_done);
        r.recompute_base = 0;
        pool.release(r.kv);
        ++r.stats.preemptions;
        ++total_preemptions;
        CAMLLM_ASSERT(active > 0);
        --active;
        // Budget the survivors for the new concurrency BEFORE any
        // woken waiter issues work (admit()/resume rebudget again if
        // they change the count).
        rebudget();
        onFree();
    };

    const auto onChunkDone = [&](std::size_t i, const TokenStats &s) {
        ReqRun &r = runs[i];
        r.sim_token_sum += eq.now() - r.token_start;
        r.stats.prefill_time += s.token_time;
        ++r.stats.prefill_chunks;
        r.prefill_done += r.cur_chunk;
        r.cur_chunk = 0;
        if (r.prefill_done >= r.spec.prompt) {
            // The last chunk's head projection emitted the request's
            // first token.
            r.stats.first_token = s;
            r.stats.first_token_tick = eq.now();
            r.first_emitted = true;
        }
        if (r.preempt_pending) {
            evictRun(i);
            return;
        }
        startNext(i); // next chunk, or the first decode step
    };

    const auto onRecomputeDone = [&](std::size_t i,
                                     const TokenStats &s) {
        ReqRun &r = runs[i];
        r.sim_token_sum += eq.now() - r.token_start;
        r.stats.recompute_time += s.token_time;
        ++r.stats.recompute_chunks;
        if (!r.first_emitted)
            r.recompute_pre_ft += s.token_time;
        r.recompute_base += r.cur_chunk;
        CAMLLM_ASSERT(r.recompute_left >= r.cur_chunk);
        r.recompute_left -= r.cur_chunk;
        total_recompute_tokens += r.cur_chunk;
        r.cur_chunk = 0;
        startNext(i); // next recompute chunk, or where it left off
    };

    const auto onTokenDone = [&](std::size_t i, const TokenStats &s) {
        ReqRun &r = runs[i];
        r.sim_token_sum += eq.now() - r.token_start;
        r.stats.total_token_time += s.token_time;
        if (r.tokens_done == 0 && r.spec.prompt == 0) {
            // Decode-only request: its first decode step emits the
            // first token (BatchEngine-compatible first_token).
            r.stats.first_token = s;
            r.stats.first_token_tick = eq.now();
            r.first_emitted = true;
        } else {
            tbt_ms.add(double(s.token_time) / double(kMs));
        }
        ++r.tokens_done;
        if (r.tokens_done < r.spec.decode_tokens) {
            if (r.preempt_pending) {
                evictRun(i);
                return;
            }
            startNext(i); // continuous: no batch barrier
            return;
        }
        r.finished = true;
        r.preempt_pending = false; // retiring beats a pending evict
        r.stats.finish_tick = eq.now();
        ++finished;
        CAMLLM_ASSERT(active > 0);
        --active;
        pool.release(r.kv);
        rebudget(); // survivors' share first, as in evictRun
        onFree();   // refill the slot / wake KV waiters, same tick
    };

    startNext = [&](std::size_t i) {
        ReqRun &r = runs[i];
        // A pending eviction lands at the next unit boundary — which
        // for a victim that never issued its first unit (deferred
        // start via stagger or arrival) is right here.
        if (r.preempt_pending) {
            evictRun(i);
            return;
        }
        // KV RECOMPUTE: rebuild evicted entries as prefill chunks
        // under the policy's budget. No token is emitted (last_chunk
        // = false), and the re-streamed weight traffic is tagged
        // WorkClass::Recompute. A resumed run holds a full
        // reservation, so its ensureKv can never stall.
        if (r.recompute_left > 0) {
            const std::uint32_t chunk =
                opt.policy == SchedPolicy::ChunkedInterleave
                    ? std::min(opt.prefill_chunk, r.recompute_left)
                    : r.recompute_left;
            if (!ensureKv(i, std::uint64_t(r.recompute_base) + chunk))
                return;
            r.cur_chunk = chunk;
            r.cfg.seq_len = r.recompute_base + chunk;
            r.token_start = eq.now();
            r.stream->setWorkClass(flash::WorkClass::Recompute);
            r.stream->startPrefillChunk(
                chunk, r.recompute_base, /*last_chunk=*/false,
                [&, i](const TokenStats &s) { onRecomputeDone(i, s); });
            return;
        }
        if (r.prefill_done < r.spec.prompt) {
            // PREFILL: the next chunk under the policy's token
            // budget; FCFS takes the whole remaining prompt at once.
            const std::uint32_t remaining =
                r.spec.prompt - r.prefill_done;
            const std::uint32_t chunk =
                opt.policy == SchedPolicy::ChunkedInterleave
                    ? std::min(opt.prefill_chunk, remaining)
                    : remaining;
            const std::uint32_t kv_base =
                r.spec.context + r.prefill_done;
            if (!ensureKv(i, std::uint64_t(kv_base) + chunk))
                return;
            const bool last = chunk == remaining;
            r.cur_chunk = chunk;
            r.cfg.seq_len = kv_base + chunk;
            r.token_start = eq.now();
            r.stream->setWorkClass(std::nullopt);
            r.stream->startPrefillChunk(
                chunk, kv_base, last,
                [&, i](const TokenStats &s) { onChunkDone(i, s); });
            return;
        }
        // DECODE: the request's KV stream grows with every token.
        const std::uint32_t seq =
            r.spec.context + r.spec.prompt + r.tokens_done;
        if (!ensureKv(i, std::uint64_t(seq) + 1)) // appends one token
            return;
        r.cfg.seq_len = seq;
        r.token_start = eq.now();
        r.stream->setWorkClass(std::nullopt);
        r.stream->startToken(seq, 0, [&, i](const TokenStats &s) {
            onTokenDone(i, s);
        });
    };

    bool initial_wave = true;
    admit = [&] {
        std::vector<std::size_t> started;
        while (active < opt.max_batch && next_admit < runs.size()) {
            const ServeRequest &spec = requests[next_admit];
            if (spec.arrival > eq.now()) {
                // Head of the queue is in the future: wake when it
                // lands (arrivals are sorted, one wake suffices).
                if (!wake_pending) {
                    wake_pending = true;
                    eq.schedule(spec.arrival, [&] {
                        wake_pending = false;
                        admit();
                    });
                }
                break;
            }
            // Admission requires the request's warm context KV to be
            // resident; a dry pool queues the head FCFS (admission
            // never preempts — only running requests' growth does)
            // and retries on the next block free.
            if (spec.context > 0 &&
                !pool.tryGrow(runs[next_admit].kv, spec.context))
                break;
            const std::size_t i = next_admit++;
            ReqRun &r = runs[i];
            r.spec = spec;
            r.cfg = config_;
            r.stats.id = std::uint32_t(i);
            r.stats.prompt = r.spec.prompt;
            r.stats.context = r.spec.context;
            r.stats.decode_tokens = r.spec.decode_tokens;
            r.stats.arrival = r.spec.arrival;
            DecodeStream::Env env = base;
            env.cfg = &r.cfg;
            r.stream = std::make_unique<DecodeStream>(env);
            r.stream->setKvView(llm::KvView{opt.kv_block_tokens});
            r.admitted = true;
            ++active;
            started.push_back(i);
        }
        if (started.empty())
            return;
        // Budget every stream for the new concurrency BEFORE any new
        // stream issues work, so no first token prefetches with more
        // than its share of the staging buffer.
        rebudget();
        for (std::size_t i : started) {
            ReqRun &r = runs[i];
            // Stagger only the initial wave (i * stagger ticks); the
            // slot is held from admission, the stream just waits for
            // its start slot. A delay of zero starts synchronously,
            // which keeps the decode-only event sequence identical to
            // PR 2's BatchEngine.
            Tick start = initial_wave ? Tick(i) * opt.admission_stagger
                                      : eq.now();
            if (start < r.spec.arrival)
                start = r.spec.arrival;
            r.stats.admit_tick = start;
            if (start == eq.now())
                startNext(i);
            else
                eq.schedule(start, [&, i] { startNext(i); });
        }
    };

    onFree = [&] {
        // 1. Stalled running requests retry first (they hold blocks
        //    and are mid-request — decode priority), arrival order.
        //    startNext re-derives the pending unit and either issues
        //    it or re-stalls.
        for (std::size_t i = 0; i < runs.size(); ++i)
            if (runs[i].stalled)
                startNext(i);
        // 2. Evicted requests resume strictly FCFS, each only with a
        //    reservation for its full final KV demand — a resumed run
        //    can never stall again, which keeps the schedule
        //    livelock-free (and means a request is evicted at most
        //    once).
        std::vector<std::size_t> resumed_now;
        for (std::size_t i = 0; i < runs.size(); ++i) {
            ReqRun &r = runs[i];
            if (!r.preempted)
                continue;
            if (!pool.tryGrow(r.kv, finalKvTokens(r.spec)))
                break;
            r.preempted = false;
            r.resumed = true;
            accountUnblock(r);
            ++active;
            resumed_now.push_back(i);
        }
        if (!resumed_now.empty()) {
            rebudget();
            for (std::size_t i : resumed_now)
                startNext(i);
        }
        // 3. New admissions last.
        admit();
    };

    admit();
    initial_wave = false;
    eq.run();
    CAMLLM_ASSERT(finished == runs.size(),
                  "only %llu of %zu requests completed",
                  (unsigned long long)finished, runs.size());
    // Drain audit: every retire released its whole block table.
    CAMLLM_ASSERT(pool.leakedBlocks() == 0,
                  "%llu KV blocks leaked at drain",
                  (unsigned long long)pool.leakedBlocks());
    CAMLLM_ASSERT(pool.allocCount() == pool.freeCount());

    ServeStats out;
    out.max_batch = opt.max_batch;
    out.sim_makespan = eq.now();
    out.requests.reserve(runs.size());

    Tick sim_sum = 0, ext_sum = 0;
    double rate_sum = 0.0, rate_sq_sum = 0.0;
    for (ReqRun &r : runs) {
        ServeRequestStats &st = r.stats;
        st.mean_token_time = st.total_token_time / st.decode_tokens;
        st.tokens_per_s =
            st.total_token_time > 0
                ? double(st.decode_tokens) * double(kSec) /
                      double(st.total_token_time)
                : 0.0;
        out.total_tokens += st.decode_tokens;
        if (st.prompt > 0)
            ++out.total_tokens; // the prefill-emitted first token
        sim_sum += r.sim_token_sum;
        ext_sum += st.total_token_time + st.prefill_time +
                   st.recompute_time;
        rate_sum += st.tokens_per_s;
        rate_sq_sum += st.tokens_per_s * st.tokens_per_s;
        out.requests.push_back(std::move(st));
    }

    out.extrapolation_factor =
        sim_sum > 0 ? double(ext_sum) / double(sim_sum) : 1.0;
    const double real_makespan =
        double(out.sim_makespan) * out.extrapolation_factor;
    out.finite_run_tokens_per_s =
        real_makespan > 0.0
            ? double(out.total_tokens) * double(kSec) / real_makespan
            : 0.0;
    const double concurrency = double(
        std::min<std::size_t>(opt.max_batch, out.requests.size()));
    out.aggregate_tokens_per_s =
        concurrency * rate_sum / double(out.requests.size());
    out.avg_channel_util = fs.avgChannelUtilization(out.sim_makespan);
    const std::size_t n = out.requests.size();
    out.fairness_jain =
        rate_sq_sum > 0.0
            ? (rate_sum * rate_sum) / (double(n) * rate_sq_sum)
            : 1.0;

    // Latency SLOs in depth-extrapolated milliseconds. Service spans
    // are the sum of per-step extrapolated times (contention stalls
    // included in each step's span); queue-wait, KV-stall and
    // eviction waits are sim time scaled by the run's measured
    // extrapolation factor, and pre-first-token recompute is service
    // time. With an unbounded pool the KV terms are all zero and the
    // formula reduces to the pre-paging one exactly.
    SampleSet ttft_ms;
    for (std::size_t i = 0; i < out.requests.size(); ++i) {
        ServeRequestStats &st = out.requests[i];
        const double wait =
            (double(st.admit_tick - st.arrival) +
             double(runs[i].blocked_pre_ft)) *
            out.extrapolation_factor;
        double ttft = wait + double(st.prefill_time) +
                      double(runs[i].recompute_pre_ft);
        if (st.prompt == 0)
            ttft += double(st.first_token.token_time);
        st.ttft_ms = ttft / double(kMs);
        ttft_ms.add(st.ttft_ms);

        Tick tbt_total = st.total_token_time;
        std::uint32_t tbt_n = st.decode_tokens;
        if (st.prompt == 0) {
            tbt_total -= st.first_token.token_time;
            tbt_n -= 1;
        }
        st.mean_tbt_ms =
            tbt_n > 0
                ? double(tbt_total) / double(tbt_n) / double(kMs)
                : 0.0;
    }
    out.ttft = summarize(ttft_ms);
    out.tbt = summarize(tbt_ms);

    out.npu_array_util =
        opt.npu_contention ? npu.arrayUtilization(out.sim_makespan)
                           : 0.0;
    out.prefill_channel_bytes =
        fs.deliveredBytes(flash::WorkClass::Prefill);
    out.decode_channel_bytes =
        fs.deliveredBytes(flash::WorkClass::Decode);
    out.recompute_channel_bytes =
        fs.deliveredBytes(flash::WorkClass::Recompute);

    out.preemptions = total_preemptions;
    out.recompute_tokens = total_recompute_tokens;
    out.kv_blocks_total = pool.bounded() ? pool.totalBlocks() : 0;
    out.kv_blocks_high_water = pool.highWaterBlocks();
    out.kv_block_allocs = pool.allocCount();
    out.kv_block_frees = pool.freeCount();
    return out;
}

} // namespace camllm::core
