#include "kv_pool.h"

#include <algorithm>

#include "common/logging.h"

namespace camllm::core {

KvPool::KvPool(std::uint64_t budget_bytes, std::uint32_t block_tokens,
               std::uint64_t block_bytes)
    : block_tokens_(block_tokens), block_bytes_(block_bytes)
{
    if (budget_bytes == 0) {
        total_blocks_ = kUnbounded;
        return;
    }
    if (block_tokens_ == 0 || block_bytes_ == 0)
        fatal("bounded KV pool needs block_tokens >= 1 "
              "(budget %llu bytes, block_tokens %u)",
              (unsigned long long)budget_bytes, block_tokens);
    total_blocks_ = budget_bytes / block_bytes_;
    if (total_blocks_ == 0)
        fatal("KV budget %llu bytes is smaller than one %llu-byte "
              "block",
              (unsigned long long)budget_bytes,
              (unsigned long long)block_bytes_);
}

std::uint64_t
KvPool::blocksForTokens(std::uint64_t tokens) const
{
    if (tokens == 0)
        return 0;
    if (block_tokens_ == 0)
        return 1; // contiguous: the stream is one giant block
    return (tokens + block_tokens_ - 1) / block_tokens_;
}

std::uint64_t
KvPool::freeBlocks() const
{
    return bounded() ? total_blocks_ - in_use_ : kUnbounded;
}

bool
KvPool::canGrow(const KvBlockTable &t, std::uint64_t tokens) const
{
    const std::uint64_t need = blocksForTokens(tokens);
    if (need <= t.blocks.size())
        return true;
    return !bounded() || need - t.blocks.size() <= freeBlocks();
}

std::uint32_t
KvPool::allocBlock()
{
    std::uint32_t id;
    if (!free_list_.empty()) {
        id = free_list_.back();
        free_list_.pop_back();
    } else {
        id = std::uint32_t(refcount_.size());
        refcount_.push_back(0);
    }
    CAMLLM_ASSERT(refcount_[id] == 0, "allocating a live block");
    refcount_[id] = 1;
    ++in_use_;
    ++refs_outstanding_;
    ++allocs_;
    high_water_ = std::max(high_water_, in_use_);
    return id;
}

bool
KvPool::tryGrow(KvBlockTable &t, std::uint64_t tokens)
{
    if (!canGrow(t, tokens))
        return false;
    const std::uint64_t need = blocksForTokens(tokens);
    while (t.blocks.size() < need)
        t.blocks.push_back(allocBlock());
    return true;
}

void
KvPool::release(KvBlockTable &t)
{
    for (std::uint32_t b : t.blocks)
        releaseBlock(b);
    t.blocks.clear();
}

void
KvPool::retain(std::uint32_t block)
{
    CAMLLM_ASSERT(block < refcount_.size() && refcount_[block] > 0,
                  "retain of a dead KV block");
    ++refcount_[block];
    ++refs_outstanding_;
}

void
KvPool::releaseBlock(std::uint32_t block)
{
    CAMLLM_ASSERT(block < refcount_.size() && refcount_[block] > 0,
                  "double free of KV block %u", block);
    CAMLLM_ASSERT(refs_outstanding_ > 0);
    --refs_outstanding_;
    if (--refcount_[block] > 0)
        return;
    CAMLLM_ASSERT(in_use_ > 0);
    --in_use_;
    ++frees_;
    free_list_.push_back(block);
}

} // namespace camllm::core
