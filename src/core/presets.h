/**
 * @file
 * End-to-end Cambricon-LLM configurations, including the paper's
 * Table II presets (S / M / L) and every ablation knob used by the
 * evaluation section.
 */

#ifndef CAMLLM_CORE_PRESETS_H
#define CAMLLM_CORE_PRESETS_H

#include <cstdint>
#include <string>

#include "core/tiling.h"
#include "flash/params.h"
#include "llm/quant.h"
#include "npu/params.h"

namespace camllm::core {

/** Full system + experiment configuration. */
struct CamConfig
{
    std::string name = "Cambricon-LLM";
    flash::FlashParams flash;
    npu::NpuParams npu;
    llm::QuantMode quant = llm::QuantMode::W8A8;

    /** Decode context length (KV entries already cached). */
    std::uint32_t seq_len = 512;

    /** Slice Control on the read stream (Fig 12 ablation). */
    bool slicing = true;

    /** Hardware-aware tiling, i.e.\ NPU co-computation (Fig 14). */
    bool hybrid_tiling = true;

    /** Allow the read stream to prefetch the next GeMV's weights into
     *  the NPU buffer while attention/SFU phases run. */
    bool prefetch = true;

    /** Force a tile shape (Fig 13); empty selects the planner optimum. */
    std::optional<TileShape> forced_tile;

    /** Bytes per result element returned from a core (paper: 1). */
    std::uint32_t out_elem_bytes = 1;

    /** Read-compute tiles in flight per channel. */
    std::uint32_t tile_window = 3;

    /**
     * Transformer layers to simulate before extrapolating the steady
     * state to the full depth (all layers of a decode step are
     * identical). Must be >= 3 whenever the model is deeper.
     */
    std::uint32_t sample_layers = 4;

    TilingOptions
    tilingOptions() const
    {
        TilingOptions o;
        o.hybrid = hybrid_tiling;
        o.forced_tile = forced_tile;
        o.out_elem_bytes = out_elem_bytes;
        return o;
    }
};

/** Table II: 8 channels x 2 chips. */
CamConfig presetS();

/** Table II: 16 channels x 4 chips. */
CamConfig presetM();

/** Table II: 32 channels x 8 chips. */
CamConfig presetL();

/** Preset with an arbitrary channel/chip count (Fig 15 sweeps). */
CamConfig presetCustom(std::uint32_t channels, std::uint32_t chips);

/**
 * Structural hash over every simulated knob of a configuration (and
 * its flash/NPU parameter structs). Two configs hash equal exactly
 * when they would simulate identically, which is what keys the
 * sweep-level memoization cache.
 */
std::uint64_t configHash(const CamConfig &cfg);

} // namespace camllm::core

#endif // CAMLLM_CORE_PRESETS_H
