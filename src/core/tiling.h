/**
 * @file
 * Hardware-aware tiling (paper Section V).
 *
 * Chooses the tile shape (Hreq x Wreq) that minimizes channel traffic
 * for a GeMV, then splits the rows between flash read-compute and NPU
 * read streams so both finish together.
 *
 * Derivation implemented here (E = weight elements per page, ch =
 * channels, cc = compute cores per channel):
 *   Trans(tile)      = Wreq + ch * Hreq      (input broadcast reuse)
 *   s.t. Hreq * Wreq = ch * cc * E           (atomic tile == one page)
 *   => Hreq* = sqrt(cc*E),  Wreq* = ch * sqrt(cc*E)   (AM-GM)
 * Clamped to the actual matrix: Wreq <= cols (tall-thin matrices make
 * wide tiles impossible and cost extra traffic; Fig 13 quantifies
 * forcing other shapes).
 *
 * The workload split equalizes the two weight-consumption rates:
 *   R_rc = cc * pageWeightBytes / t_tile     (on-die compute)
 *   R_rd = (1 - rate_rc) * bw                (reads in bus bubbles)
 *   alpha = R_rc / (R_rc + R_rd)
 * which is the paper's alpha = tr / (tr + trc) normalized per page.
 */

#ifndef CAMLLM_CORE_TILING_H
#define CAMLLM_CORE_TILING_H

#include <cstdint>
#include <mutex>
#include <optional>
#include <unordered_map>

#include "common/units.h"
#include "flash/params.h"
#include "llm/quant.h"

namespace camllm::core {

/** A tile shape in weight elements (whole-flash tile). */
struct TileShape
{
    std::uint32_t h = 0;
    std::uint32_t w = 0;
};

/** Planner knobs (ablations + Fig 13 forced shapes). */
struct TilingOptions
{
    /** false disables the NPU read share (Fig 14 "without tiling"). */
    bool hybrid = true;

    /** Force a specific tile shape (Fig 13). */
    std::optional<TileShape> forced_tile;

    /** Bytes per result-vector element returned by a core. */
    std::uint32_t out_elem_bytes = 1;
};

/** Complete plan for one rows x cols weight GeMV. */
struct TilePlan
{
    std::uint64_t rows = 0;
    std::uint64_t cols = 0;

    // Tile geometry.
    std::uint32_t wc = 0;  ///< per-channel tile width (elements)
    std::uint32_t hpc = 0; ///< rows per core (atomic tile height)
    TileShape tile;        ///< Hreq x Wreq as realized
    double page_utilization = 0.0;

    // Steady-state analytics.
    Tick t_tile = 0;      ///< per-tile pipeline interval (trc analogue)
    double rate_rc = 0.0; ///< high-priority bus duty
    Tick tr = 0;          ///< sliced-read service time per page
    double r_rc_gbps = 0.0;
    double r_rd_gbps = 0.0;
    double alpha = 1.0;

    // Row split.
    std::uint64_t flash_rows = 0;
    std::uint64_t npu_rows = 0;
    std::uint32_t flash_core_rows = 0; ///< hpc-row units on flash
    std::uint32_t n_col_tiles = 0;

    /** Channel bytes per full tile (input + results), analytics. */
    double transBytesPerTile(std::uint32_t channels) const;
};

/** Computes TilePlans for a fixed flash + quantization context. */
class TilingPlanner
{
  public:
    TilingPlanner(const flash::FlashParams &flash,
                  const llm::QuantSpec &quant,
                  const TilingOptions &options = {});

    /** Plan the split for a rows x cols weight matrix. */
    TilePlan plan(std::uint64_t rows, std::uint64_t cols) const;

    /** Weight elements per flash page under this quantization. */
    std::uint32_t elemsPerPage() const { return elems_per_page_; }

    const TilingOptions &options() const { return options_; }

  private:
    flash::FlashParams flash_;
    llm::QuantSpec quant_;
    TilingOptions options_;
    std::uint32_t elems_per_page_;
};

/**
 * Memoizing front-end for a TilingPlanner. A decode step issues the
 * same handful of (rows, cols) GeMV shapes hundreds of times; the
 * cache computes each plan once and hands out stable references.
 * Thread-safe so sweep workers may share an engine.
 */
class PlanCache
{
  public:
    PlanCache(const flash::FlashParams &flash, const llm::QuantSpec &quant,
              const TilingOptions &options = {})
        : planner_(flash, quant, options)
    {
    }

    /** Memoized TilingPlanner::plan; the reference stays valid. */
    const TilePlan &planFor(std::uint64_t rows, std::uint64_t cols) const;

    std::uint32_t elemsPerPage() const { return planner_.elemsPerPage(); }

    const TilingPlanner &planner() const { return planner_; }

    /** Distinct shapes planned so far. */
    std::size_t size() const;

  private:
    TilingPlanner planner_;
    mutable std::mutex mu_;
    mutable std::unordered_map<std::uint64_t, TilePlan> plans_;
};

} // namespace camllm::core

#endif // CAMLLM_CORE_TILING_H
