/**
 * @file
 * Weight placement and capacity accounting.
 *
 * Read-compute pages must live on the die whose core will multiply
 * them (plane 0 by convention); read-share pages are striped across
 * every die's plane 1 so ordinary reads can proceed while the compute
 * plane is busy. Placement is bookkeeping for capacity checks and
 * addressing tests; request timing is driven by the channel queues.
 */

#ifndef CAMLLM_FLASH_PLACEMENT_H
#define CAMLLM_FLASH_PLACEMENT_H

#include <cstdint>
#include <vector>

#include "flash/address.h"
#include "flash/params.h"

namespace camllm::flash {

/** Per-plane bump allocator over the whole device. */
class WeightPlacement
{
  public:
    explicit WeightPlacement(const FlashGeometry &g);

    /**
     * Allocate one compute-plane page on channel @p channel, die
     * @p die_in_channel (0 .. diesPerChannel()-1). Spills to the read
     * plane with a warning when the compute plane fills.
     */
    PageAddress allocRcPage(std::uint32_t channel,
                            std::uint32_t die_in_channel);

    /** Allocate one read-share page, round-robin across all dies. */
    PageAddress allocReadPage();

    /**
     * Bulk-seed @p pages striped evenly across every plane — the
     * resident weight image as loaded at boot. The fault layer uses
     * this so a dead channel knows how much data it strands.
     */
    void seedStriped(std::uint64_t pages);

    /** Pages currently resident on @p channel (0 once it is dead). */
    std::uint64_t pagesOnChannel(std::uint32_t channel) const;

    /**
     * Channel @p channel died: retire its capacity and move its pages
     * onto the surviving channels' planes, spread as evenly as their
     * free space allows. Returns the page count moved (the rebuild
     * traffic the caller charges over the surviving buses). Fatal
     * when the survivors cannot hold the strands.
     */
    std::uint64_t remapChannel(std::uint32_t channel);

    bool channelDead(std::uint32_t channel) const
    {
        return channel_dead_[channel];
    }

    std::uint64_t pagesAllocated() const { return allocated_; }

    /** Device capacity excluding retired (dead-channel) planes. */
    std::uint64_t
    capacityPages() const
    {
        return geometry_.totalPages() - retired_pages_;
    }

    /** Fraction of total device pages allocated. */
    double
    occupancy() const
    {
        return double(allocated_) / double(capacityPages());
    }

    /** Remaining free pages across the device. */
    std::uint64_t freePages() const { return capacityPages() - allocated_; }

  private:
    /** Flat plane index for (channel, die-in-channel, plane). */
    std::size_t planeIndex(std::uint32_t channel,
                           std::uint32_t die_in_channel,
                           std::uint32_t plane) const;

    PageAddress allocOnPlane(std::uint32_t channel,
                             std::uint32_t die_in_channel,
                             std::uint32_t plane);

    FlashGeometry geometry_;
    std::vector<std::uint32_t> next_page_; ///< per-plane bump cursor
    std::vector<bool> channel_dead_;
    std::uint64_t allocated_ = 0;
    std::uint64_t rr_cursor_ = 0;
    std::uint64_t retired_pages_ = 0;
    std::uint32_t pages_per_plane_;
};

} // namespace camllm::flash

#endif // CAMLLM_FLASH_PLACEMENT_H
