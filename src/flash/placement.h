/**
 * @file
 * Weight placement, capacity accounting and per-plane wear state.
 *
 * Read-compute pages must live on the die whose core will multiply
 * them (plane 0 by convention); read-share pages are striped across
 * every die's plane 1 so ordinary reads can proceed while the compute
 * plane is busy. Placement is bookkeeping for capacity checks and
 * addressing tests; request timing is driven by the channel queues.
 *
 * Every program/erase this map performs — boot seeding, read-share
 * allocation, dead-channel remap rebuilds, retention-refresh
 * re-writes — increments the target plane's P/E counter, so effective
 * wear grows where writes actually land. The fault layer reads that
 * per-plane wear back through planeWear()/planeAge() to derive each
 * read's uncorrectable-page probability, closing the loop between
 * placement policy and the failure schedule.
 */

#ifndef CAMLLM_FLASH_PLACEMENT_H
#define CAMLLM_FLASH_PLACEMENT_H

#include <cstdint>
#include <vector>

#include "flash/address.h"
#include "flash/params.h"

namespace camllm::flash {

/** Placement policy for programs: read-share allocation order,
 *  remap fill order and refresh re-write targets. */
enum class WearPolicy : std::uint8_t
{
    /** Legacy bump/round-robin order (wear-oblivious). */
    Bump = 0,

    /** Least-worn plane first, so program wear levels out instead of
     *  compounding on already-hot planes. */
    LeastWorn = 1,
};

/** Per-plane bump allocator over the whole device. */
class WeightPlacement
{
  public:
    explicit WeightPlacement(const FlashGeometry &g);

    /**
     * Allocate one compute-plane page on channel @p channel, die
     * @p die_in_channel (0 .. diesPerChannel()-1). Spills to the read
     * plane with a warning when the compute plane fills. (Compute
     * pages are die-bound by the tiling, so the wear policy does not
     * reorder them; it governs read-share, remap and refresh
     * programs.)
     */
    PageAddress allocRcPage(std::uint32_t channel,
                            std::uint32_t die_in_channel);

    /** Allocate one read-share page: round-robin across all dies
     *  under Bump, globally least-worn-first under LeastWorn. */
    PageAddress allocReadPage();

    /**
     * Bulk-seed @p pages striped evenly across every plane — the
     * resident weight image as loaded at boot. The fault layer uses
     * this so a dead channel knows how much data it strands. Seeding
     * programs count toward plane wear like any other write.
     */
    void seedStriped(std::uint64_t pages);

    /** Pages currently resident on @p channel (0 once it is dead). */
    std::uint64_t pagesOnChannel(std::uint32_t channel) const;

    /**
     * Channel @p channel died: retire its capacity and move its pages
     * onto the surviving channels' planes, spread as evenly as their
     * free space allows (least-worn survivors first under LeastWorn).
     * Returns the page count moved (the rebuild traffic the caller
     * charges over the surviving buses). Every re-written page
     * programs its destination plane. Fatal when the survivors cannot
     * hold the strands.
     */
    std::uint64_t remapChannel(std::uint32_t channel);

    bool channelDead(std::uint32_t channel) const
    {
        return channel_dead_[channel];
    }

    // --- reserved KV-swap region ---------------------------------------
    /**
     * Carve @p pages out of the device's remaining free capacity as
     * the KV-swap region. Swapped-out KV blocks program into this
     * quota (wear-counted like any other write) and free their pages
     * again when streamed back in. Fatal when the region does not fit
     * the free space; call once.
     */
    void reserveKvRegion(std::uint64_t pages);

    std::uint64_t kvRegionPages() const { return kv_region_pages_; }
    std::uint64_t kvLivePages() const { return kv_live_pages_; }

    /**
     * Program @p pages of swapped-out KV into the region: quota is
     * checked first (false = region full, caller falls back to
     * recompute), then each page's program wear lands on a plane
     * chosen by the wear policy — round-robin over alive planes under
     * Bump, the least-worn alive plane under LeastWorn.
     */
    bool kvProgram(std::uint64_t pages);

    /** Swapped-in (or discarded) KV: return @p pages to the region. */
    void kvFree(std::uint64_t pages);

    std::uint64_t pagesAllocated() const { return allocated_; }

    /** Device capacity excluding retired (dead-channel) planes. */
    std::uint64_t
    capacityPages() const
    {
        return geometry_.totalPages() - retired_pages_;
    }

    /** Fraction of live device pages allocated. Fatal when every
     *  channel is offline (no live capacity to divide by). */
    double occupancy() const;

    /** Remaining free pages across the device. Fatal when every
     *  channel is offline. */
    std::uint64_t freePages() const;

    // --- per-plane wear state ------------------------------------------
    /** Flat plane index for (channel, die-in-channel, plane). */
    std::size_t planeIndex(std::uint32_t channel,
                           std::uint32_t die_in_channel,
                           std::uint32_t plane) const;

    /** Total planes across the device (dead channels included). */
    std::size_t planeCount() const { return next_page_.size(); }

    /** Channel a flat plane index belongs to. */
    std::uint32_t planeChannel(std::size_t idx) const;

    void setWearPolicy(WearPolicy p) { policy_ = p; }
    WearPolicy wearPolicy() const { return policy_; }

    /**
     * Seed per-plane wear: base P/E cycles with an optional linear
     * gradient (plane i's base spans pe_cycles * [1-skew, 1+skew]
     * across the flat plane order) plus the resident image's
     * retention age. Skew models a device whose planes did not wear
     * uniformly before this run — the starting point wear leveling
     * has to work against.
     */
    void seedWear(double pe_cycles, double pe_skew,
                  double retention_hours);

    /** Effective P/E cycles of one plane: seeded base plus programs
     *  performed this run, amortized over the plane's page count. */
    double planeWear(std::size_t idx) const;

    /** Retention age (hours) of the plane's resident data as seeded;
     *  refresh re-writes lower the *effective* age through
     *  planeFreshFraction() instead of rewinding this value. */
    double planeAge(std::size_t idx) const { return age_hours_[idx]; }

    /** Fraction of the plane's resident pages the scrubber has
     *  re-written this run, in [0, 1] (0 when nothing is resident). */
    double planeFreshFraction(std::size_t idx) const;

    /** Record @p n programs landing on plane @p idx. */
    void notePrograms(std::size_t idx, std::uint64_t n);

    /** Account one scrubbed page: plane @p src had a resident page
     *  re-read and re-written onto plane @p dst (where the program
     *  wear lands). */
    void noteRefresh(std::size_t src, std::size_t dst);

    /** Alive plane holding data with the lowest refreshed fraction —
     *  the scrubber's next target. Ties break on the lower index, so
     *  equal-age planes are swept in order. Returns planeCount() when
     *  no alive plane holds data. */
    std::size_t stalestPlane() const;

    /** Alive plane with the lowest effective wear (ties on the lower
     *  index). Returns planeCount() when every channel is dead. */
    std::size_t leastWornPlane() const;

    /** Programs performed this run, summed over every plane. */
    std::uint64_t totalPrograms() const;

    /** max - min effective P/E over alive planes (the wear-leveling
     *  figure of merit). */
    double wearSpreadPe() const;
    double wearMeanPe() const;
    double wearMaxPe() const;

  private:
    PageAddress allocOnPlane(std::uint32_t channel,
                             std::uint32_t die_in_channel,
                             std::uint32_t plane);

    FlashGeometry geometry_;
    std::vector<std::uint32_t> next_page_; ///< per-plane bump cursor
    std::vector<bool> channel_dead_;
    std::uint64_t allocated_ = 0;
    std::uint64_t rr_cursor_ = 0;
    std::uint64_t retired_pages_ = 0;
    std::uint32_t pages_per_plane_;

    std::uint64_t kv_region_pages_ = 0; ///< reserved KV-swap quota
    std::uint64_t kv_live_pages_ = 0;   ///< swapped-out pages resident
    std::uint64_t kv_rr_cursor_ = 0;    ///< Bump-policy program cursor

    WearPolicy policy_ = WearPolicy::Bump;
    std::vector<std::uint64_t> programs_;  ///< programs this run
    std::vector<std::uint64_t> refreshed_; ///< pages scrubbed, per src
    std::vector<double> base_pe_;          ///< seeded lifetime wear
    std::vector<double> age_hours_;        ///< seeded retention age
};

} // namespace camllm::flash

#endif // CAMLLM_FLASH_PLACEMENT_H
