/**
 * @file
 * Weight placement and capacity accounting.
 *
 * Read-compute pages must live on the die whose core will multiply
 * them (plane 0 by convention); read-share pages are striped across
 * every die's plane 1 so ordinary reads can proceed while the compute
 * plane is busy. Placement is bookkeeping for capacity checks and
 * addressing tests; request timing is driven by the channel queues.
 */

#ifndef CAMLLM_FLASH_PLACEMENT_H
#define CAMLLM_FLASH_PLACEMENT_H

#include <cstdint>
#include <vector>

#include "flash/address.h"
#include "flash/params.h"

namespace camllm::flash {

/** Per-plane bump allocator over the whole device. */
class WeightPlacement
{
  public:
    explicit WeightPlacement(const FlashGeometry &g);

    /**
     * Allocate one compute-plane page on channel @p channel, die
     * @p die_in_channel (0 .. diesPerChannel()-1). Spills to the read
     * plane with a warning when the compute plane fills.
     */
    PageAddress allocRcPage(std::uint32_t channel,
                            std::uint32_t die_in_channel);

    /** Allocate one read-share page, round-robin across all dies. */
    PageAddress allocReadPage();

    std::uint64_t pagesAllocated() const { return allocated_; }
    std::uint64_t capacityPages() const { return geometry_.totalPages(); }

    /** Fraction of total device pages allocated. */
    double
    occupancy() const
    {
        return double(allocated_) / double(capacityPages());
    }

    /** Remaining free pages across the device. */
    std::uint64_t freePages() const { return capacityPages() - allocated_; }

  private:
    /** Flat plane index for (channel, die-in-channel, plane). */
    std::size_t planeIndex(std::uint32_t channel,
                           std::uint32_t die_in_channel,
                           std::uint32_t plane) const;

    PageAddress allocOnPlane(std::uint32_t channel,
                             std::uint32_t die_in_channel,
                             std::uint32_t plane);

    FlashGeometry geometry_;
    std::vector<std::uint32_t> next_page_; ///< per-plane bump cursor
    std::uint64_t allocated_ = 0;
    std::uint64_t rr_cursor_ = 0;
    std::uint32_t pages_per_plane_;
};

} // namespace camllm::flash

#endif // CAMLLM_FLASH_PLACEMENT_H
