/**
 * @file
 * Timing model of one flash die with on-die processing.
 *
 * Per the Cambricon-LLM design each die has two planes and one shared
 * Compute Core. One plane is dedicated to the read-compute stream (its
 * pages feed the core) while the other serves ordinary page reads that
 * stream weights to the NPU. Each plane has a data register (filled by
 * the tR array read) and a cache register (drained by the core or the
 * channel), giving the classic two-stage pipeline: the next array read
 * overlaps the consumption of the previous page.
 */

#ifndef CAMLLM_FLASH_DIE_H
#define CAMLLM_FLASH_DIE_H

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

#include "flash/bus.h"
#include "flash/fault.h"
#include "flash/params.h"
#include "flash/work.h"
#include "sim/event_queue.h"

namespace camllm::flash {

/** Event-driven model of one on-die-processing flash die. */
class DieModel
{
  public:
    /** Upcalls into the per-channel scheduler. */
    struct Callbacks
    {
        /** Is tile @p tile_seq's input vector in the input buffer? */
        std::function<bool(std::uint32_t tile_seq)> input_ready;
        /** A compute result finished its bus grant. */
        std::function<void(const RcPageJob &)> rc_result_delivered;
        /** A read page finished its last bus slice. */
        std::function<void(const ReadPageJob &)> read_delivered;
        /** The read plane can accept another job. */
        std::function<void()> read_slot_free;
        /** A failed sense's page crossed the bus before the
         *  controller's ECC rejected it (retry-traffic accounting).
         *  Null when no fault model is armed. */
        std::function<void(const ReadPageJob &)> retry_drained;
    };

    /** @p channel / @p die_in_channel identify this die so a wear-
     *  tracking fault model can look up the target plane's state. */
    DieModel(EventQueue &eq, ChannelBus &bus, const FlashParams &params,
             Callbacks cbs, std::uint32_t channel = 0,
             std::uint32_t die_in_channel = 0)
        : eq_(eq), bus_(bus), params_(params), cbs_(std::move(cbs)),
          channel_(channel), die_(die_in_channel)
    {
    }

    // --- read-compute stream ---------------------------------------
    /** Queue an atomic-tile page for the compute plane. */
    void pushRcJob(const RcPageJob &job);

    /** Re-evaluate the core (called when an input vector arrives). */
    void notifyInputArrived() { advanceRc(); }

    /** Jobs queued or in flight on the compute plane. */
    std::size_t rcBacklog() const;

    // --- ordinary read stream ---------------------------------------
    /** @return true when the read plane can start another array read. */
    bool canAcceptRead() const;

    /** Start a page read for the NPU. @pre canAcceptRead(). */
    void pushReadJob(const ReadPageJob &job);

    // --- fault injection ---------------------------------------------
    /** Arm soft read failures; @p fault must outlive the die. */
    void setFaultModel(FaultModel *fault) { fault_ = fault; }

    /**
     * The channel died: stop reacting to anything still scheduled.
     * Events already in the queue fire as no-ops (the EventQueue has
     * no cancellation); pipeline registers are deliberately left
     * populated because pending bus-drain lambdas still dereference
     * them.
     */
    void setOffline() { offline_ = true; }

    /** Collect the read jobs resident in this die's pipeline slots so
     *  the facade can re-issue them on a surviving channel. */
    void collectReads(std::vector<ReadPageJob> &out) const;

    // --- statistics ---------------------------------------------------
    std::uint64_t pagesComputed() const { return pages_computed_; }
    std::uint64_t pagesRead() const { return pages_read_; }
    std::uint64_t arrayReads() const { return array_reads_; }
    std::uint64_t retryReads() const { return retry_reads_; }
    const BusyTracker &coreBusy() const { return core_busy_stat_; }

  private:
    void advanceRc();
    void advanceRead();
    void startRcSense(std::uint32_t attempt, std::uint32_t retries);
    void startReadSense(std::uint32_t attempt, std::uint32_t retries);
    void drainFailedRead(std::uint32_t attempt, std::uint32_t retries);

    /** Ladder draw for a fresh sense of @p plane: per-plane wear when
     *  the fault model tracks it, the uniform spec draw otherwise. */
    std::uint32_t drawFor(std::uint32_t plane);

    /** Plane ordinary reads are served from (the read-share plane
     *  when the die has more than one). */
    std::uint32_t readPlane() const
    {
        return params_.geometry.planes_per_die > 1 ? 1 : 0;
    }

    EventQueue &eq_;
    ChannelBus &bus_;
    FlashParams params_;
    Callbacks cbs_;
    std::uint32_t channel_ = 0;
    std::uint32_t die_ = 0;

    // read-compute plane pipeline
    std::deque<RcPageJob> rc_queue_;
    std::optional<RcPageJob> rc_reading_;  ///< array read in flight
    std::optional<RcPageJob> rc_data_reg_;
    std::optional<RcPageJob> rc_cache_reg_;
    bool rc_moving_ = false; ///< data->cache move in flight
    bool core_busy_ = false;

    // read plane pipeline
    std::optional<ReadPageJob> rd_reading_;
    std::optional<ReadPageJob> rd_data_reg_;
    std::optional<ReadPageJob> rd_cache_reg_;
    bool rd_moving_ = false;
    bool rd_draining_ = false; ///< slices of cache page on the bus

    FaultModel *fault_ = nullptr;
    bool offline_ = false;

    std::uint64_t pages_computed_ = 0;
    std::uint64_t pages_read_ = 0;
    std::uint64_t array_reads_ = 0;
    std::uint64_t retry_reads_ = 0;
    BusyTracker core_busy_stat_;
};

} // namespace camllm::flash

#endif // CAMLLM_FLASH_DIE_H
