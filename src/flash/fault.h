/**
 * @file
 * Deterministic fault injection for the flash device.
 *
 * Two fault families, both driven from one seeded spec so a run's
 * fault timeline is a pure function of (spec, event order):
 *
 *  - Soft read failures: every array read draws against an
 *    uncorrectable-page probability derived from the RBER/retention
 *    model in src/ecc/retention.h (older, more worn data fails more
 *    often). A failed sense climbs a NAND-style read-retry ladder —
 *    re-reads at escalating sense latencies — until a rung sticks;
 *    the ladder's last rung always decodes (it stands in for the
 *    strongest sense level plus soft-decision decode).
 *
 *  - Channel degradation: a fault schedule of slowdown(factor, t0,
 *    t1) windows and permanent offline(t0) events. An offline channel
 *    strands its resident weight pages; WeightPlacement remaps them
 *    across the survivors and the rebuild traffic is charged over the
 *    surviving buses.
 *
 * On top of those, the reliability co-design knobs (all default-off):
 * per-plane wear tracking derives each read's UCP from the *target
 * plane's* tracked P/E and age instead of the uniform spec scalars;
 * an ECC correction strength replaces the hand-set ucp_rate with the
 * binomial codeword tail of the read's raw BER (stronger ECC senses
 * slower but collapses the retry tail far faster than the geometric
 * ladder decay); and a background refresh rate scrubs the
 * oldest-resident pages through the normal channel queues.
 *
 * The model owns a single Rng consumed in event order. Each serve()
 * run is single threaded, so identical specs give identical fault
 * timelines regardless of how many sweep runs execute in parallel.
 */

#ifndef CAMLLM_FLASH_FAULT_H
#define CAMLLM_FLASH_FAULT_H

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/units.h"
#include "flash/placement.h"

namespace camllm::flash {

/** Read-retry ladder shape (applied per failed array read). */
struct RetryLadder
{
    /** Re-reads allowed after the initial failed sense; the last rung
     *  always succeeds. */
    std::uint32_t max_retries = 4;

    /** tR multiplier per rung: attempt k senses for t_read * esc^k. */
    double sense_escalation = 1.5;

    /** Each rung's shifted read level is likelier to decode: rung k
     *  fails with ucp * decay^k. With an ECC strength armed the decay
     *  applies to the raw BER instead and each rung's failure
     *  probability is re-derived from the codeword tail, which falls
     *  much faster than geometrically for strong codes. */
    double retry_fail_decay = 0.25;
};

/** One scheduled channel-degradation event. */
struct ChannelFault
{
    std::uint32_t channel = 0;
    double slowdown = 1.0; ///< bus-rate divisor during [t0, t1)
    Tick t0 = 0;
    Tick t1 = 0;           ///< slowdown end (ignored when offline)
    bool offline = false;  ///< channel dies permanently at t0
};

/** Everything needed to reproduce a fault timeline. */
struct FaultSpec
{
    /** Uncorrectable-page probability per fresh array read, before
     *  retention/wear scaling. 0 disables soft read failures.
     *  Ignored when ecc_correctable_bits > 0 (the UCP then derives
     *  from the codeword tail instead of this hand-set rate). */
    double ucp_rate = 0.0;

    /** Modeled data age / wear: scales ucp_rate by
     *  retentionBer(hours, pe) / base_ber, so the same knob that
     *  drives bench_fig03b drives runtime failures. 0/0 = fresh.
     *  With wear_tracking these also seed the per-plane state. */
    double retention_hours = 0.0;
    double pe_cycles = 0.0;

    std::uint64_t seed = 1;
    RetryLadder ladder;
    std::vector<ChannelFault> channel_faults;

    /** Resident weight bytes, used to size the remap performed when a
     *  channel goes offline and to seed the wear/refresh placement
     *  map. The scheduler fills this from the model config when it
     *  arms faults; standalone users set it directly. */
    std::uint64_t model_weight_bytes = 0;

    /** Bus-grant granularity of remap rebuild traffic. */
    std::uint32_t remap_chunk_bytes = 1u << 20;

    // --- reliability co-design (defaults arm nothing new) --------------
    /**
     * Derive each read's UCP from the *target plane's* tracked wear
     * and age instead of the uniform spec scalars, so planes that
     * absorb programs (seeding, remap rebuilds, refresh re-writes)
     * fail more and the per-channel fault schedule emerges from
     * traffic. Requires model_weight_bytes (the scheduler fills it).
     */
    bool wear_tracking = false;

    /** Placement policy for programs; see WearPolicy. */
    WearPolicy wear_policy = WearPolicy::Bump;

    /** Initial per-plane P/E gradient: base wear spans
     *  pe_cycles * [1-skew, 1+skew] across the flat plane order
     *  (the uneven starting profile wear leveling works against). */
    double wear_skew = 0.0;

    /**
     * On-die ECC correction strength in correctable bits per
     * codeword. 0 keeps the legacy ucp_rate path. > 0 derives every
     * ladder rung's failure probability from ecc::pageUcp at the
     * read's raw BER; stronger ECC costs sense latency
     * (ecc_sense_per_bit) and decoder area (core::eccDecoderAreaUm2)
     * but flattens the retry tail.
     */
    std::uint32_t ecc_correctable_bits = 0;

    /** Payload bytes one codeword protects. */
    std::uint32_t ecc_codeword_bytes = 1024;

    /** Fractional tR adder per correctable bit: every sense (retry
     *  rungs included) takes t_read * (1 + bits * this) — the finer
     *  soft-sense precision a stronger decoder needs. */
    double ecc_sense_per_bit = 0.004;

    /**
     * Background retention-scrub rate in pages per second (0 = off).
     * Each scrubbed page is read through the normal channel queues
     * under WorkClass::Refresh and re-written over the channel bus,
     * so refresh competes with serving reads for exactly the
     * bandwidth it consumes.
     */
    double refresh_pages_per_s = 0.0;

    /** Convenience builders for the fault schedule. */
    void addSlowdown(std::uint32_t channel, double factor, Tick t0, Tick t1);
    void addOffline(std::uint32_t channel, Tick t0);

    /**
     * ucp_rate after retention/wear scaling. Saturation ownership:
     * ecc::retentionBer owns *raw-bit* saturation and clamps the BER
     * to [0, 0.5); this layer owns page-level saturation and clamps
     * every derived *uncorrectable-page* probability to [0, 0.9], so
     * the retry ladder always keeps decodable rungs to climb toward.
     */
    double effectiveUcpRate() const;

    /** Does this spec inject anything at all? */
    bool
    any() const
    {
        return effectiveUcpRate() > 0.0 || !channel_faults.empty() ||
               wear_tracking || ecc_correctable_bits > 0 ||
               refresh_pages_per_s > 0.0;
    }
};

/** Seeded runtime state shared by every die of one FlashSystem. */
class FaultModel
{
  public:
    explicit FaultModel(const FaultSpec &spec,
                        std::uint32_t page_bytes = 16384);

    const FaultSpec &spec() const { return spec_; }

    /**
     * Retry rungs a fresh array read will climb before it decodes
     * (0 = clean first sense), at the uniform spec-level wear.
     * Consumes the shared random stream in event order, which is what
     * makes the timeline deterministic.
     */
    std::uint32_t drawRetries();

    /**
     * drawRetries with the rung probabilities derived from the target
     * plane's tracked wear, age and refreshed fraction. Falls back to
     * the uniform draw when no wear source is armed, so dies can call
     * it unconditionally.
     */
    std::uint32_t drawRetriesForPlane(std::uint32_t channel,
                                      std::uint32_t die_in_channel,
                                      std::uint32_t plane);

    /** Attach the placement map whose per-plane wear drives
     *  drawRetriesForPlane; must outlive the model. */
    void setWearSource(const WeightPlacement *placement)
    {
        wear_ = placement;
    }

    bool wearAware() const { return wear_ != nullptr; }

    /** UCP a read of data at @p age_hours / @p pe_cycles sees under
     *  this spec (ECC codeword tail when armed, scaled ucp_rate
     *  otherwise), before ladder decay. Clamped to [0, 0.9]. */
    double ucpAt(double age_hours, double pe_cycles) const;

    /** Sense latency of attempt @p attempt. Attempt 0 at default ECC
     *  strength is the base tR, exactly; an armed ECC strength
     *  multiplies every attempt by the soft-sense factor. */
    Tick senseTime(Tick t_read, std::uint32_t attempt) const;

    /** tR multiplier the armed ECC strength imposes on every sense. */
    double eccSenseScale() const;

    std::uint64_t drawsTaken() const { return draws_; }

  private:
    /** Climb the ladder from first-sense probability @p ucp0; @p ber0
     *  seeds the per-rung codeword-tail recompute when ECC is armed. */
    std::uint32_t climbLadder(double ucp0, double ber0);

    FaultSpec spec_;
    std::uint32_t page_bytes_;
    double ucp_;          ///< uniform first-sense UCP
    double uniform_ber_;  ///< raw BER at the spec scalars
    Rng rng_;
    std::uint64_t draws_ = 0;
    const WeightPlacement *wear_ = nullptr;
};

} // namespace camllm::flash

#endif // CAMLLM_FLASH_FAULT_H
