/**
 * @file
 * Deterministic fault injection for the flash device.
 *
 * Two fault families, both driven from one seeded spec so a run's
 * fault timeline is a pure function of (spec, event order):
 *
 *  - Soft read failures: every array read draws against an
 *    uncorrectable-page probability derived from the RBER/retention
 *    model in src/ecc/retention.h (older, more worn data fails more
 *    often). A failed sense climbs a NAND-style read-retry ladder —
 *    re-reads at escalating sense latencies — until a rung sticks;
 *    the ladder's last rung always decodes (it stands in for the
 *    strongest sense level plus soft-decision decode).
 *
 *  - Channel degradation: a fault schedule of slowdown(factor, t0,
 *    t1) windows and permanent offline(t0) events. An offline channel
 *    strands its resident weight pages; WeightPlacement remaps them
 *    across the survivors and the rebuild traffic is charged over the
 *    surviving buses.
 *
 * The model owns a single Rng consumed in event order. Each serve()
 * run is single threaded, so identical specs give identical fault
 * timelines regardless of how many sweep runs execute in parallel.
 */

#ifndef CAMLLM_FLASH_FAULT_H
#define CAMLLM_FLASH_FAULT_H

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/units.h"

namespace camllm::flash {

/** Read-retry ladder shape (applied per failed array read). */
struct RetryLadder
{
    /** Re-reads allowed after the initial failed sense; the last rung
     *  always succeeds. */
    std::uint32_t max_retries = 4;

    /** tR multiplier per rung: attempt k senses for t_read * esc^k. */
    double sense_escalation = 1.5;

    /** Each rung's shifted read level is likelier to decode: rung k
     *  fails with ucp * decay^k. */
    double retry_fail_decay = 0.25;
};

/** One scheduled channel-degradation event. */
struct ChannelFault
{
    std::uint32_t channel = 0;
    double slowdown = 1.0; ///< bus-rate divisor during [t0, t1)
    Tick t0 = 0;
    Tick t1 = 0;           ///< slowdown end (ignored when offline)
    bool offline = false;  ///< channel dies permanently at t0
};

/** Everything needed to reproduce a fault timeline. */
struct FaultSpec
{
    /** Uncorrectable-page probability per fresh array read, before
     *  retention/wear scaling. 0 disables soft read failures. */
    double ucp_rate = 0.0;

    /** Modeled data age / wear: scales ucp_rate by
     *  retentionBer(hours, pe) / base_ber, so the same knob that
     *  drives bench_fig03b drives runtime failures. 0/0 = fresh. */
    double retention_hours = 0.0;
    double pe_cycles = 0.0;

    std::uint64_t seed = 1;
    RetryLadder ladder;
    std::vector<ChannelFault> channel_faults;

    /** Resident weight bytes, used to size the remap performed when a
     *  channel goes offline. The scheduler fills this from the model
     *  config when it arms faults; standalone users set it directly. */
    std::uint64_t model_weight_bytes = 0;

    /** Bus-grant granularity of remap rebuild traffic. */
    std::uint32_t remap_chunk_bytes = 1u << 20;

    /** Convenience builders for the fault schedule. */
    void addSlowdown(std::uint32_t channel, double factor, Tick t0, Tick t1);
    void addOffline(std::uint32_t channel, Tick t0);

    /** ucp_rate after retention/wear scaling, clamped to [0, 0.9]. */
    double effectiveUcpRate() const;

    /** Does this spec inject anything at all? */
    bool
    any() const
    {
        return effectiveUcpRate() > 0.0 || !channel_faults.empty();
    }
};

/** Seeded runtime state shared by every die of one FlashSystem. */
class FaultModel
{
  public:
    explicit FaultModel(const FaultSpec &spec)
        : spec_(spec), ucp_(spec.effectiveUcpRate()), rng_(spec.seed)
    {
    }

    const FaultSpec &spec() const { return spec_; }

    /**
     * Retry rungs a fresh array read will climb before it decodes
     * (0 = clean first sense). Consumes the shared random stream in
     * event order, which is what makes the timeline deterministic.
     */
    std::uint32_t drawRetries();

    /** Sense latency of attempt @p attempt (0 = base tR, exactly). */
    Tick senseTime(Tick t_read, std::uint32_t attempt) const;

    std::uint64_t drawsTaken() const { return draws_; }

  private:
    FaultSpec spec_;
    double ucp_;
    Rng rng_;
    std::uint64_t draws_ = 0;
};

} // namespace camllm::flash

#endif // CAMLLM_FLASH_FAULT_H
