#include "channel_engine.h"

#include "common/logging.h"

namespace camllm::flash {

ChannelEngine::ChannelEngine(EventQueue &eq, const FlashParams &params,
                             CompletionRouter &router,
                             std::uint32_t tile_window,
                             bool slice_control,
                             std::uint32_t channel_index)
    : eq_(eq), params_(params), router_(router),
      tile_window_(tile_window), channel_index_(channel_index),
      bus_(eq, params.timing.busBytesPerNs(), params.timing.grant_overhead,
           slice_control)
{
    CAMLLM_ASSERT(tile_window_ > 0);
    const std::uint32_t n_dies = params_.geometry.diesPerChannel();
    DieModel::Callbacks cbs;
    cbs.input_ready = [this](std::uint32_t seq) { return inputReady(seq); };
    cbs.rc_result_delivered = [this](const RcPageJob &j) {
        onRcResultDelivered(j);
    };
    cbs.read_delivered = [this](const ReadPageJob &j) { onReadDelivered(j); };
    cbs.read_slot_free = [this] { dispatchReads(); };
    cbs.retry_drained = [this](const ReadPageJob &j) { onRetryDrained(j); };
    dies_.reserve(n_dies);
    for (std::uint32_t i = 0; i < n_dies; ++i)
        dies_.push_back(std::make_unique<DieModel>(eq_, bus_, params_, cbs,
                                                   channel_index_, i));
}

void
ChannelEngine::submitTile(const RcTileWork &tile)
{
    CAMLLM_ASSERT(!offline_, "tile submitted to an offline channel");
    CAMLLM_ASSERT(tile.cores_used > 0 && tile.cores_used <= dies_.size(),
                  "tile uses %u cores, channel has %zu dies",
                  tile.cores_used, dies_.size());
    CAMLLM_ASSERT(tile.input_bytes > 0 && tile.out_bytes_per_core > 0);
    tile_queue_.push_back(tile);
    tryActivate();
}

void
ChannelEngine::submitRead(const ReadPageJob &job)
{
    CAMLLM_ASSERT(!offline_, "read submitted to an offline channel");
    read_queue_.push_back(job);
    dispatchReads();
}

void
ChannelEngine::setFaultModel(FaultModel *fault)
{
    for (auto &die : dies_)
        die->setFaultModel(fault);
}

ChannelEngine::OfflineWork
ChannelEngine::failOffline()
{
    CAMLLM_ASSERT(!offline_, "channel failed twice");
    offline_ = true;
    for (auto &die : dies_)
        die->setOffline();

    OfflineWork w;
    // Queued tiles re-issue verbatim; an active tile re-issues only
    // its unfinished cores (delivered results already reached their
    // client and must not be produced twice). The input broadcast is
    // repeated on the new channel either way — its cores have empty
    // input buffers.
    for (const RcTileWork &t : tile_queue_)
        w.tiles.push_back(t);
    tile_queue_.clear();
    for (const auto &[seq, tile] : active_) {
        if (tile.results_remaining == 0)
            continue;
        RcTileWork t = tile.work;
        t.cores_used = tile.results_remaining;
        w.tiles.push_back(t);
    }
    // active_ stays populated: late die events still consult
    // inputReady() through cbs_, and the entries are dead weight, not
    // dangling state.

    for (const ReadPageJob &j : read_queue_)
        w.reads.push_back(j);
    read_queue_.clear();
    for (const auto &die : dies_)
        die->collectReads(w.reads);
    return w;
}

void
ChannelEngine::tryActivate()
{
    while (active_.size() < tile_window_ && !tile_queue_.empty()) {
        RcTileWork tile = tile_queue_.front();
        tile_queue_.pop_front();
        const std::uint32_t seq = next_tile_seq_++;
        active_.emplace(seq, ActiveTile{tile, tile.cores_used, false});

        // Broadcast the input slice to every engaged core's input
        // buffer; a single grant serves all chips on the bus.
        bus_.request(BusPriority::High, tile.input_bytes,
                     [this, seq] {
                         if (offline_)
                             return;
                         auto it = active_.find(seq);
                         CAMLLM_ASSERT(it != active_.end());
                         it->second.input_ready = true;
                         for (auto &die : dies_)
                             die->notifyInputArrived();
                     },
                     "rc-input");

        RcPageJob job;
        job.client = tile.client;
        job.cls = tile.cls;
        job.op_id = tile.op_id;
        job.tile_seq = seq;
        job.out_bytes = tile.out_bytes_per_core;
        job.compute_time = tile.compute_time;
        for (std::uint32_t c = 0; c < tile.cores_used; ++c)
            dies_[c]->pushRcJob(job);
    }
}

void
ChannelEngine::dispatchReads()
{
    if (read_queue_.empty())
        return;
    // Round-robin over dies so read service spreads across planes.
    const std::size_t n = dies_.size();
    for (std::size_t probe = 0; probe < n && !read_queue_.empty(); ++probe) {
        std::size_t d = (rr_die_ + probe) % n;
        if (dies_[d]->canAcceptRead()) {
            dies_[d]->pushReadJob(read_queue_.front());
            read_queue_.pop_front();
            rr_die_ = (d + 1) % n;
        }
    }
}

bool
ChannelEngine::inputReady(std::uint32_t tile_seq) const
{
    auto it = active_.find(tile_seq);
    CAMLLM_ASSERT(it != active_.end(),
                  "compute references inactive tile %u", tile_seq);
    return it->second.input_ready;
}

void
ChannelEngine::onRcResultDelivered(const RcPageJob &job)
{
    if (offline_)
        return;
    auto it = active_.find(job.tile_seq);
    CAMLLM_ASSERT(it != active_.end());
    CAMLLM_ASSERT(it->second.results_remaining > 0);
    if (--it->second.results_remaining == 0) {
        active_.erase(it);
        tryActivate();
    }
    Completion c;
    c.kind = Completion::Kind::RcResult;
    c.client = job.client;
    c.cls = job.cls;
    c.op_id = job.op_id;
    delivered_bytes_[std::size_t(job.cls)] += job.out_bytes;
    router_.deliver(c);
}

void
ChannelEngine::onReadDelivered(const ReadPageJob &job)
{
    if (offline_)
        return;
    Completion c;
    c.kind = Completion::Kind::ReadData;
    c.client = job.client;
    c.cls = job.cls;
    c.op_id = job.op_id;
    c.bytes = job.bytes;
    delivered_bytes_[std::size_t(job.cls)] += job.bytes;
    router_.deliver(c);
    dispatchReads();
}

std::uint64_t
ChannelEngine::pagesComputed() const
{
    std::uint64_t n = 0;
    for (const auto &d : dies_)
        n += d->pagesComputed();
    return n;
}

std::uint64_t
ChannelEngine::pagesRead() const
{
    std::uint64_t n = 0;
    for (const auto &d : dies_)
        n += d->pagesRead();
    return n;
}

std::uint64_t
ChannelEngine::arrayReads() const
{
    std::uint64_t n = 0;
    for (const auto &d : dies_)
        n += d->arrayReads();
    return n;
}

std::uint64_t
ChannelEngine::retryReads() const
{
    std::uint64_t n = 0;
    for (const auto &d : dies_)
        n += d->retryReads();
    return n;
}

void
ChannelEngine::onRetryDrained(const ReadPageJob &job)
{
    if (offline_)
        return;
    delivered_bytes_[std::size_t(WorkClass::Retry)] += job.bytes;
}

} // namespace camllm::flash
