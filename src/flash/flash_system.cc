#include "flash_system.h"

#include "common/logging.h"

namespace camllm::flash {

FlashSystem::FlashSystem(EventQueue &eq, const FlashParams &params,
                         std::uint32_t tile_window, bool slice_control)
    : params_(params), router_(eq)
{
    if (!params_.valid())
        fatal("invalid flash configuration");
    channels_.reserve(params_.geometry.channels);
    for (std::uint32_t c = 0; c < params_.geometry.channels; ++c) {
        channels_.push_back(std::make_unique<ChannelEngine>(
            eq, params_, router_, tile_window, slice_control));
    }
}

double
FlashSystem::avgChannelUtilization(Tick elapsed) const
{
    if (elapsed == 0 || channels_.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &ch : channels_)
        sum += ch->bus().busy().utilization(elapsed);
    return sum / double(channels_.size());
}

std::uint64_t
FlashSystem::channelBytes() const
{
    return channelBytesHigh() + channelBytesLow();
}

std::uint64_t
FlashSystem::channelBytesHigh() const
{
    std::uint64_t n = 0;
    for (const auto &ch : channels_)
        n += ch->bus().bytesHigh();
    return n;
}

std::uint64_t
FlashSystem::channelBytesLow() const
{
    std::uint64_t n = 0;
    for (const auto &ch : channels_)
        n += ch->bus().bytesLow();
    return n;
}

std::uint64_t
FlashSystem::pagesComputed() const
{
    std::uint64_t n = 0;
    for (const auto &ch : channels_)
        n += ch->pagesComputed();
    return n;
}

std::uint64_t
FlashSystem::pagesRead() const
{
    std::uint64_t n = 0;
    for (const auto &ch : channels_)
        n += ch->pagesRead();
    return n;
}

std::uint64_t
FlashSystem::arrayReads() const
{
    std::uint64_t n = 0;
    for (const auto &ch : channels_)
        n += ch->arrayReads();
    return n;
}

std::uint64_t
FlashSystem::deliveredBytes(WorkClass cls) const
{
    std::uint64_t n = 0;
    for (const auto &ch : channels_)
        n += ch->deliveredBytes(cls);
    return n;
}

double
FlashSystem::busBusySum() const
{
    double sum = 0.0;
    for (const auto &ch : channels_)
        sum += double(ch->bus().busy().busyTicks());
    return sum;
}

} // namespace camllm::flash
