#include "flash_system.h"

#include <algorithm>

#include "common/logging.h"

namespace camllm::flash {

FlashSystem::FlashSystem(EventQueue &eq, const FlashParams &params,
                         std::uint32_t tile_window, bool slice_control)
    : eq_(eq), params_(params), router_(eq)
{
    if (!params_.valid())
        fatal("invalid flash configuration");
    channels_.reserve(params_.geometry.channels);
    for (std::uint32_t c = 0; c < params_.geometry.channels; ++c) {
        channels_.push_back(std::make_unique<ChannelEngine>(
            eq, params_, router_, tile_window, slice_control, c));
    }
}

double
FlashSystem::avgChannelUtilization(Tick elapsed) const
{
    if (elapsed == 0 || channels_.empty())
        return 0.0;
    double sum = 0.0;
    for (const auto &ch : channels_)
        sum += ch->bus().busy().utilization(elapsed);
    return sum / double(channels_.size());
}

std::uint64_t
FlashSystem::channelBytes() const
{
    return channelBytesHigh() + channelBytesLow();
}

std::uint64_t
FlashSystem::channelBytesHigh() const
{
    std::uint64_t n = 0;
    for (const auto &ch : channels_)
        n += ch->bus().bytesHigh();
    return n;
}

std::uint64_t
FlashSystem::channelBytesLow() const
{
    std::uint64_t n = 0;
    for (const auto &ch : channels_)
        n += ch->bus().bytesLow();
    return n;
}

std::uint64_t
FlashSystem::pagesComputed() const
{
    std::uint64_t n = 0;
    for (const auto &ch : channels_)
        n += ch->pagesComputed();
    return n;
}

std::uint64_t
FlashSystem::pagesRead() const
{
    std::uint64_t n = 0;
    for (const auto &ch : channels_)
        n += ch->pagesRead();
    return n;
}

std::uint64_t
FlashSystem::arrayReads() const
{
    std::uint64_t n = 0;
    for (const auto &ch : channels_)
        n += ch->arrayReads();
    return n;
}

std::uint64_t
FlashSystem::deliveredBytes(WorkClass cls) const
{
    std::uint64_t n = 0;
    for (const auto &ch : channels_)
        n += ch->deliveredBytes(cls);
    return n;
}

double
FlashSystem::busBusySum() const
{
    double sum = 0.0;
    for (const auto &ch : channels_)
        sum += double(ch->bus().busy().busyTicks());
    return sum;
}

std::uint64_t
FlashSystem::retryReads() const
{
    std::uint64_t n = 0;
    for (const auto &ch : channels_)
        n += ch->retryReads();
    return n;
}

std::uint32_t
FlashSystem::aliveChannels() const
{
    std::uint32_t n = 0;
    for (const auto &ch : channels_)
        n += ch->offline() ? 0 : 1;
    return n;
}

void
FlashSystem::armFaults(const FaultSpec &spec)
{
    CAMLLM_ASSERT(!fault_model_, "faults armed twice");
    if (!spec.any())
        return;
    fault_model_ =
        std::make_unique<FaultModel>(spec, params_.geometry.page_bytes);
    for (auto &ch : channels_)
        ch->setFaultModel(fault_model_.get());

    bool any_offline = false;
    for (const ChannelFault &f : spec.channel_faults) {
        CAMLLM_ASSERT(f.channel < channelCount(),
                      "fault on channel %u of %u", f.channel,
                      channelCount());
        any_offline = any_offline || f.offline;
    }

    // A dead channel strands its share of the resident weights; wear
    // tracking and the retention scrubber need the same map for their
    // per-plane state. Seed it whenever any of the three is armed.
    const bool wear_armed =
        spec.wear_tracking || spec.refresh_pages_per_s > 0.0;
    if ((any_offline || wear_armed) && spec.model_weight_bytes > 0) {
        placement_ = std::make_unique<WeightPlacement>(params_.geometry);
        placement_->setWearPolicy(spec.wear_policy);
        const std::uint64_t pages =
            (spec.model_weight_bytes + params_.geometry.page_bytes - 1) /
            params_.geometry.page_bytes;
        placement_->seedStriped(pages);
        placement_->seedWear(spec.pe_cycles, spec.wear_skew,
                             spec.retention_hours);
    } else if (wear_armed) {
        warn("wear tracking / refresh armed without model_weight_bytes; "
             "falling back to uniform wear");
    }

    if (spec.wear_tracking && placement_)
        fault_model_->setWearSource(placement_.get());
    if (spec.refresh_pages_per_s > 0.0 && placement_)
        startRefresh(spec.refresh_pages_per_s);

    for (const ChannelFault &f : spec.channel_faults) {
        if (f.offline) {
            eq_.schedule(f.t0,
                         [this, c = f.channel] { takeChannelOffline(c); });
        } else {
            eq_.schedule(f.t0, [this, c = f.channel, s = f.slowdown] {
                if (!channels_[c]->offline())
                    channels_[c]->bus().setRateScale(1.0 / s);
            });
            eq_.schedule(f.t1, [this, c = f.channel] {
                if (!channels_[c]->offline())
                    channels_[c]->bus().setRateScale(1.0);
            });
        }
    }
}

std::uint32_t
FlashSystem::route(std::uint32_t ch)
{
    if (!channels_[ch]->offline())
        return ch;
    const std::uint32_t n = channelCount();
    for (std::uint32_t probe = 0; probe < n; ++probe) {
        const std::uint32_t c = (ch + 1 + redirect_rr_ + probe) % n;
        if (!channels_[c]->offline()) {
            redirect_rr_ = (redirect_rr_ + 1) % n;
            return c;
        }
    }
    fatal("all flash channels are offline");
}

void
FlashSystem::takeChannelOffline(std::uint32_t ch)
{
    if (channels_[ch]->offline())
        return;
    CAMLLM_ASSERT(aliveChannels() > 1, "cannot lose the last channel");
    ++channels_lost_;
    warn("flash channel %u went offline (%u surviving)", ch,
         aliveChannels() - 1);

    ChannelEngine::OfflineWork stranded = channels_[ch]->failOffline();

    // One-time rebuild: the dead channel's resident pages re-stripe
    // across the survivors, and the copy-in traffic occupies their
    // buses as bulk low-priority grants.
    if (placement_) {
        const std::uint64_t pages = placement_->remapChannel(ch);
        std::uint64_t bytes = pages * params_.geometry.page_bytes;
        remap_bytes_ += bytes;
        const std::uint32_t chunk =
            fault_model_->spec().remap_chunk_bytes;
        while (bytes > 0) {
            const std::uint64_t b = std::min<std::uint64_t>(chunk, bytes);
            bytes -= b;
            const std::uint32_t c = route(ch);
            channels_[c]->bus().request(BusPriority::Low, b, [] {},
                                        "remap");
        }
    }

    // Stranded jobs complete-with-failure on the dead channel (their
    // completions are suppressed) and re-issue on the survivors.
    reissued_jobs_ += stranded.tiles.size() + stranded.reads.size();
    for (const RcTileWork &t : stranded.tiles)
        submitTile(ch, t);
    for (const ReadPageJob &j : stranded.reads)
        submitRead(ch, j);
}

void
FlashSystem::startRefresh(double pages_per_s)
{
    CAMLLM_ASSERT(pages_per_s > 0.0);
    refresh_armed_ = true;
    refresh_interval_ =
        std::max<Tick>(1, Tick(double(kSec) / pages_per_s));
    refresh_client_ = router_.connect(
        [this](const Completion &c) { onRefreshCompletion(c); });
    eq_.scheduleIn(refresh_interval_, [this] { refreshTick(); });
}

/**
 * One scrub beat: re-read one page of the stalest alive plane through
 * the normal channel queue (WorkClass::Refresh), then re-write it on
 * delivery. The beat self-reschedules at a fixed cadence, but is
 * closed-loop: while the previous scrub op (read + write-back) is
 * still in flight the beat defers instead of issuing, so a rate above
 * die/bus capacity degrades to "scrub as fast as the hardware allows"
 * rather than growing the channel queues without bound.
 */
void
FlashSystem::refreshTick()
{
    if (refresh_stopped_)
        return;
    eq_.scheduleIn(refresh_interval_, [this] { refreshTick(); });

    if (refresh_inflight_ >= kMaxRefreshInFlight) {
        ++refresh_deferred_beats_;
        return;
    }

    const std::size_t src = placement_->stalestPlane();
    if (src == placement_->planeCount())
        return; // nothing resident anywhere alive
    ReadPageJob j;
    j.client = refresh_client_;
    j.cls = WorkClass::Refresh;
    j.op_id = ++refresh_seq_;
    j.bytes = params_.geometry.page_bytes;
    j.sliced = true;
    refresh_src_.emplace(j.op_id, src);
    ++refresh_inflight_;
    submitRead(placement_->planeChannel(src), j);
}

void
FlashSystem::onRefreshCompletion(const Completion &c)
{
    if (c.kind != Completion::Kind::ReadData)
        return;
    auto it = refresh_src_.find(c.op_id);
    CAMLLM_ASSERT(it != refresh_src_.end(),
                  "unknown refresh op %llu",
                  (unsigned long long)c.op_id);
    const std::size_t src = it->second;
    refresh_src_.erase(it);

    // The wear policy picks which physical plane absorbs the
    // re-write: in place under Bump, the least-worn plane under
    // LeastWorn (in place too when the source channel died while the
    // read was in flight). The logical mapping is untouched — this is
    // wear bookkeeping, the data stays addressable where it was.
    std::size_t dst = src;
    if (placement_->wearPolicy() == WearPolicy::LeastWorn ||
        placement_->channelDead(placement_->planeChannel(src))) {
        const std::size_t lw = placement_->leastWornPlane();
        if (lw != placement_->planeCount())
            dst = lw;
    }

    // The write-back crosses the destination plane's channel bus as a
    // bulk low-priority grant, like remap rebuild traffic.
    const std::uint32_t bytes = params_.geometry.page_bytes;
    const std::uint32_t ch = route(placement_->planeChannel(dst));
    refresh_write_bytes_ += bytes;
    channels_[ch]->bus().request(BusPriority::Low, bytes,
                                 [this, src, dst] {
                                     placement_->noteRefresh(src, dst);
                                     ++refresh_pages_;
                                     // Write-back landed: the scrub op
                                     // is complete and the next beat
                                     // may issue again.
                                     --refresh_inflight_;
                                 },
                                 "refresh-write");
}

void
FlashSystem::enableKvSwap(std::uint64_t model_weight_bytes,
                          std::uint64_t reserve_bytes)
{
    CAMLLM_ASSERT(!kv_swap_enabled_, "KV swap armed twice");
    if (!placement_) {
        // No fault spec built a placement map; KV swap needs one for
        // quota and wear. Seed the resident weights first so the KV
        // region is carved from what a loaded device actually has
        // free.
        placement_ = std::make_unique<WeightPlacement>(params_.geometry);
        if (model_weight_bytes > 0) {
            const std::uint64_t pages =
                (model_weight_bytes + params_.geometry.page_bytes - 1) /
                params_.geometry.page_bytes;
            placement_->seedStriped(pages);
        }
    }
    const std::uint64_t page = params_.geometry.page_bytes;
    std::uint64_t pages = reserve_bytes == 0
                              ? placement_->freePages()
                              : (reserve_bytes + page - 1) / page;
    pages = std::min(pages, placement_->freePages());
    placement_->reserveKvRegion(pages);
    kv_swap_enabled_ = true;
}

bool
FlashSystem::kvSwapOut(std::uint64_t full_bytes, std::uint64_t sim_bytes)
{
    CAMLLM_ASSERT(kv_swap_enabled_);
    const std::uint64_t page = params_.geometry.page_bytes;
    const std::uint64_t pages = (full_bytes + page - 1) / page;
    if (!placement_->kvProgram(pages))
        return false;
    // The write-out occupies the channel buses like remap/refresh
    // rebuild traffic: bulk low-priority grants, page-sized,
    // round-robin over the alive channels. Only the sampled-layer
    // share crosses the sim clock — the same depth convention every
    // other transfer in the run follows.
    kv_swap_write_bytes_ += sim_bytes;
    const std::uint32_t n = channelCount();
    std::uint64_t left = sim_bytes;
    while (left > 0) {
        const std::uint64_t b = std::min<std::uint64_t>(page, left);
        left -= b;
        const std::uint32_t c = route(kv_swap_rr_ % n);
        kv_swap_rr_ = (kv_swap_rr_ + 1) % n;
        channels_[c]->bus().request(BusPriority::Low, b, [] {},
                                    "kv-swap-out");
    }
    return true;
}

void
FlashSystem::kvSwapFree(std::uint64_t full_bytes)
{
    CAMLLM_ASSERT(kv_swap_enabled_);
    const std::uint64_t page = params_.geometry.page_bytes;
    placement_->kvFree((full_bytes + page - 1) / page);
}

std::uint64_t
FlashSystem::kvSwapLivePages() const
{
    return placement_ ? placement_->kvLivePages() : 0;
}

double
FlashSystem::wearSpreadPe() const
{
    return placement_ ? placement_->wearSpreadPe() : 0.0;
}

double
FlashSystem::wearMeanPe() const
{
    return placement_ ? placement_->wearMeanPe() : 0.0;
}

double
FlashSystem::wearMaxPe() const
{
    return placement_ ? placement_->wearMaxPe() : 0.0;
}

} // namespace camllm::flash
