#include "params.h"

namespace camllm::flash {

bool
FlashGeometry::valid() const
{
    return channels > 0 && chips_per_channel > 0 && dies_per_chip > 0 &&
           planes_per_die > 0 && compute_cores_per_die > 0 &&
           blocks_per_plane > 0 && pages_per_block > 0 && page_bytes > 0;
}

bool
FlashTiming::valid() const
{
    return t_read > 0 && bus_mts > 0 && bus_bits > 0 && slice_bytes > 0 &&
           core_gops >= 0.0;
}

} // namespace camllm::flash
