/**
 * @file
 * Work items exchanged between the Cambricon-LLM engine, the
 * per-channel schedulers and the flash dies, plus the tagged
 * completion records the flash device posts back to its clients.
 */

#ifndef CAMLLM_FLASH_WORK_H
#define CAMLLM_FLASH_WORK_H

#include <cstddef>
#include <cstdint>

#include "common/units.h"

namespace camllm::flash {

/** Identifies one connected flash client (one decode stream). */
using ClientId = std::uint32_t;

/**
 * Serving phase a flash work item belongs to. Streams tag their
 * submissions so the device can account channel traffic per phase —
 * the scheduler reads back how many delivered bytes served chunked
 * prefill versus in-flight decode on the shared channels.
 */
enum class WorkClass : std::uint8_t
{
    Decode = 0,
    Prefill = 1,

    /** Prefill re-run to rebuild the KV of a preempted-and-evicted
     *  request: weights re-stream through the channels, and the
     *  scheduler reports that overhead separately from first-pass
     *  prefill traffic. */
    Recompute = 2,

    /** Read-retry traffic: a page whose first sense failed ECC is
     *  re-transferred after each escalated re-read, and those extra
     *  bus bytes are billed here so fault overhead never pollutes the
     *  Prefill/Decode/Recompute accounting. */
    Retry = 3,

    /** Retention-refresh scrub traffic: the background scrubber's
     *  re-reads of the oldest-resident pages (and their re-writes,
     *  charged directly to the channel bus) compete with serving
     *  reads through the same channel queues; billing them here keeps
     *  the serving classes honest while making the refresh bandwidth
     *  bill visible. */
    Refresh = 4,

    /** KV swap traffic: evicted KV blocks streamed out to the flash
     *  KV region (write-backs charged directly to the channel bus)
     *  and streamed back in on resume instead of being recomputed.
     *  Swap trades channel bandwidth for NPU prefill time, so its
     *  bytes must stay apart from the weight-streaming classes for
     *  the trade to be measurable. */
    KvSwap = 5
};

inline constexpr std::size_t kWorkClasses = 6;

/**
 * One atomic tile of a read-compute request, i.e.\ the single weight
 * page a specific compute core multiplies against the (broadcast)
 * input slice. The producer fixes the compute time because it knows
 * the weight precision; the die model is precision agnostic.
 */
struct RcPageJob
{
    ClientId client = 0;        ///< stream the result belongs to
    WorkClass cls = WorkClass::Decode; ///< serving phase of the owner
    std::uint64_t op_id = 0;    ///< owning GeMV op, client-local id
    std::uint32_t tile_seq = 0; ///< channel-local tile sequence number
    std::uint32_t out_bytes = 0;///< result-vector bytes this core returns
    Tick compute_time = 0;      ///< core occupancy for this page
};

/**
 * One ordinary page read that streams weights to the NPU over the
 * channel (the NPU's share of the hardware-aware tiling split).
 */
struct ReadPageJob
{
    ClientId client = 0;
    WorkClass cls = WorkClass::Decode;
    std::uint64_t op_id = 0;
    std::uint32_t bytes = 0; ///< useful data bytes (<= page size)
    bool sliced = true;      ///< Slice Control on/off (Fig 12 ablation)
};

/**
 * A read-compute tile as seen by one channel: the broadcast input
 * slice plus one RcPageJob per engaged core.
 */
struct RcTileWork
{
    ClientId client = 0;
    WorkClass cls = WorkClass::Decode;
    std::uint64_t op_id = 0;
    std::uint32_t cores_used = 0;       ///< dies engaged on this channel
    std::uint32_t input_bytes = 0;      ///< broadcast grant size
    std::uint32_t out_bytes_per_core = 0;
    Tick compute_time = 0;              ///< per-core page compute time
};

/**
 * One completion record posted back to a flash client. Replaces the
 * old synchronous Listener upcalls: the channel tags each record with
 * the originating client and (client-local) op id, queues it, and
 * delivers it through the EventQueue, so one flash device can serve
 * several in-flight decode graphs without the clients ever being
 * called from inside a die's bus-grant event.
 */
struct Completion
{
    enum class Kind : std::uint8_t
    {
        RcResult, ///< one core's read-compute result reached the NPU
        ReadData  ///< one read page's data fully reached the NPU
    };

    Kind kind = Kind::RcResult;
    ClientId client = 0;
    WorkClass cls = WorkClass::Decode; ///< phase tag of the work item
    std::uint64_t op_id = 0;
    std::uint32_t bytes = 0; ///< delivered bytes (ReadData only)
};

} // namespace camllm::flash

#endif // CAMLLM_FLASH_WORK_H
