/**
 * @file
 * Work items exchanged between the Cambricon-LLM engine, the
 * per-channel schedulers and the flash dies.
 */

#ifndef CAMLLM_FLASH_WORK_H
#define CAMLLM_FLASH_WORK_H

#include <cstdint>

#include "common/units.h"

namespace camllm::flash {

/**
 * One atomic tile of a read-compute request, i.e.\ the single weight
 * page a specific compute core multiplies against the (broadcast)
 * input slice. The producer fixes the compute time because it knows
 * the weight precision; the die model is precision agnostic.
 */
struct RcPageJob
{
    std::uint64_t op_id = 0;    ///< owning GeMV operation
    std::uint32_t tile_seq = 0; ///< channel-local tile sequence number
    std::uint32_t out_bytes = 0;///< result-vector bytes this core returns
    Tick compute_time = 0;      ///< core occupancy for this page
};

/**
 * One ordinary page read that streams weights to the NPU over the
 * channel (the NPU's share of the hardware-aware tiling split).
 */
struct ReadPageJob
{
    std::uint64_t op_id = 0;
    std::uint32_t bytes = 0; ///< useful data bytes (<= page size)
    bool sliced = true;      ///< Slice Control on/off (Fig 12 ablation)
};

/**
 * A read-compute tile as seen by one channel: the broadcast input
 * slice plus one RcPageJob per engaged core.
 */
struct RcTileWork
{
    std::uint64_t op_id = 0;
    std::uint32_t cores_used = 0;       ///< dies engaged on this channel
    std::uint32_t input_bytes = 0;      ///< broadcast grant size
    std::uint32_t out_bytes_per_core = 0;
    Tick compute_time = 0;              ///< per-core page compute time
};

} // namespace camllm::flash

#endif // CAMLLM_FLASH_WORK_H
