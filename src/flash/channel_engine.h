/**
 * @file
 * Per-channel scheduler: owns the channel bus and the dies behind it,
 * runs the read-compute tile window (Compute Control + input-buffer
 * credit) and dispatches ordinary page reads to idle read planes
 * (Slice Control's partner on the controller side).
 *
 * Completions are not upcalled synchronously: each finished tile
 * result or read page becomes a tagged Completion record handed to
 * the CompletionRouter, which delivers it to the owning client
 * through the EventQueue. The channel itself is client agnostic, so
 * several decode streams may interleave work on the same channel.
 */

#ifndef CAMLLM_FLASH_CHANNEL_ENGINE_H
#define CAMLLM_FLASH_CHANNEL_ENGINE_H

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <vector>

#include "flash/bus.h"
#include "flash/completion.h"
#include "flash/die.h"
#include "flash/fault.h"
#include "flash/params.h"
#include "flash/work.h"
#include "sim/event_queue.h"

namespace camllm::flash {

/** Scheduler for one flash channel and its dies. */
class ChannelEngine
{
  public:
    /**
     * @param router completion routing back to connected clients;
     * must outlive the channel.
     * @param slice_control enables the paper's Slice Control: priority
     * bus arbitration for rc traffic (the read-slicing half lives in
     * each ReadPageJob's `sliced` flag).
     * @param channel_index this channel's position in the device, so
     * its dies can look up their planes' wear state in a
     * wear-tracking fault model.
     */
    ChannelEngine(EventQueue &eq, const FlashParams &params,
                  CompletionRouter &router, std::uint32_t tile_window = 3,
                  bool slice_control = true,
                  std::uint32_t channel_index = 0);

    /** Queue a read-compute tile (this channel's slice of it). */
    void submitTile(const RcTileWork &tile);

    /** Queue an ordinary page read for the NPU. */
    void submitRead(const ReadPageJob &job);

    ChannelBus &bus() { return bus_; }
    const ChannelBus &bus() const { return bus_; }
    DieModel &die(std::size_t i) { return *dies_[i]; }
    std::size_t dieCount() const { return dies_.size(); }

    /** Tiles submitted but not yet fully completed. */
    std::size_t tilesInFlight() const
    {
        return tile_queue_.size() + active_.size();
    }

    std::size_t readBacklog() const { return read_queue_.size(); }

    // --- fault injection ---------------------------------------------
    /** Arm soft read failures on every die of this channel. */
    void setFaultModel(FaultModel *fault);

    /** Work stranded on a channel when it dies. */
    struct OfflineWork
    {
        std::vector<RcTileWork> tiles; ///< queued + unfinished actives
        std::vector<ReadPageJob> reads;///< queued + die-resident
    };

    /**
     * Kill the channel: mark it (and its dies) offline so every event
     * still in flight fires as a no-op, and hand back the work that
     * was queued or resident so the facade can re-issue it on the
     * survivors. Completion records for the stranded work are never
     * delivered from here — the re-issued copies produce them.
     */
    OfflineWork failOffline();

    bool offline() const { return offline_; }

    std::uint64_t pagesComputed() const;
    std::uint64_t pagesRead() const;
    std::uint64_t arrayReads() const;
    std::uint64_t retryReads() const;

    /** Payload bytes delivered to clients for @p cls work (read-page
     *  data plus read-compute result vectors). */
    std::uint64_t
    deliveredBytes(WorkClass cls) const
    {
        return delivered_bytes_[std::size_t(cls)];
    }

  private:
    void tryActivate();
    void dispatchReads();
    bool inputReady(std::uint32_t tile_seq) const;
    void onRcResultDelivered(const RcPageJob &job);
    void onReadDelivered(const ReadPageJob &job);
    void onRetryDrained(const ReadPageJob &job);

    struct ActiveTile
    {
        RcTileWork work; ///< as submitted, for re-issue on failure
        std::uint32_t results_remaining;
        bool input_ready = false;
    };

    EventQueue &eq_;
    FlashParams params_;
    CompletionRouter &router_;
    std::uint32_t tile_window_;
    std::uint32_t channel_index_;

    ChannelBus bus_;
    std::vector<std::unique_ptr<DieModel>> dies_;

    std::deque<RcTileWork> tile_queue_;
    std::map<std::uint32_t, ActiveTile> active_;
    std::uint32_t next_tile_seq_ = 0;

    std::deque<ReadPageJob> read_queue_;
    std::size_t rr_die_ = 0; ///< round-robin cursor for read dispatch

    bool offline_ = false;

    std::uint64_t delivered_bytes_[kWorkClasses] = {};
};

} // namespace camllm::flash

#endif // CAMLLM_FLASH_CHANNEL_ENGINE_H
