#include "bus.h"

#include <utility>

#include "common/logging.h"

namespace camllm::flash {

void
ChannelBus::request(BusPriority prio, std::uint64_t bytes,
                    std::function<void()> done, const char *label)
{
    CAMLLM_ASSERT(bytes > 0, "zero-byte bus transaction");
    Txn txn{next_seq_++, bytes, std::move(done), label};
    if (prio == BusPriority::High)
        high_.push_back(std::move(txn));
    else
        low_.push_back(std::move(txn));
    tryStart();
}

void
ChannelBus::tryStart()
{
    if (busy_now_)
        return;
    if (high_.empty() && low_.empty())
        return;

    // With Slice Control the high class always wins; a conventional
    // channel serves transfers strictly in arrival order.
    bool take_high;
    if (high_.empty()) {
        take_high = false;
    } else if (low_.empty()) {
        take_high = true;
    } else if (priority_) {
        take_high = true;
    } else {
        take_high = high_.front().seq < low_.front().seq;
    }
    BusPriority prio = take_high ? BusPriority::High : BusPriority::Low;
    auto &queue = take_high ? high_ : low_;
    Txn txn = std::move(queue.front());
    queue.pop_front();

    busy_now_ = true;
    Tick start = eq_.now();
    Tick end = start + grantTime(txn.bytes);
    busy_.addBusy(start, end);
    if (prio == BusPriority::High)
        bytes_high_ += txn.bytes;
    else
        bytes_low_ += txn.bytes;
    ++grants_;

    if (trace_)
        trace_(GrantTrace{start, end, prio, txn.bytes, txn.label});

    eq_.schedule(end, [this, done = std::move(txn.done)]() mutable {
        busy_now_ = false;
        done();
        tryStart();
    });
}

} // namespace camllm::flash
