/**
 * @file
 * Tagged completion routing between the flash device and its clients.
 *
 * Every flash work item carries a ClientId; when a channel finishes a
 * piece of it, the channel pushes a Completion record here instead of
 * upcalling the owner synchronously. The router queues records per
 * client and drains each queue through a zero-delay EventQueue event,
 * so client reactions (op completions, new submissions) run as their
 * own events at the same tick rather than from inside a die's
 * bus-grant callback. This is what lets one flash model serve many
 * concurrently decoding requests: each request is just another
 * connected client with its own op-id namespace.
 */

#ifndef CAMLLM_FLASH_COMPLETION_H
#define CAMLLM_FLASH_COMPLETION_H

#include <cstdint>
#include <deque>
#include <functional>
#include <vector>

#include "common/logging.h"
#include "flash/work.h"
#include "sim/event_queue.h"

namespace camllm::flash {

/** Per-client completion queues drained via the event queue. */
class CompletionRouter
{
  public:
    using Handler = std::function<void(const Completion &)>;

    explicit CompletionRouter(EventQueue &eq) : eq_(eq) {}

    CompletionRouter(const CompletionRouter &) = delete;
    CompletionRouter &operator=(const CompletionRouter &) = delete;

    /** Register a client port; the returned id tags its work items. */
    ClientId
    connect(Handler handler)
    {
        ports_.push_back(Port{std::move(handler), {}, false, false});
        return ClientId(ports_.size() - 1);
    }

    /**
     * Tear a port down early (request cancelled or timed out while
     * its flash work is still in flight). Records already queued are
     * dropped on the spot and future deliveries for this client are
     * swallowed, so the dead port's handler is never invoked again. A
     * drain event already scheduled finds the port dead and returns
     * without touching the handler. The id is never reused.
     */
    void
    disconnect(ClientId id)
    {
        CAMLLM_ASSERT(id < ports_.size(),
                      "disconnect of unconnected client %u", id);
        Port &port = ports_[id];
        CAMLLM_ASSERT(!port.disconnected, "client %u torn down twice", id);
        dropped_ += port.pending.size();
        port.pending.clear();
        port.handler = nullptr;
        port.disconnected = true;
    }

    std::size_t clientCount() const { return ports_.size(); }

    /** Queue @p c for its client and schedule a drain at this tick. */
    void
    deliver(const Completion &c)
    {
        CAMLLM_ASSERT(c.client < ports_.size(),
                      "completion for unconnected client %u", c.client);
        Port &port = ports_[c.client];
        if (port.disconnected) {
            ++dropped_;
            return;
        }
        port.pending.push_back(c);
        if (port.drain_scheduled)
            return;
        port.drain_scheduled = true;
        const ClientId id = c.client;
        eq_.scheduleIn(0, [this, id] { drain(id); });
    }

    /** Completion records delivered so far (all clients). */
    std::uint64_t delivered() const { return delivered_; }

    /** Records swallowed on behalf of disconnected clients. */
    std::uint64_t dropped() const { return dropped_; }

  private:
    struct Port
    {
        Handler handler;
        std::deque<Completion> pending;
        bool drain_scheduled = false;
        bool disconnected = false;
    };

    void
    drain(ClientId id)
    {
        ports_[id].drain_scheduled = false;
        if (ports_[id].disconnected)
            return;
        // The handler may submit new work whose completions re-enter
        // deliver(); those schedule a fresh drain, so only hand over
        // the records that were pending when this event fired. The
        // handler may also connect() a new client (admitting another
        // decode stream), so re-index ports_ every iteration instead
        // of holding a reference across the possible reallocation.
        // The handler may even disconnect() this very port mid-batch,
        // which clears pending — the loop then finds nothing left.
        std::size_t n = ports_[id].pending.size();
        while (n-- > 0) {
            if (ports_[id].disconnected || ports_[id].pending.empty())
                break;
            const Completion c = ports_[id].pending.front();
            ports_[id].pending.pop_front();
            ++delivered_;
            ports_[id].handler(c);
        }
    }

    EventQueue &eq_;
    std::vector<Port> ports_;
    std::uint64_t delivered_ = 0;
    std::uint64_t dropped_ = 0;
};

} // namespace camllm::flash

#endif // CAMLLM_FLASH_COMPLETION_H
