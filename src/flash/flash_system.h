/**
 * @file
 * Facade over all flash channels: construction from FlashParams,
 * client connection, work submission routing and aggregate
 * statistics. Clients connect() a completion handler, tag their work
 * items with the returned ClientId, and receive tagged Completion
 * records through the EventQueue — several in-flight decode graphs
 * can share the one device.
 */

#ifndef CAMLLM_FLASH_FLASH_SYSTEM_H
#define CAMLLM_FLASH_FLASH_SYSTEM_H

#include <cstdint>
#include <memory>
#include <vector>

#include "flash/channel_engine.h"
#include "flash/completion.h"
#include "flash/params.h"
#include "sim/event_queue.h"

namespace camllm::flash {

/** The complete on-die-processing flash device. */
class FlashSystem
{
  public:
    FlashSystem(EventQueue &eq, const FlashParams &params,
                std::uint32_t tile_window = 3, bool slice_control = true);

    /** Register a completion handler; tag submitted work with the id. */
    ClientId
    connect(CompletionRouter::Handler handler)
    {
        return router_.connect(std::move(handler));
    }

    const FlashParams &params() const { return params_; }
    std::uint32_t channelCount() const { return params_.geometry.channels; }
    ChannelEngine &channel(std::uint32_t c) { return *channels_[c]; }
    const ChannelEngine &channel(std::uint32_t c) const
    {
        return *channels_[c];
    }

    /** Submit one channel's slice of a read-compute tile. */
    void
    submitTile(std::uint32_t ch, const RcTileWork &tile)
    {
        channels_[ch]->submitTile(tile);
    }

    /** Submit an ordinary page read on channel @p ch. */
    void
    submitRead(std::uint32_t ch, const ReadPageJob &job)
    {
        channels_[ch]->submitRead(job);
    }

    // --- aggregate statistics ------------------------------------------
    /** Mean bus utilization across channels over [0, elapsed). */
    double avgChannelUtilization(Tick elapsed) const;

    /** Total bytes that crossed any channel bus (both classes). */
    std::uint64_t channelBytes() const;

    /** Bytes that crossed as read-compute inputs/results. */
    std::uint64_t channelBytesHigh() const;

    /** Bytes that crossed as ordinary read data. */
    std::uint64_t channelBytesLow() const;

    std::uint64_t pagesComputed() const;
    std::uint64_t pagesRead() const;

    /** Total NAND array reads (the dominant energy term). */
    std::uint64_t arrayReads() const;

    /** Payload bytes delivered for @p cls work across all channels
     *  (prefill/decode share of the device's client traffic). */
    std::uint64_t deliveredBytes(WorkClass cls) const;

    /** Sum of channel-bus busy ticks over all channels. */
    double busBusySum() const;

  private:
    FlashParams params_;
    CompletionRouter router_;
    std::vector<std::unique_ptr<ChannelEngine>> channels_;
};

} // namespace camllm::flash

#endif // CAMLLM_FLASH_FLASH_SYSTEM_H
