/**
 * @file
 * Facade over all flash channels: construction from FlashParams,
 * client connection, work submission routing and aggregate
 * statistics. Clients connect() a completion handler, tag their work
 * items with the returned ClientId, and receive tagged Completion
 * records through the EventQueue — several in-flight decode graphs
 * can share the one device.
 */

#ifndef CAMLLM_FLASH_FLASH_SYSTEM_H
#define CAMLLM_FLASH_FLASH_SYSTEM_H

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "flash/channel_engine.h"
#include "flash/completion.h"
#include "flash/fault.h"
#include "flash/params.h"
#include "flash/placement.h"
#include "sim/event_queue.h"

namespace camllm::flash {

/** The complete on-die-processing flash device. */
class FlashSystem
{
  public:
    FlashSystem(EventQueue &eq, const FlashParams &params,
                std::uint32_t tile_window = 3, bool slice_control = true);

    /** Register a completion handler; tag submitted work with the id. */
    ClientId
    connect(CompletionRouter::Handler handler)
    {
        return router_.connect(std::move(handler));
    }

    /** Tear a client's completion port down early (cancellation):
     *  queued and future records for the id are dropped. */
    void disconnect(ClientId id) { router_.disconnect(id); }

    /**
     * Arm the fault spec: soft read failures on every die, the
     * scheduled channel slowdown/offline events, and — when the spec
     * asks — per-plane wear tracking, ECC-strength failure modeling
     * and the retention-refresh scrubber. Call once, before the
     * simulation starts. A spec with any() == false arms nothing and
     * leaves every code path byte-identical to a fault-free run.
     */
    void armFaults(const FaultSpec &spec);

    const FlashParams &params() const { return params_; }
    std::uint32_t channelCount() const { return params_.geometry.channels; }
    ChannelEngine &channel(std::uint32_t c) { return *channels_[c]; }
    const ChannelEngine &channel(std::uint32_t c) const
    {
        return *channels_[c];
    }

    /** Submit one channel's slice of a read-compute tile. A dead
     *  channel's traffic is striped over the survivors. */
    void
    submitTile(std::uint32_t ch, const RcTileWork &tile)
    {
        channels_[route(ch)]->submitTile(tile);
    }

    /** Submit an ordinary page read on channel @p ch (rerouted the
     *  same way when the channel is dead). */
    void
    submitRead(std::uint32_t ch, const ReadPageJob &job)
    {
        channels_[route(ch)]->submitRead(job);
    }

    bool channelAlive(std::uint32_t c) const { return !channels_[c]->offline(); }

    /** Channels still serving traffic. */
    std::uint32_t aliveChannels() const;

    // --- aggregate statistics ------------------------------------------
    /** Mean bus utilization across channels over [0, elapsed). */
    double avgChannelUtilization(Tick elapsed) const;

    /** Total bytes that crossed any channel bus (both classes). */
    std::uint64_t channelBytes() const;

    /** Bytes that crossed as read-compute inputs/results. */
    std::uint64_t channelBytesHigh() const;

    /** Bytes that crossed as ordinary read data. */
    std::uint64_t channelBytesLow() const;

    std::uint64_t pagesComputed() const;
    std::uint64_t pagesRead() const;

    /** Total NAND array reads (the dominant energy term). */
    std::uint64_t arrayReads() const;

    /** Payload bytes delivered for @p cls work across all channels
     *  (prefill/decode share of the device's client traffic). */
    std::uint64_t deliveredBytes(WorkClass cls) const;

    /** Sum of channel-bus busy ticks over all channels. */
    double busBusySum() const;

    // --- fault statistics ----------------------------------------------
    /** Escalated re-senses performed across every die. */
    std::uint64_t retryReads() const;

    /** Failed-sense page bytes that crossed a channel before the
     *  controller ECC rejected them (== deliveredBytes(Retry)). */
    std::uint64_t retryBytes() const { return deliveredBytes(WorkClass::Retry); }

    std::uint64_t remapBytes() const { return remap_bytes_; }
    std::uint32_t channelsLost() const { return channels_lost_; }

    /** Jobs stranded on dead channels and re-issued on survivors. */
    std::uint64_t reissuedJobs() const { return reissued_jobs_; }

    const FaultModel *faultModel() const { return fault_model_.get(); }

    // --- reliability co-design -----------------------------------------
    /** Placement / wear map (null unless the armed spec needed one). */
    const WeightPlacement *placement() const { return placement_.get(); }

    /** Pages the retention scrubber has re-written. */
    std::uint64_t refreshPages() const { return refresh_pages_; }

    /** Scrub re-write bytes charged to the channel buses. */
    std::uint64_t refreshWriteBytes() const { return refresh_write_bytes_; }

    /** Scrub beats skipped because the previous scrub op was still in
     *  flight — nonzero means the configured rate exceeds what the
     *  dies/buses can absorb and the scrubber is self-throttling. */
    std::uint64_t refreshDeferredBeats() const
    {
        return refresh_deferred_beats_;
    }

    /** Total scrub bus traffic: re-read payload plus re-writes. */
    std::uint64_t
    refreshChannelBytes() const
    {
        return deliveredBytes(WorkClass::Refresh) + refresh_write_bytes_;
    }

    /**
     * Stop issuing new scrub reads (in-flight ones drain normally).
     * The scrubber is self-rescheduling, so a driver whose run ends
     * when the event queue empties must call this once its own work
     * is done; idempotent, and a no-op when refresh never armed.
     */
    void stopRefresh() { refresh_stopped_ = true; }

    /** Per-plane wear summary over alive planes (0 without a
     *  placement map). */
    double wearSpreadPe() const;
    double wearMeanPe() const;
    double wearMaxPe() const;

    // --- KV swap ---------------------------------------------------------
    /**
     * Arm KV swap-to-flash: reserve @p reserve_bytes of free flash
     * capacity (0 = everything left) as the KV region. When no fault
     * spec built a placement map, one is created here and seeded with
     * the resident weight image (@p model_weight_bytes, so the region
     * honestly competes with the weights for capacity). Call once,
     * before the simulation starts; never armed means every swap path
     * below is dead code and the event sequence is untouched.
     */
    void enableKvSwap(std::uint64_t model_weight_bytes,
                      std::uint64_t reserve_bytes);

    bool kvSwapEnabled() const { return kv_swap_enabled_; }

    /**
     * Swap one evicted KV block out: program @p full_bytes of KV
     * (full model depth) into the region's quota — false when the
     * region is full, and the caller recomputes instead — then charge
     * @p sim_bytes of write traffic (sampled-layer clock share) over
     * the alive channel buses as low-priority grants, round-robin.
     */
    bool kvSwapOut(std::uint64_t full_bytes, std::uint64_t sim_bytes);

    /** Swap-in landed (or its owner died): free the block's quota. */
    void kvSwapFree(std::uint64_t full_bytes);

    /** Pages currently held by swapped-out KV. */
    std::uint64_t kvSwapLivePages() const;

    /** Swap-out write bytes charged to the channel buses. */
    std::uint64_t kvSwapWriteBytes() const { return kv_swap_write_bytes_; }

    /** Total swap bus traffic: swap-in payload plus swap-out writes. */
    std::uint64_t
    kvSwapChannelBytes() const
    {
        return deliveredBytes(WorkClass::KvSwap) + kv_swap_write_bytes_;
    }

  private:
    /** Redirect a dead channel's submissions across the survivors. */
    std::uint32_t route(std::uint32_t ch);

    /** Kill channel @p ch: remap its resident pages (rebuild traffic
     *  charged over the surviving buses) and re-issue its stranded
     *  jobs on the survivors. */
    void takeChannelOffline(std::uint32_t ch);

    // --- retention-refresh scrubber ------------------------------------
    void startRefresh(double pages_per_s);
    void refreshTick();
    void onRefreshCompletion(const Completion &c);

    EventQueue &eq_;
    FlashParams params_;
    CompletionRouter router_;
    std::vector<std::unique_ptr<ChannelEngine>> channels_;

    std::unique_ptr<FaultModel> fault_model_;
    std::unique_ptr<WeightPlacement> placement_;
    std::uint32_t redirect_rr_ = 0;
    std::uint32_t remap_rr_ = 0;
    std::uint32_t channels_lost_ = 0;
    std::uint64_t remap_bytes_ = 0;
    std::uint64_t reissued_jobs_ = 0;

    /** Outstanding-scrub cap making the beat closed-loop: a beat that
     *  fires while this many ops are still in flight defers instead
     *  of stacking more work onto a saturated die/bus. */
    static constexpr std::uint64_t kMaxRefreshInFlight = 1;

    bool kv_swap_enabled_ = false;
    std::uint32_t kv_swap_rr_ = 0; ///< swap-out write channel cursor
    std::uint64_t kv_swap_write_bytes_ = 0;

    ClientId refresh_client_ = 0;
    bool refresh_armed_ = false;
    bool refresh_stopped_ = false;
    Tick refresh_interval_ = 0;
    std::uint64_t refresh_seq_ = 0;
    std::uint64_t refresh_pages_ = 0;
    std::uint64_t refresh_write_bytes_ = 0;
    std::uint64_t refresh_inflight_ = 0;
    std::uint64_t refresh_deferred_beats_ = 0;
    std::unordered_map<std::uint64_t, std::size_t> refresh_src_;
};

} // namespace camllm::flash

#endif // CAMLLM_FLASH_FLASH_SYSTEM_H
