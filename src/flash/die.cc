#include "die.h"

#include <memory>

#include "common/logging.h"

namespace camllm::flash {

void
DieModel::pushRcJob(const RcPageJob &job)
{
    rc_queue_.push_back(job);
    advanceRc();
}

std::size_t
DieModel::rcBacklog() const
{
    std::size_t n = rc_queue_.size();
    n += rc_reading_.has_value();
    n += rc_data_reg_.has_value();
    n += rc_cache_reg_.has_value();
    return n;
}

void
DieModel::advanceRc()
{
    // Stage 1: array read into the data register. Per the paper's
    // read-compute flow the input vector is delivered first (step 1)
    // and only then is the weight page fetched (step 2); the plane
    // also waits for the data register to be handed off.
    if (!rc_reading_ && !rc_data_reg_ && !rc_queue_.empty() &&
        cbs_.input_ready(rc_queue_.front().tile_seq)) {
        rc_reading_ = rc_queue_.front();
        rc_queue_.pop_front();
        ++array_reads_;
        eq_.scheduleIn(params_.timing.t_read, [this] {
            rc_data_reg_ = rc_reading_;
            rc_reading_.reset();
            advanceRc();
        });
    }

    // Stage 2: data register -> cache register move.
    if (rc_data_reg_ && !rc_cache_reg_ && !rc_moving_) {
        rc_moving_ = true;
        eq_.scheduleIn(params_.timing.t_reg_move, [this] {
            rc_cache_reg_ = rc_data_reg_;
            rc_data_reg_.reset();
            rc_moving_ = false;
            advanceRc();
        });
    }

    // Stage 3: compute, gated on the broadcast input vector.
    if (rc_cache_reg_ && !core_busy_ &&
        cbs_.input_ready(rc_cache_reg_->tile_seq)) {
        core_busy_ = true;
        const Tick dur = rc_cache_reg_->compute_time;
        core_busy_stat_.addBusy(eq_.now(), eq_.now() + dur);
        eq_.scheduleIn(dur, [this] {
            RcPageJob job = *rc_cache_reg_;
            rc_cache_reg_.reset();
            core_busy_ = false;
            ++pages_computed_;
            // The result waits in the output buffer for a bus grant.
            bus_.request(BusPriority::High, job.out_bytes,
                         [this, job] { cbs_.rc_result_delivered(job); },
                         "rc-result");
            advanceRc();
        });
    }
}

bool
DieModel::canAcceptRead() const
{
    return !rd_reading_ && !rd_data_reg_;
}

void
DieModel::pushReadJob(const ReadPageJob &job)
{
    CAMLLM_ASSERT(canAcceptRead(), "read plane busy");
    CAMLLM_ASSERT(job.bytes > 0 &&
                  job.bytes <= params_.geometry.page_bytes,
                  "read job of %u bytes", job.bytes);
    rd_reading_ = job;
    ++array_reads_;
    eq_.scheduleIn(params_.timing.t_read, [this] {
        rd_data_reg_ = rd_reading_;
        rd_reading_.reset();
        advanceRead();
    });
}

void
DieModel::advanceRead()
{
    // Data register -> cache register; frees the plane for the next
    // array read.
    if (rd_data_reg_ && !rd_cache_reg_ && !rd_moving_) {
        rd_moving_ = true;
        eq_.scheduleIn(params_.timing.t_reg_move, [this] {
            rd_cache_reg_ = rd_data_reg_;
            rd_data_reg_.reset();
            rd_moving_ = false;
            cbs_.read_slot_free();
            advanceRead();
        });
    }

    // Drain the cache register over the channel, slice by slice when
    // Slice Control is enabled, or as one monolithic grant otherwise.
    if (rd_cache_reg_ && !rd_draining_) {
        rd_draining_ = true;
        const ReadPageJob job = *rd_cache_reg_;
        const std::uint32_t slice = params_.timing.slice_bytes;
        std::uint32_t n_slices =
            job.sliced ? (job.bytes + slice - 1) / slice : 1;
        auto remaining = std::make_shared<std::uint32_t>(n_slices);
        std::uint32_t left = job.bytes;
        for (std::uint32_t i = 0; i < n_slices; ++i) {
            std::uint32_t chunk =
                job.sliced ? std::min(slice, left) : job.bytes;
            left -= chunk;
            bus_.request(BusPriority::Low, chunk,
                         [this, remaining] {
                             if (--*remaining == 0) {
                                 ReadPageJob done = *rd_cache_reg_;
                                 rd_cache_reg_.reset();
                                 rd_draining_ = false;
                                 ++pages_read_;
                                 cbs_.read_delivered(done);
                                 advanceRead();
                             }
                         },
                         "read-slice");
        }
    }
}

} // namespace camllm::flash
