#include "die.h"

#include <memory>

#include "common/logging.h"

namespace camllm::flash {

void
DieModel::pushRcJob(const RcPageJob &job)
{
    rc_queue_.push_back(job);
    advanceRc();
}

std::size_t
DieModel::rcBacklog() const
{
    std::size_t n = rc_queue_.size();
    n += rc_reading_.has_value();
    n += rc_data_reg_.has_value();
    n += rc_cache_reg_.has_value();
    return n;
}

void
DieModel::advanceRc()
{
    if (offline_)
        return;

    // Stage 1: array read into the data register. Per the paper's
    // read-compute flow the input vector is delivered first (step 1)
    // and only then is the weight page fetched (step 2); the plane
    // also waits for the data register to be handed off.
    if (!rc_reading_ && !rc_data_reg_ && !rc_queue_.empty() &&
        cbs_.input_ready(rc_queue_.front().tile_seq)) {
        rc_reading_ = rc_queue_.front();
        rc_queue_.pop_front();
        startRcSense(0, fault_ ? drawFor(0) : 0);
    }

    // Stage 2: data register -> cache register move.
    if (rc_data_reg_ && !rc_cache_reg_ && !rc_moving_) {
        rc_moving_ = true;
        eq_.scheduleIn(params_.timing.t_reg_move, [this] {
            if (offline_)
                return;
            rc_cache_reg_ = rc_data_reg_;
            rc_data_reg_.reset();
            rc_moving_ = false;
            advanceRc();
        });
    }

    // Stage 3: compute, gated on the broadcast input vector.
    if (rc_cache_reg_ && !core_busy_ &&
        cbs_.input_ready(rc_cache_reg_->tile_seq)) {
        core_busy_ = true;
        const Tick dur = rc_cache_reg_->compute_time;
        core_busy_stat_.addBusy(eq_.now(), eq_.now() + dur);
        eq_.scheduleIn(dur, [this] {
            if (offline_)
                return;
            RcPageJob job = *rc_cache_reg_;
            rc_cache_reg_.reset();
            core_busy_ = false;
            ++pages_computed_;
            // The result waits in the output buffer for a bus grant.
            bus_.request(BusPriority::High, job.out_bytes,
                         [this, job] {
                             if (!offline_)
                                 cbs_.rc_result_delivered(job);
                         },
                         "rc-result");
            advanceRc();
        });
    }
}

/**
 * One sense of the compute-plane page. The rc stream is decoded by
 * the on-die ECC engine, so a failed sense costs only the escalated
 * re-read — nothing crosses the bus until a rung decodes.
 */
void
DieModel::startRcSense(std::uint32_t attempt, std::uint32_t retries)
{
    ++array_reads_;
    if (attempt > 0)
        ++retry_reads_;
    // Every sense routes through the fault model when armed: attempt
    // 0 at default ECC strength is the base tR exactly, while an
    // armed ECC strength pays its soft-sense factor on every attempt.
    const Tick tr = fault_
                        ? fault_->senseTime(params_.timing.t_read, attempt)
                        : params_.timing.t_read;
    eq_.scheduleIn(tr, [this, attempt, retries] {
        if (offline_)
            return;
        if (attempt < retries) {
            startRcSense(attempt + 1, retries);
            return;
        }
        rc_data_reg_ = rc_reading_;
        rc_reading_.reset();
        advanceRc();
    });
}

bool
DieModel::canAcceptRead() const
{
    return !rd_reading_ && !rd_data_reg_;
}

void
DieModel::pushReadJob(const ReadPageJob &job)
{
    CAMLLM_ASSERT(canAcceptRead(), "read plane busy");
    CAMLLM_ASSERT(job.bytes > 0 &&
                  job.bytes <= params_.geometry.page_bytes,
                  "read job of %u bytes", job.bytes);
    rd_reading_ = job;
    startReadSense(0, fault_ ? drawFor(readPlane()) : 0);
}

std::uint32_t
DieModel::drawFor(std::uint32_t plane)
{
    return fault_->wearAware()
               ? fault_->drawRetriesForPlane(channel_, die_, plane)
               : fault_->drawRetries();
}

/**
 * One sense of an ordinary read page. Unlike the rc stream, read
 * pages are decoded by the controller, so a failed attempt still pays
 * the register move and the full page transfer over the channel
 * before the ECC verdict comes back; those bytes are billed to
 * WorkClass::Retry via the retry_drained upcall. The plane stays
 * occupied for the whole ladder (rd_reading_ keeps its job), so
 * canAcceptRead() correctly reports busy until a rung decodes.
 */
void
DieModel::startReadSense(std::uint32_t attempt, std::uint32_t retries)
{
    ++array_reads_;
    if (attempt > 0)
        ++retry_reads_;
    const Tick tr = fault_
                        ? fault_->senseTime(params_.timing.t_read, attempt)
                        : params_.timing.t_read;
    eq_.scheduleIn(tr, [this, attempt, retries] {
        if (offline_)
            return;
        if (attempt < retries) {
            drainFailedRead(attempt, retries);
            return;
        }
        rd_data_reg_ = rd_reading_;
        rd_reading_.reset();
        advanceRead();
    });
}

/** Ship a failed sense to the controller, then climb the ladder. */
void
DieModel::drainFailedRead(std::uint32_t attempt, std::uint32_t retries)
{
    eq_.scheduleIn(params_.timing.t_reg_move, [this, attempt, retries] {
        if (offline_)
            return;
        const ReadPageJob job = *rd_reading_;
        const std::uint32_t slice = params_.timing.slice_bytes;
        const std::uint32_t n_slices =
            job.sliced ? (job.bytes + slice - 1) / slice : 1;
        auto remaining = std::make_shared<std::uint32_t>(n_slices);
        std::uint32_t left = job.bytes;
        for (std::uint32_t i = 0; i < n_slices; ++i) {
            const std::uint32_t chunk =
                job.sliced ? std::min(slice, left) : job.bytes;
            left -= chunk;
            bus_.request(BusPriority::Low, chunk,
                         [this, remaining, attempt, retries] {
                             if (--*remaining != 0 || offline_)
                                 return;
                             if (cbs_.retry_drained)
                                 cbs_.retry_drained(*rd_reading_);
                             startReadSense(attempt + 1, retries);
                         },
                         "retry-slice");
        }
    });
}

void
DieModel::advanceRead()
{
    if (offline_)
        return;

    // Data register -> cache register; frees the plane for the next
    // array read.
    if (rd_data_reg_ && !rd_cache_reg_ && !rd_moving_) {
        rd_moving_ = true;
        eq_.scheduleIn(params_.timing.t_reg_move, [this] {
            if (offline_)
                return;
            rd_cache_reg_ = rd_data_reg_;
            rd_data_reg_.reset();
            rd_moving_ = false;
            cbs_.read_slot_free();
            advanceRead();
        });
    }

    // Drain the cache register over the channel, slice by slice when
    // Slice Control is enabled, or as one monolithic grant otherwise.
    if (rd_cache_reg_ && !rd_draining_) {
        rd_draining_ = true;
        const ReadPageJob job = *rd_cache_reg_;
        const std::uint32_t slice = params_.timing.slice_bytes;
        std::uint32_t n_slices =
            job.sliced ? (job.bytes + slice - 1) / slice : 1;
        auto remaining = std::make_shared<std::uint32_t>(n_slices);
        std::uint32_t left = job.bytes;
        for (std::uint32_t i = 0; i < n_slices; ++i) {
            std::uint32_t chunk =
                job.sliced ? std::min(slice, left) : job.bytes;
            left -= chunk;
            bus_.request(BusPriority::Low, chunk,
                         [this, remaining] {
                             if (--*remaining == 0 && !offline_) {
                                 ReadPageJob done = *rd_cache_reg_;
                                 rd_cache_reg_.reset();
                                 rd_draining_ = false;
                                 ++pages_read_;
                                 cbs_.read_delivered(done);
                                 advanceRead();
                             }
                         },
                         "read-slice");
        }
    }
}

void
DieModel::collectReads(std::vector<ReadPageJob> &out) const
{
    if (rd_reading_)
        out.push_back(*rd_reading_);
    if (rd_data_reg_)
        out.push_back(*rd_data_reg_);
    if (rd_cache_reg_)
        out.push_back(*rd_cache_reg_);
}

} // namespace camllm::flash
