/**
 * @file
 * Physical page addressing within the flash hierarchy.
 */

#ifndef CAMLLM_FLASH_ADDRESS_H
#define CAMLLM_FLASH_ADDRESS_H

#include <cstdint>

#include "flash/params.h"

namespace camllm::flash {

/** Physical address of one page: channel / chip / die / plane / block /
 *  page. */
struct PageAddress
{
    std::uint32_t channel = 0;
    std::uint32_t chip = 0;
    std::uint32_t die = 0;
    std::uint32_t plane = 0;
    std::uint32_t block = 0;
    std::uint32_t page = 0;

    bool
    operator==(const PageAddress &o) const
    {
        return channel == o.channel && chip == o.chip && die == o.die &&
               plane == o.plane && block == o.block && page == o.page;
    }

    /** @return true when every coordinate is within @p g. */
    bool
    validFor(const FlashGeometry &g) const
    {
        return channel < g.channels && chip < g.chips_per_channel &&
               die < g.dies_per_chip && plane < g.planes_per_die &&
               block < g.blocks_per_plane && page < g.pages_per_block;
    }
};

/**
 * Bijective page <-> linear index mapping. Linear order is
 * page-major within block within plane within die within chip within
 * channel, i.e.\ the channel is the slowest-varying coordinate.
 */
class PageIndexer
{
  public:
    explicit PageIndexer(const FlashGeometry &g) : g_(g) {}

    std::uint64_t
    toLinear(const PageAddress &a) const
    {
        std::uint64_t idx = a.channel;
        idx = idx * g_.chips_per_channel + a.chip;
        idx = idx * g_.dies_per_chip + a.die;
        idx = idx * g_.planes_per_die + a.plane;
        idx = idx * g_.blocks_per_plane + a.block;
        idx = idx * g_.pages_per_block + a.page;
        return idx;
    }

    PageAddress
    toAddress(std::uint64_t idx) const
    {
        PageAddress a;
        a.page = std::uint32_t(idx % g_.pages_per_block);
        idx /= g_.pages_per_block;
        a.block = std::uint32_t(idx % g_.blocks_per_plane);
        idx /= g_.blocks_per_plane;
        a.plane = std::uint32_t(idx % g_.planes_per_die);
        idx /= g_.planes_per_die;
        a.die = std::uint32_t(idx % g_.dies_per_chip);
        idx /= g_.dies_per_chip;
        a.chip = std::uint32_t(idx % g_.chips_per_channel);
        idx /= g_.chips_per_channel;
        a.channel = std::uint32_t(idx);
        return a;
    }

    std::uint64_t totalPages() const { return g_.totalPages(); }

  private:
    FlashGeometry g_;
};

} // namespace camllm::flash

#endif // CAMLLM_FLASH_ADDRESS_H
