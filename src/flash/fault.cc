#include "fault.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "ecc/retention.h"

namespace camllm::flash {

void
FaultSpec::addSlowdown(std::uint32_t channel, double factor, Tick t0,
                       Tick t1)
{
    CAMLLM_ASSERT(factor >= 1.0, "slowdown factor %.2f < 1", factor);
    CAMLLM_ASSERT(t1 > t0, "empty slowdown window");
    ChannelFault f;
    f.channel = channel;
    f.slowdown = factor;
    f.t0 = t0;
    f.t1 = t1;
    channel_faults.push_back(f);
}

void
FaultSpec::addOffline(std::uint32_t channel, Tick t0)
{
    ChannelFault f;
    f.channel = channel;
    f.t0 = t0;
    f.offline = true;
    channel_faults.push_back(f);
}

double
FaultSpec::effectiveUcpRate() const
{
    if (ucp_rate <= 0.0)
        return 0.0;
    double scale = 1.0;
    if (retention_hours > 0.0 || pe_cycles > 0.0) {
        const ecc::RetentionParams p;
        scale = ecc::retentionBer(retention_hours, pe_cycles, p) /
                p.base_ber;
    }
    return std::min(ucp_rate * scale, 0.9);
}

std::uint32_t
FaultModel::drawRetries()
{
    if (ucp_ <= 0.0)
        return 0;
    std::uint32_t r = 0;
    double p = ucp_;
    while (r < spec_.ladder.max_retries) {
        ++draws_;
        if (!rng_.chance(p))
            break;
        ++r;
        p *= spec_.ladder.retry_fail_decay;
    }
    return r;
}

Tick
FaultModel::senseTime(Tick t_read, std::uint32_t attempt) const
{
    if (attempt == 0)
        return t_read;
    const double esc =
        std::pow(spec_.ladder.sense_escalation, double(attempt));
    return Tick(double(t_read) * esc);
}

} // namespace camllm::flash
