#include "fault.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "ecc/retention.h"

namespace camllm::flash {

void
FaultSpec::addSlowdown(std::uint32_t channel, double factor, Tick t0,
                       Tick t1)
{
    CAMLLM_ASSERT(factor >= 1.0, "slowdown factor %.2f < 1", factor);
    CAMLLM_ASSERT(t1 > t0, "empty slowdown window");
    ChannelFault f;
    f.channel = channel;
    f.slowdown = factor;
    f.t0 = t0;
    f.t1 = t1;
    channel_faults.push_back(f);
}

void
FaultSpec::addOffline(std::uint32_t channel, Tick t0)
{
    ChannelFault f;
    f.channel = channel;
    f.t0 = t0;
    f.offline = true;
    channel_faults.push_back(f);
}

double
FaultSpec::effectiveUcpRate() const
{
    if (ucp_rate <= 0.0)
        return 0.0;
    double scale = 1.0;
    if (retention_hours > 0.0 || pe_cycles > 0.0) {
        const ecc::RetentionParams p;
        scale = ecc::retentionBer(retention_hours, pe_cycles, p) /
                p.base_ber;
    }
    return std::min(ucp_rate * scale, 0.9);
}

FaultModel::FaultModel(const FaultSpec &spec, std::uint32_t page_bytes)
    : spec_(spec), page_bytes_(page_bytes), rng_(spec.seed)
{
    CAMLLM_ASSERT(page_bytes_ > 0);
    uniform_ber_ =
        ecc::retentionBer(spec_.retention_hours, spec_.pe_cycles);
    ucp_ = spec_.ecc_correctable_bits > 0
               ? ucpAt(spec_.retention_hours, spec_.pe_cycles)
               : spec_.effectiveUcpRate();
}

double
FaultModel::ucpAt(double age_hours, double pe_cycles) const
{
    const ecc::RetentionParams rp;
    const double ber = ecc::retentionBer(age_hours, pe_cycles, rp);
    if (spec_.ecc_correctable_bits > 0) {
        return std::min(ecc::pageUcp(ber, spec_.ecc_correctable_bits,
                                     spec_.ecc_codeword_bytes,
                                     page_bytes_),
                        0.9);
    }
    if (spec_.ucp_rate <= 0.0)
        return 0.0;
    return std::min(spec_.ucp_rate * (ber / rp.base_ber), 0.9);
}

std::uint32_t
FaultModel::climbLadder(double ucp0, double ber0)
{
    if (ucp0 <= 0.0)
        return 0;
    std::uint32_t r = 0;
    double p = ucp0;
    double ber = ber0;
    while (r < spec_.ladder.max_retries) {
        ++draws_;
        if (!rng_.chance(p))
            break;
        ++r;
        if (spec_.ecc_correctable_bits > 0) {
            // Shifted read levels lower the raw BER; re-derive the
            // rung's failure probability from the codeword tail,
            // which collapses super-geometrically for strong codes.
            ber *= spec_.ladder.retry_fail_decay;
            p = std::min(ecc::pageUcp(ber, spec_.ecc_correctable_bits,
                                      spec_.ecc_codeword_bytes,
                                      page_bytes_),
                         0.9);
        } else {
            p *= spec_.ladder.retry_fail_decay;
        }
    }
    return r;
}

std::uint32_t
FaultModel::drawRetries()
{
    return climbLadder(ucp_, uniform_ber_);
}

std::uint32_t
FaultModel::drawRetriesForPlane(std::uint32_t channel,
                                std::uint32_t die_in_channel,
                                std::uint32_t plane)
{
    if (!wear_)
        return drawRetries();
    const std::size_t idx =
        wear_->planeIndex(channel, die_in_channel, plane);
    const double pe = wear_->planeWear(idx);
    const double age = wear_->planeAge(idx);
    const double frac = wear_->planeFreshFraction(idx);
    double ucp0 = ucpAt(age, pe);
    double ber0 = ecc::retentionBer(age, pe);
    if (frac > 0.0) {
        // A read hits a scrubbed (fresh) page with probability frac;
        // mix the aged and fresh failure rates accordingly.
        ucp0 = (1.0 - frac) * ucp0 + frac * ucpAt(0.0, pe);
        ber0 = (1.0 - frac) * ber0 +
               frac * ecc::retentionBer(0.0, pe);
    }
    return climbLadder(ucp0, ber0);
}

double
FaultModel::eccSenseScale() const
{
    if (spec_.ecc_correctable_bits == 0)
        return 1.0;
    return 1.0 + spec_.ecc_sense_per_bit *
                     double(spec_.ecc_correctable_bits);
}

Tick
FaultModel::senseTime(Tick t_read, std::uint32_t attempt) const
{
    const double scale = eccSenseScale();
    if (attempt == 0)
        return scale == 1.0 ? t_read : Tick(double(t_read) * scale);
    const double esc =
        std::pow(spec_.ladder.sense_escalation, double(attempt));
    return Tick(double(t_read) * esc * scale);
}

} // namespace camllm::flash
