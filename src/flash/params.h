/**
 * @file
 * Static configuration of the NAND flash subsystem: geometry (channel /
 * chip / die / plane / block / page hierarchy) and timing (array read
 * latency, channel bus rate, register moves, on-die compute).
 *
 * Defaults follow Table II of the Cambricon-LLM paper: 16 KB pages,
 * tR = 30 us, 1000 MT/s x 8-bit channel bus (1 GB/s per channel), two
 * dies per chip, two planes and one compute core per die.
 */

#ifndef CAMLLM_FLASH_PARAMS_H
#define CAMLLM_FLASH_PARAMS_H

#include <cstdint>

#include "common/units.h"

namespace camllm::flash {

/** Physical organization of the flash subsystem. */
struct FlashGeometry
{
    std::uint32_t channels = 8;
    std::uint32_t chips_per_channel = 2;
    std::uint32_t dies_per_chip = 2;
    std::uint32_t planes_per_die = 2;
    std::uint32_t compute_cores_per_die = 1;
    std::uint32_t blocks_per_plane = 2048;
    std::uint32_t pages_per_block = 256;
    std::uint32_t page_bytes = 16 * 1024;
    std::uint32_t spare_bytes = 1664; ///< per-page spare area (ECC home)

    std::uint32_t diesPerChannel() const
    {
        return chips_per_channel * dies_per_chip;
    }

    /** Compute cores reachable from one channel ("ccorenum"). */
    std::uint32_t coresPerChannel() const
    {
        return diesPerChannel() * compute_cores_per_die;
    }

    std::uint32_t totalDies() const { return channels * diesPerChannel(); }

    std::uint64_t planeBytes() const
    {
        return std::uint64_t(blocks_per_plane) * pages_per_block *
               page_bytes;
    }

    std::uint64_t dieBytes() const { return planeBytes() * planes_per_die; }

    std::uint64_t totalBytes() const
    {
        return dieBytes() * totalDies();
    }

    std::uint64_t totalPages() const
    {
        return std::uint64_t(totalDies()) * planes_per_die *
               blocks_per_plane * pages_per_block;
    }

    /** @return true when all fields are consistent and nonzero. */
    bool valid() const;
};

/** Timing and rate parameters of the flash subsystem. */
struct FlashTiming
{
    /** NAND array-to-register read latency (tR). */
    Tick t_read = 30 * kUs;

    /** Channel transfer rate, mega-transfers per second. */
    std::uint32_t bus_mts = 1000;

    /** Channel bus width in bits. */
    std::uint32_t bus_bits = 8;

    /** Fixed command/address/handshake time per bus grant. */
    Tick grant_overhead = 100 * kNs;

    /** Data-register to cache-register move time. */
    Tick t_reg_move = 400 * kNs;

    /**
     * On-die compute core throughput in INT8 GOPS. Zero selects the
     * paper's design point where compute exactly matches the array
     * read speed (one page of MACs per tR).
     */
    double core_gops = 0.0;

    /** Bus slice granularity for sliced read requests. */
    std::uint32_t slice_bytes = 2048;

    /** Channel bandwidth in bytes per nanosecond (== GB/s). */
    double busBytesPerNs() const
    {
        return double(bus_mts) * bus_bits / 8.0 / 1000.0;
    }

    /**
     * Time for the compute core to multiply one page's worth of
     * weights (@p elems INT8 MACs, i.e.\ 2*elems operations).
     */
    Tick
    computeTime(std::uint64_t elems, std::uint32_t page_elems) const
    {
        if (core_gops <= 0.0) {
            // Matched design: a full page takes exactly tR; partial
            // pages scale linearly.
            if (page_elems == 0)
                return 0;
            return Tick(double(t_read) * double(elems) /
                        double(page_elems));
        }
        double ns = 2.0 * double(elems) / core_gops;
        return Tick(ns + 0.5);
    }

    bool valid() const;
};

/** Combined flash configuration. */
struct FlashParams
{
    FlashGeometry geometry;
    FlashTiming timing;

    bool valid() const { return geometry.valid() && timing.valid(); }
};

} // namespace camllm::flash

#endif // CAMLLM_FLASH_PARAMS_H
