#include "placement.h"

#include "common/logging.h"

namespace camllm::flash {

WeightPlacement::WeightPlacement(const FlashGeometry &g) : geometry_(g)
{
    CAMLLM_ASSERT(g.valid());
    pages_per_plane_ = g.blocks_per_plane * g.pages_per_block;
    next_page_.assign(std::size_t(g.channels) * g.diesPerChannel() *
                          g.planes_per_die,
                      0);
}

std::size_t
WeightPlacement::planeIndex(std::uint32_t channel,
                            std::uint32_t die_in_channel,
                            std::uint32_t plane) const
{
    return (std::size_t(channel) * geometry_.diesPerChannel() +
            die_in_channel) *
               geometry_.planes_per_die +
           plane;
}

PageAddress
WeightPlacement::allocOnPlane(std::uint32_t channel,
                              std::uint32_t die_in_channel,
                              std::uint32_t plane)
{
    std::size_t idx = planeIndex(channel, die_in_channel, plane);
    std::uint32_t cursor = next_page_[idx];
    CAMLLM_ASSERT(cursor < pages_per_plane_);
    ++next_page_[idx];
    ++allocated_;

    PageAddress a;
    a.channel = channel;
    a.chip = die_in_channel / geometry_.dies_per_chip;
    a.die = die_in_channel % geometry_.dies_per_chip;
    a.plane = plane;
    a.block = cursor / geometry_.pages_per_block;
    a.page = cursor % geometry_.pages_per_block;
    return a;
}

PageAddress
WeightPlacement::allocRcPage(std::uint32_t channel,
                             std::uint32_t die_in_channel)
{
    CAMLLM_ASSERT(channel < geometry_.channels);
    CAMLLM_ASSERT(die_in_channel < geometry_.diesPerChannel());
    // Prefer the compute plane (plane 0); spill to later planes when
    // full so oversized models still place (timing is unaffected,
    // capacity accounting is what matters here).
    for (std::uint32_t p = 0; p < geometry_.planes_per_die; ++p) {
        std::size_t idx = planeIndex(channel, die_in_channel, p);
        if (next_page_[idx] < pages_per_plane_) {
            if (p != 0) {
                warn("rc page spilled to plane %u on channel %u die %u",
                     p, channel, die_in_channel);
            }
            return allocOnPlane(channel, die_in_channel, p);
        }
    }
    fatal("flash die %u on channel %u is full", die_in_channel, channel);
}

PageAddress
WeightPlacement::allocReadPage()
{
    const std::uint64_t n_dies = geometry_.totalDies();
    for (std::uint64_t probe = 0; probe < n_dies; ++probe) {
        std::uint64_t d = (rr_cursor_ + probe) % n_dies;
        auto channel = std::uint32_t(d / geometry_.diesPerChannel());
        auto die = std::uint32_t(d % geometry_.diesPerChannel());
        // Fill from the last plane backwards so the compute plane is
        // consumed only when everything else is full.
        for (std::uint32_t p = geometry_.planes_per_die; p-- > 0;) {
            std::size_t idx = planeIndex(channel, die, p);
            if (next_page_[idx] < pages_per_plane_) {
                rr_cursor_ = d + 1;
                return allocOnPlane(channel, die, p);
            }
        }
    }
    fatal("flash device is full (%llu pages)",
          (unsigned long long)allocated_);
}

} // namespace camllm::flash
