#include "placement.h"

#include <algorithm>

#include "common/logging.h"

namespace camllm::flash {

WeightPlacement::WeightPlacement(const FlashGeometry &g) : geometry_(g)
{
    CAMLLM_ASSERT(g.valid());
    pages_per_plane_ = g.blocks_per_plane * g.pages_per_block;
    const std::size_t n_planes = std::size_t(g.channels) *
                                 g.diesPerChannel() * g.planes_per_die;
    next_page_.assign(n_planes, 0);
    channel_dead_.assign(g.channels, false);
    programs_.assign(n_planes, 0);
    refreshed_.assign(n_planes, 0);
    base_pe_.assign(n_planes, 0.0);
    age_hours_.assign(n_planes, 0.0);
}

std::size_t
WeightPlacement::planeIndex(std::uint32_t channel,
                            std::uint32_t die_in_channel,
                            std::uint32_t plane) const
{
    return (std::size_t(channel) * geometry_.diesPerChannel() +
            die_in_channel) *
               geometry_.planes_per_die +
           plane;
}

std::uint32_t
WeightPlacement::planeChannel(std::size_t idx) const
{
    return std::uint32_t(idx / (std::size_t(geometry_.diesPerChannel()) *
                                geometry_.planes_per_die));
}

PageAddress
WeightPlacement::allocOnPlane(std::uint32_t channel,
                              std::uint32_t die_in_channel,
                              std::uint32_t plane)
{
    std::size_t idx = planeIndex(channel, die_in_channel, plane);
    std::uint32_t cursor = next_page_[idx];
    CAMLLM_ASSERT(cursor < pages_per_plane_);
    ++next_page_[idx];
    ++allocated_;
    ++programs_[idx];

    PageAddress a;
    a.channel = channel;
    a.chip = die_in_channel / geometry_.dies_per_chip;
    a.die = die_in_channel % geometry_.dies_per_chip;
    a.plane = plane;
    a.block = cursor / geometry_.pages_per_block;
    a.page = cursor % geometry_.pages_per_block;
    return a;
}

PageAddress
WeightPlacement::allocRcPage(std::uint32_t channel,
                             std::uint32_t die_in_channel)
{
    CAMLLM_ASSERT(channel < geometry_.channels);
    CAMLLM_ASSERT(!channel_dead_[channel],
                  "allocating on dead channel %u", channel);
    CAMLLM_ASSERT(die_in_channel < geometry_.diesPerChannel());
    // Prefer the compute plane (plane 0); spill to later planes when
    // full so oversized models still place (timing is unaffected,
    // capacity accounting is what matters here).
    for (std::uint32_t p = 0; p < geometry_.planes_per_die; ++p) {
        std::size_t idx = planeIndex(channel, die_in_channel, p);
        if (next_page_[idx] < pages_per_plane_) {
            if (p != 0) {
                warn("rc page spilled to plane %u on channel %u die %u",
                     p, channel, die_in_channel);
            }
            return allocOnPlane(channel, die_in_channel, p);
        }
    }
    fatal("flash die %u on channel %u is full", die_in_channel, channel);
}

PageAddress
WeightPlacement::allocReadPage()
{
    if (policy_ == WearPolicy::LeastWorn) {
        // Globally least-worn plane with free space, so read-share
        // programs flatten the wear profile instead of following the
        // round-robin cursor.
        std::size_t best = planeCount();
        for (std::size_t i = 0; i < planeCount(); ++i) {
            if (channel_dead_[planeChannel(i)] ||
                next_page_[i] >= pages_per_plane_)
                continue;
            if (best == planeCount() || planeWear(i) < planeWear(best))
                best = i;
        }
        if (best == planeCount())
            fatal("flash device is full (%llu pages)",
                  (unsigned long long)allocated_);
        const std::size_t per_die = geometry_.planes_per_die;
        const std::size_t die_flat = best / per_die;
        return allocOnPlane(
            std::uint32_t(die_flat / geometry_.diesPerChannel()),
            std::uint32_t(die_flat % geometry_.diesPerChannel()),
            std::uint32_t(best % per_die));
    }

    const std::uint64_t n_dies = geometry_.totalDies();
    for (std::uint64_t probe = 0; probe < n_dies; ++probe) {
        std::uint64_t d = (rr_cursor_ + probe) % n_dies;
        auto channel = std::uint32_t(d / geometry_.diesPerChannel());
        auto die = std::uint32_t(d % geometry_.diesPerChannel());
        if (channel_dead_[channel])
            continue;
        // Fill from the last plane backwards so the compute plane is
        // consumed only when everything else is full.
        for (std::uint32_t p = geometry_.planes_per_die; p-- > 0;) {
            std::size_t idx = planeIndex(channel, die, p);
            if (next_page_[idx] < pages_per_plane_) {
                rr_cursor_ = d + 1;
                return allocOnPlane(channel, die, p);
            }
        }
    }
    fatal("flash device is full (%llu pages)",
          (unsigned long long)allocated_);
}

void
WeightPlacement::seedStriped(std::uint64_t pages)
{
    CAMLLM_ASSERT(allocated_ + pages <= capacityPages(),
                  "seeding %llu pages into %llu free",
                  (unsigned long long)pages,
                  (unsigned long long)(capacityPages() - allocated_));
    const std::uint64_t n_planes = next_page_.size();
    const std::uint64_t base = pages / n_planes;
    std::uint64_t extra = pages % n_planes;
    for (std::uint64_t i = 0; i < n_planes; ++i) {
        std::uint64_t give = base + (extra > 0 ? 1 : 0);
        if (extra > 0)
            --extra;
        CAMLLM_ASSERT(next_page_[i] + give <= pages_per_plane_,
                      "plane overflow while seeding");
        next_page_[i] += std::uint32_t(give);
        programs_[i] += give;
    }
    allocated_ += pages;
}

std::uint64_t
WeightPlacement::pagesOnChannel(std::uint32_t channel) const
{
    CAMLLM_ASSERT(channel < geometry_.channels);
    const std::size_t per_ch =
        std::size_t(geometry_.diesPerChannel()) * geometry_.planes_per_die;
    std::uint64_t n = 0;
    for (std::size_t i = 0; i < per_ch; ++i)
        n += next_page_[std::size_t(channel) * per_ch + i];
    return n;
}

std::uint64_t
WeightPlacement::remapChannel(std::uint32_t channel)
{
    CAMLLM_ASSERT(channel < geometry_.channels);
    CAMLLM_ASSERT(!channel_dead_[channel],
                  "channel %u already retired", channel);

    const std::size_t per_ch =
        std::size_t(geometry_.diesPerChannel()) * geometry_.planes_per_die;
    std::uint64_t moved = 0;
    for (std::size_t i = 0; i < per_ch; ++i) {
        std::size_t idx = std::size_t(channel) * per_ch + i;
        moved += next_page_[idx];
        next_page_[idx] = 0;
    }
    channel_dead_[channel] = true;
    retired_pages_ += std::uint64_t(per_ch) * pages_per_plane_;

    // Count the surviving planes, then fill them as evenly as their
    // free space allows (even share first, spill passes after).
    // Under LeastWorn each pass visits the least-worn survivors
    // first, so the rebuild's program wear lands where the profile is
    // flattest instead of in index order.
    std::vector<std::size_t> survivors;
    for (std::uint32_t c = 0; c < geometry_.channels; ++c) {
        if (channel_dead_[c])
            continue;
        for (std::size_t i = 0; i < per_ch; ++i)
            survivors.push_back(std::size_t(c) * per_ch + i);
    }
    CAMLLM_ASSERT(!survivors.empty(), "last flash channel died");

    std::uint64_t left = moved;
    while (left > 0) {
        if (policy_ == WearPolicy::LeastWorn) {
            std::stable_sort(survivors.begin(), survivors.end(),
                             [this](std::size_t a, std::size_t b) {
                                 return planeWear(a) < planeWear(b);
                             });
        }
        std::uint64_t placed = 0;
        const std::uint64_t share =
            (left + survivors.size() - 1) / survivors.size();
        for (std::size_t idx : survivors) {
            if (left == 0)
                break;
            const std::uint64_t free = pages_per_plane_ - next_page_[idx];
            const std::uint64_t give = std::min({free, share, left});
            next_page_[idx] += std::uint32_t(give);
            programs_[idx] += give;
            left -= give;
            placed += give;
        }
        if (placed == 0)
            fatal("surviving channels cannot hold %llu remapped pages",
                  (unsigned long long)left);
    }
    return moved;
}

void
WeightPlacement::reserveKvRegion(std::uint64_t pages)
{
    CAMLLM_ASSERT(kv_region_pages_ == 0,
                  "KV-swap region reserved twice");
    CAMLLM_ASSERT(pages >= 1);
    if (pages > freePages())
        fatal("KV-swap region of %llu pages exceeds the %llu free "
              "flash pages",
              (unsigned long long)pages,
              (unsigned long long)freePages());
    kv_region_pages_ = pages;
}

bool
WeightPlacement::kvProgram(std::uint64_t pages)
{
    CAMLLM_ASSERT(kv_region_pages_ > 0, "no KV-swap region reserved");
    if (kv_live_pages_ + pages > kv_region_pages_)
        return false;
    kv_live_pages_ += pages;
    // Swapped KV is transient: it occupies quota, not the resident
    // weight map (next_page_), so remap/refresh never chase it. Its
    // program wear is real, though, and lands plane by plane under
    // the active policy.
    for (std::uint64_t p = 0; p < pages; ++p) {
        std::size_t dst = planeCount();
        if (policy_ == WearPolicy::LeastWorn) {
            dst = leastWornPlane();
        } else {
            const std::size_t n = planeCount();
            for (std::size_t probe = 0; probe < n; ++probe) {
                const std::size_t i = (kv_rr_cursor_ + probe) % n;
                if (!channel_dead_[planeChannel(i)]) {
                    dst = i;
                    kv_rr_cursor_ = i + 1;
                    break;
                }
            }
        }
        CAMLLM_ASSERT(dst != planeCount(),
                      "KV swap-out with every channel dead");
        ++programs_[dst];
    }
    return true;
}

void
WeightPlacement::kvFree(std::uint64_t pages)
{
    CAMLLM_ASSERT(pages <= kv_live_pages_,
                  "freeing %llu KV pages of %llu live",
                  (unsigned long long)pages,
                  (unsigned long long)kv_live_pages_);
    kv_live_pages_ -= pages;
}

double
WeightPlacement::occupancy() const
{
    const std::uint64_t cap = capacityPages();
    if (cap == 0)
        fatal("flash device has no live capacity "
              "(every channel is offline)");
    return double(allocated_) / double(cap);
}

std::uint64_t
WeightPlacement::freePages() const
{
    const std::uint64_t cap = capacityPages();
    if (cap == 0)
        fatal("flash device has no live capacity "
              "(every channel is offline)");
    return cap - allocated_;
}

void
WeightPlacement::seedWear(double pe_cycles, double pe_skew,
                          double retention_hours)
{
    CAMLLM_ASSERT(pe_cycles >= 0.0 && retention_hours >= 0.0);
    CAMLLM_ASSERT(pe_skew >= 0.0 && pe_skew <= 1.0,
                  "wear skew %.2f outside [0, 1]", pe_skew);
    const std::size_t n = base_pe_.size();
    for (std::size_t i = 0; i < n; ++i) {
        const double g =
            n > 1 ? 2.0 * double(i) / double(n - 1) - 1.0 : 0.0;
        base_pe_[i] = pe_cycles * (1.0 + pe_skew * g);
        age_hours_[i] = retention_hours;
    }
}

double
WeightPlacement::planeWear(std::size_t idx) const
{
    return base_pe_[idx] +
           double(programs_[idx]) / double(pages_per_plane_);
}

double
WeightPlacement::planeFreshFraction(std::size_t idx) const
{
    if (next_page_[idx] == 0)
        return 0.0;
    return std::min(1.0, double(refreshed_[idx]) /
                             double(next_page_[idx]));
}

void
WeightPlacement::notePrograms(std::size_t idx, std::uint64_t n)
{
    CAMLLM_ASSERT(idx < programs_.size());
    programs_[idx] += n;
}

void
WeightPlacement::noteRefresh(std::size_t src, std::size_t dst)
{
    CAMLLM_ASSERT(src < planeCount() && dst < planeCount());
    ++refreshed_[src];
    ++programs_[dst];
}

std::size_t
WeightPlacement::stalestPlane() const
{
    std::size_t best = planeCount();
    for (std::size_t i = 0; i < planeCount(); ++i) {
        if (channel_dead_[planeChannel(i)] || next_page_[i] == 0)
            continue;
        if (best == planeCount() ||
            planeFreshFraction(i) < planeFreshFraction(best))
            best = i;
    }
    return best;
}

std::size_t
WeightPlacement::leastWornPlane() const
{
    std::size_t best = planeCount();
    for (std::size_t i = 0; i < planeCount(); ++i) {
        if (channel_dead_[planeChannel(i)])
            continue;
        if (best == planeCount() || planeWear(i) < planeWear(best))
            best = i;
    }
    return best;
}

std::uint64_t
WeightPlacement::totalPrograms() const
{
    std::uint64_t n = 0;
    for (std::uint64_t p : programs_)
        n += p;
    return n;
}

double
WeightPlacement::wearSpreadPe() const
{
    double lo = 0.0, hi = 0.0;
    bool seen = false;
    for (std::size_t i = 0; i < planeCount(); ++i) {
        if (channel_dead_[planeChannel(i)])
            continue;
        const double w = planeWear(i);
        lo = seen ? std::min(lo, w) : w;
        hi = seen ? std::max(hi, w) : w;
        seen = true;
    }
    return seen ? hi - lo : 0.0;
}

double
WeightPlacement::wearMeanPe() const
{
    double sum = 0.0;
    std::size_t n = 0;
    for (std::size_t i = 0; i < planeCount(); ++i) {
        if (channel_dead_[planeChannel(i)])
            continue;
        sum += planeWear(i);
        ++n;
    }
    return n > 0 ? sum / double(n) : 0.0;
}

double
WeightPlacement::wearMaxPe() const
{
    double hi = 0.0;
    bool seen = false;
    for (std::size_t i = 0; i < planeCount(); ++i) {
        if (channel_dead_[planeChannel(i)])
            continue;
        const double w = planeWear(i);
        hi = seen ? std::max(hi, w) : w;
        seen = true;
    }
    return seen ? hi : 0.0;
}

} // namespace camllm::flash
