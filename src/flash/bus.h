/**
 * @file
 * Flash channel bus model.
 *
 * The channel is a half-duplex 8-bit bus shared by every chip on the
 * channel; only one transfer proceeds at a time. Read-compute traffic
 * (input-vector broadcasts and result vectors) is latency critical and
 * tiny, so it is arbitrated ahead of bulk read-page slices. Grants are
 * non-preemptive: once a transfer starts it occupies the bus to the
 * end, which is exactly why unsliced page reads block read-compute
 * requests (Figure 6 of the paper).
 */

#ifndef CAMLLM_FLASH_BUS_H
#define CAMLLM_FLASH_BUS_H

#include <cstdint>
#include <deque>
#include <functional>

#include "common/logging.h"
#include "common/stats.h"
#include "common/units.h"
#include "sim/event_queue.h"

namespace camllm::flash {

/** Arbitration class of a bus transaction. */
enum class BusPriority
{
    High, ///< read-compute inputs / results
    Low   ///< read-page data slices
};

/** Priority-arbitrated, non-preemptive channel bus. */
class ChannelBus
{
  public:
    /** Trace record emitted per completed grant (for Fig 6). */
    struct GrantTrace
    {
        Tick start;
        Tick end;
        BusPriority priority;
        std::uint64_t bytes;
        const char *label;
    };

    using TraceHook = std::function<void(const GrantTrace &)>;

    /**
     * @param priority_arbitration when true (Slice Control present)
     * read-compute traffic bypasses queued read slices; when false the
     * bus is a plain FIFO, as in a conventional flash channel.
     */
    ChannelBus(EventQueue &eq, double bytes_per_ns, Tick grant_overhead,
               bool priority_arbitration = true)
        : eq_(eq), bytes_per_ns_(bytes_per_ns),
          grant_overhead_(grant_overhead),
          priority_(priority_arbitration)
    {
    }

    /**
     * Request a bus grant for @p bytes. @p done runs when the transfer
     * completes. @p label is only used for tracing.
     */
    void request(BusPriority prio, std::uint64_t bytes,
                 std::function<void()> done, const char *label = "");

    /** Install a per-grant trace hook (nullptr to disable). */
    void setTraceHook(TraceHook hook) { trace_ = std::move(hook); }

    /**
     * Degrade (or restore) the channel's transfer rate: effective
     * bandwidth becomes bytes_per_ns * @p scale. Used by the fault
     * layer's slowdown windows; the grant in flight keeps the rate it
     * started with, only future grants see the new scale.
     */
    void
    setRateScale(double scale)
    {
        CAMLLM_ASSERT(scale > 0.0 && scale <= 1.0,
                      "bus rate scale %.3f out of (0, 1]", scale);
        rate_scale_ = scale;
    }

    double rateScale() const { return rate_scale_; }

    const BusyTracker &busy() const { return busy_; }
    std::uint64_t bytesHigh() const { return bytes_high_; }
    std::uint64_t bytesLow() const { return bytes_low_; }
    std::uint64_t grants() const { return grants_; }
    bool idle() const { return !busy_now_; }

    /** Time to move @p bytes including the per-grant overhead. */
    Tick
    grantTime(std::uint64_t bytes) const
    {
        return grant_overhead_ +
               transferTime(bytes, bytes_per_ns_ * rate_scale_);
    }

  private:
    struct Txn
    {
        std::uint64_t seq;
        std::uint64_t bytes;
        std::function<void()> done;
        const char *label;
    };

    void tryStart();

    EventQueue &eq_;
    double bytes_per_ns_;
    Tick grant_overhead_;
    bool priority_;
    double rate_scale_ = 1.0;
    std::uint64_t next_seq_ = 0;
    std::deque<Txn> high_;
    std::deque<Txn> low_;
    bool busy_now_ = false;
    BusyTracker busy_;
    std::uint64_t bytes_high_ = 0;
    std::uint64_t bytes_low_ = 0;
    std::uint64_t grants_ = 0;
    TraceHook trace_;
};

} // namespace camllm::flash

#endif // CAMLLM_FLASH_BUS_H
