#include "page_store.h"

#include <algorithm>

#include "common/logging.h"
#include "common/rng.h"
#include "ecc/bitflip.h"

namespace camllm::ecc {

PageStore::PageStore(const PageStoreParams &params)
    : params_(params), codec_(params.codec)
{
    CAMLLM_ASSERT(params_.page_bytes > 0);
    const std::uint32_t need = codec_.eccBytes(params_.page_bytes);
    if (params_.ecc_enabled && need > params_.spare_bytes) {
        fatal("outlier ECC needs %u spare bytes per page, only %u exist",
              need, params_.spare_bytes);
    }
}

void
PageStore::load(std::span<const std::int8_t> blob)
{
    CAMLLM_ASSERT(!blob.empty());
    blob_bytes_ = blob.size();
    pages_.clear();
    const std::size_t psize = params_.page_bytes;
    const std::size_t n_pages = (blob.size() + psize - 1) / psize;
    pages_.reserve(n_pages);
    for (std::size_t p = 0; p < n_pages; ++p) {
        Page page;
        const std::size_t off = p * psize;
        const std::size_t len = std::min(psize, blob.size() - off);
        page.data.assign(blob.begin() + off, blob.begin() + off + len);
        page.spare.assign(params_.spare_bytes, 0);
        if (params_.ecc_enabled) {
            auto ecc = codec_.encode(page.data);
            CAMLLM_ASSERT(ecc.size() <= page.spare.size());
            std::copy(ecc.begin(), ecc.end(), page.spare.begin());
        }
        pages_.push_back(std::move(page));
    }
}

std::uint64_t
PageStore::injectErrors(double ber, std::uint64_t seed)
{
    Rng rng(seed);
    std::uint64_t flips = 0;
    for (auto &page : pages_) {
        auto *raw = reinterpret_cast<std::uint8_t *>(page.data.data());
        flips += injectBitFlips({raw, page.data.size()}, ber, rng);
        flips += injectBitFlips({page.spare.data(), page.spare.size()},
                                ber, rng);
    }
    return flips;
}

std::vector<std::int8_t>
PageStore::readBack(OutlierDecodeStats *stats) const
{
    std::vector<std::int8_t> blob;
    blob.reserve(blob_bytes_);
    for (const auto &page : pages_) {
        std::vector<std::int8_t> data = page.data;
        if (params_.ecc_enabled)
            codec_.decode(data, page.spare, stats);
        blob.insert(blob.end(), data.begin(), data.end());
    }
    CAMLLM_ASSERT(blob.size() == blob_bytes_);
    return blob;
}

} // namespace camllm::ecc
