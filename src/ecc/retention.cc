#include "retention.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace camllm::ecc {

double
retentionBer(double retention_hours, double pe_cycles,
             const RetentionParams &p)
{
    CAMLLM_ASSERT(retention_hours >= 0.0 && pe_cycles >= 0.0);
    const double t = std::max(retention_hours, 1.0);
    const double wear = pe_cycles / p.pe_reference;
    const double ber = p.base_ber * std::pow(t, p.time_exponent) *
                       (1.0 + p.pe_quadratic * wear * wear);
    return std::min(ber, 0.499);
}

} // namespace camllm::ecc
