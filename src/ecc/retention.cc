#include "retention.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace camllm::ecc {

double
retentionBer(double retention_hours, double pe_cycles,
             const RetentionParams &p)
{
    CAMLLM_ASSERT(retention_hours >= 0.0 && pe_cycles >= 0.0);
    const double t = std::max(retention_hours, 1.0);
    const double wear = pe_cycles / p.pe_reference;
    const double ber = p.base_ber * std::pow(t, p.time_exponent) *
                       (1.0 + p.pe_quadratic * wear * wear);
    return std::min(ber, 0.499);
}

double
codewordFailProb(double ber, std::uint32_t correctable_bits,
                 std::uint32_t codeword_bytes)
{
    CAMLLM_ASSERT(codeword_bytes > 0);
    if (ber <= 0.0)
        return 0.0;
    const double p = std::min(ber, 0.499);
    const std::uint64_t n = std::uint64_t(codeword_bytes) * 8;
    if (correctable_bits >= n)
        return 0.0;
    // P(X > t) = 1 - sum_{k<=t} C(n,k) p^k q^(n-k), summed in log
    // space term by term (t is small, so the sum is cheap and exact).
    const double lp = std::log(p);
    const double lq = std::log1p(-p);
    const double lgn = std::lgamma(double(n) + 1.0);
    double cdf = 0.0;
    for (std::uint64_t k = 0; k <= correctable_bits; ++k) {
        const double lc = lgn - std::lgamma(double(k) + 1.0) -
                          std::lgamma(double(n - k) + 1.0);
        cdf += std::exp(lc + double(k) * lp + double(n - k) * lq);
    }
    return std::clamp(1.0 - cdf, 0.0, 1.0);
}

double
pageUcp(double ber, std::uint32_t correctable_bits,
        std::uint32_t codeword_bytes, std::uint32_t page_bytes)
{
    CAMLLM_ASSERT(codeword_bytes > 0 && page_bytes >= codeword_bytes);
    const double cw = codewordFailProb(ber, correctable_bits,
                                       codeword_bytes);
    if (cw <= 0.0)
        return 0.0;
    const double n_cw = double((page_bytes + codeword_bytes - 1) /
                               codeword_bytes);
    // 1 - (1-cw)^n via log1p so tiny codeword tails don't cancel.
    return -std::expm1(n_cw * std::log1p(-cw));
}

} // namespace camllm::ecc
