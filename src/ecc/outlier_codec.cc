#include "outlier_codec.h"

#include <algorithm>
#include <numeric>

#include "common/logging.h"
#include "ecc/bitstream.h"
#include "ecc/hamming.h"

namespace camllm::ecc {

namespace {

/** Magnitude of an INT8 value (|-128| == 128 handled). */
inline int
mag(std::int8_t v)
{
    int i = v;
    return i < 0 ? -i : i;
}

/** Bitwise majority vote over @p copies (odd count). */
std::uint8_t
bitwiseMajority(std::span<const std::uint8_t> copies)
{
    std::uint8_t out = 0;
    const std::size_t need = copies.size() / 2 + 1;
    for (unsigned b = 0; b < 8; ++b) {
        std::size_t ones = 0;
        for (std::uint8_t c : copies)
            if ((c >> b) & 1u)
                ++ones;
        if (ones >= need)
            out |= std::uint8_t(1u << b);
    }
    return out;
}

} // namespace

OutlierCodec::OutlierCodec(const OutlierCodecParams &params)
    : params_(params)
{
    CAMLLM_ASSERT(params_.valid(), "invalid outlier codec parameters");
}

std::uint32_t
OutlierCodec::protectedCount(std::uint32_t elems) const
{
    auto n = std::uint32_t(double(elems) * params_.protect_fraction);
    if (n == 0 && elems > 0)
        n = 1;
    return std::min(n, elems);
}

std::uint32_t
OutlierCodec::eccBytes(std::uint32_t elems) const
{
    const std::uint64_t record_bits =
        kHammingCodeBits + 8ull * params_.value_copies;
    std::uint64_t bits = 8ull * params_.threshold_copies +
                         record_bits * protectedCount(elems);
    return std::uint32_t((bits + 7) / 8);
}

std::vector<std::uint8_t>
OutlierCodec::encode(std::span<const std::int8_t> page) const
{
    CAMLLM_ASSERT(!page.empty());
    CAMLLM_ASSERT(page.size() <= (1u << kHammingDataBits),
                  "page of %zu elems exceeds 14-bit addressing",
                  page.size());

    const std::uint32_t n_prot = protectedCount(std::uint32_t(page.size()));

    // Top-n_prot indices by magnitude.
    std::vector<std::uint32_t> idx(page.size());
    std::iota(idx.begin(), idx.end(), 0u);
    std::nth_element(idx.begin(), idx.begin() + (n_prot - 1), idx.end(),
                     [&](std::uint32_t a, std::uint32_t b) {
                         return mag(page[a]) > mag(page[b]);
                     });
    idx.resize(n_prot);

    // Threshold: smallest protected magnitude.
    int threshold = 255;
    for (std::uint32_t i : idx)
        threshold = std::min(threshold, mag(page[i]));

    // Records are stored sorted by address.
    std::sort(idx.begin(), idx.end());

    BitWriter w;
    for (std::uint32_t c = 0; c < params_.threshold_copies; ++c)
        w.put(std::uint32_t(threshold) & 0xffu, 8);
    for (std::uint32_t i : idx) {
        w.put(hammingEncode(std::uint16_t(i)), kHammingCodeBits);
        const auto value = std::uint8_t(page[i]);
        for (std::uint32_t c = 0; c < params_.value_copies; ++c)
            w.put(value, 8);
    }
    return w.take();
}

void
OutlierCodec::decode(std::span<std::int8_t> page,
                     std::span<const std::uint8_t> ecc,
                     OutlierDecodeStats *stats) const
{
    CAMLLM_ASSERT(!page.empty());
    OutlierDecodeStats local;
    BitReader r(ecc);

    // Threshold: bitwise majority over its redundant copies.
    std::vector<std::uint8_t> tcopies(params_.threshold_copies);
    for (auto &c : tcopies)
        c = std::uint8_t(r.get(8));
    const int threshold = bitwiseMajority(tcopies);

    const std::uint32_t n_prot = protectedCount(std::uint32_t(page.size()));
    std::vector<bool> is_protected(page.size(), false);

    std::vector<std::uint8_t> votes(params_.value_copies + 1);
    for (std::uint32_t rec = 0; rec < n_prot; ++rec) {
        ++local.records;
        const std::uint32_t cw = r.get(kHammingCodeBits);
        HammingResult hr = hammingDecode(cw);
        // Value copies are consumed even for dropped records to keep
        // the stream aligned.
        for (std::uint32_t c = 0; c < params_.value_copies; ++c)
            votes[c + 1] = std::uint8_t(r.get(8));

        if (hr.status == HammingResult::Status::Uncorrectable ||
            hr.value >= page.size()) {
            ++local.records_dropped;
            continue;
        }
        if (hr.status == HammingResult::Status::Corrected)
            ++local.addr_corrected;

        const std::uint32_t addr = hr.value;
        votes[0] = std::uint8_t(page[addr]);
        const std::uint8_t voted = bitwiseMajority(votes);
        if (voted != votes[0])
            ++local.voted_repairs;
        page[addr] = std::int8_t(voted);
        is_protected[addr] = true;
    }

    // Clamp fake outliers: unprotected values cannot legitimately
    // exceed the threshold.
    for (std::size_t i = 0; i < page.size(); ++i) {
        if (!is_protected[i] && mag(page[i]) > threshold) {
            page[i] = 0;
            ++local.clamped;
        }
    }

    if (stats)
        *stats += local;
}

} // namespace camllm::ecc
