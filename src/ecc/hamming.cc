#include "hamming.h"

#include "common/logging.h"

namespace camllm::ecc {

namespace {

constexpr bool
isPowerOfTwo(unsigned x)
{
    return x != 0 && (x & (x - 1)) == 0;
}

} // namespace

std::uint32_t
hammingEncode(std::uint16_t value)
{
    CAMLLM_ASSERT(value < (1u << kHammingDataBits),
                  "value %u exceeds 14 bits", value);

    // Bit i of the codeword is position i+1 in Hamming numbering.
    std::uint32_t cw = 0;
    unsigned vi = 0;
    for (unsigned pos = 1; pos <= kHammingCodeBits; ++pos) {
        if (isPowerOfTwo(pos))
            continue; // parity slot
        if ((value >> vi) & 1u)
            cw |= 1u << (pos - 1);
        ++vi;
    }

    for (unsigned k = 0; k < kHammingParityBits; ++k) {
        const unsigned p = 1u << k;
        unsigned parity = 0;
        for (unsigned pos = 1; pos <= kHammingCodeBits; ++pos)
            if ((pos & p) && ((cw >> (pos - 1)) & 1u))
                parity ^= 1u;
        if (parity)
            cw |= 1u << (p - 1);
    }
    return cw;
}

HammingResult
hammingDecode(std::uint32_t codeword)
{
    std::uint32_t cw = codeword & ((1u << kHammingCodeBits) - 1);
    unsigned syndrome = 0;
    for (unsigned pos = 1; pos <= kHammingCodeBits; ++pos)
        if ((cw >> (pos - 1)) & 1u)
            syndrome ^= pos;

    HammingResult res;
    if (syndrome == 0) {
        res.status = HammingResult::Status::Ok;
    } else if (syndrome <= kHammingCodeBits) {
        cw ^= 1u << (syndrome - 1);
        res.status = HammingResult::Status::Corrected;
    } else {
        res.status = HammingResult::Status::Uncorrectable;
        return res;
    }

    std::uint16_t value = 0;
    unsigned vi = 0;
    for (unsigned pos = 1; pos <= kHammingCodeBits; ++pos) {
        if (isPowerOfTwo(pos))
            continue;
        if ((cw >> (pos - 1)) & 1u)
            value |= std::uint16_t(1u << vi);
        ++vi;
    }
    res.value = value;
    return res;
}

} // namespace camllm::ecc
