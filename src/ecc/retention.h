/**
 * @file
 * Empirical flash retention-error model.
 *
 * The paper motivates the on-die ECC with published NAND reliability
 * data: a fresh 3D TLC chip reaches ~1e-4 raw bit error rate after
 * hours of retention [Zhao et al., ICTA'23], and worn parts exceed
 * 1e-2 [Cai et al., Intel Tech Journal'13]. This model is a smooth
 * fit through those anchors: BER grows roughly linearly with
 * retention time on a log-log scale and quadratically with P/E wear.
 */

#ifndef CAMLLM_ECC_RETENTION_H
#define CAMLLM_ECC_RETENTION_H

#include <cstdint>

namespace camllm::ecc {

/** Fit constants for the retention model (3D TLC defaults). */
struct RetentionParams
{
    double base_ber = 2e-5;       ///< fresh part, ~1 hour retention
    double time_exponent = 0.45;  ///< BER ~ t^a in retention hours
    double pe_reference = 3000.0; ///< rated P/E cycles
    double pe_quadratic = 8.0;    ///< wear multiplier at pe_reference
};

/**
 * Raw bit error rate after @p retention_hours at @p pe_cycles of
 * program/erase wear. Monotone in both arguments; clamped to [0, 0.5).
 *
 * Saturation ownership: this layer owns *raw-bit* saturation — a BER
 * at or above 0.5 would mean an inverted channel, so the fit clamps
 * to [0, 0.5). Page-level saturation lives one layer up: the fault
 * layer (flash::FaultSpec / flash::FaultModel) clamps every derived
 * *uncorrectable-page* probability to [0, 0.9] so the read-retry
 * ladder always keeps a decodable rung.
 */
double retentionBer(double retention_hours, double pe_cycles,
                    const RetentionParams &params = {});

/**
 * Probability that one ECC codeword protecting @p codeword_bytes of
 * payload sees more than @p correctable_bits raw bit errors at bit
 * error rate @p ber — the exact binomial tail P(X > t), evaluated in
 * log space so strengths up to hundreds of bits stay stable. Monotone
 * increasing in @p ber and decreasing in @p correctable_bits.
 */
double codewordFailProb(double ber, std::uint32_t correctable_bits,
                        std::uint32_t codeword_bytes);

/**
 * Uncorrectable-page probability of a @p page_bytes page striped into
 * ceil(page/codeword) independent codewords: 1 - (1 - cw_fail)^n.
 * This is the bridge from the retention fit to the runtime fault
 * layer's retry ladder when an ECC strength is armed (the page fails
 * if any codeword exceeds the correction budget).
 */
double pageUcp(double ber, std::uint32_t correctable_bits,
               std::uint32_t codeword_bytes, std::uint32_t page_bytes);

} // namespace camllm::ecc

#endif // CAMLLM_ECC_RETENTION_H
