/**
 * @file
 * Empirical flash retention-error model.
 *
 * The paper motivates the on-die ECC with published NAND reliability
 * data: a fresh 3D TLC chip reaches ~1e-4 raw bit error rate after
 * hours of retention [Zhao et al., ICTA'23], and worn parts exceed
 * 1e-2 [Cai et al., Intel Tech Journal'13]. This model is a smooth
 * fit through those anchors: BER grows roughly linearly with
 * retention time on a log-log scale and quadratically with P/E wear.
 */

#ifndef CAMLLM_ECC_RETENTION_H
#define CAMLLM_ECC_RETENTION_H

#include <cstdint>

namespace camllm::ecc {

/** Fit constants for the retention model (3D TLC defaults). */
struct RetentionParams
{
    double base_ber = 2e-5;       ///< fresh part, ~1 hour retention
    double time_exponent = 0.45;  ///< BER ~ t^a in retention hours
    double pe_reference = 3000.0; ///< rated P/E cycles
    double pe_quadratic = 8.0;    ///< wear multiplier at pe_reference
};

/**
 * Raw bit error rate after @p retention_hours at @p pe_cycles of
 * program/erase wear. Monotone in both arguments; clamped to [0, 0.5).
 */
double retentionBer(double retention_hours, double pe_cycles,
                    const RetentionParams &params = {});

} // namespace camllm::ecc

#endif // CAMLLM_ECC_RETENTION_H
