/**
 * @file
 * Flash retention-error injection: independent Bernoulli bit flips at
 * a configurable bit error rate (BER), sampled with geometric skips so
 * low rates over large arrays stay cheap.
 */

#ifndef CAMLLM_ECC_BITFLIP_H
#define CAMLLM_ECC_BITFLIP_H

#include <cstdint>
#include <span>

#include "common/rng.h"

namespace camllm::ecc {

/**
 * Flip each bit of @p bytes independently with probability @p ber.
 * @return the number of bits flipped.
 */
std::uint64_t injectBitFlips(std::span<std::uint8_t> bytes, double ber,
                             camllm::Rng &rng);

} // namespace camllm::ecc

#endif // CAMLLM_ECC_BITFLIP_H
