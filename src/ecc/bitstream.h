/**
 * @file
 * LSB-first bit packing helpers for the outlier ECC's spare-area
 * layout (records are 35 bits, so byte alignment cannot be assumed).
 */

#ifndef CAMLLM_ECC_BITSTREAM_H
#define CAMLLM_ECC_BITSTREAM_H

#include <cstdint>
#include <span>
#include <vector>

#include "common/logging.h"

namespace camllm::ecc {

/** Append-only bit writer; bits fill each byte LSB first. */
class BitWriter
{
  public:
    void
    put(std::uint32_t value, unsigned bits)
    {
        CAMLLM_ASSERT(bits <= 32);
        for (unsigned i = 0; i < bits; ++i) {
            if (bit_ == 0)
                bytes_.push_back(0);
            if ((value >> i) & 1u)
                bytes_.back() |= std::uint8_t(1u << bit_);
            bit_ = (bit_ + 1) % 8;
        }
    }

    const std::vector<std::uint8_t> &bytes() const { return bytes_; }
    std::vector<std::uint8_t> take() { return std::move(bytes_); }

  private:
    std::vector<std::uint8_t> bytes_;
    unsigned bit_ = 0;
};

/** Sequential bit reader over a byte span. */
class BitReader
{
  public:
    explicit BitReader(std::span<const std::uint8_t> bytes)
        : bytes_(bytes)
    {
    }

    std::uint32_t
    get(unsigned bits)
    {
        CAMLLM_ASSERT(bits <= 32);
        std::uint32_t v = 0;
        for (unsigned i = 0; i < bits; ++i) {
            std::size_t byte = pos_ / 8;
            CAMLLM_ASSERT(byte < bytes_.size(), "bit stream exhausted");
            if ((bytes_[byte] >> (pos_ % 8)) & 1u)
                v |= 1u << i;
            ++pos_;
        }
        return v;
    }

    std::size_t bitsRead() const { return pos_; }

  private:
    std::span<const std::uint8_t> bytes_;
    std::size_t pos_ = 0;
};

} // namespace camllm::ecc

#endif // CAMLLM_ECC_BITSTREAM_H
