#include "bitflip.h"

#include <cmath>

#include "common/logging.h"

namespace camllm::ecc {

std::uint64_t
injectBitFlips(std::span<std::uint8_t> bytes, double ber, camllm::Rng &rng)
{
    CAMLLM_ASSERT(ber >= 0.0 && ber < 1.0, "BER %f out of range", ber);
    if (ber == 0.0 || bytes.empty())
        return 0;

    const std::uint64_t n_bits = std::uint64_t(bytes.size()) * 8;
    std::uint64_t flips = 0;
    const double log1m = std::log1p(-ber);

    // Jump between flip sites with geometric gaps: the index of the
    // next flipped bit after i is i + 1 + Geometric(ber).
    std::uint64_t i = 0;
    for (;;) {
        double u = rng.uniform();
        // Guard u == 0 which would yield an infinite skip of 0.
        if (u <= 0.0)
            u = 1e-300;
        double skip = std::floor(std::log(u) / log1m);
        if (skip >= double(n_bits)) // also catches inf
            break;
        i += std::uint64_t(skip);
        if (i >= n_bits)
            break;
        bytes[i / 8] ^= std::uint8_t(1u << (i % 8));
        ++flips;
        ++i;
    }
    return flips;
}

} // namespace camllm::ecc
