/**
 * @file
 * The paper's outlier-oriented error correction code (Section VI).
 *
 * Per page: the top-1% largest-magnitude INT8 weights are recorded in
 * the spare area as (Hamming-protected 14-bit address, N value
 * copies); the smallest protected magnitude is stored as a threshold
 * in 9 redundant copies. On decode, protected values are repaired by
 * bitwise majority vote over {raw, copy1..copyN}; unprotected values
 * whose magnitude exceeds the threshold must be flip-generated fake
 * outliers and are clamped to zero.
 *
 * With N = 2 and raw bit-flip rate x, a protected bit survives unless
 * at least 2 of its 3 instances flip, so the protected flip rate is
 * ~3x^2 (1e-4 -> 3e-8), matching the paper's derivation.
 */

#ifndef CAMLLM_ECC_OUTLIER_CODEC_H
#define CAMLLM_ECC_OUTLIER_CODEC_H

#include <cstdint>
#include <span>
#include <vector>

namespace camllm::ecc {

/** Tunables of the outlier ECC (paper defaults). */
struct OutlierCodecParams
{
    std::uint32_t value_copies = 2;     ///< N (must be even, >= 2)
    std::uint32_t threshold_copies = 9; ///< redundancy of the threshold
    double protect_fraction = 0.01;     ///< top fraction protected

    bool
    valid() const
    {
        return value_copies >= 2 && value_copies % 2 == 0 &&
               threshold_copies >= 1 && threshold_copies % 2 == 1 &&
               protect_fraction > 0.0 && protect_fraction <= 1.0;
    }
};

/** Counters accumulated by decode(). */
struct OutlierDecodeStats
{
    std::uint64_t records = 0;          ///< records examined
    std::uint64_t voted_repairs = 0;    ///< protected values changed by vote
    std::uint64_t clamped = 0;          ///< fake outliers zeroed
    std::uint64_t addr_corrected = 0;   ///< addresses fixed by Hamming
    std::uint64_t records_dropped = 0;  ///< uncorrectable / out-of-range

    void
    operator+=(const OutlierDecodeStats &o)
    {
        records += o.records;
        voted_repairs += o.voted_repairs;
        clamped += o.clamped;
        addr_corrected += o.addr_corrected;
        records_dropped += o.records_dropped;
    }
};

/** Encoder/decoder for one page's outlier ECC. */
class OutlierCodec
{
  public:
    explicit OutlierCodec(const OutlierCodecParams &params = {});

    const OutlierCodecParams &params() const { return params_; }

    /** Protected element count for a page of @p elems weights. */
    std::uint32_t protectedCount(std::uint32_t elems) const;

    /** Spare-area bytes the code occupies for @p elems weights. */
    std::uint32_t eccBytes(std::uint32_t elems) const;

    /** Build the spare-area ECC for @p page. */
    std::vector<std::uint8_t> encode(std::span<const std::int8_t> page)
        const;

    /**
     * Repair @p page in place using (possibly corrupted) @p ecc.
     * @p stats, when non-null, is accumulated into.
     */
    void decode(std::span<std::int8_t> page,
                std::span<const std::uint8_t> ecc,
                OutlierDecodeStats *stats = nullptr) const;

  private:
    OutlierCodecParams params_;
};

} // namespace camllm::ecc

#endif // CAMLLM_ECC_OUTLIER_CODEC_H
