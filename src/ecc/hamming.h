/**
 * @file
 * Hamming(19,14) single-error-correcting code for outlier addresses.
 *
 * The paper protects each 14-bit outlier address with a 5-bit private
 * Hamming code: a 1-bit error is corrected on die; anything the code
 * cannot resolve causes the record to be discarded (the outlier is
 * then treated as unprotected). Note that, as with any SEC code, some
 * 2-bit errors alias to a valid single-bit syndrome and miscorrect;
 * those surface as a wrong (but in-range) address, which the paper's
 * scheme tolerates because a stray vote only perturbs one element.
 */

#ifndef CAMLLM_ECC_HAMMING_H
#define CAMLLM_ECC_HAMMING_H

#include <cstdint>

namespace camllm::ecc {

/** Result of decoding one Hamming(19,14) codeword. */
struct HammingResult
{
    enum class Status
    {
        Ok,           ///< syndrome clean
        Corrected,    ///< single bit repaired
        Uncorrectable ///< invalid syndrome; discard the record
    };

    std::uint16_t value = 0; ///< decoded 14-bit payload
    Status status = Status::Ok;
};

/** Number of payload bits. */
inline constexpr unsigned kHammingDataBits = 14;

/** Number of parity bits. */
inline constexpr unsigned kHammingParityBits = 5;

/** Total codeword bits (14 + 5). */
inline constexpr unsigned kHammingCodeBits =
    kHammingDataBits + kHammingParityBits;

/** Encode a 14-bit value into a 19-bit codeword. */
std::uint32_t hammingEncode(std::uint16_t value);

/** Decode a 19-bit codeword, correcting at most one flipped bit. */
HammingResult hammingDecode(std::uint32_t codeword);

} // namespace camllm::ecc

#endif // CAMLLM_ECC_HAMMING_H
