/**
 * @file
 * Flash-page-backed weight storage: packs a weight blob into pages
 * with spare areas, encodes the outlier ECC, injects retention
 * errors, and reads the (repaired) blob back. This is the bit-exact
 * data path behind the accuracy experiments (Fig 3b / Fig 10).
 */

#ifndef CAMLLM_ECC_PAGE_STORE_H
#define CAMLLM_ECC_PAGE_STORE_H

#include <cstdint>
#include <span>
#include <vector>

#include "ecc/outlier_codec.h"

namespace camllm::ecc {

/** Page-store configuration (defaults match the paper's flash). */
struct PageStoreParams
{
    std::uint32_t page_bytes = 16 * 1024;
    std::uint32_t spare_bytes = 1664;
    bool ecc_enabled = true;
    OutlierCodecParams codec;
};

/** Weight blob stored as flash pages + spare-area ECC. */
class PageStore
{
  public:
    explicit PageStore(const PageStoreParams &params = {});

    /** Pack @p blob into pages, encoding the spare area. */
    void load(std::span<const std::int8_t> blob);

    /**
     * Flip every stored bit (data and spare alike) with probability
     * @p ber. @return the number of bits flipped.
     */
    std::uint64_t injectErrors(double ber, std::uint64_t seed);

    /** Decode all pages (if ECC is enabled) and return the blob. */
    std::vector<std::int8_t> readBack(OutlierDecodeStats *stats = nullptr)
        const;

    std::size_t pageCount() const { return pages_.size(); }
    const PageStoreParams &params() const { return params_; }

  private:
    struct Page
    {
        std::vector<std::int8_t> data;
        std::vector<std::uint8_t> spare;
    };

    PageStoreParams params_;
    OutlierCodec codec_;
    std::vector<Page> pages_;
    std::size_t blob_bytes_ = 0;
};

} // namespace camllm::ecc

#endif // CAMLLM_ECC_PAGE_STORE_H
