/**
 * @file
 * Small FNV-1a hashing helper for memoization keys. Hashes the byte
 * representation of trivially-copyable values plus strings, so two
 * configuration structs hash equal exactly when their fields do.
 */

#ifndef CAMLLM_COMMON_HASH_H
#define CAMLLM_COMMON_HASH_H

#include <cstdint>
#include <cstring>
#include <string>
#include <type_traits>

namespace camllm {

/** Incremental 64-bit FNV-1a hasher. */
class Fnv1a
{
  public:
    static constexpr std::uint64_t kOffset = 14695981039346656037ull;
    static constexpr std::uint64_t kPrime = 1099511628211ull;

    Fnv1a &
    addBytes(const void *data, std::size_t n)
    {
        const auto *p = static_cast<const unsigned char *>(data);
        for (std::size_t i = 0; i < n; ++i) {
            h_ ^= p[i];
            h_ *= kPrime;
        }
        return *this;
    }

    /** Hash a trivially-copyable value by representation. Floating
     *  values must be written through a normalized copy (done here)
     *  so padding bytes never leak in. */
    template <typename T>
    Fnv1a &
    add(const T &v)
    {
        static_assert(std::is_trivially_copyable_v<T>,
                      "hash only flat values");
        unsigned char buf[sizeof(T)];
        std::memcpy(buf, &v, sizeof(T));
        return addBytes(buf, sizeof(T));
    }

    Fnv1a &
    add(const std::string &s)
    {
        add(s.size());
        return addBytes(s.data(), s.size());
    }

    std::uint64_t value() const { return h_; }

  private:
    std::uint64_t h_ = kOffset;
};

/** Order-dependent 64-bit hash combiner. */
inline std::uint64_t
hashCombine(std::uint64_t a, std::uint64_t b)
{
    Fnv1a h;
    h.add(a);
    h.add(b);
    return h.value();
}

} // namespace camllm

#endif // CAMLLM_COMMON_HASH_H
