/**
 * @file
 * Fundamental simulation units and conversion helpers.
 *
 * Simulated time is kept in integer nanoseconds (Tick). With the
 * paper's parameters (1 GB/s channels, 30 us page reads, 1 GHz NPU)
 * one nanosecond resolves every modeled latency, and 64-bit ticks
 * cover ~584 simulated years.
 */

#ifndef CAMLLM_COMMON_UNITS_H
#define CAMLLM_COMMON_UNITS_H

#include <cstdint>

namespace camllm {

/** Simulated time in nanoseconds. */
using Tick = std::uint64_t;

/** Largest representable tick; used as "never". */
inline constexpr Tick kTickMax = ~Tick(0);

// --- time literals ------------------------------------------------------
inline constexpr Tick kNs = 1;
inline constexpr Tick kUs = 1000 * kNs;
inline constexpr Tick kMs = 1000 * kUs;
inline constexpr Tick kSec = 1000 * kMs;

// --- sizes --------------------------------------------------------------
inline constexpr std::uint64_t kKiB = 1024;
inline constexpr std::uint64_t kMiB = 1024 * kKiB;
inline constexpr std::uint64_t kGiB = 1024 * kMiB;
inline constexpr std::uint64_t kKB = 1000;
inline constexpr std::uint64_t kMB = 1000 * kKB;
inline constexpr std::uint64_t kGB = 1000 * kMB;

/** Convert ticks to seconds as a double (for reporting only). */
constexpr double ticksToSeconds(Tick t) { return double(t) / double(kSec); }

/** Convert seconds to ticks, rounding to nearest. */
constexpr Tick secondsToTicks(double s)
{
    return Tick(s * double(kSec) + 0.5);
}

/**
 * Time to move @p bytes at @p gbps gigabytes per second (decimal GB),
 * rounded up so a transfer never finishes early.
 */
constexpr Tick transferTime(std::uint64_t bytes, double gbps)
{
    // bytes / (gbps GB/s) = bytes / gbps ns when 1 GB/s == 1 B/ns.
    double ns = double(bytes) / gbps;
    Tick t = Tick(ns);
    return (double(t) < ns) ? t + 1 : t;
}

/** Bandwidth in GB/s realized by moving @p bytes in @p ticks. */
constexpr double bandwidthGBps(std::uint64_t bytes, Tick ticks)
{
    return ticks == 0 ? 0.0 : double(bytes) / double(ticks);
}

} // namespace camllm

#endif // CAMLLM_COMMON_UNITS_H
