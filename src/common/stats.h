/**
 * @file
 * Minimal statistics accumulators for simulator instrumentation.
 */

#ifndef CAMLLM_COMMON_STATS_H
#define CAMLLM_COMMON_STATS_H

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

namespace camllm {

/** Running scalar statistic: count / sum / min / max / mean / stddev. */
class Accumulator
{
  public:
    void
    add(double v)
    {
        ++count_;
        sum_ += v;
        // Welford's online update: numerically stable for samples with
        // a large common offset (e.g. tick timestamps), where the
        // textbook sum-of-squares form cancels catastrophically.
        const double delta = v - mean_;
        mean_ += delta / double(count_);
        m2_ += delta * (v - mean_);
        min_ = std::min(min_, v);
        max_ = std::max(max_, v);
    }

    void
    reset()
    {
        *this = Accumulator();
    }

    std::uint64_t count() const { return count_; }
    double sum() const { return sum_; }
    double min() const { return count_ ? min_ : 0.0; }
    double max() const { return count_ ? max_ : 0.0; }
    double mean() const { return count_ ? mean_ : 0.0; }

    double
    variance() const
    {
        if (count_ < 2)
            return 0.0;
        double v = m2_ / double(count_ - 1);
        return v > 0.0 ? v : 0.0;
    }

    double stddev() const { return std::sqrt(variance()); }

  private:
    std::uint64_t count_ = 0;
    double sum_ = 0.0;
    double mean_ = 0.0;
    double m2_ = 0.0; ///< sum of squared deviations from the mean
    double min_ = std::numeric_limits<double>::infinity();
    double max_ = -std::numeric_limits<double>::infinity();
};

/**
 * Sample set with nearest-rank percentiles, for latency SLO reporting
 * (TTFT / TBT distributions). Keeps every sample; percentile() sorts
 * lazily, so interleave add() and queries freely.
 */
class SampleSet
{
  public:
    void
    add(double v)
    {
        v_.push_back(v);
        sorted_ = false;
    }

    std::size_t count() const { return v_.size(); }

    double
    mean() const
    {
        if (v_.empty())
            return 0.0;
        double s = 0.0;
        for (double v : v_)
            s += v;
        return s / double(v_.size());
    }

    double
    max() const
    {
        return v_.empty() ? 0.0 : *std::max_element(v_.begin(), v_.end());
    }

    /** Nearest-rank percentile; @p p in [0, 100]. Empty set: 0. */
    double
    percentile(double p) const
    {
        if (v_.empty())
            return 0.0;
        if (!sorted_) {
            std::sort(v_.begin(), v_.end());
            sorted_ = true;
        }
        const double rank = std::ceil(p / 100.0 * double(v_.size()));
        std::size_t idx = rank <= 1.0 ? 0 : std::size_t(rank) - 1;
        idx = std::min(idx, v_.size() - 1);
        return v_[idx];
    }

  private:
    mutable std::vector<double> v_;
    mutable bool sorted_ = false;
};

/**
 * Busy-time tracker for a shared resource (e.g.\ a flash channel bus).
 * Accumulates occupied intervals so utilization = busy / elapsed.
 */
class BusyTracker
{
  public:
    /** Record that the resource was occupied for [start, end). */
    void
    addBusy(std::uint64_t start, std::uint64_t end)
    {
        if (end > start)
            busy_ += end - start;
    }

    std::uint64_t busyTicks() const { return busy_; }

    /** Fraction of [0, elapsed) the resource was occupied. */
    double
    utilization(std::uint64_t elapsed) const
    {
        return elapsed == 0 ? 0.0 : double(busy_) / double(elapsed);
    }

    void reset() { busy_ = 0; }

  private:
    std::uint64_t busy_ = 0;
};

} // namespace camllm

#endif // CAMLLM_COMMON_STATS_H
