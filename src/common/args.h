/**
 * @file
 * Tiny command-line argument parser for the tools and examples.
 * Accepts --key=value and --key value forms plus boolean flags.
 */

#ifndef CAMLLM_COMMON_ARGS_H
#define CAMLLM_COMMON_ARGS_H

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace camllm {

/** Parsed command line: options map + positional arguments. */
class Args
{
  public:
    Args(int argc, const char *const *argv);

    /** @return true when --key was present (with or without value). */
    bool has(const std::string &key) const;

    /** String option or @p fallback. */
    std::string get(const std::string &key,
                    const std::string &fallback = "") const;

    /** Integer option or @p fallback; fatal() on malformed input. */
    std::int64_t getInt(const std::string &key,
                        std::int64_t fallback) const;

    /** Floating option or @p fallback; fatal() on malformed input. */
    double getDouble(const std::string &key, double fallback) const;

    const std::vector<std::string> &positional() const
    {
        return positional_;
    }

    /** Keys that were never queried (likely typos). */
    std::vector<std::string> unusedKeys() const;

  private:
    std::map<std::string, std::string> options_;
    mutable std::map<std::string, bool> used_;
    std::vector<std::string> positional_;
};

} // namespace camllm

#endif // CAMLLM_COMMON_ARGS_H
