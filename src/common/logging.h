/**
 * @file
 * Error / status reporting helpers in the gem5 tradition.
 *
 * panic()  - an internal invariant was violated (a simulator bug);
 *            aborts so a debugger or core dump can capture state.
 * fatal()  - the simulation cannot continue because of a user error
 *            (bad configuration, impossible parameters); exits cleanly.
 * warn()   - something is suspicious but the simulation continues.
 * inform() - plain status output.
 */

#ifndef CAMLLM_COMMON_LOGGING_H
#define CAMLLM_COMMON_LOGGING_H

#include <cstdarg>
#include <string>

namespace camllm {

/** Abort with a formatted message; use for simulator bugs. */
[[noreturn]] void panic(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Exit(1) with a formatted message; use for user/config errors. */
[[noreturn]] void fatal(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

/** Print a warning to stderr; the simulation continues. */
void warn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Print a status message to stderr. */
void inform(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Suppress warn()/inform() output (used by quiet benches and tests). */
void setLogQuiet(bool quiet);

/** @return true when warn()/inform() output is suppressed. */
bool logQuiet();

namespace detail {
/** Implementation hook for CAMLLM_ASSERT; formats and panics. */
[[noreturn]] void assertFail(const char *cond, const char *file, int line,
                             const char *fmt, ...)
    __attribute__((format(printf, 4, 5)));
} // namespace detail

/**
 * panic() when @p cond is false; optional printf-style context follows
 * the condition. Kept as a macro so the condition text appears in the
 * message.
 */
#define CAMLLM_ASSERT(cond, ...)                                          \
    do {                                                                  \
        if (!(cond)) {                                                    \
            ::camllm::detail::assertFail(#cond, __FILE__, __LINE__,       \
                                         "" __VA_ARGS__);                 \
        }                                                                 \
    } while (0)

} // namespace camllm

#endif // CAMLLM_COMMON_LOGGING_H
