#include "table.h"

#include <cstdio>
#include <ostream>

#include "logging.h"

namespace camllm {

void
Table::header(std::vector<std::string> cells)
{
    CAMLLM_ASSERT(!cells.empty());
    header_ = std::move(cells);
}

void
Table::row(std::vector<std::string> cells)
{
    CAMLLM_ASSERT(cells.size() == header_.size(),
                  "row has %zu cells, header has %zu",
                  cells.size(), header_.size());
    rows_.push_back(std::move(cells));
}

void
Table::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(header_.size(), 0);
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto &r : rows_)
        for (std::size_t c = 0; c < r.size(); ++c)
            widths[c] = std::max(widths[c], r[c].size());

    auto rule = [&] {
        os << '+';
        for (auto w : widths) {
            for (std::size_t i = 0; i < w + 2; ++i)
                os << '-';
            os << '+';
        }
        os << '\n';
    };
    auto line = [&](const std::vector<std::string> &cells) {
        os << '|';
        for (std::size_t c = 0; c < cells.size(); ++c) {
            os << ' ' << cells[c];
            for (std::size_t i = cells[c].size(); i < widths[c] + 1; ++i)
                os << ' ';
            os << '|';
        }
        os << '\n';
    };

    os << "== " << title_ << " ==\n";
    rule();
    line(header_);
    rule();
    for (const auto &r : rows_)
        line(r);
    rule();
}

std::string
Table::fmt(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::fmtPercent(double fraction, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, fraction * 100.0);
    return buf;
}

std::string
Table::fmtInt(std::uint64_t v)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%llu", (unsigned long long)v);
    return buf;
}

} // namespace camllm
