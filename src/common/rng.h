/**
 * @file
 * Deterministic pseudo-random number generation.
 *
 * A self-contained xoshiro256** implementation so simulation results are
 * bit-reproducible across standard libraries (std::mt19937 streams are
 * portable, but distributions are not).
 */

#ifndef CAMLLM_COMMON_RNG_H
#define CAMLLM_COMMON_RNG_H

#include <cmath>
#include <cstdint>

namespace camllm {

/** Seeded xoshiro256** generator with portable distributions. */
class Rng
{
  public:
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        // SplitMix64 seeding as recommended by the xoshiro authors.
        std::uint64_t x = seed;
        for (auto &word : state_) {
            x += 0x9e3779b97f4a7c15ULL;
            std::uint64_t z = x;
            z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
            z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
            word = z ^ (z >> 31);
        }
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return double(next() >> 11) * 0x1.0p-53;
    }

    /** Uniform integer in [0, bound). @p bound must be nonzero. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        // Rejection sampling keeps the distribution exactly uniform.
        const std::uint64_t threshold = (0 - bound) % bound;
        for (;;) {
            std::uint64_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Bernoulli draw with probability @p p. */
    bool chance(double p) { return uniform() < p; }

    /** Standard normal via Box-Muller (portable, no cached spare). */
    double
    normal()
    {
        double u1 = 0.0;
        while (u1 == 0.0)
            u1 = uniform();
        double u2 = uniform();
        return std::sqrt(-2.0 * std::log(u1)) *
               std::cos(6.28318530717958647692 * u2);
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    std::uint64_t state_[4];
};

} // namespace camllm

#endif // CAMLLM_COMMON_RNG_H
