/**
 * @file
 * Console table printer used by the benchmark binaries to emit the
 * rows/series reported in the paper's tables and figures.
 */

#ifndef CAMLLM_COMMON_TABLE_H
#define CAMLLM_COMMON_TABLE_H

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace camllm {

/** Column-aligned plain-text table with a title and a header row. */
class Table
{
  public:
    explicit Table(std::string title) : title_(std::move(title)) {}

    /** Set the header row; defines the column count. */
    void header(std::vector<std::string> cells);

    /** Append one data row; must match the header's column count. */
    void row(std::vector<std::string> cells);

    /** Render to @p os with column alignment and rules. */
    void print(std::ostream &os) const;

    /** Format helpers for common cell types. */
    static std::string fmt(double v, int precision = 2);
    static std::string fmtPercent(double fraction, int precision = 1);
    static std::string fmtInt(std::uint64_t v);

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace camllm

#endif // CAMLLM_COMMON_TABLE_H
