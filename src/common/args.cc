#include "args.h"

#include <cstdlib>

#include "common/logging.h"

namespace camllm {

Args::Args(int argc, const char *const *argv)
{
    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg.rfind("--", 0) != 0) {
            positional_.push_back(arg);
            continue;
        }
        arg = arg.substr(2);
        auto eq = arg.find('=');
        if (eq != std::string::npos) {
            options_[arg.substr(0, eq)] = arg.substr(eq + 1);
        } else if (i + 1 < argc && argv[i + 1][0] != '-') {
            options_[arg] = argv[++i];
        } else {
            options_[arg] = ""; // boolean flag
        }
    }
}

bool
Args::has(const std::string &key) const
{
    used_[key] = true;
    return options_.count(key) > 0;
}

std::string
Args::get(const std::string &key, const std::string &fallback) const
{
    used_[key] = true;
    auto it = options_.find(key);
    return it == options_.end() ? fallback : it->second;
}

std::int64_t
Args::getInt(const std::string &key, std::int64_t fallback) const
{
    used_[key] = true;
    auto it = options_.find(key);
    if (it == options_.end())
        return fallback;
    char *end = nullptr;
    std::int64_t v = std::strtoll(it->second.c_str(), &end, 10);
    if (end == it->second.c_str() || *end != '\0')
        fatal("option --%s expects an integer, got '%s'", key.c_str(),
              it->second.c_str());
    return v;
}

double
Args::getDouble(const std::string &key, double fallback) const
{
    used_[key] = true;
    auto it = options_.find(key);
    if (it == options_.end())
        return fallback;
    char *end = nullptr;
    double v = std::strtod(it->second.c_str(), &end);
    if (end == it->second.c_str() || *end != '\0')
        fatal("option --%s expects a number, got '%s'", key.c_str(),
              it->second.c_str());
    return v;
}

std::vector<std::string>
Args::unusedKeys() const
{
    std::vector<std::string> out;
    for (const auto &[key, value] : options_)
        if (!used_.count(key))
            out.push_back(key);
    return out;
}

} // namespace camllm
