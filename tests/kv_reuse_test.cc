/**
 * @file
 * KV reuse across evictions: swap-to-flash, partial eviction and
 * prefix sharing. Every knob must be inert when off (bit-identical
 * replay of the recompute-only scheduler), measurably useful when on
 * (fewer recomputed tokens, fewer fresh block allocations), and
 * deterministic across sweep-thread counts. Pressure scenarios run
 * the presetS / OPT-6.7B pair, as scheduler_test and kv_pool_test.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/arrivals.h"
#include "core/kv_pool.h"
#include "core/presets.h"
#include "core/scheduler.h"
#include "core/sweep.h"
#include "llm/model_config.h"

namespace camllm::core {
namespace {

std::uint64_t
tokenKvBytes(const llm::ModelConfig &m)
{
    return std::uint64_t(m.kvDim()) * m.n_layers;
}

void
expectSameServe(const ServeStats &a, const ServeStats &b)
{
    EXPECT_EQ(a.sim_makespan, b.sim_makespan);
    EXPECT_EQ(a.total_tokens, b.total_tokens);
    EXPECT_EQ(a.preemptions, b.preemptions);
    EXPECT_EQ(a.recompute_tokens, b.recompute_tokens);
    EXPECT_EQ(a.swap_out_blocks, b.swap_out_blocks);
    EXPECT_EQ(a.swap_in_blocks, b.swap_in_blocks);
    EXPECT_EQ(a.prefix_hit_blocks, b.prefix_hit_blocks);
    EXPECT_EQ(a.kv_block_allocs, b.kv_block_allocs);
    ASSERT_EQ(a.requests.size(), b.requests.size());
    for (std::size_t i = 0; i < a.requests.size(); ++i) {
        EXPECT_EQ(a.requests[i].admit_tick, b.requests[i].admit_tick)
            << i;
        EXPECT_EQ(a.requests[i].first_token_tick,
                  b.requests[i].first_token_tick)
            << i;
        EXPECT_EQ(a.requests[i].finish_tick,
                  b.requests[i].finish_tick)
            << i;
        EXPECT_EQ(a.requests[i].prefill_time,
                  b.requests[i].prefill_time)
            << i;
        EXPECT_EQ(a.requests[i].total_token_time,
                  b.requests[i].total_token_time)
            << i;
    }
}

// The kv_pool_test pressure scenario: two decode-heavy requests whose
// combined final demand (2 x 6 blocks) exceeds an 8-block pool, so
// the younger one is evicted and must rebuild.
std::vector<ServeRequest>
pressureRequests()
{
    return {{0, 64, 24, 0}, {0, 64, 24, 0}};
}

SchedOptions
pressureOpts(const llm::ModelConfig &model)
{
    SchedOptions opt;
    opt.max_batch = 2;
    opt.kv_block_tokens = 16;
    opt.kv_budget_bytes = 8 * 16 * tokenKvBytes(model);
    return opt;
}

// With every reuse knob off, tagging requests with prefix-sharing
// fields must be dead weight: the serve replays bit-identically.
TEST(KvReuse, PrefixFieldsInertWhenSharingOff)
{
    const CamConfig cfg = presetS();
    const llm::ModelConfig model = llm::opt6_7b();
    const Scheduler sched(cfg, model);
    std::vector<ServeRequest> plain = {{48, 0, 4, 0},
                                       {48, 0, 4, 0},
                                       {48, 0, 4, 0}};
    std::vector<ServeRequest> tagged = plain;
    for (ServeRequest &r : tagged) {
        r.prefix_id = 7;
        r.prefix_tokens = 32;
    }
    SchedOptions opt;
    opt.max_batch = 2;
    opt.policy = SchedPolicy::ChunkedInterleave;
    opt.prefill_chunk = 16;
    opt.kv_block_tokens = 16;
    opt.kv_budget_bytes = 12 * 16 * tokenKvBytes(model);
    expectSameServe(sched.serve(plain, opt),
                    sched.serve(tagged, opt));
}

// Swap-to-flash round trip: evicted blocks stream out over the
// channels, stream back on resume, and the tokens they cover are
// never recomputed. The flash KV region drains completely (the
// scheduler's own audit aborts otherwise).
TEST(KvReuse, SwapRoundTripReplacesRecompute)
{
    const CamConfig cfg = presetS();
    const llm::ModelConfig model = llm::opt6_7b();
    const Scheduler sched(cfg, model);
    const std::vector<ServeRequest> reqs = pressureRequests();

    const ServeStats base = sched.serve(reqs, pressureOpts(model));
    ASSERT_GT(base.preemptions, 0u);
    ASSERT_GT(base.recompute_tokens, 0u);
    EXPECT_EQ(base.swap_out_blocks, 0u);
    EXPECT_EQ(base.kv_swap_channel_bytes, 0u);

    SchedOptions opt = pressureOpts(model);
    opt.kv_swap = true;
    const ServeStats s = sched.serve(reqs, opt);
    EXPECT_EQ(s.completed, 2u);
    EXPECT_GT(s.swap_out_blocks, 0u);
    // Nothing killed the owner mid-rebuild, so every swapped block
    // came back.
    EXPECT_EQ(s.swap_in_blocks, s.swap_out_blocks);
    EXPECT_GT(s.kv_swap_channel_bytes, 0u);
    EXPECT_LT(s.recompute_tokens, base.recompute_tokens);
    EXPECT_EQ(s.kv_block_allocs, s.kv_block_frees);
    // Per-request: the evicted run saw blocks stream back.
    std::uint64_t swapped_in = 0;
    for (const ServeRequestStats &r : s.requests)
        swapped_in += r.swapped_in_blocks;
    EXPECT_EQ(swapped_in, s.swap_in_blocks);
}

// Partial eviction keeps the victim's warm head blocks, so the
// rebuild covers strictly fewer tokens than a full eviction's.
TEST(KvReuse, PartialEvictionShrinksRebuild)
{
    const CamConfig cfg = presetS();
    const llm::ModelConfig model = llm::opt6_7b();
    const Scheduler sched(cfg, model);
    const std::vector<ServeRequest> reqs = pressureRequests();

    const ServeStats full = sched.serve(reqs, pressureOpts(model));
    ASSERT_GT(full.preemptions, 0u);
    ASSERT_GT(full.recompute_tokens, 0u);
    EXPECT_EQ(full.partial_evictions, 0u);

    SchedOptions opt = pressureOpts(model);
    opt.kv_partial_evict = true;
    const ServeStats part = sched.serve(reqs, opt);
    EXPECT_EQ(part.completed, 2u);
    EXPECT_GT(part.partial_evictions, 0u);
    EXPECT_LT(part.recompute_tokens, full.recompute_tokens);
    EXPECT_EQ(part.kv_block_allocs, part.kv_block_frees);
}

// Prefix sharing maps cached blocks of a shared system prompt into
// later requests' tables: fewer fresh allocations, real hits, and
// the reused tokens are never prefilled again.
TEST(KvReuse, PrefixSharingReducesAllocations)
{
    const CamConfig cfg = presetS();
    const llm::ModelConfig model = llm::opt6_7b();
    const Scheduler sched(cfg, model);
    // Serial service (batch 1): every request after the first finds
    // the whole shared prefix cached.
    std::vector<ServeRequest> reqs = {{48, 0, 2, 0},
                                      {48, 0, 2, 0},
                                      {48, 0, 2, 0}};
    for (ServeRequest &r : reqs) {
        r.prefix_id = 1;
        r.prefix_tokens = 32; // 2 blocks of 16
    }
    SchedOptions opt;
    opt.max_batch = 1;
    opt.policy = SchedPolicy::ChunkedInterleave;
    opt.prefill_chunk = 16;
    opt.kv_block_tokens = 16;
    opt.kv_budget_bytes = 16 * 16 * tokenKvBytes(model);

    const ServeStats off = sched.serve(reqs, opt);
    EXPECT_EQ(off.prefix_hit_blocks, 0u);

    opt.kv_prefix_sharing = true;
    const ServeStats on = sched.serve(reqs, opt);
    EXPECT_EQ(on.completed, 3u);
    // Requests 2 and 3 each map the 2 cached prefix blocks.
    EXPECT_EQ(on.prefix_hit_blocks, 4u);
    EXPECT_EQ(on.prefix_hit_tokens, 64u);
    EXPECT_GT(on.prefix_inserted_blocks, 0u);
    EXPECT_EQ(on.kv_block_allocs + on.prefix_hit_blocks,
              off.kv_block_allocs);
    EXPECT_EQ(on.kv_block_allocs, on.kv_block_frees);
    for (std::size_t i = 1; i < on.requests.size(); ++i)
        EXPECT_EQ(on.requests[i].prefix_reused_tokens, 32u);
    // Skipped prefill shows up as strictly less prefill service.
    EXPECT_LT(on.requests[1].prefill_time,
              off.requests[1].prefill_time);
}

// All three knobs together under real pressure, with shared blocks in
// the eviction victim's table: shared blocks must stay resident for
// the cache (they are never swapped out), the pool audits must stay
// balanced, and everyone completes.
TEST(KvReuse, CombinedKnobsUnderPressureStayBalanced)
{
    const CamConfig cfg = presetS();
    const llm::ModelConfig model = llm::opt6_7b();
    const Scheduler sched(cfg, model);
    std::vector<ServeRequest> reqs = {{48, 0, 16, 0},
                                      {48, 0, 16, 0},
                                      {48, 0, 16, 0}};
    for (ServeRequest &r : reqs) {
        r.prefix_id = 9;
        r.prefix_tokens = 32;
    }
    SchedOptions opt;
    opt.max_batch = 3;
    opt.policy = SchedPolicy::ChunkedInterleave;
    opt.prefill_chunk = 16;
    opt.kv_block_tokens = 16;
    // 3 x blocksFor(64) = 12 blocks of final demand vs 9 available.
    opt.kv_budget_bytes = 9 * 16 * tokenKvBytes(model);
    opt.kv_swap = true;
    opt.kv_partial_evict = true;
    opt.kv_prefix_sharing = true;

    const ServeStats s = sched.serve(reqs, opt);
    EXPECT_EQ(s.completed, 3u);
    EXPECT_GT(s.preemptions, 0u);
    EXPECT_EQ(s.swap_in_blocks, s.swap_out_blocks);
    EXPECT_EQ(s.kv_block_allocs, s.kv_block_frees);
    EXPECT_LE(s.kv_blocks_high_water, s.kv_blocks_total);
}

// Every reuse decision lives on the deterministic event clock: the
// all-knobs scenario must serve bit-identically no matter how many
// sweep workers evaluate it.
TEST(KvReuse, AllKnobsDeterministicAcrossSweepThreads)
{
    const CamConfig cfg = presetS();
    const llm::ModelConfig model = llm::opt6_7b();
    std::vector<ServeRequest> reqs = {{48, 0, 16, 0},
                                      {48, 0, 16, 0},
                                      {48, 0, 16, 0}};
    for (ServeRequest &r : reqs) {
        r.prefix_id = 9;
        r.prefix_tokens = 32;
    }
    const auto runPoint = [&](std::size_t) {
        SchedOptions opt;
        opt.max_batch = 3;
        opt.policy = SchedPolicy::ChunkedInterleave;
        opt.prefill_chunk = 16;
        opt.kv_block_tokens = 16;
        opt.kv_budget_bytes =
            9 * 16 * tokenKvBytes(llm::opt6_7b());
        opt.kv_swap = true;
        opt.kv_partial_evict = true;
        opt.kv_prefix_sharing = true;
        return Scheduler(cfg, model).serve(reqs, opt);
    };
    ParallelSweep one(1), four(4);
    const auto a = one.map<ServeStats>(4, runPoint);
    const auto b = four.map<ServeStats>(4, runPoint);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t p = 0; p < a.size(); ++p)
        expectSameServe(a[p], b[p]);
}

// The tagged-trace helper stamps every request and clamps the prefix
// to the prompt.
TEST(KvReuse, WithSharedPrefixTagsEveryRequest)
{
    const std::vector<RequestShape> shapes = {{40, 2}, {8, 1}};
    const ArrivalTrace t =
        ArrivalTrace::poisson(1.0, 6, 3, shapes)
            .withSharedPrefix(5, 32);
    for (const ServeRequest &r : t.requests()) {
        EXPECT_EQ(r.prefix_id, 5u);
        EXPECT_EQ(r.prefix_tokens,
                  std::min<std::uint32_t>(r.prompt, 32u));
    }
}

} // namespace
} // namespace camllm::core
