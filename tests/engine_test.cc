/**
 * @file
 * Tests for the end-to-end Cambricon-LLM engine: determinism,
 * conservation of weight traffic, analytic-throughput agreement,
 * ablation orderings and extrapolation correctness.
 */

#include <gtest/gtest.h>

#include "core/area_model.h"
#include "core/cost_model.h"
#include "core/energy.h"
#include "core/engine.h"
#include "core/presets.h"
#include "llm/model_config.h"

namespace camllm::core {
namespace {

TEST(Engine, Deterministic)
{
    CamConfig cfg = presetS();
    CambriconEngine e(cfg, llm::opt6_7b());
    TokenStats a = e.decodeToken();
    TokenStats b = e.decodeToken();
    EXPECT_EQ(a.token_time, b.token_time);
    EXPECT_EQ(a.channel_bytes_high, b.channel_bytes_high);
    EXPECT_EQ(a.dram_bytes, b.dram_bytes);
}

TEST(Engine, WeightTrafficConservation)
{
    // Flash-computed bytes + NPU-read bytes must cover every weight
    // byte the decode step touches (within tile-padding slack).
    CamConfig cfg = presetS();
    CambriconEngine e(cfg, llm::opt6_7b());
    TokenStats s = e.decodeToken();
    const double touched =
        double(s.weight_bytes_flash + s.weight_bytes_npu);
    const double expected = double(e.decodeWeightBytes());
    EXPECT_NEAR(touched / expected, 1.0, 0.02);
}

TEST(Engine, SpeedMatchesAnalyticRateBallpark)
{
    // Cam-LLM-S aggregate weight throughput is ~25 GB/s; OPT-6.7B at
    // 6.6 GB/token must land near 3.5 tok/s.
    CamConfig cfg = presetS();
    CambriconEngine e(cfg, llm::opt6_7b());
    TokenStats s = e.decodeToken();
    EXPECT_GT(s.tokens_per_s, 2.5);
    EXPECT_LT(s.tokens_per_s, 4.5);
}

TEST(Engine, ExtrapolationMatchesFullSimulation)
{
    // Simulating 4 layers and extrapolating must agree with a full
    // 32-layer simulation within a couple percent.
    CamConfig sampled = presetS();
    sampled.sample_layers = 4;
    CamConfig full = presetS();
    full.sample_layers = 64; // >= model depth: no extrapolation

    llm::ModelConfig model = llm::opt6_7b();
    TokenStats a = CambriconEngine(sampled, model).decodeToken();
    TokenStats b = CambriconEngine(full, model).decodeToken();
    EXPECT_TRUE(a.extrapolated);
    EXPECT_FALSE(b.extrapolated);
    EXPECT_NEAR(double(a.token_time) / double(b.token_time), 1.0, 0.03);
    EXPECT_NEAR(double(a.dram_bytes) / double(b.dram_bytes), 1.0, 0.03);
}

TEST(Engine, ChannelUtilizationInPaperRange)
{
    // Fig 12b/14b: the full design keeps channels ~79-91% busy.
    CamConfig cfg = presetS();
    CambriconEngine e(cfg, llm::opt6_7b());
    TokenStats s = e.decodeToken();
    EXPECT_GT(s.avg_channel_util, 0.65);
    EXPECT_LE(s.avg_channel_util, 1.0);
}

TEST(Engine, NoTilingCollapsesChannelUtilization)
{
    // Fig 14b: without the NPU share, channels carry only the tiny
    // rc vectors (~2-3% busy).
    CamConfig cfg = presetS();
    cfg.hybrid_tiling = false;
    CambriconEngine e(cfg, llm::opt6_7b());
    TokenStats s = e.decodeToken();
    EXPECT_LT(s.avg_channel_util, 0.10);
    EXPECT_EQ(s.weight_bytes_npu, 0u);
}

TEST(Engine, TilingBeatsNoTiling)
{
    // Fig 14a: hybrid tiling accelerates decode by ~1.3-1.4x.
    CamConfig hybrid = presetS();
    CamConfig flash_only = presetS();
    flash_only.hybrid_tiling = false;
    llm::ModelConfig model = llm::opt6_7b();
    TokenStats h = CambriconEngine(hybrid, model).decodeToken();
    TokenStats f = CambriconEngine(flash_only, model).decodeToken();
    const double speedup = h.tokens_per_s / f.tokens_per_s;
    EXPECT_GT(speedup, 1.15);
    EXPECT_LT(speedup, 1.8);
}

TEST(Engine, SlicingBeatsNoSlicing)
{
    // Fig 12a: read-request slicing speeds decode up by ~1.6-1.8x.
    CamConfig sliced = presetS();
    CamConfig monolithic = presetS();
    monolithic.slicing = false;
    llm::ModelConfig model = llm::opt6_7b();
    TokenStats s = CambriconEngine(sliced, model).decodeToken();
    TokenStats m = CambriconEngine(monolithic, model).decodeToken();
    const double speedup = s.tokens_per_s / m.tokens_per_s;
    EXPECT_GT(speedup, 1.2);
    EXPECT_LT(speedup, 2.2);
    // Fig 12b: losing Slice Control collapses channel usage.
    EXPECT_LT(m.avg_channel_util, s.avg_channel_util - 0.15);
}

TEST(Engine, OptimalTileBeatsForcedShapes)
{
    // Fig 13: 256x2048 outperforms 128x4096 and 4096x128 on S.
    llm::ModelConfig model = llm::opt6_7b();
    auto speed = [&](std::optional<TileShape> forced) {
        CamConfig cfg = presetS();
        cfg.forced_tile = forced;
        return CambriconEngine(cfg, model).decodeToken().tokens_per_s;
    };
    const double opt = speed(std::nullopt);
    EXPECT_GE(opt * 1.001, speed(TileShape{128, 4096}));
    EXPECT_GE(opt * 1.001, speed(TileShape{4096, 128}));
}

TEST(Engine, LargerConfigsAreFaster)
{
    llm::ModelConfig model = llm::opt6_7b();
    TokenStats s = CambriconEngine(presetS(), model).decodeToken();
    TokenStats m = CambriconEngine(presetM(), model).decodeToken();
    TokenStats l = CambriconEngine(presetL(), model).decodeToken();
    EXPECT_GT(m.tokens_per_s, s.tokens_per_s * 1.5);
    EXPECT_GT(l.tokens_per_s, m.tokens_per_s * 1.5);
}

TEST(Engine, BiggerModelsAreSlower)
{
    CamConfig cfg = presetM();
    double prev = 1e9;
    for (const auto &model : llm::optFamily()) {
        TokenStats s = CambriconEngine(cfg, model).decodeToken();
        EXPECT_LT(s.tokens_per_s, prev) << model.name;
        prev = s.tokens_per_s;
    }
}

TEST(Engine, W4A16IsFasterThanW8A8)
{
    // Fig 11: halving weight bits buys 1.2-2x decode speed.
    llm::ModelConfig model = llm::opt6_7b();
    CamConfig w8 = presetS();
    CamConfig w4 = presetS();
    w4.quant = llm::QuantMode::W4A16;
    TokenStats a = CambriconEngine(w8, model).decodeToken();
    TokenStats b = CambriconEngine(w4, model).decodeToken();
    EXPECT_GT(b.tokens_per_s, a.tokens_per_s * 1.2);
    EXPECT_LT(b.tokens_per_s, a.tokens_per_s * 2.2);
}

TEST(Engine, AlphaEffectiveNearPlanned)
{
    CamConfig cfg = presetS();
    CambriconEngine e(cfg, llm::opt6_7b());
    TokenStats s = e.decodeToken();
    TilePlan p = e.planFor(4096, 4096);
    EXPECT_NEAR(s.alphaEffective(), p.alpha, 0.08);
}

TEST(Engine, DramTrafficMatchesKvCache)
{
    CamConfig cfg = presetS();
    llm::ModelConfig model = llm::opt6_7b();
    CambriconEngine e(cfg, model);
    TokenStats s = e.decodeToken();
    // Score + context KV loads dominate; appends add 2*d per layer.
    const std::uint64_t expected =
        model.kvCacheBytes(cfg.seq_len, 1) +
        2ull * model.n_layers * model.d_model;
    EXPECT_NEAR(double(s.dram_bytes) / double(expected), 1.0, 0.02);
}

TEST(Engine, ArrayReadsCoverFlashShare)
{
    CamConfig cfg = presetS();
    CambriconEngine e(cfg, llm::opt6_7b());
    TokenStats s = e.decodeToken();
    // Every weight byte is read from the NAND array exactly once,
    // whether it is consumed on-die or shipped to the NPU.
    EXPECT_GE(double(s.array_read_bytes),
              double(e.decodeWeightBytes()) * 0.98);
    // Padding (partial pages still read whole) stays bounded.
    EXPECT_LT(double(s.array_read_bytes),
              double(e.decodeWeightBytes()) * 1.25);
}

TEST(Engine, PrefetchHelpsOrIsNeutral)
{
    llm::ModelConfig model = llm::opt66b(); // big KV: real SFU gaps
    CamConfig on = presetL();
    CamConfig off = presetL();
    off.prefetch = false;
    TokenStats a = CambriconEngine(on, model).decodeToken();
    TokenStats b = CambriconEngine(off, model).decodeToken();
    EXPECT_GE(a.tokens_per_s, b.tokens_per_s * 0.999);
}

TEST(Engine, EnergyBreakdownSane)
{
    CamConfig cfg = presetS();
    CambriconEngine e(cfg, llm::opt6_7b());
    TokenStats s = e.decodeToken();
    EnergyBreakdown eb = computeEnergy(s);
    EXPECT_GT(eb.totalJ(), 0.3);
    EXPECT_LT(eb.totalJ(), 3.0);
    // NAND array reads dominate the budget.
    EXPECT_GT(eb.array_j, 0.5 * eb.totalJ());
}

TEST(Engine, SeqLenGrowsDramShareOnly)
{
    llm::ModelConfig model = llm::opt6_7b();
    CamConfig short_ctx = presetS();
    short_ctx.seq_len = 128;
    CamConfig long_ctx = presetS();
    long_ctx.seq_len = 2048;
    TokenStats a = CambriconEngine(short_ctx, model).decodeToken();
    TokenStats b = CambriconEngine(long_ctx, model).decodeToken();
    EXPECT_GT(b.dram_bytes, 10 * a.dram_bytes);
    EXPECT_LT(a.token_time, b.token_time);
    // Weight traffic is context-independent.
    EXPECT_EQ(a.weight_bytes_flash + a.weight_bytes_npu,
              b.weight_bytes_flash + b.weight_bytes_npu);
}

TEST(EngineArea, TableIvComponentModel)
{
    AreaReport r = computeCoreArea();
    EXPECT_NEAR(r.ecu_um2, 496.4, 0.1);
    EXPECT_NEAR(r.pes_um2, 562.0, 1.0);
    EXPECT_NEAR(r.buffers_um2, 58755.1, 100.0);
    EXPECT_NEAR(r.totalUw(), 1935.6, 10.0);
    EXPECT_NEAR(r.area_overhead, 0.012, 0.002);
    EXPECT_NEAR(r.power_overhead, 0.045, 0.005);
}

TEST(EngineCost, TableVNumbers)
{
    Bom cam = camllmBom(80.0, 2.0);
    Bom trad = traditionalBom(80.0, 0.0);
    EXPECT_NEAR(cam.totalUsd(), 43.67, 0.05);
    EXPECT_NEAR(trad.totalUsd(), 194.68, 0.05);
    EXPECT_NEAR(trad.totalUsd() - cam.totalUsd(), 151.01, 0.1);
}

TEST(EngineCost, ChipletAdderCapped)
{
    EXPECT_DOUBLE_EQ(chipletAdderUsd(100.0), 15.0);
    EXPECT_DOUBLE_EQ(chipletAdderUsd(10000.0), 100.0);
}

} // namespace
} // namespace camllm::core
