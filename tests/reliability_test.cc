/**
 * @file
 * Reliability co-design tests: ECC codeword-tail math, per-plane wear
 * tracking and seeding, wear-aware placement policy, remap edge cases
 * (exactly-full survivors, cascaded channel loss, wear conservation),
 * the retention-refresh scrubber at serve() level and determinism of
 * the whole reliability stack under the sweep pool. Labeled
 * "robustness" in CMake (ctest -L robustness).
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <tuple>
#include <vector>

#include "core/area_model.h"
#include "core/presets.h"
#include "core/scheduler.h"
#include "core/sweep.h"
#include "ecc/retention.h"
#include "flash/fault.h"
#include "flash/placement.h"
#include "llm/model_config.h"

namespace camllm {
namespace {

using core::SchedOptions;
using core::SchedPolicy;
using core::Scheduler;
using core::ServeRequest;
using core::ServeStats;
using flash::FaultModel;
using flash::FaultSpec;
using flash::FlashGeometry;
using flash::WearPolicy;
using flash::WeightPlacement;

// ---------------------------------------------------------------------------
// ECC codeword-tail math
// ---------------------------------------------------------------------------

TEST(EccCodeword, FailProbMatchesHandComputedBinomial)
{
    // 1-byte codeword (n = 8 bits), t = 1, ber = 0.1:
    // P(X > 1) = 1 - 0.9^8 - 8 * 0.1 * 0.9^7.
    const double expect =
        1.0 - std::pow(0.9, 8) - 8.0 * 0.1 * std::pow(0.9, 7);
    EXPECT_NEAR(ecc::codewordFailProb(0.1, 1, 1), expect, 1e-12);

    // t >= n can always correct; zero BER never fails.
    EXPECT_EQ(ecc::codewordFailProb(0.1, 8, 1), 0.0);
    EXPECT_EQ(ecc::codewordFailProb(0.0, 1, 1), 0.0);
}

TEST(EccCodeword, TailIsMonotoneInStrengthAndBer)
{
    // Ranges chosen so the tail stays representable: far beyond the
    // codeword's error mean the exact binomial tail underflows to 0
    // in double precision (correctly — those reads never retry).
    double prev = 1.0;
    for (std::uint32_t t = 8; t <= 32; t += 8) {
        const double p = ecc::codewordFailProb(2e-3, t, 1024);
        EXPECT_LT(p, prev) << "t=" << t;
        EXPECT_GT(p, 0.0) << "t=" << t;
        prev = p;
    }
    prev = 0.0;
    for (double ber = 1e-3; ber < 5e-3; ber *= 2) {
        const double p = ecc::codewordFailProb(ber, 16, 1024);
        EXPECT_GT(p, prev) << "ber=" << ber;
        prev = p;
    }
    // And the underflow end really is pinned at zero, not negative.
    EXPECT_EQ(ecc::codewordFailProb(1e-4, 64, 1024), 0.0);
}

TEST(EccCodeword, PageUcpAggregatesCodewords)
{
    // One codeword per page: page UCP is the codeword tail itself.
    const double cw = ecc::codewordFailProb(3e-3, 16, 1024);
    EXPECT_NEAR(ecc::pageUcp(3e-3, 16, 1024, 1024), cw, 1e-12);
    // Sixteen codewords per page: 1 - (1 - cw)^16, and necessarily
    // larger than any single codeword's failure probability.
    const double page = ecc::pageUcp(3e-3, 16, 1024, 16384);
    EXPECT_NEAR(page, 1.0 - std::pow(1.0 - cw, 16), 1e-12);
    EXPECT_GT(page, cw);
}

// ---------------------------------------------------------------------------
// FaultModel with the co-design knobs
// ---------------------------------------------------------------------------

TEST(ReliabilityFaultModel, EccStrengthDrivesUcpAndSenseTime)
{
    FaultSpec spec;
    spec.retention_hours = 500.0;
    spec.pe_cycles = 2000.0;
    spec.ecc_correctable_bits = 25;
    const FaultModel m(spec);
    EXPECT_TRUE(spec.any());

    // Stronger ECC at the same wear sees a strictly smaller UCP.
    FaultSpec strong = spec;
    strong.ecc_correctable_bits = 40;
    const FaultModel s(strong);
    EXPECT_GT(m.ucpAt(500.0, 2000.0), s.ucpAt(500.0, 2000.0));
    // More wear at the same strength sees a larger UCP.
    EXPECT_GT(m.ucpAt(500.0, 3500.0), m.ucpAt(500.0, 2000.0));

    // The soft-sense cost: every attempt pays 1 + bits * per_bit.
    EXPECT_DOUBLE_EQ(m.eccSenseScale(), 1.0 + 25 * 0.004);
    EXPECT_EQ(m.senseTime(30 * kUs, 0),
              Tick(double(30 * kUs) * (1.0 + 25 * 0.004)));
    // Without ECC, attempt 0 is the base tR bit-exactly.
    FaultSpec off;
    off.ucp_rate = 0.1;
    const FaultModel legacy(off);
    EXPECT_DOUBLE_EQ(legacy.eccSenseScale(), 1.0);
    EXPECT_EQ(legacy.senseTime(30 * kUs, 0), 30 * kUs);
}

TEST(ReliabilityFaultModel, PerPlaneDrawFallsBackToUniform)
{
    FaultSpec spec;
    spec.ucp_rate = 0.2;
    spec.seed = 5;
    FaultModel a(spec), b(spec);
    // Without a wear source the per-plane draw must replay the
    // uniform draw's random stream exactly.
    EXPECT_FALSE(b.wearAware());
    for (int i = 0; i < 2000; ++i)
        ASSERT_EQ(a.drawRetries(), b.drawRetriesForPlane(3, 1, 0))
            << "draw " << i;
    EXPECT_EQ(a.drawsTaken(), b.drawsTaken());
}

TEST(ReliabilityFaultModel, WornPlanesFailMoreThanFreshOnes)
{
    FlashGeometry g;
    WeightPlacement place(g);
    place.seedStriped(g.totalPages() / 4);
    place.seedWear(2000.0, 0.6, 500.0);

    FaultSpec spec;
    spec.retention_hours = 500.0;
    spec.pe_cycles = 2000.0;
    spec.wear_tracking = true;
    spec.ecc_correctable_bits = 16;
    spec.seed = 9;
    FaultModel m(spec, g.page_bytes);
    m.setWearSource(&place);
    EXPECT_TRUE(m.wearAware());

    // Draw many reads against the least- and most-worn planes: the
    // worn end of the gradient must retry more in aggregate.
    std::uint64_t fresh = 0, worn = 0;
    const std::uint32_t last_die = g.diesPerChannel() - 1;
    for (int i = 0; i < 4000; ++i) {
        fresh += m.drawRetriesForPlane(0, 0, 0);
        worn += m.drawRetriesForPlane(g.channels - 1, last_die,
                                      g.planes_per_die - 1);
    }
    EXPECT_GT(worn, fresh);
}

// ---------------------------------------------------------------------------
// Per-plane wear state and placement policy
// ---------------------------------------------------------------------------

TEST(WearState, SeedGradientSpansTheSkew)
{
    FlashGeometry g;
    WeightPlacement place(g);
    place.seedWear(2000.0, 0.5, 120.0);
    const std::size_t n = place.planeCount();
    EXPECT_DOUBLE_EQ(place.planeWear(0), 1000.0);
    EXPECT_DOUBLE_EQ(place.planeWear(n - 1), 3000.0);
    EXPECT_DOUBLE_EQ(place.wearSpreadPe(), 2000.0);
    EXPECT_DOUBLE_EQ(place.wearMaxPe(), 3000.0);
    EXPECT_NEAR(place.wearMeanPe(), 2000.0, 1e-9);
    EXPECT_DOUBLE_EQ(place.planeAge(0), 120.0);
}

TEST(WearState, ProgramsAddAmortizedWear)
{
    FlashGeometry g;
    WeightPlacement place(g);
    const std::uint64_t per_plane =
        std::uint64_t(g.blocks_per_plane) * g.pages_per_block;
    // One full plane's worth of programs is exactly one P/E cycle.
    place.notePrograms(0, per_plane);
    EXPECT_DOUBLE_EQ(place.planeWear(0), 1.0);
    EXPECT_DOUBLE_EQ(place.planeWear(1), 0.0);
    EXPECT_EQ(place.totalPrograms(), per_plane);
}

TEST(WearState, LeastWornPolicySteersReadAllocation)
{
    FlashGeometry g;
    WeightPlacement bump(g);
    bump.seedWear(2000.0, 0.5, 0.0);
    // Bump fills from the round-robin cursor, last plane backwards.
    const flash::PageAddress a = bump.allocReadPage();
    EXPECT_EQ(a.plane, g.planes_per_die - 1);

    WeightPlacement lev(g);
    lev.seedWear(2000.0, 0.5, 0.0);
    lev.setWearPolicy(WearPolicy::LeastWorn);
    // Least-worn goes to the bottom of the wear gradient instead.
    const flash::PageAddress b = lev.allocReadPage();
    EXPECT_EQ(b.channel, 0u);
    EXPECT_EQ(b.plane, 0u);
    EXPECT_DOUBLE_EQ(lev.planeWear(0),
                     1000.0 + 1.0 / (double(g.blocks_per_plane) *
                                     g.pages_per_block));
}

TEST(WearState, RefreshBookkeepingTracksFreshnessAndPrograms)
{
    FlashGeometry g;
    WeightPlacement place(g);
    place.seedStriped(place.planeCount() * 8); // 8 pages per plane
    // Everything equally stale: sweep order starts at plane 0.
    EXPECT_EQ(place.stalestPlane(), 0u);
    place.noteRefresh(0, 2);
    EXPECT_DOUBLE_EQ(place.planeFreshFraction(0), 1.0 / 8.0);
    EXPECT_EQ(place.stalestPlane(), 1u); // plane 0 is fresher now
    // The program wear landed on the destination, not the source.
    EXPECT_GT(place.planeWear(2), place.planeWear(0));
}

// ---------------------------------------------------------------------------
// Remap edge cases
// ---------------------------------------------------------------------------

FlashGeometry
tinyGeometry()
{
    FlashGeometry g;
    g.channels = 2;
    g.chips_per_channel = 1;
    g.dies_per_chip = 1;
    g.planes_per_die = 2;
    g.blocks_per_plane = 4;
    g.pages_per_block = 8;
    return g; // 2 channels x 2 planes x 32 pages = 128 pages
}

TEST(RemapEdge, SurvivorsExactlyFullSucceedsAtTheBoundary)
{
    const FlashGeometry g = tinyGeometry();
    WeightPlacement place(g);
    const std::uint64_t survivor_cap = g.totalPages() / 2;
    place.seedStriped(survivor_cap); // survivors can just barely hold
    const std::uint64_t moved = place.remapChannel(0);
    EXPECT_GT(moved, 0u);
    EXPECT_EQ(place.pagesAllocated(), survivor_cap);
    EXPECT_EQ(place.freePages(), 0u);
    EXPECT_DOUBLE_EQ(place.occupancy(), 1.0);
    EXPECT_EQ(place.pagesOnChannel(1), survivor_cap);
}

TEST(RemapEdge, SurvivorsOverflowIsFatal)
{
    const FlashGeometry g = tinyGeometry();
    WeightPlacement place(g);
    place.seedStriped(g.totalPages() / 2 + 2); // one page too many on
                                               // each dead plane
    EXPECT_DEATH(place.remapChannel(0), "cannot hold");
}

TEST(RemapEdge, CascadedChannelLossConservesPagesAndWear)
{
    const FlashGeometry g; // full 8-channel device
    WeightPlacement place(g);
    const std::uint64_t pages = g.totalPages() / 4;
    place.seedStriped(pages);
    const std::uint64_t programs0 = place.totalPrograms();
    EXPECT_EQ(programs0, pages); // seeding programs every page once

    // First loss: every moved page programs a survivor.
    const std::uint64_t moved1 = place.remapChannel(0);
    EXPECT_EQ(place.totalPrograms(), programs0 + moved1);

    // Second loss onto the already-degraded device: channel 1 now
    // holds its own seed share plus remapped strands, all of which
    // must land on the remaining six channels.
    const std::uint64_t on_ch1 = place.pagesOnChannel(1);
    EXPECT_GT(on_ch1, pages / g.channels); // it absorbed remap spill
    const std::uint64_t moved2 = place.remapChannel(1);
    EXPECT_EQ(moved2, on_ch1);
    EXPECT_EQ(place.totalPrograms(), programs0 + moved1 + moved2);

    std::uint64_t resident = 0;
    for (std::uint32_t c = 0; c < g.channels; ++c)
        resident += place.pagesOnChannel(c);
    EXPECT_EQ(resident, pages);
    EXPECT_EQ(place.pagesOnChannel(0), 0u);
    EXPECT_EQ(place.pagesOnChannel(1), 0u);
    EXPECT_LE(place.pagesAllocated(), place.capacityPages());
}

TEST(RemapEdge, LastChannelDeathIsLoudNotSilent)
{
    const FlashGeometry g = tinyGeometry();
    WeightPlacement place(g);
    place.seedStriped(4);
    place.remapChannel(0);
    EXPECT_GT(place.capacityPages(), 0u);
    EXPECT_NO_FATAL_FAILURE(place.occupancy());
    // Killing the last channel has no survivors to remap onto — the
    // device dies loudly there, which is also what keeps occupancy()
    // and freePages() from ever dividing by a zero live capacity
    // (their own cap == 0 check is the defensive backstop).
    EXPECT_DEATH(place.remapChannel(1), "last flash channel died");
}

// ---------------------------------------------------------------------------
// serve() with the reliability stack armed
// ---------------------------------------------------------------------------

const std::vector<ServeRequest> &
smallTrace()
{
    static const std::vector<ServeRequest> reqs = {
        {128, 0, 2, 0}, {192, 0, 2, 0}};
    return reqs;
}

SchedOptions
chunkedOpts()
{
    SchedOptions opt;
    opt.max_batch = 2;
    opt.policy = SchedPolicy::ChunkedInterleave;
    opt.prefill_chunk = 64;
    return opt;
}

SchedOptions
agedOpts(WearPolicy policy, std::uint32_t ecc_bits, double refresh)
{
    SchedOptions opt = chunkedOpts();
    opt.faults.seed = 17;
    opt.faults.retention_hours = 500.0;
    opt.faults.pe_cycles = 2000.0;
    opt.faults.wear_tracking = true;
    opt.faults.wear_skew = 0.6;
    opt.faults.wear_policy = policy;
    opt.faults.ecc_correctable_bits = ecc_bits;
    opt.faults.refresh_pages_per_s = refresh;
    return opt;
}

TEST(ReliabilityServing, RefreshScrubsCompeteAndAccount)
{
    const Scheduler sched(core::presetS(), llm::opt6_7b());
    const ServeStats clean = sched.serve(smallTrace(), chunkedOpts());

    SchedOptions opt = chunkedOpts();
    // One scrub per 500 us: thousands of scrubs over the run without
    // saturating dies the serving reads already keep busy.
    opt.faults.refresh_pages_per_s = 2000.0;
    const ServeStats st = sched.serve(smallTrace(), opt);

    const std::uint32_t page = core::presetS().flash.geometry.page_bytes;
    EXPECT_GT(st.refresh_pages, 0u);
    EXPECT_GE(st.refresh_channel_bytes, st.refresh_pages * page);
    // Scrub reads occupy dies and buses the serving reads wanted:
    // service can only get slower, and the run still terminates (the
    // scheduler stops the self-rescheduling scrubber at last exit).
    EXPECT_GE(st.sim_makespan, clean.sim_makespan);
    EXPECT_EQ(st.completed, 2u);

    // Deterministic: the same spec replays the same scrub schedule.
    const ServeStats again = sched.serve(smallTrace(), opt);
    EXPECT_EQ(again.refresh_pages, st.refresh_pages);
    EXPECT_EQ(again.refresh_channel_bytes, st.refresh_channel_bytes);
    EXPECT_EQ(again.sim_makespan, st.sim_makespan);
}

// Regression for the open-loop scrubber: a configured rate far above
// die service capacity (~33k pages/s/die at tR = 30 us) used to stack
// one scrub read per beat onto saturated channel queues without
// bound. The closed-loop beat must defer instead, completing scrubs
// at hardware pace while serving still finishes.
TEST(ReliabilityServing, OverCapacityRefreshSelfThrottles)
{
    const Scheduler sched(core::presetS(), llm::opt6_7b());
    SchedOptions opt = chunkedOpts();
    opt.faults.refresh_pages_per_s = 2.0e6; // ~60x one die's capacity
    const ServeStats st = sched.serve(smallTrace(), opt);

    EXPECT_EQ(st.completed, 2u);
    EXPECT_GT(st.refresh_pages, 0u);
    EXPECT_GT(st.refresh_deferred_beats, 0u);
    // Completed scrubs are bounded by service capacity, not by the
    // configured rate: the open-loop scrubber would have issued one
    // read per beat (2e6/s over the whole makespan).
    const double beats_configured =
        double(st.sim_makespan) / double(kSec) * 2.0e6;
    EXPECT_LT(double(st.refresh_pages), beats_configured / 10.0);

    // Deterministic: the same spec replays the same throttling.
    const ServeStats again = sched.serve(smallTrace(), opt);
    EXPECT_EQ(again.refresh_pages, st.refresh_pages);
    EXPECT_EQ(again.refresh_deferred_beats, st.refresh_deferred_beats);
    EXPECT_EQ(again.sim_makespan, st.sim_makespan);
}

TEST(ReliabilityServing, WearLevelingShrinksTheSpreadUnderRefresh)
{
    const Scheduler sched(core::presetS(), llm::opt6_7b());
    const ServeStats bump =
        sched.serve(smallTrace(),
                    agedOpts(WearPolicy::Bump, 32, 2000.0));
    const ServeStats lev =
        sched.serve(smallTrace(),
                    agedOpts(WearPolicy::LeastWorn, 32, 2000.0));
    EXPECT_GT(bump.refresh_pages, 0u);
    EXPECT_GT(lev.refresh_pages, 0u);
    // Same seeded gradient; only the least-worn policy concentrates
    // refresh programs on the freshest plane and lifts the minimum.
    EXPECT_GT(bump.wear_spread_pe, 0.0);
    EXPECT_LT(lev.wear_spread_pe, bump.wear_spread_pe);
    EXPECT_EQ(bump.completed, 2u);
    EXPECT_EQ(lev.completed, 2u);
}

TEST(ReliabilityServing, StrongerEccCollapsesRetries)
{
    const Scheduler sched(core::presetS(), llm::opt6_7b());
    const ServeStats weak = sched.serve(
        smallTrace(), agedOpts(WearPolicy::Bump, 16, 0.0));
    const ServeStats strong = sched.serve(
        smallTrace(), agedOpts(WearPolicy::Bump, 48, 0.0));
    EXPECT_GT(weak.read_retries, 0u);
    EXPECT_LT(strong.read_retries, weak.read_retries);
    // The decoder silicon that buys: linear in correction strength.
    EXPECT_GT(core::eccDecoderAreaUm2(48), core::eccDecoderAreaUm2(16));
}

TEST(ReliabilityServing, InertKnobsKeepTheLegacyTimeline)
{
    const Scheduler sched(core::presetS(), llm::opt6_7b());
    SchedOptions legacy = chunkedOpts();
    legacy.faults.ucp_rate = 0.05;
    legacy.faults.seed = 7;
    const ServeStats a = sched.serve(smallTrace(), legacy);

    // Passive knob values (skew, codeword size, sense adder) must be
    // inert while wear tracking, ECC strength and refresh stay off —
    // the gating is what keeps PR 6 fault timelines byte-stable.
    SchedOptions knobs = legacy;
    knobs.faults.wear_skew = 0.6;
    knobs.faults.ecc_codeword_bytes = 2048;
    knobs.faults.ecc_sense_per_bit = 0.02;
    const ServeStats b = sched.serve(smallTrace(), knobs);
    ASSERT_EQ(a.requests.size(), b.requests.size());
    EXPECT_EQ(a.sim_makespan, b.sim_makespan);
    EXPECT_EQ(a.read_retries, b.read_retries);
    for (std::size_t i = 0; i < a.requests.size(); ++i) {
        EXPECT_EQ(a.requests[i].finish_tick, b.requests[i].finish_tick);
        EXPECT_EQ(a.requests[i].total_token_time,
                  b.requests[i].total_token_time);
    }
    // And nothing reliability-flavored leaked into the stats.
    EXPECT_EQ(a.refresh_pages, 0u);
    EXPECT_EQ(a.wear_spread_pe, 0.0);
}

// The entire reliability stack — per-plane wear, ECC tails, refresh —
// must be a pure function of the spec regardless of how many sweep
// workers run serve() concurrently.
TEST(ReliabilityServing, SweepThreadCountDoesNotChangeTimelines)
{
    const Scheduler sched(core::presetS(), llm::opt6_7b());
    const std::uint32_t bits[3] = {16, 32, 48};
    const auto point = [&](std::size_t i) {
        const ServeStats st = sched.serve(
            smallTrace(),
            agedOpts(i % 2 == 0 ? WearPolicy::Bump
                                : WearPolicy::LeastWorn,
                     bits[i], 1000.0));
        return std::tuple<Tick, std::uint64_t, std::uint64_t, double>(
            st.sim_makespan, st.read_retries, st.refresh_pages,
            st.wear_spread_pe);
    };
    using Point = std::tuple<Tick, std::uint64_t, std::uint64_t, double>;
    const auto seq = core::ParallelSweep(1).map<Point>(3, point);
    const auto par = core::ParallelSweep(4).map<Point>(3, point);
    ASSERT_EQ(seq.size(), par.size());
    for (std::size_t i = 0; i < seq.size(); ++i)
        EXPECT_EQ(seq[i], par[i]) << "point " << i;
    EXPECT_GT(std::get<2>(seq[0]), 0u); // refresh ran at every point
}

// ---------------------------------------------------------------------------
// ECC decoder area model
// ---------------------------------------------------------------------------

TEST(EccArea, DecoderScalesLinearlyFromTheCalibratedBaseline)
{
    const core::AreaModelParams p;
    EXPECT_DOUBLE_EQ(core::eccDecoderAreaUm2(p.ecu_baseline_bits, p),
                     p.ecu_um2);
    EXPECT_DOUBLE_EQ(core::eccDecoderAreaUm2(2 * p.ecu_baseline_bits, p),
                     2.0 * p.ecu_um2);
    EXPECT_DOUBLE_EQ(core::eccDecoderPowerUw(p.ecu_baseline_bits, p),
                     p.ecu_uw);
    // Table IV itself is untouched by the co-design knob.
    const core::AreaReport r = core::computeCoreArea(p);
    EXPECT_DOUBLE_EQ(r.ecu_um2, p.ecu_um2);
}

} // namespace
} // namespace camllm
