/**
 * @file
 * Tests for the unified serving scheduler: decode-only FCFS
 * bit-exactness against the recorded PR 2 BatchEngine event sequence,
 * one-chunk prefill equivalence with CambriconEngine::prefill(),
 * chunked-prefill determinism across sweep-thread settings, Poisson
 * trace replay determinism, TTFT monotonicity in the chunk budget,
 * and the NPU contention model.
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "core/arrivals.h"
#include "core/batch_engine.h"
#include "core/engine.h"
#include "core/presets.h"
#include "core/scheduler.h"
#include "core/sweep.h"
#include "llm/model_config.h"

namespace camllm::core {
namespace {

void
expectSameStats(const TokenStats &a, const TokenStats &b)
{
    EXPECT_EQ(a.token_time, b.token_time);
    EXPECT_DOUBLE_EQ(a.tokens_per_s, b.tokens_per_s);
    EXPECT_DOUBLE_EQ(a.avg_channel_util, b.avg_channel_util);
    EXPECT_EQ(a.channel_bytes_high, b.channel_bytes_high);
    EXPECT_EQ(a.channel_bytes_low, b.channel_bytes_low);
    EXPECT_EQ(a.dram_bytes, b.dram_bytes);
    EXPECT_EQ(a.array_read_bytes, b.array_read_bytes);
    EXPECT_EQ(a.pages_computed, b.pages_computed);
    EXPECT_EQ(a.pages_read, b.pages_read);
    EXPECT_DOUBLE_EQ(a.npu_flops, b.npu_flops);
    EXPECT_DOUBLE_EQ(a.flash_flops, b.flash_flops);
    EXPECT_EQ(a.weight_bytes_flash, b.weight_bytes_flash);
    EXPECT_EQ(a.weight_bytes_npu, b.weight_bytes_npu);
    EXPECT_EQ(a.extrapolated, b.extrapolated);
    EXPECT_EQ(a.simulated_layers, b.simulated_layers);
}

// Golden per-request stats recorded from the PR 2 BatchEngine
// (presetS, OPT-6.7B, requests {256,2},{512,1},{1024,2},{384,1},
// max_batch 2) BEFORE the scheduler refactor. Decode-only FCFS with
// free NPU arbitration must reproduce that event sequence to the
// tick: these numbers are the contract, not a snapshot of the
// current implementation.
struct Golden
{
    Tick admit, finish, total;
};

constexpr Golden kGolden[4] = {
    {0, 161723879, 1111725799},
    {0, 85240587, 560241547},
    {85240587, 255464719, 1120226052},
    {161723879, 246867591, 560144672},
};
constexpr Tick kGoldenMakespan = 255464719;

constexpr Golden kGoldenStagger50k[4] = {
    {0, 161723879, 1111725799},
    {50000, 85240587, 560191547},
    {85240587, 255464719, 1120226052},
    {161723879, 246867591, 560144672},
};

std::vector<RequestSpec>
goldenRequests()
{
    return {{256, 2}, {512, 1}, {1024, 2}, {384, 1}};
}

TEST(Scheduler, DecodeOnlyFcfsReproducesPr2GoldenStats)
{
    const CamConfig cfg = presetS();
    const llm::ModelConfig model = llm::opt6_7b();
    const BatchStats bs =
        BatchEngine(cfg, model).run(goldenRequests(), 2);

    ASSERT_EQ(bs.requests.size(), 4u);
    EXPECT_EQ(bs.sim_makespan, kGoldenMakespan);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(bs.requests[i].admit_tick, kGolden[i].admit) << i;
        EXPECT_EQ(bs.requests[i].finish_tick, kGolden[i].finish) << i;
        EXPECT_EQ(bs.requests[i].total_token_time, kGolden[i].total)
            << i;
    }
    EXPECT_DOUBLE_EQ(bs.aggregate_tokens_per_s, 3.5772780785431872);
    EXPECT_DOUBLE_EQ(bs.finite_run_tokens_per_s, 3.5193594347360162);
    EXPECT_DOUBLE_EQ(bs.extrapolation_factor, 6.6735465811466517);

    const BatchStats st =
        BatchEngine(cfg, model).run(goldenRequests(), 2, 50000);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(st.requests[i].admit_tick,
                  kGoldenStagger50k[i].admit)
            << i;
        EXPECT_EQ(st.requests[i].finish_tick,
                  kGoldenStagger50k[i].finish)
            << i;
        EXPECT_EQ(st.requests[i].total_token_time,
                  kGoldenStagger50k[i].total)
            << i;
    }
}

// The BatchEngine facade and a directly-driven Scheduler must agree
// field for field on decode-only work (guards the facade mapping).
TEST(Scheduler, FacadeMatchesDirectSchedulerUse)
{
    const CamConfig cfg = presetS();
    const llm::ModelConfig model = llm::opt6_7b();

    const BatchStats bs =
        BatchEngine(cfg, model).run(goldenRequests(), 2);

    std::vector<ServeRequest> sreqs;
    for (const RequestSpec &r : goldenRequests())
        sreqs.push_back({0, r.context, r.decode_tokens, 0});
    SchedOptions opt;
    opt.max_batch = 2;
    const ServeStats ss = Scheduler(cfg, model).serve(sreqs, opt);

    ASSERT_EQ(ss.requests.size(), bs.requests.size());
    EXPECT_EQ(ss.sim_makespan, bs.sim_makespan);
    EXPECT_DOUBLE_EQ(ss.aggregate_tokens_per_s,
                     bs.aggregate_tokens_per_s);
    EXPECT_DOUBLE_EQ(ss.fairness_jain, bs.fairness_jain);
    for (std::size_t i = 0; i < ss.requests.size(); ++i) {
        EXPECT_EQ(ss.requests[i].admit_tick,
                  bs.requests[i].admit_tick);
        EXPECT_EQ(ss.requests[i].finish_tick,
                  bs.requests[i].finish_tick);
        EXPECT_EQ(ss.requests[i].total_token_time,
                  bs.requests[i].total_token_time);
        expectSameStats(ss.requests[i].first_token,
                        bs.requests[i].first_token);
        // Decode-only requests: first token == first decode step.
        EXPECT_EQ(ss.requests[i].prefill_chunks, 0u);
        EXPECT_GT(ss.requests[i].ttft_ms, 0.0);
    }
    // No prefill work was submitted, and decode bytes flowed.
    EXPECT_EQ(ss.prefill_channel_bytes, 0u);
    EXPECT_GT(ss.decode_channel_bytes, 0u);
}

// A single request whose whole prompt prefills as one chunk must
// replay CambriconEngine::prefill() bit-identically (same device
// construction order, same graph, same event sequence).
TEST(Scheduler, OneChunkPrefillMatchesEnginePrefillBitExactly)
{
    const CamConfig cfg = presetS();
    const llm::ModelConfig model = llm::opt6_7b();
    const std::uint32_t prompt = 512;

    const TokenStats single =
        CambriconEngine(cfg, model).prefill(prompt);

    std::vector<ServeRequest> reqs = {{prompt, 0, 1, 0}};
    SchedOptions opt;
    opt.max_batch = 1;
    opt.policy = SchedPolicy::DecodeFirstFcfs; // whole-prompt chunk
    const ServeStats ss = Scheduler(cfg, model).serve(reqs, opt);

    ASSERT_EQ(ss.requests.size(), 1u);
    const ServeRequestStats &r = ss.requests[0];
    EXPECT_EQ(r.prefill_chunks, 1u);
    expectSameStats(single, r.first_token);
    EXPECT_EQ(r.prefill_time, single.token_time);
    EXPECT_GT(r.total_token_time, 0u); // plus one decode step
    EXPECT_GT(ss.prefill_channel_bytes, 0u);
}

// Splitting the same prompt into chunks must conserve the KV it
// writes and emit exactly one first token. The causal attention
// charge telescopes across chunks (splitting never changes it), so
// the only chunking costs are re-streamed weights/KV and per-chunk
// drains — a TTFT that rises with the chunk count. (At a fixed chunk
// count a smaller budget can re-stream slightly *less* KV — a more
// balanced split — so the budgets below shrink enough to strictly
// increase the chunk count at every step.)
TEST(Scheduler, TtftRisesMonotonicallyAsChunkBudgetShrinks)
{
    const CamConfig cfg = presetS();
    const llm::ModelConfig model = llm::opt6_7b();
    const Scheduler sched(cfg, model);
    const std::vector<ServeRequest> reqs = {{768, 0, 1, 0}};

    double prev_ttft = 0.0;
    std::uint32_t prev_chunks = 0;
    for (std::uint32_t budget : {768u, 256u, 64u}) {
        SchedOptions opt;
        opt.max_batch = 1;
        opt.policy = SchedPolicy::ChunkedInterleave;
        opt.prefill_chunk = budget;
        const ServeStats ss = sched.serve(reqs, opt);
        ASSERT_EQ(ss.requests.size(), 1u);
        const ServeRequestStats &r = ss.requests[0];
        EXPECT_EQ(r.prefill_chunks, (768 + budget - 1) / budget);
        EXPECT_GT(r.prefill_chunks, prev_chunks);
        EXPECT_GE(r.ttft_ms, prev_ttft)
            << "chunk budget " << budget;
        prev_ttft = r.ttft_ms;
        prev_chunks = r.prefill_chunks;
    }
}

// Chunked prefill interleaved with decode must be deterministic no
// matter how many sweep workers evaluate the scenario.
TEST(Scheduler, ChunkedServeDeterministicAcrossSweepThreads)
{
    const CamConfig cfg = presetS();
    const llm::ModelConfig model = llm::opt6_7b();
    const std::vector<ServeRequest> reqs = {
        {0, 512, 2, 0},  // warm decode request
        {384, 0, 1, 0},  // prompt arriving with it
        {0, 1024, 1, 0}, // second decode request
        {640, 0, 2, 0},  // second prompt
    };
    const auto runPoint = [&](std::size_t) {
        SchedOptions opt;
        opt.max_batch = 2;
        opt.policy = SchedPolicy::ChunkedInterleave;
        opt.prefill_chunk = 128;
        opt.npu_contention = true;
        return Scheduler(cfg, model).serve(reqs, opt);
    };
    ParallelSweep one(1), four(4);
    const auto a = one.map<ServeStats>(4, runPoint);
    const auto b = four.map<ServeStats>(4, runPoint);

    ASSERT_EQ(a.size(), b.size());
    for (std::size_t p = 0; p < a.size(); ++p) {
        EXPECT_EQ(a[p].sim_makespan, b[p].sim_makespan);
        EXPECT_DOUBLE_EQ(a[p].ttft.p99_ms, b[p].ttft.p99_ms);
        EXPECT_DOUBLE_EQ(a[p].tbt.p95_ms, b[p].tbt.p95_ms);
        ASSERT_EQ(a[p].requests.size(), b[p].requests.size());
        for (std::size_t r = 0; r < a[p].requests.size(); ++r) {
            EXPECT_EQ(a[p].requests[r].finish_tick,
                      b[p].requests[r].finish_tick);
            EXPECT_EQ(a[p].requests[r].prefill_time,
                      b[p].requests[r].prefill_time);
            EXPECT_EQ(a[p].requests[r].total_token_time,
                      b[p].requests[r].total_token_time);
        }
    }
}

TEST(Scheduler, PoissonTraceReplaysBitIdenticallyFromSeed)
{
    const std::vector<RequestShape> shapes = {{256, 2}, {512, 1}};
    const ArrivalTrace a = ArrivalTrace::poisson(4.0, 6, 42, shapes);
    const ArrivalTrace b = ArrivalTrace::poisson(4.0, 6, 42, shapes);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a.requests()[i].arrival, b.requests()[i].arrival);
        EXPECT_EQ(a.requests()[i].prompt, b.requests()[i].prompt);
        EXPECT_EQ(a.requests()[i].decode_tokens,
                  b.requests()[i].decode_tokens);
    }
    // A different seed lands a different trace.
    const ArrivalTrace c = ArrivalTrace::poisson(4.0, 6, 43, shapes);
    bool any_diff = false;
    for (std::size_t i = 0; i < a.size(); ++i)
        any_diff = any_diff ||
                   a.requests()[i].arrival != c.requests()[i].arrival;
    EXPECT_TRUE(any_diff);
    // Arrivals are sorted and strictly positive in expectation.
    for (std::size_t i = 1; i < a.size(); ++i)
        EXPECT_GE(a.requests()[i].arrival,
                  a.requests()[i - 1].arrival);

    // End-to-end: serving the same trace twice is bit-identical.
    const CamConfig cfg = presetS();
    const llm::ModelConfig model = llm::opt6_7b();
    SchedOptions opt;
    opt.max_batch = 2;
    opt.policy = SchedPolicy::ChunkedInterleave;
    opt.prefill_chunk = 128;
    const Scheduler sched(cfg, model);
    const ServeStats s1 = sched.serve(a, opt);
    const ServeStats s2 = sched.serve(b, opt);
    EXPECT_EQ(s1.sim_makespan, s2.sim_makespan);
    ASSERT_EQ(s1.requests.size(), s2.requests.size());
    for (std::size_t i = 0; i < s1.requests.size(); ++i) {
        EXPECT_EQ(s1.requests[i].admit_tick,
                  s2.requests[i].admit_tick);
        EXPECT_EQ(s1.requests[i].first_token_tick,
                  s2.requests[i].first_token_tick);
        EXPECT_EQ(s1.requests[i].finish_tick,
                  s2.requests[i].finish_tick);
    }
    // Arrival-driven runs actually queue: no admit precedes arrival.
    for (const ServeRequestStats &r : s1.requests)
        EXPECT_GE(r.admit_tick, r.arrival);
}

TEST(Scheduler, TraceFileRoundTrips)
{
    const std::string path =
        ::testing::TempDir() + "camllm_trace_test.txt";
    {
        std::ofstream out(path);
        out << "# arrival_us prompt decode [context]\n";
        out << "0 256 2\n";
        out << "1500.5 0 1 512\n";
        out << "1500.5 384 3\n";
    }
    const ArrivalTrace t = ArrivalTrace::fromFile(path);
    ASSERT_EQ(t.size(), 3u);
    EXPECT_EQ(t.requests()[0].arrival, 0u);
    EXPECT_EQ(t.requests()[0].prompt, 256u);
    EXPECT_EQ(t.requests()[0].decode_tokens, 2u);
    EXPECT_EQ(t.requests()[1].arrival, Tick(1500.5 * 1000 + 0.5));
    EXPECT_EQ(t.requests()[1].prompt, 0u);
    EXPECT_EQ(t.requests()[1].context, 512u);
    EXPECT_EQ(t.requests()[2].arrival, t.requests()[1].arrival);
    std::remove(path.c_str());
}

// File-replay error paths: malformed lines, empty traces and
// time-travelling arrivals are user errors the loader must refuse
// loudly instead of serving a silently-wrong trace.
class TraceFileErrors : public ::testing::Test
{
  protected:
    std::string
    write(const char *name, const char *content)
    {
        const std::string path = ::testing::TempDir() + name;
        std::ofstream out(path);
        out << content;
        return path;
    }

    void
    TearDown() override
    {
        for (const std::string &p : created_)
            std::remove(p.c_str());
    }

    std::vector<std::string> created_;
};

TEST_F(TraceFileErrors, MissingFileIsFatal)
{
    EXPECT_EXIT(ArrivalTrace::fromFile("/nonexistent/trace.txt"),
                ::testing::ExitedWithCode(1), "cannot open");
}

TEST_F(TraceFileErrors, MalformedLineIsFatal)
{
    const std::string path =
        write("camllm_trace_bad.txt", "0 256 2\nnot a request\n");
    created_.push_back(path);
    EXPECT_EXIT(ArrivalTrace::fromFile(path),
                ::testing::ExitedWithCode(1),
                "expected 'arrival_us prompt decode");
}

TEST_F(TraceFileErrors, EmptyTraceIsFatal)
{
    const std::string path = write("camllm_trace_empty.txt",
                                   "# only comments\n\n   \n");
    created_.push_back(path);
    EXPECT_DEATH(ArrivalTrace::fromFile(path), "no requests");
}

TEST_F(TraceFileErrors, OutOfOrderArrivalIsFatal)
{
    const std::string path = write("camllm_trace_ooo.txt",
                                   "2000 256 2\n1000 256 2\n");
    created_.push_back(path);
    EXPECT_DEATH(ArrivalTrace::fromFile(path), "non-decreasing");
}

TEST_F(TraceFileErrors, InvalidRequestShapeIsFatal)
{
    // decode_tokens == 0 and prompt + context == 0 are both invalid.
    const std::string path =
        write("camllm_trace_shape.txt", "0 256 0\n");
    created_.push_back(path);
    EXPECT_DEATH(ArrivalTrace::fromFile(path), "invalid request");
    const std::string path2 =
        write("camllm_trace_shape2.txt", "0 0 2\n");
    created_.push_back(path2);
    EXPECT_DEATH(ArrivalTrace::fromFile(path2), "invalid request");
}

TEST_F(TraceFileErrors, NegativeArrivalIsFatal)
{
    const std::string path =
        write("camllm_trace_neg.txt", "-5 256 2\n");
    created_.push_back(path);
    EXPECT_DEATH(ArrivalTrace::fromFile(path), "invalid request");
}

// Serializing systolic-array/SFU time must never speed a run up, and
// at high batch it must slow the shared device down measurably while
// reporting nonzero array occupancy.
TEST(Scheduler, NpuContentionSlowsHighBatchDecode)
{
    const CamConfig cfg = presetS();
    const llm::ModelConfig model = llm::opt6_7b();
    const std::vector<ServeRequest> reqs(8,
                                         ServeRequest{0, 2048, 1, 0});
    const Scheduler sched(cfg, model);

    SchedOptions free_npu;
    free_npu.max_batch = 8;
    SchedOptions contended = free_npu;
    contended.npu_contention = true;

    const ServeStats f = sched.serve(reqs, free_npu);
    const ServeStats c = sched.serve(reqs, contended);

    // Serializing array time can decorrelate stream phases and nudge
    // rates either way by a fraction of a percent (the resonance
    // effect admission_stagger exists for); the invariant is "no
    // material speedup", so the bounds carry 2% headroom.
    EXPECT_GE(double(c.sim_makespan), double(f.sim_makespan) * 0.98);
    EXPECT_LE(c.aggregate_tokens_per_s,
              f.aggregate_tokens_per_s * 1.02);
    EXPECT_GT(c.npu_array_util, 0.0);
    EXPECT_DOUBLE_EQ(f.npu_array_util, 0.0);
}

// Prefill chunks tagged through the completion router must account
// their channel traffic separately from decode.
TEST(Scheduler, PrefillAndDecodeBytesAccountedSeparately)
{
    const CamConfig cfg = presetS();
    const llm::ModelConfig model = llm::opt6_7b();
    const std::vector<ServeRequest> reqs = {
        {512, 0, 2, 0}, // prompt + decode
        {0, 768, 2, 0}, // warm decode
    };
    SchedOptions opt;
    opt.max_batch = 2;
    opt.policy = SchedPolicy::ChunkedInterleave;
    opt.prefill_chunk = 128;
    const ServeStats ss = Scheduler(cfg, model).serve(reqs, opt);
    EXPECT_GT(ss.prefill_channel_bytes, 0u);
    EXPECT_GT(ss.decode_channel_bytes, 0u);
    EXPECT_EQ(ss.requests[0].prefill_chunks, 4u);
    EXPECT_EQ(ss.requests[1].prefill_chunks, 0u);
    // The prompt's first token precedes its finish; TBT summary covers
    // all decode steps of the prompt plus the warm request's second.
    EXPECT_LT(ss.requests[0].first_token_tick,
              ss.requests[0].finish_tick);
    EXPECT_EQ(ss.tbt.n, 3u);
    EXPECT_EQ(ss.ttft.n, 2u);
}

} // namespace
} // namespace camllm::core
