/**
 * @file
 * Unit + property tests for the error-correction substrate: bit-flip
 * injection, Hamming(19,14), the outlier page codec and the
 * page-backed store.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <cstring>
#include <vector>

#include "common/rng.h"
#include "ecc/bitflip.h"
#include "ecc/bitstream.h"
#include "ecc/hamming.h"
#include "ecc/outlier_codec.h"
#include "ecc/page_store.h"

namespace camllm::ecc {
namespace {

// --- bit flips ---------------------------------------------------------------

TEST(BitFlip, ZeroRateFlipsNothing)
{
    std::vector<std::uint8_t> buf(4096, 0xA5);
    Rng rng(1);
    EXPECT_EQ(injectBitFlips(buf, 0.0, rng), 0u);
    for (auto b : buf)
        EXPECT_EQ(b, 0xA5);
}

TEST(BitFlip, RateMatchesExpectation)
{
    std::vector<std::uint8_t> buf(1 << 20, 0);
    Rng rng(2);
    const double ber = 1e-3;
    std::uint64_t flips = injectBitFlips(buf, ber, rng);
    const double expected = double(buf.size()) * 8 * ber;
    EXPECT_NEAR(double(flips), expected, 4 * std::sqrt(expected));

    // Count set bits == reported flips (fresh buffer was all zero).
    std::uint64_t pop = 0;
    for (auto b : buf)
        pop += __builtin_popcount(b);
    EXPECT_EQ(pop, flips);
}

TEST(BitFlip, HighRateStillBernoulli)
{
    std::vector<std::uint8_t> buf(1 << 16, 0);
    Rng rng(3);
    std::uint64_t flips = injectBitFlips(buf, 0.25, rng);
    const double expected = double(buf.size()) * 8 * 0.25;
    EXPECT_NEAR(double(flips), expected, 5 * std::sqrt(expected));
}

TEST(BitFlip, Deterministic)
{
    std::vector<std::uint8_t> a(4096, 0), b(4096, 0);
    Rng ra(42), rb(42);
    injectBitFlips(a, 1e-2, ra);
    injectBitFlips(b, 1e-2, rb);
    EXPECT_EQ(a, b);
}

// --- bit stream ----------------------------------------------------------------

TEST(BitStream, RoundTripMixedWidths)
{
    BitWriter w;
    w.put(0x5, 3);
    w.put(0x1234, 16);
    w.put(0x7ffff, 19);
    w.put(1, 1);
    BitReader r(w.bytes());
    EXPECT_EQ(r.get(3), 0x5u);
    EXPECT_EQ(r.get(16), 0x1234u);
    EXPECT_EQ(r.get(19), 0x7ffffu);
    EXPECT_EQ(r.get(1), 1u);
}

TEST(BitStream, ByteCountIsCeil)
{
    BitWriter w;
    w.put(0, 9);
    EXPECT_EQ(w.bytes().size(), 2u);
}

// --- Hamming -------------------------------------------------------------------

TEST(Hamming, CleanRoundTripAllBoundaryValues)
{
    for (std::uint32_t v : {0u, 1u, 0x1555u, 0x2aaau, 0x3fffu}) {
        auto cw = hammingEncode(std::uint16_t(v));
        auto res = hammingDecode(cw);
        EXPECT_EQ(res.status, HammingResult::Status::Ok);
        EXPECT_EQ(res.value, v);
    }
}

TEST(Hamming, CorrectsEverySingleBitError)
{
    // Exhaustive: every payload pattern x every flipped position.
    for (std::uint32_t v = 0; v < (1u << kHammingDataBits);
         v += 257) { // stride keeps runtime sane, still covers widely
        const std::uint32_t cw = hammingEncode(std::uint16_t(v));
        for (unsigned bit = 0; bit < kHammingCodeBits; ++bit) {
            auto res = hammingDecode(cw ^ (1u << bit));
            EXPECT_EQ(res.status, HammingResult::Status::Corrected);
            EXPECT_EQ(res.value, v);
        }
    }
}

TEST(Hamming, DoubleErrorsNeverSilentlyPassAsClean)
{
    // A 2-bit error may miscorrect (SEC limitation) but must never
    // yield syndrome zero.
    const std::uint32_t cw = hammingEncode(0x1234 & 0x3fff);
    for (unsigned i = 0; i < kHammingCodeBits; ++i) {
        for (unsigned j = i + 1; j < kHammingCodeBits; ++j) {
            auto res =
                hammingDecode(cw ^ (1u << i) ^ (1u << j));
            EXPECT_NE(res.status, HammingResult::Status::Ok);
        }
    }
}

TEST(Hamming, SomeSyndromesAreUncorrectable)
{
    // Syndromes 20..31 do not name a codeword position.
    int uncorrectable = 0;
    const std::uint32_t cw = hammingEncode(0x0);
    for (unsigned i = 0; i < kHammingCodeBits; ++i)
        for (unsigned j = i + 1; j < kHammingCodeBits; ++j)
            if (hammingDecode(cw ^ (1u << i) ^ (1u << j)).status ==
                HammingResult::Status::Uncorrectable)
                ++uncorrectable;
    EXPECT_GT(uncorrectable, 0);
}

// --- outlier codec --------------------------------------------------------------

std::vector<std::int8_t>
syntheticPage(std::size_t elems, std::uint64_t seed)
{
    Rng rng(seed);
    std::vector<std::int8_t> page(elems);
    for (auto &v : page) {
        double x = rng.normal() * 14.0;
        if (rng.chance(0.005))
            x *= 6.0;
        x = std::max(-127.0, std::min(127.0, x));
        v = std::int8_t(x);
    }
    return page;
}

TEST(OutlierCodec, SizeMatchesPaperFor16KPage)
{
    OutlierCodec codec;
    EXPECT_EQ(codec.protectedCount(16384), 163u);
    // Paper: 8*9 + (14+5+8*2)*163 bits = 722 B (723 with ceiling).
    EXPECT_NEAR(double(codec.eccBytes(16384)), 722.0, 1.5);
    EXPECT_LE(codec.eccBytes(16384), 1664u);
}

TEST(OutlierCodec, CleanDecodeIsIdentity)
{
    OutlierCodec codec;
    auto page = syntheticPage(16384, 1);
    auto ecc = codec.encode(page);
    auto copy = page;
    OutlierDecodeStats st;
    codec.decode(copy, ecc, &st);
    EXPECT_EQ(copy, page);
    EXPECT_EQ(st.voted_repairs, 0u);
    EXPECT_EQ(st.clamped, 0u);
    EXPECT_EQ(st.records_dropped, 0u);
}

TEST(OutlierCodec, RepairsFlippedOutlier)
{
    OutlierCodec codec;
    auto page = syntheticPage(16384, 2);
    auto ecc = codec.encode(page);

    // Find the largest-magnitude element: certainly protected.
    std::size_t big = 0;
    for (std::size_t i = 1; i < page.size(); ++i)
        if (std::abs(int(page[i])) > std::abs(int(page[big])))
            big = i;

    auto corrupted = page;
    corrupted[big] = std::int8_t(corrupted[big] ^ 0x40); // flip bit 6
    OutlierDecodeStats st;
    codec.decode(corrupted, ecc, &st);
    EXPECT_EQ(corrupted[big], page[big]);
    EXPECT_EQ(st.voted_repairs, 1u);
}

TEST(OutlierCodec, ClampsFakeOutlier)
{
    OutlierCodec codec;
    auto page = syntheticPage(16384, 3);
    auto ecc = codec.encode(page);

    // Find a small unprotected value and blast it above the threshold.
    std::size_t small = 0;
    for (std::size_t i = 0; i < page.size(); ++i)
        if (std::abs(int(page[i])) <= 2) {
            small = i;
            break;
        }
    auto corrupted = page;
    corrupted[small] = 127; // MSB-flipped small value: a fake outlier
    OutlierDecodeStats st;
    codec.decode(corrupted, ecc, &st);
    EXPECT_EQ(corrupted[small], 0);
    EXPECT_EQ(st.clamped, 1u);
}

TEST(OutlierCodec, LeavesModerateValuesAlone)
{
    OutlierCodec codec;
    auto page = syntheticPage(16384, 4);
    auto ecc = codec.encode(page);
    // A small flip on a small value stays under the threshold: the
    // codec must not touch it (this is exactly its blind spot).
    std::size_t small = 0;
    for (std::size_t i = 0; i < page.size(); ++i)
        if (page[i] == 1) {
            small = i;
            break;
        }
    auto corrupted = page;
    corrupted[small] = 5;
    codec.decode(corrupted, ecc, nullptr);
    EXPECT_EQ(corrupted[small], 5);
}

TEST(OutlierCodec, SurvivesCorruptedEccRecords)
{
    OutlierCodec codec;
    auto page = syntheticPage(16384, 5);
    auto ecc = codec.encode(page);
    // Corrupt the ECC blob heavily; decode must not crash and should
    // drop some records.
    Rng rng(6);
    injectBitFlips(ecc, 0.02, rng);
    auto corrupted = page;
    OutlierDecodeStats st;
    codec.decode(corrupted, ecc, &st);
    EXPECT_EQ(st.records, 163u);
}

TEST(OutlierCodec, SmallPageProtectsAtLeastOne)
{
    OutlierCodec codec;
    EXPECT_EQ(codec.protectedCount(50), 1u);
    std::vector<std::int8_t> page(50, 1);
    page[7] = 100;
    auto ecc = codec.encode(page);
    auto corrupted = page;
    corrupted[7] = 0;
    codec.decode(corrupted, ecc, nullptr);
    EXPECT_EQ(corrupted[7], 100);
}

/** Protected index set, recomputed exactly like the encoder. */
std::vector<std::size_t>
protectedSet(const std::vector<std::int8_t> &page, std::size_t n_prot)
{
    std::vector<std::size_t> idx(page.size());
    for (std::size_t i = 0; i < idx.size(); ++i)
        idx[i] = i;
    std::nth_element(idx.begin(), idx.begin() + (n_prot - 1), idx.end(),
                     [&](std::size_t a, std::size_t b) {
                         int ma = int(page[a]);
                         int mb = int(page[b]);
                         ma = ma < 0 ? -ma : ma;
                         mb = mb < 0 ? -mb : mb;
                         return ma > mb;
                     });
    idx.resize(n_prot);
    return idx;
}

TEST(OutlierCodecProperty, DataOnlyCorruptionFullyRepaired)
{
    // When flips hit the data area but the spare survives, every
    // protected value is restored exactly: two clean copies always
    // outvote the corrupted original.
    OutlierCodec codec;
    Rng rng(7);
    for (int trial = 0; trial < 20; ++trial) {
        auto page = syntheticPage(4096, 300 + trial);
        auto ecc = codec.encode(page);
        auto prot = protectedSet(page, codec.protectedCount(4096));

        auto corrupted = page;
        auto *raw = reinterpret_cast<std::uint8_t *>(corrupted.data());
        injectBitFlips({raw, corrupted.size()}, 0.02, rng);
        codec.decode(corrupted, ecc, nullptr);

        for (std::size_t i : prot)
            ASSERT_EQ(corrupted[i], page[i]) << "trial " << trial;
    }
}

TEST(OutlierCodecProperty, ProtectedFlipRateQuadraticInBer)
{
    // With flips hitting data *and* spare, protected corruption comes
    // from two quadratic channels: double-flipped vote copies (~3x^2)
    // and Hamming-dropped records whose outliers get clamped
    // (~C(19,2) x^2 per record). Both scale as x^2, so the measured
    // rate must stay far below x and quadruple when x doubles.
    OutlierCodec codec;

    auto measure = [&](double x, std::uint64_t seed) {
        Rng rng(seed);
        std::uint64_t bits = 0, bad = 0;
        for (int trial = 0; trial < 150; ++trial) {
            auto page = syntheticPage(4096, 1000 + trial);
            auto ecc = codec.encode(page);
            auto prot = protectedSet(page, codec.protectedCount(4096));
            auto corrupted = page;
            auto *raw =
                reinterpret_cast<std::uint8_t *>(corrupted.data());
            injectBitFlips({raw, corrupted.size()}, x, rng);
            injectBitFlips(ecc, x, rng);
            codec.decode(corrupted, ecc, nullptr);
            for (std::size_t i : prot) {
                bits += 8;
                bad += __builtin_popcount(std::uint8_t(corrupted[i]) ^
                                          std::uint8_t(page[i]));
            }
        }
        return double(bad) / double(bits);
    };

    const double at_x = measure(5e-3, 11);
    const double at_2x = measure(1e-2, 12);
    EXPECT_GT(at_x, 0.0);
    EXPECT_LT(at_x, 5e-3 / 2.0);      // strong protection at BER x
    EXPECT_GT(at_2x, 2.2 * at_x);     // superlinear (quadratic) growth
    EXPECT_LT(at_2x, 8.0 * at_x);
}

// --- page store -----------------------------------------------------------------

TEST(PageStore, RoundTripWithoutErrors)
{
    PageStore store;
    auto page = syntheticPage(40000, 8); // 3 pages, last partial
    store.load(page);
    EXPECT_EQ(store.pageCount(), 3u);
    EXPECT_EQ(store.readBack(), page);
}

TEST(PageStore, EccDisabledReturnsRawCorruption)
{
    PageStoreParams params;
    params.ecc_enabled = false;
    PageStore store(params);
    auto blob = syntheticPage(16384, 9);
    store.load(blob);
    std::uint64_t flips = store.injectErrors(1e-3, 77);
    EXPECT_GT(flips, 0u);
    auto back = store.readBack();
    std::uint64_t diff = 0;
    for (std::size_t i = 0; i < blob.size(); ++i)
        diff += __builtin_popcount(std::uint8_t(back[i]) ^
                                   std::uint8_t(blob[i]));
    // Spare-area flips are included in `flips`, so data diffs are a
    // subset of all flips but close to the data-bit share.
    EXPECT_GT(diff, 0u);
    EXPECT_LE(diff, flips);
}

TEST(PageStore, EccReducesWeightedError)
{
    auto blob = syntheticPage(65536, 10);

    auto magnitude_error = [&](bool ecc_on) {
        PageStoreParams params;
        params.ecc_enabled = ecc_on;
        PageStore store(params);
        store.load(blob);
        store.injectErrors(5e-4, 123);
        auto back = store.readBack();
        double err = 0;
        for (std::size_t i = 0; i < blob.size(); ++i)
            err += std::abs(double(back[i]) - double(blob[i]));
        return err;
    };

    // The codec protects exactly the large-magnitude errors, so the
    // total absolute error must drop substantially.
    EXPECT_LT(magnitude_error(true), 0.6 * magnitude_error(false));
}

TEST(PageStore, StatsAccumulateAcrossPages)
{
    PageStore store;
    auto blob = syntheticPage(3 * 16384, 11);
    store.load(blob);
    store.injectErrors(1e-3, 55);
    OutlierDecodeStats st;
    store.readBack(&st);
    EXPECT_EQ(st.records, 3u * 163u);
}

TEST(PageStoreDeath, RejectsUndersizedSpare)
{
    PageStoreParams params;
    params.spare_bytes = 16; // far below the ~723 B the code needs
    EXPECT_EXIT(PageStore store(params),
                ::testing::ExitedWithCode(1), "spare");
}

} // namespace
} // namespace camllm::ecc
