/**
 * @file
 * Parameterized property sweeps (TEST_P): engine invariants across the
 * configuration x model x quantization matrix, flash steady-state
 * cadence across geometries and timing parameters, and tiling
 * invariants across matrix shapes.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <map>
#include <numeric>
#include <string>

#include "core/engine.h"
#include "core/presets.h"
#include "core/sweep.h"
#include "core/tiling.h"
#include "flash/channel_engine.h"
#include "llm/model_config.h"
#include "sim/event_queue.h"

namespace camllm {
namespace {

// --- engine invariants over the config matrix --------------------------------

struct EngineCase
{
    std::uint32_t channels;
    std::uint32_t chips;
    llm::QuantMode quant;
    bool slicing;
    bool tiling;
};

class EngineInvariants : public ::testing::TestWithParam<EngineCase>
{
};

TEST_P(EngineInvariants, HoldOnOpt67)
{
    const EngineCase &c = GetParam();
    core::CamConfig cfg = core::presetCustom(c.channels, c.chips);
    cfg.quant = c.quant;
    cfg.slicing = c.slicing;
    cfg.hybrid_tiling = c.tiling;

    llm::ModelConfig model = llm::opt6_7b();
    core::CambriconEngine engine(cfg, model);
    core::TokenStats s = engine.decodeToken();

    // 1. Time advances and speed is finite.
    EXPECT_GT(s.token_time, 0u);
    EXPECT_GT(s.tokens_per_s, 0.0);

    // 2. Utilization is a fraction.
    EXPECT_GE(s.avg_channel_util, 0.0);
    EXPECT_LE(s.avg_channel_util, 1.0);

    // 3. Weight traffic conservation (2% tile-padding slack).
    const double touched =
        double(s.weight_bytes_flash + s.weight_bytes_npu);
    EXPECT_NEAR(touched / double(engine.decodeWeightBytes()), 1.0, 0.02);

    // 4. Every weight byte is read from the NAND array at least once.
    EXPECT_GE(double(s.array_read_bytes) * 1.001, touched);

    // 5. No-tiling mode must not ship weights to the NPU.
    if (!c.tiling) {
        EXPECT_EQ(s.weight_bytes_npu, 0u);
    }

    // 6. Channel payload accounting: the NPU share crossed as
    // low-priority data.
    EXPECT_GE(double(s.channel_bytes_low) * 1.001,
              double(s.weight_bytes_npu));

    // 7. Flops split covers the whole decode step.
    const double total_flops = s.npu_flops + s.flash_flops;
    EXPECT_GT(total_flops,
              2.0 * double(engine.decodeWeightBytes()) /
                  (llm::QuantSpec::of(c.quant).weight_bits / 8.0) *
                  0.95);
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, EngineInvariants,
    ::testing::Values(
        EngineCase{8, 2, llm::QuantMode::W8A8, true, true},
        EngineCase{8, 2, llm::QuantMode::W8A8, false, true},
        EngineCase{8, 2, llm::QuantMode::W8A8, true, false},
        EngineCase{8, 2, llm::QuantMode::W4A16, true, true},
        EngineCase{8, 2, llm::QuantMode::W2A16, true, true},
        EngineCase{16, 4, llm::QuantMode::W8A8, true, true},
        EngineCase{16, 4, llm::QuantMode::W4A16, true, true},
        EngineCase{32, 8, llm::QuantMode::W8A8, true, true},
        EngineCase{32, 8, llm::QuantMode::W8A8, true, false},
        EngineCase{1, 1, llm::QuantMode::W8A8, true, true},
        EngineCase{2, 16, llm::QuantMode::W8A8, true, true},
        EngineCase{64, 2, llm::QuantMode::W8A8, true, true}),
    [](const auto &info) {
        const EngineCase &c = info.param;
        std::string n = "ch" + std::to_string(c.channels) + "_chips" +
                        std::to_string(c.chips) + "_" +
                        llm::QuantSpec::of(c.quant).label() +
                        (c.slicing ? "" : "_noslice") +
                        (c.tiling ? "" : "_notile");
        return n;
    });

// --- engine invariants over models ---------------------------------------------

class EngineModels
    : public ::testing::TestWithParam<llm::ModelConfig>
{
};

TEST_P(EngineModels, WeightConservationAndOrdering)
{
    core::CamConfig cfg = core::presetM();
    core::CambriconEngine engine(cfg, GetParam());
    core::TokenStats s = engine.decodeToken();
    const double touched =
        double(s.weight_bytes_flash + s.weight_bytes_npu);
    EXPECT_NEAR(touched / double(engine.decodeWeightBytes()), 1.0, 0.02);
    EXPECT_GT(s.alphaEffective(), 0.3);
    EXPECT_LT(s.alphaEffective(), 0.98);
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, EngineModels,
    ::testing::Values(llm::opt6_7b(), llm::opt13b(), llm::opt30b(),
                      llm::opt66b(), llm::llama2_7b(), llm::llama2_13b(),
                      llm::llama2_70b()),
    [](const auto &info) {
        std::string n = info.param.name;
        for (auto &ch : n)
            if (ch == '-' || ch == '.')
                ch = '_';
        return n;
    });

// --- flash cadence across geometries --------------------------------------------

struct CadenceCase
{
    std::uint32_t dies;
    Tick t_read;
    Tick compute;
    Tick t_reg_move;
};

class FlashCadence : public ::testing::TestWithParam<CadenceCase>
{
};

TEST_P(FlashCadence, SteadyStateMatchesAnalyticInterval)
{
    const CadenceCase &c = GetParam();
    flash::FlashParams p;
    p.geometry.channels = 1;
    p.geometry.chips_per_channel = c.dies;
    p.geometry.dies_per_chip = 1;
    p.timing.t_read = c.t_read;
    p.timing.t_reg_move = c.t_reg_move;

    EventQueue eq;
    flash::CompletionRouter router(eq);
    std::vector<Tick> times;
    router.connect([&](const flash::Completion &comp) {
        if (comp.kind == flash::Completion::Kind::RcResult)
            times.push_back(eq.now());
    });
    flash::ChannelEngine ce(eq, p, router);
    flash::RcTileWork tile;
    tile.op_id = 1;
    tile.cores_used = c.dies;
    tile.input_bytes = 64;
    tile.out_bytes_per_core = 64;
    tile.compute_time = c.compute;
    const int n_tiles = 8;
    for (int i = 0; i < n_tiles; ++i)
        ce.submitTile(tile);
    eq.run();

    ASSERT_EQ(times.size(), std::size_t(n_tiles) * c.dies);
    // Interval between the last results of consecutive tiles in
    // steady state (skip the pipeline-fill head).
    const Tick t1 = times[5 * c.dies - 1];
    const Tick t2 = times[8 * c.dies - 1];
    const double measured = double(t2 - t1) / 3.0;
    const double expected =
        double(c.t_reg_move + std::max(c.t_read, c.compute));
    // Bus grants add sub-percent noise at these sizes.
    EXPECT_NEAR(measured, expected, expected * 0.05);
}

INSTANTIATE_TEST_SUITE_P(
    Grid, FlashCadence,
    ::testing::Values(CadenceCase{1, 30000, 30000, 400},
                      CadenceCase{1, 30000, 10000, 400},
                      CadenceCase{1, 10000, 30000, 400},
                      CadenceCase{4, 30000, 30000, 400},
                      CadenceCase{4, 20000, 5000, 100},
                      CadenceCase{8, 30000, 30000, 400},
                      CadenceCase{2, 30000, 60000, 0}),
    [](const auto &info) {
        const CadenceCase &c = info.param;
        return "d" + std::to_string(c.dies) + "_tR" +
               std::to_string(c.t_read / 1000) + "us_comp" +
               std::to_string(c.compute / 1000) + "us_mv" +
               std::to_string(c.t_reg_move);
    });

// --- tiling invariants across shapes ----------------------------------------------

class TilingShapes
    : public ::testing::TestWithParam<std::pair<std::uint64_t,
                                                std::uint64_t>>
{
};

TEST_P(TilingShapes, InvariantsHold)
{
    const auto [rows, cols] = GetParam();
    for (auto quant : {llm::QuantMode::W8A8, llm::QuantMode::W4A16}) {
        core::CamConfig cfg = core::presetM();
        core::TilingPlanner planner(cfg.flash,
                                    llm::QuantSpec::of(quant),
                                    cfg.tilingOptions());
        core::TilePlan p = planner.plan(rows, cols);

        // Atomic tile fits in one page.
        EXPECT_LE(std::uint64_t(p.wc) * p.hpc, planner.elemsPerPage());
        // Rows conserved and flash rows are whole units.
        EXPECT_EQ(p.flash_rows + p.npu_rows, rows);
        EXPECT_EQ(p.flash_rows % p.hpc, 0u);
        // Column tiles cover the matrix.
        EXPECT_GE(std::uint64_t(p.n_col_tiles) * p.tile.w, cols);
        // Split ratio and duty are fractions.
        EXPECT_GT(p.alpha, 0.0);
        EXPECT_LE(p.alpha, 1.0);
        EXPECT_GT(p.rate_rc, 0.0);
        EXPECT_LT(p.rate_rc, 1.0);
        // Page utilization is meaningful.
        EXPECT_GT(p.page_utilization, 0.5);
        EXPECT_LE(p.page_utilization, 1.0);
    }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, TilingShapes,
    ::testing::Values(std::pair<std::uint64_t, std::uint64_t>{4096, 4096},
                      std::pair<std::uint64_t, std::uint64_t>{5120, 5120},
                      std::pair<std::uint64_t, std::uint64_t>{7168, 7168},
                      std::pair<std::uint64_t, std::uint64_t>{9216, 9216},
                      std::pair<std::uint64_t, std::uint64_t>{16384,
                                                              4096},
                      std::pair<std::uint64_t, std::uint64_t>{4096,
                                                              16384},
                      std::pair<std::uint64_t, std::uint64_t>{50272,
                                                              9216},
                      std::pair<std::uint64_t, std::uint64_t>{1024,
                                                              8192},
                      std::pair<std::uint64_t, std::uint64_t>{28672,
                                                              8192},
                      std::pair<std::uint64_t, std::uint64_t>{11008,
                                                              4096}),
    [](const auto &info) {
        return std::to_string(info.param.first) + "x" +
               std::to_string(info.param.second);
    });

// --- parallel sweep runner -----------------------------------------------------

TEST(ParallelSweep, ResultsComeBackInIndexOrder)
{
    core::ParallelSweep sweep(4);
    auto out = sweep.map<std::size_t>(257, [](std::size_t i) {
        return i * i;
    });
    ASSERT_EQ(out.size(), 257u);
    for (std::size_t i = 0; i < out.size(); ++i)
        EXPECT_EQ(out[i], i * i);
}

TEST(ParallelSweep, MatchesSequentialEngineResults)
{
    const llm::ModelConfig model = llm::opt6_7b();
    const std::uint32_t chips[] = {1, 2, 4, 8};

    std::vector<core::TokenStats> seq;
    for (auto c : chips)
        seq.push_back(core::CambriconEngine(core::presetCustom(8, c),
                                            model)
                          .decodeToken());

    core::ParallelSweep sweep(4);
    auto par = sweep.map<core::TokenStats>(4, [&](std::size_t i) {
        return core::CambriconEngine(core::presetCustom(8, chips[i]),
                                     model)
            .decodeToken();
    });

    ASSERT_EQ(par.size(), seq.size());
    for (std::size_t i = 0; i < seq.size(); ++i) {
        EXPECT_EQ(par[i].token_time, seq[i].token_time);
        EXPECT_EQ(par[i].pages_computed, seq[i].pages_computed);
        EXPECT_EQ(par[i].weight_bytes_flash, seq[i].weight_bytes_flash);
        EXPECT_EQ(par[i].weight_bytes_npu, seq[i].weight_bytes_npu);
    }
}

TEST(ParallelSweep, SingleThreadFallback)
{
    core::ParallelSweep sweep(1);
    EXPECT_EQ(sweep.threads(), 1u);
    auto out = sweep.map<int>(5, [](std::size_t i) { return int(i); });
    EXPECT_EQ(std::accumulate(out.begin(), out.end(), 0), 10);
}

// --- sweep-level memoization ----------------------------------------------------

void
expectSameTokenStats(const core::TokenStats &a, const core::TokenStats &b)
{
    EXPECT_EQ(a.token_time, b.token_time);
    EXPECT_EQ(a.pages_computed, b.pages_computed);
    EXPECT_EQ(a.channel_bytes_high, b.channel_bytes_high);
    EXPECT_EQ(a.channel_bytes_low, b.channel_bytes_low);
    EXPECT_EQ(a.dram_bytes, b.dram_bytes);
    EXPECT_EQ(a.weight_bytes_flash, b.weight_bytes_flash);
    EXPECT_EQ(a.weight_bytes_npu, b.weight_bytes_npu);
    EXPECT_DOUBLE_EQ(a.tokens_per_s, b.tokens_per_s);
    EXPECT_DOUBLE_EQ(a.avg_channel_util, b.avg_channel_util);
}

TEST(SweepCache, RerunSkipsSimulatedPointsDeterministically)
{
    const llm::ModelConfig model = llm::opt6_7b();
    const std::uint32_t chips[] = {1, 2, 4, 8};
    core::SweepCache cache;
    std::atomic<int> simulated{0};

    const auto key = [&](std::size_t i) {
        return core::sweepKey(core::presetCustom(8, chips[i]), model);
    };
    const auto point = [&](std::size_t i) {
        ++simulated;
        return core::CambriconEngine(core::presetCustom(8, chips[i]),
                                     model)
            .decodeToken();
    };

    core::ParallelSweep sweep(4);
    const auto first = sweep.mapMemo(cache, 4, key, point);
    EXPECT_EQ(simulated.load(), 4);
    EXPECT_EQ(cache.misses(), 4u);
    EXPECT_EQ(cache.hits(), 0u);
    EXPECT_EQ(cache.size(), 4u);

    // Re-run: every point must hit and return the identical stats
    // without re-simulating.
    const auto second = sweep.mapMemo(cache, 4, key, point);
    EXPECT_EQ(simulated.load(), 4);
    EXPECT_EQ(cache.hits(), 4u);
    ASSERT_EQ(second.size(), first.size());
    for (std::size_t i = 0; i < first.size(); ++i)
        expectSameTokenStats(first[i], second[i]);
}

TEST(SweepCache, KnobAndConfigFieldsKeySeparatePoints)
{
    const llm::ModelConfig model = llm::opt6_7b();
    const core::CamConfig base = core::presetS();

    // The knob argument separates otherwise-identical configs.
    EXPECT_NE(core::sweepKey(base, model, 0),
              core::sweepKey(base, model, 1));

    // Any simulated field changes the hash...
    core::CamConfig seq = base;
    seq.seq_len = base.seq_len + 1;
    EXPECT_NE(core::configHash(base), core::configHash(seq));
    core::CamConfig notile = base;
    notile.hybrid_tiling = false;
    EXPECT_NE(core::configHash(base), core::configHash(notile));
    core::CamConfig forced = base;
    forced.forced_tile = core::TileShape{128, 4096};
    EXPECT_NE(core::configHash(base), core::configHash(forced));

    // ...while the presentation-only name does not.
    core::CamConfig renamed = base;
    renamed.name = "same-hardware-different-label";
    EXPECT_EQ(core::configHash(base), core::configHash(renamed));

    // Models hash structurally too.
    EXPECT_NE(llm::modelHash(llm::opt6_7b()),
              llm::modelHash(llm::opt13b()));
}

TEST(SweepCache, PersistsAndReloadsEntries)
{
    const llm::ModelConfig model = llm::opt6_7b();
    const core::CamConfig cfg = core::presetS();
    const std::uint64_t key = core::sweepKey(cfg, model);

    core::SweepCache cache;
    const core::TokenStats stats =
        core::CambriconEngine(cfg, model).decodeToken();
    cache.store(key, stats);

    const std::string path =
        ::testing::TempDir() + "camllm_sweep_cache_test.txt";
    ASSERT_TRUE(cache.save(path));

    core::SweepCache reloaded;
    ASSERT_TRUE(reloaded.load(path));
    core::TokenStats out;
    ASSERT_TRUE(reloaded.lookup(key, out));
    expectSameTokenStats(stats, out);
    EXPECT_EQ(out.extrapolated, stats.extrapolated);
    EXPECT_EQ(out.simulated_layers, stats.simulated_layers);
    std::remove(path.c_str());
}

TEST(SweepCache, RejectsFilesFromOtherSchemas)
{
    const std::string path =
        ::testing::TempDir() + "camllm_sweep_cache_stale.txt";
    {
        std::FILE *f = std::fopen(path.c_str(), "w");
        ASSERT_NE(f, nullptr);
        std::fputs("camllm-sweep-cache v1\n0 1 2 3\n", f);
        std::fclose(f);
    }
    core::SweepCache cache;
    EXPECT_FALSE(cache.load(path));
    EXPECT_EQ(cache.size(), 0u);
    std::remove(path.c_str());
}

} // namespace
} // namespace camllm
