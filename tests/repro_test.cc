/**
 * @file
 * Reproduction regression tests: pin every headline number of the
 * paper's evaluation to a band around the currently-measured value so
 * refactors cannot silently drift the reproduction. Bands are
 * generous where the paper's own number differs from ours (see
 * EXPERIMENTS.md), tight where we match.
 */

#include <gtest/gtest.h>

#include "baselines/flexgen.h"
#include "baselines/mlc_llm.h"
#include "baselines/roofline.h"
#include "core/energy.h"
#include "core/engine.h"
#include "core/presets.h"
#include "llm/model_config.h"

namespace camllm {
namespace {

double
camSpeed(const core::CamConfig &cfg, const llm::ModelConfig &m)
{
    return core::CambriconEngine(cfg, m).decodeToken().tokens_per_s;
}

struct Fig9Case
{
    const char *preset; // "S" / "M" / "L"
    int model_index;    // into optFamily()
    double paper;
    double tolerance;   // relative
};

class Fig9Opt : public ::testing::TestWithParam<Fig9Case>
{
};

TEST_P(Fig9Opt, WithinBandOfPaper)
{
    const Fig9Case &c = GetParam();
    core::CamConfig cfg = c.preset[0] == 'S'
                              ? core::presetS()
                              : (c.preset[0] == 'M' ? core::presetM()
                                                    : core::presetL());
    const double v = camSpeed(cfg, llm::optFamily()[c.model_index]);
    EXPECT_GT(v, c.paper * (1.0 - c.tolerance));
    EXPECT_LT(v, c.paper * (1.0 + c.tolerance));
}

INSTANTIATE_TEST_SUITE_P(
    Grid, Fig9Opt,
    ::testing::Values(
        Fig9Case{"S", 0, 3.56, 0.25}, Fig9Case{"S", 1, 1.9, 0.25},
        Fig9Case{"S", 2, 0.8, 0.25}, Fig9Case{"S", 3, 0.4, 0.30},
        Fig9Case{"M", 0, 11.0, 0.25}, Fig9Case{"M", 1, 4.7, 0.35},
        Fig9Case{"M", 2, 2.5, 0.30}, Fig9Case{"M", 3, 1.15, 0.30},
        Fig9Case{"L", 0, 36.3, 0.30}, Fig9Case{"L", 1, 14.2, 0.35},
        Fig9Case{"L", 2, 7.6, 0.30}, Fig9Case{"L", 3, 2.59, 0.60}),
    [](const auto &info) {
        return std::string(info.param.preset) + "_opt" +
               std::to_string(info.param.model_index);
    });

TEST(Repro, HeadlineSeventyB)
{
    // Paper abstract: 3.44 token/s for the 70B model.
    const double v = camSpeed(core::presetL(), llm::llama2_70b());
    EXPECT_GT(v, 3.44 * 0.7);
    EXPECT_LT(v, 3.44 * 1.4);
}

TEST(Repro, HeadlineSevenB)
{
    // Paper abstract: 36.34 token/s for 7B-class models.
    const double v = camSpeed(core::presetL(), llm::opt6_7b());
    EXPECT_GT(v, 36.34 * 0.7);
    EXPECT_LT(v, 36.34 * 1.2);
}

TEST(Repro, HeadlineSpeedupBand)
{
    // Paper abstract: 22x to 45x over flash-offloading baselines.
    auto quant = llm::QuantSpec::of(llm::QuantMode::W8A8);
    baselines::FlexGenConfig fg;
    for (int i : {0, 3}) {
        const llm::ModelConfig m = llm::optFamily()[std::size_t(i)];
        const double base =
            baselines::flexgenDecode(m, quant, fg).tokens_per_s;
        const double speedup = camSpeed(core::presetL(), m) / base;
        EXPECT_GT(speedup, 20.0) << m.name;
        EXPECT_LT(speedup, 60.0) << m.name;
    }
}

TEST(Repro, Fig9bMlcRow)
{
    auto mlc7 = baselines::mlcLlmDecode(llm::llama2_7b());
    EXPECT_NEAR(mlc7.tokens_per_s, 7.58, 7.58 * 0.15);
    EXPECT_TRUE(baselines::mlcLlmDecode(llm::llama2_13b()).oom);
    EXPECT_TRUE(baselines::mlcLlmDecode(llm::llama2_70b()).oom);
}

TEST(Repro, Fig11AverageGains)
{
    // Paper: W4A16 gains 85.3% on S, 47.9% on L (we measure ~80/46).
    auto avg_gain = [](const core::CamConfig &base) {
        double sum = 0.0;
        int n = 0;
        for (const auto &m : llm::optFamily()) {
            core::CamConfig w4 = base;
            w4.quant = llm::QuantMode::W4A16;
            sum += camSpeed(w4, m) / camSpeed(base, m) - 1.0;
            ++n;
        }
        return sum / n;
    };
    const double s_gain = avg_gain(core::presetS());
    const double l_gain = avg_gain(core::presetL());
    EXPECT_GT(s_gain, 0.55);
    EXPECT_LT(s_gain, 1.10);
    EXPECT_GT(l_gain, 0.30);
    EXPECT_LT(l_gain, 0.70);
    EXPECT_GT(s_gain, l_gain); // the structural claim
}

TEST(Repro, Fig12SlicingBand)
{
    // Paper: 1.6-1.8x; our channel baseline is politer: 1.35-1.5x.
    core::CamConfig without = core::presetS();
    without.slicing = false;
    const double speedup = camSpeed(core::presetS(), llm::opt30b()) /
                           camSpeed(without, llm::opt30b());
    EXPECT_GT(speedup, 1.3);
    EXPECT_LT(speedup, 1.9);
}

TEST(Repro, Fig14TilingBand)
{
    // Paper: 1.3-1.4x.
    core::CamConfig without = core::presetS();
    without.hybrid_tiling = false;
    const double speedup = camSpeed(core::presetS(), llm::opt30b()) /
                           camSpeed(without, llm::opt30b());
    EXPECT_GT(speedup, 1.25);
    EXPECT_LT(speedup, 1.55);
}

TEST(Repro, Fig15SaturationSignature)
{
    // Chip scaling: early doublings gain >1.5x, the 64->128 step
    // gains <1.35x on OPT-6.7B (paper Fig 15a flattening).
    auto v = [&](std::uint32_t chips) {
        return camSpeed(core::presetCustom(8, chips), llm::opt6_7b());
    };
    EXPECT_GT(v(4) / v(2), 1.5);
    EXPECT_LT(v(128) / v(64), 1.35);
}

TEST(Repro, Fig16Bands)
{
    auto quant = llm::QuantSpec::of(llm::QuantMode::W8A8);
    baselines::FlexGenConfig fg;
    auto base = baselines::flexgenDecode(llm::opt6_7b(), quant, fg);
    auto cam = core::CambriconEngine(core::presetS(), llm::opt6_7b())
                   .decodeToken();
    // Transfer reduction: paper 9.7-11.6x; we measure ~9x.
    const double red =
        double(base.transfer_bytes) / double(cam.transferBytes());
    EXPECT_GT(red, 7.0);
    EXPECT_LT(red, 13.0);
    // Energy ratio: paper ~67%; we measure ~58%.
    const double ratio =
        core::computeEnergy(cam).totalJ() / base.energy_j;
    EXPECT_GT(ratio, 0.45);
    EXPECT_LT(ratio, 0.80);
}

TEST(Repro, Fig1DecodeAi)
{
    auto quant = llm::QuantSpec::of(llm::QuantMode::W8A8);
    EXPECT_NEAR(baselines::llmDecodeAi(llm::opt6_7b(), quant, 512),
                2.0, 0.1);
}

TEST(Repro, TileShapeMatchesFig13Label)
{
    // The paper names 256x2048 as Cam-LLM-S's optimal tile.
    auto plan = core::CambriconEngine(core::presetS(), llm::opt6_7b())
                    .planFor(16384, 16384);
    EXPECT_EQ(plan.tile.h, 256u);
    EXPECT_EQ(plan.tile.w, 2048u);
}

} // namespace
} // namespace camllm
