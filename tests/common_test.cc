/**
 * @file
 * Unit tests for the common utilities: units, RNG, stats, tables.
 */

#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.h"
#include "common/stats.h"
#include "common/table.h"
#include "common/units.h"

namespace camllm {
namespace {

TEST(Units, TimeLiterals)
{
    EXPECT_EQ(kUs, 1000u);
    EXPECT_EQ(kMs, 1000u * 1000u);
    EXPECT_EQ(kSec, 1000u * 1000u * 1000u);
}

TEST(Units, TransferTimeExact)
{
    // 1 GB/s == 1 byte per ns.
    EXPECT_EQ(transferTime(1000, 1.0), 1000u);
    EXPECT_EQ(transferTime(16384, 1.0), 16384u);
}

TEST(Units, TransferTimeRoundsUp)
{
    // 3 bytes at 2 GB/s is 1.5 ns -> must round to 2.
    EXPECT_EQ(transferTime(3, 2.0), 2u);
}

TEST(Units, TransferTimeZeroBytes)
{
    EXPECT_EQ(transferTime(0, 1.0), 0u);
}

TEST(Units, BandwidthInverse)
{
    EXPECT_DOUBLE_EQ(bandwidthGBps(4000, 1000), 4.0);
    EXPECT_DOUBLE_EQ(bandwidthGBps(100, 0), 0.0);
}

TEST(Units, SecondsRoundTrip)
{
    EXPECT_DOUBLE_EQ(ticksToSeconds(kSec), 1.0);
    EXPECT_EQ(secondsToTicks(2.5), Tick(2500) * kMs);
}

TEST(Rng, Deterministic)
{
    Rng a(42), b(42);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer)
{
    Rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 100; ++i)
        same += (a.next() == b.next());
    EXPECT_LT(same, 3);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng rng(7);
    for (int i = 0; i < 10000; ++i) {
        double u = rng.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
    }
}

TEST(Rng, UniformMeanNearHalf)
{
    Rng rng(11);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        sum += rng.uniform();
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, BelowRespectsBound)
{
    Rng rng(3);
    for (int i = 0; i < 10000; ++i)
        ASSERT_LT(rng.below(17), 17u);
}

TEST(Rng, BelowCoversRange)
{
    Rng rng(5);
    bool seen[8] = {};
    for (int i = 0; i < 1000; ++i)
        seen[rng.below(8)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Rng, ChanceExtremes)
{
    Rng rng(9);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(rng.chance(0.0));
        EXPECT_TRUE(rng.chance(1.0));
    }
}

TEST(Rng, NormalMoments)
{
    Rng rng(13);
    double sum = 0.0, sq = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        double v = rng.normal();
        sum += v;
        sq += v * v;
    }
    EXPECT_NEAR(sum / n, 0.0, 0.02);
    EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(Accumulator, Basics)
{
    Accumulator a;
    a.add(1.0);
    a.add(2.0);
    a.add(3.0);
    EXPECT_EQ(a.count(), 3u);
    EXPECT_DOUBLE_EQ(a.sum(), 6.0);
    EXPECT_DOUBLE_EQ(a.mean(), 2.0);
    EXPECT_DOUBLE_EQ(a.min(), 1.0);
    EXPECT_DOUBLE_EQ(a.max(), 3.0);
    EXPECT_DOUBLE_EQ(a.variance(), 1.0);
}

TEST(Accumulator, EmptyIsSafe)
{
    Accumulator a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_DOUBLE_EQ(a.mean(), 0.0);
    EXPECT_DOUBLE_EQ(a.min(), 0.0);
    EXPECT_DOUBLE_EQ(a.max(), 0.0);
    EXPECT_DOUBLE_EQ(a.stddev(), 0.0);
}

TEST(Accumulator, SingleSampleVarianceZero)
{
    Accumulator a;
    a.add(5.0);
    EXPECT_DOUBLE_EQ(a.variance(), 0.0);
}

// Samples with a large common offset (tick timestamps): the textbook
// sum-of-squares variance cancels catastrophically (1e30 magnitudes
// differing by ~1), while Welford's online form stays exact here.
TEST(Accumulator, VarianceStableUnderLargeOffset)
{
    Accumulator a;
    a.add(1e15);
    a.add(1e15 + 1.0);
    a.add(1e15 + 2.0);
    EXPECT_DOUBLE_EQ(a.mean(), 1e15 + 1.0);
    EXPECT_DOUBLE_EQ(a.variance(), 1.0);
    EXPECT_DOUBLE_EQ(a.stddev(), 1.0);
    EXPECT_DOUBLE_EQ(a.min(), 1e15);
    EXPECT_DOUBLE_EQ(a.max(), 1e15 + 2.0);
}

TEST(SampleSet, EmptySetIsAllZero)
{
    SampleSet s;
    EXPECT_EQ(s.count(), 0u);
    EXPECT_DOUBLE_EQ(s.mean(), 0.0);
    EXPECT_DOUBLE_EQ(s.max(), 0.0);
    EXPECT_DOUBLE_EQ(s.percentile(0.0), 0.0);
    EXPECT_DOUBLE_EQ(s.percentile(50.0), 0.0);
    EXPECT_DOUBLE_EQ(s.percentile(100.0), 0.0);
}

TEST(SampleSet, SingleSampleIsEveryPercentile)
{
    SampleSet s;
    s.add(7.25);
    EXPECT_EQ(s.count(), 1u);
    EXPECT_DOUBLE_EQ(s.mean(), 7.25);
    EXPECT_DOUBLE_EQ(s.max(), 7.25);
    for (double p : {0.0, 1.0, 50.0, 95.0, 99.0, 100.0})
        EXPECT_DOUBLE_EQ(s.percentile(p), 7.25) << "p" << p;
}

TEST(SampleSet, NearestRankPercentiles)
{
    SampleSet s;
    // Unsorted on purpose: percentile() sorts lazily.
    for (double v : {30.0, 10.0, 50.0, 20.0, 40.0})
        s.add(v);
    EXPECT_DOUBLE_EQ(s.percentile(0.0), 10.0);
    EXPECT_DOUBLE_EQ(s.percentile(20.0), 10.0); // rank ceil(1) = 1st
    EXPECT_DOUBLE_EQ(s.percentile(50.0), 30.0);
    EXPECT_DOUBLE_EQ(s.percentile(95.0), 50.0);
    EXPECT_DOUBLE_EQ(s.percentile(100.0), 50.0);
    EXPECT_DOUBLE_EQ(s.mean(), 30.0);
    // Interleaving add() with queries keeps the order stats fresh.
    s.add(60.0);
    EXPECT_DOUBLE_EQ(s.percentile(100.0), 60.0);
    EXPECT_DOUBLE_EQ(s.max(), 60.0);
}

TEST(BusyTracker, AccumulatesIntervals)
{
    BusyTracker b;
    b.addBusy(0, 10);
    b.addBusy(20, 25);
    EXPECT_EQ(b.busyTicks(), 15u);
    EXPECT_DOUBLE_EQ(b.utilization(100), 0.15);
}

TEST(BusyTracker, IgnoresEmptyInterval)
{
    BusyTracker b;
    b.addBusy(5, 5);
    EXPECT_EQ(b.busyTicks(), 0u);
    EXPECT_DOUBLE_EQ(b.utilization(0), 0.0);
}

TEST(Table, RendersAllCells)
{
    Table t("demo");
    t.header({"a", "b"});
    t.row({"1", "22"});
    t.row({"333", "4"});
    std::ostringstream os;
    t.print(os);
    std::string s = os.str();
    EXPECT_NE(s.find("demo"), std::string::npos);
    EXPECT_NE(s.find("333"), std::string::npos);
    EXPECT_NE(s.find("22"), std::string::npos);
}

TEST(Table, Formatting)
{
    EXPECT_EQ(Table::fmt(3.14159, 2), "3.14");
    EXPECT_EQ(Table::fmtPercent(0.5, 1), "50.0%");
    EXPECT_EQ(Table::fmtInt(12345), "12345");
}

} // namespace
} // namespace camllm
