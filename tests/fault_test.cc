/**
 * @file
 * Fault-injection and resilience tests: FaultModel determinism and
 * retry-ladder shape, CompletionRouter port teardown, WeightPlacement
 * remap conservation, and serve()-level behavior under soft read
 * failures, channel loss, deadlines, cancellation and SLO-aware
 * degradation. Labeled "robustness" in CMake (ctest -L robustness).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/arrivals.h"
#include "core/presets.h"
#include "core/scheduler.h"
#include "core/sweep.h"
#include "ecc/retention.h"
#include "flash/completion.h"
#include "flash/fault.h"
#include "flash/placement.h"
#include "llm/model_config.h"
#include "sim/event_queue.h"

namespace camllm {
namespace {

using core::DegradePolicy;
using core::RequestOutcome;
using core::SchedOptions;
using core::SchedPolicy;
using core::Scheduler;
using core::ServeRequest;
using core::ServeStats;

// ---------------------------------------------------------------------------
// FaultModel unit behavior
// ---------------------------------------------------------------------------

TEST(FaultModel, IdenticalSpecsDrawIdenticalTimelines)
{
    flash::FaultSpec spec;
    spec.ucp_rate = 0.2;
    spec.seed = 42;
    flash::FaultModel a(spec), b(spec);
    for (int i = 0; i < 2000; ++i)
        ASSERT_EQ(a.drawRetries(), b.drawRetries()) << "draw " << i;
    EXPECT_EQ(a.drawsTaken(), b.drawsTaken());
}

TEST(FaultModel, SeedChangesTheTimeline)
{
    flash::FaultSpec spec;
    spec.ucp_rate = 0.2;
    spec.seed = 1;
    flash::FaultSpec other = spec;
    other.seed = 2;
    flash::FaultModel a(spec), b(other);
    bool diverged = false;
    for (int i = 0; i < 2000 && !diverged; ++i)
        diverged = a.drawRetries() != b.drawRetries();
    EXPECT_TRUE(diverged);
}

TEST(FaultModel, LadderIsBoundedAndEscalates)
{
    flash::FaultSpec spec;
    spec.ucp_rate = 0.9; // fails as often as the clamp allows
    spec.ladder.max_retries = 3;
    flash::FaultModel m(spec);
    for (int i = 0; i < 500; ++i)
        ASSERT_LE(m.drawRetries(), 3u);
    // Attempt 0 is the base sense time, exactly; later rungs escalate
    // strictly.
    const Tick t_read = 25 * kUs;
    EXPECT_EQ(m.senseTime(t_read, 0), t_read);
    Tick prev = t_read;
    for (std::uint32_t k = 1; k <= 3; ++k) {
        const Tick t = m.senseTime(t_read, k);
        EXPECT_GT(t, prev);
        prev = t;
    }
}

TEST(FaultModel, RetentionAndWearScaleTheFailureRate)
{
    flash::FaultSpec fresh;
    fresh.ucp_rate = 1e-3;
    flash::FaultSpec aged = fresh;
    aged.retention_hours = 10000.0;
    aged.pe_cycles = 3000.0;
    EXPECT_DOUBLE_EQ(fresh.effectiveUcpRate(), 1e-3);
    EXPECT_GT(aged.effectiveUcpRate(), fresh.effectiveUcpRate());
    // The scaling is exactly the retention model's BER ratio.
    const ecc::RetentionParams p;
    const double ratio =
        ecc::retentionBer(aged.retention_hours, aged.pe_cycles, p) /
        p.base_ber;
    EXPECT_DOUBLE_EQ(aged.effectiveUcpRate(),
                     std::min(1e-3 * ratio, 0.9));
    // And it clamps: an absurd age cannot exceed 0.9.
    flash::FaultSpec ancient = fresh;
    ancient.ucp_rate = 0.5;
    ancient.retention_hours = 1e6;
    ancient.pe_cycles = 1e5;
    EXPECT_DOUBLE_EQ(ancient.effectiveUcpRate(), 0.9);
}

TEST(FaultModel, InactiveSpecInjectsNothing)
{
    flash::FaultSpec spec;
    EXPECT_FALSE(spec.any());
    spec.seed = 999; // a seed alone arms nothing
    EXPECT_FALSE(spec.any());
    flash::FaultModel m(spec);
    for (int i = 0; i < 100; ++i)
        ASSERT_EQ(m.drawRetries(), 0u);
    EXPECT_EQ(m.drawsTaken(), 0u); // zero-rate draws consume no Rng
}

// ---------------------------------------------------------------------------
// CompletionRouter port lifecycle
// ---------------------------------------------------------------------------

TEST(CompletionRouter, DisconnectDropsQueuedAndFutureRecords)
{
    EventQueue eq;
    flash::CompletionRouter router(eq);
    int live_calls = 0, dead_calls = 0;
    const flash::ClientId live =
        router.connect([&](const flash::Completion &) { ++live_calls; });
    const flash::ClientId dead =
        router.connect([&](const flash::Completion &) { ++dead_calls; });

    flash::Completion c;
    c.kind = flash::Completion::Kind::ReadData;
    c.bytes = 64;
    c.client = dead;
    router.deliver(c); // queued + drain scheduled
    c.client = live;
    router.deliver(c);

    // Disconnect while a drain for the dead port is already in the
    // event queue: the queued record is dropped on the spot and the
    // drain must find the port dead and never touch the handler.
    router.disconnect(dead);
    EXPECT_EQ(router.dropped(), 1u);

    eq.run();
    EXPECT_EQ(live_calls, 1);
    EXPECT_EQ(dead_calls, 0);

    // Anything the device still produces for the dead client is
    // swallowed, not delivered and not leaked into another port.
    c.client = dead;
    router.deliver(c);
    eq.run();
    EXPECT_EQ(router.dropped(), 2u);
    EXPECT_EQ(dead_calls, 0);
    EXPECT_EQ(live_calls, 1);
}

TEST(CompletionRouter, HandlerMayDisconnectItselfMidBatch)
{
    EventQueue eq;
    flash::CompletionRouter router(eq);
    int calls = 0;
    flash::ClientId id = 0;
    id = router.connect([&](const flash::Completion &) {
        ++calls;
        router.disconnect(id); // e.g. a timeout firing inside a drain
    });
    flash::Completion c;
    c.client = id;
    router.deliver(c);
    router.deliver(c); // second record must be dropped, not delivered
    eq.run();
    EXPECT_EQ(calls, 1);
    EXPECT_EQ(router.dropped(), 1u);
}

// ---------------------------------------------------------------------------
// WeightPlacement remap
// ---------------------------------------------------------------------------

TEST(WeightPlacement, RemapConservesPagesAndRetiresCapacity)
{
    const flash::FlashGeometry g = core::presetS().flash.geometry;
    flash::WeightPlacement place(g);
    const std::uint64_t pages = g.totalPages() / 2;
    place.seedStriped(pages);
    EXPECT_EQ(place.pagesAllocated(), pages);

    const std::uint64_t on_ch0 = place.pagesOnChannel(0);
    EXPECT_GT(on_ch0, 0u);

    const std::uint64_t cap_before = place.capacityPages();
    const std::uint64_t moved = place.remapChannel(0);
    EXPECT_EQ(moved, on_ch0);
    EXPECT_TRUE(place.channelDead(0));
    EXPECT_EQ(place.pagesOnChannel(0), 0u);
    EXPECT_LT(place.capacityPages(), cap_before);

    // Conservation: every stranded page lives on a survivor now.
    std::uint64_t total = 0;
    for (std::uint32_t c = 0; c < g.channels; ++c)
        total += place.pagesOnChannel(c);
    EXPECT_EQ(total, pages);
    EXPECT_EQ(place.pagesAllocated(), pages);
    EXPECT_LE(place.pagesAllocated(), place.capacityPages());
}

// ---------------------------------------------------------------------------
// serve() under faults
// ---------------------------------------------------------------------------

const std::vector<ServeRequest> &
smallTrace()
{
    static const std::vector<ServeRequest> reqs = {
        {128, 0, 2, 0}, {192, 0, 2, 0}};
    return reqs;
}

SchedOptions
chunkedOpts()
{
    SchedOptions opt;
    opt.max_batch = 2;
    opt.policy = SchedPolicy::ChunkedInterleave;
    opt.prefill_chunk = 64;
    return opt;
}

void
expectBalanced(const ServeStats &st, std::size_t n)
{
    EXPECT_EQ(st.completed + st.shed_slo + st.timeouts + st.cancelled +
                  st.rejected_infeasible,
              n);
}

TEST(FaultServing, InactiveSpecIsBitIdentical)
{
    const Scheduler sched(core::presetS(), llm::opt6_7b());
    const SchedOptions base = chunkedOpts();
    SchedOptions seeded = base;
    seeded.faults.seed = 12345; // still inactive: nothing is armed
    const ServeStats a = sched.serve(smallTrace(), base);
    const ServeStats b = sched.serve(smallTrace(), seeded);
    ASSERT_EQ(a.requests.size(), b.requests.size());
    EXPECT_EQ(a.sim_makespan, b.sim_makespan);
    EXPECT_EQ(a.total_tokens, b.total_tokens);
    EXPECT_EQ(a.read_retries, 0u);
    EXPECT_EQ(b.read_retries, 0u);
    for (std::size_t i = 0; i < a.requests.size(); ++i) {
        EXPECT_EQ(a.requests[i].finish_tick, b.requests[i].finish_tick);
        EXPECT_EQ(a.requests[i].total_token_time,
                  b.requests[i].total_token_time);
        EXPECT_EQ(a.requests[i].prefill_time, b.requests[i].prefill_time);
    }
}

TEST(FaultServing, ReadRetriesDegradeServiceDeterministically)
{
    const Scheduler sched(core::presetS(), llm::opt6_7b());
    const ServeStats clean = sched.serve(smallTrace(), chunkedOpts());

    SchedOptions opt = chunkedOpts();
    opt.faults.ucp_rate = 0.05;
    opt.faults.seed = 7;
    const ServeStats faulty = sched.serve(smallTrace(), opt);

    EXPECT_GT(faulty.read_retries, 0u);
    EXPECT_GT(faulty.retry_channel_bytes, 0u);
    // Every retry re-occupies a die (and often a bus): service can
    // only get slower.
    EXPECT_GE(faulty.sim_makespan, clean.sim_makespan);
    EXPECT_EQ(faulty.completed, 2u);
    expectBalanced(faulty, 2);
    // Retry traffic is billed apart from the serving classes.
    EXPECT_EQ(faulty.prefill_channel_bytes, clean.prefill_channel_bytes);

    // Same spec, same timeline — bit-identical reruns.
    const ServeStats again = sched.serve(smallTrace(), opt);
    EXPECT_EQ(again.sim_makespan, faulty.sim_makespan);
    EXPECT_EQ(again.read_retries, faulty.read_retries);
    EXPECT_EQ(again.retry_channel_bytes, faulty.retry_channel_bytes);
    EXPECT_EQ(again.requests[0].finish_tick,
              faulty.requests[0].finish_tick);
    EXPECT_EQ(again.requests[1].finish_tick,
              faulty.requests[1].finish_tick);
}

TEST(FaultServing, ChannelOfflineRemapsAndCompletes)
{
    const Scheduler sched(core::presetS(), llm::opt6_7b());
    const ServeStats clean = sched.serve(smallTrace(), chunkedOpts());

    SchedOptions opt = chunkedOpts();
    opt.faults.addOffline(0, 5 * kMs); // mid-prefill
    const ServeStats faulty = sched.serve(smallTrace(), opt);

    EXPECT_EQ(faulty.channels_lost, 1u);
    EXPECT_GT(faulty.remap_bytes, 0u);
    EXPECT_EQ(faulty.completed, 2u);
    expectBalanced(faulty, 2);
    // One fewer channel plus the rebuild traffic: strictly slower.
    EXPECT_GT(faulty.sim_makespan, clean.sim_makespan);
}

TEST(FaultServing, ChannelSlowdownWindowDegradesService)
{
    const Scheduler sched(core::presetS(), llm::opt6_7b());
    const ServeStats clean = sched.serve(smallTrace(), chunkedOpts());

    SchedOptions opt = chunkedOpts();
    opt.faults.addSlowdown(0, 8.0, 0, 40 * kMs);
    const ServeStats faulty = sched.serve(smallTrace(), opt);
    EXPECT_EQ(faulty.completed, 2u);
    EXPECT_EQ(faulty.channels_lost, 0u);
    EXPECT_GT(faulty.sim_makespan, clean.sim_makespan);
}

TEST(FaultServing, DeadlineTearsDownQueuedAndRunningRequests)
{
    const Scheduler sched(core::presetS(), llm::opt6_7b());
    std::vector<ServeRequest> reqs = {
        {128, 0, 2, 0}, {192, 0, 2, 0}, {128, 0, 2, 0}};
    reqs[2].cancel_at = 1 * kMs; // gives up while still queued
    SchedOptions opt = chunkedOpts();
    opt.max_batch = 1;
    opt.request_deadline = 2 * kMs; // far below any prefill time
    const ServeStats st = sched.serve(reqs, opt);
    // Request 0 is torn down mid-prefill at its deadline; the freed
    // slot admits request 1 on the same tick, whose own deadline
    // event then kills it. Request 2 was cancelled while queued and
    // never entered a slot.
    EXPECT_EQ(st.timeouts, 2u);
    EXPECT_EQ(st.cancelled, 1u);
    EXPECT_EQ(st.completed, 0u);
    EXPECT_EQ(st.admitted, 2u);
    expectBalanced(st, 3);
    EXPECT_EQ(st.requests[0].outcome, RequestOutcome::TimedOut);
    EXPECT_EQ(st.requests[1].outcome, RequestOutcome::TimedOut);
    EXPECT_EQ(st.requests[2].outcome, RequestOutcome::Cancelled);
    for (const auto &r : st.requests) {
        EXPECT_EQ(r.tokens_emitted, 0u);
        EXPECT_EQ(r.ttft_ms, 0.0); // no first token, no sample
    }
    // The makespan is the last request exit, not the tail of no-op
    // deadline events or abandoned device drains.
    EXPECT_EQ(st.sim_makespan, 2 * kMs);
}

TEST(FaultServing, GenerousDeadlineDoesNotPerturbTheSchedule)
{
    const Scheduler sched(core::presetS(), llm::opt6_7b());
    const ServeStats clean = sched.serve(smallTrace(), chunkedOpts());
    SchedOptions opt = chunkedOpts();
    opt.request_deadline = 1000 * kSec;
    const ServeStats st = sched.serve(smallTrace(), opt);
    EXPECT_EQ(st.timeouts, 0u);
    EXPECT_EQ(st.completed, 2u);
    ASSERT_EQ(st.requests.size(), clean.requests.size());
    for (std::size_t i = 0; i < st.requests.size(); ++i) {
        EXPECT_EQ(st.requests[i].finish_tick,
                  clean.requests[i].finish_tick);
        EXPECT_EQ(st.requests[i].total_token_time,
                  clean.requests[i].total_token_time);
    }
    EXPECT_EQ(st.sim_makespan, clean.sim_makespan);
}

TEST(FaultServing, CancellationReleasesTheSlotMidFlight)
{
    const Scheduler sched(core::presetS(), llm::opt6_7b());
    std::vector<ServeRequest> reqs = smallTrace();
    reqs[1].cancel_at = 5 * kMs; // mid-prefill
    const ServeStats st = sched.serve(reqs, chunkedOpts());
    EXPECT_EQ(st.cancelled, 1u);
    EXPECT_EQ(st.completed, 1u);
    expectBalanced(st, 2);
    EXPECT_EQ(st.requests[1].outcome, RequestOutcome::Cancelled);
    EXPECT_EQ(st.requests[1].tokens_emitted, 0u);
    EXPECT_EQ(st.requests[0].outcome, RequestOutcome::Completed);
    EXPECT_GT(st.requests[0].tokens_per_s, 0.0);
    // Goodput counts only the survivor's tokens.
    EXPECT_GT(st.goodput_tokens_per_s, 0.0);
}

TEST(FaultServing, SloShedNewestTurnsAwayLateArrivals)
{
    const Scheduler sched(core::presetS(), llm::opt6_7b());
    const std::vector<ServeRequest> reqs = {
        {128, 0, 2, 0}, {128, 0, 2, 0}, {128, 0, 2, 0}, {128, 0, 2, 0}};
    SchedOptions opt = chunkedOpts();
    opt.max_batch = 2;
    opt.slo_ttft_ms = 0.5; // far below any real projected TTFT
    opt.degrade = DegradePolicy::ShedNewest;
    const ServeStats st = sched.serve(reqs, opt);
    // The first admissions happen before any chunk has landed (no
    // EMA yet — never shed blind); once slots free the projection is
    // live and the tiny SLO sheds the rest.
    EXPECT_EQ(st.completed, 2u);
    EXPECT_EQ(st.shed_slo, 2u);
    expectBalanced(st, 4);
    EXPECT_EQ(st.requests[2].outcome, RequestOutcome::ShedSlo);
    EXPECT_EQ(st.requests[3].outcome, RequestOutcome::ShedSlo);
}

// Cold-start pin: projectedTtftMs must admit when no prefill chunk
// has ever finished — the EMA is empty and there is no measured rate
// to project from. A whole burst at t = 0 that fits the batch limit
// therefore admits in full even under an absurdly tight SLO; shedding
// any of it would be shedding blind.
TEST(FaultServing, ColdStartBurstNeverShedsOnEmptyEma)
{
    const Scheduler sched(core::presetS(), llm::opt6_7b());
    const std::vector<ServeRequest> reqs = {
        {128, 0, 2, 0}, {128, 0, 2, 0}, {128, 0, 2, 0}, {128, 0, 2, 0}};
    SchedOptions opt = chunkedOpts();
    opt.max_batch = 4; // the whole burst fits: all admit cold
    opt.slo_ttft_ms = 0.001;
    opt.degrade = DegradePolicy::ShedNewest;
    const ServeStats st = sched.serve(reqs, opt);
    EXPECT_EQ(st.shed_slo, 0u);
    EXPECT_EQ(st.completed, 4u);
    expectBalanced(st, 4);
}

TEST(FaultServing, ProportionalSlowdownAdmitsEveryoneWithSmallerChunks)
{
    const Scheduler sched(core::presetS(), llm::opt6_7b());
    const std::vector<ServeRequest> reqs = {
        {128, 0, 2, 0}, {128, 0, 2, 0}, {128, 0, 2, 0}, {128, 0, 2, 0}};
    SchedOptions opt = chunkedOpts();
    opt.max_batch = 2;
    const ServeStats clean = sched.serve(reqs, opt);

    SchedOptions degraded = opt;
    degraded.slo_ttft_ms = 0.5;
    degraded.degrade = DegradePolicy::ProportionalSlowdown;
    const ServeStats st = sched.serve(reqs, degraded);
    EXPECT_EQ(st.completed, 4u);
    EXPECT_EQ(st.shed_slo, 0u);
    std::uint32_t chunks = 0, clean_chunks = 0;
    for (std::size_t i = 0; i < 4; ++i) {
        chunks += st.requests[i].prefill_chunks;
        clean_chunks += clean.requests[i].prefill_chunks;
    }
    // Overload shrank the chunk budget: the same prompts took more,
    // smaller chunks.
    EXPECT_GT(chunks, clean_chunks);
}

// Identical fault specs must produce identical timelines no matter
// how many sweep workers run serve() concurrently: each run owns its
// Rng, consumed in (single-threaded) event order.
TEST(FaultServing, SweepThreadCountDoesNotChangeFaultTimelines)
{
    const Scheduler sched(core::presetS(), llm::opt6_7b());
    const double ucps[3] = {0.0, 0.02, 0.08};
    const auto point = [&](std::size_t i) {
        SchedOptions opt = chunkedOpts();
        opt.faults.ucp_rate = ucps[i];
        opt.faults.seed = 11;
        const ServeStats st = sched.serve(smallTrace(), opt);
        return std::tuple<Tick, std::uint64_t, std::uint64_t>(
            st.sim_makespan, st.read_retries, st.retry_channel_bytes);
    };
    using Point = std::tuple<Tick, std::uint64_t, std::uint64_t>;
    const auto seq = core::ParallelSweep(1).map<Point>(3, point);
    const auto par = core::ParallelSweep(4).map<Point>(3, point);
    ASSERT_EQ(seq.size(), par.size());
    for (std::size_t i = 0; i < seq.size(); ++i)
        EXPECT_EQ(seq[i], par[i]) << "point " << i;
    EXPECT_EQ(std::get<1>(seq[0]), 0u); // zero-rate point is clean
    EXPECT_GT(std::get<1>(seq[2]), 0u);
}

} // namespace
} // namespace camllm
