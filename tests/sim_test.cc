/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <memory>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "sim/event_queue.h"

namespace camllm {
namespace {

TEST(EventQueue, StartsEmptyAtZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickFifoOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, NestedScheduling)
{
    EventQueue eq;
    std::vector<Tick> times;
    eq.schedule(10, [&] {
        times.push_back(eq.now());
        eq.scheduleIn(5, [&] { times.push_back(eq.now()); });
    });
    eq.run();
    ASSERT_EQ(times.size(), 2u);
    EXPECT_EQ(times[0], 10u);
    EXPECT_EQ(times[1], 15u);
}

TEST(EventQueue, ScheduleAtCurrentTickRuns)
{
    EventQueue eq;
    int hits = 0;
    eq.schedule(7, [&] {
        eq.schedule(7, [&] { ++hits; }); // zero-delay follow-up
    });
    eq.run();
    EXPECT_EQ(hits, 1);
    EXPECT_EQ(eq.now(), 7u);
}

TEST(EventQueue, RunUntilAdvancesClock)
{
    EventQueue eq;
    int hits = 0;
    eq.schedule(10, [&] { ++hits; });
    eq.schedule(100, [&] { ++hits; });
    eq.runUntil(50);
    EXPECT_EQ(hits, 1);
    EXPECT_EQ(eq.now(), 50u);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(hits, 2);
}

TEST(EventQueue, CountsExecuted)
{
    EventQueue eq;
    for (int i = 0; i < 25; ++i)
        eq.schedule(Tick(i), [] {});
    eq.run();
    EXPECT_EQ(eq.executed(), 25u);
}

TEST(EventQueue, ResetClearsEverything)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.schedule(20, [] {});
    eq.step();
    eq.reset();
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.executed(), 0u);
}

TEST(EventQueue, ManyEventsStressOrdering)
{
    EventQueue eq;
    Tick last = 0;
    bool monotone = true;
    for (int i = 0; i < 5000; ++i)
        eq.schedule(Tick((i * 7919) % 1000), [&] {
            monotone = monotone && eq.now() >= last;
            last = eq.now();
        });
    eq.run();
    EXPECT_TRUE(monotone);
    EXPECT_EQ(eq.executed(), 5000u);
}

TEST(EventQueueDeath, PastSchedulingPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.step();
    EXPECT_DEATH(eq.schedule(50, [] {}), "scheduled in the past");
}

// Determinism regression for the pooled calendar/heap kernel: 10k
// events with randomized ticks (dense same-tick bursts inside the
// calendar window plus far-future outliers that migrate from the
// heap) must execute in exact (tick, insertion order).
TEST(EventQueue, RandomizedSameTickInsertionOrderPreserved)
{
    Rng rng(1234);
    EventQueue eq;
    std::vector<std::pair<Tick, int>> fired; // (tick, insertion idx)
    std::vector<std::pair<Tick, int>> want;
    fired.reserve(10000);
    for (int i = 0; i < 10000; ++i) {
        // ~40 insertions per tick near now, sparse far tail.
        Tick when = (i % 10 == 0) ? Tick(rng.below(2'000'000))
                                  : Tick(rng.below(250));
        want.emplace_back(when, i);
        eq.schedule(when, [&fired, when, i] {
            fired.emplace_back(when, i);
        });
    }
    eq.run();
    // Stable sort by tick == required order: ties keep insertion order.
    std::stable_sort(want.begin(), want.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    ASSERT_EQ(fired.size(), want.size());
    EXPECT_EQ(fired, want);
    EXPECT_EQ(eq.executed(), 10000u);
}

// Pool recycling: draining and refilling the queue must reuse event
// records from the free list instead of growing the pool.
TEST(EventQueue, PoolRecyclesEventRecords)
{
    EventQueue eq;
    for (int round = 0; round < 50; ++round) {
        for (int i = 0; i < 100; ++i)
            eq.schedule(eq.now() + Tick(i % 7), [] {});
        eq.run();
    }
    // 100 concurrently-pending events, 50 rounds: without recycling
    // the pool would hold 5000 records.
    EXPECT_LE(eq.poolAllocated(), 512u);
    EXPECT_EQ(eq.executed(), 5000u);
}

TEST(EventQueue, ReservePreallocatesPool)
{
    EventQueue eq;
    eq.reserve(4000);
    const std::size_t pre = eq.poolAllocated();
    EXPECT_GE(pre, 4000u);
    for (int i = 0; i < 4000; ++i)
        eq.schedule(Tick(i), [] {});
    eq.run();
    // Scheduling within the reservation must not grow the pool.
    EXPECT_EQ(eq.poolAllocated(), pre);
}

// Callbacks bigger than the inline storage take the boxed path; their
// captures must survive and be destroyed exactly once.
TEST(EventQueue, OversizedCallbacksExecuteAndDestroy)
{
    EventQueue eq;
    auto payload = std::make_shared<int>(41);
    std::weak_ptr<int> watch = payload;
    std::uint64_t sum = 0;
    struct Big
    {
        std::shared_ptr<int> p;
        std::uint64_t pad[8];
    } big{std::move(payload), {1, 2, 3, 4, 5, 6, 7, 8}};
    static_assert(sizeof(Big) > EventQueue::kInlineBytes);
    eq.schedule(5, [big = std::move(big), &sum] {
        sum = *big.p + big.pad[7];
    });
    eq.run();
    EXPECT_EQ(sum, 49u);
    EXPECT_TRUE(watch.expired()); // capture destroyed after execution
}

// --- configurable calendar window ---------------------------------------

TEST(EventQueueWindow, DefaultAndRounding)
{
    EXPECT_EQ(EventQueue().windowTicks(), EventQueue::kDefaultWindow);
    EXPECT_EQ(EventQueue(100).windowTicks(), 128u);
    EXPECT_EQ(EventQueue(64).windowTicks(), 64u);
    // Clamped to the minimum width.
    EXPECT_EQ(EventQueue(1).windowTicks(), EventQueue::kMinWindow);
}

TEST(EventQueueWindow, EnvVarSelectsDefault)
{
    setenv("CAMLLM_EQ_WINDOW", "256", 1);
    EXPECT_EQ(EventQueue().windowTicks(), 256u);
    // An explicit width still wins over the environment.
    EXPECT_EQ(EventQueue(32).windowTicks(), 32u);
    unsetenv("CAMLLM_EQ_WINDOW");
    EXPECT_EQ(EventQueue().windowTicks(), EventQueue::kDefaultWindow);
}

// Events repeatedly straddling a tiny calendar window (some in the
// current window, some migrating through the far-future heap) must
// still execute in exact (tick, insertion) order.
TEST(EventQueueWindow, StraddlingEventsKeepOrderAcrossBoundary)
{
    Rng rng(99);
    EventQueue eq(16);
    ASSERT_EQ(eq.windowTicks(), 16u);
    std::vector<std::pair<Tick, int>> fired;
    std::vector<std::pair<Tick, int>> want;
    for (int i = 0; i < 4000; ++i) {
        // Dense ticks spanning several windows plus far outliers.
        Tick when = (i % 5 == 0) ? Tick(1000 + rng.below(500))
                                 : Tick(rng.below(80));
        want.emplace_back(when, i);
        eq.schedule(when, [&fired, when, i] {
            fired.emplace_back(when, i);
        });
    }
    eq.run();
    std::stable_sort(want.begin(), want.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    EXPECT_EQ(fired, want);
}

// Nested scheduling exactly at the window edge: an event at the last
// in-window tick schedules one just past the (advanced) boundary and
// one far beyond it.
TEST(EventQueueWindow, NestedSchedulingAcrossBoundary)
{
    EventQueue eq(16);
    std::vector<Tick> times;
    eq.schedule(15, [&] {
        times.push_back(eq.now());
        eq.schedule(16, [&] { times.push_back(eq.now()); });
        eq.schedule(500, [&] { times.push_back(eq.now()); });
    });
    eq.schedule(31, [&] { times.push_back(eq.now()); });
    eq.run();
    EXPECT_EQ(times, (std::vector<Tick>{15, 16, 31, 500}));
}

TEST(EventQueueWindow, EnvVarRejectsGarbage)
{
    // strtol would silently accept a valid prefix; the queue must
    // insist on a fully-consumed plain decimal count and fall back to
    // the default (with a warning) otherwise.
    for (const char *bad : {"1024abc", "1e6", "", "abc", "-16", "0",
                            "999999999999999999999999"}) {
        setenv("CAMLLM_EQ_WINDOW", bad, 1);
        EXPECT_EQ(EventQueue().windowTicks(), EventQueue::kDefaultWindow)
            << "CAMLLM_EQ_WINDOW='" << bad << "'";
    }
    unsetenv("CAMLLM_EQ_WINDOW");
}

// Events exactly at (and adjacent to) every wheel-block boundary, each
// tick scheduled twice, inserted in descending order: the hierarchy
// must still execute in exact (tick, insertion) order, and only ticks
// beyond the top wheel's block may touch the far-future heap.
TEST(EventQueueWindow, EventsAtExactBlockBoundaries)
{
    EventQueue eq(16); // W=16: block widths 2^14, 2^24, 2^34, 2^44
    const std::vector<Tick> edges = {
        Tick(1) << 4,  Tick(1) << 14, Tick(1) << 24,
        Tick(1) << 34, Tick(1) << 44,
    };
    std::vector<Tick> ticks = {0};
    for (Tick e : edges) {
        ticks.push_back(e - 1);
        ticks.push_back(e);
        ticks.push_back(e + 1);
    }
    std::vector<std::pair<Tick, int>> fired;
    std::vector<std::pair<Tick, int>> want;
    int idx = 0;
    for (auto it = ticks.rbegin(); it != ticks.rend(); ++it)
        for (int rep = 0; rep < 2; ++rep, ++idx) {
            const Tick when = *it;
            want.emplace_back(when, idx);
            eq.schedule(when, [&fired, when, idx] {
                fired.emplace_back(when, idx);
            });
        }
    // Only 2^44 and 2^44 + 1 lie beyond the top block (x2 each).
    EXPECT_EQ(eq.heapPending(), 4u);
    eq.run();
    std::stable_sort(want.begin(), want.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    EXPECT_EQ(fired, want);
}

// Randomized mix spanning every level (dense same-tick collisions in
// the window, mid wheels, and past-top-block heap events).
TEST(EventQueueWindow, RandomizedAllLevelsOrderPreserved)
{
    Rng rng(7);
    EventQueue eq(16);
    const Tick scales[] = {64, Tick(1) << 16, Tick(1) << 26,
                           Tick(1) << 36, Tick(1) << 45};
    std::vector<std::pair<Tick, int>> fired;
    std::vector<std::pair<Tick, int>> want;
    for (int i = 0; i < 4000; ++i) {
        const Tick when = Tick(rng.below(scales[i % 5]));
        want.emplace_back(when, i);
        eq.schedule(when, [&fired, when, i] {
            fired.emplace_back(when, i);
        });
    }
    eq.run();
    std::stable_sort(want.begin(), want.end(),
                     [](const auto &a, const auto &b) {
                         return a.first < b.first;
                     });
    EXPECT_EQ(fired, want);
    EXPECT_EQ(eq.executed(), 4000u);
}

// Regression for the lazily-cascading calendar: a runUntil() that
// stops inside an idle gap peeks at (but must not commit past) the
// next pending tick. Events scheduled afterwards, below that tick,
// must still run first and in order.
TEST(EventQueue, RunUntilIdleGapThenEarlierSchedule)
{
    EventQueue eq(16);
    std::vector<Tick> times;
    auto mark = [&] { times.push_back(eq.now()); };
    eq.schedule(100000, mark); // two wheels up for W=16
    eq.runUntil(50);
    EXPECT_EQ(eq.now(), 50u);
    EXPECT_EQ(eq.pending(), 1u);
    eq.schedule(60, mark);
    eq.schedule(55, mark); // same upper-wheel slot as 60, earlier tick
    eq.run();
    EXPECT_EQ(times, (std::vector<Tick>{55, 60, 100000}));
}

// The bucket-scan cursor caches the last found tick; an event
// scheduled below it (but past now) must rewind the cursor.
TEST(EventQueue, RunUntilKeepsScanCursorConsistent)
{
    EventQueue eq;
    std::vector<Tick> times;
    auto mark = [&] { times.push_back(eq.now()); };
    eq.schedule(100, mark);
    eq.schedule(900, mark);
    eq.runUntil(500); // runs 100, scan cursor parks on 900
    eq.schedule(600, mark);
    eq.runUntil(700); // must find 600 despite the parked cursor
    EXPECT_EQ(times, (std::vector<Tick>{100, 600}));
    eq.run();
    EXPECT_EQ(times, (std::vector<Tick>{100, 600, 900}));
}

// reset() must clear every level (window, wheels, heap) and the scan
// cursor, so earlier ticks are schedulable again from a cold clock.
TEST(EventQueue, ResetClearsScanCursorAndWheels)
{
    EventQueue eq(16);
    eq.schedule(30, [] {});
    eq.schedule(100000, [] {});        // upper wheel
    eq.schedule(Tick(1) << 44, [] {}); // heap
    eq.runUntil(40);                   // executes 30, peeks the rest
    eq.reset();
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.now(), 0u);
    std::vector<Tick> times;
    auto mark = [&] { times.push_back(eq.now()); };
    eq.schedule(5, mark);
    eq.schedule(2, mark);
    eq.run();
    EXPECT_EQ(times, (std::vector<Tick>{2, 5}));
    EXPECT_EQ(eq.executed(), 2u);
}

// Same-tick FIFO across cascade depths: events for one far tick are
// inserted at different anchor positions (so they enter at different
// wheel levels) and must still interleave in insertion order.
TEST(EventQueue, SameTickFifoAcrossWheelCascades)
{
    EventQueue eq(16);
    std::vector<int> order;
    const Tick far = 20'000'000; // third wheel for W=16
    eq.schedule(far, [&] { order.push_back(0); });
    eq.schedule(100, [&] {
        eq.schedule(far, [&] { order.push_back(2); });
    });
    eq.schedule(far, [&] { order.push_back(1); });
    // After this runs the anchor sits one block below `far`, so the
    // callback's insertion enters at a lower wheel than 0/1/2 did —
    // yet it must still run last within the tick.
    eq.schedule(17'000'000, [&] {
        eq.schedule(far, [&] { order.push_back(3); });
    });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3}));
}

// reserve() must be idempotent and respect free-list refills: only a
// genuinely larger requirement may grow the pool.
TEST(EventQueue, ReserveTopUpAccounting)
{
    EventQueue eq;
    eq.reserve(1000);
    const std::size_t p1 = eq.poolAllocated();
    EXPECT_GE(p1, 1000u);
    eq.reserve(500); // already covered
    EXPECT_EQ(eq.poolAllocated(), p1);
    for (int i = 0; i < 800; ++i)
        eq.schedule(Tick(i % 97), [] {});
    eq.run();
    eq.reserve(1000); // free list was refilled by the run
    EXPECT_EQ(eq.poolAllocated(), p1);
    eq.reserve(5000);
    EXPECT_GE(eq.poolAllocated(), 5000u);
}

// Same-tick ordering must hold across the calendar/heap boundary:
// events scheduled for one far tick from the heap and events
// scheduled for that tick after the window advanced must interleave
// in insertion order.
TEST(EventQueue, HeapMigrationKeepsFifoWithinTick)
{
    EventQueue eq;
    std::vector<int> order;
    const Tick far = 1'000'000;
    eq.schedule(far, [&] { order.push_back(0); }); // via heap
    eq.schedule(10, [&eq, &order, far] {
        // Scheduled third in real time, so it runs after both others.
        eq.schedule(far, [&order] { order.push_back(1); });
    });
    eq.schedule(far, [&] { order.push_back(2); }); // via heap
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{0, 2, 1}));
}

} // namespace
} // namespace camllm
