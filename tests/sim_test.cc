/**
 * @file
 * Unit tests for the discrete-event kernel.
 */

#include <gtest/gtest.h>

#include <vector>

#include "sim/event_queue.h"

namespace camllm {
namespace {

TEST(EventQueue, StartsEmptyAtZero)
{
    EventQueue eq;
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_FALSE(eq.step());
}

TEST(EventQueue, ExecutesInTimeOrder)
{
    EventQueue eq;
    std::vector<int> order;
    eq.schedule(30, [&] { order.push_back(3); });
    eq.schedule(10, [&] { order.push_back(1); });
    eq.schedule(20, [&] { order.push_back(2); });
    eq.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(eq.now(), 30u);
}

TEST(EventQueue, SameTickFifoOrder)
{
    EventQueue eq;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        eq.schedule(5, [&order, i] { order.push_back(i); });
    eq.run();
    for (int i = 0; i < 10; ++i)
        EXPECT_EQ(order[i], i);
}

TEST(EventQueue, NestedScheduling)
{
    EventQueue eq;
    std::vector<Tick> times;
    eq.schedule(10, [&] {
        times.push_back(eq.now());
        eq.scheduleIn(5, [&] { times.push_back(eq.now()); });
    });
    eq.run();
    ASSERT_EQ(times.size(), 2u);
    EXPECT_EQ(times[0], 10u);
    EXPECT_EQ(times[1], 15u);
}

TEST(EventQueue, ScheduleAtCurrentTickRuns)
{
    EventQueue eq;
    int hits = 0;
    eq.schedule(7, [&] {
        eq.schedule(7, [&] { ++hits; }); // zero-delay follow-up
    });
    eq.run();
    EXPECT_EQ(hits, 1);
    EXPECT_EQ(eq.now(), 7u);
}

TEST(EventQueue, RunUntilAdvancesClock)
{
    EventQueue eq;
    int hits = 0;
    eq.schedule(10, [&] { ++hits; });
    eq.schedule(100, [&] { ++hits; });
    eq.runUntil(50);
    EXPECT_EQ(hits, 1);
    EXPECT_EQ(eq.now(), 50u);
    EXPECT_EQ(eq.pending(), 1u);
    eq.run();
    EXPECT_EQ(hits, 2);
}

TEST(EventQueue, CountsExecuted)
{
    EventQueue eq;
    for (int i = 0; i < 25; ++i)
        eq.schedule(Tick(i), [] {});
    eq.run();
    EXPECT_EQ(eq.executed(), 25u);
}

TEST(EventQueue, ResetClearsEverything)
{
    EventQueue eq;
    eq.schedule(10, [] {});
    eq.schedule(20, [] {});
    eq.step();
    eq.reset();
    EXPECT_EQ(eq.now(), 0u);
    EXPECT_TRUE(eq.empty());
    EXPECT_EQ(eq.executed(), 0u);
}

TEST(EventQueue, ManyEventsStressOrdering)
{
    EventQueue eq;
    Tick last = 0;
    bool monotone = true;
    for (int i = 0; i < 5000; ++i)
        eq.schedule(Tick((i * 7919) % 1000), [&] {
            monotone = monotone && eq.now() >= last;
            last = eq.now();
        });
    eq.run();
    EXPECT_TRUE(monotone);
    EXPECT_EQ(eq.executed(), 5000u);
}

TEST(EventQueueDeath, PastSchedulingPanics)
{
    EventQueue eq;
    eq.schedule(100, [] {});
    eq.step();
    EXPECT_DEATH(eq.schedule(50, [] {}), "scheduled in the past");
}

} // namespace
} // namespace camllm
