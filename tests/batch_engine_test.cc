/**
 * @file
 * Tests for the continuous-batching decode engine: batch-of-one
 * equivalence with the single-stream engine (bit-exact), determinism
 * across sweep-thread settings, admission/retire behavior beyond the
 * batch limit, and throughput/fairness sanity under concurrency.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/batch_engine.h"
#include "core/engine.h"
#include "core/presets.h"
#include "core/sweep.h"
#include "llm/model_config.h"

namespace camllm::core {
namespace {

void
expectSameStats(const TokenStats &a, const TokenStats &b)
{
    EXPECT_EQ(a.token_time, b.token_time);
    EXPECT_DOUBLE_EQ(a.tokens_per_s, b.tokens_per_s);
    EXPECT_DOUBLE_EQ(a.avg_channel_util, b.avg_channel_util);
    EXPECT_EQ(a.channel_bytes_high, b.channel_bytes_high);
    EXPECT_EQ(a.channel_bytes_low, b.channel_bytes_low);
    EXPECT_EQ(a.dram_bytes, b.dram_bytes);
    EXPECT_EQ(a.array_read_bytes, b.array_read_bytes);
    EXPECT_EQ(a.pages_computed, b.pages_computed);
    EXPECT_EQ(a.pages_read, b.pages_read);
    EXPECT_DOUBLE_EQ(a.npu_flops, b.npu_flops);
    EXPECT_DOUBLE_EQ(a.flash_flops, b.flash_flops);
    EXPECT_EQ(a.weight_bytes_flash, b.weight_bytes_flash);
    EXPECT_EQ(a.weight_bytes_npu, b.weight_bytes_npu);
    EXPECT_EQ(a.extrapolated, b.extrapolated);
    EXPECT_EQ(a.simulated_layers, b.simulated_layers);
}

TEST(BatchEngine, BatchOfOneMatchesSingleStreamBitExactly)
{
    const CamConfig cfg = presetS();
    const llm::ModelConfig model = llm::opt6_7b();

    const TokenStats single =
        CambriconEngine(cfg, model).decodeToken();

    BatchEngine be(cfg, model);
    const BatchStats bs =
        be.run({RequestSpec{cfg.seq_len, 1}}, /*max_batch=*/1);

    ASSERT_EQ(bs.requests.size(), 1u);
    expectSameStats(single, bs.requests[0].first_token);
    EXPECT_EQ(bs.requests[0].total_token_time, single.token_time);
    EXPECT_DOUBLE_EQ(bs.requests[0].tokens_per_s, single.tokens_per_s);
    EXPECT_DOUBLE_EQ(bs.aggregate_tokens_per_s, single.tokens_per_s);
    EXPECT_DOUBLE_EQ(bs.fairness_jain, 1.0);
}

TEST(BatchEngine, BatchOfOneMatchesAcrossQuantAndConfig)
{
    const llm::ModelConfig model = llm::opt6_7b();
    for (auto quant : {llm::QuantMode::W8A8, llm::QuantMode::W4A16}) {
        CamConfig cfg = presetCustom(8, 2);
        cfg.quant = quant;
        cfg.seq_len = 384;
        const TokenStats single =
            CambriconEngine(cfg, model).decodeToken();
        const BatchStats bs = BatchEngine(cfg, model).run(
            {RequestSpec{cfg.seq_len, 1}}, 1);
        expectSameStats(single, bs.requests[0].first_token);
    }
}

TEST(BatchEngine, DeterministicAcrossSweepThreadSettings)
{
    // The serving bench evaluates batch points inside ParallelSweep;
    // per-request stats must be identical no matter how many workers
    // the pool runs (each point's simulation is self-contained).
    const CamConfig cfg = presetS();
    const llm::ModelConfig model = llm::opt6_7b();
    const std::vector<RequestSpec> reqs = {
        {256, 2}, {512, 1}, {1024, 2}, {384, 1}};

    const auto runPoint = [&](std::size_t) {
        return BatchEngine(cfg, model).run(reqs, 2);
    };
    ParallelSweep one(1), four(4);
    const auto a = one.map<BatchStats>(4, runPoint);
    const auto b = four.map<BatchStats>(4, runPoint);

    ASSERT_EQ(a.size(), b.size());
    for (std::size_t p = 0; p < a.size(); ++p) {
        ASSERT_EQ(a[p].requests.size(), b[p].requests.size());
        EXPECT_EQ(a[p].sim_makespan, b[p].sim_makespan);
        EXPECT_DOUBLE_EQ(a[p].aggregate_tokens_per_s,
                         b[p].aggregate_tokens_per_s);
        for (std::size_t r = 0; r < a[p].requests.size(); ++r) {
            expectSameStats(a[p].requests[r].first_token,
                            b[p].requests[r].first_token);
            EXPECT_EQ(a[p].requests[r].total_token_time,
                      b[p].requests[r].total_token_time);
            EXPECT_EQ(a[p].requests[r].admit_tick,
                      b[p].requests[r].admit_tick);
            EXPECT_EQ(a[p].requests[r].finish_tick,
                      b[p].requests[r].finish_tick);
        }
    }
}

TEST(BatchEngine, AdmitsBeyondBatchLimitAndRetiresInWaves)
{
    const CamConfig cfg = presetS();
    const llm::ModelConfig model = llm::opt6_7b();
    const std::vector<RequestSpec> reqs = {
        {256, 1}, {512, 1}, {768, 1}, {1024, 1}, {320, 1}};

    const BatchStats bs = BatchEngine(cfg, model).run(reqs, 2);
    ASSERT_EQ(bs.requests.size(), 5u);
    EXPECT_EQ(bs.total_tokens, 5u);

    // First two admitted at t = 0; the rest only after a retirement.
    EXPECT_EQ(bs.requests[0].admit_tick, 0u);
    EXPECT_EQ(bs.requests[1].admit_tick, 0u);
    for (std::size_t i = 2; i < 5; ++i)
        EXPECT_GT(bs.requests[i].admit_tick, 0u);
    for (const RequestStats &r : bs.requests) {
        EXPECT_GT(r.finish_tick, r.admit_tick);
        EXPECT_LE(r.finish_tick, bs.sim_makespan);
        EXPECT_GT(r.tokens_per_s, 0.0);
    }
}

TEST(BatchEngine, MultiTokenRequestGrowsItsKvStream)
{
    CamConfig cfg = presetS();
    cfg.seq_len = 256;
    const llm::ModelConfig model = llm::opt6_7b();

    const BatchStats bs =
        BatchEngine(cfg, model).run({RequestSpec{256, 3}}, 1);
    ASSERT_EQ(bs.requests.size(), 1u);
    EXPECT_EQ(bs.requests[0].decode_tokens, 3u);
    EXPECT_EQ(bs.total_tokens, 3u);

    // First token equals a plain decode at the same context; the mean
    // over three tokens is higher because the KV stream grows.
    const TokenStats single =
        CambriconEngine(cfg, model).decodeToken();
    expectSameStats(single, bs.requests[0].first_token);
    EXPECT_GE(bs.requests[0].mean_token_time, single.token_time);
}

TEST(BatchEngine, ConcurrencyRaisesAggregateThroughput)
{
    const CamConfig cfg = presetS();
    const llm::ModelConfig model = llm::opt6_7b();
    const std::vector<RequestSpec> reqs(4, RequestSpec{512, 1});

    BatchEngine be(cfg, model);
    const BatchStats serial = be.run(reqs, 1);
    const BatchStats batched = be.run(reqs, 4);

    // Four streams fill each other's channel bubbles; at minimum the
    // shared device must not get slower than strictly serial service.
    EXPECT_GT(batched.aggregate_tokens_per_s,
              serial.aggregate_tokens_per_s * 1.02);
    EXPECT_GE(batched.avg_channel_util, serial.avg_channel_util - 1e-9);
    // Identical requests must be served near-evenly.
    EXPECT_GT(batched.fairness_jain, 0.98);
}

} // namespace
} // namespace camllm::core
