/**
 * @file
 * Deeper coverage: op-graph structure, the args parser, the energy
 * model, pipeline sweeps, ECC bit-level layout, and failure injection
 * on user-facing validation paths.
 */

#include <gtest/gtest.h>

#include "baselines/pipeline.h"
#include "common/args.h"
#include "core/energy.h"
#include "core/engine.h"
#include "core/presets.h"
#include "ecc/bitstream.h"
#include "ecc/hamming.h"
#include "ecc/outlier_codec.h"
#include "llm/model_config.h"
#include "llm/opgraph.h"

namespace camllm {
namespace {

// --- op graph structure -------------------------------------------------------

TEST(OpGraphStructure, OpCountsPerLayer)
{
    auto q = llm::QuantSpec::of(llm::QuantMode::W8A8);
    // Standard FFN: ln1, q, k, v, append, score, softmax, context, o,
    // ln2, fc1, gelu, fc2 = 13 ops per layer (+3 global).
    auto g_opt = llm::buildDecodeGraph(llm::opt6_7b(), 16, q, 4);
    EXPECT_EQ(g_opt.ops.size(), 4u * 13 + 3);
    // Gated FFN adds one GeMV: 14 per layer.
    auto g_llama = llm::buildDecodeGraph(llm::llama2_7b(), 16, q, 4);
    EXPECT_EQ(g_llama.ops.size(), 4u * 14 + 3);
}

TEST(OpGraphStructure, EveryNonRootOpHasDeps)
{
    auto q = llm::QuantSpec::of(llm::QuantMode::W8A8);
    auto g = llm::buildDecodeGraph(llm::opt6_7b(), 16, q, 2);
    for (std::size_t i = 1; i < g.ops.size(); ++i)
        EXPECT_FALSE(g.ops[i].deps.empty()) << g.ops[i].name;
}

TEST(OpGraphStructure, EveryOpReachable)
{
    // Walking dependents from the root must reach the lm_head.
    auto q = llm::QuantSpec::of(llm::QuantMode::W8A8);
    auto g = llm::buildDecodeGraph(llm::llama2_7b(), 16, q, 3);
    std::vector<bool> reach(g.ops.size(), false);
    reach[0] = true;
    for (std::size_t i = 1; i < g.ops.size(); ++i)
        for (auto d : g.ops[i].deps)
            if (reach[d])
                reach[i] = true;
    EXPECT_TRUE(reach[g.lastOp()]);
}

TEST(OpGraphStructure, TotalFlopsNearTwiceParams)
{
    auto q = llm::QuantSpec::of(llm::QuantMode::W8A8);
    llm::ModelConfig m = llm::opt6_7b();
    auto g = llm::buildDecodeGraph(m, 512, q, m.n_layers);
    // Decode flops ~ 2 * weight params (+ small attention/SFU terms).
    const double ratio =
        g.totalFlops() / (2.0 * double(m.decodeWeightParams()));
    EXPECT_GT(ratio, 1.0);
    EXPECT_LT(ratio, 1.1);
}

TEST(OpGraphStructure, GqaShrinksKvOps)
{
    auto q = llm::QuantSpec::of(llm::QuantMode::W8A8);
    auto g70 = llm::buildDecodeGraph(llm::llama2_70b(), 100, q, 1);
    std::uint64_t kv_rows = 0;
    for (const auto &op : g70.ops)
        if (op.name == "wk")
            kv_rows = op.rows;
    EXPECT_EQ(kv_rows, 1024u); // 8 kv heads x 128 head dim
}

// --- args parser ----------------------------------------------------------------

TEST(Args, ParsesAllForms)
{
    // Note: "--key value" greedily consumes the next token, so a
    // trailing bare "--flag" is the boolean form.
    const char *argv[] = {"prog", "pos1", "--a=1", "--b", "2",
                          "--c=x", "--flag"};
    Args args(7, argv);
    EXPECT_EQ(args.getInt("a", 0), 1);
    EXPECT_EQ(args.getInt("b", 0), 2);
    EXPECT_TRUE(args.has("flag"));
    EXPECT_EQ(args.get("c"), "x");
    ASSERT_EQ(args.positional().size(), 1u);
    EXPECT_EQ(args.positional()[0], "pos1");
}

TEST(Args, FallbacksWhenMissing)
{
    const char *argv[] = {"prog"};
    Args args(1, argv);
    EXPECT_EQ(args.getInt("nope", 42), 42);
    EXPECT_DOUBLE_EQ(args.getDouble("nope", 2.5), 2.5);
    EXPECT_EQ(args.get("nope", "dflt"), "dflt");
    EXPECT_FALSE(args.has("nope"));
}

TEST(Args, TracksUnusedKeys)
{
    const char *argv[] = {"prog", "--used=1", "--typo=2"};
    Args args(3, argv);
    args.getInt("used", 0);
    auto unused = args.unusedKeys();
    ASSERT_EQ(unused.size(), 1u);
    EXPECT_EQ(unused[0], "typo");
}

TEST(ArgsDeath, MalformedIntegerIsFatal)
{
    const char *argv[] = {"prog", "--n=abc"};
    Args args(2, argv);
    EXPECT_EXIT(args.getInt("n", 0), ::testing::ExitedWithCode(1),
                "integer");
}

// --- energy model ------------------------------------------------------------------

TEST(Energy, LinearInCounters)
{
    core::TokenStats s;
    s.array_read_bytes = 1'000'000'000;
    s.channel_bytes_low = 500'000'000;
    s.dram_bytes = 100'000'000;
    core::EnergyBreakdown a = core::computeEnergy(s);
    s.array_read_bytes *= 2;
    core::EnergyBreakdown b = core::computeEnergy(s);
    EXPECT_DOUBLE_EQ(b.array_j, 2.0 * a.array_j);
    EXPECT_DOUBLE_EQ(b.channel_j, a.channel_j);
}

TEST(Energy, CustomParamsRespected)
{
    core::TokenStats s;
    s.dram_bytes = 1'000'000'000;
    core::EnergyParams p;
    p.pj_per_byte_dram = 300.0;
    EXPECT_NEAR(core::computeEnergy(s, p).dram_j, 0.3, 1e-9);
}

TEST(Energy, ZeroCountersZeroJoules)
{
    EXPECT_DOUBLE_EQ(core::computeEnergy(core::TokenStats{}).totalJ(),
                     0.0);
}

// --- pipeline sweeps ------------------------------------------------------------------

TEST(PipelineSweep, TotalNeverBelowBottleneckBound)
{
    for (double slow : {0.5, 1.0, 4.0}) {
        std::vector<baselines::Stage> stages = {
            {"a", 8.0, 100}, {"slow", slow, 50}, {"c", 16.0, 10}};
        auto r = baselines::runPipeline(stages, 10'000'000, 100'000);
        EXPECT_GE(double(r.total_time), 10'000'000.0 / slow);
        EXPECT_EQ(r.bottleneck_stage, 1u);
    }
}

TEST(PipelineSweep, ChunkCountInvariance)
{
    // With zero latency, chunking barely matters beyond the fill.
    std::vector<baselines::Stage> stages = {{"a", 2.0, 0},
                                            {"b", 1.0, 0}};
    auto coarse = baselines::runPipeline(stages, 1'000'000, 250'000);
    auto fine = baselines::runPipeline(stages, 1'000'000, 25'000);
    EXPECT_NEAR(double(fine.total_time), 1'000'000.0, 15'000.0);
    EXPECT_LT(fine.total_time, coarse.total_time);
}

// --- ECC bit-level layout ---------------------------------------------------------------

TEST(EccLayout, SpareBytesMatchFormula)
{
    ecc::OutlierCodec codec;
    // 9 threshold bytes + ceil(163 * 35 / 8) record bytes.
    const std::uint32_t bits = 9 * 8 + 163 * (19 + 16);
    EXPECT_EQ(codec.eccBytes(16384), (bits + 7) / 8);
}

TEST(EccLayout, EncodeIsDeterministic)
{
    ecc::OutlierCodec codec;
    std::vector<std::int8_t> page(4096);
    for (std::size_t i = 0; i < page.size(); ++i)
        page[i] = std::int8_t((i * 37) % 251 - 125);
    EXPECT_EQ(codec.encode(page), codec.encode(page));
}

TEST(EccLayout, ThresholdSurvivesFourCopyCorruptions)
{
    // 9 copies vote bitwise: corrupting 4 whole copies cannot move it.
    ecc::OutlierCodec codec;
    std::vector<std::int8_t> page(1024);
    for (std::size_t i = 0; i < page.size(); ++i)
        page[i] = std::int8_t(i % 100);
    auto ecc_blob = codec.encode(page);
    for (int c = 0; c < 4; ++c)
        ecc_blob[std::size_t(c)] ^= 0xff;
    auto copy = page;
    ecc::OutlierDecodeStats st;
    codec.decode(copy, ecc_blob, &st);
    EXPECT_EQ(copy, page); // nothing clamped, nothing repaired
    EXPECT_EQ(st.clamped, 0u);
}

TEST(EccLayout, NegativeOutliersProtected)
{
    ecc::OutlierCodec codec;
    std::vector<std::int8_t> page(1024, 1);
    page[10] = -120; // the magnitude champion is negative
    auto blob = codec.encode(page);
    auto copy = page;
    copy[10] = 7;
    codec.decode(copy, blob, nullptr);
    EXPECT_EQ(copy[10], -120);
}

TEST(EccLayout, MinusOneTiesDoNotClamp)
{
    // All-equal-magnitude page: threshold equals every value; nothing
    // may be clamped (strict inequality).
    ecc::OutlierCodec codec;
    std::vector<std::int8_t> page(512, -3);
    auto blob = codec.encode(page);
    auto copy = page;
    ecc::OutlierDecodeStats st;
    codec.decode(copy, blob, &st);
    EXPECT_EQ(st.clamped, 0u);
    EXPECT_EQ(copy, page);
}

// --- failure injection on validation paths -------------------------------------------------

TEST(ValidationDeath, InvalidFlashGeometryIsFatal)
{
    core::CamConfig cfg = core::presetS();
    cfg.flash.geometry.channels = 0;
    EXPECT_EXIT(
        { core::CambriconEngine e(cfg, llm::opt6_7b()); },
        ::testing::ExitedWithCode(1), "invalid");
}

TEST(ValidationDeath, InvalidModelIsFatal)
{
    llm::ModelConfig bad = llm::opt6_7b();
    bad.d_model = 0;
    EXPECT_EXIT(
        { core::CambriconEngine e(core::presetS(), bad); },
        ::testing::ExitedWithCode(1), "invalid");
}

TEST(ValidationDeath, ModelLargerThanFlashIsFatal)
{
    core::CamConfig tiny = core::presetS();
    tiny.flash.geometry.blocks_per_plane = 4; // ~8 GB device
    EXPECT_EXIT(
        { core::CambriconEngine e(tiny, llm::llama2_70b()); },
        ::testing::ExitedWithCode(1), "does not fit");
}

TEST(Validation, SeventyBFitsEveryPreset)
{
    for (const auto &cfg :
         {core::presetS(), core::presetM(), core::presetL()}) {
        core::CambriconEngine e(cfg, llm::llama2_70b());
        EXPECT_GT(e.decodeWeightBytes(), 60ull * 1000 * 1000 * 1000);
    }
}

TEST(ValidationDeath, HammingRejectsOversizedValue)
{
    EXPECT_DEATH(ecc::hammingEncode(std::uint16_t(1u << 14)),
                 "exceeds 14 bits");
}

TEST(ValidationDeath, BitReaderPastEndPanics)
{
    std::vector<std::uint8_t> one_byte = {0xff};
    ecc::BitReader r(one_byte);
    r.get(8);
    EXPECT_DEATH(r.get(1), "exhausted");
}

} // namespace
} // namespace camllm
