/**
 * @file
 * Unit tests for the NPU-side models: parameters, compute/SFU timing
 * and the DRAM stream model.
 */

#include <gtest/gtest.h>

#include <vector>

#include "npu/dram.h"
#include "npu/params.h"
#include "sim/event_queue.h"

namespace camllm::npu {
namespace {

TEST(NpuParams, DefaultsMatchTableII)
{
    NpuParams p;
    EXPECT_DOUBLE_EQ(p.tops, 2.0);
    EXPECT_DOUBLE_EQ(p.dram_gbps, 40.0);
    EXPECT_TRUE(p.valid());
}

TEST(NpuParams, ComputeTime)
{
    NpuParams p;
    p.tops = 2.0; // 2000 ops per ns
    EXPECT_EQ(p.computeTime(2000.0), 1u);
    EXPECT_EQ(p.computeTime(2.0e6), 1000u);
}

TEST(NpuParams, SfuTime)
{
    NpuParams p;
    p.sfu_elems_per_ns = 2.0;
    EXPECT_EQ(p.sfuTime(4096), 2048u);
}

TEST(NpuParams, InvalidWhenZeroTops)
{
    NpuParams p;
    p.tops = 0.0;
    EXPECT_FALSE(p.valid());
}

TEST(Dram, SingleRequestTiming)
{
    EventQueue eq;
    NpuParams p;
    p.dram_gbps = 40.0;
    p.dram_latency = 100;
    DramModel dram(eq, p);
    Tick done = 0;
    dram.request(4000, [&] { done = eq.now(); });
    eq.run();
    EXPECT_EQ(done, 100u + 100u); // latency + 4000 B at 40 B/ns
    EXPECT_EQ(dram.bytesMoved(), 4000u);
}

TEST(Dram, RequestsSerializeFifo)
{
    EventQueue eq;
    NpuParams p;
    p.dram_gbps = 1.0;
    p.dram_latency = 0;
    DramModel dram(eq, p);
    std::vector<Tick> done;
    dram.request(100, [&] { done.push_back(eq.now()); });
    dram.request(100, [&] { done.push_back(eq.now()); });
    dram.request(100, [&] { done.push_back(eq.now()); });
    eq.run();
    EXPECT_EQ(done, (std::vector<Tick>{100, 200, 300}));
}

TEST(Dram, BusyTimeMatchesService)
{
    EventQueue eq;
    NpuParams p;
    p.dram_gbps = 2.0;
    p.dram_latency = 10;
    DramModel dram(eq, p);
    dram.request(100, [] {});
    dram.request(200, [] {});
    eq.run();
    // (10 + 50) + (10 + 100)
    EXPECT_EQ(dram.busy().busyTicks(), 170u);
}

TEST(Dram, ServiceTimeFormula)
{
    EventQueue eq;
    NpuParams p;
    p.dram_gbps = 40.0;
    p.dram_latency = 100;
    DramModel dram(eq, p);
    EXPECT_EQ(dram.serviceTime(40000), 100u + 1000u);
}

TEST(Dram, KvCacheStreamAtPaperScale)
{
    // 70B model, seq 1000: ~164 MB of GQA KV entries at 40 GB/s
    // should stream in ~4.1 ms.
    EventQueue eq;
    NpuParams p;
    DramModel dram(eq, p);
    const std::uint64_t kv = 2ull * 80 * 1024 * 1000; // K+V bytes
    Tick done = 0;
    dram.request(kv, [&] { done = eq.now(); });
    eq.run();
    EXPECT_NEAR(double(done), double(kv) / 40.0, 200.0);
}

} // namespace
} // namespace camllm::npu
