/**
 * @file
 * Unit tests for the LLM workload module: model configs vs published
 * parameter counts, quantization byte math, the decode op graph, the
 * functional kernels and the synthetic transformer.
 */

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"
#include "llm/eval.h"
#include "llm/kernels.h"
#include "llm/model_config.h"
#include "llm/opgraph.h"
#include "llm/quant.h"
#include "llm/tiny_transformer.h"

namespace camllm::llm {
namespace {

// --- model configs ----------------------------------------------------------

struct ParamCase
{
    ModelConfig model;
    double expected_billions;
};

class ModelParamCount : public ::testing::TestWithParam<ParamCase>
{
};

TEST_P(ModelParamCount, MatchesPublishedSize)
{
    const auto &[model, expected] = GetParam();
    const double billions = double(model.totalParams()) / 1e9;
    // Within 8% of the nameplate size (embeddings and norms vary by
    // checkpoint).
    EXPECT_NEAR(billions, expected, expected * 0.08) << model.name;
}

INSTANTIATE_TEST_SUITE_P(
    Zoo, ModelParamCount,
    ::testing::Values(ParamCase{opt6_7b(), 6.7}, ParamCase{opt13b(), 13.0},
                      ParamCase{opt30b(), 30.0}, ParamCase{opt66b(), 66.0},
                      ParamCase{llama2_7b(), 6.7},
                      ParamCase{llama2_13b(), 13.0},
                      ParamCase{llama2_70b(), 69.0}),
    [](const auto &info) {
        std::string n = info.param.model.name;
        for (auto &c : n)
            if (c == '-' || c == '.')
                c = '_';
        return n;
    });

TEST(ModelConfig, Llama70bUsesGqa)
{
    ModelConfig m = llama2_70b();
    EXPECT_EQ(m.n_kv_heads, 8u);
    EXPECT_EQ(m.kvProjDim(), 1024u);
    // GQA shrinks the KV cache 8x vs MHA.
    EXPECT_EQ(m.kvCacheBytes(1000, 1),
              2ull * 80 * 1024 * 1000);
}

TEST(ModelConfig, KvCacheMatchesPaperExample)
{
    // Paper: a 70B model at seq 1000 needs ~700 MB of KV cache. That
    // figure corresponds to MHA-style caching at INT8; our GQA-aware
    // count is 8x smaller and both fit easily in DRAM.
    ModelConfig m = llama2_70b();
    std::uint64_t mha_bytes = 2ull * m.n_layers * m.d_model * 1000;
    EXPECT_NEAR(double(mha_bytes), 1.31e9, 0.02e9);
    EXPECT_LT(m.kvCacheBytes(1000, 1), mha_bytes);
}

TEST(ModelConfig, DecodeWeightBytesOpt)
{
    // OPT-6.7B INT8 decode touches ~6.6 GB of weights per token.
    ModelConfig m = opt6_7b();
    QuantSpec q = QuantSpec::of(QuantMode::W8A8);
    double gb = double(q.weightBytes(m.decodeWeightParams())) / 1e9;
    EXPECT_NEAR(gb, 6.6, 0.4);
}

TEST(ModelConfig, ValidityChecks)
{
    ModelConfig m = opt6_7b();
    EXPECT_TRUE(m.valid());
    m.n_kv_heads = 3; // does not divide n_heads
    EXPECT_FALSE(m.valid());
    m = opt6_7b();
    m.n_layers = 0;
    EXPECT_FALSE(m.valid());
}

TEST(ModelConfig, FamiliesAreOrdered)
{
    auto opts = optFamily();
    ASSERT_EQ(opts.size(), 4u);
    for (std::size_t i = 1; i < opts.size(); ++i)
        EXPECT_GT(opts[i].totalParams(), opts[i - 1].totalParams());
    EXPECT_EQ(llamaFamily().size(), 3u);
}

// --- quantization -----------------------------------------------------------

TEST(Quant, ByteMath)
{
    QuantSpec w8 = QuantSpec::of(QuantMode::W8A8);
    EXPECT_EQ(w8.weightBytes(1000), 1000u);
    EXPECT_EQ(w8.actBytes(1000), 1000u);
    EXPECT_EQ(w8.elemsPerPage(16384), 16384u);

    QuantSpec w4 = QuantSpec::of(QuantMode::W4A16);
    EXPECT_EQ(w4.weightBytes(1000), 500u);
    EXPECT_EQ(w4.actBytes(1000), 2000u);
    EXPECT_EQ(w4.elemsPerPage(16384), 32768u);
}

TEST(Quant, RoundsUpOddBitCounts)
{
    QuantSpec w4 = QuantSpec::of(QuantMode::W4A16);
    EXPECT_EQ(w4.weightBytes(3), 2u); // 12 bits -> 2 bytes
}

// --- op graph ---------------------------------------------------------------

TEST(OpGraph, WeightElementsMatchClosedForm)
{
    ModelConfig m = opt6_7b();
    QuantSpec q = QuantSpec::of(QuantMode::W8A8);
    DecodeGraph g = buildDecodeGraph(m, 512, q, m.n_layers);
    EXPECT_EQ(g.totalWeightElems(), m.decodeWeightParams());
}

TEST(OpGraph, WeightElementsMatchClosedFormGated)
{
    ModelConfig m = llama2_70b();
    QuantSpec q = QuantSpec::of(QuantMode::W8A8);
    DecodeGraph g = buildDecodeGraph(m, 1000, q, m.n_layers);
    EXPECT_EQ(g.totalWeightElems(), m.decodeWeightParams());
}

TEST(OpGraph, KvLoadBytesMatchCache)
{
    ModelConfig m = opt6_7b();
    QuantSpec q = QuantSpec::of(QuantMode::W8A8);
    const std::uint32_t seq = 512;
    DecodeGraph g = buildDecodeGraph(m, seq, q, m.n_layers);
    // Score + context each stream half the KV cache per layer.
    EXPECT_EQ(g.totalKvLoadBytes(), m.kvCacheBytes(seq, 1));
}

TEST(OpGraph, ActivationWidthScalesKvBytes)
{
    ModelConfig m = opt6_7b();
    DecodeGraph g8 = buildDecodeGraph(m, 256,
                                      QuantSpec::of(QuantMode::W8A8),
                                      m.n_layers);
    DecodeGraph g16 = buildDecodeGraph(m, 256,
                                       QuantSpec::of(QuantMode::W4A16),
                                       m.n_layers);
    EXPECT_EQ(g16.totalKvLoadBytes(), 2 * g8.totalKvLoadBytes());
}

TEST(OpGraph, GatedFfnHasThreeMatrices)
{
    ModelConfig m = llama2_7b();
    QuantSpec q = QuantSpec::of(QuantMode::W8A8);
    DecodeGraph g = buildDecodeGraph(m, 16, q, 1);
    int ffn_gemvs = 0;
    for (const auto &op : g.ops)
        if (op.kind == OpKind::GemvWeight &&
            (op.name == "w_gate" || op.name == "w_up" ||
             op.name == "w_down"))
            ++ffn_gemvs;
    EXPECT_EQ(ffn_gemvs, 3);
}

TEST(OpGraph, DepsAreAcyclicAndBackward)
{
    ModelConfig m = llama2_7b();
    QuantSpec q = QuantSpec::of(QuantMode::W8A8);
    DecodeGraph g = buildDecodeGraph(m, 64, q, 3);
    for (std::uint32_t i = 0; i < g.ops.size(); ++i)
        for (std::uint32_t d : g.ops[i].deps)
            EXPECT_LT(d, i);
}

TEST(OpGraph, EndsWithLmHead)
{
    ModelConfig m = opt13b();
    QuantSpec q = QuantSpec::of(QuantMode::W8A8);
    DecodeGraph g = buildDecodeGraph(m, 64, q, 4);
    const Op &last = g.ops[g.lastOp()];
    EXPECT_EQ(last.kind, OpKind::GemvWeight);
    EXPECT_EQ(last.rows, m.vocab);
    EXPECT_EQ(last.cols, m.d_model);
}

TEST(OpGraph, SampledGraphScalesLinearly)
{
    ModelConfig m = opt6_7b();
    QuantSpec q = QuantSpec::of(QuantMode::W8A8);
    DecodeGraph g2 = buildDecodeGraph(m, 64, q, 2);
    DecodeGraph g4 = buildDecodeGraph(m, 64, q, 4);
    const std::uint64_t head = std::uint64_t(m.vocab) * m.d_model;
    EXPECT_EQ((g4.totalWeightElems() - head) / 4,
              (g2.totalWeightElems() - head) / 2);
}

// Rebinding a decode graph to a new context length must reproduce a
// fresh build field-for-field (the batch engine reinstances a
// request's graph per token this way).
TEST(OpGraph, RebindSeqMatchesFreshBuild)
{
    for (const ModelConfig &m : {opt6_7b(), llama2_70b()}) {
        const QuantSpec q = QuantSpec::of(QuantMode::W8A8);
        DecodeGraph g = buildDecodeGraph(m, 512, q, 4);
        rebindDecodeGraphSeq(g, m, q, 777);
        const DecodeGraph fresh = buildDecodeGraph(m, 777, q, 4);
        ASSERT_EQ(g.ops.size(), fresh.ops.size());
        for (std::size_t i = 0; i < g.ops.size(); ++i) {
            const Op &a = g.ops[i];
            const Op &b = fresh.ops[i];
            EXPECT_EQ(a.kind, b.kind) << i;
            EXPECT_EQ(a.name, b.name) << i;
            EXPECT_EQ(a.rows, b.rows) << i;
            EXPECT_EQ(a.cols, b.cols) << i;
            EXPECT_EQ(a.kv_bytes, b.kv_bytes) << i;
            EXPECT_EQ(a.flops, b.flops) << i;
            EXPECT_EQ(a.sfu_elems, b.sfu_elems) << i;
            EXPECT_EQ(a.npu_compute_scale, b.npu_compute_scale) << i;
            EXPECT_EQ(a.deps, b.deps) << i;
        }
    }
}

// One chunk covering the whole prompt with no prior KV must be the
// prefill graph, op for op — the identity behind the scheduler's
// "one-chunk prefill reproduces CambriconEngine::prefill()" check.
TEST(OpGraph, OneChunkPrefillMatchesWholePrompt)
{
    for (const ModelConfig &m : {opt6_7b(), llama2_70b()}) {
        const QuantSpec q = QuantSpec::of(QuantMode::W8A8);
        const DecodeGraph whole = buildPrefillGraph(m, 640, q, 4);
        const DecodeGraph chunk =
            buildPrefillChunkGraph(m, 640, /*kv_base=*/0, q, 4,
                                   /*last_chunk=*/true);
        ASSERT_EQ(whole.ops.size(), chunk.ops.size());
        for (std::size_t i = 0; i < whole.ops.size(); ++i) {
            const Op &a = whole.ops[i];
            const Op &b = chunk.ops[i];
            EXPECT_EQ(a.kind, b.kind) << i;
            EXPECT_EQ(a.name, b.name) << i;
            EXPECT_EQ(a.rows, b.rows) << i;
            EXPECT_EQ(a.cols, b.cols) << i;
            EXPECT_EQ(a.kv_bytes, b.kv_bytes) << i;
            EXPECT_EQ(a.flops, b.flops) << i;
            EXPECT_EQ(a.sfu_elems, b.sfu_elems) << i;
            EXPECT_EQ(a.npu_compute_scale, b.npu_compute_scale) << i;
            EXPECT_EQ(a.deps, b.deps) << i;
        }
    }
}

// Mid-prompt chunks deposit KV but emit no token: no head projection,
// attention spanning the accumulated context, KV append sized by the
// chunk alone.
TEST(OpGraph, MidChunkWritesKvWithoutHead)
{
    const ModelConfig m = opt6_7b();
    const QuantSpec q = QuantSpec::of(QuantMode::W8A8);
    const std::uint32_t chunk = 256, kv_base = 512;
    const DecodeGraph g =
        buildPrefillChunkGraph(m, chunk, kv_base, q, 3,
                               /*last_chunk=*/false);

    for (const Op &op : g.ops)
        EXPECT_NE(op.name, "lm_head");
    const std::uint32_t act_b = q.act_bits / 8;
    const std::uint64_t kvp = m.kvProjDim();
    for (const Op &op : g.ops) {
        if (op.kind == OpKind::KvAppend)
            EXPECT_EQ(op.kv_bytes,
                      std::uint64_t(chunk) * 2ull * kvp * act_b);
        if (op.kind == OpKind::KvLoadCompute)
            EXPECT_EQ(op.kv_bytes,
                      std::uint64_t(kv_base + chunk) * kvp * act_b);
    }
    // Last chunk at the same base gains exactly final_norm + lm_head.
    const DecodeGraph last =
        buildPrefillChunkGraph(m, chunk, kv_base, q, 3,
                               /*last_chunk=*/true);
    EXPECT_EQ(last.ops.size(), g.ops.size() + 2);
    EXPECT_EQ(last.ops[last.lastOp()].name, "lm_head");
}

// --- functional kernels -------------------------------------------------------

TEST(Kernels, GemvAgainstManualReference)
{
    QTensor w(2, 3, 0.5f);
    // Row 0: [1, 2, 3]; row 1: [-1, 0, 4].
    w.data = {1, 2, 3, -1, 0, 4};
    std::vector<float> x = {1.0f, 2.0f, -1.0f};
    std::vector<float> y(2);
    gemv(w, x, y);
    EXPECT_FLOAT_EQ(y[0], 0.5f * (1 + 4 - 3));
    EXPECT_FLOAT_EQ(y[1], 0.5f * (-1 + 0 - 4));
}

// The register-blocked gemv must agree with the scalar reference to
// the last bit: each row accumulates in strict column order, so no
// float reassociation is allowed. Shapes cover the 8-row blocks, the
// row remainder (rows % 8 != 0), and the odd-column tail.
TEST(Kernels, BlockedGemvBitExactVsScalarReference)
{
    Rng rng(2024);
    const std::pair<std::uint32_t, std::uint32_t> shapes[] = {
        {1, 1},   {7, 3},    {8, 2},    {9, 17},
        {16, 64}, {61, 127}, {128, 96}, {200, 333},
    };
    for (const auto &[rows, cols] : shapes) {
        QTensor w(rows, cols, 0.0375f);
        for (auto &v : w.data)
            v = std::int8_t(std::int32_t(rng.below(255)) - 127);
        std::vector<float> x(cols);
        for (auto &v : x)
            v = float(std::int32_t(rng.below(2001)) - 1000) / 250.0f;
        std::vector<float> blocked(rows), scalar(rows);
        gemv(w, x, blocked);
        gemvScalar(w, x, scalar);
        for (std::uint32_t r = 0; r < rows; ++r)
            ASSERT_EQ(blocked[r], scalar[r])
                << rows << "x" << cols << " row " << r;
    }
}

// The fast GeMV (AVX2 when available, else the blocked kernel)
// reassociates the reduction, so it is held to a relative tolerance
// against a double-precision reference rather than bit-exactness.
TEST(Kernels, FastGemvMatchesDoubleReferenceWithinTolerance)
{
    Rng rng(777);
    const std::pair<std::uint32_t, std::uint32_t> shapes[] = {
        {1, 1},   {3, 7},    {4, 16},   {5, 33},
        {8, 64},  {61, 127}, {128, 96}, {200, 333},
    };
    for (const auto &[rows, cols] : shapes) {
        QTensor w(rows, cols, 0.0375f);
        for (auto &v : w.data)
            v = std::int8_t(std::int32_t(rng.below(255)) - 127);
        std::vector<float> x(cols);
        for (auto &v : x)
            v = float(std::int32_t(rng.below(2001)) - 1000) / 250.0f;
        std::vector<float> fast(rows);
        gemvFast(w, x, fast);
        for (std::uint32_t r = 0; r < rows; ++r) {
            double ref = 0.0;
            double mag = 0.0;
            for (std::uint32_t c = 0; c < cols; ++c) {
                const double t =
                    double(w.data[std::size_t(r) * cols + c]) *
                    double(x[c]);
                ref += t;
                mag += std::abs(t);
            }
            ref *= double(w.scale);
            mag *= double(w.scale);
            const double tol = 1e-5 * std::max(1.0, mag);
            EXPECT_NEAR(double(fast[r]), ref, tol)
                << rows << "x" << cols << " row " << r;
        }
    }
}

// Whatever path dispatch picks, the exact kernels stay the reference:
// fast output must be element-wise close to the bit-exact blocked one.
TEST(Kernels, FastGemvCloseToExactKernels)
{
    Rng rng(31337);
    QTensor w(96, 257, 0.02f);
    for (auto &v : w.data)
        v = std::int8_t(std::int32_t(rng.below(255)) - 127);
    std::vector<float> x(257);
    for (auto &v : x)
        v = float(std::int32_t(rng.below(2001)) - 1000) / 500.0f;
    std::vector<float> fast(96), exact(96);
    gemvFast(w, x, fast);
    gemv(w, x, exact);
    for (std::uint32_t r = 0; r < 96; ++r)
        EXPECT_NEAR(fast[r], exact[r],
                    1e-4f * std::max(1.0f, std::abs(exact[r])));
}

// CAMLLM_NO_SIMD=1 must force gemvFast onto the scalar reference path
// at runtime: dispatch reports no AVX2 and the output is bit-equal to
// gemvScalar (the fallback IS the reference, not merely close to it).
TEST(Kernels, NoSimdEnvForcesScalarFallback)
{
    Rng rng(4242);
    QTensor w(77, 129, 0.031f);
    for (auto &v : w.data)
        v = std::int8_t(std::int32_t(rng.below(255)) - 127);
    std::vector<float> x(129);
    for (auto &v : x)
        v = float(std::int32_t(rng.below(2001)) - 1000) / 333.0f;

    const char *saved = std::getenv("CAMLLM_NO_SIMD");
    const std::string restore = saved ? saved : "";
    ASSERT_EQ(setenv("CAMLLM_NO_SIMD", "1", 1), 0);
    EXPECT_TRUE(simdDisabledByEnv());
    EXPECT_FALSE(gemvFastUsesAvx2());

    std::vector<float> fast(77), scalar(77);
    gemvFast(w, x, fast);
    gemvScalar(w, x, scalar);
    for (std::uint32_t r = 0; r < 77; ++r)
        ASSERT_EQ(fast[r], scalar[r]) << "row " << r;

    // CAMLLM_NO_SIMD=0 (and empty) mean "not disabled".
    ASSERT_EQ(setenv("CAMLLM_NO_SIMD", "0", 1), 0);
    EXPECT_FALSE(simdDisabledByEnv());

    if (saved)
        ASSERT_EQ(setenv("CAMLLM_NO_SIMD", restore.c_str(), 1), 0);
    else
        ASSERT_EQ(unsetenv("CAMLLM_NO_SIMD"), 0);
}

TEST(Kernels, LayerNormZeroMeanUnitVar)
{
    std::vector<float> x = {1, 2, 3, 4, 5, 6, 7, 8};
    layerNorm(x);
    float mean = 0, var = 0;
    for (float v : x)
        mean += v;
    mean /= x.size();
    for (float v : x)
        var += (v - mean) * (v - mean);
    var /= x.size();
    EXPECT_NEAR(mean, 0.0f, 1e-5f);
    EXPECT_NEAR(var, 1.0f, 1e-3f);
}

TEST(Kernels, SoftmaxSumsToOne)
{
    std::vector<float> x = {0.5f, -1.0f, 3.0f, 2.0f};
    softmaxInPlace(x);
    float sum = 0;
    for (float v : x)
        sum += v;
    EXPECT_NEAR(sum, 1.0f, 1e-6f);
    EXPECT_GT(x[2], x[3]);
    EXPECT_GT(x[3], x[0]);
}

TEST(Kernels, SoftmaxStableUnderLargeInputs)
{
    std::vector<float> x = {1000.0f, 1001.0f};
    softmaxInPlace(x);
    EXPECT_FALSE(std::isnan(x[0]));
    EXPECT_NEAR(x[0] + x[1], 1.0f, 1e-6f);
}

TEST(Kernels, GeluFixedPoints)
{
    std::vector<float> x = {0.0f, 10.0f, -10.0f};
    geluInPlace(x);
    EXPECT_FLOAT_EQ(x[0], 0.0f);
    EXPECT_NEAR(x[1], 10.0f, 1e-3f);
    EXPECT_NEAR(x[2], 0.0f, 1e-3f);
}

TEST(Kernels, SiluFixedPoints)
{
    std::vector<float> x = {0.0f, 10.0f};
    siluInPlace(x);
    EXPECT_FLOAT_EQ(x[0], 0.0f);
    EXPECT_NEAR(x[1], 10.0f, 1e-2f);
}

TEST(Kernels, ArgmaxFirstOnTies)
{
    std::vector<float> x = {1.0f, 3.0f, 3.0f, 2.0f};
    EXPECT_EQ(argmax(x), 1u);
}

// --- synthetic transformer ----------------------------------------------------

TEST(TinyTransformer, DeterministicForward)
{
    TinyConfig cfg;
    TinyTransformer a(cfg, 77), b(cfg, 77);
    std::vector<std::uint16_t> toks = {1, 2, 3, 4};
    auto la = a.forward(toks);
    auto lb = b.forward(toks);
    EXPECT_EQ(la, lb);
}

TEST(TinyTransformer, SeedChangesWeights)
{
    TinyConfig cfg;
    TinyTransformer a(cfg, 1), b(cfg, 2);
    EXPECT_NE(a.packWeights(), b.packWeights());
}

TEST(TinyTransformer, PackUnpackRoundTrip)
{
    TinyConfig cfg;
    TinyTransformer m(cfg, 5);
    auto blob = m.packWeights();
    EXPECT_EQ(blob.size(), m.weightBytes());

    TinyTransformer other(cfg, 99);
    other.unpackWeights(blob);
    EXPECT_EQ(other.packWeights(), blob);

    std::vector<std::uint16_t> toks = {10, 20, 30};
    EXPECT_EQ(m.forward(toks), other.forward(toks));
}

TEST(TinyTransformer, WeightDistributionHasOutliers)
{
    TinyConfig cfg;
    cfg.outlier_frac = 0.005;
    TinyTransformer m(cfg, 3);
    auto blob = m.packWeights();
    std::uint64_t big = 0;
    for (std::int8_t v : blob)
        if (v >= 90 || v <= -90)
            ++big;
    const double frac = double(big) / double(blob.size());
    // Planted outliers plus the Gaussian tail: well below 1.5%, well
    // above 0.05%.
    EXPECT_GT(frac, 0.0005);
    EXPECT_LT(frac, 0.015);
}

TEST(TinyTransformer, LogitsAreFiniteAndVaried)
{
    TinyConfig cfg;
    TinyTransformer m(cfg, 7);
    std::vector<std::uint16_t> toks = {5, 9, 100, 200, 3};
    auto logits = m.forward(toks);
    ASSERT_EQ(logits.size(), cfg.vocab);
    std::set<float> distinct;
    for (float v : logits) {
        ASSERT_FALSE(std::isnan(v));
        ASSERT_FALSE(std::isinf(v));
        distinct.insert(v);
    }
    EXPECT_GT(distinct.size(), cfg.vocab / 2);
}

TEST(TinyTransformer, PromptChangesPrediction)
{
    TinyConfig cfg;
    TinyTransformer m(cfg, 7);
    auto l1 = m.forward(std::vector<std::uint16_t>{1, 2, 3});
    auto l2 = m.forward(std::vector<std::uint16_t>{4, 5, 6});
    EXPECT_NE(l1, l2);
}

// --- evaluation harness --------------------------------------------------------

TEST(Eval, CleanAccuracyNearTarget)
{
    TinyConfig cfg;
    TinyTransformer m(cfg, 11);
    EvalDataset ds = makeDataset(m, "synthetic", 300, 4, 6, 0.6, 21);
    const double acc = evaluate(m, ds);
    EXPECT_NEAR(acc, 0.6, 0.07);
}

TEST(Eval, PerfectAgreementWhenAccuracyOne)
{
    TinyConfig cfg;
    TinyTransformer m(cfg, 13);
    EvalDataset ds = makeDataset(m, "perfect", 50, 4, 6, 1.0, 22);
    EXPECT_DOUBLE_EQ(evaluate(m, ds), 1.0);
}

TEST(Eval, RandomModelScoresNearChance)
{
    TinyConfig cfg;
    TinyTransformer clean(cfg, 15);
    TinyTransformer other(cfg, 16); // unrelated weights
    EvalDataset ds = makeDataset(clean, "chance", 400, 4, 6, 1.0, 23);
    const double acc = evaluate(other, ds);
    EXPECT_NEAR(acc, 0.25, 0.08);
}

TEST(Eval, BinaryDatasetChanceIsHalf)
{
    TinyConfig cfg;
    TinyTransformer clean(cfg, 17);
    TinyTransformer other(cfg, 18);
    EvalDataset ds = makeDataset(clean, "wino", 400, 2, 6, 1.0, 24);
    EXPECT_NEAR(evaluate(other, ds), 0.5, 0.08);
    EXPECT_DOUBLE_EQ(ds.chanceAccuracy(), 0.5);
}

} // namespace
} // namespace camllm::llm
