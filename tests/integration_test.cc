/**
 * @file
 * Cross-module integration tests: the paper's headline claims, the
 * engine-vs-baseline orderings, and the full ECC-through-inference
 * accuracy path.
 */

#include <gtest/gtest.h>

#include "baselines/flexgen.h"
#include "baselines/mlc_llm.h"
#include "core/energy.h"
#include "core/engine.h"
#include "core/presets.h"
#include "ecc/page_store.h"
#include "llm/eval.h"
#include "llm/model_config.h"
#include "llm/tiny_transformer.h"

namespace camllm {
namespace {

using core::CamConfig;
using core::CambriconEngine;
using core::TokenStats;

TEST(Headline, SeventyBAboveThreeTokensPerSecond)
{
    // The paper's headline: 70B LLM at ~3.4 token/s on Cam-LLM-L.
    CamConfig cfg = core::presetL();
    CambriconEngine e(cfg, llm::llama2_70b());
    TokenStats s = e.decodeToken();
    EXPECT_GT(s.tokens_per_s, 2.0);
    EXPECT_LT(s.tokens_per_s, 6.0);
}

TEST(Headline, SevenBNearPaperSpeedOnL)
{
    // Paper: 34-36 token/s for 7B-class models on Cam-LLM-L.
    CamConfig cfg = core::presetL();
    CambriconEngine e(cfg, llm::llama2_7b());
    TokenStats s = e.decodeToken();
    EXPECT_GT(s.tokens_per_s, 25.0);
    EXPECT_LT(s.tokens_per_s, 55.0);
}

TEST(Headline, SpeedupOverFlexgenSsdExceeds8x)
{
    // Paper: 8.9x (S) to 44.8x (L) over FlexGen-SSD on OPT-6.7B.
    llm::ModelConfig model = llm::opt6_7b();
    auto quant = llm::QuantSpec::of(llm::QuantMode::W8A8);
    baselines::FlexGenConfig fg;
    const double base =
        baselines::flexgenDecode(model, quant, fg).tokens_per_s;

    const double s =
        CambriconEngine(core::presetS(), model).decodeToken()
            .tokens_per_s;
    const double l =
        CambriconEngine(core::presetL(), model).decodeToken()
            .tokens_per_s;
    EXPECT_GT(s / base, 3.0);
    EXPECT_GT(l / base, 20.0);
}

TEST(Headline, CambriconRunsModelsMlcCannot)
{
    auto mlc = baselines::mlcLlmDecode(llm::llama2_70b());
    EXPECT_TRUE(mlc.oom);
    CambriconEngine e(core::presetS(), llm::llama2_70b());
    EXPECT_GT(e.decodeToken().tokens_per_s, 0.1);
}

TEST(Headline, TransferReductionVsFlexgenSsd)
{
    // Fig 16a: ~10x less data movement than FlexGen-SSD.
    llm::ModelConfig model = llm::opt6_7b();
    auto quant = llm::QuantSpec::of(llm::QuantMode::W8A8);
    baselines::FlexGenConfig fg;
    auto base = baselines::flexgenDecode(model, quant, fg);

    TokenStats cam =
        CambriconEngine(core::presetS(), model).decodeToken();
    const double ratio =
        double(base.transfer_bytes) / double(cam.transferBytes());
    EXPECT_GT(ratio, 5.0);
    EXPECT_LT(ratio, 20.0);
}

TEST(Headline, EnergyBelowFlexgenSsd)
{
    // Fig 16b: Cambricon-LLM spends ~2/3 the energy per token.
    llm::ModelConfig model = llm::opt6_7b();
    auto quant = llm::QuantSpec::of(llm::QuantMode::W8A8);
    baselines::FlexGenConfig fg;
    auto base = baselines::flexgenDecode(model, quant, fg);
    TokenStats cam =
        CambriconEngine(core::presetS(), model).decodeToken();
    const double cam_j = core::computeEnergy(cam).totalJ();
    EXPECT_LT(cam_j, base.energy_j);
    EXPECT_GT(cam_j, base.energy_j * 0.35);
}

TEST(Scalability, SpeedGrowsWithChannels)
{
    // Fig 15b: near-linear scaling with channel count.
    llm::ModelConfig model = llm::opt6_7b();
    double prev = 0.0;
    for (std::uint32_t ch : {1u, 4u, 16u}) {
        CamConfig cfg = core::presetCustom(ch, 4);
        double v = CambriconEngine(cfg, model).decodeToken().tokens_per_s;
        EXPECT_GT(v, prev);
        prev = v;
    }
}

TEST(Scalability, ChipScalingSaturates)
{
    // Fig 15a: speed grows with chips per channel then flattens once
    // tiles can no longer engage every core.
    llm::ModelConfig model = llm::opt6_7b();
    auto speed = [&](std::uint32_t chips) {
        CamConfig cfg = core::presetCustom(8, chips);
        return CambriconEngine(cfg, model).decodeToken().tokens_per_s;
    };
    const double s2 = speed(2), s8 = speed(8), s32 = speed(32),
                 s64 = speed(64);
    EXPECT_GT(s8, s2 * 1.5);
    // Early scaling is strong; late scaling collapses.
    EXPECT_LT(s64 / s32, (s8 / s2));
}

// --- the full bit-exact ECC accuracy path -----------------------------------

class EccAccuracy : public ::testing::Test
{
  protected:
    static constexpr std::uint64_t kSeed = 424242;

    double
    accuracyAt(double ber, bool ecc_on)
    {
        llm::TinyConfig tcfg;
        llm::TinyTransformer clean(tcfg, kSeed);
        llm::EvalDataset ds =
            llm::makeDataset(clean, "hellaswag-proxy", 60, 4, 6, 0.95,
                             kSeed + 1);

        ecc::PageStoreParams params;
        params.ecc_enabled = ecc_on;
        ecc::PageStore store(params);
        store.load(clean.packWeights());
        store.injectErrors(ber, kSeed + 2);

        llm::TinyTransformer corrupted(tcfg, kSeed);
        corrupted.unpackWeights(store.readBack());
        return llm::evaluate(corrupted, ds);
    }
};

TEST_F(EccAccuracy, CleanStorePreservesAccuracy)
{
    EXPECT_NEAR(accuracyAt(0.0, true), 0.95, 0.06);
}

TEST_F(EccAccuracy, WithoutEccHighBerDestroysAccuracy)
{
    // Fig 3b: at BER 1e-2 the model output is chance-level.
    const double acc = accuracyAt(1e-2, false);
    EXPECT_LT(acc, 0.55);
}

TEST_F(EccAccuracy, EccExtendsUsableBerRange)
{
    // Fig 10: at 2e-4 the protected model keeps most accuracy and
    // must beat the unprotected one at high error rates.
    const double with_ecc = accuracyAt(2e-3, true);
    const double without = accuracyAt(2e-3, false);
    EXPECT_GE(with_ecc, without);
}

} // namespace
} // namespace camllm
