/**
 * @file
 * FleetSweep tests: deterministic per-replica seeding, bit-identical
 * results across worker-thread counts, index-ordered merge math, and
 * an end-to-end fleet of real serve() replicas. Labeled "serving" in
 * CMake (ctest -L serving).
 */

#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <vector>

#include "common/rng.h"
#include "core/arrivals.h"
#include "core/fleet.h"
#include "core/presets.h"
#include "core/scheduler.h"
#include "llm/model_config.h"

namespace camllm {
namespace {

using core::FleetStats;
using core::FleetSweep;
using core::SchedOptions;
using core::ServeRequestStats;
using core::ServeStats;

TEST(FleetSeed, DistinctAndStable)
{
    std::set<std::uint64_t> seen;
    for (std::size_t i = 0; i < 256; ++i)
        seen.insert(FleetSweep::replicaSeed(42, i));
    EXPECT_EQ(seen.size(), 256u); // no collisions across a big fleet
    // Pure function of (base, index): same in, same out; base moves
    // every replica's stream.
    EXPECT_EQ(FleetSweep::replicaSeed(42, 7),
              FleetSweep::replicaSeed(42, 7));
    EXPECT_NE(FleetSweep::replicaSeed(42, 7),
              FleetSweep::replicaSeed(43, 7));
}

/** Synthetic replica: cheap, fully determined by (replica, seed). */
ServeStats
syntheticReplica(std::size_t replica, std::uint64_t seed)
{
    Rng rng(seed);
    ServeStats s;
    s.total_tokens = 100 + rng.below(100);
    s.sim_events = 1000 + rng.below(1000);
    s.sim_makespan = Tick(10000 + rng.below(10000));
    s.admitted = 3;
    s.completed = 3;
    s.goodput_tokens_per_s = double(1 + replica);
    s.finite_run_tokens_per_s = 2.0 * double(1 + replica);
    for (int r = 0; r < 3; ++r) {
        ServeRequestStats req;
        req.tokens_emitted = 1 + std::uint32_t(r);
        req.ttft_ms = double(rng.below(1000)) / 10.0;
        s.requests.push_back(req);
    }
    return s;
}

TEST(FleetSweep, BitIdenticalAcrossThreadCounts)
{
    const auto run = [](unsigned threads) {
        return FleetSweep(threads).run(8, 42, syntheticReplica);
    };
    const FleetStats a = run(1);
    const FleetStats b = run(4);
    const FleetStats c = run(13); // more workers than replicas
    ASSERT_EQ(a.replicas, 8u);
    for (const FleetStats *f : {&b, &c}) {
        EXPECT_EQ(f->replicas, a.replicas);
        EXPECT_EQ(f->requests, a.requests);
        EXPECT_EQ(f->total_tokens, a.total_tokens);
        EXPECT_EQ(f->sim_events, a.sim_events);
        EXPECT_EQ(f->sim_makespan_max, a.sim_makespan_max);
        EXPECT_EQ(f->goodput_tokens_per_s, a.goodput_tokens_per_s);
        EXPECT_EQ(f->ttft.p99_ms, a.ttft.p99_ms);
        EXPECT_EQ(f->ttft.mean_ms, a.ttft.mean_ms);
        for (std::size_t i = 0; i < a.replicas; ++i) {
            EXPECT_EQ(f->replica_stats[i].sim_events,
                      a.replica_stats[i].sim_events);
            EXPECT_EQ(f->replica_stats[i].total_tokens,
                      a.replica_stats[i].total_tokens);
        }
    }
}

// A replica's result depends only on (index, base seed) — growing the
// fleet must not perturb the replicas that were already there.
TEST(FleetSweep, ReplicaPrefixIndependentOfFleetSize)
{
    const FleetStats small =
        FleetSweep(4).run(2, 42, syntheticReplica);
    const FleetStats big = FleetSweep(4).run(6, 42, syntheticReplica);
    for (std::size_t i = 0; i < 2; ++i) {
        EXPECT_EQ(small.replica_stats[i].sim_events,
                  big.replica_stats[i].sim_events);
        EXPECT_EQ(small.replica_stats[i].total_tokens,
                  big.replica_stats[i].total_tokens);
        EXPECT_EQ(small.replica_stats[i].sim_makespan,
                  big.replica_stats[i].sim_makespan);
    }
}

TEST(FleetSweep, MergeMathIsIndexOrderedSums)
{
    std::vector<ServeStats> reps(2);
    reps[0].total_tokens = 10;
    reps[0].sim_events = 100;
    reps[0].sim_makespan = 500;
    reps[0].admitted = 1;
    reps[0].completed = 1;
    reps[0].goodput_tokens_per_s = 1.5;
    reps[1].total_tokens = 20;
    reps[1].sim_events = 300;
    reps[1].sim_makespan = 400;
    reps[1].admitted = 2;
    reps[1].completed = 1;
    reps[1].goodput_tokens_per_s = 2.5;
    ServeRequestStats r0;
    r0.tokens_emitted = 1;
    r0.ttft_ms = 4.0;
    reps[0].requests.push_back(r0);
    ServeRequestStats r1;
    r1.tokens_emitted = 2;
    r1.ttft_ms = 8.0;
    reps[1].requests.push_back(r1);
    ServeRequestStats shed; // never emitted: excluded from TTFT
    shed.tokens_emitted = 0;
    shed.ttft_ms = 0.0;
    reps[1].requests.push_back(shed);

    const FleetStats m = FleetSweep::merge(reps);
    EXPECT_EQ(m.replicas, 2u);
    EXPECT_EQ(m.requests, 3u);
    EXPECT_EQ(m.total_tokens, 30u);
    EXPECT_EQ(m.sim_events, 400u);
    EXPECT_EQ(m.sim_makespan_max, 500u);
    EXPECT_EQ(m.admitted, 3u);
    EXPECT_EQ(m.completed, 2u);
    EXPECT_DOUBLE_EQ(m.goodput_tokens_per_s, 4.0);
    EXPECT_EQ(m.ttft.n, 2u); // pooled samples, shed request excluded
    EXPECT_DOUBLE_EQ(m.ttft.mean_ms, 6.0);
    EXPECT_DOUBLE_EQ(m.ttft.max_ms, 8.0);
    EXPECT_DOUBLE_EQ(m.ttft.p50_ms, 4.0); // nearest rank of {4, 8}
}

// End to end: a fleet of real serve() replicas, each replaying its
// own seeded Poisson trace, merged bit-identically regardless of the
// worker pool size.
TEST(FleetSweep, RealServeFleetIsDeterministic)
{
    const core::Scheduler sched(core::presetS(), llm::opt6_7b());
    SchedOptions opt;
    opt.max_batch = 2;
    const auto replica = [&](std::size_t, std::uint64_t seed) {
        const core::ArrivalTrace trace = core::ArrivalTrace::poisson(
            200.0, 3, seed, {{96, 2}, {128, 2}});
        return sched.serve(trace, opt);
    };
    const FleetStats a = FleetSweep(1).run(3, 7, replica);
    const FleetStats b = FleetSweep(3).run(3, 7, replica);

    EXPECT_EQ(a.replicas, 3u);
    EXPECT_EQ(a.requests, 9u);
    EXPECT_GT(a.sim_events, 0u);
    EXPECT_GT(a.total_tokens, 0u);
    // Replicas saw different seeds, so their workloads differ...
    EXPECT_NE(a.replica_stats[0].sim_makespan,
              a.replica_stats[1].sim_makespan);
    // ...but the merged fleet result is independent of thread count.
    EXPECT_EQ(b.requests, a.requests);
    EXPECT_EQ(b.total_tokens, a.total_tokens);
    EXPECT_EQ(b.sim_events, a.sim_events);
    EXPECT_EQ(b.sim_makespan_max, a.sim_makespan_max);
    EXPECT_EQ(b.ttft.p99_ms, a.ttft.p99_ms);
    EXPECT_EQ(b.goodput_tokens_per_s, a.goodput_tokens_per_s);
    // Deterministic reductions sum across replicas.
    std::uint64_t events = 0;
    for (const ServeStats &s : a.replica_stats)
        events += s.sim_events;
    EXPECT_EQ(a.sim_events, events);
}

} // namespace
} // namespace camllm
