/**
 * @file
 * Paged KV-cache serving invariants: allocator correctness (alloc /
 * free / refcount / double-free / leak audit), golden bit-exactness
 * of the unbounded pool and the one-giant-block block table against
 * contiguous KV, capacity-driven preemption with recompute, budget
 * monotonicity, and determinism across sweep-thread settings.
 */

#include <gtest/gtest.h>

#include <vector>

#include "core/kv_pool.h"
#include "core/presets.h"
#include "core/scheduler.h"
#include "core/sweep.h"
#include "llm/model_config.h"
#include "llm/opgraph.h"
#include "llm/quant.h"

namespace camllm::core {
namespace {

// One decode token's full-depth KV footprint for a model at 8-bit
// activations (matches the scheduler's pool sizing).
std::uint64_t
tokenKvBytes(const llm::ModelConfig &m)
{
    return std::uint64_t(m.kvDim()) * m.n_layers;
}

TEST(KvPool, BlockMathGrowthAndHighWater)
{
    KvPool pool(/*budget=*/10 * 64, /*block_tokens=*/4,
                /*block_bytes=*/64);
    EXPECT_TRUE(pool.bounded());
    EXPECT_EQ(pool.totalBlocks(), 10u);
    EXPECT_EQ(pool.blocksForTokens(0), 0u);
    EXPECT_EQ(pool.blocksForTokens(1), 1u);
    EXPECT_EQ(pool.blocksForTokens(4), 1u);
    EXPECT_EQ(pool.blocksForTokens(5), 2u);

    KvBlockTable t;
    EXPECT_TRUE(pool.tryGrow(t, 6)); // 2 blocks
    EXPECT_EQ(t.blocks.size(), 2u);
    EXPECT_EQ(pool.blocksInUse(), 2u);
    EXPECT_TRUE(pool.tryGrow(t, 6)); // no-op: already covered
    EXPECT_EQ(pool.blocksInUse(), 2u);
    EXPECT_TRUE(pool.tryGrow(t, 17)); // 5 blocks
    EXPECT_EQ(t.blocks.size(), 5u);
    EXPECT_EQ(pool.freeBlocks(), 5u);
    EXPECT_EQ(pool.highWaterBlocks(), 5u);

    pool.release(t);
    EXPECT_TRUE(t.empty());
    EXPECT_EQ(pool.blocksInUse(), 0u);
    EXPECT_EQ(pool.highWaterBlocks(), 5u); // sticky
    EXPECT_EQ(pool.allocCount(), pool.freeCount());
    EXPECT_EQ(pool.leakedBlocks(), 0u);
}

TEST(KvPool, BoundedRefusesWhenDryAtomically)
{
    KvPool pool(4 * 64, 4, 64); // 4 blocks
    KvBlockTable a, b;
    EXPECT_TRUE(pool.tryGrow(a, 12)); // 3 blocks
    EXPECT_FALSE(pool.canGrow(b, 8)); // needs 2, 1 free
    EXPECT_FALSE(pool.tryGrow(b, 8));
    EXPECT_TRUE(b.empty()); // refusal allocates nothing
    EXPECT_EQ(pool.blocksInUse(), 3u);
    EXPECT_TRUE(pool.tryGrow(b, 4)); // the last block fits
    EXPECT_FALSE(pool.tryGrow(a, 13));
    pool.release(b);
    EXPECT_TRUE(pool.tryGrow(a, 13));
    pool.release(a);
    EXPECT_EQ(pool.leakedBlocks(), 0u);
}

TEST(KvPool, UnboundedNeverRefuses)
{
    KvPool pool(0, 8, 64);
    EXPECT_FALSE(pool.bounded());
    KvBlockTable t;
    EXPECT_TRUE(pool.tryGrow(t, 100000));
    EXPECT_EQ(t.blocks.size(), 12500u);
    EXPECT_EQ(pool.highWaterBlocks(), 12500u);
    pool.release(t);
    EXPECT_EQ(pool.leakedBlocks(), 0u);
}

TEST(KvPool, RefcountSharingKeepsBlockAlive)
{
    KvPool pool(8 * 64, 4, 64);
    KvBlockTable t;
    ASSERT_TRUE(pool.tryGrow(t, 4));
    const std::uint32_t shared = t.blocks[0];
    pool.retain(shared); // a second table maps the block
    pool.release(t);     // first owner drops out
    EXPECT_EQ(pool.blocksInUse(), 1u); // still referenced
    pool.releaseBlock(shared);
    EXPECT_EQ(pool.blocksInUse(), 0u);
    EXPECT_EQ(pool.leakedBlocks(), 0u);
}

// Regression: leakedBlocks() is a *block* count, so a block still
// shared at refcount N after drain reports as one leak no matter how
// many references are actually outstanding — and historically a
// shared block released only once slipped past audits that compared
// alloc/free block counters alone. leakedRefs() counts every
// outstanding reference exactly.
TEST(KvPool, LeakAuditCountsOutstandingRefs)
{
    KvPool pool(8 * 64, 4, 64);
    KvBlockTable t;
    ASSERT_TRUE(pool.tryGrow(t, 4));
    const std::uint32_t b = t.blocks[0];
    pool.retain(b); // three refs total
    pool.retain(b);
    EXPECT_EQ(pool.refCount(b), 3u);
    EXPECT_EQ(pool.leakedRefs(), 3u);

    pool.release(t); // the table's own ref goes
    // The undercount being pinned: one block leaked, two refs.
    EXPECT_EQ(pool.leakedBlocks(), 1u);
    EXPECT_EQ(pool.leakedRefs(), 2u);

    pool.releaseBlock(b);
    EXPECT_EQ(pool.leakedBlocks(), 1u); // still understates
    EXPECT_EQ(pool.leakedRefs(), 1u);
    pool.releaseBlock(b);
    EXPECT_EQ(pool.leakedBlocks(), 0u);
    EXPECT_EQ(pool.leakedRefs(), 0u);
    EXPECT_EQ(pool.allocCount(), pool.freeCount());
}

// Zero-token edges: covering zero tokens needs zero blocks, growing
// to zero coverage is a successful no-op, and refCount on a
// never-allocated id is 0 rather than a crash.
TEST(KvPool, ZeroTokenEdges)
{
    KvPool pool(8 * 64, 4, 64);
    EXPECT_EQ(pool.blocksForTokens(0), 0u);
    KvBlockTable t;
    EXPECT_TRUE(pool.canGrow(t, 0));
    EXPECT_TRUE(pool.tryGrow(t, 0));
    EXPECT_TRUE(t.empty());
    EXPECT_EQ(pool.blocksInUse(), 0u);
    EXPECT_EQ(pool.refCount(0), 0u);
    EXPECT_EQ(pool.refCount(12345), 0u);
    // A populated table also tolerates a zero-coverage "grow".
    ASSERT_TRUE(pool.tryGrow(t, 4));
    EXPECT_TRUE(pool.tryGrow(t, 0));
    EXPECT_EQ(t.blocks.size(), 1u);
    pool.release(t);
    EXPECT_EQ(pool.leakedRefs(), 0u);
}

// One block mapped into three tables: releases in any order keep the
// block alive until the last reference drops, the LIFO free list
// hands it back deterministically, and every counter balances.
TEST(KvPool, MultiTableRetainReleaseBalances)
{
    KvPool pool(8 * 64, 4, 64);
    KvBlockTable a, b, c;
    ASSERT_TRUE(pool.tryGrow(a, 8)); // 2 blocks
    const std::uint32_t shared = a.blocks[0];
    pool.retain(shared);
    b.blocks.push_back(shared);
    pool.retain(shared);
    c.blocks.push_back(shared);
    EXPECT_EQ(pool.refCount(shared), 3u);
    EXPECT_EQ(pool.blocksInUse(), 2u); // refs don't inflate usage
    EXPECT_EQ(pool.allocCount(), 2u);  // nor the alloc counter

    pool.release(b); // middle holder first
    EXPECT_EQ(pool.refCount(shared), 2u);
    pool.release(a); // the allocating table next
    EXPECT_EQ(pool.refCount(shared), 1u);
    EXPECT_EQ(pool.blocksInUse(), 1u); // c still holds it
    pool.release(c);
    EXPECT_EQ(pool.refCount(shared), 0u);
    EXPECT_EQ(pool.blocksInUse(), 0u);
    EXPECT_EQ(pool.allocCount(), pool.freeCount());
    EXPECT_EQ(pool.leakedBlocks(), 0u);
    EXPECT_EQ(pool.leakedRefs(), 0u);

    // The freed shared block is reusable immediately.
    KvBlockTable d;
    ASSERT_TRUE(pool.tryGrow(d, 4));
    EXPECT_EQ(pool.refCount(d.blocks[0]), 1u);
    pool.release(d);
}

TEST(KvPool, DoubleFreeDies)
{
    KvPool pool(8 * 64, 4, 64);
    KvBlockTable t;
    ASSERT_TRUE(pool.tryGrow(t, 4));
    const std::uint32_t b = t.blocks[0];
    pool.release(t);
    EXPECT_DEATH(pool.releaseBlock(b), "double free");
}

TEST(KvPool, BoundedBudgetRequiresBlockTokens)
{
    EXPECT_EXIT(KvPool(1024, 0, 0), ::testing::ExitedWithCode(1),
                "block_tokens");
}

TEST(KvSegments, GiantBlockAndContiguousAreOneBurst)
{
    std::vector<std::uint64_t> segs;
    llm::kvSegmentBytes(llm::KvView{0}, 4096, 0, 512, segs);
    ASSERT_EQ(segs.size(), 1u);
    EXPECT_EQ(segs[0], 4096u);
    segs.clear();
    llm::kvSegmentBytes(llm::KvView{1 << 20}, 4096, 0, 512, segs);
    ASSERT_EQ(segs.size(), 1u);
    EXPECT_EQ(segs[0], 4096u);
}

TEST(KvSegments, PagedSplitsAtBlockBoundariesConservingBytes)
{
    // 10 tokens of 8 bytes starting at token 6 with 4-token blocks:
    // tokens 6-7 | 8-11 | 12-15 share three blocks.
    std::vector<std::uint64_t> segs;
    llm::kvSegmentBytes(llm::KvView{4}, 80, 6, 10, segs);
    ASSERT_EQ(segs.size(), 3u);
    EXPECT_EQ(segs[0], 16u);
    EXPECT_EQ(segs[1], 32u);
    EXPECT_EQ(segs[2], 32u);

    // Rounding remainder lands on the last segment; the sum is exact.
    segs.clear();
    llm::kvSegmentBytes(llm::KvView{4}, 83, 6, 10, segs);
    ASSERT_EQ(segs.size(), 3u);
    EXPECT_EQ(segs[0] + segs[1] + segs[2], 83u);
}

// ---------------------------------------------------------------------
// Serving-level invariants (presetS / OPT-6.7B, as scheduler_test).
// ---------------------------------------------------------------------

void
expectSameServe(const ServeStats &a, const ServeStats &b)
{
    EXPECT_EQ(a.sim_makespan, b.sim_makespan);
    EXPECT_EQ(a.total_tokens, b.total_tokens);
    EXPECT_DOUBLE_EQ(a.aggregate_tokens_per_s,
                     b.aggregate_tokens_per_s);
    EXPECT_DOUBLE_EQ(a.finite_run_tokens_per_s,
                     b.finite_run_tokens_per_s);
    EXPECT_DOUBLE_EQ(a.extrapolation_factor, b.extrapolation_factor);
    EXPECT_DOUBLE_EQ(a.ttft.p99_ms, b.ttft.p99_ms);
    EXPECT_DOUBLE_EQ(a.tbt.p95_ms, b.tbt.p95_ms);
    ASSERT_EQ(a.requests.size(), b.requests.size());
    for (std::size_t i = 0; i < a.requests.size(); ++i) {
        const ServeRequestStats &x = a.requests[i];
        const ServeRequestStats &y = b.requests[i];
        EXPECT_EQ(x.admit_tick, y.admit_tick) << i;
        EXPECT_EQ(x.first_token_tick, y.first_token_tick) << i;
        EXPECT_EQ(x.finish_tick, y.finish_tick) << i;
        EXPECT_EQ(x.prefill_time, y.prefill_time) << i;
        EXPECT_EQ(x.total_token_time, y.total_token_time) << i;
        EXPECT_EQ(x.first_token.token_time, y.first_token.token_time)
            << i;
        EXPECT_EQ(x.first_token.dram_bytes, y.first_token.dram_bytes)
            << i;
        EXPECT_DOUBLE_EQ(x.ttft_ms, y.ttft_ms) << i;
        EXPECT_DOUBLE_EQ(x.mean_tbt_ms, y.mean_tbt_ms) << i;
    }
}

// Golden per-request stats recorded from the PR 2 BatchEngine (see
// scheduler_test.cc): the contract the unbounded pool must honor.
struct Golden
{
    Tick admit, finish, total;
};
constexpr Golden kGolden[4] = {
    {0, 161723879, 1111725799},
    {0, 85240587, 560241547},
    {85240587, 255464719, 1120226052},
    {161723879, 246867591, 560144672},
};
constexpr Tick kGoldenMakespan = 255464719;

std::vector<ServeRequest>
goldenDecodeRequests()
{
    return {{0, 256, 2, 0},
            {0, 512, 1, 0},
            {0, 1024, 2, 0},
            {0, 384, 1, 0}};
}

std::vector<ServeRequest>
mixedRequests()
{
    return {{0, 512, 2, 0},  // warm decode request
            {384, 0, 1, 0},  // prompt arriving with it
            {0, 1024, 1, 0}, // second decode request
            {640, 0, 2, 0}}; // second prompt
}

// An unbounded pool with a one-giant-block table must replay the PR 2
// golden event sequence tick-for-tick: the block table is pure
// indirection until capacity or block granularity bites.
TEST(KvServing, UnboundedGiantBlockReproducesGoldenStats)
{
    const CamConfig cfg = presetS();
    const llm::ModelConfig model = llm::opt6_7b();
    SchedOptions opt;
    opt.max_batch = 2;
    opt.kv_budget_bytes = 0;      // unbounded
    opt.kv_block_tokens = 1 << 20; // one giant block per request
    const ServeStats ss =
        Scheduler(cfg, model).serve(goldenDecodeRequests(), opt);

    ASSERT_EQ(ss.requests.size(), 4u);
    EXPECT_EQ(ss.sim_makespan, kGoldenMakespan);
    for (std::size_t i = 0; i < 4; ++i) {
        EXPECT_EQ(ss.requests[i].admit_tick, kGolden[i].admit) << i;
        EXPECT_EQ(ss.requests[i].finish_tick, kGolden[i].finish) << i;
        EXPECT_EQ(ss.requests[i].total_token_time, kGolden[i].total)
            << i;
    }
    EXPECT_EQ(ss.preemptions, 0u);
    EXPECT_EQ(ss.recompute_tokens, 0u);
    EXPECT_EQ(ss.kv_blocks_total, 0u); // unbounded
    EXPECT_EQ(ss.kv_block_allocs, ss.kv_block_frees);
}

// Giant-block block-table decode ≡ contiguous KV decode, for both
// policies and with prefill in the mix (FCFS and ChunkedInterleave).
TEST(KvServing, GiantBlockMatchesContiguousBothPolicies)
{
    const CamConfig cfg = presetS();
    const llm::ModelConfig model = llm::opt6_7b();
    const Scheduler sched(cfg, model);
    for (const SchedPolicy policy :
         {SchedPolicy::DecodeFirstFcfs,
          SchedPolicy::ChunkedInterleave}) {
        SchedOptions contiguous;
        contiguous.max_batch = 2;
        contiguous.policy = policy;
        contiguous.prefill_chunk = 128;
        contiguous.npu_contention = true;
        SchedOptions paged = contiguous;
        paged.kv_block_tokens = 1 << 20;
        expectSameServe(sched.serve(mixedRequests(), contiguous),
                        sched.serve(mixedRequests(), paged));
    }
}

// A finite budget at (or above) peak demand changes nothing: no
// allocation ever fails, so the event sequence is bit-identical to
// the unbounded paged run and no preemption fires.
TEST(KvServing, BudgetAtPeakDemandNeverPreempts)
{
    const CamConfig cfg = presetS();
    const llm::ModelConfig model = llm::opt6_7b();
    const Scheduler sched(cfg, model);
    const std::vector<ServeRequest> reqs = mixedRequests();

    const std::uint32_t block_tokens = 64;
    std::uint64_t demand_tokens = 0;
    for (const ServeRequest &r : reqs)
        demand_tokens +=
            ((r.context + r.prompt + r.decode_tokens + block_tokens -
              1) /
             block_tokens) *
            std::uint64_t(block_tokens);

    SchedOptions unbounded;
    unbounded.max_batch = 2;
    unbounded.policy = SchedPolicy::ChunkedInterleave;
    unbounded.prefill_chunk = 128;
    unbounded.kv_block_tokens = block_tokens;
    SchedOptions bounded = unbounded;
    bounded.kv_budget_bytes = demand_tokens * tokenKvBytes(model);

    const ServeStats u = sched.serve(reqs, unbounded);
    const ServeStats b = sched.serve(reqs, bounded);
    expectSameServe(u, b);
    EXPECT_EQ(b.preemptions, 0u);
    EXPECT_EQ(b.recompute_tokens, 0u);
    EXPECT_GT(b.kv_blocks_total, 0u);
    EXPECT_EQ(b.kv_blocks_high_water, u.kv_blocks_high_water);
    EXPECT_LE(b.kv_blocks_high_water, b.kv_blocks_total);
}

// Small blocks split every KV transfer into per-block DRAM requests;
// the extra per-request DRAM latency must slow the run down without
// changing the tokens served.
TEST(KvServing, PagedSmallBlocksAddDramLatency)
{
    const CamConfig cfg = presetS();
    const llm::ModelConfig model = llm::opt6_7b();
    const Scheduler sched(cfg, model);
    const std::vector<ServeRequest> reqs = {{0, 1024, 2, 0}};

    SchedOptions contiguous;
    contiguous.max_batch = 1;
    SchedOptions paged = contiguous;
    paged.kv_block_tokens = 64; // 1024-token context = 16 segments

    const ServeStats c = sched.serve(reqs, contiguous);
    const ServeStats p = sched.serve(reqs, paged);
    EXPECT_EQ(c.total_tokens, p.total_tokens);
    EXPECT_GT(p.sim_makespan, c.sim_makespan);
    // Same KV bytes moved either way — paging scatters, not inflates.
    EXPECT_EQ(c.requests[0].first_token.dram_bytes,
              p.requests[0].first_token.dram_bytes);
}

// Two growing decode requests overcommit a tight pool: the later one
// is evicted (decode-priority: the oldest keeps running), rebuilds
// its KV as Recompute-tagged prefill, and still completes. The drain
// audit must balance and capacity must never be exceeded.
TEST(KvServing, PreemptsEvictsAndRecomputesUnderPressure)
{
    const CamConfig cfg = presetS();
    const llm::ModelConfig model = llm::opt6_7b();
    const Scheduler sched(cfg, model);
    // final demand: 64 + 24 = 88 tokens -> 6 blocks of 16 each.
    const std::vector<ServeRequest> reqs = {{0, 64, 24, 0},
                                            {0, 64, 24, 0}};
    SchedOptions opt;
    opt.max_batch = 2;
    opt.kv_block_tokens = 16;
    opt.kv_budget_bytes = 8 * 16 * tokenKvBytes(model); // 8 blocks

    const ServeStats s = sched.serve(reqs, opt);
    ASSERT_EQ(s.requests.size(), 2u);
    EXPECT_EQ(s.requests[0].decode_tokens, 24u);
    EXPECT_GT(s.preemptions, 0u);
    EXPECT_EQ(s.requests[0].preemptions, 0u); // oldest never evicted
    EXPECT_GT(s.requests[1].preemptions, 0u);
    EXPECT_GT(s.recompute_tokens, 0u);
    EXPECT_GT(s.recompute_channel_bytes, 0u);
    EXPECT_GT(s.requests[1].recompute_time, 0u);
    EXPECT_GT(s.requests[1].kv_blocked_time, 0u);
    EXPECT_EQ(s.kv_blocks_total, 8u);
    EXPECT_LE(s.kv_blocks_high_water, s.kv_blocks_total);
    EXPECT_EQ(s.kv_block_allocs, s.kv_block_frees); // drain audit

    // The same workload with room for both runs preemption-free and
    // strictly faster.
    SchedOptions roomy = opt;
    roomy.kv_budget_bytes = 12 * 16 * tokenKvBytes(model);
    const ServeStats r = sched.serve(reqs, roomy);
    EXPECT_EQ(r.preemptions, 0u);
    EXPECT_LT(r.sim_makespan, s.sim_makespan);
}

// Shrinking the KV budget can only delay first tokens: with
// admission unconstrained (no warm context to reserve), a tighter
// pool adds prefill stalls, evictions and recompute ahead of every
// first token, so p95 TTFT never improves. The full-headroom end of
// the ladder must be preemption-free and the tight end must actually
// preempt. (Context-heavy workloads are deliberately excluded here:
// admission gating can serialize them, and serial service beating
// concurrent thrashing is legitimate non-monotonicity.)
TEST(KvServing, ShrinkingBudgetMonotonicity)
{
    const CamConfig cfg = presetS();
    const llm::ModelConfig model = llm::opt6_7b();
    const Scheduler sched(cfg, model);
    const std::vector<ServeRequest> reqs = {{64, 0, 8, 0},
                                            {64, 0, 8, 0},
                                            {64, 0, 8, 0},
                                            {64, 0, 8, 0}};
    // final demand per request: 72 tokens -> 5 blocks of 16.
    const std::vector<std::uint64_t> ladder = {20, 16, 12, 8};
    std::vector<ServeStats> stats;
    for (const std::uint64_t blocks : ladder) {
        SchedOptions opt;
        opt.max_batch = 4;
        opt.policy = SchedPolicy::ChunkedInterleave;
        opt.prefill_chunk = 32;
        opt.kv_block_tokens = 16;
        opt.kv_budget_bytes = blocks * 16 * tokenKvBytes(model);
        stats.push_back(sched.serve(reqs, opt));
        EXPECT_EQ(stats.back().kv_block_allocs,
                  stats.back().kv_block_frees);
    }
    for (std::size_t i = 1; i < stats.size(); ++i) {
        // Stalls decorrelate the streams' layer phases, which can
        // nudge a run a fraction of a percent either way (the same
        // resonance effect admission_stagger exists for), so the
        // non-decrease check carries the repo-standard 2% headroom.
        EXPECT_GE(stats[i].ttft.p95_ms * 1.02,
                  stats[i - 1].ttft.p95_ms)
            << "budget " << ladder[i] << " blocks";
        EXPECT_GE(stats[i].preemptions, stats[i - 1].preemptions)
            << "budget " << ladder[i] << " blocks";
    }
    // 20 blocks hold every request's final demand at once: nothing
    // to preempt. 8 blocks cannot, so eviction must fire and the
    // tail latency must degrade materially, not within noise.
    EXPECT_EQ(stats.front().preemptions, 0u);
    EXPECT_GT(stats.back().preemptions, 0u);
    EXPECT_GT(stats.back().ttft.p95_ms,
              stats.front().ttft.p95_ms * 1.5);
}

// Admission edge: the smallest admissible request — a one-token
// prompt with no warm context — reserves one block, prefills one
// token, emits it and retires cleanly. With prefix sharing armed the
// prompt is too short to share (whole blocks strictly inside the
// prompt), so the tags must be harmless too.
TEST(KvServing, OneTokenPromptZeroContextServes)
{
    const CamConfig cfg = presetS();
    const llm::ModelConfig model = llm::opt6_7b();
    const Scheduler sched(cfg, model);
    std::vector<ServeRequest> reqs = {{1, 0, 1, 0}};
    SchedOptions opt;
    opt.max_batch = 1;
    opt.kv_block_tokens = 16;
    opt.kv_budget_bytes = 4 * 16 * tokenKvBytes(model);
    const ServeStats s = sched.serve(reqs, opt);
    EXPECT_EQ(s.completed, 1u);
    EXPECT_EQ(s.requests[0].tokens_emitted, 2u); // first + 1 decode
    EXPECT_GT(s.requests[0].ttft_ms, 0.0);
    EXPECT_EQ(s.kv_block_allocs, s.kv_block_frees);

    reqs[0].prefix_id = 3;
    reqs[0].prefix_tokens = 1;
    opt.kv_prefix_sharing = true;
    const ServeStats t = sched.serve(reqs, opt);
    EXPECT_EQ(t.completed, 1u);
    EXPECT_EQ(t.prefix_hit_blocks, 0u);
    EXPECT_EQ(t.prefix_inserted_blocks, 0u);
    EXPECT_EQ(t.requests[0].prefix_reused_tokens, 0u);
}

// Preemption decisions live entirely on the deterministic event
// clock: a bounded-budget scenario must serve bit-identically no
// matter how many sweep workers evaluate it.
TEST(KvServing, PreemptionDeterministicAcrossSweepThreads)
{
    const CamConfig cfg = presetS();
    const llm::ModelConfig model = llm::opt6_7b();
    const std::vector<ServeRequest> reqs = {{0, 64, 20, 0},
                                            {48, 0, 12, 0},
                                            {0, 96, 8, 0}};
    const auto runPoint = [&](std::size_t) {
        SchedOptions opt;
        opt.max_batch = 3;
        opt.policy = SchedPolicy::ChunkedInterleave;
        opt.prefill_chunk = 32;
        opt.kv_block_tokens = 16;
        opt.kv_budget_bytes =
            10 * 16 * tokenKvBytes(llm::opt6_7b());
        return Scheduler(cfg, model).serve(reqs, opt);
    };
    ParallelSweep one(1), four(4);
    const auto a = one.map<ServeStats>(4, runPoint);
    const auto b = four.map<ServeStats>(4, runPoint);
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t p = 0; p < a.size(); ++p) {
        expectSameServe(a[p], b[p]);
        EXPECT_EQ(a[p].preemptions, b[p].preemptions);
        EXPECT_EQ(a[p].recompute_tokens, b[p].recompute_tokens);
        EXPECT_EQ(a[p].kv_blocks_high_water,
                  b[p].kv_blocks_high_water);
    }
    // The scenario is tight enough to actually preempt.
    EXPECT_GT(a[0].preemptions, 0u);
}

// A request whose KV could never fit the whole pool is a config
// error, reported before any simulation runs.
// A request whose final KV demand exceeds the whole pool used to
// abort the serve; now it is rejected gracefully at its admission
// point and every other request is still served to completion.
TEST(KvServing, InfeasibleRequestIsRejectedGracefully)
{
    const CamConfig cfg = presetS();
    const llm::ModelConfig model = llm::opt6_7b();
    const std::vector<ServeRequest> reqs = {
        {0, 16, 4, 0},   // fits: 20 final tokens of a 64-token pool
        {0, 4096, 8, 0}, // can never fit — must not kill the serve
        {0, 32, 2, 0},   // behind the infeasible head, still served
    };
    SchedOptions opt;
    opt.max_batch = 1;
    opt.kv_block_tokens = 16;
    opt.kv_budget_bytes = 4 * 16 * tokenKvBytes(model); // 64 tokens
    const ServeStats st = Scheduler(cfg, model).serve(reqs, opt);
    EXPECT_EQ(st.rejected_infeasible, 1u);
    EXPECT_EQ(st.completed, 2u);
    EXPECT_EQ(st.admitted, 2u);
    EXPECT_EQ(st.requests[1].outcome,
              RequestOutcome::RejectedInfeasible);
    EXPECT_EQ(st.requests[1].tokens_emitted, 0u);
    EXPECT_EQ(st.requests[0].outcome, RequestOutcome::Completed);
    EXPECT_EQ(st.requests[2].outcome, RequestOutcome::Completed);
    // Drain audit inside serve() already asserted zero leaks; the
    // rejected request must not have distorted the survivors.
    EXPECT_GT(st.requests[2].tokens_per_s, 0.0);
}

} // namespace
} // namespace camllm::core
