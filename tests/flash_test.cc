/**
 * @file
 * Unit tests for the flash substrate: geometry/addressing, the
 * priority channel bus, die pipelines (read and read-compute), the
 * per-channel scheduler, and weight placement.
 */

#include <gtest/gtest.h>

#include <map>
#include <vector>

#include "flash/address.h"
#include "flash/channel_engine.h"
#include "flash/flash_system.h"
#include "flash/placement.h"
#include "sim/event_queue.h"

namespace camllm::flash {
namespace {

/** Small, fast parameters for exact-timing tests. */
FlashParams
testParams()
{
    FlashParams p;
    p.geometry.channels = 1;
    p.geometry.chips_per_channel = 1;
    p.geometry.dies_per_chip = 1;
    p.geometry.planes_per_die = 2;
    p.geometry.blocks_per_plane = 8;
    p.geometry.pages_per_block = 16;
    p.geometry.page_bytes = 1024;
    p.timing.t_read = 1000;
    p.timing.bus_mts = 1000; // 1 B/ns
    p.timing.bus_bits = 8;
    p.timing.grant_overhead = 10;
    p.timing.t_reg_move = 50;
    p.timing.slice_bytes = 256;
    return p;
}

/**
 * One connected flash client: records tagged completions. Pass the
 * router of the channel under test (or FlashSystem::connect below).
 */
struct TestClient
{
    EventQueue *eq = nullptr;
    ClientId id = 0;
    std::map<std::uint64_t, std::uint64_t> rc_results;
    std::map<std::uint64_t, std::uint64_t> read_bytes;
    std::vector<Tick> rc_times;
    std::vector<Tick> read_times;

    void
    on(const Completion &c)
    {
        EXPECT_EQ(c.client, id);
        if (c.kind == Completion::Kind::RcResult) {
            ++rc_results[c.op_id];
            if (eq)
                rc_times.push_back(eq->now());
        } else {
            read_bytes[c.op_id] += c.bytes;
            if (eq)
                read_times.push_back(eq->now());
        }
    }

    void
    attach(CompletionRouter &router)
    {
        id = router.connect([this](const Completion &c) { on(c); });
    }

    void
    attach(FlashSystem &fs)
    {
        id = fs.connect([this](const Completion &c) { on(c); });
    }
};

/** A read-page job tagged for @p cl. */
ReadPageJob
readJob(const TestClient &cl, std::uint64_t op, std::uint32_t bytes,
        bool sliced)
{
    ReadPageJob j;
    j.client = cl.id;
    j.op_id = op;
    j.bytes = bytes;
    j.sliced = sliced;
    return j;
}

// --- geometry -------------------------------------------------------------

TEST(FlashGeometry, DerivedCounts)
{
    FlashGeometry g;
    g.channels = 8;
    g.chips_per_channel = 2;
    g.dies_per_chip = 2;
    g.planes_per_die = 2;
    EXPECT_EQ(g.diesPerChannel(), 4u);
    EXPECT_EQ(g.coresPerChannel(), 4u);
    EXPECT_EQ(g.totalDies(), 32u);
}

TEST(FlashGeometry, CapacityMath)
{
    FlashGeometry g = testParams().geometry;
    EXPECT_EQ(g.planeBytes(), 8u * 16 * 1024);
    EXPECT_EQ(g.dieBytes(), 2u * 8 * 16 * 1024);
    EXPECT_EQ(g.totalPages(), 2u * 8 * 16);
}

TEST(FlashGeometry, TableIIPresetCapacityHoldsA70BModel)
{
    FlashGeometry g; // defaults: 2048 blocks x 256 pages x 16 KB
    g.channels = 8;
    g.chips_per_channel = 2;
    // >= 80 GB for INT8 Llama2-70B.
    EXPECT_GT(g.totalBytes(), 80ull * 1000 * 1000 * 1000);
}

TEST(FlashGeometry, InvalidWhenZeroField)
{
    FlashGeometry g;
    g.channels = 0;
    EXPECT_FALSE(g.valid());
}

TEST(FlashTiming, BusBytesPerNs)
{
    FlashTiming t;
    t.bus_mts = 1000;
    t.bus_bits = 8;
    EXPECT_DOUBLE_EQ(t.busBytesPerNs(), 1.0);
    t.bus_mts = 2000;
    EXPECT_DOUBLE_EQ(t.busBytesPerNs(), 2.0);
}

TEST(FlashTiming, MatchedComputeEqualsReadTime)
{
    FlashTiming t;
    t.t_read = 30000;
    t.core_gops = 0.0; // matched design point
    EXPECT_EQ(t.computeTime(16384, 16384), 30000u);
    EXPECT_EQ(t.computeTime(8192, 16384), 15000u);
}

TEST(FlashTiming, ExplicitGopsCompute)
{
    FlashTiming t;
    t.core_gops = 4.0; // 4 ops per ns
    EXPECT_EQ(t.computeTime(16384, 16384), Tick(2 * 16384 / 4));
}

// --- addressing -------------------------------------------------------------

TEST(PageIndexer, RoundTripExhaustiveSmall)
{
    FlashGeometry g = testParams().geometry;
    PageIndexer ix(g);
    for (std::uint64_t i = 0; i < ix.totalPages(); ++i) {
        PageAddress a = ix.toAddress(i);
        EXPECT_TRUE(a.validFor(g));
        EXPECT_EQ(ix.toLinear(a), i);
    }
}

TEST(PageIndexer, ChannelIsSlowestCoordinate)
{
    FlashGeometry g;
    g.channels = 4;
    PageIndexer ix(g);
    PageAddress a = ix.toAddress(0);
    EXPECT_EQ(a.channel, 0u);
    PageAddress b = ix.toAddress(ix.totalPages() - 1);
    EXPECT_EQ(b.channel, 3u);
}

TEST(PageAddress, ValidityBounds)
{
    FlashGeometry g = testParams().geometry;
    PageAddress a;
    EXPECT_TRUE(a.validFor(g));
    a.plane = 2;
    EXPECT_FALSE(a.validFor(g));
}

// --- channel bus ------------------------------------------------------------

TEST(ChannelBus, SingleGrantTiming)
{
    EventQueue eq;
    ChannelBus bus(eq, 1.0, 10);
    Tick done = 0;
    bus.request(BusPriority::Low, 100, [&] { done = eq.now(); });
    eq.run();
    EXPECT_EQ(done, 110u); // overhead + bytes
    EXPECT_EQ(bus.bytesLow(), 100u);
    EXPECT_EQ(bus.grants(), 1u);
}

TEST(ChannelBus, HighPreemptsQueuedLow)
{
    EventQueue eq;
    ChannelBus bus(eq, 1.0, 0);
    std::vector<int> order;
    bus.request(BusPriority::Low, 100, [&] { order.push_back(0); });
    bus.request(BusPriority::Low, 100, [&] { order.push_back(1); });
    bus.request(BusPriority::High, 10, [&] { order.push_back(2); });
    eq.run();
    // The first low grant was already in flight; the high one jumps
    // the remaining queue.
    EXPECT_EQ(order, (std::vector<int>{0, 2, 1}));
}

TEST(ChannelBus, NonPreemptiveWithinGrant)
{
    EventQueue eq;
    ChannelBus bus(eq, 1.0, 0);
    Tick high_done = 0;
    bus.request(BusPriority::Low, 1000, [] {});
    bus.request(BusPriority::High, 10, [&] { high_done = eq.now(); });
    eq.run();
    // High must wait for the full 1000-byte low grant.
    EXPECT_EQ(high_done, 1010u);
}

TEST(ChannelBus, TracksBusyTime)
{
    EventQueue eq;
    ChannelBus bus(eq, 1.0, 10);
    bus.request(BusPriority::Low, 90, [] {});
    bus.request(BusPriority::High, 40, [] {});
    eq.run();
    EXPECT_EQ(bus.busy().busyTicks(), 100u + 50u);
}

TEST(ChannelBus, TraceHookSeesGrants)
{
    EventQueue eq;
    ChannelBus bus(eq, 1.0, 0);
    std::vector<ChannelBus::GrantTrace> traces;
    bus.setTraceHook([&](const ChannelBus::GrantTrace &g) {
        traces.push_back(g);
    });
    bus.request(BusPriority::High, 8, [] {}, "input");
    bus.request(BusPriority::Low, 16, [] {}, "slice");
    eq.run();
    ASSERT_EQ(traces.size(), 2u);
    EXPECT_EQ(traces[0].bytes, 8u);
    EXPECT_EQ(traces[0].priority, BusPriority::High);
    EXPECT_STREQ(traces[1].label, "slice");
}

// --- die + channel engine ---------------------------------------------------

TEST(ChannelEngine, ReadJobExactTiming)
{
    EventQueue eq;
    CompletionRouter router(eq);
    TestClient cl;
    cl.eq = &eq;
    cl.attach(router);
    ChannelEngine ce(eq, testParams(), router);
    ce.submitRead(readJob(cl, 7, 1024, true));
    eq.run();
    // tR + reg move + 4 slices of (10 + 256).
    EXPECT_EQ(cl.read_times.at(0), 1000u + 50 + 4 * 266);
    EXPECT_EQ(cl.read_bytes[7], 1024u);
    EXPECT_EQ(ce.pagesRead(), 1u);
}

TEST(ChannelEngine, UnslicedReadIsOneGrant)
{
    EventQueue eq;
    CompletionRouter router(eq);
    TestClient cl;
    cl.eq = &eq;
    cl.attach(router);
    ChannelEngine ce(eq, testParams(), router);
    ce.submitRead(readJob(cl, 7, 1024, false));
    eq.run();
    EXPECT_EQ(cl.read_times.at(0), 1000u + 50 + 10 + 1024);
    EXPECT_EQ(ce.bus().grants(), 1u);
}

TEST(ChannelEngine, PartialPageReadFewerSlices)
{
    EventQueue eq;
    CompletionRouter router(eq);
    TestClient cl;
    cl.attach(router);
    ChannelEngine ce(eq, testParams(), router);
    ce.submitRead(readJob(cl, 1, 300, true));
    eq.run();
    // ceil(300/256) = 2 slices.
    EXPECT_EQ(ce.bus().grants(), 2u);
    EXPECT_EQ(cl.read_bytes[1], 300u);
}

TEST(ChannelEngine, RcTileExactTiming)
{
    EventQueue eq;
    CompletionRouter router(eq);
    TestClient cl;
    cl.eq = &eq;
    cl.attach(router);
    ChannelEngine ce(eq, testParams(), router);
    RcTileWork tile;
    tile.op_id = 3;
    tile.cores_used = 1;
    tile.input_bytes = 64;
    tile.out_bytes_per_core = 32;
    tile.compute_time = 500;
    ce.submitTile(tile);
    eq.run();
    // input grant [0,74]; array read [74,1074] (step 1 precedes
    // step 2); move [1074,1124]; compute [1124,1624]; result grant
    // [1624,1666].
    EXPECT_EQ(cl.rc_times.at(0), 1666u);
    EXPECT_EQ(cl.rc_results[3], 1u);
    EXPECT_EQ(ce.pagesComputed(), 1u);
}

TEST(ChannelEngine, RcSteadyStateCadenceReadBound)
{
    EventQueue eq;
    CompletionRouter router(eq);
    TestClient cl;
    cl.eq = &eq;
    cl.attach(router);
    ChannelEngine ce(eq, testParams(), router);
    RcTileWork tile;
    tile.op_id = 1;
    tile.cores_used = 1;
    tile.input_bytes = 64;
    tile.out_bytes_per_core = 32;
    tile.compute_time = 500; // < tR: cadence = t_reg_move + tR
    for (int i = 0; i < 4; ++i)
        ce.submitTile(tile);
    eq.run();
    ASSERT_EQ(cl.rc_times.size(), 4u);
    for (std::size_t i = 1; i < cl.rc_times.size(); ++i)
        EXPECT_EQ(cl.rc_times[i] - cl.rc_times[i - 1], 1050u);
}

TEST(ChannelEngine, RcSteadyStateCadenceComputeBound)
{
    EventQueue eq;
    CompletionRouter router(eq);
    TestClient cl;
    cl.eq = &eq;
    cl.attach(router);
    ChannelEngine ce(eq, testParams(), router);
    RcTileWork tile;
    tile.op_id = 1;
    tile.cores_used = 1;
    tile.input_bytes = 64;
    tile.out_bytes_per_core = 32;
    tile.compute_time = 2000; // > tR: core limits
    for (int i = 0; i < 4; ++i)
        ce.submitTile(tile);
    eq.run();
    ASSERT_EQ(cl.rc_times.size(), 4u);
    for (std::size_t i = 1; i < cl.rc_times.size(); ++i)
        EXPECT_EQ(cl.rc_times[i] - cl.rc_times[i - 1], 2050u);
}

TEST(ChannelEngine, TileFansOutToAllCores)
{
    EventQueue eq;
    CompletionRouter router(eq);
    TestClient cl;
    cl.attach(router);
    FlashParams p = testParams();
    p.geometry.chips_per_channel = 2;
    p.geometry.dies_per_chip = 2; // 4 cores on the channel
    ChannelEngine ce(eq, p, router);
    RcTileWork tile;
    tile.op_id = 9;
    tile.cores_used = 4;
    tile.input_bytes = 64;
    tile.out_bytes_per_core = 16;
    tile.compute_time = 500;
    ce.submitTile(tile);
    eq.run();
    EXPECT_EQ(cl.rc_results[9], 4u);
    EXPECT_EQ(ce.pagesComputed(), 4u);
    // One broadcast input grant + 4 result grants.
    EXPECT_EQ(ce.bus().grants(), 5u);
}

TEST(ChannelEngine, PartialTileUsesSubsetOfCores)
{
    EventQueue eq;
    CompletionRouter router(eq);
    TestClient cl;
    cl.attach(router);
    FlashParams p = testParams();
    p.geometry.chips_per_channel = 4; // 4 dies
    ChannelEngine ce(eq, p, router);
    RcTileWork tile;
    tile.op_id = 2;
    tile.cores_used = 3;
    tile.input_bytes = 8;
    tile.out_bytes_per_core = 8;
    tile.compute_time = 100;
    ce.submitTile(tile);
    eq.run();
    EXPECT_EQ(cl.rc_results[2], 3u);
    EXPECT_EQ(ce.die(3).pagesComputed(), 0u);
}

TEST(ChannelEngine, ReadsSpreadRoundRobinAcrossDies)
{
    EventQueue eq;
    CompletionRouter router(eq);
    TestClient cl;
    cl.attach(router);
    FlashParams p = testParams();
    p.geometry.chips_per_channel = 2;
    p.geometry.dies_per_chip = 2;
    ChannelEngine ce(eq, p, router);
    for (int i = 0; i < 8; ++i)
        ce.submitRead(readJob(cl, 1, p.geometry.page_bytes, true));
    eq.run();
    for (std::size_t d = 0; d < ce.dieCount(); ++d)
        EXPECT_EQ(ce.die(d).pagesRead(), 2u);
}

TEST(ChannelEngine, InterleavesTwoClientsWithTaggedCompletions)
{
    // Two decode streams share the one channel; each must see exactly
    // its own completions, tagged with its own op ids.
    EventQueue eq;
    CompletionRouter router(eq);
    TestClient a, b;
    a.attach(router);
    b.attach(router);
    ChannelEngine ce(eq, testParams(), router);
    RcTileWork tile;
    tile.cores_used = 1;
    tile.input_bytes = 8;
    tile.out_bytes_per_core = 8;
    tile.compute_time = 100;
    for (int i = 0; i < 3; ++i) {
        tile.client = a.id;
        tile.op_id = 10 + i;
        ce.submitTile(tile);
        tile.client = b.id;
        tile.op_id = 20 + i;
        ce.submitTile(tile);
        ce.submitRead(readJob(b, 33, 512, true));
    }
    eq.run();
    EXPECT_EQ(a.rc_results.size(), 3u);
    EXPECT_EQ(b.rc_results.size(), 3u);
    EXPECT_EQ(a.read_bytes.size(), 0u);
    EXPECT_EQ(b.read_bytes[33], 3u * 512);
    for (int i = 0; i < 3; ++i) {
        EXPECT_EQ(a.rc_results[10 + i], 1u);
        EXPECT_EQ(b.rc_results[20 + i], 1u);
    }
}

TEST(ChannelEngine, ReadsDoNotStallRcStream)
{
    // The paper's key scheduling property: sliced reads fill channel
    // bubbles without delaying read-compute completions.
    FlashParams p = testParams();
    p.geometry.chips_per_channel = 2; // 2 dies

    auto run_rc = [&](bool with_reads) {
        EventQueue eq;
        CompletionRouter router(eq);
        TestClient cl;
        cl.eq = &eq;
        cl.attach(router);
        ChannelEngine ce(eq, p, router);
        RcTileWork tile;
        tile.op_id = 1;
        tile.cores_used = 2;
        tile.input_bytes = 64;
        tile.out_bytes_per_core = 32;
        tile.compute_time = 900;
        for (int i = 0; i < 10; ++i)
            ce.submitTile(tile);
        if (with_reads)
            for (int i = 0; i < 40; ++i)
                ce.submitRead(readJob(cl, 2, p.geometry.page_bytes,
                                      true));
        eq.run();
        return cl.rc_times.back();
    };

    const Tick alone = run_rc(false);
    const Tick with_reads = run_rc(true);
    // Sliced reads may add at most a slice-grant's worth of delay per
    // tile, a few percent here.
    EXPECT_LT(double(with_reads), double(alone) * 1.10);
}

TEST(ChannelEngine, UnslicedReadsDoStallRcStream)
{
    // Without Slice Control the channel loses both the slicing and
    // the priority arbitration (a conventional FIFO flash channel):
    // monolithic page transfers land ahead of rc inputs and block
    // them, stretching the read-compute stream (paper Fig 6b vs 6c).
    FlashParams p = testParams();
    p.geometry.chips_per_channel = 2;

    auto run_rc = [&](bool slice_control) {
        EventQueue eq;
        CompletionRouter router(eq);
        TestClient cl;
        cl.eq = &eq;
        cl.attach(router);
        ChannelEngine ce(eq, p, router, 3, slice_control);
        RcTileWork tile;
        tile.op_id = 1;
        tile.cores_used = 2;
        tile.input_bytes = 64;
        tile.out_bytes_per_core = 32;
        tile.compute_time = 900;
        for (int i = 0; i < 10; ++i)
            ce.submitTile(tile);
        for (int i = 0; i < 40; ++i)
            ce.submitRead(readJob(cl, 2, p.geometry.page_bytes,
                                  slice_control));
        eq.run();
        return cl.rc_times.back();
    };

    const Tick with_slice = run_rc(true);
    const Tick without = run_rc(false);
    EXPECT_GT(double(without), double(with_slice) * 1.2);
}

TEST(ChannelEngine, TileWindowBoundsInFlightTiles)
{
    EventQueue eq;
    CompletionRouter router(eq);
    TestClient cl;
    cl.attach(router);
    ChannelEngine ce(eq, testParams(), router, 2);
    RcTileWork tile;
    tile.op_id = 1;
    tile.cores_used = 1;
    tile.input_bytes = 8;
    tile.out_bytes_per_core = 8;
    tile.compute_time = 100;
    for (int i = 0; i < 6; ++i)
        ce.submitTile(tile);
    EXPECT_EQ(ce.tilesInFlight(), 6u);
    eq.run();
    EXPECT_EQ(ce.tilesInFlight(), 0u);
    EXPECT_EQ(cl.rc_results[1], 6u);
}

// --- flash system -----------------------------------------------------------

TEST(FlashSystem, RoutesWorkToChannels)
{
    EventQueue eq;
    FlashParams p = testParams();
    p.geometry.channels = 4;
    FlashSystem fs(eq, p);
    TestClient cl;
    cl.attach(fs);
    RcTileWork tile;
    tile.client = cl.id;
    tile.op_id = 5;
    tile.cores_used = 1;
    tile.input_bytes = 8;
    tile.out_bytes_per_core = 8;
    tile.compute_time = 100;
    for (std::uint32_t c = 0; c < 4; ++c)
        fs.submitTile(c, tile);
    fs.submitRead(2, readJob(cl, 6, 512, true));
    eq.run();
    EXPECT_EQ(cl.rc_results[5], 4u);
    EXPECT_EQ(cl.read_bytes[6], 512u);
    EXPECT_EQ(fs.pagesComputed(), 4u);
    EXPECT_EQ(fs.pagesRead(), 1u);
    EXPECT_EQ(fs.arrayReads(), 5u);
}

TEST(FlashSystem, ChannelByteAccounting)
{
    EventQueue eq;
    FlashParams p = testParams();
    FlashSystem fs(eq, p);
    TestClient cl;
    cl.attach(fs);
    RcTileWork tile;
    tile.client = cl.id;
    tile.op_id = 1;
    tile.cores_used = 1;
    tile.input_bytes = 100;
    tile.out_bytes_per_core = 20;
    tile.compute_time = 10;
    fs.submitTile(0, tile);
    fs.submitRead(0, readJob(cl, 2, 512, true));
    eq.run();
    EXPECT_EQ(fs.channelBytesHigh(), 120u);
    EXPECT_EQ(fs.channelBytesLow(), 512u);
    EXPECT_EQ(fs.channelBytes(), 632u);
}

TEST(FlashSystem, UtilizationBetweenZeroAndOne)
{
    EventQueue eq;
    FlashParams p = testParams();
    FlashSystem fs(eq, p);
    TestClient cl;
    cl.attach(fs);
    for (int i = 0; i < 5; ++i)
        fs.submitRead(0, readJob(cl, 1, 1024, true));
    eq.run();
    double u = fs.avgChannelUtilization(eq.now());
    EXPECT_GT(u, 0.0);
    EXPECT_LE(u, 1.0);
}

// --- placement --------------------------------------------------------------

TEST(WeightPlacement, RcPagesLandOnComputePlane)
{
    WeightPlacement wp(testParams().geometry);
    PageAddress a = wp.allocRcPage(0, 0);
    EXPECT_EQ(a.plane, 0u);
    EXPECT_EQ(a.block, 0u);
    EXPECT_EQ(a.page, 0u);
    PageAddress b = wp.allocRcPage(0, 0);
    EXPECT_EQ(b.page, 1u);
}

TEST(WeightPlacement, ReadPagesAvoidComputePlane)
{
    WeightPlacement wp(testParams().geometry);
    PageAddress a = wp.allocReadPage();
    EXPECT_EQ(a.plane, 1u); // last plane first
}

TEST(WeightPlacement, RoundRobinAcrossDies)
{
    FlashGeometry g = testParams().geometry;
    g.channels = 2;
    g.chips_per_channel = 2;
    WeightPlacement wp(g);
    PageAddress a = wp.allocReadPage();
    PageAddress b = wp.allocReadPage();
    PageAddress c = wp.allocReadPage();
    // Different dies for consecutive pages.
    EXPECT_FALSE(a.channel == b.channel && a.chip == b.chip &&
                 a.die == b.die);
    EXPECT_FALSE(b.channel == c.channel && b.chip == c.chip &&
                 b.die == c.die);
}

TEST(WeightPlacement, OccupancyTracksAllocations)
{
    WeightPlacement wp(testParams().geometry);
    const std::uint64_t cap = wp.capacityPages();
    for (std::uint64_t i = 0; i < cap / 2; ++i)
        wp.allocReadPage();
    EXPECT_DOUBLE_EQ(wp.occupancy(), 0.5);
    EXPECT_EQ(wp.freePages(), cap / 2);
}

TEST(WeightPlacement, FillsEntireDeviceWithoutOverlap)
{
    FlashGeometry g = testParams().geometry;
    WeightPlacement wp(g);
    PageIndexer ix(g);
    std::vector<bool> seen(ix.totalPages(), false);
    for (std::uint64_t i = 0; i < ix.totalPages(); ++i) {
        PageAddress a = wp.allocReadPage();
        std::uint64_t lin = ix.toLinear(a);
        EXPECT_FALSE(seen[lin]);
        seen[lin] = true;
    }
    EXPECT_EQ(wp.freePages(), 0u);
}

} // namespace
} // namespace camllm::flash
