/**
 * @file
 * Unit tests for the baseline models: the stage pipeline, FlexGen,
 * MLC-LLM, and the roofline analytics.
 */

#include <gtest/gtest.h>

#include "baselines/flexgen.h"
#include "baselines/mlc_llm.h"
#include "baselines/pipeline.h"
#include "baselines/roofline.h"
#include "llm/model_config.h"

namespace camllm::baselines {
namespace {

// --- pipeline ---------------------------------------------------------------

TEST(Pipeline, SingleStageIsPureTransfer)
{
    PipelineResult r = runPipeline({{"x", 1.0, 0}}, 1000, 100);
    EXPECT_EQ(r.total_time, 1000u);
}

TEST(Pipeline, ThroughputConvergesToBottleneck)
{
    // 2 GB/s then 1 GB/s: steady state is bottleneck-bound.
    std::vector<Stage> stages = {{"fast", 2.0, 0}, {"slow", 1.0, 0}};
    PipelineResult r = runPipeline(stages, 1'000'000, 10'000);
    // 100 chunks x 10 us at the slow stage + one fast-stage fill.
    EXPECT_NEAR(double(r.total_time), 1'000'000.0 + 5'000.0, 100.0);
    EXPECT_EQ(r.bottleneck_stage, 1u);
}

TEST(Pipeline, FillTimeIsSumOfStages)
{
    std::vector<Stage> stages = {{"a", 1.0, 10}, {"b", 1.0, 20}};
    PipelineResult r = runPipeline(stages, 100, 100);
    EXPECT_EQ(r.fill_time, (10u + 100) + (20u + 100));
}

TEST(Pipeline, SmallerChunksHideLatencyBetter)
{
    std::vector<Stage> stages = {{"a", 1.0, 0}, {"b", 1.0, 0}};
    PipelineResult coarse = runPipeline(stages, 1'000'000, 1'000'000);
    PipelineResult fine = runPipeline(stages, 1'000'000, 10'000);
    EXPECT_LT(fine.total_time, coarse.total_time);
}

TEST(Pipeline, RaggedLastChunk)
{
    PipelineResult r = runPipeline({{"x", 1.0, 0}}, 250, 100);
    EXPECT_EQ(r.total_time, 250u);
}

// --- FlexGen ----------------------------------------------------------------

TEST(FlexGen, SsdSpeedMatchesPaperOpt67)
{
    FlexGenConfig cfg;
    cfg.placement = FlexGenPlacement::Ssd;
    auto r = flexgenDecode(llm::opt6_7b(),
                           llm::QuantSpec::of(llm::QuantMode::W8A8), cfg);
    // Paper Fig 9a: 0.8 token/s.
    EXPECT_GT(r.tokens_per_s, 0.5);
    EXPECT_LT(r.tokens_per_s, 1.2);
}

TEST(FlexGen, DramSpeedMatchesPaperOpt67)
{
    FlexGenConfig cfg;
    cfg.placement = FlexGenPlacement::Dram;
    auto r = flexgenDecode(llm::opt6_7b(),
                           llm::QuantSpec::of(llm::QuantMode::W8A8), cfg);
    // Paper Fig 9a: 3.5 token/s.
    EXPECT_GT(r.tokens_per_s, 2.5);
    EXPECT_LT(r.tokens_per_s, 4.5);
}

TEST(FlexGen, SpeedScalesInverselyWithModelSize)
{
    FlexGenConfig cfg;
    double prev = 1e9;
    for (const auto &m : llm::optFamily()) {
        auto r = flexgenDecode(
            m, llm::QuantSpec::of(llm::QuantMode::W8A8), cfg);
        EXPECT_LT(r.tokens_per_s, prev) << m.name;
        prev = r.tokens_per_s;
    }
}

TEST(FlexGen, SsdPathAmplifiesTransfers3x)
{
    FlexGenConfig cfg;
    auto quant = llm::QuantSpec::of(llm::QuantMode::W8A8);
    llm::ModelConfig m = llm::opt6_7b();
    auto r = flexgenDecode(m, quant, cfg);
    const double weights =
        double(quant.weightBytes(m.decodeWeightParams()));
    EXPECT_NEAR(double(r.transfer_bytes) / weights, 3.0, 0.2);
}

TEST(FlexGen, DramPlacementIsFasterAndMovesLess)
{
    auto quant = llm::QuantSpec::of(llm::QuantMode::W8A8);
    FlexGenConfig ssd;
    FlexGenConfig dram;
    dram.placement = FlexGenPlacement::Dram;
    llm::ModelConfig m = llm::opt13b();
    auto a = flexgenDecode(m, quant, ssd);
    auto b = flexgenDecode(m, quant, dram);
    EXPECT_GT(b.tokens_per_s, a.tokens_per_s * 3.0);
    EXPECT_LT(b.transfer_bytes, a.transfer_bytes);
    EXPECT_LT(b.energy_j, a.energy_j);
}

TEST(FlexGen, EnergyMatchesPaperBallpark)
{
    // Fig 16b: ~1.6 J/token for OPT-6.7B on FlexGen-SSD.
    FlexGenConfig cfg;
    auto r = flexgenDecode(llm::opt6_7b(),
                           llm::QuantSpec::of(llm::QuantMode::W8A8), cfg);
    EXPECT_GT(r.energy_j, 1.0);
    EXPECT_LT(r.energy_j, 2.4);
}

// --- MLC-LLM ----------------------------------------------------------------

TEST(MlcLlm, SevenBRunsNearPaperSpeed)
{
    auto r = mlcLlmDecode(llm::llama2_7b());
    EXPECT_FALSE(r.oom);
    // Paper Fig 9b: 7.58 token/s on the Snapdragon 8 Gen 2.
    EXPECT_GT(r.tokens_per_s, 6.0);
    EXPECT_LT(r.tokens_per_s, 9.0);
}

TEST(MlcLlm, ThirteenBAndSeventyBOom)
{
    EXPECT_TRUE(mlcLlmDecode(llm::llama2_13b()).oom);
    EXPECT_TRUE(mlcLlmDecode(llm::llama2_70b()).oom);
}

TEST(MlcLlm, BiggerDramAvoidsOom)
{
    MlcLlmConfig cfg;
    cfg.usable_dram_bytes = 64ull * 1000 * 1000 * 1000;
    auto r = mlcLlmDecode(llm::llama2_13b(), cfg);
    EXPECT_FALSE(r.oom);
    EXPECT_GT(r.tokens_per_s, 0.0);
}

// --- roofline ---------------------------------------------------------------

TEST(Roofline, DecodeAiIsTwo)
{
    auto quant = llm::QuantSpec::of(llm::QuantMode::W8A8);
    double ai = llmDecodeAi(llm::opt6_7b(), quant, 512);
    EXPECT_NEAR(ai, 2.0, 0.05);
}

TEST(Roofline, PrefillAiScalesWithPromptLength)
{
    auto quant = llm::QuantSpec::of(llm::QuantMode::W8A8);
    double a = llmPrefillAi(llm::opt6_7b(), quant, 64);
    double b = llmPrefillAi(llm::opt6_7b(), quant, 512);
    EXPECT_GT(b, a * 4.0);
    EXPECT_NEAR(a, 2.0 * 64, 15.0);
}

TEST(Roofline, OtherWorkloadsFarExceedDecode)
{
    auto quant = llm::QuantSpec::of(llm::QuantMode::W8A8);
    const double decode = llmDecodeAi(llm::opt6_7b(), quant, 512);
    EXPECT_GT(vgg16Ai(1) / decode, 30.0);
    EXPECT_GT(bertBaseAi(8, 256) / decode, 30.0);
    EXPECT_GT(dlrmAi(64) / decode, 10.0);
}

TEST(Roofline, DeviceRidgePoints)
{
    for (const auto &d : referenceDevices()) {
        EXPECT_GE(d.ridge(), 50.0) << d.name;
        // At AI=2, every reference device is severely memory bound.
        EXPECT_LT(d.attainableGops(2.0) / (d.tops * 1000.0), 0.05)
            << d.name;
    }
}

TEST(Roofline, AttainablePerformanceSaturates)
{
    Device a100{"A100", 624.0, 2039.0};
    EXPECT_DOUBLE_EQ(a100.attainableGops(1e9), 624000.0);
    EXPECT_DOUBLE_EQ(a100.attainableGops(1.0), 2039.0);
}

TEST(Roofline, ReductionRatioGapIsHuge)
{
    auto points = reductionRatios(4096);
    ASSERT_FALSE(points.empty());
    EXPECT_EQ(points[0].reduction_ratio, 4096.0);
    double max_other = 0.0;
    for (std::size_t i = 1; i < points.size(); ++i)
        max_other = std::max(max_other, points[i].reduction_ratio);
    // Fig 1b: LLM GeMV is ~100x beyond any prior ISC workload.
    EXPECT_GT(points[0].reduction_ratio / max_other, 50.0);
}

} // namespace
} // namespace camllm::baselines
