/**
 * @file
 * Unit + property tests for the hardware-aware tiling planner
 * (paper Section V).
 */

#include <gtest/gtest.h>

#include <cmath>

#include "core/presets.h"
#include "core/tiling.h"

namespace camllm::core {
namespace {

llm::QuantSpec
w8()
{
    return llm::QuantSpec::of(llm::QuantMode::W8A8);
}

TEST(Tiling, PaperOptimalShapeForS)
{
    // Cam-LLM-S: 8 channels x 4 cores, 16 KB pages -> 256 x 2048,
    // exactly the shape the paper's Fig 13 calls optimal.
    CamConfig cfg = presetS();
    TilingPlanner planner(cfg.flash, w8(), cfg.tilingOptions());
    TilePlan p = planner.plan(16384, 16384);
    EXPECT_EQ(p.tile.h, 256u);
    EXPECT_EQ(p.tile.w, 2048u);
    EXPECT_EQ(p.hpc, 64u);
    EXPECT_EQ(p.wc, 256u);
    EXPECT_DOUBLE_EQ(p.page_utilization, 1.0);
}

TEST(Tiling, PaperOptimalShapeForL)
{
    // Cam-LLM-L: 32 channels x 16 cores -> 512 x 16384 unclamped.
    CamConfig cfg = presetL();
    TilingPlanner planner(cfg.flash, w8(), cfg.tilingOptions());
    TilePlan p = planner.plan(32768, 32768);
    EXPECT_EQ(p.tile.h, 512u);
    EXPECT_EQ(p.tile.w, 16384u);
}

TEST(Tiling, ClampsToNarrowMatrices)
{
    // OPT-6.7B (d=4096) on L: ideal Wreq = 16384 > 4096 must clamp.
    CamConfig cfg = presetL();
    TilingPlanner planner(cfg.flash, w8(), cfg.tilingOptions());
    TilePlan p = planner.plan(4096, 4096);
    EXPECT_EQ(p.wc, 128u); // 4096 / 32 channels
    EXPECT_EQ(p.hpc, 128u);
    EXPECT_DOUBLE_EQ(p.page_utilization, 1.0);
}

TEST(Tiling, OddWidthsLosePageUtilization)
{
    // OPT-13B (d=5120) on L: wc=160 -> hpc=102, ~99.6% page use.
    CamConfig cfg = presetL();
    TilingPlanner planner(cfg.flash, w8(), cfg.tilingOptions());
    TilePlan p = planner.plan(5120, 5120);
    EXPECT_EQ(p.wc, 160u);
    EXPECT_EQ(p.hpc, 102u);
    EXPECT_LT(p.page_utilization, 1.0);
    EXPECT_GT(p.page_utilization, 0.95);
}

TEST(Tiling, AmGmOptimalityProperty)
{
    // The planner's shape must minimize per-tile traffic among all
    // page-filling shapes (AM-GM argument of Section V-A).
    CamConfig cfg = presetS();
    TilingPlanner planner(cfg.flash, w8(), cfg.tilingOptions());
    const std::uint64_t big = 1 << 20;
    TilePlan best = planner.plan(big, big);
    const std::uint32_t ch = cfg.flash.geometry.channels;
    const double best_trans = best.transBytesPerTile(ch) /
                              (double(best.wc) * best.hpc);

    for (std::uint32_t wc = 16; wc <= 16384; wc *= 2) {
        const std::uint32_t hpc = 16384 / wc;
        TilingOptions forced = cfg.tilingOptions();
        forced.forced_tile =
            TileShape{hpc * cfg.flash.geometry.coresPerChannel(),
                      wc * ch};
        TilingPlanner alt(cfg.flash, w8(), forced);
        TilePlan p = alt.plan(big, big);
        const double trans = p.transBytesPerTile(ch) /
                             (double(p.wc) * p.hpc);
        EXPECT_GE(trans, best_trans * 0.999)
            << "wc=" << wc << " beats the planner";
    }
}

TEST(Tiling, AlphaWithinUnitInterval)
{
    CamConfig cfg = presetS();
    TilingPlanner planner(cfg.flash, w8(), cfg.tilingOptions());
    TilePlan p = planner.plan(4096, 4096);
    EXPECT_GT(p.alpha, 0.0);
    EXPECT_LT(p.alpha, 1.0);
}

TEST(Tiling, AlphaMatchesPaperBallparkForS)
{
    // Earlier analysis: Cam-LLM-S splits ~65-75% of weights to flash.
    CamConfig cfg = presetS();
    TilingPlanner planner(cfg.flash, w8(), cfg.tilingOptions());
    TilePlan p = planner.plan(4096, 4096);
    EXPECT_GT(p.alpha, 0.60);
    EXPECT_LT(p.alpha, 0.80);
}

TEST(Tiling, RowSplitConserved)
{
    CamConfig cfg = presetS();
    TilingPlanner planner(cfg.flash, w8(), cfg.tilingOptions());
    for (std::uint64_t rows : {4096ull, 5120ull, 11008ull, 50272ull}) {
        TilePlan p = planner.plan(rows, 4096);
        EXPECT_EQ(p.flash_rows + p.npu_rows, rows);
        EXPECT_EQ(p.flash_rows % p.hpc, 0u);
    }
}

TEST(Tiling, NoTilingModeSendsAllRowsToFlash)
{
    CamConfig cfg = presetS();
    cfg.hybrid_tiling = false;
    TilingPlanner planner(cfg.flash, w8(), cfg.tilingOptions());
    TilePlan p = planner.plan(4100, 4096); // ragged rows
    EXPECT_DOUBLE_EQ(p.alpha, 1.0);
    EXPECT_EQ(p.flash_rows, 4100u);
    EXPECT_EQ(p.npu_rows, 0u);
}

TEST(Tiling, RateRcIsSmall)
{
    // The paper reports <= 6% channel duty with rc requests alone.
    CamConfig cfg = presetS();
    TilingPlanner planner(cfg.flash, w8(), cfg.tilingOptions());
    TilePlan p = planner.plan(4096, 4096);
    EXPECT_LT(p.rate_rc, 0.10);
    EXPECT_GT(p.rate_rc, 0.005);
}

TEST(Tiling, W4DoublesElementsPerPage)
{
    CamConfig cfg = presetS();
    TilingPlanner p8(cfg.flash, w8(), cfg.tilingOptions());
    TilingPlanner p4(cfg.flash, llm::QuantSpec::of(llm::QuantMode::W4A16),
                     cfg.tilingOptions());
    EXPECT_EQ(p4.elemsPerPage(), 2 * p8.elemsPerPage());
}

TEST(Tiling, ForcedPaperShapes)
{
    // The three shapes of Fig 13 on Cam-LLM-S all fill a page.
    CamConfig cfg = presetS();
    for (auto [h, w] : {std::pair{256u, 2048u}, {128u, 4096u},
                        {4096u, 128u}}) {
        TilingOptions o = cfg.tilingOptions();
        o.forced_tile = TileShape{h, w};
        TilingPlanner planner(cfg.flash, w8(), o);
        TilePlan p = planner.plan(16384, 16384);
        EXPECT_EQ(std::uint64_t(p.wc) * p.hpc, 16384u)
            << h << "x" << w;
    }
}

TEST(Tiling, ColTileCountCoversMatrix)
{
    CamConfig cfg = presetM();
    TilingPlanner planner(cfg.flash, w8(), cfg.tilingOptions());
    TilePlan p = planner.plan(8192, 11008);
    EXPECT_GE(std::uint64_t(p.n_col_tiles) * p.tile.w, 11008u);
    EXPECT_LT(std::uint64_t(p.n_col_tiles - 1) * p.tile.w, 11008u);
}

TEST(Tiling, MoreCoresShrinkAlphaTowardFlash)
{
    // Adding chips multiplies on-die compute, so the flash share must
    // grow (this is the Fig 15 saturation mechanism).
    auto alpha_for = [&](std::uint32_t chips) {
        CamConfig cfg = presetCustom(8, chips);
        TilingPlanner planner(cfg.flash, w8(), cfg.tilingOptions());
        return planner.plan(1 << 16, 1 << 16).alpha;
    };
    EXPECT_LT(alpha_for(1), alpha_for(4));
    EXPECT_LT(alpha_for(4), alpha_for(16));
}

TEST(Tiling, TinyMatrixStillPlans)
{
    CamConfig cfg = presetS();
    TilingPlanner planner(cfg.flash, w8(), cfg.tilingOptions());
    TilePlan p = planner.plan(64, 64);
    EXPECT_GE(p.wc, 1u);
    EXPECT_GE(p.hpc, 1u);
    EXPECT_EQ(p.flash_rows + p.npu_rows, 64u);
}

TEST(PlanCache, MemoizesAndMatchesPlanner)
{
    CamConfig cfg = presetM();
    TilingPlanner planner(cfg.flash, w8(), cfg.tilingOptions());
    PlanCache cache(cfg.flash, w8(), cfg.tilingOptions());

    const TilePlan &a = cache.planFor(4096, 4096);
    const TilePlan &b = cache.planFor(4096, 4096);
    EXPECT_EQ(&a, &b); // stable reference, computed once
    EXPECT_EQ(cache.size(), 1u);

    cache.planFor(11008, 4096);
    EXPECT_EQ(cache.size(), 2u);

    const TilePlan fresh = planner.plan(4096, 4096);
    EXPECT_EQ(a.wc, fresh.wc);
    EXPECT_EQ(a.hpc, fresh.hpc);
    EXPECT_EQ(a.flash_rows, fresh.flash_rows);
    EXPECT_EQ(a.npu_rows, fresh.npu_rows);
    EXPECT_DOUBLE_EQ(a.alpha, fresh.alpha);
}

TEST(PlanCache, DistinguishesRowsFromCols)
{
    CamConfig cfg = presetM();
    PlanCache cache(cfg.flash, w8(), cfg.tilingOptions());
    const TilePlan &tall = cache.planFor(16384, 4096);
    const TilePlan &wide = cache.planFor(4096, 16384);
    EXPECT_EQ(cache.size(), 2u);
    EXPECT_EQ(tall.rows, 16384u);
    EXPECT_EQ(wide.rows, 4096u);
}

} // namespace
} // namespace camllm::core
