/**
 * @file
 * Tests for the extension features beyond the paper's headline
 * evaluation: the prefill phase, whole-exchange generation, W2A16
 * quantization, the systolic-array utilization model, and the flash
 * retention/aging model.
 */

#include <gtest/gtest.h>

#include "core/engine.h"
#include "core/presets.h"
#include "ecc/retention.h"
#include "llm/model_config.h"
#include "llm/opgraph.h"
#include "npu/systolic.h"

namespace camllm {
namespace {

using core::CamConfig;
using core::CambriconEngine;
using core::TokenStats;

// --- prefill graph -----------------------------------------------------------

TEST(PrefillGraph, SameWeightsAsDecode)
{
    llm::ModelConfig m = llm::opt6_7b();
    auto q = llm::QuantSpec::of(llm::QuantMode::W8A8);
    auto d = llm::buildDecodeGraph(m, 256, q, m.n_layers);
    auto p = llm::buildPrefillGraph(m, 256, q, m.n_layers);
    EXPECT_EQ(d.totalWeightElems(), p.totalWeightElems());
}

TEST(PrefillGraph, GemvComputeScaleIsPromptLength)
{
    llm::ModelConfig m = llm::opt6_7b();
    auto q = llm::QuantSpec::of(llm::QuantMode::W8A8);
    auto g = llm::buildPrefillGraph(m, 128, q, 2);
    for (const auto &op : g.ops) {
        if (op.kind != llm::OpKind::GemvWeight)
            continue;
        if (op.name == "lm_head")
            EXPECT_DOUBLE_EQ(op.npu_compute_scale, 1.0);
        else
            EXPECT_DOUBLE_EQ(op.npu_compute_scale, 128.0);
    }
}

TEST(PrefillGraph, AttentionFlopsQuadratic)
{
    llm::ModelConfig m = llm::opt6_7b();
    auto q = llm::QuantSpec::of(llm::QuantMode::W8A8);
    auto g1 = llm::buildPrefillGraph(m, 128, q, 1);
    auto g2 = llm::buildPrefillGraph(m, 256, q, 1);
    auto attn_flops = [](const llm::DecodeGraph &g) {
        double f = 0.0;
        for (const auto &op : g.ops)
            if (op.kind == llm::OpKind::KvLoadCompute)
                f += op.flops;
        return f;
    };
    // Causal attention sums seq*(seq+1)/2 MACs per dimension, so
    // doubling the prompt scales flops by the exact quadratic-ish
    // ratio 256*257 / (128*129) ~= 3.98 (asymptotically 4x).
    EXPECT_DOUBLE_EQ(attn_flops(g2) / attn_flops(g1),
                     (256.0 * 257.0) / (128.0 * 129.0));
}

// --- prefill engine -----------------------------------------------------------

TEST(PrefillEngine, MuchFasterPerTokenThanDecode)
{
    // Prefill amortizes one weight pass over the whole prompt.
    CamConfig cfg = core::presetS();
    CambriconEngine e(cfg, llm::opt6_7b());
    TokenStats dec = e.decodeToken();
    TokenStats pre = e.prefill(256);
    EXPECT_GT(pre.tokens_per_s, dec.tokens_per_s * 20.0);
}

TEST(PrefillEngine, NoInFlashComputing)
{
    CamConfig cfg = core::presetS();
    CambriconEngine e(cfg, llm::opt6_7b());
    TokenStats pre = e.prefill(64);
    EXPECT_EQ(pre.weight_bytes_flash, 0u);
    EXPECT_EQ(pre.pages_computed, 0u);
    EXPECT_GT(pre.pages_read, 100u);
}

TEST(PrefillEngine, LongPromptsBecomeComputeBound)
{
    // Short prompts are stream-bound (time ~ flat); very long prompts
    // are NPU-compute-bound (time ~ linear in prompt).
    CamConfig cfg = core::presetL();
    CambriconEngine e(cfg, llm::opt6_7b());
    const Tick t256 = e.prefill(256).token_time;
    const Tick t4k = e.prefill(4096).token_time;
    EXPECT_GT(double(t4k), 4.0 * double(t256));
    EXPECT_LT(double(t4k), 32.0 * double(t256));
}

TEST(PrefillEngine, StreamBoundAtShortPrompts)
{
    // On the small config the weight stream dominates prefill: the
    // prompt-64 and prompt-16 latencies are nearly equal.
    CamConfig cfg = core::presetS();
    CambriconEngine e(cfg, llm::opt6_7b());
    const Tick a = e.prefill(16).token_time;
    const Tick b = e.prefill(64).token_time;
    EXPECT_LT(double(b) / double(a), 1.3);
}

// --- generate -------------------------------------------------------------------

TEST(Generate, TotalsAreConsistent)
{
    CamConfig cfg = core::presetM();
    CambriconEngine e(cfg, llm::llama2_7b());
    core::GenerateStats g = e.generate(128, 32);
    EXPECT_GT(g.total_time, g.prefill.token_time);
    const Tick reply = g.total_time - g.prefill.token_time;
    EXPECT_GE(reply, 32 * std::min(g.first_decode.token_time,
                                   g.last_decode.token_time));
    EXPECT_LE(reply, 32 * std::max(g.first_decode.token_time,
                                   g.last_decode.token_time));
}

TEST(Generate, LongerContextSlowsLaterTokens)
{
    CamConfig cfg = core::presetL();
    CambriconEngine e(cfg, llm::llama2_7b());
    core::GenerateStats g = e.generate(64, 1024);
    EXPECT_GT(g.last_decode.token_time, g.first_decode.token_time);
    EXPECT_GT(g.last_decode.dram_bytes, g.first_decode.dram_bytes);
}

// --- W2A16 ------------------------------------------------------------------------

TEST(W2A16, SpecAndLabel)
{
    auto q = llm::QuantSpec::of(llm::QuantMode::W2A16);
    EXPECT_EQ(q.weight_bits, 2u);
    EXPECT_EQ(q.act_bits, 16u);
    EXPECT_EQ(q.elemsPerPage(16384), 65536u);
    EXPECT_STREQ(q.label(), "W2A16");
    EXPECT_EQ(q.weightBytes(1000), 250u);
}

TEST(W2A16, FasterThanW4FasterThanW8)
{
    llm::ModelConfig m = llm::opt30b();
    auto speed = [&](llm::QuantMode mode) {
        CamConfig cfg = core::presetS();
        cfg.quant = mode;
        return CambriconEngine(cfg, m).decodeToken().tokens_per_s;
    };
    const double w8 = speed(llm::QuantMode::W8A8);
    const double w4 = speed(llm::QuantMode::W4A16);
    const double w2 = speed(llm::QuantMode::W2A16);
    EXPECT_GT(w4, w8);
    EXPECT_GT(w2, w4);
    EXPECT_LT(w2, w8 * 4.5); // bounded by the 4x weight shrink + slack
}

// --- systolic model ---------------------------------------------------------------

TEST(Systolic, PeakMatchesPaperTops)
{
    npu::SystolicParams p;
    EXPECT_NEAR(p.peakTops(), 2.048, 0.001);
}

TEST(Systolic, GemvRunsAtFullLaneWidth)
{
    // Weight-streaming dataflow keeps GeMV near peak.
    npu::SystolicParams p;
    auto e = npu::estimateGemm(p, 4096, 4096, 1);
    EXPECT_GT(e.utilization, 0.95);
    EXPECT_NEAR(e.effective_tops, p.peakTops(), 0.15);
}

TEST(Systolic, BatchedGemmApproachesPeak)
{
    npu::SystolicParams p;
    auto e = npu::estimateGemm(p, 4096, 4096, 512);
    EXPECT_GT(e.utilization, 0.7);
}

TEST(Systolic, TinyMatrixWastesTheArray)
{
    npu::SystolicParams p;
    auto e = npu::estimateGemm(p, 8, 8, 1);
    EXPECT_LT(e.utilization, 0.25);
}

TEST(Systolic, NeverTheDecodeBottleneck)
{
    // The validation behind the engine's rate model: at 2 TOPS the
    // array chews a 16 KB page (32 Kops) far faster than tR.
    npu::SystolicParams p;
    auto e = npu::estimateGemm(p, 64, 256, 1); // one page of weights
    EXPECT_LT(e.time, Tick(30 * kUs) / 100);
}

TEST(Systolic, CyclesMonotoneInWork)
{
    npu::SystolicParams p;
    auto a = npu::estimateGemm(p, 1024, 1024, 1);
    auto b = npu::estimateGemm(p, 2048, 1024, 1);
    auto c = npu::estimateGemm(p, 2048, 2048, 4);
    EXPECT_GT(b.cycles, a.cycles);
    EXPECT_GT(c.cycles, b.cycles);
}

// --- retention model ---------------------------------------------------------------

TEST(Retention, AnchorPoints)
{
    // Fresh part after hours: ~1e-4 (paper cites Zhao et al.).
    const double fresh = ecc::retentionBer(24.0, 0.0);
    EXPECT_GT(fresh, 3e-5);
    EXPECT_LT(fresh, 3e-4);

    // Heavily worn part: >= 1e-2 (paper cites Cai et al.).
    const double worn = ecc::retentionBer(24.0 * 365, 6000.0);
    EXPECT_GT(worn, 1e-2);
}

TEST(Retention, MonotoneInTimeAndWear)
{
    double prev = 0.0;
    for (double h : {1.0, 10.0, 100.0, 1000.0, 10000.0}) {
        double b = ecc::retentionBer(h, 500.0);
        EXPECT_GT(b, prev);
        prev = b;
    }
    prev = 0.0;
    for (double pe : {0.0, 1000.0, 3000.0, 9000.0}) {
        double b = ecc::retentionBer(100.0, pe);
        EXPECT_GT(b, prev);
        prev = b;
    }
}

TEST(Retention, ClampedBelowHalf)
{
    EXPECT_LT(ecc::retentionBer(1e12, 1e9), 0.5);
}

} // namespace
} // namespace camllm
