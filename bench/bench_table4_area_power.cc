/**
 * @file
 * Table IV: area and power of the on-die compute core from the
 * component model calibrated to the paper's 65 nm synthesis.
 */

#include <iostream>

#include "bench_util.h"
#include "core/area_model.h"

using namespace camllm;

int
main()
{
    bench::banner("Table IV compute-core area and power");
    core::AreaReport r = core::computeCoreArea();

    Table t("Table IV: area and power overhead of the compute core");
    t.header({"component", "area (um^2)", "power (uW)"});
    t.row({"Error Correction Unit", Table::fmt(r.ecu_um2, 1),
           Table::fmt(r.ecu_uw, 1)});
    t.row({"PEs", Table::fmt(r.pes_um2, 1), Table::fmt(r.pes_uw, 1)});
    t.row({"Input Buffer and Output Buffer",
           Table::fmt(r.buffers_um2, 1), Table::fmt(r.buffers_uw, 1)});
    t.row({"Total Compute Core", Table::fmt(r.totalUm2(), 1),
           Table::fmt(r.totalUw(), 1)});
    t.row({"Overhead", Table::fmtPercent(r.area_overhead),
           Table::fmtPercent(r.power_overhead)});
    t.print(std::cout);

    std::cout
        << "\nNote: the paper prints a total area of 39813.5 um^2,"
           " smaller than its own\nbuffer line item (58755.1 um^2);"
           " the component sum gives 59813.5 um^2, which\nis what this"
           " model reproduces (power matches the paper's own sum).\n";
    return 0;
}
