/**
 * @file
 * Figure 9 (the headline result): end-to-end decode speed of
 * Cambricon-LLM S/M/L against (a) FlexGen-SSD / FlexGen-DRAM on the
 * OPT family and (b) MLC-LLM on the Llama2 family. Also prints the
 * Table II / Table III configuration summaries.
 */

#include <chrono>
#include <iostream>

#include "baselines/flexgen.h"
#include "baselines/mlc_llm.h"
#include "bench_util.h"
#include "json_out.h"

using namespace camllm;

namespace {

void
printConfigs()
{
    Table t2("Table II: Cambricon-LLM configurations");
    t2.header({"config", "channels", "chips/ch", "cores/ch",
               "page", "tR", "bus"});
    for (const auto &cfg : bench::presets()) {
        const auto &g = cfg.flash.geometry;
        t2.row({cfg.name, Table::fmtInt(g.channels),
                Table::fmtInt(g.chips_per_channel),
                Table::fmtInt(g.coresPerChannel()),
                Table::fmtInt(g.page_bytes / 1024) + " KB",
                Table::fmtInt(cfg.flash.timing.t_read / 1000) + " us",
                Table::fmtInt(cfg.flash.timing.bus_mts) + " MT/s x8"});
    }
    t2.print(std::cout);

    Table t3("Table III: baseline configurations");
    t3.header({"baseline", "quant", "weights", "key rates"});
    t3.row({"FlexGen-SSD", "8 bit", "NVMe SSD",
            "SSD ~5.5 GB/s, PCIe4 ~25 GB/s"});
    t3.row({"FlexGen-DRAM", "8 bit", "host DRAM", "PCIe4 ~25 GB/s"});
    t3.row({"MLC-LLM", "4 bit", "phone LPDDR",
            "eff. ~26.5 GB/s, ~6 GB usable"});
    t3.print(std::cout);
}

} // namespace

int
main()
{
    const auto wall0 = std::chrono::steady_clock::now();
    bench::banner("Fig 9 end-to-end decode speed (token/s)");
    printConfigs();

    const auto quant = llm::QuantSpec::of(llm::QuantMode::W8A8);
    bench::BenchJson json;
    json.addString("bench", "bench_fig09_end_to_end");

    // Every (preset, model) co-simulation of both subfigures in one
    // parallel pass; rows are rebuilt from the order-preserving
    // results below.
    const auto opt_models = llm::optFamily();
    const auto llama_models = llm::llamaFamily();
    const std::string preset_l_name = core::presetL().name;
    std::vector<bench::SweepJob> jobs;
    // Indices of the Cam-LLM-L points the headline table reuses,
    // recorded while building the job list so preset/model reorders
    // cannot silently skew the reported speedups.
    std::size_t idx_l_opt67 = 0, idx_l_opt66 = 0, idx_l_llama70 = 0;
    const auto note = [&](const core::CamConfig &cfg,
                          const llm::ModelConfig &m) {
        if (cfg.name != preset_l_name)
            return;
        if (m.name == "OPT-6.7B")
            idx_l_opt67 = jobs.size() - 1;
        else if (m.name == "OPT-66B")
            idx_l_opt66 = jobs.size() - 1;
        else if (m.name == "Llama2-70B")
            idx_l_llama70 = jobs.size() - 1;
    };
    for (const auto &cfg : bench::presets())
        for (const auto &m : opt_models) {
            jobs.emplace_back(cfg, m);
            note(cfg, m);
        }
    for (const auto &cfg : bench::presets())
        for (const auto &m : llama_models) {
            jobs.emplace_back(cfg, m);
            note(cfg, m);
        }
    const auto stats = bench::runSweepMemo(jobs);
    for (std::size_t i = 0; i < jobs.size(); ++i)
        json.add(jobs[i].first.name + "." + jobs[i].second.name +
                     ".tokens_per_s",
                 stats[i].tokens_per_s);

    // --- Fig 9(a): OPT family vs FlexGen --------------------------------
    Table a("Fig 9(a): decode speed on OPT (token/s)");
    a.header({"system", "OPT-6.7B", "OPT-13B", "OPT-30B", "OPT-66B"});
    std::size_t j = 0;
    for (const auto &cfg : bench::presets()) {
        std::vector<std::string> row = {cfg.name};
        for (std::size_t mi = 0; mi < opt_models.size(); ++mi)
            row.push_back(Table::fmt(stats[j++].tokens_per_s, 2));
        a.row(row);
    }
    for (auto placement : {baselines::FlexGenPlacement::Ssd,
                           baselines::FlexGenPlacement::Dram}) {
        baselines::FlexGenConfig fg;
        fg.placement = placement;
        std::vector<std::string> row = {
            placement == baselines::FlexGenPlacement::Ssd
                ? "Flexgen-ssd"
                : "Flexgen-DRAM"};
        for (const auto &m : llm::optFamily())
            row.push_back(Table::fmt(
                baselines::flexgenDecode(m, quant, fg).tokens_per_s, 2));
        a.row(row);
    }
    a.print(std::cout);

    // --- Fig 9(b): Llama2 family vs MLC-LLM ------------------------------
    Table b("Fig 9(b): decode speed on Llama2 (token/s)");
    b.header({"system", "Llama2-7B", "Llama2-13B", "Llama2-70B"});
    for (const auto &cfg : bench::presets()) {
        std::vector<std::string> row = {cfg.name};
        for (std::size_t mi = 0; mi < llama_models.size(); ++mi)
            row.push_back(Table::fmt(stats[j++].tokens_per_s, 2));
        b.row(row);
    }
    {
        std::vector<std::string> row = {"MLC-LLM (4-bit)"};
        for (const auto &m : llm::llamaFamily()) {
            auto r = baselines::mlcLlmDecode(m);
            row.push_back(r.oom ? "OOM" : Table::fmt(r.tokens_per_s, 2));
        }
        b.row(row);
    }
    b.print(std::cout);

    // --- headline ratios ---------------------------------------------------
    baselines::FlexGenConfig ssd;
    const double fg67 =
        baselines::flexgenDecode(llm::opt6_7b(), quant, ssd)
            .tokens_per_s;
    const double fg66 =
        baselines::flexgenDecode(llm::opt66b(), quant, ssd).tokens_per_s;
    const double l67 = stats[idx_l_opt67].tokens_per_s;
    const double l66 = stats[idx_l_opt66].tokens_per_s;
    const double l70 = stats[idx_l_llama70].tokens_per_s;

    Table h("Headline speedups vs FlexGen-SSD");
    h.header({"comparison", "measured", "paper"});
    h.row({"Cam-LLM-L / FlexGen-SSD on OPT-6.7B",
           Table::fmt(l67 / fg67, 1) + "x", "44.8x"});
    h.row({"Cam-LLM-L / FlexGen-SSD on OPT-66B",
           Table::fmt(l66 / fg66, 1) + "x", "22.1x"});
    h.row({"Cam-LLM-L on Llama2-70B (token/s)", Table::fmt(l70, 2),
           "3.44"});
    h.print(std::cout);

    json.add("headline.camllm_l_over_flexgen_ssd_opt6_7b", l67 / fg67);
    json.add("headline.camllm_l_over_flexgen_ssd_opt66b", l66 / fg66);
    json.add("headline.camllm_l_llama2_70b_tokens_per_s", l70);
    json.add("sweep_threads",
             std::uint64_t(core::ParallelSweep::hardwareThreads()));
    json.add("wall_clock_s",
             std::chrono::duration<double>(
                 std::chrono::steady_clock::now() - wall0)
                 .count());
    const char *path = "BENCH_fig09.json";
    if (json.writeTo(path))
        std::cout << "\nwrote " << path << "\n";
    else
        std::cerr << "failed to write " << path << "\n";
    return 0;
}
