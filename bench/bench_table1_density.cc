/**
 * @file
 * Table I: storage density of DRAM vs NAND flash, plus the derived
 * area argument for the chiplet design (a 200 GB NAND chip fits in a
 * smartphone-SoC-class footprint).
 */

#include <iostream>

#include "bench_util.h"
#include "core/cost_model.h"

using namespace camllm;

int
main()
{
    bench::banner("Table I storage density");
    Table t("Table I: storage density of DRAM and NAND flash");
    t.header({"manufacturer", "type", "layers", "Gb/mm^2"});
    double best_flash = 0.0, best_dram = 0.0;
    for (const auto &e : core::storageDensityTable()) {
        t.row({e.manufacturer, e.type, e.layers,
               Table::fmt(e.gb_per_mm2, 2)});
        if (e.type == "Flash")
            best_flash = std::max(best_flash, e.gb_per_mm2);
        else
            best_dram = std::max(best_dram, e.gb_per_mm2);
    }
    t.print(std::cout);

    std::cout << "\nflash : DRAM density ratio = "
              << Table::fmt(best_flash / best_dram, 0)
              << "x (paper: ~two orders of magnitude)\n";

    // Area feasibility argument from Section III-B.
    const double gb_needed = 200.0 * 8.0; // 200 GB in Gb
    std::cout << "area of a 200 GB NAND chip at "
              << Table::fmt(best_flash, 1)
              << " Gb/mm^2: " << Table::fmt(gb_needed / best_flash, 0)
              << " mm^2 (paper: ~64 mm^2, smartphone SoC ~100 mm^2)\n";
    return 0;
}
