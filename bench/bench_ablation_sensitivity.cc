/**
 * @file
 * Design-choice sensitivity ablations beyond the paper's figures: how
 * decode speed responds to the page read time (tR), the slice
 * granularity, the read-compute tile window, the NPU weight buffer
 * (prefetch depth), and the per-grant command overhead. These are the
 * knobs DESIGN.md calls out as modeling assumptions; the sweeps show
 * which of them the headline results actually depend on.
 */

#include <iostream>

#include "bench_util.h"

using namespace camllm;

namespace {

/** One ablation table: a knob name plus its five config points. */
struct Block
{
    const char *title;
    const char *knob_col;
    std::vector<std::uint64_t> labels;
    std::vector<core::CamConfig> cfgs;
};

} // namespace

int
main()
{
    bench::banner("design-choice sensitivity (Cam-LLM-S, OPT-6.7B)");
    const llm::ModelConfig m = llm::opt6_7b();

    std::vector<Block> blocks;
    {
        Block b{"page read time tR (paper uses 30 us; cites a 20 us "
                "part)",
                "tR (us)", {}, {}};
        for (Tick tr : {20u, 25u, 30u, 40u, 60u}) {
            core::CamConfig cfg = core::presetS();
            cfg.flash.timing.t_read = tr * kUs;
            b.labels.push_back(tr);
            b.cfgs.push_back(cfg);
        }
        blocks.push_back(std::move(b));
    }
    {
        Block b{"slice granularity (Slice Control)", "slice (bytes)",
                {}, {}};
        for (std::uint32_t s : {512u, 1024u, 2048u, 4096u, 8192u}) {
            core::CamConfig cfg = core::presetS();
            cfg.flash.timing.slice_bytes = s;
            b.labels.push_back(s);
            b.cfgs.push_back(cfg);
        }
        blocks.push_back(std::move(b));
    }
    {
        Block b{"read-compute tile window (input-buffer credit)",
                "window", {}, {}};
        for (std::uint32_t w : {1u, 2u, 3u, 4u, 8u}) {
            core::CamConfig cfg = core::presetS();
            cfg.tile_window = w;
            b.labels.push_back(w);
            b.cfgs.push_back(cfg);
        }
        blocks.push_back(std::move(b));
    }
    {
        Block b{"NPU weight buffer (prefetch depth)", "buffer (MB)",
                {}, {}};
        for (std::uint32_t mb : {1u, 2u, 4u, 8u, 16u}) {
            core::CamConfig cfg = core::presetS();
            cfg.npu.weight_buffer_bytes = std::uint64_t(mb) << 20;
            b.labels.push_back(mb);
            b.cfgs.push_back(cfg);
        }
        blocks.push_back(std::move(b));
    }
    {
        Block b{"per-grant command overhead", "overhead (ns)", {}, {}};
        for (Tick ov : {0u, 50u, 100u, 200u, 500u}) {
            core::CamConfig cfg = core::presetS();
            cfg.flash.timing.grant_overhead = ov;
            b.labels.push_back(ov);
            b.cfgs.push_back(cfg);
        }
        blocks.push_back(std::move(b));
    }

    // Baseline plus every knob point in one parallel pass.
    std::vector<bench::SweepJob> jobs;
    jobs.emplace_back(core::presetS(), m);
    for (const Block &b : blocks)
        for (const core::CamConfig &cfg : b.cfgs)
            jobs.emplace_back(cfg, m);
    const auto stats = bench::runSweepMemo(jobs);

    const double base = stats[0].tokens_per_s;
    std::cout << "baseline: " << Table::fmt(base, 2) << " token/s\n\n";

    std::size_t j = 1;
    for (const Block &b : blocks) {
        Table t(b.title);
        t.header({b.knob_col, "token/s", "vs baseline"});
        for (std::size_t i = 0; i < b.cfgs.size(); ++i) {
            const double v = stats[j++].tokens_per_s;
            t.row({Table::fmtInt(b.labels[i]), Table::fmt(v, 2),
                   Table::fmtPercent(v / base - 1.0)});
        }
        t.print(std::cout);
    }

    std::cout << "\nReading: results are first-order in tR (flash is"
                 " the pacing resource), mildly\nsensitive to slice"
                 " size at the extremes, and robust to window, buffer"
                 " and\ncommand-overhead choices — the headline"
                 " numbers do not hinge on those knobs.\n";
    return 0;
}
