/**
 * @file
 * Design-choice sensitivity ablations beyond the paper's figures: how
 * decode speed responds to the page read time (tR), the slice
 * granularity, the read-compute tile window, the NPU weight buffer
 * (prefetch depth), and the per-grant command overhead. These are the
 * knobs DESIGN.md calls out as modeling assumptions; the sweeps show
 * which of them the headline results actually depend on.
 */

#include <iostream>

#include "bench_util.h"

using namespace camllm;

namespace {

double
speed(core::CamConfig cfg, const llm::ModelConfig &m)
{
    return bench::run(cfg, m).tokens_per_s;
}

} // namespace

int
main()
{
    bench::banner("design-choice sensitivity (Cam-LLM-S, OPT-6.7B)");
    const llm::ModelConfig m = llm::opt6_7b();
    const double base = speed(core::presetS(), m);
    std::cout << "baseline: " << Table::fmt(base, 2) << " token/s\n\n";

    {
        Table t("page read time tR (paper uses 30 us; cites a 20 us "
                "part)");
        t.header({"tR (us)", "token/s", "vs baseline"});
        for (Tick tr : {20u, 25u, 30u, 40u, 60u}) {
            core::CamConfig cfg = core::presetS();
            cfg.flash.timing.t_read = tr * kUs;
            double v = speed(cfg, m);
            t.row({Table::fmtInt(tr), Table::fmt(v, 2),
                   Table::fmtPercent(v / base - 1.0)});
        }
        t.print(std::cout);
    }
    {
        Table t("slice granularity (Slice Control)");
        t.header({"slice (bytes)", "token/s", "vs baseline"});
        for (std::uint32_t s : {512u, 1024u, 2048u, 4096u, 8192u}) {
            core::CamConfig cfg = core::presetS();
            cfg.flash.timing.slice_bytes = s;
            double v = speed(cfg, m);
            t.row({Table::fmtInt(s), Table::fmt(v, 2),
                   Table::fmtPercent(v / base - 1.0)});
        }
        t.print(std::cout);
    }
    {
        Table t("read-compute tile window (input-buffer credit)");
        t.header({"window", "token/s", "vs baseline"});
        for (std::uint32_t w : {1u, 2u, 3u, 4u, 8u}) {
            core::CamConfig cfg = core::presetS();
            cfg.tile_window = w;
            double v = speed(cfg, m);
            t.row({Table::fmtInt(w), Table::fmt(v, 2),
                   Table::fmtPercent(v / base - 1.0)});
        }
        t.print(std::cout);
    }
    {
        Table t("NPU weight buffer (prefetch depth)");
        t.header({"buffer (MB)", "token/s", "vs baseline"});
        for (std::uint32_t mb : {1u, 2u, 4u, 8u, 16u}) {
            core::CamConfig cfg = core::presetS();
            cfg.npu.weight_buffer_bytes = std::uint64_t(mb) << 20;
            double v = speed(cfg, m);
            t.row({Table::fmtInt(mb), Table::fmt(v, 2),
                   Table::fmtPercent(v / base - 1.0)});
        }
        t.print(std::cout);
    }
    {
        Table t("per-grant command overhead");
        t.header({"overhead (ns)", "token/s", "vs baseline"});
        for (Tick ov : {0u, 50u, 100u, 200u, 500u}) {
            core::CamConfig cfg = core::presetS();
            cfg.flash.timing.grant_overhead = ov;
            double v = speed(cfg, m);
            t.row({Table::fmtInt(ov), Table::fmt(v, 2),
                   Table::fmtPercent(v / base - 1.0)});
        }
        t.print(std::cout);
    }

    std::cout << "\nReading: results are first-order in tR (flash is"
                 " the pacing resource), mildly\nsensitive to slice"
                 " size at the extremes, and robust to window, buffer"
                 " and\ncommand-overhead choices — the headline"
                 " numbers do not hinge on those knobs.\n";
    return 0;
}
