/**
 * @file
 * Serving-grade benchmark of the unified scheduler: the default 70B
 * preset (Cam-LLM-L, Llama2-70B) measured three ways.
 *
 *  1. Continuous-batching decode throughput at batch limits 1..16
 *     (the PR 2 workload, unchanged keys) — and the same sweep with
 *     the shared-NPU occupancy model on, so the contention delta at
 *     batch 8-16 is recorded in the perf trajectory.
 *  2. A fixed arrival-driven SLO scenario (identical in --smoke and
 *     full runs; `slo_smoke.*` keys) — Poisson arrivals with real
 *     prompts served under FCFS whole-prompt prefill vs Sarathi-style
 *     chunked interleaving, reporting p50/p95/p99 TTFT and TBT.
 *  3. Full runs only: an arrival-rate sweep and a prefill chunk-size
 *     sweep showing how the SLO percentiles respond to load and to
 *     the chunk budget.
 *
 *  4. A KV capacity sweep (`--kv-sweep` for just this section): the
 *     same fixed arrival scenario served under shrinking paged-KV
 *     budgets, recording SLO percentiles, preemption/eviction counts
 *     and recompute volume per budget point (`kv_sweep.*` keys; the
 *     50%-budget point also runs in --smoke so CI diffs it).
 *
 * Emits BENCH_serving.json.
 *
 * Usage: bench_serving [--smoke] [--arrivals] [--kv-sweep]
 *   --smoke     CI subset: batches {1,4}, contended batch 4, the
 *               SLO smoke scenario and one KV budget point.
 *   --arrivals  arrival-driven sections only (skips batch sweeps).
 *   --kv-sweep  KV capacity sweep only.
 */

#include <chrono>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/arrivals.h"
#include "core/batch_engine.h"
#include "core/scheduler.h"
#include "core/sweep.h"
#include "json_out.h"

using namespace camllm;

namespace {

std::vector<core::RequestSpec>
mixedWorkload(std::size_t n_requests, std::uint32_t decode_tokens)
{
    // Long-context serving mix: attention DRAM stalls leave channel
    // bubbles a single stream cannot fill, which is exactly what
    // continuous batching recovers.
    const std::uint32_t ctx[] = {2048, 4096, 8192, 16384};
    std::vector<core::RequestSpec> reqs;
    reqs.reserve(n_requests);
    for (std::size_t i = 0; i < n_requests; ++i)
        reqs.push_back({ctx[i % 4], decode_tokens});
    return reqs;
}

std::vector<core::ServeRequest>
decodeOnly(const std::vector<core::RequestSpec> &reqs)
{
    std::vector<core::ServeRequest> out;
    out.reserve(reqs.size());
    for (const core::RequestSpec &r : reqs)
        out.push_back({0, r.context, r.decode_tokens, 0});
    return out;
}

void
addLatency(bench::BenchJson &json, const std::string &prefix,
           const core::LatencySummary &s)
{
    json.add(prefix + ".p50_ms", s.p50_ms);
    json.add(prefix + ".p95_ms", s.p95_ms);
    json.add(prefix + ".p99_ms", s.p99_ms);
    json.add(prefix + ".mean_ms", s.mean_ms);
}

void
sloRow(Table &t, const std::string &label, const core::ServeStats &s)
{
    t.row({label, Table::fmt(s.ttft.p50_ms, 0),
           Table::fmt(s.ttft.p95_ms, 0), Table::fmt(s.ttft.p99_ms, 0),
           Table::fmt(s.tbt.p50_ms, 0), Table::fmt(s.tbt.p95_ms, 0),
           Table::fmt(s.tbt.p99_ms, 0),
           Table::fmt(s.finite_run_tokens_per_s, 2),
           Table::fmtPercent(s.npu_array_util)});
}

void
addSlo(bench::BenchJson &json, const std::string &prefix,
       const core::ServeStats &s)
{
    addLatency(json, prefix + ".ttft", s.ttft);
    addLatency(json, prefix + ".tbt", s.tbt);
    json.add(prefix + ".finite_run_tokens_per_s",
             s.finite_run_tokens_per_s);
    json.add(prefix + ".npu_array_util", s.npu_array_util);
}

void
addKv(bench::BenchJson &json, const std::string &prefix,
      const core::ServeStats &s)
{
    addSlo(json, prefix, s);
    json.add(prefix + ".preemptions", std::uint64_t(s.preemptions));
    json.add(prefix + ".recompute_tokens", s.recompute_tokens);
    json.add(prefix + ".kv_blocks_total", s.kv_blocks_total);
    json.add(prefix + ".kv_blocks_high_water",
             s.kv_blocks_high_water);
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false, arrivals_only = false, kv_only = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--arrivals") == 0)
            arrivals_only = true;
        else if (std::strcmp(argv[i], "--kv-sweep") == 0)
            kv_only = true;
    }
    const auto wall0 = std::chrono::steady_clock::now();
    bench::banner("serving: continuous batching, NPU contention, "
                  "arrival-driven SLOs");

    const core::CamConfig cfg = core::presetL();
    const llm::ModelConfig model = llm::llama2_70b();
    const core::Scheduler sched(cfg, model);
    core::ParallelSweep sweep;

    bench::BenchJson json;
    json.addString("bench", "bench_serving");
    json.addString("preset", cfg.name);
    json.addString("model", model.name);

    if (!arrivals_only && !kv_only) {
        const std::vector<core::RequestSpec> reqs =
            mixedWorkload(smoke ? 8 : 16, 1);
        const std::vector<std::uint32_t> batches =
            smoke ? std::vector<std::uint32_t>{1, 4}
                  : std::vector<std::uint32_t>{1, 2, 4, 8, 16};
        json.add("requests", std::uint64_t(reqs.size()));
        std::cout << "preset " << cfg.name << ", model " << model.name
                  << ", " << reqs.size()
                  << " requests, contexts 2K/4K/8K/16K\n";

        // Every batch point is an independent co-simulation; fan them
        // out over the sweep pool (results stay index-ordered).
        const core::BatchEngine engine(cfg, model);
        const auto stats = sweep.map<core::BatchStats>(
            batches.size(), [&](std::size_t i) {
                return engine.run(reqs, batches[i]);
            });

        // The same sweep against a contended NPU: systolic-array and
        // SFU time serialize across streams instead of overlapping
        // for free. Smoke runs one point to bound CI cost.
        const std::vector<std::uint32_t> nbatches =
            smoke ? std::vector<std::uint32_t>{4} : batches;
        const auto sreqs = decodeOnly(reqs);
        const auto nstats = sweep.map<core::ServeStats>(
            nbatches.size(), [&](std::size_t i) {
                core::SchedOptions opt;
                opt.max_batch = nbatches[i];
                opt.npu_contention = true;
                return sched.serve(sreqs, opt);
            });

        Table t("Serving throughput vs batch limit (free vs "
                "contended NPU)");
        t.header({"batch", "agg tok/s", "finite-run tok/s",
                  "chan util", "fairness", "npu agg tok/s",
                  "npu array util"});
        for (std::size_t i = 0; i < batches.size(); ++i) {
            const core::BatchStats &b = stats[i];
            std::size_t ni = nbatches.size();
            for (std::size_t j = 0; j < nbatches.size(); ++j)
                if (nbatches[j] == batches[i])
                    ni = j;
            t.row({Table::fmtInt(batches[i]),
                   Table::fmt(b.aggregate_tokens_per_s, 3),
                   Table::fmt(b.finite_run_tokens_per_s, 3),
                   Table::fmtPercent(b.avg_channel_util),
                   Table::fmt(b.fairness_jain, 3),
                   ni < nbatches.size()
                       ? Table::fmt(
                             nstats[ni].aggregate_tokens_per_s, 3)
                       : "-",
                   ni < nbatches.size()
                       ? Table::fmtPercent(nstats[ni].npu_array_util)
                       : "-"});
            const std::string p =
                "batch" + std::to_string(batches[i]);
            json.add(p + ".aggregate_tokens_per_s",
                     b.aggregate_tokens_per_s);
            json.add(p + ".finite_run_tokens_per_s",
                     b.finite_run_tokens_per_s);
            json.add(p + ".avg_channel_util", b.avg_channel_util);
            json.add(p + ".fairness_jain", b.fairness_jain);
            json.add(p + ".sim_makespan_ms",
                     double(b.sim_makespan) / 1e6);
            json.add(p + ".extrapolation_factor",
                     b.extrapolation_factor);
        }
        for (std::size_t j = 0; j < nbatches.size(); ++j) {
            const std::string p =
                "batch" + std::to_string(nbatches[j]) + ".npu";
            json.add(p + ".aggregate_tokens_per_s",
                     nstats[j].aggregate_tokens_per_s);
            json.add(p + ".finite_run_tokens_per_s",
                     nstats[j].finite_run_tokens_per_s);
            json.add(p + ".array_util", nstats[j].npu_array_util);
        }
        t.print(std::cout);

        // Acceptance self-check: aggregate throughput must rise
        // monotonically from batch 1 through 8.
        bool monotone = true;
        for (std::size_t i = 1;
             i < batches.size() && batches[i] <= 8; ++i)
            monotone = monotone &&
                       stats[i].aggregate_tokens_per_s >
                           stats[i - 1].aggregate_tokens_per_s;
        std::cout << "\nmonotone aggregate 1->8: "
                  << (monotone ? "yes" : "NO") << "\n";
        json.add("monotone_1_to_8", std::uint64_t(monotone ? 1 : 0));

        // Contention must not speed the device up materially.
        // (Serializing array time can decorrelate the streams' layer
        // phases and nudge the mean rate up a fraction of a percent —
        // the same resonance effect admission_stagger exists for — so
        // the check carries 2% headroom.)
        bool contention_sane = true;
        for (std::size_t j = 0; j < nbatches.size(); ++j) {
            std::size_t bi = batches.size();
            for (std::size_t i = 0; i < batches.size(); ++i)
                if (batches[i] == nbatches[j])
                    bi = i;
            if (bi < batches.size())
                contention_sane =
                    contention_sane &&
                    nstats[j].aggregate_tokens_per_s <=
                        stats[bi].aggregate_tokens_per_s * 1.02;
        }
        std::cout << "contended <= free(+2%) at every batch: "
                  << (contention_sane ? "yes" : "NO") << "\n";
        json.add("npu_contention_sane",
                 std::uint64_t(contention_sane ? 1 : 0));

        // Per-request service detail at the largest batch.
        const core::BatchStats &big = stats.back();
        Table d("Per-request service at batch " +
                std::to_string(batches.back()));
        d.header({"req", "context", "tokens", "admit (ms)",
                  "finish (ms)", "mean tok (ms)", "tok/s"});
        for (const core::RequestStats &r : big.requests)
            d.row({Table::fmtInt(r.id), Table::fmtInt(r.context),
                   Table::fmtInt(r.decode_tokens),
                   Table::fmt(double(r.admit_tick) / 1e6, 2),
                   Table::fmt(double(r.finish_tick) / 1e6, 2),
                   Table::fmt(double(r.mean_token_time) / 1e6, 1),
                   Table::fmt(r.tokens_per_s, 3)});
        d.print(std::cout);
    }

    // --- arrival-driven SLO scenarios -----------------------------------
    // Fixed smoke scenario, identical in every mode so its percentile
    // keys diff cleanly across commits: 6 Poisson arrivals with real
    // prompts, batch 4, contended NPU, FCFS vs chunked prefill.
    // Shapes and rates are tuned to the modeled hardware: a 2 TOPS
    // NPU prefills this 70B model at ~70 ms (extrapolated) per prompt
    // token, so a device serves roughly half a request per simulated
    // second — 0.25/0.5/1.0 req/s spans underload to saturation.
    const std::vector<core::RequestShape> shapes = {
        {512, 2}, {1024, 1}, {256, 3}};
    const core::ArrivalTrace smoke_trace =
        core::ArrivalTrace::poisson(0.5, 6, 7, shapes);

    const auto serveTrace = [&](const core::ArrivalTrace &trace,
                                core::SchedPolicy policy,
                                std::uint32_t chunk,
                                std::uint32_t max_batch) {
        core::SchedOptions opt;
        opt.max_batch = max_batch;
        opt.policy = policy;
        opt.prefill_chunk = chunk;
        opt.npu_contention = true;
        return sched.serve(trace, opt);
    };

    if (!kv_only) {
        const auto pair = sweep.map<core::ServeStats>(
            2, [&](std::size_t i) {
                return i == 0
                           ? serveTrace(
                                 smoke_trace,
                                 core::SchedPolicy::DecodeFirstFcfs,
                                 0u, 4)
                           : serveTrace(
                                 smoke_trace,
                                 core::SchedPolicy::ChunkedInterleave,
                                 256u, 4);
            });
        Table t("SLO smoke scenario (6 Poisson arrivals @ 0.5 req/s, "
                "batch 4, contended NPU)");
        t.header({"policy", "TTFT p50", "p95", "p99", "TBT p50",
                  "p95", "p99", "tok/s", "array util"});
        sloRow(t, "fcfs whole-prompt", pair[0]);
        sloRow(t, "chunked 256", pair[1]);
        t.print(std::cout);
        addSlo(json, "slo_smoke.fcfs", pair[0]);
        addSlo(json, "slo_smoke.chunked256", pair[1]);
    }

    if (!smoke && !kv_only) {
        // Arrival-rate sweep: the capacity-planning view. Indices map
        // to (rate x policy) pairs; results stay deterministic and
        // index-ordered under the sweep pool.
        const std::vector<double> rates = {0.25, 0.5, 1.0};
        const auto rstats = sweep.map<core::ServeStats>(
            rates.size() * 2, [&](std::size_t i) {
                const core::ArrivalTrace trace =
                    core::ArrivalTrace::poisson(rates[i / 2], 12, 11,
                                                shapes);
                return (i % 2) == 0
                           ? serveTrace(
                                 trace,
                                 core::SchedPolicy::DecodeFirstFcfs,
                                 0u, 8)
                           : serveTrace(
                                 trace,
                                 core::SchedPolicy::ChunkedInterleave,
                                 256u, 8);
            });
        Table t("SLO vs arrival rate (12 requests, batch 8, "
                "contended NPU)");
        t.header({"rate x policy", "TTFT p50", "p95", "p99",
                  "TBT p50", "p95", "p99", "tok/s", "array util"});
        for (std::size_t i = 0; i < rstats.size(); ++i) {
            const std::string label =
                Table::fmt(rates[i / 2], 2) + " req/s " +
                ((i % 2) == 0 ? "fcfs" : "chunked");
            sloRow(t, label, rstats[i]);
            const std::string p =
                "arrivals.rate" +
                std::to_string(int(rates[i / 2] * 100)) +
                ((i % 2) == 0 ? ".fcfs" : ".chunked256");
            addSlo(json, p, rstats[i]);
        }
        t.print(std::cout);

        // Chunk-size knob: TTFT/TBT percentiles must respond to the
        // prefill budget (smaller chunks trade first-token latency
        // for decode interactivity under load).
        const std::vector<std::uint32_t> chunks = {128, 512, 2048};
        const core::ArrivalTrace ktrace =
            core::ArrivalTrace::poisson(0.5, 12, 11, shapes);
        const auto kstats = sweep.map<core::ServeStats>(
            chunks.size(), [&](std::size_t i) {
                return serveTrace(
                    ktrace, core::SchedPolicy::ChunkedInterleave,
                    chunks[i], 8);
            });
        Table t2("SLO vs prefill chunk budget (0.5 req/s, batch 8)");
        t2.header({"chunk", "TTFT p50", "p95", "p99", "TBT p50",
                   "p95", "p99", "tok/s", "array util"});
        for (std::size_t i = 0; i < chunks.size(); ++i) {
            sloRow(t2, Table::fmtInt(chunks[i]), kstats[i]);
            addSlo(json,
                   "arrivals.chunk" + std::to_string(chunks[i]),
                   kstats[i]);
        }
        t2.print(std::cout);
    }

    // --- KV capacity sweep ----------------------------------------------
    // The same fixed arrival scenario under shrinking paged-KV
    // budgets (block tables of 64 tokens, budgets as a fraction of
    // the trace's total KV demand). Unbounded is the no-wall
    // reference; 100% holds every request's final KV at once; below
    // that the scheduler queues admissions, preempts the
    // latest-arrived running request and recomputes evicted KV. The
    // 50% point runs identically in --smoke so CI diffs its keys.
    {
        const std::uint32_t block_tokens = 64;
        const core::ArrivalTrace kv_trace =
            core::ArrivalTrace::poisson(0.5, 6, 13, shapes);
        const std::uint64_t token_kv_bytes =
            std::uint64_t(model.kvDim()) *
            (llm::QuantSpec::of(cfg.quant).act_bits / 8) *
            model.n_layers;
        std::uint64_t demand_blocks = 0;
        for (const core::ServeRequest &r : kv_trace.requests())
            demand_blocks += (std::uint64_t(r.context) + r.prompt +
                              r.decode_tokens + block_tokens - 1) /
                             block_tokens;

        // (label, percent of total demand; 0 = unbounded)
        const std::vector<std::pair<std::string, std::uint64_t>>
            points = smoke
                         ? std::vector<
                               std::pair<std::string, std::uint64_t>>{
                               {"unbounded", 0}, {"budget50", 50}}
                         : std::vector<
                               std::pair<std::string, std::uint64_t>>{
                               {"unbounded", 0},
                               {"budget100", 100},
                               {"budget75", 75},
                               {"budget50", 50}};
        const auto kstats = sweep.map<core::ServeStats>(
            points.size(), [&](std::size_t i) {
                core::SchedOptions opt;
                opt.max_batch = 4;
                opt.policy = core::SchedPolicy::ChunkedInterleave;
                opt.prefill_chunk = 256;
                opt.npu_contention = true;
                opt.kv_block_tokens = block_tokens;
                opt.kv_budget_bytes =
                    points[i].second == 0
                        ? 0
                        : demand_blocks * points[i].second / 100 *
                              block_tokens * token_kv_bytes;
                return sched.serve(kv_trace, opt);
            });

        Table t("SLO vs KV budget (6 Poisson arrivals @ 0.5 req/s, "
                "batch 4, 64-token blocks, chunked 256)");
        t.header({"budget", "TTFT p50", "p95", "p99", "TBT p95",
                  "tok/s", "preempt", "recompute tok", "KV high/total"});
        for (std::size_t i = 0; i < points.size(); ++i) {
            const core::ServeStats &s = kstats[i];
            t.row({points[i].first, Table::fmt(s.ttft.p50_ms, 0),
                   Table::fmt(s.ttft.p95_ms, 0),
                   Table::fmt(s.ttft.p99_ms, 0),
                   Table::fmt(s.tbt.p95_ms, 0),
                   Table::fmt(s.finite_run_tokens_per_s, 2),
                   Table::fmtInt(s.preemptions),
                   Table::fmtInt(std::uint32_t(s.recompute_tokens)),
                   Table::fmtInt(std::uint32_t(
                       s.kv_blocks_high_water)) +
                       "/" +
                       (s.kv_blocks_total == 0
                            ? std::string("inf")
                            : Table::fmtInt(std::uint32_t(
                                  s.kv_blocks_total)))});
            addKv(json, "kv_sweep." + points[i].first, kstats[i]);
        }
        t.print(std::cout);

        // Self-checks: the unbounded reference never preempts, and a
        // bounded pool never exceeds its capacity.
        bool kv_sane = kstats[0].preemptions == 0;
        for (std::size_t i = 1; i < points.size(); ++i)
            kv_sane = kv_sane && (kstats[i].kv_blocks_total == 0 ||
                                  kstats[i].kv_blocks_high_water <=
                                      kstats[i].kv_blocks_total);
        std::cout << "kv pool sane (no unbounded preemption, high "
                     "water <= capacity): "
                  << (kv_sane ? "yes" : "NO") << "\n";
        json.add("kv_sweep.sane", std::uint64_t(kv_sane ? 1 : 0));
    }

    json.add("wall_clock_s",
             std::chrono::duration<double>(
                 std::chrono::steady_clock::now() - wall0)
                 .count());
    const char *path = "BENCH_serving.json";
    if (json.writeTo(path))
        std::cout << "\nwrote " << path << "\n";
    else
        std::cerr << "failed to write " << path << "\n";
    return 0;
}
