/**
 * @file
 * Serving-grade benchmark of the unified scheduler: the default 70B
 * preset (Cam-LLM-L, Llama2-70B) measured three ways.
 *
 *  1. Continuous-batching decode throughput at batch limits 1..16
 *     (the PR 2 workload, unchanged keys) — and the same sweep with
 *     the shared-NPU occupancy model on, so the contention delta at
 *     batch 8-16 is recorded in the perf trajectory.
 *  2. A fixed arrival-driven SLO scenario (identical in --smoke and
 *     full runs; `slo_smoke.*` keys) — Poisson arrivals with real
 *     prompts served under FCFS whole-prompt prefill vs Sarathi-style
 *     chunked interleaving, reporting p50/p95/p99 TTFT and TBT.
 *  3. Full runs only: an arrival-rate sweep and a prefill chunk-size
 *     sweep showing how the SLO percentiles respond to load and to
 *     the chunk budget.
 *
 *  4. A KV capacity sweep (`--kv-sweep` for just this section): the
 *     same fixed arrival scenario served under shrinking paged-KV
 *     budgets, recording SLO percentiles, preemption/eviction counts
 *     and recompute volume per budget point (`kv_sweep.*` keys; the
 *     50%-budget point also runs in --smoke so CI diffs it). Two
 *     KV-reuse axes ride on the same scenario (smoke included, so CI
 *     diffs their keys in both directions): the 50% point again with
 *     swap-to-flash + partial eviction armed (`kv_sweep.swap50.*`;
 *     self-check: p95 TTFT with swap <= recompute-only + 2%
 *     resonance headroom), and a shared-system-prompt variant of the
 *     trace served with prefix sharing off/on (`kv_sweep.share_*`;
 *     self-checks: the prefix fields are inert with the knob off —
 *     bit-identical replay — and users-per-GB strictly rises with it
 *     on).
 *
 *  5. A fault sweep (`--fault-sweep` for just this section): the SLO
 *     smoke scenario served under a grid of uncorrectable-page rates
 *     x channel-loss scenarios (healthy / 8x slowdown window /
 *     permanent channel death), with per-request deadlines and SLO
 *     shedding armed, recording goodput, shed/timeout counts, retry
 *     and remap traffic and TTFT percentiles per point
 *     (`fault_sweep.*` keys; the worst point also runs in --smoke).
 *     The zero-fault point self-checks bit-identical against a run
 *     without any resilience knob armed.
 *
 *  6. A reliability co-design sweep (`--reliability-sweep` for just
 *     this section): the same scenario on an aged, unevenly worn
 *     device with per-plane wear tracking armed, gridded over wear
 *     policy (bump vs least-worn) x ECC correction strength x
 *     retention-refresh rate. Records goodput, retry volume, TBT/TTFT
 *     tails, the per-plane P/E spread and scrub traffic per point
 *     plus the decoder area/power each ECC strength costs
 *     (`reliability_sweep.*` keys; one harsh corner also runs in
 *     --smoke). Full runs self-check that retries fall monotonically
 *     with ECC strength, that wear leveling shrinks the P/E spread
 *     wherever refresh programs flow, and that the co-design knobs at
 *     inert values leave a PR 6-style fault timeline bit-identical.
 *
 * Emits BENCH_serving.json.
 *
 *  7. A fleet sweep (`--fleet-sweep` for just this section; full runs
 *     only, skipped in --smoke): N independent device replicas, each
 *     serving its own seeded Poisson trace, run across the worker
 *     pool by FleetSweep and merged index-ordered (`fleet_sweep.*`
 *     keys). Self-checks that the merged result is bit-identical on
 *     one worker thread vs the full pool and that each replica's
 *     result is independent of the fleet size.
 *
 * Usage: bench_serving [--smoke] [--arrivals] [--kv-sweep]
 *                      [--fault-sweep] [--reliability-sweep]
 *                      [--fleet-sweep]
 *   --smoke       CI subset: batches {1,4}, contended batch 4, the
 *                 SLO smoke scenario, one KV budget point, one fault
 *                 point and one reliability point.
 *   --arrivals    arrival-driven sections only (skips batch sweeps).
 *   --kv-sweep    KV capacity sweep only.
 *   --fault-sweep fault sweep only.
 *   --reliability-sweep reliability co-design sweep only.
 *   --fleet-sweep fleet sweep only.
 */

#include <array>
#include <chrono>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "bench_util.h"
#include "core/area_model.h"
#include "core/arrivals.h"
#include "core/batch_engine.h"
#include "core/fleet.h"
#include "core/scheduler.h"
#include "core/sweep.h"
#include "flash/params.h"
#include "flash/placement.h"
#include "json_out.h"

using namespace camllm;

namespace {

std::vector<core::RequestSpec>
mixedWorkload(std::size_t n_requests, std::uint32_t decode_tokens)
{
    // Long-context serving mix: attention DRAM stalls leave channel
    // bubbles a single stream cannot fill, which is exactly what
    // continuous batching recovers.
    const std::uint32_t ctx[] = {2048, 4096, 8192, 16384};
    std::vector<core::RequestSpec> reqs;
    reqs.reserve(n_requests);
    for (std::size_t i = 0; i < n_requests; ++i)
        reqs.push_back({ctx[i % 4], decode_tokens});
    return reqs;
}

std::vector<core::ServeRequest>
decodeOnly(const std::vector<core::RequestSpec> &reqs)
{
    std::vector<core::ServeRequest> out;
    out.reserve(reqs.size());
    for (const core::RequestSpec &r : reqs)
        out.push_back({0, r.context, r.decode_tokens, 0});
    return out;
}

void
addLatency(bench::BenchJson &json, const std::string &prefix,
           const core::LatencySummary &s)
{
    json.add(prefix + ".p50_ms", s.p50_ms);
    json.add(prefix + ".p95_ms", s.p95_ms);
    json.add(prefix + ".p99_ms", s.p99_ms);
    json.add(prefix + ".mean_ms", s.mean_ms);
}

void
sloRow(Table &t, const std::string &label, const core::ServeStats &s)
{
    t.row({label, Table::fmt(s.ttft.p50_ms, 0),
           Table::fmt(s.ttft.p95_ms, 0), Table::fmt(s.ttft.p99_ms, 0),
           Table::fmt(s.tbt.p50_ms, 0), Table::fmt(s.tbt.p95_ms, 0),
           Table::fmt(s.tbt.p99_ms, 0),
           Table::fmt(s.finite_run_tokens_per_s, 2),
           Table::fmtPercent(s.npu_array_util)});
}

void
addSlo(bench::BenchJson &json, const std::string &prefix,
       const core::ServeStats &s)
{
    addLatency(json, prefix + ".ttft", s.ttft);
    addLatency(json, prefix + ".tbt", s.tbt);
    json.add(prefix + ".finite_run_tokens_per_s",
             s.finite_run_tokens_per_s);
    json.add(prefix + ".npu_array_util", s.npu_array_util);
}

void
addKv(bench::BenchJson &json, const std::string &prefix,
      const core::ServeStats &s)
{
    addSlo(json, prefix, s);
    json.add(prefix + ".preemptions", std::uint64_t(s.preemptions));
    json.add(prefix + ".recompute_tokens", s.recompute_tokens);
    json.add(prefix + ".kv_blocks_total", s.kv_blocks_total);
    json.add(prefix + ".kv_blocks_high_water",
             s.kv_blocks_high_water);
}

} // namespace

int
main(int argc, char **argv)
{
    bool smoke = false, arrivals_only = false, kv_only = false,
         fault_only = false, rel_only = false, fleet_only = false;
    for (int i = 1; i < argc; ++i) {
        if (std::strcmp(argv[i], "--smoke") == 0)
            smoke = true;
        else if (std::strcmp(argv[i], "--arrivals") == 0)
            arrivals_only = true;
        else if (std::strcmp(argv[i], "--kv-sweep") == 0)
            kv_only = true;
        else if (std::strcmp(argv[i], "--fault-sweep") == 0)
            fault_only = true;
        else if (std::strcmp(argv[i], "--reliability-sweep") == 0)
            rel_only = true;
        else if (std::strcmp(argv[i], "--fleet-sweep") == 0)
            fleet_only = true;
    }
    const auto wall0 = std::chrono::steady_clock::now();
    bench::banner("serving: continuous batching, NPU contention, "
                  "arrival-driven SLOs");

    const core::CamConfig cfg = core::presetL();
    const llm::ModelConfig model = llm::llama2_70b();
    const core::Scheduler sched(cfg, model);
    core::ParallelSweep sweep;

    bench::BenchJson json;
    json.addString("bench", "bench_serving");
    json.addString("preset", cfg.name);
    json.addString("model", model.name);

    if (!arrivals_only && !kv_only && !fault_only && !rel_only &&
        !fleet_only) {
        const std::vector<core::RequestSpec> reqs =
            mixedWorkload(smoke ? 8 : 16, 1);
        const std::vector<std::uint32_t> batches =
            smoke ? std::vector<std::uint32_t>{1, 4}
                  : std::vector<std::uint32_t>{1, 2, 4, 8, 16};
        json.add("requests", std::uint64_t(reqs.size()));
        std::cout << "preset " << cfg.name << ", model " << model.name
                  << ", " << reqs.size()
                  << " requests, contexts 2K/4K/8K/16K\n";

        // Every batch point is an independent co-simulation; fan them
        // out over the sweep pool (results stay index-ordered).
        const core::BatchEngine engine(cfg, model);
        const auto stats = sweep.map<core::BatchStats>(
            batches.size(), [&](std::size_t i) {
                return engine.run(reqs, batches[i]);
            });

        // The same sweep against a contended NPU: systolic-array and
        // SFU time serialize across streams instead of overlapping
        // for free. Smoke runs one point to bound CI cost.
        const std::vector<std::uint32_t> nbatches =
            smoke ? std::vector<std::uint32_t>{4} : batches;
        const auto sreqs = decodeOnly(reqs);
        const auto nstats = sweep.map<core::ServeStats>(
            nbatches.size(), [&](std::size_t i) {
                core::SchedOptions opt;
                opt.max_batch = nbatches[i];
                opt.npu_contention = true;
                return sched.serve(sreqs, opt);
            });

        Table t("Serving throughput vs batch limit (free vs "
                "contended NPU)");
        t.header({"batch", "agg tok/s", "finite-run tok/s",
                  "chan util", "fairness", "npu agg tok/s",
                  "npu array util"});
        for (std::size_t i = 0; i < batches.size(); ++i) {
            const core::BatchStats &b = stats[i];
            std::size_t ni = nbatches.size();
            for (std::size_t j = 0; j < nbatches.size(); ++j)
                if (nbatches[j] == batches[i])
                    ni = j;
            t.row({Table::fmtInt(batches[i]),
                   Table::fmt(b.aggregate_tokens_per_s, 3),
                   Table::fmt(b.finite_run_tokens_per_s, 3),
                   Table::fmtPercent(b.avg_channel_util),
                   Table::fmt(b.fairness_jain, 3),
                   ni < nbatches.size()
                       ? Table::fmt(
                             nstats[ni].aggregate_tokens_per_s, 3)
                       : "-",
                   ni < nbatches.size()
                       ? Table::fmtPercent(nstats[ni].npu_array_util)
                       : "-"});
            const std::string p =
                "batch" + std::to_string(batches[i]);
            json.add(p + ".aggregate_tokens_per_s",
                     b.aggregate_tokens_per_s);
            json.add(p + ".finite_run_tokens_per_s",
                     b.finite_run_tokens_per_s);
            json.add(p + ".avg_channel_util", b.avg_channel_util);
            json.add(p + ".fairness_jain", b.fairness_jain);
            json.add(p + ".sim_makespan_ms",
                     double(b.sim_makespan) / 1e6);
            json.add(p + ".extrapolation_factor",
                     b.extrapolation_factor);
        }
        for (std::size_t j = 0; j < nbatches.size(); ++j) {
            const std::string p =
                "batch" + std::to_string(nbatches[j]) + ".npu";
            json.add(p + ".aggregate_tokens_per_s",
                     nstats[j].aggregate_tokens_per_s);
            json.add(p + ".finite_run_tokens_per_s",
                     nstats[j].finite_run_tokens_per_s);
            json.add(p + ".array_util", nstats[j].npu_array_util);
        }
        t.print(std::cout);

        // Acceptance self-check: aggregate throughput must rise
        // monotonically from batch 1 through 8.
        bool monotone = true;
        for (std::size_t i = 1;
             i < batches.size() && batches[i] <= 8; ++i)
            monotone = monotone &&
                       stats[i].aggregate_tokens_per_s >
                           stats[i - 1].aggregate_tokens_per_s;
        std::cout << "\nmonotone aggregate 1->8: "
                  << (monotone ? "yes" : "NO") << "\n";
        json.add("monotone_1_to_8", std::uint64_t(monotone ? 1 : 0));

        // Contention must not speed the device up materially.
        // (Serializing array time can decorrelate the streams' layer
        // phases and nudge the mean rate up a fraction of a percent —
        // the same resonance effect admission_stagger exists for — so
        // the check carries 2% headroom.)
        bool contention_sane = true;
        for (std::size_t j = 0; j < nbatches.size(); ++j) {
            std::size_t bi = batches.size();
            for (std::size_t i = 0; i < batches.size(); ++i)
                if (batches[i] == nbatches[j])
                    bi = i;
            if (bi < batches.size())
                contention_sane =
                    contention_sane &&
                    nstats[j].aggregate_tokens_per_s <=
                        stats[bi].aggregate_tokens_per_s * 1.02;
        }
        std::cout << "contended <= free(+2%) at every batch: "
                  << (contention_sane ? "yes" : "NO") << "\n";
        json.add("npu_contention_sane",
                 std::uint64_t(contention_sane ? 1 : 0));

        // Per-request service detail at the largest batch.
        const core::BatchStats &big = stats.back();
        Table d("Per-request service at batch " +
                std::to_string(batches.back()));
        d.header({"req", "context", "tokens", "admit (ms)",
                  "finish (ms)", "mean tok (ms)", "tok/s"});
        for (const core::RequestStats &r : big.requests)
            d.row({Table::fmtInt(r.id), Table::fmtInt(r.context),
                   Table::fmtInt(r.decode_tokens),
                   Table::fmt(double(r.admit_tick) / 1e6, 2),
                   Table::fmt(double(r.finish_tick) / 1e6, 2),
                   Table::fmt(double(r.mean_token_time) / 1e6, 1),
                   Table::fmt(r.tokens_per_s, 3)});
        d.print(std::cout);
    }

    // --- arrival-driven SLO scenarios -----------------------------------
    // Fixed smoke scenario, identical in every mode so its percentile
    // keys diff cleanly across commits: 6 Poisson arrivals with real
    // prompts, batch 4, contended NPU, FCFS vs chunked prefill.
    // Shapes and rates are tuned to the modeled hardware: a 2 TOPS
    // NPU prefills this 70B model at ~70 ms (extrapolated) per prompt
    // token, so a device serves roughly half a request per simulated
    // second — 0.25/0.5/1.0 req/s spans underload to saturation.
    const std::vector<core::RequestShape> shapes = {
        {512, 2}, {1024, 1}, {256, 3}};
    const core::ArrivalTrace smoke_trace =
        core::ArrivalTrace::poisson(0.5, 6, 7, shapes);

    const auto serveTrace = [&](const core::ArrivalTrace &trace,
                                core::SchedPolicy policy,
                                std::uint32_t chunk,
                                std::uint32_t max_batch) {
        core::SchedOptions opt;
        opt.max_batch = max_batch;
        opt.policy = policy;
        opt.prefill_chunk = chunk;
        opt.npu_contention = true;
        return sched.serve(trace, opt);
    };

    if (!kv_only && !fault_only && !rel_only && !fleet_only) {
        const auto pair = sweep.map<core::ServeStats>(
            2, [&](std::size_t i) {
                return i == 0
                           ? serveTrace(
                                 smoke_trace,
                                 core::SchedPolicy::DecodeFirstFcfs,
                                 0u, 4)
                           : serveTrace(
                                 smoke_trace,
                                 core::SchedPolicy::ChunkedInterleave,
                                 256u, 4);
            });
        Table t("SLO smoke scenario (6 Poisson arrivals @ 0.5 req/s, "
                "batch 4, contended NPU)");
        t.header({"policy", "TTFT p50", "p95", "p99", "TBT p50",
                  "p95", "p99", "tok/s", "array util"});
        sloRow(t, "fcfs whole-prompt", pair[0]);
        sloRow(t, "chunked 256", pair[1]);
        t.print(std::cout);
        addSlo(json, "slo_smoke.fcfs", pair[0]);
        addSlo(json, "slo_smoke.chunked256", pair[1]);
    }

    if (!smoke && !kv_only && !fault_only && !rel_only &&
        !fleet_only) {
        // Arrival-rate sweep: the capacity-planning view. Indices map
        // to (rate x policy) pairs; results stay deterministic and
        // index-ordered under the sweep pool.
        const std::vector<double> rates = {0.25, 0.5, 1.0};
        const auto rstats = sweep.map<core::ServeStats>(
            rates.size() * 2, [&](std::size_t i) {
                const core::ArrivalTrace trace =
                    core::ArrivalTrace::poisson(rates[i / 2], 12, 11,
                                                shapes);
                return (i % 2) == 0
                           ? serveTrace(
                                 trace,
                                 core::SchedPolicy::DecodeFirstFcfs,
                                 0u, 8)
                           : serveTrace(
                                 trace,
                                 core::SchedPolicy::ChunkedInterleave,
                                 256u, 8);
            });
        Table t("SLO vs arrival rate (12 requests, batch 8, "
                "contended NPU)");
        t.header({"rate x policy", "TTFT p50", "p95", "p99",
                  "TBT p50", "p95", "p99", "tok/s", "array util"});
        for (std::size_t i = 0; i < rstats.size(); ++i) {
            const std::string label =
                Table::fmt(rates[i / 2], 2) + " req/s " +
                ((i % 2) == 0 ? "fcfs" : "chunked");
            sloRow(t, label, rstats[i]);
            const std::string p =
                "arrivals.rate" +
                std::to_string(int(rates[i / 2] * 100)) +
                ((i % 2) == 0 ? ".fcfs" : ".chunked256");
            addSlo(json, p, rstats[i]);
        }
        t.print(std::cout);

        // Chunk-size knob: TTFT/TBT percentiles must respond to the
        // prefill budget (smaller chunks trade first-token latency
        // for decode interactivity under load).
        const std::vector<std::uint32_t> chunks = {128, 512, 2048};
        const core::ArrivalTrace ktrace =
            core::ArrivalTrace::poisson(0.5, 12, 11, shapes);
        const auto kstats = sweep.map<core::ServeStats>(
            chunks.size(), [&](std::size_t i) {
                return serveTrace(
                    ktrace, core::SchedPolicy::ChunkedInterleave,
                    chunks[i], 8);
            });
        Table t2("SLO vs prefill chunk budget (0.5 req/s, batch 8)");
        t2.header({"chunk", "TTFT p50", "p95", "p99", "TBT p50",
                   "p95", "p99", "tok/s", "array util"});
        for (std::size_t i = 0; i < chunks.size(); ++i) {
            sloRow(t2, Table::fmtInt(chunks[i]), kstats[i]);
            addSlo(json,
                   "arrivals.chunk" + std::to_string(chunks[i]),
                   kstats[i]);
        }
        t2.print(std::cout);
    }

    // --- KV capacity sweep ----------------------------------------------
    // The same fixed arrival scenario under shrinking paged-KV
    // budgets (block tables of 64 tokens, budgets as a fraction of
    // the trace's total KV demand). Unbounded is the no-wall
    // reference; 100% holds every request's final KV at once; below
    // that the scheduler queues admissions, preempts the
    // latest-arrived running request and recomputes evicted KV. The
    // 50% point runs identically in --smoke so CI diffs its keys.
    if (!fault_only && !rel_only && !fleet_only) {
        const std::uint32_t block_tokens = 64;
        const core::ArrivalTrace kv_trace =
            core::ArrivalTrace::poisson(0.5, 6, 13, shapes);
        const std::uint64_t token_kv_bytes =
            std::uint64_t(model.kvDim()) *
            (llm::QuantSpec::of(cfg.quant).act_bits / 8) *
            model.n_layers;
        std::uint64_t demand_blocks = 0;
        for (const core::ServeRequest &r : kv_trace.requests())
            demand_blocks += (std::uint64_t(r.context) + r.prompt +
                              r.decode_tokens + block_tokens - 1) /
                             block_tokens;

        // (label, percent of total demand; 0 = unbounded)
        const std::vector<std::pair<std::string, std::uint64_t>>
            points = smoke
                         ? std::vector<
                               std::pair<std::string, std::uint64_t>>{
                               {"unbounded", 0}, {"budget50", 50}}
                         : std::vector<
                               std::pair<std::string, std::uint64_t>>{
                               {"unbounded", 0},
                               {"budget100", 100},
                               {"budget75", 75},
                               {"budget50", 50}};
        const auto kstats = sweep.map<core::ServeStats>(
            points.size(), [&](std::size_t i) {
                core::SchedOptions opt;
                opt.max_batch = 4;
                opt.policy = core::SchedPolicy::ChunkedInterleave;
                opt.prefill_chunk = 256;
                opt.npu_contention = true;
                opt.kv_block_tokens = block_tokens;
                opt.kv_budget_bytes =
                    points[i].second == 0
                        ? 0
                        : demand_blocks * points[i].second / 100 *
                              block_tokens * token_kv_bytes;
                return sched.serve(kv_trace, opt);
            });

        Table t("SLO vs KV budget (6 Poisson arrivals @ 0.5 req/s, "
                "batch 4, 64-token blocks, chunked 256)");
        t.header({"budget", "TTFT p50", "p95", "p99", "TBT p95",
                  "tok/s", "preempt", "recompute tok", "KV high/total"});
        for (std::size_t i = 0; i < points.size(); ++i) {
            const core::ServeStats &s = kstats[i];
            t.row({points[i].first, Table::fmt(s.ttft.p50_ms, 0),
                   Table::fmt(s.ttft.p95_ms, 0),
                   Table::fmt(s.ttft.p99_ms, 0),
                   Table::fmt(s.tbt.p95_ms, 0),
                   Table::fmt(s.finite_run_tokens_per_s, 2),
                   Table::fmtInt(s.preemptions),
                   Table::fmtInt(std::uint32_t(s.recompute_tokens)),
                   Table::fmtInt(std::uint32_t(
                       s.kv_blocks_high_water)) +
                       "/" +
                       (s.kv_blocks_total == 0
                            ? std::string("inf")
                            : Table::fmtInt(std::uint32_t(
                                  s.kv_blocks_total)))});
            addKv(json, "kv_sweep." + points[i].first, kstats[i]);
        }
        t.print(std::cout);

        // Self-checks: the unbounded reference never preempts, and a
        // bounded pool never exceeds its capacity.
        bool kv_sane = kstats[0].preemptions == 0;
        for (std::size_t i = 1; i < points.size(); ++i)
            kv_sane = kv_sane && (kstats[i].kv_blocks_total == 0 ||
                                  kstats[i].kv_blocks_high_water <=
                                      kstats[i].kv_blocks_total);
        std::cout << "kv pool sane (no unbounded preemption, high "
                     "water <= capacity): "
                  << (kv_sane ? "yes" : "NO") << "\n";
        json.add("kv_sweep.sane", std::uint64_t(kv_sane ? 1 : 0));

        // --- KV reuse: swap-to-flash + partial eviction -----------------
        // The 50% point again with the reuse knobs armed: evictions
        // keep warm head blocks and shed tails to the flash KV region
        // (cost model and quota permitting) instead of recomputing
        // them on resume. The last sweep point above is the
        // recompute-only 50% reference in both smoke and full runs.
        const core::ServeStats &recompute50 = kstats.back();
        core::SchedOptions swap_opt;
        swap_opt.max_batch = 4;
        swap_opt.policy = core::SchedPolicy::ChunkedInterleave;
        swap_opt.prefill_chunk = 256;
        swap_opt.npu_contention = true;
        swap_opt.kv_block_tokens = block_tokens;
        swap_opt.kv_budget_bytes = demand_blocks * 50 / 100 *
                                   block_tokens * token_kv_bytes;
        swap_opt.kv_swap = true;
        swap_opt.kv_partial_evict = true;
        const core::ServeStats swap50 =
            sched.serve(kv_trace, swap_opt);

        Table ts("KV reuse at 50% budget: recompute-only vs "
                 "swap-to-flash + partial eviction");
        ts.header({"mode", "TTFT p95", "p99", "TBT p95", "tok/s",
                   "preempt", "partial", "recompute tok",
                   "swap out/in/refused", "swap MB"});
        const auto reuseRow = [&](const std::string &label,
                                  const core::ServeStats &s) {
            ts.row({label, Table::fmt(s.ttft.p95_ms, 0),
                    Table::fmt(s.ttft.p99_ms, 0),
                    Table::fmt(s.tbt.p95_ms, 0),
                    Table::fmt(s.finite_run_tokens_per_s, 2),
                    Table::fmtInt(s.preemptions),
                    Table::fmtInt(s.partial_evictions),
                    Table::fmtInt(std::uint32_t(s.recompute_tokens)),
                    Table::fmtInt(std::uint32_t(s.swap_out_blocks)) +
                        "/" +
                        Table::fmtInt(
                            std::uint32_t(s.swap_in_blocks)) +
                        "/" +
                        Table::fmtInt(
                            std::uint32_t(s.swap_refused_blocks)),
                    Table::fmt(double(s.kv_swap_channel_bytes) / 1e6,
                               1)});
        };
        reuseRow("recompute-only", recompute50);
        reuseRow("swap+partial", swap50);
        ts.print(std::cout);

        addKv(json, "kv_sweep.swap50", swap50);
        json.add("kv_sweep.swap50.partial_evictions",
                 std::uint64_t(swap50.partial_evictions));
        json.add("kv_sweep.swap50.swap_out_blocks",
                 swap50.swap_out_blocks);
        json.add("kv_sweep.swap50.swap_in_blocks",
                 swap50.swap_in_blocks);
        json.add("kv_sweep.swap50.swap_refused_blocks",
                 swap50.swap_refused_blocks);
        json.add("kv_sweep.swap50.kv_swap_channel_mb",
                 double(swap50.kv_swap_channel_bytes) / 1e6);

        // Acceptance self-check: streaming KV back over the channels
        // must not be slower at the first-token tail than burning the
        // NPU to recompute it — with the 2% resonance headroom every
        // cross-config latency check in this bench carries.
        const bool swap_ok =
            swap50.ttft.p95_ms <= recompute50.ttft.p95_ms * 1.02;
        std::cout << "swap p95 TTFT <= recompute-only (+2%): "
                  << (swap_ok ? "yes" : "NO") << "\n";
        json.add("kv_sweep.swap_p95_within",
                 std::uint64_t(swap_ok ? 1 : 0));

        // --- KV reuse: prefix sharing -----------------------------------
        // The same trace where every request leads with one shared
        // 256-token system prompt, served at the 100% budget with
        // sharing off (tagged and untagged — the fields must be
        // inert) and on. Capacity-per-GB is measured as users per GB
        // of KV actually allocated: sharing maps cached prefix blocks
        // into later tables instead of allocating fresh ones.
        const std::uint32_t shared_tokens = 256;
        const core::ArrivalTrace shared_trace =
            kv_trace.withSharedPrefix(1, shared_tokens);
        const auto share = sweep.map<core::ServeStats>(
            3, [&](std::size_t i) {
                core::SchedOptions opt;
                opt.max_batch = 4;
                opt.policy = core::SchedPolicy::ChunkedInterleave;
                opt.prefill_chunk = 256;
                opt.npu_contention = true;
                opt.kv_block_tokens = block_tokens;
                opt.kv_budget_bytes = demand_blocks * block_tokens *
                                      token_kv_bytes;
                opt.kv_prefix_sharing = i == 2;
                return sched.serve(
                    i == 0 ? kv_trace : shared_trace, opt);
            });
        const core::ServeStats &share_off = share[0];
        const core::ServeStats &share_on = share[2];

        const double block_gb = double(block_tokens) *
                                double(token_kv_bytes) / 1e9;
        const auto usersPerGb = [&](const core::ServeStats &s) {
            return double(s.requests.size()) /
                   (double(s.kv_block_allocs) * block_gb);
        };
        Table tp("Prefix sharing (6 requests, one shared 256-token "
                 "system prompt, 100% budget)");
        tp.header({"mode", "TTFT p95", "tok/s", "block allocs",
                   "KV high water", "prefix hits", "users/GB"});
        const auto shareRow = [&](const std::string &label,
                                  const core::ServeStats &s) {
            tp.row({label, Table::fmt(s.ttft.p95_ms, 0),
                    Table::fmt(s.finite_run_tokens_per_s, 2),
                    Table::fmtInt(std::uint32_t(s.kv_block_allocs)),
                    Table::fmtInt(
                        std::uint32_t(s.kv_blocks_high_water)),
                    Table::fmtInt(
                        std::uint32_t(s.prefix_hit_blocks)),
                    Table::fmt(usersPerGb(s), 2)});
        };
        shareRow("sharing off", share_off);
        shareRow("sharing on", share_on);
        tp.print(std::cout);

        addKv(json, "kv_sweep.share_off", share_off);
        addKv(json, "kv_sweep.share_on", share_on);
        json.add("kv_sweep.share_on.prefix_hit_blocks",
                 share_on.prefix_hit_blocks);
        json.add("kv_sweep.share_on.prefix_hit_tokens",
                 share_on.prefix_hit_tokens);
        json.add("kv_sweep.share_on.prefix_inserted_blocks",
                 share_on.prefix_inserted_blocks);
        json.add("kv_sweep.share_on.prefix_dropped_blocks",
                 share_on.prefix_dropped_blocks);
        json.add("kv_sweep.share_off.kv_block_allocs",
                 share_off.kv_block_allocs);
        json.add("kv_sweep.share_on.kv_block_allocs",
                 share_on.kv_block_allocs);
        json.add("kv_sweep.share.users_per_gb_off",
                 usersPerGb(share_off));
        json.add("kv_sweep.share.users_per_gb_on",
                 usersPerGb(share_on));

        // Acceptance self-check 1: with the knob off the prefix tags
        // must be dead weight — the tagged trace replays the untagged
        // serve bit-identically.
        bool share_inert =
            share[0].requests.size() == share[1].requests.size();
        for (std::size_t i = 0;
             share_inert && i < share[0].requests.size(); ++i)
            share_inert =
                share[0].requests[i].finish_tick ==
                    share[1].requests[i].finish_tick &&
                share[0].requests[i].total_token_time ==
                    share[1].requests[i].total_token_time &&
                share[0].requests[i].prefill_time ==
                    share[1].requests[i].prefill_time;
        std::cout << "prefix tags inert with sharing off "
                     "(bit-exact): "
                  << (share_inert ? "yes" : "NO") << "\n";
        json.add("kv_sweep.share_inert_bit_exact",
                 std::uint64_t(share_inert ? 1 : 0));

        // Acceptance self-check 2: sharing must strictly raise the
        // users served per GB of allocated KV (i.e. strictly shrink
        // fresh block allocations), and do it through real hits.
        const bool share_gain =
            share_on.prefix_hit_blocks > 0 &&
            share_on.kv_block_allocs < share_off.kv_block_allocs;
        std::cout << "users-per-GB strictly rises under the shared "
                     "prompt: "
                  << (share_gain ? "yes" : "NO") << "\n";
        json.add("kv_sweep.share_capacity_rises",
                 std::uint64_t(share_gain ? 1 : 0));
    }

    // --- fault sweep ----------------------------------------------------
    // The SLO smoke scenario under a grid of uncorrectable-page rates
    // (0 / 1% / 5%, NAND read-retry ladders) x channel-loss scenarios
    // (healthy / channel 0 at 1/8 rate for 10 simulated seconds /
    // channel 0 dead mid-run with weight remap), served with a
    // per-request deadline and SLO shedding armed so the resilience
    // paths run under fault load. Goodput counts only completed
    // requests' tokens — the metric faults degrade. The worst point
    // runs identically in --smoke so CI diffs its keys; full runs
    // self-check the zero-fault point bit-identical against a serve
    // with no resilience knob armed and goodput/TTFT monotone along
    // the fault-rate axis.
    if (!kv_only && !rel_only && !fleet_only) {
        struct UcpPoint
        {
            const char *label;
            double ucp;
        };
        struct LossPoint
        {
            const char *label;
            int kind; // 0 none, 1 slowdown window, 2 offline
        };
        const UcpPoint ucps[] = {
            {"ucp0", 0.0}, {"ucp1", 0.01}, {"ucp5", 0.05}};
        const LossPoint losses[] = {
            {"none", 0}, {"slow", 1}, {"offline", 2}};

        const auto faultOpts = [&](double ucp, int loss) {
            core::SchedOptions opt;
            opt.max_batch = 4;
            opt.policy = core::SchedPolicy::ChunkedInterleave;
            opt.prefill_chunk = 256;
            // Contention off: serializing the shared array couples the
            // streams' layer phases, and retry jitter can *decorrelate*
            // them — heavy faults then land fewer arbiter collisions
            // and the contended makespan improves (same resonance the
            // batch sweep's npu_contention_sane check allows 2% for).
            // The fault axis is only interpretable uncontended.
            opt.npu_contention = false;
            opt.request_deadline = 60 * kSec;
            opt.slo_ttft_ms = 300000.0; // 300 s extrapolated
            opt.degrade = core::DegradePolicy::ShedNewest;
            opt.faults.ucp_rate = ucp;
            opt.faults.seed = 17;
            if (loss == 1)
                opt.faults.addSlowdown(0, 8.0, 2 * kSec, 12 * kSec);
            else if (loss == 2)
                opt.faults.addOffline(0, 5 * kSec);
            return opt;
        };

        // (ucp index, loss index) grid; smoke runs the worst corner.
        std::vector<std::pair<std::size_t, std::size_t>> grid;
        if (smoke)
            grid.push_back({2, 2});
        else
            for (std::size_t l = 0; l < 3; ++l)
                for (std::size_t u = 0; u < 3; ++u)
                    grid.push_back({u, l});

        const auto fstats = sweep.map<core::ServeStats>(
            grid.size(), [&](std::size_t i) {
                return sched.serve(smoke_trace,
                                   faultOpts(ucps[grid[i].first].ucp,
                                             losses[grid[i].second]
                                                 .kind));
            });

        Table t("Fault sweep (SLO smoke scenario; deadline 60 s sim, "
                "TTFT SLO 300 s, shed-newest)");
        t.header({"point", "goodput tok/s", "done", "shed", "timeout",
                  "retries", "retry MB", "remap MB", "TTFT p95",
                  "p99"});
        for (std::size_t i = 0; i < grid.size(); ++i) {
            const core::ServeStats &s = fstats[i];
            const std::string name =
                std::string(ucps[grid[i].first].label) + "_" +
                losses[grid[i].second].label;
            t.row({name, Table::fmt(s.goodput_tokens_per_s, 4),
                   Table::fmtInt(s.completed),
                   Table::fmtInt(s.shed_slo),
                   Table::fmtInt(s.timeouts),
                   Table::fmtInt(std::uint32_t(s.read_retries)),
                   Table::fmt(double(s.retry_channel_bytes) / 1e6, 1),
                   Table::fmt(double(s.remap_bytes) / 1e6, 1),
                   Table::fmt(s.ttft.p95_ms, 0),
                   Table::fmt(s.ttft.p99_ms, 0)});
            const std::string p = "fault_sweep." + name;
            json.add(p + ".goodput_tokens_per_s",
                     s.goodput_tokens_per_s);
            json.add(p + ".completed", std::uint64_t(s.completed));
            json.add(p + ".shed_slo", std::uint64_t(s.shed_slo));
            json.add(p + ".timeouts", std::uint64_t(s.timeouts));
            json.add(p + ".read_retries", s.read_retries);
            json.add(p + ".retry_channel_mb",
                     double(s.retry_channel_bytes) / 1e6);
            json.add(p + ".remap_mb", double(s.remap_bytes) / 1e6);
            json.add(p + ".channels_lost",
                     std::uint64_t(s.channels_lost));
            json.add(p + ".ttft.p95_ms", s.ttft.p95_ms);
            json.add(p + ".ttft.p99_ms", s.ttft.p99_ms);
        }
        t.print(std::cout);

        // Accounting balance at every point: nothing vanishes.
        bool balanced = true;
        for (const core::ServeStats &s : fstats)
            balanced = balanced &&
                       (s.completed + s.shed_slo + s.timeouts +
                            s.cancelled + s.rejected_infeasible ==
                        s.requests.size());
        std::cout << "fault accounting balanced at every point: "
                  << (balanced ? "yes" : "NO") << "\n";
        json.add("fault_sweep.balanced",
                 std::uint64_t(balanced ? 1 : 0));

        if (!smoke) {
            // The zero-fault point with every resilience knob armed
            // must replay the plain scheduler's event sequence
            // bit-identically (deadline/SLO events are no-ops when
            // nothing violates them).
            core::SchedOptions plain;
            plain.max_batch = 4;
            plain.policy = core::SchedPolicy::ChunkedInterleave;
            plain.prefill_chunk = 256;
            plain.npu_contention = false;
            const core::ServeStats base =
                sched.serve(smoke_trace, plain);
            const core::ServeStats &clean = fstats[0]; // ucp0_none
            bool bit_exact =
                base.requests.size() == clean.requests.size();
            for (std::size_t i = 0;
                 bit_exact && i < base.requests.size(); ++i)
                bit_exact =
                    base.requests[i].finish_tick ==
                        clean.requests[i].finish_tick &&
                    base.requests[i].total_token_time ==
                        clean.requests[i].total_token_time &&
                    base.requests[i].prefill_time ==
                        clean.requests[i].prefill_time;
            std::cout << "zero-fault point bit-exact vs plain serve: "
                      << (bit_exact ? "yes" : "NO") << "\n";
            json.add("fault_sweep.zero_fault_bit_exact",
                     std::uint64_t(bit_exact ? 1 : 0));

            // Goodput degrades (and p95 TTFT rises) monotonically in
            // the fault rate within each loss scenario. Goodput gets
            // 0.5% headroom: its denominator is the extrapolated
            // makespan, and retry-inflated sim token times perturb the
            // extrapolation factor at the 1e-3 level.
            bool monotone = true;
            for (std::size_t l = 0; l < 3; ++l)
                for (std::size_t u = 1; u < 3; ++u) {
                    const core::ServeStats &lo = fstats[l * 3 + u - 1];
                    const core::ServeStats &hi = fstats[l * 3 + u];
                    monotone = monotone &&
                               hi.goodput_tokens_per_s <=
                                   lo.goodput_tokens_per_s * 1.005 &&
                               hi.ttft.p95_ms >= lo.ttft.p95_ms &&
                               hi.read_retries >= lo.read_retries;
                }
            std::cout << "goodput/TTFT monotone in fault rate: "
                      << (monotone ? "yes" : "NO") << "\n";
            json.add("fault_sweep.monotone",
                     std::uint64_t(monotone ? 1 : 0));
        }
    }

    // --- reliability co-design sweep ------------------------------------
    // The SLO smoke scenario on an aged, unevenly worn device: 500 h
    // retention at a mean 2000 P/E with a +/-60% per-plane gradient,
    // per-plane wear tracking deriving every read's failure rate from
    // the target plane. The grid crosses the wear-leveling policy
    // (bump re-writes in place, least-worn steers programs at the
    // freshest plane) with the on-die ECC correction strength (the
    // binomial codeword tail replaces the hand-set UCP; stronger ECC
    // senses slower but collapses the retry tail) and the background
    // retention-refresh rate (scrub reads + re-writes compete with
    // serving traffic on the channel buses). The bump/ECC-32/fastest-
    // refresh corner runs identically in --smoke so CI diffs its
    // keys.
    if (rel_only ||
        (!arrivals_only && !kv_only && !fault_only && !fleet_only)) {
        struct EccPoint
        {
            const char *label;
            std::uint32_t bits;
        };
        struct RefreshPoint
        {
            const char *label;
            double pages_per_s;
        };
        const char *pol_labels[] = {"bump", "leastworn"};
        const flash::WearPolicy pols[] = {flash::WearPolicy::Bump,
                                          flash::WearPolicy::LeastWorn};
        const EccPoint eccs[] = {
            {"ecc16", 16}, {"ecc32", 32}, {"ecc48", 48}};
        const RefreshPoint refs[] = {
            {"r0", 0.0}, {"r200", 200.0}, {"r1000", 1000.0}};

        const auto relOpts = [&](std::size_t p, std::size_t r,
                                 std::size_t e) {
            core::SchedOptions opt;
            opt.max_batch = 4;
            opt.policy = core::SchedPolicy::ChunkedInterleave;
            opt.prefill_chunk = 256;
            opt.npu_contention = false; // see the fault sweep's note
            opt.request_deadline = 60 * kSec;
            opt.slo_ttft_ms = 300000.0;
            opt.degrade = core::DegradePolicy::ShedNewest;
            opt.faults.seed = 17;
            opt.faults.retention_hours = 500.0;
            opt.faults.pe_cycles = 2000.0;
            opt.faults.wear_tracking = true;
            opt.faults.wear_skew = 0.6;
            opt.faults.wear_policy = pols[p];
            opt.faults.ecc_correctable_bits = eccs[e].bits;
            opt.faults.refresh_pages_per_s = refs[r].pages_per_s;
            return opt;
        };

        // (policy, refresh, ecc) grid. Smoke runs the harshest corner
        // that fits the CI budget: wear-oblivious placement, fastest
        // refresh, mid-strength ECC (the weakest ECC point climbs
        // millions of retry rungs — too slow for a smoke run).
        std::vector<std::array<std::size_t, 3>> grid;
        if (smoke)
            grid.push_back({0, 2, 1});
        else
            for (std::size_t p = 0; p < 2; ++p)
                for (std::size_t r = 0; r < 3; ++r)
                    for (std::size_t e = 0; e < 3; ++e)
                        grid.push_back({p, r, e});

        const auto rstats = sweep.map<core::ServeStats>(
            grid.size(), [&](std::size_t i) {
                return sched.serve(smoke_trace,
                                   relOpts(grid[i][0], grid[i][1],
                                           grid[i][2]));
            });

        Table t("Reliability co-design sweep (aged device, per-plane "
                "wear, 500 h / 2000 P/E +/-60%)");
        t.header({"point", "goodput tok/s", "done", "retries",
                  "retry MB", "TBT p99", "TTFT p95", "P/E spread",
                  "scrub pages", "scrub MB"});
        for (std::size_t i = 0; i < grid.size(); ++i) {
            const core::ServeStats &s = rstats[i];
            const std::string name =
                std::string(pol_labels[grid[i][0]]) + "_" +
                eccs[grid[i][2]].label + "_" + refs[grid[i][1]].label;
            t.row({name, Table::fmt(s.goodput_tokens_per_s, 4),
                   Table::fmtInt(s.completed),
                   Table::fmtInt(std::uint32_t(s.read_retries)),
                   Table::fmt(double(s.retry_channel_bytes) / 1e6, 1),
                   Table::fmt(s.tbt.p99_ms, 0),
                   Table::fmt(s.ttft.p95_ms, 0),
                   Table::fmt(s.wear_spread_pe, 3),
                   Table::fmtInt(std::uint32_t(s.refresh_pages)),
                   Table::fmt(double(s.refresh_channel_bytes) / 1e6,
                              1)});
            const std::string p = "reliability_sweep." + name;
            json.add(p + ".goodput_tokens_per_s",
                     s.goodput_tokens_per_s);
            json.add(p + ".completed", std::uint64_t(s.completed));
            json.add(p + ".read_retries", s.read_retries);
            json.add(p + ".retry_channel_mb",
                     double(s.retry_channel_bytes) / 1e6);
            json.add(p + ".tbt.p99_ms", s.tbt.p99_ms);
            json.add(p + ".ttft.p95_ms", s.ttft.p95_ms);
            json.add(p + ".wear_spread_pe", s.wear_spread_pe);
            json.add(p + ".wear_mean_pe", s.wear_mean_pe);
            json.add(p + ".refresh_pages", s.refresh_pages);
            json.add(p + ".refresh_mb",
                     double(s.refresh_channel_bytes) / 1e6);
        }
        t.print(std::cout);

        // The area/power side of the ECC axis: what each correction
        // strength costs in decoder silicon (the serving axes above
        // are what it buys).
        for (const EccPoint &e : eccs) {
            const std::string p =
                std::string("reliability_sweep.") + e.label;
            json.add(p + ".decoder_area_um2",
                     core::eccDecoderAreaUm2(e.bits));
            json.add(p + ".decoder_power_uw",
                     core::eccDecoderPowerUw(e.bits));
        }

        // Refresh accounting: scrub work happens exactly when armed,
        // and every completed scrub page paid at least its re-write
        // on a channel bus.
        const std::uint32_t page_bytes =
            flash::FlashParams{}.geometry.page_bytes;
        bool refresh_ok = true;
        for (std::size_t i = 0; i < grid.size(); ++i) {
            const core::ServeStats &s = rstats[i];
            if (refs[grid[i][1]].pages_per_s > 0.0)
                refresh_ok = refresh_ok && s.refresh_pages > 0 &&
                             s.refresh_channel_bytes >=
                                 s.refresh_pages * page_bytes;
            else
                refresh_ok = refresh_ok && s.refresh_pages == 0 &&
                             s.refresh_channel_bytes == 0;
        }
        std::cout << "refresh traffic accounted at every point: "
                  << (refresh_ok ? "yes" : "NO") << "\n";
        json.add("reliability_sweep.refresh_accounted",
                 std::uint64_t(refresh_ok ? 1 : 0));

        if (!smoke) {
            // Stronger ECC must collapse the retry tail within every
            // (policy, refresh) slice: escalated senses strictly fall
            // and drained retry bytes never rise along the ECC axis.
            bool ecc_monotone = true;
            for (std::size_t p = 0; p < 2; ++p)
                for (std::size_t r = 0; r < 3; ++r)
                    for (std::size_t e = 1; e < 3; ++e) {
                        const core::ServeStats &weak =
                            rstats[(p * 3 + r) * 3 + e - 1];
                        const core::ServeStats &strong =
                            rstats[(p * 3 + r) * 3 + e];
                        ecc_monotone =
                            ecc_monotone &&
                            strong.read_retries < weak.read_retries &&
                            strong.retry_channel_bytes <=
                                weak.retry_channel_bytes;
                    }
            std::cout << "retries fall monotonically with ECC "
                         "strength: "
                      << (ecc_monotone ? "yes" : "NO") << "\n";
            json.add("reliability_sweep.ecc_monotone",
                     std::uint64_t(ecc_monotone ? 1 : 0));

            // Wear leveling shrinks the per-plane P/E spread wherever
            // refresh actually programs pages (strictly — the
            // least-worn policy steers every scrub re-write at the
            // freshest plane, lifting the minimum), and cannot differ
            // when nothing programs.
            bool leveling_ok = true;
            for (std::size_t r = 0; r < 3; ++r)
                for (std::size_t e = 0; e < 3; ++e) {
                    const core::ServeStats &bump =
                        rstats[(0 * 3 + r) * 3 + e];
                    const core::ServeStats &lev =
                        rstats[(1 * 3 + r) * 3 + e];
                    leveling_ok =
                        leveling_ok &&
                        (refs[r].pages_per_s > 0.0
                             ? lev.wear_spread_pe < bump.wear_spread_pe
                             : lev.wear_spread_pe ==
                                   bump.wear_spread_pe);
                }
            std::cout << "wear leveling shrinks the P/E spread: "
                      << (leveling_ok ? "yes" : "NO") << "\n";
            json.add("reliability_sweep.leveling_reduces_spread",
                     std::uint64_t(leveling_ok ? 1 : 0));

            // Inert co-design knobs must not perturb a PR 6-style
            // fault timeline: with wear tracking off, ECC strength 0
            // and refresh off, setting the passive knobs (skew,
            // codeword size, sense adder) replays the same serve
            // bit-identically — the gating, not just the defaults, is
            // what keeps the legacy fault sweep byte-stable.
            core::SchedOptions legacy;
            legacy.max_batch = 4;
            legacy.policy = core::SchedPolicy::ChunkedInterleave;
            legacy.prefill_chunk = 256;
            legacy.npu_contention = false;
            legacy.request_deadline = 60 * kSec;
            legacy.slo_ttft_ms = 300000.0;
            legacy.degrade = core::DegradePolicy::ShedNewest;
            legacy.faults.ucp_rate = 0.05;
            legacy.faults.retention_hours = 1000.0;
            legacy.faults.pe_cycles = 1500.0;
            legacy.faults.seed = 17;
            legacy.faults.addOffline(0, 5 * kSec);
            core::SchedOptions inert = legacy;
            inert.faults.wear_skew = 0.6;
            inert.faults.ecc_codeword_bytes = 2048;
            inert.faults.ecc_sense_per_bit = 0.02;
            const auto pair = sweep.map<core::ServeStats>(
                2, [&](std::size_t i) {
                    return sched.serve(smoke_trace,
                                       i == 0 ? legacy : inert);
                });
            bool bit_exact =
                pair[0].requests.size() == pair[1].requests.size();
            for (std::size_t i = 0;
                 bit_exact && i < pair[0].requests.size(); ++i)
                bit_exact =
                    pair[0].requests[i].finish_tick ==
                        pair[1].requests[i].finish_tick &&
                    pair[0].requests[i].total_token_time ==
                        pair[1].requests[i].total_token_time &&
                    pair[0].requests[i].prefill_time ==
                        pair[1].requests[i].prefill_time;
            std::cout << "inert co-design knobs bit-exact vs legacy "
                         "fault serve: "
                      << (bit_exact ? "yes" : "NO") << "\n";
            json.add("reliability_sweep.inert_knobs_bit_exact",
                     std::uint64_t(bit_exact ? 1 : 0));
        }
    }

    // --- fleet sweep ----------------------------------------------------
    // N independent device replicas (Sangam-style scale-out view),
    // each serving its own seeded Poisson trace under the chunked SLO
    // config, run across the worker pool and merged index-ordered.
    // Full runs only: each replica is a full 70B co-simulation.
    if (fleet_only ||
        (!smoke && !arrivals_only && !kv_only && !fault_only &&
         !rel_only)) {
        const std::size_t replicas = 4;
        const std::uint64_t fleet_seed = 23;
        const auto replica = [&](std::size_t, std::uint64_t seed) {
            const core::ArrivalTrace trace =
                core::ArrivalTrace::poisson(0.5, 6, seed, shapes);
            return serveTrace(trace,
                              core::SchedPolicy::ChunkedInterleave,
                              256u, 4);
        };
        const core::FleetSweep fleet;
        const core::FleetStats fs =
            fleet.run(replicas, fleet_seed, replica);

        Table t("Fleet sweep (" + std::to_string(replicas) +
                " replicas x 6 Poisson arrivals @ 0.5 req/s, "
                "chunked 256, batch 4)");
        t.header({"replica", "seed", "tok", "goodput tok/s",
                  "TTFT p99", "makespan ms", "events"});
        for (std::size_t i = 0; i < fs.replicas; ++i) {
            const core::ServeStats &s = fs.replica_stats[i];
            t.row({Table::fmtInt(std::uint32_t(i)),
                   std::to_string(
                       core::FleetSweep::replicaSeed(fleet_seed, i) &
                       0xffff),
                   Table::fmtInt(std::uint32_t(s.total_tokens)),
                   Table::fmt(s.goodput_tokens_per_s, 4),
                   Table::fmt(s.ttft.p99_ms, 0),
                   Table::fmt(double(s.sim_makespan) / 1e6, 1),
                   Table::fmtInt(std::uint32_t(s.sim_events))});
        }
        t.row({"fleet", "-",
               Table::fmtInt(std::uint32_t(fs.total_tokens)),
               Table::fmt(fs.goodput_tokens_per_s, 4),
               Table::fmt(fs.ttft.p99_ms, 0),
               Table::fmt(double(fs.sim_makespan_max) / 1e6, 1),
               Table::fmtInt(std::uint32_t(fs.sim_events))});
        t.print(std::cout);

        json.add("fleet_sweep.replicas", std::uint64_t(fs.replicas));
        json.add("fleet_sweep.threads",
                 std::uint64_t(fleet.threads()));
        json.add("fleet_sweep.requests", std::uint64_t(fs.requests));
        json.add("fleet_sweep.completed", fs.completed);
        json.add("fleet_sweep.total_tokens", fs.total_tokens);
        json.add("fleet_sweep.goodput_tokens_per_s",
                 fs.goodput_tokens_per_s);
        json.add("fleet_sweep.sim_events", fs.sim_events);
        json.add("fleet_sweep.sim_makespan_max_ms",
                 double(fs.sim_makespan_max) / 1e6);
        json.add("fleet_sweep.events_per_s", fs.events_per_s);
        json.add("fleet_sweep.ttft.p50_ms", fs.ttft.p50_ms);
        json.add("fleet_sweep.ttft.p95_ms", fs.ttft.p95_ms);
        json.add("fleet_sweep.ttft.p99_ms", fs.ttft.p99_ms);

        // Self-check 1: one worker thread vs the full pool must merge
        // bit-identically (seeding + index-ordered reduction).
        const core::FleetStats ref =
            core::FleetSweep(1).run(replicas, fleet_seed, replica);
        const bool deterministic =
            ref.total_tokens == fs.total_tokens &&
            ref.sim_events == fs.sim_events &&
            ref.sim_makespan_max == fs.sim_makespan_max &&
            ref.goodput_tokens_per_s == fs.goodput_tokens_per_s &&
            ref.ttft.p99_ms == fs.ttft.p99_ms;
        std::cout << "fleet merge bit-identical across thread "
                     "counts: "
                  << (deterministic ? "yes" : "NO") << "\n";
        json.add("fleet_sweep.deterministic",
                 std::uint64_t(deterministic ? 1 : 0));

        // Self-check 2: a replica's result is a pure function of
        // (base seed, index) — shrinking the fleet must not perturb
        // the replicas that remain.
        const core::FleetStats half =
            core::FleetSweep(1).run(replicas / 2, fleet_seed,
                                    replica);
        bool prefix_ok = true;
        for (std::size_t i = 0; i < replicas / 2; ++i)
            prefix_ok =
                prefix_ok &&
                half.replica_stats[i].sim_events ==
                    fs.replica_stats[i].sim_events &&
                half.replica_stats[i].sim_makespan ==
                    fs.replica_stats[i].sim_makespan &&
                half.replica_stats[i].total_tokens ==
                    fs.replica_stats[i].total_tokens;
        std::cout << "replica results independent of fleet size: "
                  << (prefix_ok ? "yes" : "NO") << "\n";
        json.add("fleet_sweep.replica_prefix_independent",
                 std::uint64_t(prefix_ok ? 1 : 0));
    }

    json.add("wall_clock_s",
             std::chrono::duration<double>(
                 std::chrono::steady_clock::now() - wall0)
                 .count());
    const char *path = "BENCH_serving.json";
    if (json.writeTo(path))
        std::cout << "\nwrote " << path << "\n";
    else
        std::cerr << "failed to write " << path << "\n";
    return 0;
}
