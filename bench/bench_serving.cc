/**
 * @file
 * Serving-grade decode throughput under continuous batching: the
 * default 70B preset (Cam-LLM-L, Llama2-70B) serves a fixed mixed
 * workload of 16 requests with context lengths from 2K to 16K at
 * batch limits 1..16. Reports per-batch aggregate tokens/sec,
 * channel utilization and Jain fairness, and per-request service
 * detail at the largest batch. Emits BENCH_serving.json.
 *
 * Usage: bench_serving [--smoke]   (--smoke: 8 requests, batches
 * {1,4}; the CI budget-friendly subset)
 */

#include <chrono>
#include <cstring>
#include <iostream>
#include <vector>

#include "bench_util.h"
#include "core/batch_engine.h"
#include "core/sweep.h"
#include "json_out.h"

using namespace camllm;

namespace {

std::vector<core::RequestSpec>
mixedWorkload(std::size_t n_requests, std::uint32_t decode_tokens)
{
    // Long-context serving mix: attention DRAM stalls leave channel
    // bubbles a single stream cannot fill, which is exactly what
    // continuous batching recovers.
    const std::uint32_t ctx[] = {2048, 4096, 8192, 16384};
    std::vector<core::RequestSpec> reqs;
    reqs.reserve(n_requests);
    for (std::size_t i = 0; i < n_requests; ++i)
        reqs.push_back({ctx[i % 4], decode_tokens});
    return reqs;
}

} // namespace

int
main(int argc, char **argv)
{
    const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
    const auto wall0 = std::chrono::steady_clock::now();
    bench::banner("serving throughput under continuous batching");

    const core::CamConfig cfg = core::presetL();
    const llm::ModelConfig model = llm::llama2_70b();
    const std::vector<core::RequestSpec> reqs =
        mixedWorkload(smoke ? 8 : 16, 1);
    const std::vector<std::uint32_t> batches =
        smoke ? std::vector<std::uint32_t>{1, 4}
              : std::vector<std::uint32_t>{1, 2, 4, 8, 16};

    std::cout << "preset " << cfg.name << ", model " << model.name
              << ", " << reqs.size()
              << " requests, contexts 2K/4K/8K/16K\n";

    // Every batch point is an independent co-simulation; fan them out
    // over the sweep pool (results stay index-ordered).
    const core::BatchEngine engine(cfg, model);
    core::ParallelSweep sweep;
    const auto stats = sweep.map<core::BatchStats>(
        batches.size(), [&](std::size_t i) {
            return engine.run(reqs, batches[i]);
        });

    bench::BenchJson json;
    json.addString("bench", "bench_serving");
    json.addString("preset", cfg.name);
    json.addString("model", model.name);
    json.add("requests", std::uint64_t(reqs.size()));

    Table t("Serving throughput vs batch limit");
    t.header({"batch", "agg tok/s", "finite-run tok/s", "chan util",
              "fairness", "sim makespan (ms)"});
    for (std::size_t i = 0; i < batches.size(); ++i) {
        const core::BatchStats &b = stats[i];
        t.row({Table::fmtInt(batches[i]),
               Table::fmt(b.aggregate_tokens_per_s, 3),
               Table::fmt(b.finite_run_tokens_per_s, 3),
               Table::fmtPercent(b.avg_channel_util),
               Table::fmt(b.fairness_jain, 3),
               Table::fmt(double(b.sim_makespan) / 1e6, 1)});
        const std::string p = "batch" + std::to_string(batches[i]);
        json.add(p + ".aggregate_tokens_per_s",
                 b.aggregate_tokens_per_s);
        json.add(p + ".finite_run_tokens_per_s",
                 b.finite_run_tokens_per_s);
        json.add(p + ".avg_channel_util", b.avg_channel_util);
        json.add(p + ".fairness_jain", b.fairness_jain);
        json.add(p + ".sim_makespan_ms",
                 double(b.sim_makespan) / 1e6);
        json.add(p + ".extrapolation_factor", b.extrapolation_factor);
    }
    t.print(std::cout);

    // Acceptance self-check: aggregate throughput must rise
    // monotonically from batch 1 through 8.
    bool monotone = true;
    for (std::size_t i = 1; i < batches.size() && batches[i] <= 8; ++i)
        monotone = monotone && stats[i].aggregate_tokens_per_s >
                                   stats[i - 1].aggregate_tokens_per_s;
    std::cout << "\nmonotone aggregate 1->8: "
              << (monotone ? "yes" : "NO") << "\n";
    json.add("monotone_1_to_8", std::uint64_t(monotone ? 1 : 0));

    // Per-request service detail at the largest batch.
    const core::BatchStats &big = stats.back();
    Table d("Per-request service at batch " +
            std::to_string(batches.back()));
    d.header({"req", "context", "tokens", "admit (ms)", "finish (ms)",
              "mean tok (ms)", "tok/s"});
    for (const core::RequestStats &r : big.requests)
        d.row({Table::fmtInt(r.id), Table::fmtInt(r.context),
               Table::fmtInt(r.decode_tokens),
               Table::fmt(double(r.admit_tick) / 1e6, 2),
               Table::fmt(double(r.finish_tick) / 1e6, 2),
               Table::fmt(double(r.mean_token_time) / 1e6, 1),
               Table::fmt(r.tokens_per_s, 3)});
    d.print(std::cout);

    json.add("wall_clock_s",
             std::chrono::duration<double>(
                 std::chrono::steady_clock::now() - wall0)
                 .count());
    const char *path = "BENCH_serving.json";
    if (json.writeTo(path))
        std::cout << "\nwrote " << path << "\n";
    else
        std::cerr << "failed to write " << path << "\n";
    return 0;
}
