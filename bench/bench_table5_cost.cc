/**
 * @file
 * Table V: memory bill-of-materials cost to support 70B INT8
 * inference — Cambricon-LLM (flash weights + small DRAM) vs the
 * traditional all-DRAM design, plus the chiplet packaging adder.
 */

#include <iostream>

#include "bench_util.h"
#include "core/cost_model.h"

using namespace camllm;

int
main()
{
    bench::banner("Table V memory cost for 70B INT8 inference");
    core::Bom cam = core::camllmBom(80.0, 2.0);
    core::Bom trad = core::traditionalBom(80.0, 0.0);

    Table t("Table V: cost of Cambricon-LLM vs traditional "
            "architecture");
    t.header({"", "Cam count", "Cam cost ($)", "Trad count",
              "Trad cost ($)"});
    t.row({"DRAM (GB)", Table::fmt(cam.dram_gb, 0),
           Table::fmt(cam.dram_usd, 2), Table::fmt(trad.dram_gb, 0),
           Table::fmt(trad.dram_usd, 2)});
    t.row({"Flash (GB)", Table::fmt(cam.flash_gb, 0),
           Table::fmt(cam.flash_usd, 2), Table::fmt(trad.flash_gb, 0),
           Table::fmt(trad.flash_usd, 2)});
    t.row({"Total Price", "", Table::fmt(cam.totalUsd(), 2), "",
           Table::fmt(trad.totalUsd(), 2)});
    t.print(std::cout);

    std::cout << "\nsavings: $"
              << Table::fmt(trad.totalUsd() - cam.totalUsd(), 2)
              << " (paper text says $150.01; its own table implies"
                 " $151.01)\n";
    std::cout << "chiplet packaging adder on a $100 chip: <= $"
              << Table::fmt(core::chipletAdderUsd(100.0), 2)
              << " (paper bound: <15% of raw cost, <=$100)\n";
    return 0;
}
