/**
 * @file
 * Figure 10: accuracy under flash bit errors with and without the
 * on-die outlier ECC, on the HellaSwag/ARC/WinoGrande proxies.
 */

#include <iostream>

#include "bench_util.h"
#include "ecc_accuracy_util.h"

using namespace camllm;

int
main()
{
    bench::banner("Fig 10 accuracy with vs without the on-die ECC");
    bench::AccuracyProbe probe;
    const double bers[] = {1e-5, 1e-4, 2e-4, 8e-4, 2e-3, 8e-3};

    const auto specs = bench::proxyDatasets();
    for (std::size_t d = 0; d < specs.size(); ++d) {
        Table t("Fig 10: " + specs[d].name + " accuracy (%)");
        std::vector<std::string> head = {"mode", "clean"};
        for (double b : bers)
            head.push_back(Table::fmt(b, 5));
        t.header(head);

        for (bool ecc_on : {false, true}) {
            std::vector<std::string> row = {
                ecc_on ? "with err cor" : "without err cor",
                Table::fmt(probe.accuracyAt(d, 0.0, ecc_on) * 100.0, 1)};
            for (double b : bers)
                row.push_back(Table::fmt(
                    probe.accuracyAt(d, b, ecc_on) * 100.0, 1));
            t.row(row);
        }
        t.print(std::cout);
    }

    std::cout << "\nShape check (paper): without ECC, accuracy decays"
                 " from ~1e-5 onward; with the\noutlier ECC most"
                 " accuracy survives to ~2e-4 (92-95% of baseline) and"
                 " protection\nfinally gives out above ~8e-4, because"
                 " sub-threshold flips are unprotected.\n";
    return 0;
}
