/**
 * @file
 * Figure 15: scalability of decode speed and channel usage with
 * (a/c) chips per channel at 8 channels and (b/d) channel count at 4
 * chips per channel, on OPT-6.7B/13B/30B.
 */

#include <functional>
#include <iostream>

#include "bench_util.h"

using namespace camllm;

namespace {

/**
 * Shared shape of Fig 15(a/c) and (b/d): a model x geometry grid,
 * swept in parallel (every point is an independent co-simulation) and
 * printed in the same row/column order as the sequential loops.
 */
void
sweepGrid(const char *speed_title, const char *util_title,
          const std::vector<std::uint32_t> &points,
          const std::function<core::CamConfig(std::uint32_t)> &make_cfg)
{
    std::vector<llm::ModelConfig> models = {llm::opt6_7b(), llm::opt13b(),
                                            llm::opt30b()};
    Table t(speed_title);
    Table u(util_title);
    std::vector<std::string> head = {"model"};
    for (auto c : points)
        head.push_back(Table::fmtInt(c));
    t.header(head);
    u.header(head);

    std::vector<bench::SweepJob> jobs;
    for (const auto &m : models)
        for (auto c : points)
            jobs.emplace_back(make_cfg(c), m);
    const auto stats = bench::runSweepMemo(jobs);

    std::size_t j = 0;
    for (const auto &m : models) {
        std::vector<std::string> row = {m.name}, urow = {m.name};
        for (std::size_t i = 0; i < points.size(); ++i) {
            const auto &s = stats[j++];
            row.push_back(Table::fmt(s.tokens_per_s, 2));
            urow.push_back(Table::fmtPercent(s.avg_channel_util, 0));
        }
        t.row(row);
        u.row(urow);
    }
    t.print(std::cout);
    u.print(std::cout);
}

void
sweepChips()
{
    sweepGrid("Fig 15(a): decode speed vs chips per channel "
              "(8 channels)",
              "Fig 15(c): channel usage vs chips per channel",
              {1, 2, 4, 8, 16, 32, 64, 128},
              [](std::uint32_t c) { return core::presetCustom(8, c); });
}

void
sweepChannels()
{
    sweepGrid("Fig 15(b): decode speed vs channel count (4 chips/ch)",
              "Fig 15(d): channel usage vs channel count",
              {1, 2, 4, 8, 16, 32, 64},
              [](std::uint32_t c) { return core::presetCustom(c, 4); });
}

} // namespace

int
main()
{
    bench::banner("Fig 15 scalability with chips and channels");
    sweepChips();
    sweepChannels();
    std::cout << "\nShape check (paper): speed grows quickly with the"
                 " first few chips then\nsaturates (weights cannot"
                 " engage every core; channel usage falls), while\n"
                 "channel scaling remains near-linear across the whole"
                 " range.\n";
    return 0;
}
