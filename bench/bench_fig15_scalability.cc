/**
 * @file
 * Figure 15: scalability of decode speed and channel usage with
 * (a/c) chips per channel at 8 channels and (b/d) channel count at 4
 * chips per channel, on OPT-6.7B/13B/30B.
 */

#include <iostream>

#include "bench_util.h"

using namespace camllm;

namespace {

void
sweepChips()
{
    const std::uint32_t chips[] = {1, 2, 4, 8, 16, 32, 64, 128};
    std::vector<llm::ModelConfig> models = {llm::opt6_7b(), llm::opt13b(),
                                            llm::opt30b()};
    Table t("Fig 15(a): decode speed vs chips per channel "
            "(8 channels)");
    Table u("Fig 15(c): channel usage vs chips per channel");
    std::vector<std::string> head = {"model"};
    for (auto c : chips)
        head.push_back(Table::fmtInt(c));
    t.header(head);
    u.header(head);
    for (const auto &m : models) {
        std::vector<std::string> row = {m.name}, urow = {m.name};
        for (auto c : chips) {
            auto s = bench::run(core::presetCustom(8, c), m);
            row.push_back(Table::fmt(s.tokens_per_s, 2));
            urow.push_back(Table::fmtPercent(s.avg_channel_util, 0));
        }
        t.row(row);
        u.row(urow);
    }
    t.print(std::cout);
    u.print(std::cout);
}

void
sweepChannels()
{
    const std::uint32_t channels[] = {1, 2, 4, 8, 16, 32, 64};
    std::vector<llm::ModelConfig> models = {llm::opt6_7b(), llm::opt13b(),
                                            llm::opt30b()};
    Table t("Fig 15(b): decode speed vs channel count (4 chips/ch)");
    Table u("Fig 15(d): channel usage vs channel count");
    std::vector<std::string> head = {"model"};
    for (auto c : channels)
        head.push_back(Table::fmtInt(c));
    t.header(head);
    u.header(head);
    for (const auto &m : models) {
        std::vector<std::string> row = {m.name}, urow = {m.name};
        for (auto c : channels) {
            auto s = bench::run(core::presetCustom(c, 4), m);
            row.push_back(Table::fmt(s.tokens_per_s, 2));
            urow.push_back(Table::fmtPercent(s.avg_channel_util, 0));
        }
        t.row(row);
        u.row(urow);
    }
    t.print(std::cout);
    u.print(std::cout);
}

} // namespace

int
main()
{
    bench::banner("Fig 15 scalability with chips and channels");
    sweepChips();
    sweepChannels();
    std::cout << "\nShape check (paper): speed grows quickly with the"
                 " first few chips then\nsaturates (weights cannot"
                 " engage every core; channel usage falls), while\n"
                 "channel scaling remains near-linear across the whole"
                 " range.\n";
    return 0;
}
