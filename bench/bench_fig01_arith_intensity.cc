/**
 * @file
 * Figure 1: (a) arithmetic intensity of single-batch LLM decode vs
 * other AI workloads and hardware capability points; (b) reduction
 * ratio of the LLM GeMV scenario vs prior in-storage-computing work.
 */

#include <iostream>

#include "baselines/roofline.h"
#include "bench_util.h"
#include "llm/quant.h"

using namespace camllm;

int
main()
{
    bench::banner("Fig 1(a) arithmetic intensity / Fig 1(b) reduction "
                  "ratio");
    const auto quant = llm::QuantSpec::of(llm::QuantMode::W8A8);

    Table a("Fig 1(a): arithmetic intensity (INT8 OP/Byte)");
    a.header({"workload / device", "AI or ridge", "note"});
    a.row({"LLM decode (OPT-6.7B, single batch)",
           Table::fmt(baselines::llmDecodeAi(llm::opt6_7b(), quant, 512),
                      2),
           "paper: ~2"});
    a.row({"LLM decode (Llama2-70B, single batch)",
           Table::fmt(baselines::llmDecodeAi(llm::llama2_70b(), quant,
                                             512),
                      2),
           "paper: ~2"});
    a.row({"LLM prefill (OPT-6.7B, 512 tokens)",
           Table::fmt(baselines::llmPrefillAi(llm::opt6_7b(), quant, 512),
                      0),
           "orders of magnitude above decode"});
    a.row({"DLRM (batch 64)",
           Table::fmt(baselines::dlrmAi(64), 0), "paper: 30-100x LLM"});
    a.row({"BERT-base (batch 8, seq 256)",
           Table::fmt(baselines::bertBaseAi(8, 256), 0),
           "paper: 30-100x LLM"});
    a.row({"VGG-16 (batch 1)", Table::fmt(baselines::vgg16Ai(1), 0),
           "paper: 30-100x LLM"});
    for (const auto &d : baselines::referenceDevices()) {
        a.row({d.name + " (ridge)", Table::fmt(d.ridge(), 0),
               "TOPS/BW capability point"});
    }
    a.print(std::cout);

    Table b("Fig 1(b): reduction ratio (input bytes / output bytes)");
    b.header({"scenario", "reduction ratio", "basis"});
    for (const auto &p : baselines::reductionRatios(4096))
        b.row({p.workload, Table::fmt(p.reduction_ratio, 0), p.basis});
    b.print(std::cout);

    std::cout << "\nShape check: LLM decode AI ~2 is 30-100x below the"
                 " other workloads,\nand the LLM GeMV reduction ratio is"
                 " ~100x beyond prior ISC scenarios.\n";
    return 0;
}
