/**
 * @file
 * Figure 3(a): roofline analysis — a smartphone NPU at decode AI ~2
 * (point A) vs Cambricon-LLM, whose on-die processing raises the
 * effective weight bandwidth by an order of magnitude (point B).
 */

#include <iostream>

#include "baselines/roofline.h"
#include "bench_util.h"
#include "llm/quant.h"

using namespace camllm;

int
main()
{
    bench::banner("Fig 3(a) roofline: smartphone NPU (A) -> "
                  "Cambricon-LLM (B)");
    const auto quant = llm::QuantSpec::of(llm::QuantMode::W8A8);
    const double decode_ai =
        baselines::llmDecodeAi(llm::opt6_7b(), quant, 512);

    // The effective weight-consumption bandwidth of each Cam-LLM
    // preset, measured by the engine (flash on-die + channel reads).
    Table t("Roofline points at decode AI");
    t.header({"platform", "AI (OP/B)", "weight BW (GB/s)",
              "attainable GOPS", "peak GOPS"});

    baselines::Device phone{"Smartphone NPU (point A)", 2.0, 40.0};
    t.row({phone.name, Table::fmt(decode_ai, 2),
           Table::fmt(phone.mem_gbps, 1),
           Table::fmt(phone.attainableGops(decode_ai), 1),
           Table::fmt(phone.tops * 1000.0, 0)});

    for (const auto &cfg : bench::presets()) {
        auto s = bench::run(cfg, llm::opt6_7b());
        const double weight_gbps =
            double(s.weight_bytes_flash + s.weight_bytes_npu) /
            double(s.token_time);
        baselines::Device dev =
            baselines::cambriconDevice(weight_gbps, cfg.npu.tops);
        t.row({cfg.name + " (point B)", Table::fmt(decode_ai, 2),
               Table::fmt(weight_gbps, 1),
               Table::fmt(dev.attainableGops(decode_ai), 1),
               Table::fmt(dev.tops * 1000.0, 0)});
    }
    t.print(std::cout);

    std::cout << "\nShape check: at AI~2 the smartphone NPU attains"
                 " ~80 GOPS of its 2000 GOPS peak;\nCambricon-LLM moves"
                 " the memory ceiling up ~an order of magnitude"
                 " (A -> B).\n";
    return 0;
}
