/**
 * @file
 * Figure 11: decode speed under W4A16 quantization vs the default
 * W8A8, on Cambricon-LLM-S and Cambricon-LLM-L across all models.
 */

#include <iostream>

#include "bench_util.h"

using namespace camllm;

namespace {

void
sweep(const core::CamConfig &base, const char *title)
{
    Table t(title);
    t.header({"model", "W8A8 (tok/s)", "W4A16 (tok/s)", "gain",
              "W2A16 (tok/s, ext)"});
    double gain_sum = 0.0;
    int n = 0;
    auto models = llm::optFamily();
    for (const auto &m : llm::llamaFamily())
        models.push_back(m);
    for (const auto &m : models) {
        core::CamConfig w8 = base;
        core::CamConfig w4 = base;
        w4.quant = llm::QuantMode::W4A16;
        core::CamConfig w2 = base;
        w2.quant = llm::QuantMode::W2A16;
        const double a = bench::run(w8, m).tokens_per_s;
        const double b = bench::run(w4, m).tokens_per_s;
        const double c = bench::run(w2, m).tokens_per_s;
        t.row({m.name, Table::fmt(a, 2), Table::fmt(b, 2),
               Table::fmtPercent(b / a - 1.0), Table::fmt(c, 2)});
        gain_sum += b / a - 1.0;
        ++n;
    }
    t.row({"average", "", "", Table::fmtPercent(gain_sum / n), ""});
    t.print(std::cout);
}

} // namespace

int
main()
{
    bench::banner("Fig 11 W4A16 vs W8A8 decode speed");
    sweep(core::presetS(),
          "Fig 11(a): Cambricon-LLM-S (paper avg gain 85.3%)");
    sweep(core::presetL(),
          "Fig 11(b): Cambricon-LLM-L (paper avg gain 47.9%)");
    std::cout << "\nShape check (paper): S gains more than L on small"
                 " models (L is partially\nattention-bound), and larger"
                 " models gain more than small ones on L.\n";
    return 0;
}
