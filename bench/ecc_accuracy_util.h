/**
 * @file
 * Shared harness for the accuracy-under-bit-error experiments
 * (Fig 3b and Fig 10): a synthetic transformer stored in bit-exact
 * flash pages, three proxy datasets matching the paper's benchmarks,
 * and an accuracy probe under a given BER with/without the on-die ECC.
 */

#ifndef CAMLLM_BENCH_ECC_ACCURACY_UTIL_H
#define CAMLLM_BENCH_ECC_ACCURACY_UTIL_H

#include <cstdint>
#include <string>
#include <vector>

#include "ecc/page_store.h"
#include "llm/eval.h"
#include "llm/tiny_transformer.h"

namespace camllm::bench {

/** A proxy dataset spec mirroring the paper's benchmark suite. */
struct ProxyDataset
{
    std::string name;
    std::uint32_t n_choices;
    double clean_accuracy; ///< the paper's baseline for OPT-6.7B
};

/** HellaSwag / ARC / WinoGrande proxies (clean accuracies from the
 *  paper's Fig 3b/Fig 10 y-intercepts). */
inline std::vector<ProxyDataset>
proxyDatasets()
{
    return {{"HellaSwag", 4, 0.67}, {"ARC", 4, 0.55},
            {"WinoGrande", 2, 0.69}};
}

/** Fixture: one synthetic model plus its materialized datasets. */
class AccuracyProbe
{
  public:
    explicit AccuracyProbe(std::uint32_t items_per_dataset = 80,
                           std::uint64_t seed = 20240924)
        : seed_(seed), model_(cfg_, seed)
    {
        std::uint64_t ds_seed = seed + 17;
        for (const auto &spec : proxyDatasets()) {
            datasets_.push_back(llm::makeDataset(
                model_, spec.name, items_per_dataset, spec.n_choices, 6,
                spec.clean_accuracy, ds_seed++));
        }
    }

    const std::vector<llm::EvalDataset> &datasets() const
    {
        return datasets_;
    }

    /**
     * Accuracy of dataset @p ds_index after storing the weights in
     * flash pages, flipping bits at @p ber, and reading back with or
     * without the outlier ECC.
     */
    double
    accuracyAt(std::size_t ds_index, double ber, bool ecc_on) const
    {
        ecc::PageStoreParams params;
        params.ecc_enabled = ecc_on;
        ecc::PageStore store(params);
        store.load(model_.packWeights());
        store.injectErrors(ber, seed_ ^ std::uint64_t(ber * 1e9) ^
                                    (ecc_on ? 0x9e37u : 0u));
        llm::TinyTransformer corrupted(cfg_, seed_);
        corrupted.unpackWeights(store.readBack());
        return llm::evaluate(corrupted, datasets_[ds_index]);
    }

  private:
    llm::TinyConfig cfg_;
    std::uint64_t seed_;
    llm::TinyTransformer model_;
    std::vector<llm::EvalDataset> datasets_;
};

} // namespace camllm::bench

#endif // CAMLLM_BENCH_ECC_ACCURACY_UTIL_H
