/**
 * @file
 * Figure 14: ablation of the hardware-aware tiling on Cam-LLM-S —
 * decode speed (a) and channel usage (b) for the hybrid NPU+flash
 * split vs flash-only execution (no weights offloaded to the NPU).
 */

#include <iostream>

#include "bench_util.h"

using namespace camllm;

int
main()
{
    bench::banner("Fig 14 hardware-aware tiling ablation (Cam-LLM-S)");

    Table a("Fig 14(a): decode speed (token/s)");
    a.header({"model", "our method", "without tiling", "speedup"});
    Table b("Fig 14(b): channel usage");
    b.header({"model", "our method", "without tiling"});

    auto models = llm::optFamily();
    for (const auto &m : llm::llamaFamily())
        models.push_back(m);
    for (const auto &m : models) {
        core::CamConfig with = core::presetS();
        core::CamConfig without = core::presetS();
        without.hybrid_tiling = false;
        auto rw = bench::run(with, m);
        auto ro = bench::run(without, m);
        a.row({m.name, Table::fmt(rw.tokens_per_s, 2),
               Table::fmt(ro.tokens_per_s, 2),
               Table::fmt(rw.tokens_per_s / ro.tokens_per_s, 2) + "x"});
        b.row({m.name, Table::fmtPercent(rw.avg_channel_util, 0),
               Table::fmtPercent(ro.avg_channel_util, 0)});
    }
    a.print(std::cout);
    b.print(std::cout);

    std::cout << "\nShape check (paper): tiling buys 1.3-1.4x decode"
                 " speed; without it the\nchannels idle at ~2-3% (only"
                 " input/result vectors cross them).\n";
    return 0;
}
