/**
 * @file
 * Figure 13: decode speed of Cambricon-LLM-S under the planner's
 * optimal 256x2048 tile vs the forced 128x4096 and 4096x128 shapes.
 */

#include <iostream>

#include "bench_util.h"

using namespace camllm;

int
main()
{
    bench::banner("Fig 13 tile-shape sensitivity (Cam-LLM-S)");

    struct Shape
    {
        const char *label;
        std::optional<core::TileShape> forced;
    };
    const Shape shapes[] = {
        {"256x2048 (ours)", std::nullopt},
        {"128x4096", core::TileShape{128, 4096}},
        {"4096x128", core::TileShape{4096, 128}},
    };

    auto models = llm::optFamily();
    for (const auto &m : llm::llamaFamily())
        models.push_back(m);

    Table t("Fig 13: decode speed (token/s) under forced tile shapes");
    std::vector<std::string> head = {"tile"};
    for (const auto &m : models)
        head.push_back(m.name);
    t.header(head);

    // All shape x model points are independent: sweep them in parallel
    // and rebuild the rows from the order-preserving result vector.
    std::vector<bench::SweepJob> jobs;
    for (const auto &s : shapes)
        for (const auto &m : models) {
            core::CamConfig cfg = core::presetS();
            cfg.forced_tile = s.forced;
            jobs.emplace_back(cfg, m);
        }
    const auto stats = bench::runSweepMemo(jobs);

    std::vector<std::vector<double>> speeds;
    std::size_t j = 0;
    for (const auto &s : shapes) {
        std::vector<std::string> row = {s.label};
        std::vector<double> vals;
        for (std::size_t i = 0; i < models.size(); ++i) {
            const double v = stats[j++].tokens_per_s;
            vals.push_back(v);
            row.push_back(Table::fmt(v, 2));
        }
        speeds.push_back(std::move(vals));
        t.row(row);
    }
    t.print(std::cout);

    for (std::size_t s = 1; s < 3; ++s) {
        double gain = 0.0;
        for (std::size_t i = 0; i < models.size(); ++i)
            gain += speeds[0][i] / speeds[s][i] - 1.0;
        std::cout << "average advantage of ours over " << shapes[s].label
                  << ": "
                  << Table::fmtPercent(gain / double(models.size()))
                  << "\n";
    }

    std::cout << "\nShape check (paper): the optimal 256x2048 tile"
                 " outperforms 128x4096 by\n~17.5% and 4096x128 by"
                 " ~24.7% on average.\n";
    return 0;
}
