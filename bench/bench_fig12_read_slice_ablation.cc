/**
 * @file
 * Figure 12: ablation of the read-request Slice Control on
 * Cambricon-LLM-S — decode speed (a) and channel usage (b) with the
 * feature vs with monolithic FIFO reads.
 */

#include <iostream>

#include "bench_util.h"

using namespace camllm;

int
main()
{
    bench::banner("Fig 12 read-request slicing ablation (Cam-LLM-S)");

    Table a("Fig 12(a): decode speed (token/s)");
    a.header({"model", "our method", "without read slice", "speedup"});
    Table b("Fig 12(b): channel usage");
    b.header({"model", "our method", "without read slice"});

    auto models = llm::optFamily();
    for (const auto &m : llm::llamaFamily())
        models.push_back(m);
    for (const auto &m : models) {
        core::CamConfig with = core::presetS();
        core::CamConfig without = core::presetS();
        without.slicing = false;
        auto rw = bench::run(with, m);
        auto ro = bench::run(without, m);
        a.row({m.name, Table::fmt(rw.tokens_per_s, 2),
               Table::fmt(ro.tokens_per_s, 2),
               Table::fmt(rw.tokens_per_s / ro.tokens_per_s, 2) + "x"});
        b.row({m.name, Table::fmtPercent(rw.avg_channel_util, 0),
               Table::fmtPercent(ro.avg_channel_util, 0)});
    }
    a.print(std::cout);
    b.print(std::cout);

    std::cout << "\nShape check (paper): slicing buys 1.6-1.8x decode"
                 " speed and raises channel\nusage from ~50% to"
                 " ~79-91%.\n";
    return 0;
}
