/**
 * @file
 * Figure 16: per-token data transfer volume (a) and energy (b) of
 * Cambricon-LLM-S vs FlexGen-SSD across the OPT and Llama2 families.
 */

#include <iostream>

#include "baselines/flexgen.h"
#include "bench_util.h"
#include "core/energy.h"

using namespace camllm;

int
main()
{
    bench::banner("Fig 16 data transfer and energy per token "
                  "(Cam-LLM-S vs FlexGen-SSD)");
    const auto quant = llm::QuantSpec::of(llm::QuantMode::W8A8);

    Table a("Fig 16(a): data transfer (GB/token)");
    a.header({"model", "Cam-LLM-S", "Flexgen-SSD", "reduction"});
    Table b("Fig 16(b): energy (J/token)");
    b.header({"model", "Cam-LLM-S", "Flexgen-SSD", "ratio"});

    auto models = llm::optFamily();
    for (const auto &m : llm::llamaFamily())
        models.push_back(m);
    for (const auto &m : models) {
        auto cam = bench::run(core::presetS(), m);
        baselines::FlexGenConfig fg;
        auto base = baselines::flexgenDecode(m, quant, fg);

        const double cam_gb = double(cam.transferBytes()) / 1e9;
        const double fg_gb = double(base.transfer_bytes) / 1e9;
        a.row({m.name, Table::fmt(cam_gb, 1), Table::fmt(fg_gb, 1),
               Table::fmt(fg_gb / cam_gb, 1) + "x"});

        const double cam_j = core::computeEnergy(cam).totalJ();
        b.row({m.name, Table::fmt(cam_j, 2),
               Table::fmt(base.energy_j, 2),
               Table::fmtPercent(cam_j / base.energy_j, 0)});
    }
    a.print(std::cout);
    b.print(std::cout);

    // Component breakdown for one model, for the curious.
    auto cam = bench::run(core::presetS(), llm::opt6_7b());
    auto eb = core::computeEnergy(cam);
    Table c("Energy breakdown, Cam-LLM-S on OPT-6.7B (J/token)");
    c.header({"NAND array", "channel/D2D", "DRAM", "NPU ops",
              "flash-core ops", "total"});
    c.row({Table::fmt(eb.array_j, 3), Table::fmt(eb.channel_j, 3),
           Table::fmt(eb.dram_j, 3), Table::fmt(eb.npu_j, 3),
           Table::fmt(eb.flash_core_j, 3), Table::fmt(eb.totalJ(), 3)});
    c.print(std::cout);

    std::cout << "\nShape check (paper): ~9.7-11.6x less data movement"
                 " and ~67% of the energy\nper token vs FlexGen-SSD.\n";
    return 0;
}
