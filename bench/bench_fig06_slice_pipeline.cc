/**
 * @file
 * Figure 6: a measured channel timeline for the three Slice Control
 * strategies on the paper's simplified configuration (one channel,
 * one die, two planes, one compute core):
 *   (a) read-compute requests only;
 *   (b) read-compute requests + one monolithic read request;
 *   (c) read-compute requests + sliced read requests (ours).
 */

#include <iostream>
#include <vector>

#include "bench_util.h"
#include "flash/channel_engine.h"
#include "sim/event_queue.h"

using namespace camllm;
using namespace camllm::flash;

namespace {

struct Outcome
{
    Tick rc_done = 0; ///< completion of the read-compute stream
    Tick end = 0;
    double util = 0.0;
    std::vector<ChannelBus::GrantTrace> grants;
};

Outcome
runStrategy(bool with_read, bool sliced)
{
    // The paper's simplified setup: one channel, one die. A fast
    // demo flash (tR = 12 us, 4 KB input slices) makes the rc grant
    // stream dense enough that a monolithic 16 KB transfer cannot
    // hide in a bubble, exactly the situation Fig 6 illustrates.
    FlashParams p;
    p.geometry.channels = 1;
    p.geometry.chips_per_channel = 1;
    p.geometry.dies_per_chip = 1;
    p.timing.t_read = 12 * kUs;

    EventQueue eq;
    CompletionRouter router(eq);
    Tick last_rc = 0;
    router.connect([&](const Completion &c) {
        if (c.kind == Completion::Kind::RcResult)
            last_rc = eq.now();
    });
    ChannelEngine ce(eq, p, router, 3, /*slice_control=*/sliced);
    Outcome out;
    ce.bus().setTraceHook([&](const ChannelBus::GrantTrace &g) {
        out.grants.push_back(g);
    });

    RcTileWork tile;
    tile.op_id = 1;
    tile.cores_used = 1;
    tile.input_bytes = 4096;
    tile.out_bytes_per_core = 1024;
    tile.compute_time = p.timing.t_read;
    for (int i = 0; i < 4; ++i)
        ce.submitTile(tile);
    if (with_read)
        for (int i = 0; i < 2; ++i) {
            ReadPageJob job;
            job.op_id = 2;
            job.bytes = p.geometry.page_bytes;
            job.sliced = sliced;
            ce.submitRead(job);
        }

    eq.run();
    out.rc_done = last_rc;
    out.end = eq.now();
    out.util = ce.bus().busy().utilization(out.end);
    return out;
}

/** Render a coarse 100-column timeline of bus occupancy. */
std::string
timeline(const Outcome &o, Tick horizon)
{
    std::string line(100, '.');
    for (const auto &g : o.grants) {
        std::size_t a = std::size_t(double(g.start) / double(horizon) *
                                    100.0);
        std::size_t b = std::size_t(double(g.end) / double(horizon) *
                                    100.0);
        for (std::size_t i = a; i <= b && i < 100; ++i)
            line[i] = (g.priority == BusPriority::High) ? '#' : '=';
    }
    return line;
}

} // namespace

int
main()
{
    bench::banner("Fig 6 channel pipeline under three Slice Control "
                  "strategies");

    Outcome a = runStrategy(false, true);
    Outcome b = runStrategy(true, false);
    Outcome c = runStrategy(true, true);
    const Tick horizon = std::max({a.end, b.end, c.end});

    std::cout << "legend: '#' rc input/result grant, '=' read data, "
                 "'.' idle;\nhorizon = "
              << horizon / 1000 << " us\n\n";
    std::cout << "(a) 4 rc requests only            |" << timeline(a, horizon)
              << "|\n";
    std::cout << "(b) 4 rc + 1 unsliced read        |" << timeline(b, horizon)
              << "|\n";
    std::cout << "(c) 4 rc + 1 sliced read (ours)   |" << timeline(c, horizon)
              << "|\n\n";

    Table t("Fig 6 summary");
    t.header({"strategy", "rc stream done (us)", "all done (us)",
              "channel busy"});
    t.row({"(a) rc only", Table::fmt(double(a.rc_done) / 1000.0, 1),
           Table::fmt(double(a.end) / 1000.0, 1),
           Table::fmtPercent(a.util)});
    t.row({"(b) + unsliced reads",
           Table::fmt(double(b.rc_done) / 1000.0, 1),
           Table::fmt(double(b.end) / 1000.0, 1),
           Table::fmtPercent(b.util)});
    t.row({"(c) + sliced reads (ours)",
           Table::fmt(double(c.rc_done) / 1000.0, 1),
           Table::fmt(double(c.end) / 1000.0, 1),
           Table::fmtPercent(c.util)});
    t.print(std::cout);

    std::cout << "\nShape check (paper): (c) delivers the extra read"
                 " without extending the rc\nstream — its finish time"
                 " aligns with (a) while (b) stretches it.\n";
    return 0;
}
