/**
 * @file
 * Extension: prefill-phase behaviour. The paper's Fig 3(a) argues
 * prefill has high arithmetic intensity and suits the NPU; this bench
 * quantifies it on the simulator — prefill latency vs prompt length
 * (stream-bound floor then compute-bound growth), the prefill:decode
 * amortization factor, the chunked-prefill overhead curve behind the
 * serving scheduler's token budget, and the systolic-array
 * utilization that makes the NPU the right home for the batched GeMM.
 *
 * Self-check: routing a whole prompt through the scheduler's chunked
 * path as a single chunk must reproduce CambriconEngine::prefill()
 * bit-identically.
 */

#include <cstdlib>
#include <iostream>

#include "bench_util.h"
#include "core/arrivals.h"
#include "core/scheduler.h"
#include "npu/systolic.h"

using namespace camllm;

int
main()
{
    bench::banner("extension: prefill phase & systolic utilization");

    {
        Table t("prefill latency vs prompt length (OPT-6.7B)");
        t.header({"config", "decode (ms/tok)", "prefill 128 (ms)",
                  "prefill 512 (ms)", "prefill 2048 (ms)",
                  "tok/s at 512"});
        for (const auto &cfg : bench::presets()) {
            core::CambriconEngine e(cfg, llm::opt6_7b());
            auto dec = e.decodeToken();
            auto p128 = e.prefill(128);
            auto p512 = e.prefill(512);
            auto p2k = e.prefill(2048);
            t.row({cfg.name,
                   Table::fmt(double(dec.token_time) / 1e6, 1),
                   Table::fmt(double(p128.token_time) / 1e6, 1),
                   Table::fmt(double(p512.token_time) / 1e6, 1),
                   Table::fmt(double(p2k.token_time) / 1e6, 1),
                   Table::fmt(p512.tokens_per_s, 0)});
        }
        t.print(std::cout);
    }

    {
        Table t("prefill amortization (Cam-LLM-S, OPT-6.7B)");
        t.header({"prompt", "prefill (ms)", "naive: prompt x decode "
                            "(ms)", "amortization"});
        core::CambriconEngine e(core::presetS(), llm::opt6_7b());
        const double dec_ms =
            double(e.decodeToken().token_time) / 1e6;
        for (std::uint32_t m : {64u, 256u, 1024u, 4096u}) {
            const double pre_ms = double(e.prefill(m).token_time) / 1e6;
            t.row({Table::fmtInt(m), Table::fmt(pre_ms, 1),
                   Table::fmt(dec_ms * m, 1),
                   Table::fmt(dec_ms * m / pre_ms, 1) + "x"});
        }
        t.print(std::cout);
    }

    {
        // The serving scheduler drives prefill through
        // llm::buildPrefillChunkGraph; cross-check that one chunk
        // covering the whole prompt replays the classic one-shot
        // prefill to the tick, then show the chunking overhead curve
        // (re-streamed KV + per-chunk drains) the interleave policy
        // trades against decode interactivity.
        const core::CamConfig cfg = core::presetS();
        const llm::ModelConfig model = llm::opt6_7b();
        const std::uint32_t prompt = 1024;

        const core::TokenStats whole =
            core::CambriconEngine(cfg, model).prefill(prompt);

        const core::Scheduler sched(cfg, model);
        const auto chunkedPrefill = [&](std::uint32_t budget) {
            core::SchedOptions opt;
            opt.max_batch = 1;
            opt.policy = core::SchedPolicy::ChunkedInterleave;
            opt.prefill_chunk = budget;
            const std::vector<core::ServeRequest> reqs = {
                {prompt, 0, 1, 0}};
            return sched.serve(reqs, opt).requests[0];
        };

        const core::ServeRequestStats one = chunkedPrefill(prompt);
        const bool bitexact =
            one.prefill_chunks == 1 &&
            one.first_token.token_time == whole.token_time &&
            one.first_token.channel_bytes_high ==
                whole.channel_bytes_high &&
            one.first_token.channel_bytes_low ==
                whole.channel_bytes_low &&
            one.first_token.dram_bytes == whole.dram_bytes &&
            one.first_token.pages_read == whole.pages_read &&
            one.first_token.npu_flops == whole.npu_flops;
        std::cout << "\none-chunk scheduler prefill == "
                     "CambriconEngine::prefill(): "
                  << (bitexact ? "bit-identical" : "MISMATCH") << "\n";
        if (!bitexact)
            return 1;

        Table t("chunked prefill overhead (Cam-LLM-S, OPT-6.7B, "
                "1024-token prompt)");
        t.header({"chunk budget", "chunks", "prefill (ms)",
                  "vs one-shot"});
        const double whole_ms = double(whole.token_time) / 1e6;
        for (std::uint32_t budget : {1024u, 512u, 256u, 128u, 64u}) {
            const core::ServeRequestStats r = chunkedPrefill(budget);
            const double ms = double(r.prefill_time) / 1e6;
            t.row({Table::fmtInt(budget),
                   Table::fmtInt(r.prefill_chunks),
                   Table::fmt(ms, 1),
                   Table::fmt(ms / whole_ms, 2) + "x"});
        }
        t.print(std::cout);
    }

    {
        Table t("systolic-array mapping (16x16 @ 1 GHz, 2.05 TOPS "
                "peak)");
        t.header({"GeMM shape", "batch", "utilization",
                  "effective TOPS"});
        npu::SystolicParams p;
        struct Case
        {
            std::uint64_t m, k, b;
        };
        for (const Case &c :
             {Case{4096, 4096, 1}, Case{4096, 4096, 512},
              Case{16384, 4096, 1}, Case{16384, 4096, 512},
              Case{64, 256, 1}, Case{50272, 9216, 1}}) {
            auto e = npu::estimateGemm(p, c.m, c.k, c.b);
            t.row({std::to_string(c.m) + "x" + std::to_string(c.k),
                   Table::fmtInt(c.b), Table::fmtPercent(e.utilization),
                   Table::fmt(e.effective_tops, 2)});
        }
        t.print(std::cout);
    }

    std::cout << "\nReading: prefill sits at the weight-stream floor"
                 " until the prompt makes the\nbatched GeMM"
                 " compute-bound; either way it is 20-200x cheaper per"
                 " token than\ndecode, so the decode phase the paper"
                 " optimizes is indeed the bottleneck.\n";
    return 0;
}
