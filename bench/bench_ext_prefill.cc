/**
 * @file
 * Extension: prefill-phase behaviour. The paper's Fig 3(a) argues
 * prefill has high arithmetic intensity and suits the NPU; this bench
 * quantifies it on the simulator — prefill latency vs prompt length
 * (stream-bound floor then compute-bound growth), the prefill:decode
 * amortization factor, and the systolic-array utilization that makes
 * the NPU the right home for the batched GeMM.
 */

#include <iostream>

#include "bench_util.h"
#include "npu/systolic.h"

using namespace camllm;

int
main()
{
    bench::banner("extension: prefill phase & systolic utilization");

    {
        Table t("prefill latency vs prompt length (OPT-6.7B)");
        t.header({"config", "decode (ms/tok)", "prefill 128 (ms)",
                  "prefill 512 (ms)", "prefill 2048 (ms)",
                  "tok/s at 512"});
        for (const auto &cfg : bench::presets()) {
            core::CambriconEngine e(cfg, llm::opt6_7b());
            auto dec = e.decodeToken();
            auto p128 = e.prefill(128);
            auto p512 = e.prefill(512);
            auto p2k = e.prefill(2048);
            t.row({cfg.name,
                   Table::fmt(double(dec.token_time) / 1e6, 1),
                   Table::fmt(double(p128.token_time) / 1e6, 1),
                   Table::fmt(double(p512.token_time) / 1e6, 1),
                   Table::fmt(double(p2k.token_time) / 1e6, 1),
                   Table::fmt(p512.tokens_per_s, 0)});
        }
        t.print(std::cout);
    }

    {
        Table t("prefill amortization (Cam-LLM-S, OPT-6.7B)");
        t.header({"prompt", "prefill (ms)", "naive: prompt x decode "
                            "(ms)", "amortization"});
        core::CambriconEngine e(core::presetS(), llm::opt6_7b());
        const double dec_ms =
            double(e.decodeToken().token_time) / 1e6;
        for (std::uint32_t m : {64u, 256u, 1024u, 4096u}) {
            const double pre_ms = double(e.prefill(m).token_time) / 1e6;
            t.row({Table::fmtInt(m), Table::fmt(pre_ms, 1),
                   Table::fmt(dec_ms * m, 1),
                   Table::fmt(dec_ms * m / pre_ms, 1) + "x"});
        }
        t.print(std::cout);
    }

    {
        Table t("systolic-array mapping (16x16 @ 1 GHz, 2.05 TOPS "
                "peak)");
        t.header({"GeMM shape", "batch", "utilization",
                  "effective TOPS"});
        npu::SystolicParams p;
        struct Case
        {
            std::uint64_t m, k, b;
        };
        for (const Case &c :
             {Case{4096, 4096, 1}, Case{4096, 4096, 512},
              Case{16384, 4096, 1}, Case{16384, 4096, 512},
              Case{64, 256, 1}, Case{50272, 9216, 1}}) {
            auto e = npu::estimateGemm(p, c.m, c.k, c.b);
            t.row({std::to_string(c.m) + "x" + std::to_string(c.k),
                   Table::fmtInt(c.b), Table::fmtPercent(e.utilization),
                   Table::fmt(e.effective_tops, 2)});
        }
        t.print(std::cout);
    }

    std::cout << "\nReading: prefill sits at the weight-stream floor"
                 " until the prompt makes the\nbatched GeMM"
                 " compute-bound; either way it is 20-200x cheaper per"
                 " token than\ndecode, so the decode phase the paper"
                 " optimizes is indeed the bottleneck.\n";
    return 0;
}
