/**
 * @file
 * Shared helpers for the figure/table reproduction binaries.
 */

#ifndef CAMLLM_BENCH_BENCH_UTIL_H
#define CAMLLM_BENCH_BENCH_UTIL_H

#include <iostream>
#include <string>
#include <utility>
#include <vector>

#include "common/table.h"
#include "core/engine.h"
#include "core/presets.h"
#include "core/sweep.h"
#include "llm/model_config.h"

namespace camllm::bench {

/** The three Table II presets in order. */
inline std::vector<core::CamConfig>
presets()
{
    return {core::presetS(), core::presetM(), core::presetL()};
}

/** Decode one token and return the stats. */
inline core::TokenStats
run(const core::CamConfig &cfg, const llm::ModelConfig &model)
{
    return core::CambriconEngine(cfg, model).decodeToken();
}

/** A single sweep point: decode one token of model under cfg. */
using SweepJob = std::pair<core::CamConfig, llm::ModelConfig>;

/**
 * Decode one token per job on the ParallelSweep pool. Results come
 * back in job order, so tables built from them are identical to a
 * sequential sweep.
 */
inline std::vector<core::TokenStats>
runSweep(const std::vector<SweepJob> &jobs)
{
    core::ParallelSweep sweep;
    return sweep.map<core::TokenStats>(jobs.size(), [&](std::size_t i) {
        return run(jobs[i].first, jobs[i].second);
    });
}

/**
 * runSweep through the process-wide SweepCache: repeated points (and,
 * with CAMLLM_SWEEP_CACHE set, points simulated by earlier runs) skip
 * the co-simulation. New points are persisted back when the env var
 * names a cache file.
 */
inline std::vector<core::TokenStats>
runSweepMemo(const std::vector<SweepJob> &jobs)
{
    core::ParallelSweep sweep;
    auto out = sweep.mapMemo(
        core::SweepCache::global(), jobs.size(),
        [&](std::size_t i) {
            return core::sweepKey(jobs[i].first, jobs[i].second);
        },
        [&](std::size_t i) {
            return run(jobs[i].first, jobs[i].second);
        });
    core::SweepCache::saveGlobal();
    return out;
}

/** Print a standard header naming the figure being reproduced. */
inline void
banner(const std::string &what)
{
    std::cout << "\n=== Cambricon-LLM reproduction: " << what
              << " ===\n\n";
}

} // namespace camllm::bench

#endif // CAMLLM_BENCH_BENCH_UTIL_H
