/**
 * @file
 * Shared helpers for the figure/table reproduction binaries.
 */

#ifndef CAMLLM_BENCH_BENCH_UTIL_H
#define CAMLLM_BENCH_BENCH_UTIL_H

#include <iostream>
#include <string>
#include <vector>

#include "common/table.h"
#include "core/engine.h"
#include "core/presets.h"
#include "llm/model_config.h"

namespace camllm::bench {

/** The three Table II presets in order. */
inline std::vector<core::CamConfig>
presets()
{
    return {core::presetS(), core::presetM(), core::presetL()};
}

/** Decode one token and return the stats. */
inline core::TokenStats
run(const core::CamConfig &cfg, const llm::ModelConfig &model)
{
    return core::CambriconEngine(cfg, model).decodeToken();
}

/** Print a standard header naming the figure being reproduced. */
inline void
banner(const std::string &what)
{
    std::cout << "\n=== Cambricon-LLM reproduction: " << what
              << " ===\n\n";
}

} // namespace camllm::bench

#endif // CAMLLM_BENCH_BENCH_UTIL_H
