/**
 * @file
 * ECC design-space ablation: the paper fixes N = 2 value copies and a
 * top-1% protection set. This sweep shows what those choices buy —
 * spare-area footprint vs accuracy retention at the paper's critical
 * error rates — including the points where the code no longer fits
 * the 1664-byte spare area.
 */

#include <iostream>

#include "bench_util.h"
#include "ecc_accuracy_util.h"

using namespace camllm;

namespace {

double
accuracyWith(const ecc::OutlierCodecParams &codec, double ber)
{
    llm::TinyConfig tcfg;
    llm::TinyTransformer model(tcfg, 99);
    llm::EvalDataset ds =
        llm::makeDataset(model, "probe", 80, 4, 6, 0.9, 7);

    ecc::PageStoreParams params;
    params.codec = codec;
    ecc::PageStore store(params);
    store.load(model.packWeights());
    store.injectErrors(ber, 1234);
    llm::TinyTransformer aged(tcfg, 99);
    aged.unpackWeights(store.readBack());
    return llm::evaluate(aged, ds);
}

} // namespace

int
main()
{
    bench::banner("outlier-ECC design space (N copies x protect "
                  "fraction)");
    ecc::OutlierCodec ref;

    Table t("spare-area footprint per 16 KB page (budget: 1664 B)");
    t.header({"value copies N", "protect 0.5%", "protect 1% (paper)",
              "protect 2%", "protect 4%"});
    for (std::uint32_t n : {2u, 4u, 6u}) {
        std::vector<std::string> row = {Table::fmtInt(n)};
        for (double frac : {0.005, 0.01, 0.02, 0.04}) {
            ecc::OutlierCodecParams p;
            p.value_copies = n;
            p.protect_fraction = frac;
            ecc::OutlierCodec codec(p);
            const std::uint32_t bytes = codec.eccBytes(16384);
            row.push_back(Table::fmtInt(bytes) +
                          (bytes <= 1664 ? "" : " (!)"));
        }
        t.row(row);
    }
    t.print(std::cout);
    std::cout << "(!) exceeds the spare area -> not implementable\n\n";

    Table a("proxy accuracy (%) at two error rates");
    a.header({"configuration", "BER 2e-4", "BER 2e-3"});
    {
        ecc::OutlierCodecParams none; // decoded without ECC below
        (void)none;
        llm::TinyConfig tcfg;
        llm::TinyTransformer model(tcfg, 99);
        llm::EvalDataset ds =
            llm::makeDataset(model, "probe", 80, 4, 6, 0.9, 7);
        auto no_ecc = [&](double ber) {
            ecc::PageStoreParams params;
            params.ecc_enabled = false;
            ecc::PageStore store(params);
            store.load(model.packWeights());
            store.injectErrors(ber, 1234);
            llm::TinyTransformer aged(tcfg, 99);
            aged.unpackWeights(store.readBack());
            return llm::evaluate(aged, ds);
        };
        a.row({"no ECC", Table::fmt(no_ecc(2e-4) * 100.0, 1),
               Table::fmt(no_ecc(2e-3) * 100.0, 1)});
    }
    for (std::uint32_t n : {2u, 4u}) {
        for (double frac : {0.01, 0.02}) {
            ecc::OutlierCodecParams p;
            p.value_copies = n;
            p.protect_fraction = frac;
            std::string label = "N=" + std::to_string(n) +
                                ", top " +
                                Table::fmt(frac * 100.0, 1) + "%";
            if (ecc::OutlierCodec(p).eccBytes(16384) > 1664) {
                a.row({label + " (doesn't fit)", "n/a", "n/a"});
                continue;
            }
            a.row({label,
                   Table::fmt(accuracyWith(p, 2e-4) * 100.0, 1),
                   Table::fmt(accuracyWith(p, 2e-3) * 100.0, 1)});
        }
    }
    a.print(std::cout);

    std::cout << "\nReading: the paper's (N=2, 1%) point fits the"
                 " spare area with ~57% headroom\nand already captures"
                 " most of the protection; stronger settings pay"
                 " spare-area\ncost for marginal accuracy because the"
                 " unprotected sub-threshold mass, not\nvote failure,"
                 " is what ultimately breaks accuracy (Section VI-D).\n";
    return 0;
}
