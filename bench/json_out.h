/**
 * @file
 * Minimal machine-readable bench output: a flat JSON object of
 * dotted-key metrics (BENCH_micro.json, BENCH_fig09.json) so the perf
 * trajectory can be tracked across PRs without parsing tables.
 */

#ifndef CAMLLM_BENCH_JSON_OUT_H
#define CAMLLM_BENCH_JSON_OUT_H

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <string>
#include <utility>
#include <vector>

namespace camllm::bench {

/** Accumulates metrics and writes them as one flat JSON object. */
class BenchJson
{
  public:
    void
    add(const std::string &key, double value)
    {
        char buf[64];
        std::snprintf(buf, sizeof buf, "%.6g", value);
        entries_.emplace_back(key, buf);
    }

    void
    add(const std::string &key, std::uint64_t value)
    {
        entries_.emplace_back(key, std::to_string(value));
    }

    void
    addString(const std::string &key, const std::string &value)
    {
        entries_.emplace_back(key, "\"" + value + "\"");
    }

    /** @return true when the file was written. */
    bool
    writeTo(const std::string &path) const
    {
        std::ofstream out(path);
        if (!out)
            return false;
        out << "{\n";
        for (std::size_t i = 0; i < entries_.size(); ++i) {
            out << "  \"" << entries_[i].first
                << "\": " << entries_[i].second;
            if (i + 1 < entries_.size())
                out << ",";
            out << "\n";
        }
        out << "}\n";
        out.flush(); // surface late I/O errors (e.g. full disk) here
        return bool(out);
    }

  private:
    std::vector<std::pair<std::string, std::string>> entries_;
};

} // namespace camllm::bench

#endif // CAMLLM_BENCH_JSON_OUT_H
