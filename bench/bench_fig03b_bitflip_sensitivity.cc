/**
 * @file
 * Figure 3(b): sensitivity of LLM task accuracy to flash bit-flip
 * errors without any protection, on proxies of HellaSwag, ARC and
 * WinoGrande (see DESIGN.md for the substitution rationale).
 */

#include <iostream>

#include "bench_util.h"
#include "ecc_accuracy_util.h"

using namespace camllm;

int
main()
{
    bench::banner("Fig 3(b) accuracy vs flash bit-flip rate, no ECC");
    bench::AccuracyProbe probe;
    const double bers[] = {1e-6, 1e-5, 1e-4, 1e-3, 1e-2};

    Table t("Accuracy (%) vs BER, without error correction");
    std::vector<std::string> head = {"dataset", "clean"};
    for (double b : bers)
        head.push_back(Table::fmt(b, 6));
    head.push_back("chance");
    t.header(head);

    const auto specs = bench::proxyDatasets();
    for (std::size_t d = 0; d < specs.size(); ++d) {
        std::vector<std::string> row = {
            specs[d].name, Table::fmt(probe.accuracyAt(d, 0.0, false) *
                                          100.0,
                                      1)};
        for (double b : bers)
            row.push_back(
                Table::fmt(probe.accuracyAt(d, b, false) * 100.0, 1));
        row.push_back(
            Table::fmt(100.0 / specs[d].n_choices, 1));
        t.row(row);
    }
    t.print(std::cout);

    std::cout << "\nShape check (paper): accuracy starts collapsing"
                 " around 1e-4 and falls to\nchance level by 1e-2 —"
                 " a >70% relative drop for the 4-way tasks.\n";
    return 0;
}
