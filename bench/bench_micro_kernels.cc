/**
 * @file
 * Google-benchmark microbenchmarks for the hot simulator and
 * functional kernels: event queue, channel bus, die pipeline, tiling
 * planner, INT8 GeMV, ECC page codec and bit-flip injection.
 */

#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "core/presets.h"
#include "core/tiling.h"
#include "ecc/bitflip.h"
#include "ecc/outlier_codec.h"
#include "flash/channel_engine.h"
#include "llm/kernels.h"
#include "llm/tiny_transformer.h"
#include "sim/event_queue.h"

using namespace camllm;

namespace {

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    const int n = int(state.range(0));
    for (auto _ : state) {
        EventQueue eq;
        int sink = 0;
        for (int i = 0; i < n; ++i)
            eq.schedule(Tick(i % 997), [&] { ++sink; });
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(100000);

struct NullListener : flash::ChannelEngine::Listener
{
    void onRcResult(std::uint64_t) override {}
    void onReadDelivered(std::uint64_t, std::uint32_t) override {}
};

void
BM_FlashChannelRcThroughput(benchmark::State &state)
{
    flash::FlashParams p;
    p.geometry.channels = 1;
    for (auto _ : state) {
        EventQueue eq;
        NullListener lis;
        flash::ChannelEngine ce(eq, p, lis);
        flash::RcTileWork tile;
        tile.op_id = 1;
        tile.cores_used = p.geometry.diesPerChannel();
        tile.input_bytes = 256;
        tile.out_bytes_per_core = 64;
        tile.compute_time = p.timing.t_read;
        for (int i = 0; i < 100; ++i)
            ce.submitTile(tile);
        eq.run();
        benchmark::DoNotOptimize(ce.pagesComputed());
    }
    state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_FlashChannelRcThroughput);

void
BM_TilingPlanner(benchmark::State &state)
{
    core::CamConfig cfg = core::presetL();
    core::TilingPlanner planner(cfg.flash,
                                llm::QuantSpec::of(llm::QuantMode::W8A8),
                                cfg.tilingOptions());
    std::uint64_t dim = 4096;
    for (auto _ : state) {
        auto plan = planner.plan(dim, dim);
        benchmark::DoNotOptimize(plan.alpha);
        dim = (dim % 16384) + 257;
    }
}
BENCHMARK(BM_TilingPlanner);

void
BM_GemvInt8(benchmark::State &state)
{
    const std::uint32_t d = std::uint32_t(state.range(0));
    llm::QTensor w(d, d, 0.01f);
    Rng rng(1);
    for (auto &v : w.data)
        v = std::int8_t(rng.below(255)) ;
    std::vector<float> x(d, 0.5f), y(d);
    for (auto _ : state) {
        llm::gemv(w, x, y);
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() * std::uint64_t(d) * d);
}
BENCHMARK(BM_GemvInt8)->Arg(128)->Arg(512);

void
BM_EccEncodePage(benchmark::State &state)
{
    ecc::OutlierCodec codec;
    Rng rng(2);
    std::vector<std::int8_t> page(16384);
    for (auto &v : page)
        v = std::int8_t(rng.below(255));
    for (auto _ : state) {
        auto blob = codec.encode(page);
        benchmark::DoNotOptimize(blob.data());
    }
    state.SetBytesProcessed(state.iterations() * 16384);
}
BENCHMARK(BM_EccEncodePage);

void
BM_EccDecodePage(benchmark::State &state)
{
    ecc::OutlierCodec codec;
    Rng rng(3);
    std::vector<std::int8_t> page(16384);
    for (auto &v : page)
        v = std::int8_t(rng.below(255));
    auto blob = codec.encode(page);
    for (auto _ : state) {
        auto copy = page;
        codec.decode(copy, blob, nullptr);
        benchmark::DoNotOptimize(copy.data());
    }
    state.SetBytesProcessed(state.iterations() * 16384);
}
BENCHMARK(BM_EccDecodePage);

void
BM_BitFlipInjection(benchmark::State &state)
{
    std::vector<std::uint8_t> buf(1 << 20);
    Rng rng(4);
    for (auto _ : state) {
        auto n = ecc::injectBitFlips(buf, 1e-4, rng);
        benchmark::DoNotOptimize(n);
    }
    state.SetBytesProcessed(state.iterations() * (1 << 20));
}
BENCHMARK(BM_BitFlipInjection);

void
BM_TinyTransformerForward(benchmark::State &state)
{
    llm::TinyConfig cfg;
    llm::TinyTransformer model(cfg, 5);
    std::vector<std::uint16_t> toks = {1, 2, 3, 4, 5, 6};
    for (auto _ : state) {
        auto logits = model.forward(toks);
        benchmark::DoNotOptimize(logits.data());
    }
}
BENCHMARK(BM_TinyTransformerForward);

} // namespace

BENCHMARK_MAIN();
