/**
 * @file
 * Google-benchmark microbenchmarks for the hot simulator and
 * functional kernels: event queue, channel bus, die pipeline, tiling
 * planner, INT8 GeMV, ECC page codec and bit-flip injection.
 */

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cmath>
#include <cstdio>

#include "common/rng.h"
#include "core/arrivals.h"
#include "core/engine.h"
#include "core/fleet.h"
#include "core/sweep.h"
#include "json_out.h"
#include "core/presets.h"
#include "core/tiling.h"
#include "ecc/bitflip.h"
#include "ecc/outlier_codec.h"
#include "flash/channel_engine.h"
#include "llm/kernels.h"
#include "llm/tiny_transformer.h"
#include "sim/event_queue.h"

using namespace camllm;

namespace {

void
BM_EventQueueScheduleRun(benchmark::State &state)
{
    const int n = int(state.range(0));
    for (auto _ : state) {
        EventQueue eq;
        int sink = 0;
        for (int i = 0; i < n; ++i)
            eq.schedule(Tick(i % 997), [&] { ++sink; });
        eq.run();
        benchmark::DoNotOptimize(sink);
    }
    state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_EventQueueScheduleRun)->Arg(1000)->Arg(100000);

void
BM_FlashChannelRcThroughput(benchmark::State &state)
{
    flash::FlashParams p;
    p.geometry.channels = 1;
    for (auto _ : state) {
        EventQueue eq;
        flash::CompletionRouter router(eq);
        router.connect([](const flash::Completion &) {});
        flash::ChannelEngine ce(eq, p, router);
        flash::RcTileWork tile;
        tile.op_id = 1;
        tile.cores_used = p.geometry.diesPerChannel();
        tile.input_bytes = 256;
        tile.out_bytes_per_core = 64;
        tile.compute_time = p.timing.t_read;
        for (int i = 0; i < 100; ++i)
            ce.submitTile(tile);
        eq.run();
        benchmark::DoNotOptimize(ce.pagesComputed());
    }
    state.SetItemsProcessed(state.iterations() * 100);
}
BENCHMARK(BM_FlashChannelRcThroughput);

void
BM_TilingPlanner(benchmark::State &state)
{
    core::CamConfig cfg = core::presetL();
    core::TilingPlanner planner(cfg.flash,
                                llm::QuantSpec::of(llm::QuantMode::W8A8),
                                cfg.tilingOptions());
    std::uint64_t dim = 4096;
    for (auto _ : state) {
        auto plan = planner.plan(dim, dim);
        benchmark::DoNotOptimize(plan.alpha);
        dim = (dim % 16384) + 257;
    }
}
BENCHMARK(BM_TilingPlanner);

/** Shared d x d GeMV inputs so blocked vs scalar compare like-for-like. */
struct GemvFixture
{
    llm::QTensor w;
    std::vector<float> x, y;

    explicit GemvFixture(std::uint32_t d) : w(d, d, 0.01f), x(d, 0.5f), y(d)
    {
        Rng rng(1);
        for (auto &v : w.data)
            v = std::int8_t(rng.below(255));
    }
};

void
BM_GemvInt8(benchmark::State &state)
{
    const std::uint32_t d = std::uint32_t(state.range(0));
    GemvFixture f(d);
    for (auto _ : state) {
        llm::gemv(f.w, f.x, f.y);
        benchmark::DoNotOptimize(f.y.data());
    }
    state.SetItemsProcessed(state.iterations() * std::uint64_t(d) * d);
}
BENCHMARK(BM_GemvInt8)->Arg(128)->Arg(512);

void
BM_GemvInt8Scalar(benchmark::State &state)
{
    const std::uint32_t d = std::uint32_t(state.range(0));
    GemvFixture f(d);
    for (auto _ : state) {
        llm::gemvScalar(f.w, f.x, f.y);
        benchmark::DoNotOptimize(f.y.data());
    }
    state.SetItemsProcessed(state.iterations() * std::uint64_t(d) * d);
}
BENCHMARK(BM_GemvInt8Scalar)->Arg(128)->Arg(512);

void
BM_GemvInt8Fast(benchmark::State &state)
{
    const std::uint32_t d = std::uint32_t(state.range(0));
    GemvFixture f(d);
    for (auto _ : state) {
        llm::gemvFast(f.w, f.x, f.y);
        benchmark::DoNotOptimize(f.y.data());
    }
    state.SetItemsProcessed(state.iterations() * std::uint64_t(d) * d);
    state.SetLabel(llm::gemvFastUsesAvx2() ? "avx2" : "fallback");
}
BENCHMARK(BM_GemvInt8Fast)->Arg(128)->Arg(512);

void
BM_EccEncodePage(benchmark::State &state)
{
    ecc::OutlierCodec codec;
    Rng rng(2);
    std::vector<std::int8_t> page(16384);
    for (auto &v : page)
        v = std::int8_t(rng.below(255));
    for (auto _ : state) {
        auto blob = codec.encode(page);
        benchmark::DoNotOptimize(blob.data());
    }
    state.SetBytesProcessed(state.iterations() * 16384);
}
BENCHMARK(BM_EccEncodePage);

void
BM_EccDecodePage(benchmark::State &state)
{
    ecc::OutlierCodec codec;
    Rng rng(3);
    std::vector<std::int8_t> page(16384);
    for (auto &v : page)
        v = std::int8_t(rng.below(255));
    auto blob = codec.encode(page);
    for (auto _ : state) {
        auto copy = page;
        codec.decode(copy, blob, nullptr);
        benchmark::DoNotOptimize(copy.data());
    }
    state.SetBytesProcessed(state.iterations() * 16384);
}
BENCHMARK(BM_EccDecodePage);

void
BM_BitFlipInjection(benchmark::State &state)
{
    std::vector<std::uint8_t> buf(1 << 20);
    Rng rng(4);
    for (auto _ : state) {
        auto n = ecc::injectBitFlips(buf, 1e-4, rng);
        benchmark::DoNotOptimize(n);
    }
    state.SetBytesProcessed(state.iterations() * (1 << 20));
}
BENCHMARK(BM_BitFlipInjection);

void
BM_TinyTransformerForward(benchmark::State &state)
{
    llm::TinyConfig cfg;
    llm::TinyTransformer model(cfg, 5);
    std::vector<std::uint16_t> toks = {1, 2, 3, 4, 5, 6};
    for (auto _ : state) {
        auto logits = model.forward(toks);
        benchmark::DoNotOptimize(logits.data());
    }
}
BENCHMARK(BM_TinyTransformerForward);

/**
 * Sparse serving-shaped calendar load: request arrivals separated by
 * multi-second Poisson idle gaps (mean 2 simulated seconds, i.e. ~2e9
 * ticks of nothing), each arrival firing a chain of densely packed
 * events (~500-tick exponential gaps). A flat bucketed calendar walks
 * every empty bucket across the idle gaps; the hierarchical wheel
 * cascades through them in O(levels).
 */
struct GapWorkload
{
    static constexpr int kArrivals = 5000;
    static constexpr int kChainLen = 40;
    static constexpr std::uint64_t kTotalEvents =
        std::uint64_t(kArrivals) * (1 + kChainLen);

    EventQueue eq;
    Rng rng{42};

    Tick expGap(double mean)
    {
        return Tick(-std::log(1.0 - rng.uniform()) * mean) + 1;
    }

    void link(int remaining)
    {
        if (remaining > 0)
            eq.scheduleIn(expGap(500.0),
                          [this, remaining] { link(remaining - 1); });
    }

    void run()
    {
        eq.reserve(kArrivals);
        Tick t = 0;
        for (int i = 0; i < kArrivals; ++i) {
            t += expGap(2.0e9);
            eq.schedule(t, [this] { link(kChainLen); });
        }
        eq.run();
    }
};

void
BM_EventQueueArrivalGaps(benchmark::State &state)
{
    for (auto _ : state) {
        GapWorkload w;
        w.run();
        benchmark::DoNotOptimize(w.eq.executed());
    }
    state.SetItemsProcessed(state.iterations() *
                            GapWorkload::kTotalEvents);
}
BENCHMARK(BM_EventQueueArrivalGaps);

/** Best-of-@p reps wall time of one call to @p fn, in seconds. */
template <typename Fn>
double
bestSeconds(int reps, Fn &&fn)
{
    double best = 1e100;
    for (int i = 0; i < reps; ++i) {
        const auto t0 = std::chrono::steady_clock::now();
        fn();
        const auto t1 = std::chrono::steady_clock::now();
        best = std::min(best,
                        std::chrono::duration<double>(t1 - t0).count());
    }
    return best;
}

/**
 * Hand-timed hot-path summaries for BENCH_micro.json: the same three
 * paths this PR family optimizes (event kernel, GeMV, one engine
 * decode), so the perf trajectory is diffable across commits.
 */
void
emitJson(double bench_wall_s)
{
    bench::BenchJson j;
    j.addString("bench", "bench_micro_kernels");
    j.add("wall_clock_s", bench_wall_s);

    {
        constexpr int kEvents = 100000;
        const double s = bestSeconds(5, [&] {
            EventQueue eq;
            eq.reserve(kEvents);
            int sink = 0;
            for (int i = 0; i < kEvents; ++i)
                eq.schedule(Tick(i % 997), [&sink] { ++sink; });
            eq.run();
            benchmark::DoNotOptimize(sink);
        });
        j.add("event_queue.events", std::uint64_t(kEvents));
        j.add("event_queue.events_per_s", double(kEvents) / s);
    }
    {
        // Arrival-gap shape: the hierarchical calendar's headline
        // case (multi-second idle gaps between dense event chains).
        const double s = bestSeconds(3, [] {
            GapWorkload w;
            w.run();
            if (w.eq.executed() != GapWorkload::kTotalEvents)
                std::fprintf(stderr, "gap workload event mismatch\n");
            benchmark::DoNotOptimize(w.eq.executed());
        });
        j.add("event_queue.gap_events", GapWorkload::kTotalEvents);
        j.add("event_queue.gap_events_per_s",
              double(GapWorkload::kTotalEvents) / s);
    }
    {
        // Fleet-scale events/sec: N independent serving replicas on
        // the worker pool (deterministic sim results, host-timed
        // throughput). Sized to stay inside the CI smoke budget —
        // per-event cost, not run length, is what the key tracks.
        const core::Scheduler sched(core::presetS(), llm::opt6_7b());
        core::SchedOptions opt;
        opt.max_batch = 4;
        const core::FleetSweep fleet;
        const core::FleetStats fs =
            fleet.run(4, 2024, [&](std::size_t, std::uint64_t seed) {
                return sched.serve(
                    core::ArrivalTrace::poisson(500.0, 4, seed,
                                                {{32, 2}, {48, 2}}),
                    opt);
            });
        j.add("fleet.replicas", std::uint64_t(fs.replicas));
        j.add("fleet.threads", std::uint64_t(fleet.threads()));
        j.add("fleet.sim_events", fs.sim_events);
        j.add("fleet.events_per_s", fs.events_per_s);
        j.add("fleet.goodput_tokens_per_s", fs.goodput_tokens_per_s);
    }
    {
        constexpr std::uint32_t d = 512;
        GemvFixture f(d);
        const double blocked = bestSeconds(20, [&] {
            llm::gemv(f.w, f.x, f.y);
            benchmark::DoNotOptimize(f.y.data());
        });
        const double scalar = bestSeconds(20, [&] {
            llm::gemvScalar(f.w, f.x, f.y);
            benchmark::DoNotOptimize(f.y.data());
        });
        const double fast = bestSeconds(20, [&] {
            llm::gemvFast(f.w, f.x, f.y);
            benchmark::DoNotOptimize(f.y.data());
        });
        const double elems = double(d) * d;
        j.add("gemv512.blocked_elems_per_s", elems / blocked);
        j.add("gemv512.scalar_elems_per_s", elems / scalar);
        j.add("gemv512.speedup_vs_scalar", scalar / blocked);
        j.add("gemv512.simd_elems_per_s", elems / fast);
        j.add("gemv512.simd_speedup_vs_scalar", scalar / fast);
        j.add("gemv512.simd_is_avx2",
              std::uint64_t(llm::gemvFastUsesAvx2() ? 1 : 0));
    }
    {
        const auto stats =
            core::CambriconEngine(core::presetS(), llm::opt6_7b())
                .decodeToken();
        j.add("decode.preset_s_opt6_7b_tokens_per_s",
              stats.tokens_per_s);
        j.add("decode.simulated_events_token_time_ticks",
              std::uint64_t(stats.token_time));
    }
    {
        // Fig 13-shaped sweep (one preset, every model): sequential
        // vs ParallelSweep, so multi-core machines record the pool's
        // wall-clock win and single-core ones record ~1x honestly.
        auto models = llm::optFamily();
        for (const auto &m : llm::llamaFamily())
            models.push_back(m);
        const auto decodeAll = [&](unsigned threads) {
            core::ParallelSweep sweep(threads);
            const auto out = sweep.map<double>(
                models.size(), [&](std::size_t i) {
                    return core::CambriconEngine(core::presetS(),
                                                 models[i])
                        .decodeToken()
                        .tokens_per_s;
                });
            benchmark::DoNotOptimize(out.data());
        };
        const unsigned hw = core::ParallelSweep::hardwareThreads();
        const double seq_s = bestSeconds(1, [&] { decodeAll(1); });
        const double par_s = bestSeconds(1, [&] { decodeAll(hw); });
        j.add("sweep.jobs", std::uint64_t(models.size()));
        j.add("sweep.threads", std::uint64_t(hw));
        j.add("sweep.sequential_s", seq_s);
        j.add("sweep.parallel_s", par_s);
        j.add("sweep.speedup", seq_s / par_s);
    }

    const char *path = "BENCH_micro.json";
    if (j.writeTo(path))
        std::printf("wrote %s\n", path);
    else
        std::fprintf(stderr, "failed to write %s\n", path);
}

} // namespace

int
main(int argc, char **argv)
{
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv))
        return 1;
    const auto wall0 = std::chrono::steady_clock::now();
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    const double wall_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      wall0)
            .count();
    emitJson(wall_s);
    return 0;
}
