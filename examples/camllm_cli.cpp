/**
 * @file
 * Command-line driver: run any (configuration, model, quantization,
 * phase) point of the simulator and print a full report — the tool a
 * downstream user reaches for before scripting the C++ API.
 *
 * Examples:
 *   camllm_cli --config L --model llama2-70b
 *   camllm_cli --config custom --channels 16 --chips 8 --model opt-30b
 *   camllm_cli --config S --model opt-6.7b --quant w4a16 --seq 1024
 *   camllm_cli --config M --model llama2-7b --prefill 512
 *   camllm_cli --config S --model opt-6.7b --no-slicing --no-tiling
 */

#include <cstdio>
#include <string>

#include "common/args.h"
#include "common/logging.h"
#include "core/energy.h"
#include "core/engine.h"
#include "core/presets.h"
#include "llm/model_config.h"

using namespace camllm;

namespace {

llm::ModelConfig
modelByName(const std::string &name)
{
    for (const auto &m : llm::optFamily())
        if (m.name == name)
            return m;
    for (const auto &m : llm::llamaFamily())
        if (m.name == name)
            return m;
    // Forgiving aliases: opt-6.7b, llama2-70b, etc.
    std::string lower;
    for (char c : name)
        lower += char(std::tolower(c));
    if (lower == "opt-6.7b" || lower == "opt6.7b")
        return llm::opt6_7b();
    if (lower == "opt-13b")
        return llm::opt13b();
    if (lower == "opt-30b")
        return llm::opt30b();
    if (lower == "opt-66b")
        return llm::opt66b();
    if (lower == "llama2-7b")
        return llm::llama2_7b();
    if (lower == "llama2-13b")
        return llm::llama2_13b();
    if (lower == "llama2-70b")
        return llm::llama2_70b();
    fatal("unknown model '%s' (try opt-6.7b/13b/30b/66b, "
          "llama2-7b/13b/70b)",
          name.c_str());
}

} // namespace

int
main(int argc, char **argv)
{
    Args args(argc, argv);
    if (args.has("help")) {
        std::printf(
            "usage: camllm_cli [options]\n"
            "  --config S|M|L|custom     Table II preset (default S)\n"
            "  --channels N --chips N    geometry for --config custom\n"
            "  --model NAME              opt-6.7b .. llama2-70b\n"
            "  --quant w8a8|w4a16|w2a16  quantization (default w8a8)\n"
            "  --seq N                   decode context length "
            "(default 512)\n"
            "  --prefill N               simulate prefill of N tokens\n"
            "  --generate N              prompt --seq, reply N tokens\n"
            "  --no-slicing --no-tiling --no-prefetch   ablations\n"
            "  --tile HxW                force a tile shape (Fig 13)\n");
        return 0;
    }

    // --- configuration -----------------------------------------------------
    const std::string preset = args.get("config", "S");
    core::CamConfig cfg;
    if (preset == "S")
        cfg = core::presetS();
    else if (preset == "M")
        cfg = core::presetM();
    else if (preset == "L")
        cfg = core::presetL();
    else if (preset == "custom")
        cfg = core::presetCustom(
            std::uint32_t(args.getInt("channels", 8)),
            std::uint32_t(args.getInt("chips", 2)));
    else
        fatal("unknown --config '%s'", preset.c_str());

    const std::string quant = args.get("quant", "w8a8");
    if (quant == "w4a16")
        cfg.quant = llm::QuantMode::W4A16;
    else if (quant == "w2a16")
        cfg.quant = llm::QuantMode::W2A16;
    else if (quant != "w8a8")
        fatal("unknown --quant '%s'", quant.c_str());

    cfg.seq_len = std::uint32_t(args.getInt("seq", cfg.seq_len));
    if (args.has("no-slicing"))
        cfg.slicing = false;
    if (args.has("no-tiling"))
        cfg.hybrid_tiling = false;
    if (args.has("no-prefetch"))
        cfg.prefetch = false;
    if (args.has("tile")) {
        const std::string t = args.get("tile");
        auto x = t.find('x');
        if (x == std::string::npos)
            fatal("--tile expects HxW, got '%s'", t.c_str());
        cfg.forced_tile =
            core::TileShape{std::uint32_t(std::stoul(t.substr(0, x))),
                            std::uint32_t(std::stoul(t.substr(x + 1)))};
    }

    llm::ModelConfig model = modelByName(args.get("model", "OPT-6.7B"));
    const bool do_generate = args.has("generate");
    const bool do_prefill = args.has("prefill");

    for (const auto &key : args.unusedKeys())
        warn("ignoring unknown option --%s", key.c_str());

    // --- run ------------------------------------------------------------------
    core::CambriconEngine engine(cfg, model);
    std::printf("# %s | %s | %s | seq %u%s%s\n", cfg.name.c_str(),
                model.name.c_str(),
                llm::QuantSpec::of(cfg.quant).label(), cfg.seq_len,
                cfg.slicing ? "" : " | no-slicing",
                cfg.hybrid_tiling ? "" : " | no-tiling");

    if (do_generate) {
        auto g = engine.generate(
            cfg.seq_len, std::uint32_t(args.getInt("generate", 128)));
        std::printf("prefill          : %.1f ms\n",
                    double(g.prefill.token_time) / 1e6);
        std::printf("decode           : %.2f token/s (first) .. %.2f "
                    "(last)\n",
                    g.first_decode.tokens_per_s,
                    g.last_decode.tokens_per_s);
        std::printf("whole exchange   : %.2f s\n", g.totalSeconds());
        return 0;
    }

    core::TokenStats s = do_prefill
                             ? engine.prefill(std::uint32_t(
                                   args.getInt("prefill", 512)))
                             : engine.decodeToken();
    core::EnergyBreakdown e = core::computeEnergy(s);
    std::printf("speed            : %.2f token/s\n", s.tokens_per_s);
    std::printf("latency          : %.2f ms\n",
                double(s.token_time) / 1e6);
    std::printf("channel usage    : %.1f%%\n",
                s.avg_channel_util * 100.0);
    std::printf("alpha (flash)    : %.1f%%\n",
                s.alphaEffective() * 100.0);
    std::printf("pages            : %llu computed in flash, %llu read\n",
                (unsigned long long)s.pages_computed,
                (unsigned long long)s.pages_read);
    std::printf("data moved       : %.2f GB (%.2f channel + %.2f "
                "DRAM)\n",
                double(s.transferBytes()) / 1e9,
                double(s.channel_bytes_high + s.channel_bytes_low) /
                    1e9,
                double(s.dram_bytes) / 1e9);
    std::printf("energy           : %.2f J (array %.2f, channel %.2f, "
                "dram %.2f)\n",
                e.totalJ(), e.array_j, e.channel_j, e.dram_j);
    return 0;
}
