/**
 * @file
 * Scenario: an SoC architect sizing the flash chiplet. Sweep channel
 * and chip counts, simulate the target workload on each candidate,
 * and report the cheapest configurations that meet a decode-speed
 * goal — the kind of exploration Table II's S/M/L presets came from.
 *
 * The sweep is memoized: each (config, model) point keys into a
 * SweepCache, so iterating on the grid re-simulates only new points.
 * Set CAMLLM_SWEEP_CACHE=/path/to/file to keep the cache across runs
 * (the second invocation answers instantly).
 */

#include <cstdio>
#include <iostream>
#include <vector>

#include "common/table.h"
#include "core/cost_model.h"
#include "core/engine.h"
#include "core/presets.h"
#include "core/sweep.h"
#include "llm/model_config.h"

using namespace camllm;

int
main()
{
    const llm::ModelConfig model = llm::llama2_70b();
    const double target_tok_s = 3.0; // interactive floor
    const double weight_gb =
        double(llm::QuantSpec::of(llm::QuantMode::W8A8)
                   .weightBytes(model.totalParams())) /
        1e9;

    std::printf("Goal: run %s at >= %.1f token/s as cheaply as"
                " possible.\n\n",
                model.name.c_str(), target_tok_s);

    Table t("design-space sweep (candidates meeting/missing target)");
    t.header({"channels", "chips/ch", "cores", "tok/s", "channel util",
              "mem cost ($)", "meets target"});

    struct Candidate
    {
        std::uint32_t ch, chips;
        double tok_s, cost;
    };
    std::vector<Candidate> winners;

    // Enumerate the grid, co-simulate every candidate on the sweep
    // pool, then rank; result order matches the enumeration.
    std::vector<std::pair<std::uint32_t, std::uint32_t>> grid;
    for (std::uint32_t ch : {8u, 16u, 32u, 64u})
        for (std::uint32_t chips : {2u, 4u, 8u})
            grid.emplace_back(ch, chips);

    core::ParallelSweep sweep;
    core::SweepCache &cache = core::SweepCache::global();
    const auto stats = sweep.mapMemo(
        cache, grid.size(),
        [&](std::size_t i) {
            return core::sweepKey(
                core::presetCustom(grid[i].first, grid[i].second),
                model);
        },
        [&](std::size_t i) {
            core::CamConfig cfg =
                core::presetCustom(grid[i].first, grid[i].second);
            return core::CambriconEngine(cfg, model).decodeToken();
        });
    if (cache.hits() > 0)
        std::printf("(sweep cache: %llu of %zu points reused)\n\n",
                    (unsigned long long)cache.hits(), grid.size());
    core::SweepCache::saveGlobal();

    for (std::size_t i = 0; i < grid.size(); ++i) {
        const auto [ch, chips] = grid[i];
        const core::TokenStats &s = stats[i];
        core::CamConfig cfg = core::presetCustom(ch, chips);

        // Memory BOM: weights in flash + KV-cache DRAM.
        core::Bom bom = core::camllmBom(weight_gb, 2.0);
        const bool ok = s.tokens_per_s >= target_tok_s;
        if (ok)
            winners.push_back({ch, chips, s.tokens_per_s, bom.totalUsd()});
        t.row({Table::fmtInt(ch), Table::fmtInt(chips),
               Table::fmtInt(std::uint64_t(ch) *
                             cfg.flash.geometry.coresPerChannel()),
               Table::fmt(s.tokens_per_s, 2),
               Table::fmtPercent(s.avg_channel_util, 0),
               Table::fmt(bom.totalUsd(), 2), ok ? "yes" : "no"});
    }
    t.print(std::cout);

    if (!winners.empty()) {
        const auto *best = &winners[0];
        for (const auto &w : winners)
            if (w.ch * w.chips < best->ch * best->chips)
                best = &w;
        std::printf("\nSmallest qualifying design: %u channels x %u"
                    " chips (%.2f token/s).\nThe paper's Cam-LLM-L"
                    " (32x8) sits just above this point.\n",
                    best->ch, best->chips, best->tok_s);
    }
    return 0;
}
