/**
 * @file
 * Serving scenario: an on-device assistant burst.
 *
 * Twelve requests land nearly at once — short chat turns, a couple of
 * long-document questions, a code-completion tail — and the engine
 * serves them with continuous batching at a batch limit of 4: a
 * retired request's slot is refilled at the same simulated tick, and
 * every stream's KV cache grows as its reply decodes. Compares the
 * batched service against strictly serial service of the same queue.
 */

#include <cstdio>
#include <vector>

#include "core/batch_engine.h"
#include "core/presets.h"
#include "llm/model_config.h"

using namespace camllm;
using namespace camllm::core;

int
main()
{
    const CamConfig cfg = presetL();
    const llm::ModelConfig model = llm::llama2_70b();

    // (context, reply tokens): chat turns, two long-document queries,
    // code completions.
    const std::vector<RequestSpec> queue = {
        {512, 3},   {768, 2},  {1024, 3}, {640, 2},
        {8192, 2},  {12288, 2},
        {2048, 3},  {1536, 2}, {3072, 2}, {896, 3},
        {4096, 2},  {1280, 2},
    };

    BatchEngine engine(cfg, model);
    const BatchStats batched = engine.run(queue, 4);
    const BatchStats serial = engine.run(queue, 1);

    std::printf("camllm serving_sim: %zu requests on %s / %s\n\n",
                queue.size(), cfg.name.c_str(), model.name.c_str());
    std::printf("%4s %8s %7s %11s %12s %14s %8s\n", "req", "context",
                "tokens", "admit (ms)", "finish (ms)", "mean tok (ms)",
                "tok/s");
    for (const RequestStats &r : batched.requests)
        std::printf("%4u %8u %7u %11.2f %12.2f %14.1f %8.3f\n", r.id,
                    r.context, r.decode_tokens,
                    double(r.admit_tick) / 1e6,
                    double(r.finish_tick) / 1e6,
                    double(r.mean_token_time) / 1e6, r.tokens_per_s);

    std::printf("\n%-34s %10s %10s\n", "", "batch=4", "serial");
    std::printf("%-34s %10.3f %10.3f\n", "aggregate tokens/s",
                batched.aggregate_tokens_per_s,
                serial.aggregate_tokens_per_s);
    std::printf("%-34s %10.3f %10.3f\n", "finite-run tokens/s",
                batched.finite_run_tokens_per_s,
                serial.finite_run_tokens_per_s);
    std::printf("%-34s %9.1f%% %9.1f%%\n", "channel utilization",
                100.0 * batched.avg_channel_util,
                100.0 * serial.avg_channel_util);
    std::printf("%-34s %10.3f %10.3f\n", "Jain fairness",
                batched.fairness_jain, serial.fairness_jain);
    std::printf("%-34s %9.1fms %9.1fms\n", "sim makespan",
                double(batched.sim_makespan) / 1e6,
                double(serial.sim_makespan) / 1e6);
    std::printf("\ncontinuous batching served the burst %.2fx faster "
                "than serial decode.\n",
                serial.finite_run_tokens_per_s > 0.0
                    ? batched.finite_run_tokens_per_s /
                          serial.finite_run_tokens_per_s
                    : 0.0);
    return 0;
}
